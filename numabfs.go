// Package numabfs is a reproduction, as a library, of "Evaluation and
// Optimization of Breadth-First Search on NUMA Cluster" (Cui et al.,
// CLUSTER 2012): the hybrid top-down / bottom-up BFS for distributed
// memory, run over an execution-driven simulator of the paper's
// 16-node, eight-socket-per-node NUMA cluster, with every optimization
// the paper evaluates:
//
//   - process-per-socket placement with socket binding (vs. one
//     interleaved process per node);
//   - node-shared in_queue / out_queue bitmaps that eliminate the
//     intra-node steps of leader-based allgather;
//   - the parallelized (per-socket subgroup) inter-node allgather;
//   - tunable in_queue_summary granularity;
//
// plus, as an extension, adaptive frontier compression of the
// bottom-up allgather (dense/sparse/RLE wire formats chosen per
// segment — OptCompressedAllgather).
//
// The algorithms run for real on real R-MAT graphs — results are
// validated against the Graph500 specification — while time is virtual:
// each simulated MPI rank carries a clock advanced by a calibrated
// machine model (memory locality, caches, QPI, InfiniBand). Reported
// TEPS are modelled, deterministic, and independent of the host machine.
//
// Quick start:
//
//	cfg := numabfs.TableI()                   // the paper's cluster
//	res, err := numabfs.Run(numabfs.Benchmark{
//		Machine: cfg,
//		Policy:  numabfs.PPN8Bind,
//		Params:  numabfs.Graph500Params(18),
//		Opts:    numabfs.DefaultOptions(),
//	})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package numabfs

import (
	"numabfs/internal/bfs"
	"numabfs/internal/bfs2d"
	"numabfs/internal/engine"
	"numabfs/internal/graph500"
	"numabfs/internal/machine"
	"numabfs/internal/obs"
	"numabfs/internal/rmat"
)

// ClusterConfig describes the modelled hardware (Table I of the paper).
type ClusterConfig = machine.Config

// TableI returns the paper's testbed: 16 nodes x 8 Xeon X7550 sockets,
// 1,024 cores, two 40 Gb/s InfiniBand ports per node.
func TableI() ClusterConfig { return machine.TableI() }

// ScaledCluster returns TableI adjusted so a graph of runScale stands in
// for the paper's experiment at paperScale (working-set : cache ratios
// are preserved; see machine.Scaled).
func ScaledCluster(runScale, paperScale int) ClusterConfig {
	return machine.Scaled(runScale, paperScale)
}

// Policy is a process placement policy (Fig. 10 of the paper).
type Policy = machine.Policy

// Placement policies.
const (
	// PPN1NoFlag runs one rank per node with default allocation.
	PPN1NoFlag = machine.PPN1NoFlag
	// PPN1Interleave runs one rank per node with memory interleaved
	// across sockets (numactl --interleave=all).
	PPN1Interleave = machine.PPN1Interleave
	// PPN8NoFlag runs one rank per socket without binding.
	PPN8NoFlag = machine.PPN8NoFlag
	// PPN8Bind runs one bound rank per socket — the paper's
	// recommendation ("-bind-to-socket -bysocket").
	PPN8Bind = machine.PPN8Bind
)

// GraphParams describes an R-MAT graph instance.
type GraphParams = rmat.Params

// Graph500Params returns the standard Graph500 R-MAT parameters
// (a,b,c,d = 0.57, 0.19, 0.19, 0.05; edgefactor 16) at the given scale.
func Graph500Params(scale int) GraphParams { return rmat.Graph500(scale) }

// Options configures the BFS algorithm and its optimization level.
type Options = bfs.Options

// DefaultOptions returns the reference-code defaults (hybrid algorithm,
// granularity 64, no sharing optimizations).
func DefaultOptions() Options { return bfs.DefaultOptions() }

// OptLevel is an optimization level of the paper's Fig. 9.
type OptLevel = bfs.Opt

// AlgorithmMode selects the traversal algorithm.
type AlgorithmMode = bfs.Mode

// Optimization levels (cumulative, in the order of the paper's Fig. 9).
const (
	// OptOriginal is the unmodified hybrid BFS.
	OptOriginal = bfs.OptOriginal
	// OptShareInQueue shares in_queue per node (no broadcast step).
	OptShareInQueue = bfs.OptShareInQueue
	// OptShareAll also shares out_queue and the summaries (no gather).
	OptShareAll = bfs.OptShareAll
	// OptParAllgather adds the per-socket-subgroup parallel allgather.
	OptParAllgather = bfs.OptParAllgather
	// OptCompressedAllgather adds adaptive frontier compression
	// (dense/sparse/RLE, chosen per segment) to the bottom-up allgather.
	OptCompressedAllgather = bfs.OptCompressedAllgather
	// OptOverlapAllgather pipelines the compressed allgather with the
	// frontier scan: chunks decode and scan while later chunks are still
	// in flight (Options.OverlapSegments sets the pipeline depth).
	OptOverlapAllgather = bfs.OptOverlapAllgather
)

// Traversal algorithm modes.
const (
	// ModeHybrid switches between top-down and bottom-up (the paper's
	// algorithm, after Beamer et al.).
	ModeHybrid = bfs.ModeHybrid
	// ModeTopDown always explores from the frontier.
	ModeTopDown = bfs.ModeTopDown
	// ModeBottomUp always scans unvisited vertices.
	ModeBottomUp = bfs.ModeBottomUp
)

// Benchmark describes one Graph500-methodology run: 64 BFS roots (or
// NumRoots), harmonic-mean TEPS, optional tree validation.
type Benchmark = graph500.Config

// Result is the outcome of a benchmark run.
type Result = graph500.Result

// Run executes a benchmark: builds the distributed graph (kernel 1),
// runs BFS from each root (kernel 2), validates if requested, and
// aggregates TEPS and the per-phase breakdown.
func Run(b Benchmark) (*Result, error) { return graph500.Run(b) }

// Runner gives root-by-root control over a BFS job; use it when the
// aggregate Run harness is too coarse (e.g. to inspect parent arrays).
type Runner = bfs.Runner

// NewRunner builds a runner over the given machine, placement policy,
// graph and options. Call Setup once, then RunRoot per source vertex.
func NewRunner(cfg ClusterConfig, policy Policy, params GraphParams, opts Options) (*Runner, error) {
	return bfs.NewRunner(cfg, policy, params, opts)
}

// Validate checks the BFS tree a runner's last RunRoot left behind
// against the Graph500 specification.
func Validate(r *Runner, root int64) error { return graph500.ValidateRun(r, root) }

// Recorder collects observability sessions: per-rank span timelines over
// virtual time, collective spans, and communication counters. Attach one
// to a Benchmark via its Obs field (or to a Runner with AttachObs), then
// export a Chrome trace with WriteChromeTraceFile or aggregate a metrics
// report with BuildReport. Recording never changes benchmark results.
type Recorder = obs.Recorder

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// Grid is a 2-D processor grid (rows x columns).
type Grid = bfs2d.Grid

// Runner2D is the two-dimensional partitioned BFS engine (Buluç &
// Madduri), the extension the paper's related work describes as
// orthogonal to its NUMA optimizations.
type Runner2D = bfs2d.Runner

// DefaultGrid splits a rank count into the most square power-of-two
// processor grid.
func DefaultGrid(ranks int) Grid { return bfs2d.DefaultGrid(ranks) }

// NewRunner2D builds a 2-D BFS runner over the given machine, placement
// policy, processor grid and graph.
func NewRunner2D(cfg ClusterConfig, policy Policy, grid Grid, params GraphParams) (*Runner2D, error) {
	return bfs2d.NewRunner(cfg, policy, grid, params)
}

// Validate2D checks a 2-D runner's last BFS tree against the Graph500
// validation rules, mirroring Validate for the 1-D engine.
func Validate2D(r *Runner2D, root int64) error { return graph500.ValidateRun2D(r, root) }

// EngineChoice is the 1-D/2-D selector's verdict: which engine the
// analytic cost model predicts faster for a (machine, scale, nodes)
// cell, the grid the 2-D engine would use, and both modelled costs.
type EngineChoice = engine.Choice

// SelectEngine predicts whether the 1-D or the 2-D engine completes a
// BFS root faster on the given machine at the given graph scale and
// node count, pricing both engines from the machine model alone — no
// trial runs. See DESIGN.md §7 for the model and its calibration.
func SelectEngine(cfg ClusterConfig, scale, nodes int) EngineChoice {
	return engine.Select(cfg, scale, nodes)
}
