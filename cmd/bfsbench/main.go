// Command bfsbench regenerates the paper's tables and figures on the
// simulated NUMA cluster. Each -fig flag value selects one experiment;
// "all" runs the full evaluation.
//
// Usage:
//
//	bfsbench -fig 9 -scale 16 -roots 8
//	bfsbench -fig all -scale 14 -roots 2
//	bfsbench -fig table1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"numabfs/internal/experiments"
	"numabfs/internal/machine"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 3,4,6,9,10,11,12,13,14,15,16,algcmp,table1,2d,abl-allgather,abl-hybrid,all")
	scale := flag.Int("scale", 16, "graph scale at one node (weak scaling adds log2(nodes))")
	roots := flag.Int("roots", 8, "BFS roots per configuration (Graph500 uses 64)")
	validate := flag.Bool("validate", false, "validate every BFS tree (slow)")
	weak := flag.Bool("weaknode", true, "model the testbed's one weak node in 16-node runs")
	jsonOut := flag.String("json", "", "also write the tables as JSON to this file")
	flag.Parse()

	spec := experiments.Spec{
		BaseScale: *scale,
		Roots:     *roots,
		Validate:  *validate,
		WeakNode:  *weak,
	}

	type driver struct {
		key string
		run func(experiments.Spec) (*experiments.Table, error)
	}
	drivers := []driver{
		{"3", experiments.Fig3},
		{"4", experiments.Fig4},
		{"6", experiments.Fig6},
		{"9", experiments.Fig9},
		{"10", experiments.Fig10},
		{"11", experiments.Fig11},
		{"12", experiments.Fig12},
		{"13", experiments.Fig13},
		{"14", experiments.Fig14},
		{"15", experiments.Fig15},
		{"16", experiments.Fig16},
		{"algcmp", experiments.AlgorithmComparison},
		{"levels", experiments.LevelProfile},
		{"2d", experiments.Ext2D},
		{"abl-allgather", experiments.AblationAllgather},
		{"abl-hybrid", experiments.AblationHybrid},
		{"abl-sharedegree", experiments.AblationShareDegree},
	}

	want := strings.Split(*fig, ",")
	match := func(key string) bool {
		for _, w := range want {
			if w == "all" || w == key {
				return true
			}
		}
		return false
	}

	if match("table1") {
		fmt.Println("Table I — node configuration")
		fmt.Print(machine.TableI().Table1String())
		fmt.Println()
	}
	var tables []*experiments.Table
	for _, d := range drivers {
		if !match(d.key) {
			continue
		}
		t, err := d.run(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: fig %s: %v\n", d.key, err)
			os.Exit(1)
		}
		fmt.Println(t.String())
		tables = append(tables, t)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: %v\n", err)
			os.Exit(1)
		}
	}
}
