// Command bfsbench regenerates the paper's tables and figures on the
// simulated NUMA cluster. Each -fig flag value selects one experiment;
// "all" runs the full evaluation.
//
// Usage:
//
//	bfsbench -fig 9 -scale 16 -roots 8
//	bfsbench -fig all -scale 14 -roots 2 -parallel 8
//	bfsbench -fig 11 -trace out.json -metrics
//	bfsbench -fig 10 -cpuprofile cpu.pprof -cell-ledger -
//	bfsbench -fig table1
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"numabfs/internal/experiments"
	"numabfs/internal/fault"
	"numabfs/internal/graph500"
	"numabfs/internal/machine"
	"numabfs/internal/obs"
)

// driver pairs a -fig key with its experiment.
type driver struct {
	key string
	run func(experiments.Spec) (*experiments.Table, error)
}

// drivers lists every experiment in display order.
var drivers = []driver{
	{"3", experiments.Fig3},
	{"4", experiments.Fig4},
	{"6", experiments.Fig6},
	{"9", experiments.Fig9},
	{"10", experiments.Fig10},
	{"11", experiments.Fig11},
	{"12", experiments.Fig12},
	{"13", experiments.Fig13},
	{"14", experiments.Fig14},
	{"15", experiments.Fig15},
	{"16", experiments.Fig16},
	{"algcmp", experiments.AlgorithmComparison},
	{"levels", experiments.LevelProfile},
	{"2d", experiments.Ext2D},
	{"crossover", experiments.ExtCrossover},
	{"compression", experiments.ExtCompression},
	{"faults", experiments.ExtFaults},
	{"availability", experiments.ExtAvailability},
	{"loss", experiments.ExtLoss},
	{"overlap", experiments.ExtOverlap},
	{"msbfs", experiments.ExtMSBFS},
	{"msbfs-load", experiments.ExtMSBFSLoad},
	{"timeline", experiments.Timeline},
	{"abl-allgather", experiments.AblationAllgather},
	{"abl-compression", experiments.AblationCompression},
	{"abl-hybrid", experiments.AblationHybrid},
	{"abl-overlap", experiments.AblationOverlap},
	{"abl-sharedegree", experiments.AblationShareDegree},
}

// benchRecord is one experiment's entry in a -bench-json file: the
// driver key, the host wall-clock it took, and the full table so byte
// and TEPS columns can be diffed between commits.
type benchRecord struct {
	Fig    string             `json:"fig"`
	HostNs int64              `json:"host_ns"`
	Table  *experiments.Table `json:"table"`
}

// benchFile is the regression-baseline format written by -bench-json.
// Comparing a fresh file against a committed BENCH_<date>.json shows
// host-time drift (harness regressions) and any change in the modelled
// tables (simulation regressions).
type benchFile struct {
	Date      string        `json:"date"`
	GoVersion string        `json:"go_version"`
	Scale     int           `json:"scale"`
	Roots     int           `json:"roots"`
	Records   []benchRecord `json:"records"`
}

// driverFor returns the driver registered under key, or nil.
func driverFor(key string) *driver {
	for i := range drivers {
		if drivers[i].key == key {
			return &drivers[i]
		}
	}
	return nil
}

// benchCheck reruns the experiments recorded in a -bench-json baseline
// (at the baseline's scale and roots) and compares every table value at
// 1e-9 relative tolerance. A value drift is a simulation regression and
// fails the check; host wall-clock drift is only reported — it varies
// with the machine. Returns the number of drifted experiments.
func benchCheck(path string, want []string, weak bool, parallel int, ledger *experiments.Ledger, hostBudget float64) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	spec := experiments.Spec{BaseScale: bf.Scale, Roots: bf.Roots, WeakNode: weak,
		Cache: graph500.NewGraphCache(), Parallel: parallel, Ledger: ledger}
	match := func(key string) bool {
		for _, w := range want {
			if w == "all" || w == key {
				return true
			}
		}
		return false
	}
	drifted := 0
	checked := 0
	var hostTotal, baseTotal int64
	for _, rec := range bf.Records {
		if !match(rec.Fig) {
			continue
		}
		d := driverFor(rec.Fig)
		if d == nil {
			fmt.Fprintf(os.Stderr, "bfsbench: bench-check: baseline fig %q has no driver, skipping\n", rec.Fig)
			continue
		}
		start := time.Now()
		got, err := d.run(spec)
		if err != nil {
			return drifted, fmt.Errorf("fig %s: %w", rec.Fig, err)
		}
		host := time.Since(start)
		checked++
		hostTotal += host.Nanoseconds()
		baseTotal += rec.HostNs
		if diff := tableDiff(rec.Table, got); diff != "" {
			drifted++
			fmt.Printf("FAIL fig %-14s %s\n", rec.Fig, diff)
			continue
		}
		ratio := float64(host.Nanoseconds()) / float64(rec.HostNs)
		fmt.Printf("ok   fig %-14s values match; host time %.2fs vs baseline %.2fs (x%.2f)\n",
			rec.Fig, host.Seconds(), float64(rec.HostNs)/1e9, ratio)
	}
	if checked == 0 {
		return 0, fmt.Errorf("no baseline experiment matched -fig %s", strings.Join(want, ","))
	}
	if hostBudget > 0 {
		ratio := float64(hostTotal) / float64(baseTotal)
		fmt.Printf("host budget: %.2fs vs baseline %.2fs (x%.2f, budget x%.2f)\n",
			float64(hostTotal)/1e9, float64(baseTotal)/1e9, ratio, hostBudget)
		if ratio > hostBudget {
			return drifted, fmt.Errorf("host time x%.2f exceeds the x%.2f budget (harness wall-clock regression)", ratio, hostBudget)
		}
	}
	return drifted, nil
}

// tableDiff compares two tables cell by cell at 1e-9 relative tolerance
// and returns a description of the first difference, or "".
func tableDiff(want, got *experiments.Table) string {
	if want == nil || got == nil {
		return "missing table"
	}
	if len(want.Rows) != len(got.Rows) {
		return fmt.Sprintf("row count %d vs baseline %d", len(got.Rows), len(want.Rows))
	}
	for i, wr := range want.Rows {
		gr := got.Rows[i]
		if wr.Label != gr.Label {
			return fmt.Sprintf("row %d label %q vs baseline %q", i, gr.Label, wr.Label)
		}
		if len(wr.Values) != len(gr.Values) {
			return fmt.Sprintf("row %q has %d values vs baseline %d", wr.Label, len(gr.Values), len(wr.Values))
		}
		for j, wv := range wr.Values {
			gv := gr.Values[j]
			diff := gv - wv
			if diff < 0 {
				diff = -diff
			}
			scale := wv
			if scale < 0 {
				scale = -scale
			}
			if scale < 1 {
				scale = 1
			}
			if diff > 1e-9*scale {
				return fmt.Sprintf("row %q col %d: %v vs baseline %v", wr.Label, j, gv, wv)
			}
		}
	}
	return ""
}

// obsFlags gathers the observability output settings for validation.
type obsFlags struct {
	metrics     bool
	metricsOut  string
	timeline    string
	html        string
	prom        string
	sampleNs    float64
	sampleNsSet bool // -sample-ns given explicitly
	benchCheck  bool
}

// validateObsFlags returns the usage errors in an output-flag
// combination; any error means exit 2, like an unknown -fig key.
func validateObsFlags(f obsFlags) []string {
	var errs []string
	if f.metrics && f.metricsOut != "" {
		errs = append(errs, "-metrics and -metrics-out are mutually exclusive: the report goes to stdout or to the file, not both")
	}
	if f.sampleNs <= 0 {
		errs = append(errs, "-sample-ns must be positive")
	}
	if f.sampleNsSet && f.timeline == "" && f.html == "" && f.prom == "" {
		errs = append(errs, "-sample-ns has no effect without -timeline, -report-html or -prom")
	}
	if f.benchCheck {
		for _, c := range []struct{ name, val string }{
			{"-metrics-out", f.metricsOut},
			{"-timeline", f.timeline},
			{"-report-html", f.html},
			{"-prom", f.prom},
		} {
			if c.val != "" {
				errs = append(errs, c.name+" cannot be combined with -bench-check (the check runs no exportable experiment)")
			}
		}
		if f.metrics {
			errs = append(errs, "-metrics cannot be combined with -bench-check (the check runs no exportable experiment)")
		}
	}
	return errs
}

// batchFlags gathers the MS-BFS batching flags for validation.
type batchFlags struct {
	batch         int
	fillTimeoutNs float64
	batchSet      bool // -batch given explicitly
	fillSet       bool // -fill-timeout-ns given explicitly
	figs          []string
}

// validateBatchFlags returns the usage errors in an MS-BFS flag
// combination; any error means exit 2, like an unknown -fig key.
func validateBatchFlags(f batchFlags) []string {
	var errs []string
	if f.batch < 1 || f.batch > 64 {
		errs = append(errs, fmt.Sprintf("-batch %d outside [1, 64]: a batch is at most one uint64 of lanes", f.batch))
	}
	if f.fillTimeoutNs < 0 {
		errs = append(errs, "-fill-timeout-ns must be non-negative (0 derives the timeout from the batch duration)")
	}
	usesBatch := false
	for _, w := range f.figs {
		if w == "all" || w == "msbfs" || w == "msbfs-load" {
			usesBatch = true
		}
	}
	if !usesBatch {
		if f.batchSet {
			errs = append(errs, "-batch has no effect without -fig msbfs or msbfs-load")
		}
		if f.fillSet {
			errs = append(errs, "-fill-timeout-ns has no effect without -fig msbfs or msbfs-load")
		}
	}
	return errs
}

// figKeys returns every valid -fig value, including the special keys
// that select no driver ("table1") or all of them ("all").
func figKeys() []string {
	keys := make([]string, 0, len(drivers)+2)
	for _, d := range drivers {
		keys = append(keys, d.key)
	}
	return append(keys, "table1", "all")
}

// unknownFigs returns the requested keys that are not valid -fig values,
// preserving request order.
func unknownFigs(want []string) []string {
	valid := make(map[string]bool)
	for _, k := range figKeys() {
		valid[k] = true
	}
	var bad []string
	for _, w := range want {
		if !valid[w] {
			bad = append(bad, w)
		}
	}
	return bad
}

// loadFaultPlan reads and strictly decodes a -fault plan file: unknown
// fields and trailing data are errors, so a typoed knob ("permanant",
// "detect_timeout") fails the run with a diagnostic instead of silently
// injecting a different plan than the one the user thought they wrote.
func loadFaultPlan(path string) (*fault.Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var plan fault.Plan
	if err := dec.Decode(&plan); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%s: trailing data after the fault plan", path)
	}
	return &plan, nil
}

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: "+strings.Join(figKeys(), ","))
	scale := flag.Int("scale", 16, "graph scale at one node (weak scaling adds log2(nodes))")
	roots := flag.Int("roots", 8, "BFS roots per configuration (Graph500 uses 64)")
	validate := flag.Bool("validate", false, "validate every BFS tree (slow)")
	weak := flag.Bool("weaknode", true, "model the testbed's one weak node in 16-node runs")
	jsonOut := flag.String("json", "", "also write the tables as JSON to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON timeline of every run to this file (open in chrome://tracing or Perfetto)")
	metrics := flag.Bool("metrics", false, "print the aggregated observability report (per-phase time, message counts by hop, barrier waits, critical path)")
	metricsOut := flag.String("metrics-out", "", "write the aggregated observability report to this file instead of stdout (keeps -json output clean)")
	timelineOut := flag.String("timeline", "", "write the run timeline (spans, counters, gauges) as a JSONL event stream to this file — the obsdiff input format")
	htmlOut := flag.String("report-html", "", "write a self-contained HTML report (rank x phase heatmaps, gauge timelines) to this file")
	promOut := flag.String("prom", "", "write a Prometheus-style text exposition of the run to this file")
	sampleNs := flag.Float64("sample-ns", experiments.DefaultSampleNs, "virtual-time gauge sampling grid pitch in ns, used by -timeline/-report-html/-prom")
	benchJSON := flag.String("bench-json", "", "time each selected experiment and write a regression baseline (BENCH_<date>.json) to this file")
	faultFile := flag.String("fault", "", "apply a deterministic fault plan (JSON, see internal/fault.Plan) to every run")
	benchCheckFile := flag.String("bench-check", "", "rerun the experiments in a -bench-json baseline at its recorded scale/roots and fail on any table-value drift")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "host-parallel cell width: how many benchmark cells run concurrently (1 = sequential; every width produces bit-identical tables and exports)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile taken after the run to this file")
	cellLedger := flag.String("cell-ledger", "", `write the per-cell host wall-clock ledger to this file ("-" for stdout)`)
	hostBudget := flag.Float64("host-budget", 0, "with -bench-check: fail if total host time exceeds this multiple of the baseline's (0 disables)")
	batch := flag.Int("batch", 64, "MS-BFS lanes per batch for -fig msbfs/msbfs-load (1..64)")
	fillTimeout := flag.Float64("fill-timeout-ns", 0, "query-server fill timeout in virtual ns for -fig msbfs-load (0 = 2x the calibrated batch duration)")
	flag.Parse()

	want := strings.Split(*fig, ",")
	if bad := unknownFigs(want); len(bad) != 0 {
		quoted := make([]string, len(bad))
		for i, b := range bad {
			quoted[i] = fmt.Sprintf("%q", b)
		}
		fmt.Fprintf(os.Stderr, "bfsbench: unknown -fig value(s) %s; valid keys: %s\n",
			strings.Join(quoted, ","), strings.Join(figKeys(), ","))
		os.Exit(2)
	}
	sampleNsSet, batchSet, fillSet := false, false, false
	flag.Visit(func(fl *flag.Flag) {
		switch fl.Name {
		case "sample-ns":
			sampleNsSet = true
		case "batch":
			batchSet = true
		case "fill-timeout-ns":
			fillSet = true
		}
	})
	errs := validateObsFlags(obsFlags{
		metrics: *metrics, metricsOut: *metricsOut,
		timeline: *timelineOut, html: *htmlOut, prom: *promOut,
		sampleNs: *sampleNs, sampleNsSet: sampleNsSet,
		benchCheck: *benchCheckFile != "",
	})
	errs = append(errs, validateBatchFlags(batchFlags{
		batch: *batch, fillTimeoutNs: *fillTimeout,
		batchSet: batchSet, fillSet: fillSet, figs: want,
	})...)
	if len(errs) != 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "bfsbench: %s\n", e)
		}
		os.Exit(2)
	}
	if *hostBudget != 0 && *benchCheckFile == "" {
		fmt.Fprintln(os.Stderr, "bfsbench: -host-budget only applies with -bench-check (the budget is relative to the baseline's host times)")
		os.Exit(2)
	}
	if *parallel < 1 {
		fmt.Fprintln(os.Stderr, "bfsbench: -parallel must be at least 1")
		os.Exit(2)
	}

	// Profiles stop/write exactly once, whether main falls off the end,
	// returns from the bench-check path, or exits on a failed check.
	var profOnce sync.Once
	stopProfiles := func() {
		profOnce.Do(func() {
			if *cpuProfile != "" {
				pprof.StopCPUProfile()
				fmt.Fprintf(os.Stderr, "bfsbench: wrote CPU profile to %s\n", *cpuProfile)
			}
			if *memProfile != "" {
				f, err := os.Create(*memProfile)
				if err != nil {
					fmt.Fprintf(os.Stderr, "bfsbench: memprofile: %v\n", err)
					return
				}
				defer f.Close()
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "bfsbench: memprofile: %v\n", err)
					return
				}
				fmt.Fprintf(os.Stderr, "bfsbench: wrote heap profile to %s\n", *memProfile)
			}
		})
	}
	defer stopProfiles()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}

	var ledger *experiments.Ledger
	if *cellLedger != "" {
		ledger = experiments.NewLedger()
	}
	writeLedger := func() {
		if ledger == nil {
			return
		}
		if *cellLedger == "-" {
			fmt.Print(ledger.String())
			return
		}
		if err := os.WriteFile(*cellLedger, []byte(ledger.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: cell-ledger: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bfsbench: wrote cell ledger to %s\n", *cellLedger)
	}

	if *benchCheckFile != "" {
		drifted, err := benchCheck(*benchCheckFile, want, *weak, *parallel, ledger, *hostBudget)
		writeLedger()
		stopProfiles()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: bench-check: %v\n", err)
			os.Exit(1)
		}
		if drifted != 0 {
			fmt.Fprintf(os.Stderr, "bfsbench: bench-check: %d experiment(s) drifted from %s\n", drifted, *benchCheckFile)
			os.Exit(1)
		}
		return
	}

	spec := experiments.Spec{
		BaseScale: *scale,
		Roots:     *roots,
		Validate:  *validate,
		WeakNode:  *weak,
		Cache:     graph500.NewGraphCache(),
		Parallel:  *parallel,
		Ledger:    ledger,

		Batch:         *batch,
		FillTimeoutNs: *fillTimeout,
	}
	if *traceOut != "" || *metrics || *metricsOut != "" ||
		*timelineOut != "" || *htmlOut != "" || *promOut != "" {
		spec.Obs = obs.NewRecorder()
	}
	if *timelineOut != "" || *htmlOut != "" || *promOut != "" {
		spec.SampleNs = *sampleNs
	}
	if *faultFile != "" {
		plan, err := loadFaultPlan(*faultFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: fault plan: %v\n", err)
			os.Exit(2)
		}
		spec.Faults = plan
	}

	match := func(key string) bool {
		for _, w := range want {
			if w == "all" || w == key {
				return true
			}
		}
		return false
	}

	if match("table1") {
		fmt.Println("Table I — node configuration")
		fmt.Print(machine.TableI().Table1String())
		fmt.Println()
	}
	var tables []*experiments.Table
	var records []benchRecord
	for _, d := range drivers {
		if !match(d.key) {
			continue
		}
		start := time.Now()
		t, err := d.run(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: fig %s: %v\n", d.key, err)
			os.Exit(1)
		}
		fmt.Println(t.String())
		tables = append(tables, t)
		if *benchJSON != "" {
			records = append(records, benchRecord{Fig: d.key, HostNs: time.Since(start).Nanoseconds(), Table: t})
		}
	}
	writeLedger()
	if *jsonOut != "" {
		data, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *benchJSON != "" {
		bf := benchFile{
			Date:      time.Now().Format("2006-01-02"),
			GoVersion: runtime.Version(),
			Scale:     *scale,
			Roots:     *roots,
			Records:   records,
		}
		data, err := json.MarshalIndent(bf, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: bench-json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bfsbench: wrote bench baseline to %s\n", *benchJSON)
	}
	if *metrics {
		fmt.Print(spec.Obs.BuildReport().String())
		hits, misses := spec.Cache.Stats()
		fmt.Printf("graph cache: hits=%d misses=%d\n", hits, misses)
	}
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, []byte(spec.Obs.BuildReport().String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: metrics-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bfsbench: wrote metrics report to %s\n", *metricsOut)
	}
	if *traceOut != "" {
		if err := spec.Obs.WriteChromeTraceFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bfsbench: wrote Chrome trace to %s\n", *traceOut)
	}
	if *timelineOut != "" {
		if err := spec.Obs.WriteTimelineFile(*timelineOut); err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: timeline: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bfsbench: wrote timeline JSONL to %s\n", *timelineOut)
	}
	if *htmlOut != "" {
		if err := spec.Obs.WriteHTMLReportFile(*htmlOut); err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: report-html: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bfsbench: wrote HTML report to %s\n", *htmlOut)
	}
	if *promOut != "" {
		if err := spec.Obs.WritePromFile(*promOut); err != nil {
			fmt.Fprintf(os.Stderr, "bfsbench: prom: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bfsbench: wrote Prometheus exposition to %s\n", *promOut)
	}
}
