package main

import (
	"reflect"
	"testing"
)

func TestFigKeys(t *testing.T) {
	keys := figKeys()
	if len(keys) != len(drivers)+2 {
		t.Fatalf("keys = %v", keys)
	}
	seen := make(map[string]bool)
	for _, k := range keys {
		if k == "" || seen[k] {
			t.Fatalf("empty or duplicate key in %v", keys)
		}
		seen[k] = true
	}
	for _, want := range []string{"11", "algcmp", "table1", "all"} {
		if !seen[want] {
			t.Errorf("missing key %q", want)
		}
	}
}

func TestUnknownFigs(t *testing.T) {
	if got := unknownFigs([]string{"11", "all", "table1"}); got != nil {
		t.Fatalf("valid keys flagged: %v", got)
	}
	got := unknownFigs([]string{"11", "bogus", "7", "levels"})
	if !reflect.DeepEqual(got, []string{"bogus", "7"}) {
		t.Fatalf("unknownFigs = %v, want [bogus 7]", got)
	}
}
