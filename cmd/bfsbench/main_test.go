package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"numabfs/internal/experiments"
)

func TestFigKeys(t *testing.T) {
	keys := figKeys()
	if len(keys) != len(drivers)+2 {
		t.Fatalf("keys = %v", keys)
	}
	seen := make(map[string]bool)
	for _, k := range keys {
		if k == "" || seen[k] {
			t.Fatalf("empty or duplicate key in %v", keys)
		}
		seen[k] = true
	}
	for _, want := range []string{"11", "algcmp", "table1", "all", "overlap", "abl-overlap"} {
		if !seen[want] {
			t.Errorf("missing key %q", want)
		}
	}
}

func TestUnknownFigs(t *testing.T) {
	if got := unknownFigs([]string{"11", "all", "table1"}); got != nil {
		t.Fatalf("valid keys flagged: %v", got)
	}
	got := unknownFigs([]string{"11", "bogus", "7", "levels"})
	if !reflect.DeepEqual(got, []string{"bogus", "7"}) {
		t.Fatalf("unknownFigs = %v, want [bogus 7]", got)
	}
	// The new overlap figures validate; their typos are flagged for the
	// exit-2 path, which prints the full known-figure list.
	if got := unknownFigs([]string{"overlap", "abl-overlap"}); got != nil {
		t.Fatalf("overlap keys flagged: %v", got)
	}
	if got := unknownFigs([]string{"overlp"}); !reflect.DeepEqual(got, []string{"overlp"}) {
		t.Fatalf("unknownFigs(overlp) = %v", got)
	}
}

func TestValidateObsFlags(t *testing.T) {
	ok := func(f obsFlags) obsFlags {
		if f.sampleNs == 0 {
			f.sampleNs = experiments.DefaultSampleNs
		}
		return f
	}
	valid := []obsFlags{
		{},
		{metrics: true},
		{metricsOut: "m.txt"},
		{timeline: "t.jsonl", sampleNsSet: true},
		{html: "r.html", prom: "p.txt", sampleNsSet: true},
		{benchCheck: true},
	}
	for _, f := range valid {
		if errs := validateObsFlags(ok(f)); errs != nil {
			t.Errorf("valid combo %+v rejected: %v", f, errs)
		}
	}
	invalid := []obsFlags{
		{metrics: true, metricsOut: "m.txt"},
		{timeline: "t.jsonl", sampleNs: -5, sampleNsSet: true},
		{timeline: "t.jsonl", sampleNs: -experiments.DefaultSampleNs, sampleNsSet: true},
		{sampleNsSet: true}, // explicit -sample-ns with no consumer
		{benchCheck: true, metricsOut: "m.txt"},
		{benchCheck: true, timeline: "t.jsonl", sampleNsSet: true},
		{benchCheck: true, html: "r.html"},
		{benchCheck: true, prom: "p.txt"},
		{benchCheck: true, metrics: true},
	}
	for _, f := range invalid {
		fixed := f
		if fixed.sampleNs == 0 {
			fixed.sampleNs = experiments.DefaultSampleNs
		}
		if errs := validateObsFlags(fixed); len(errs) == 0 {
			t.Errorf("invalid combo %+v accepted", f)
		}
	}
	// Each distinct problem reports its own line, so a doubly bad
	// invocation prints both.
	errs := validateObsFlags(obsFlags{
		metrics: true, metricsOut: "m.txt",
		sampleNs: -1, sampleNsSet: true, timeline: "t.jsonl",
	})
	if len(errs) != 2 {
		t.Fatalf("want 2 errors, got %d: %v", len(errs), errs)
	}
}

func TestDriverForTimeline(t *testing.T) {
	if d := driverFor("timeline"); d == nil {
		t.Fatal("timeline driver not registered")
	}
}

func TestDriverForOverlap(t *testing.T) {
	for _, key := range []string{"overlap", "abl-overlap"} {
		if d := driverFor(key); d == nil {
			t.Fatalf("%s driver not registered", key)
		}
	}
}

func TestDriverForMSBFS(t *testing.T) {
	for _, key := range []string{"msbfs", "msbfs-load"} {
		if d := driverFor(key); d == nil {
			t.Fatalf("%s driver not registered", key)
		}
	}
	if got := unknownFigs([]string{"msbfs", "msbfs-load"}); got != nil {
		t.Fatalf("msbfs keys flagged: %v", got)
	}
}

func TestValidateBatchFlags(t *testing.T) {
	valid := []batchFlags{
		{batch: 64, figs: []string{"9"}}, // defaults are inert without the figs
		{batch: 64, figs: []string{"msbfs"}},
		{batch: 1, batchSet: true, figs: []string{"msbfs"}},
		{batch: 32, fillTimeoutNs: 5e6, batchSet: true, fillSet: true, figs: []string{"msbfs-load"}},
		{batch: 64, fillTimeoutNs: 1e6, fillSet: true, figs: []string{"all"}},
		{batch: 16, batchSet: true, figs: []string{"9", "msbfs-load"}},
	}
	for _, f := range valid {
		if errs := validateBatchFlags(f); errs != nil {
			t.Errorf("valid combo %+v rejected: %v", f, errs)
		}
	}
	invalid := []batchFlags{
		{batch: 0, figs: []string{"msbfs"}},
		{batch: 65, figs: []string{"msbfs"}},
		{batch: -3, figs: []string{"msbfs-load"}},
		{batch: 64, fillTimeoutNs: -1, figs: []string{"msbfs-load"}},
		{batch: 32, batchSet: true, figs: []string{"9"}},                          // -batch without a consumer fig
		{batch: 64, fillTimeoutNs: 1e6, fillSet: true, figs: []string{"overlap"}}, // -fill-timeout-ns without a consumer fig
	}
	for _, f := range invalid {
		if errs := validateBatchFlags(f); len(errs) == 0 {
			t.Errorf("invalid combo %+v accepted", f)
		}
	}
	// Each distinct problem reports its own line.
	errs := validateBatchFlags(batchFlags{
		batch: 100, batchSet: true, fillTimeoutNs: -2, fillSet: true, figs: []string{"11"},
	})
	if len(errs) != 4 {
		t.Fatalf("want 4 errors, got %d: %v", len(errs), errs)
	}
}

func TestDriverForLoss(t *testing.T) {
	if d := driverFor("loss"); d == nil {
		t.Fatal("loss driver not registered")
	}
	if d := driverFor("bogus"); d != nil {
		t.Fatalf("bogus key resolved to %q", d.key)
	}
}

func TestTableDiff(t *testing.T) {
	mk := func() *experiments.Table {
		tab := &experiments.Table{Name: "X", Columns: []string{"a", "b"}}
		tab.AddRow("r1", 1.0, 2.5e9)
		tab.AddRow("r2", 0, -3.25)
		return tab
	}
	if d := tableDiff(mk(), mk()); d != "" {
		t.Fatalf("identical tables diff: %s", d)
	}
	// Drift within 1e-9 relative tolerance passes; beyond it fails.
	close := mk()
	close.Rows[0].Values[1] *= 1 + 1e-12
	if d := tableDiff(mk(), close); d != "" {
		t.Fatalf("sub-tolerance drift flagged: %s", d)
	}
	far := mk()
	far.Rows[0].Values[1] *= 1 + 1e-6
	if d := tableDiff(mk(), far); d == "" {
		t.Fatal("value drift not flagged")
	}
	relabeled := mk()
	relabeled.Rows[1].Label = "renamed"
	if d := tableDiff(mk(), relabeled); d == "" {
		t.Fatal("label change not flagged")
	}
	short := mk()
	short.Rows = short.Rows[:1]
	if d := tableDiff(mk(), short); d == "" {
		t.Fatal("missing row not flagged")
	}
	if d := tableDiff(mk(), nil); d == "" {
		t.Fatal("nil table not flagged")
	}
}

// TestBenchCheckRoundTrip: a baseline written from a live run must pass
// its own check, and a perturbed copy must fail with a nonzero drift
// count.
func TestBenchCheckRoundTrip(t *testing.T) {
	spec := experiments.Spec{BaseScale: 12, Roots: 1}
	tab, err := experiments.Fig10(spec)
	if err != nil {
		t.Fatal(err)
	}
	bf := benchFile{Scale: spec.BaseScale, Roots: spec.Roots,
		Records: []benchRecord{{Fig: "10", HostNs: 1, Table: tab}}}
	data, err := json.Marshal(bf)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	drifted, err := benchCheck(path, []string{"all"}, false, 4, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if drifted != 0 {
		t.Fatalf("self-check drifted %d experiment(s)", drifted)
	}

	// The baseline's 1ns host time makes any rerun blow a x1.5 budget:
	// the budget path must fail even though every value matches.
	if _, err := benchCheck(path, []string{"all"}, false, 4, nil, 1.5); err == nil {
		t.Fatal("blown host budget not flagged")
	}

	// The check must honor the parallel width and still ledger its cells.
	led := experiments.NewLedger()
	if _, err := benchCheck(path, []string{"all"}, false, 8, led, 0); err != nil {
		t.Fatal(err)
	}
	if len(led.Cells()) == 0 {
		t.Fatal("bench-check recorded no ledger cells")
	}

	bf.Records[0].Table.Rows[0].Values[0] *= 1.01
	data, _ = json.Marshal(bf)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	drifted, err = benchCheck(path, []string{"10"}, false, 4, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if drifted != 1 {
		t.Fatalf("perturbed baseline drifted %d, want 1", drifted)
	}
}

func TestLoadFaultPlanStrict(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name    string
		content string
		wantErr string // substring of the error; "" means the plan must load
	}{
		{"valid crash plan",
			`{"crashes": [{"rank": 2, "at_ns": 5e6, "permanent": true}], "detect_timeout_ns": 1e6}`,
			""},
		{"valid detector tuning",
			`{"heartbeat_period_ns": 2.5e5, "crashes": [{"rank": 0, "at_ns": 1}]}`,
			""},
		{"malformed json",
			`{"crashes": [`,
			"unexpected EOF"},
		{"unknown top-level field",
			`{"crashs": [{"rank": 2, "at_ns": 5e6}]}`,
			`unknown field "crashs"`},
		{"unknown crash field",
			`{"crashes": [{"rank": 2, "at_ns": 5e6, "permanant": true}]}`,
			`unknown field "permanant"`},
		{"trailing data",
			`{"crashes": []} {"crashes": []}`,
			"trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := loadFaultPlan(write(strings.ReplaceAll(tc.name, " ", "_")+".json", tc.content))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if len(plan.Crashes) == 0 {
					t.Fatal("valid plan decoded no crashes")
				}
				return
			}
			if err == nil {
				t.Fatalf("decoded without error, plan = %+v", plan)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	if _, err := loadFaultPlan(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file must error")
	}
}
