// Command rmatgen generates R-MAT edge lists with the Graph500
// parameters, either as text ("u v" per line) or as little-endian binary
// int64 pairs, to stdout or a file.
//
// Usage:
//
//	rmatgen -scale 16 > edges.txt
//	rmatgen -scale 20 -format bin -o edges.bin
//	rmatgen -scale 16 -from 0 -to 1000    # a slice of the edge list
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"

	"numabfs"
)

func main() {
	scale := flag.Int("scale", 14, "graph scale (log2 of vertex count)")
	ef := flag.Int64("edgefactor", 16, "edges per vertex")
	seed := flag.Uint64("seed", 0, "generator seed (0 = default)")
	format := flag.String("format", "text", "output format: text | bin")
	out := flag.String("o", "", "output file (default stdout)")
	from := flag.Int64("from", 0, "first edge index")
	to := flag.Int64("to", -1, "one past the last edge index (-1 = all)")
	noScramble := flag.Bool("noscramble", false, "disable vertex scrambling")
	flag.Parse()

	params := numabfs.Graph500Params(*scale)
	params.EdgeFactor = *ef
	if *seed != 0 {
		params = params.WithSeed(*seed)
	}
	if *noScramble {
		params = params.WithScramble(false)
	}
	if err := params.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "rmatgen: %v\n", err)
		os.Exit(2)
	}
	lo, hi := *from, *to
	if hi < 0 || hi > params.NumEdges() {
		hi = params.NumEdges()
	}
	if lo < 0 || lo > hi {
		fmt.Fprintf(os.Stderr, "rmatgen: bad edge range [%d, %d)\n", lo, hi)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmatgen: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "rmatgen: close: %v\n", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	defer bw.Flush()

	switch *format {
	case "text":
		for i := lo; i < hi; i++ {
			u, v := params.EdgeAt(i)
			fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	case "bin":
		var buf [16]byte
		for i := lo; i < hi; i++ {
			u, v := params.EdgeAt(i)
			binary.LittleEndian.PutUint64(buf[0:], uint64(u))
			binary.LittleEndian.PutUint64(buf[8:], uint64(v))
			if _, err := bw.Write(buf[:]); err != nil {
				fmt.Fprintf(os.Stderr, "rmatgen: write: %v\n", err)
				os.Exit(1)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "rmatgen: unknown format %q\n", *format)
		os.Exit(2)
	}
}
