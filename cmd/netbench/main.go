// Command netbench is the OSU-style bandwidth microbenchmark of the
// paper's Fig. 4, run on the simulated interconnect: k rank pairs stream
// messages between two nodes concurrently, for a sweep of message sizes
// and process counts.
//
// Usage:
//
//	netbench
//	netbench -ppn 1,2,4,8 -sizes 4096,65536,1048576
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"numabfs/internal/machine"
	"numabfs/internal/mpi"
)

func main() {
	ppnFlag := flag.String("ppn", "1,2,4,8", "comma-separated processes per node")
	sizesFlag := flag.String("sizes", "4096,65536,1048576,4194304,16777216,67108864",
		"comma-separated message sizes in bytes")
	iters := flag.Int("iters", 8, "messages per pair")
	latency := flag.Bool("latency", false, "report per-message one-way latency (us) instead of bandwidth")
	flag.Parse()

	ppns, err := parseInts(*ppnFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netbench: -ppn: %v\n", err)
		os.Exit(2)
	}
	sizes, err := parseInts(*sizesFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netbench: -sizes: %v\n", err)
		os.Exit(2)
	}

	cfg := machine.TableI()
	cfg.Nodes = 2
	cfg.WeakNode = -1
	pl := machine.PlacementFor(cfg, machine.PPN8Bind)

	if *latency {
		fmt.Printf("node-to-node one-way latency (us), %d iters per pair\n", *iters)
	} else {
		fmt.Printf("node-to-node bandwidth (GB/s), %d iters per pair, 2x %0.f Gb/s ports per node\n",
			*iters, cfg.IBPortBW*8)
	}
	fmt.Printf("%-10s", "size")
	for _, p := range ppns {
		fmt.Printf("%12s", fmt.Sprintf("ppn=%d", p))
	}
	fmt.Println()

	for _, size := range sizes {
		fmt.Printf("%-10s", byteLabel(int64(size)))
		for _, ppn := range ppns {
			if ppn > cfg.SocketsPerNode {
				fmt.Printf("%12s", "-")
				continue
			}
			w := mpi.NewWorld(cfg, pl)
			buf := make([]uint64, size/8+1)
			w.Run(func(p *mpi.Proc) {
				if p.LocalRank() >= ppn {
					return
				}
				peer := p.Rank() + cfg.SocketsPerNode
				for it := 0; it < *iters; it++ {
					if p.Node() == 0 {
						p.Send(peer, 100+it, int64(size), buf, ppn)
					} else {
						p.Recv(p.Rank()-cfg.SocketsPerNode, 100+it)
					}
				}
			})
			if *latency {
				fmt.Printf("%12.3f", w.MaxClock()/float64(*iters)/1e3)
			} else {
				total := float64(size) * float64(*iters) * float64(ppn)
				fmt.Printf("%12.2f", total/w.MaxClock())
			}
		}
		fmt.Println()
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("value %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func byteLabel(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
