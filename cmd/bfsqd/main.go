// Command bfsqd runs the MS-BFS query server on the simulated NUMA
// cluster: a Poisson stream of single-root BFS queries arrives over
// virtual time, the admission policy packs them into batches of up to
// 64 lanes, and each batch traverses once — reporting per-query latency
// and TEPS percentiles, batch fill, and the allgather amortization.
//
// The offered rate is expressed as a multiple of the engine's
// calibrated capacity (lanes per full-batch duration), so the same
// -rate stresses the same operating point at every scale.
//
// Usage:
//
//	bfsqd -scale 16 -nodes 2 -opt compressed -queries 256 -rate 1.5
//	bfsqd -scale 14 -batch 32 -fill-timeout-ns 2e6 -csv queries.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"numabfs/internal/bfs"
	"numabfs/internal/graph500"
	"numabfs/internal/machine"
	"numabfs/internal/queryserv"
	"numabfs/internal/rmat"
)

// parsePolicy maps a -policy name to the placement policy.
func parsePolicy(name string) (machine.Policy, bool) {
	p, ok := map[string]machine.Policy{
		"noflag":     machine.PPN1NoFlag,
		"interleave": machine.PPN1Interleave,
		"noflag8":    machine.PPN8NoFlag,
		"bind":       machine.PPN8Bind,
	}[name]
	return p, ok
}

// parseOpt maps a -opt name to the optimization level. The overlapped
// allgather is absent: the batched engine gates it out (it pipelines a
// single frontier; see msbfs.ValidateOptions).
func parseOpt(name string) (bfs.Opt, bool) {
	o, ok := map[string]bfs.Opt{
		"original":   bfs.OptOriginal,
		"shareinq":   bfs.OptShareInQueue,
		"shareall":   bfs.OptShareAll,
		"par":        bfs.OptParAllgather,
		"compressed": bfs.OptCompressedAllgather,
	}[name]
	return o, ok
}

// parseMode maps a -mode name to the traversal algorithm.
func parseMode(name string) (bfs.Mode, bool) {
	m, ok := map[string]bfs.Mode{
		"hybrid":   bfs.ModeHybrid,
		"topdown":  bfs.ModeTopDown,
		"bottomup": bfs.ModeBottomUp,
	}[name]
	return m, ok
}

// qdFlags gathers every bfsqd setting for validation.
type qdFlags struct {
	scale, nodes  int
	policy        string
	opt, mode     string
	gran          int64
	queries       int
	rate          float64
	batch         int
	fillTimeoutNs float64
	seed          uint64
}

// validateFlags returns the usage errors in a flag combination; any
// error means exit 2.
func validateFlags(f qdFlags) []string {
	var errs []string
	if f.scale < 1 {
		errs = append(errs, "-scale must be at least 1")
	}
	if f.nodes < 1 {
		errs = append(errs, "-nodes must be at least 1")
	}
	if _, ok := parsePolicy(f.policy); !ok {
		errs = append(errs, fmt.Sprintf("unknown policy %q (noflag | interleave | noflag8 | bind)", f.policy))
	}
	if _, ok := parseOpt(f.opt); !ok {
		errs = append(errs, fmt.Sprintf("unknown optimization %q (original | shareinq | shareall | par | compressed; overlap is single-frontier only)", f.opt))
	}
	if _, ok := parseMode(f.mode); !ok {
		errs = append(errs, fmt.Sprintf("unknown mode %q (hybrid | topdown | bottomup)", f.mode))
	}
	if f.gran < 64 || f.gran%64 != 0 {
		errs = append(errs, fmt.Sprintf("-g %d must be a positive multiple of 64", f.gran))
	}
	if f.queries < 1 {
		errs = append(errs, "-queries must be at least 1")
	}
	if f.rate <= 0 {
		errs = append(errs, "-rate must be positive (a multiple of the calibrated full-batch capacity)")
	}
	if f.batch < 1 || f.batch > 64 {
		errs = append(errs, fmt.Sprintf("-batch %d outside [1, 64]: a batch is at most one uint64 of lanes", f.batch))
	}
	if f.fillTimeoutNs < 0 {
		errs = append(errs, "-fill-timeout-ns must be non-negative (0 = 2x the calibrated batch duration)")
	}
	if f.seed == 0 {
		errs = append(errs, "-seed must be nonzero (the workload stream is deterministic in it)")
	}
	return errs
}

// writeCSV dumps per-query completions in commit order.
func writeCSV(path string, res *queryserv.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	header := []string{"id", "root", "arrive_ns", "batch", "lane", "launch_ns", "done_ns", "latency_ns", "traversed_edges", "teps"}
	if err := w.Write(header); err != nil {
		f.Close()
		return err
	}
	for _, c := range res.Completed {
		row := []string{
			strconv.Itoa(c.ID),
			strconv.FormatInt(c.Root, 10),
			strconv.FormatFloat(c.ArriveNs, 'f', 0, 64),
			strconv.Itoa(c.Batch),
			strconv.Itoa(c.Lane),
			strconv.FormatFloat(c.LaunchNs, 'f', 0, 64),
			strconv.FormatFloat(c.DoneNs, 'f', 0, 64),
			strconv.FormatFloat(c.LatencyNs, 'f', 0, 64),
			strconv.FormatInt(c.TraversedEdges, 10),
			strconv.FormatFloat(c.TEPS, 'e', 6, 64),
		}
		if err := w.Write(row); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	scale := flag.Int("scale", 16, "graph scale (log2 of vertex count)")
	nodes := flag.Int("nodes", 2, "cluster nodes")
	policy := flag.String("policy", "bind", "placement: noflag | interleave | noflag8 | bind")
	opt := flag.String("opt", "compressed", "optimization: original | shareinq | shareall | par | compressed")
	mode := flag.String("mode", "hybrid", "algorithm: hybrid | topdown | bottomup")
	gran := flag.Int64("g", 64, "summary bitmap granularity (multiple of 64)")
	queries := flag.Int("queries", 256, "number of root queries in the workload")
	rate := flag.Float64("rate", 1, "offered load as a multiple of the calibrated full-batch capacity")
	batchSz := flag.Int("batch", 64, "admission policy: lanes per batch (1..64)")
	fillTimeout := flag.Float64("fill-timeout-ns", 0, "admission policy: max virtual ns a query waits for lane-mates (0 = 2x the calibrated batch duration)")
	seed := flag.Uint64("seed", 7, "workload stream seed (nonzero; the stream is deterministic in it)")
	csvOut := flag.String("csv", "", "write per-query completions as CSV to this file")
	flag.Parse()

	if errs := validateFlags(qdFlags{
		scale: *scale, nodes: *nodes, policy: *policy, opt: *opt, mode: *mode,
		gran: *gran, queries: *queries, rate: *rate,
		batch: *batchSz, fillTimeoutNs: *fillTimeout, seed: *seed,
	}); len(errs) != 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "bfsqd: %s\n", e)
		}
		os.Exit(2)
	}
	pol, _ := parsePolicy(*policy)
	opts := bfs.DefaultOptions()
	opts.Opt, _ = parseOpt(*opt)
	opts.Mode, _ = parseMode(*mode)
	opts.Granularity = *gran

	cfg := machine.Scaled(*scale, *scale+12)
	cfg.Nodes = *nodes
	cfg.WeakNode = -1
	params := rmat.Graph500(*scale)
	r, err := graph500.NewBatchRunner(graph500.Config{
		Machine: cfg, Policy: pol, Params: params, Opts: opts,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfsqd: %v\n", err)
		os.Exit(1)
	}

	// Calibrate capacity from one full batch of this policy's size, then
	// offer -rate times it.
	calib := r.RunBatch(params.Roots(*batchSz, r.HasEdgeGlobal))
	capacityQPS := float64(*batchSz) / (calib.TimeNs / 1e9)
	fillNs := *fillTimeout
	if fillNs == 0 {
		fillNs = 2 * calib.TimeNs
	}
	workload := queryserv.PoissonWorkload(*queries, *rate*capacityQPS, *seed,
		params.NumVertices(), r.HasEdgeGlobal)
	res, err := queryserv.Serve(r, queryserv.Policy{MaxBatch: *batchSz, FillTimeoutNs: fillNs}, workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfsqd: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("bfsqd scale=%d nodes=%d ranks=%d policy=%s opt=%s mode=%s batch=%d fill-timeout=%.0fns seed=%d\n",
		*scale, *nodes, *nodes*cfg.SocketsPerNode, pol, opts.Opt, opts.Mode, *batchSz, fillNs, *seed)
	fmt.Printf("calibration:      %.3f ms/batch -> capacity %.1f q/s; offered %.2fx = %.1f q/s\n",
		calib.TimeNs/1e6, capacityQPS, *rate, *rate*capacityQPS)
	fmt.Printf("served:           %d queries in %d batches (mean fill %.2f lanes)\n",
		len(res.Completed), len(res.Batches), res.MeanBatchFill)
	fmt.Printf("makespan:         %10.3f ms (virtual), throughput %.1f q/s\n",
		res.MakespanNs/1e6, res.ThroughputQPS)
	fmt.Printf("latency ms:       p50 %.3f   p90 %.3f   p95 %.3f   p99 %.3f\n",
		res.LatencyPercentile(50)/1e6, res.LatencyPercentile(90)/1e6,
		res.LatencyPercentile(95)/1e6, res.LatencyPercentile(99)/1e6)
	fmt.Printf("per-query TEPS:   p50 %.3e   p95 %.3e\n",
		res.TEPSPercentile(50), res.TEPSPercentile(95))
	fmt.Printf("allgather rounds: %d total, %.3f per query\n",
		res.AllgatherRounds, float64(res.AllgatherRounds)/float64(len(res.Completed)))
	if *csvOut != "" {
		if err := writeCSV(*csvOut, res); err != nil {
			fmt.Fprintf(os.Stderr, "bfsqd: csv: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bfsqd: wrote per-query CSV to %s\n", *csvOut)
	}
}
