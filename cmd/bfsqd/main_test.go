package main

import (
	"testing"

	"numabfs/internal/bfs"
	"numabfs/internal/machine"
)

func TestParseNames(t *testing.T) {
	if p, ok := parsePolicy("bind"); !ok || p != machine.PPN8Bind {
		t.Errorf("parsePolicy(bind) = %v, %v", p, ok)
	}
	if _, ok := parsePolicy("numa"); ok {
		t.Error("bogus policy parsed")
	}
	if o, ok := parseOpt("compressed"); !ok || o != bfs.OptCompressedAllgather {
		t.Errorf("parseOpt(compressed) = %v, %v", o, ok)
	}
	// The batched engine gates the overlapped allgather out, so the CLI
	// must not offer it.
	if _, ok := parseOpt("overlap"); ok {
		t.Error("overlap accepted by the batched CLI")
	}
	if m, ok := parseMode("bottomup"); !ok || m != bfs.ModeBottomUp {
		t.Errorf("parseMode(bottomup) = %v, %v", m, ok)
	}
	if _, ok := parseMode("direction-optimizing"); ok {
		t.Error("bogus mode parsed")
	}
}

// ok returns a fully valid flag set; cases below perturb one field.
func ok() qdFlags {
	return qdFlags{
		scale: 14, nodes: 2, policy: "bind", opt: "compressed", mode: "hybrid",
		gran: 64, queries: 64, rate: 1, batch: 64, fillTimeoutNs: 0, seed: 7,
	}
}

func TestValidateFlags(t *testing.T) {
	if errs := validateFlags(ok()); errs != nil {
		t.Fatalf("valid flags rejected: %v", errs)
	}
	cases := []struct {
		name string
		mod  func(*qdFlags)
	}{
		{"zero scale", func(f *qdFlags) { f.scale = 0 }},
		{"zero nodes", func(f *qdFlags) { f.nodes = 0 }},
		{"bogus policy", func(f *qdFlags) { f.policy = "numa" }},
		{"bogus opt", func(f *qdFlags) { f.opt = "compresed" }},
		{"overlap opt", func(f *qdFlags) { f.opt = "overlap" }},
		{"bogus mode", func(f *qdFlags) { f.mode = "sideways" }},
		{"granularity not multiple of 64", func(f *qdFlags) { f.gran = 100 }},
		{"zero granularity", func(f *qdFlags) { f.gran = 0 }},
		{"zero queries", func(f *qdFlags) { f.queries = 0 }},
		{"zero rate", func(f *qdFlags) { f.rate = 0 }},
		{"negative rate", func(f *qdFlags) { f.rate = -2 }},
		{"zero batch", func(f *qdFlags) { f.batch = 0 }},
		{"oversized batch", func(f *qdFlags) { f.batch = 65 }},
		{"negative fill timeout", func(f *qdFlags) { f.fillTimeoutNs = -1 }},
		{"zero seed", func(f *qdFlags) { f.seed = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := ok()
			tc.mod(&f)
			if errs := validateFlags(f); len(errs) == 0 {
				t.Errorf("invalid flags %+v accepted", f)
			}
		})
	}
	// Each distinct problem reports its own line.
	f := ok()
	f.batch = 100
	f.rate = -1
	f.seed = 0
	if errs := validateFlags(f); len(errs) != 3 {
		t.Fatalf("want 3 errors, got %d: %v", len(errs), errs)
	}
}
