package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"numabfs/internal/obs"
	"numabfs/internal/trace"
)

// writeRun exports a tiny one-session recording with the given td-comp
// duration to a JSONL file and returns its path.
func writeRun(t *testing.T, dir, name string, tdComp float64) string {
	t.Helper()
	rec := obs.NewRecorder()
	s := rec.NewSession("cfg")
	rk := s.AddRank(0, 0, 0)
	rk.PhaseSpan(trace.TDComp, 0, 0, tdComp)
	path := filepath.Join(dir, name)
	if err := rec.WriteTimelineFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTextAndJSON(t *testing.T) {
	dir := t.TempDir()
	a := writeRun(t, dir, "a.jsonl", 100)
	b := writeRun(t, dir, "b.jsonl", 70)

	var out, errOut bytes.Buffer
	if code := run([]string{a, b}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "td-comp") || !strings.Contains(text, "-0.0000") {
		t.Errorf("text output:\n%s", text)
	}

	out.Reset()
	if code := run([]string{"-json", a, b}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var d obs.RunDiff
	if err := json.Unmarshal(out.Bytes(), &d); err != nil {
		t.Fatalf("json output: %v", err)
	}
	if len(d.Sessions) != 1 || d.Sessions[0].DeltaNs != -30 {
		t.Fatalf("diff = %+v", d)
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no args: exit %d", code)
	}
	if code := run([]string{"one.jsonl"}, &out, &errOut); code != 2 {
		t.Fatalf("one arg: exit %d", code)
	}
	if code := run([]string{"-bogus", "a", "b"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
}

func TestRunMissingFile(t *testing.T) {
	dir := t.TempDir()
	a := writeRun(t, dir, "a.jsonl", 100)
	var out, errOut bytes.Buffer
	if code := run([]string{a, filepath.Join(dir, "nope.jsonl")}, &out, &errOut); code != 1 {
		t.Fatalf("missing file: exit %d", code)
	}
	// Corrupt input also fails cleanly.
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	errOut.Reset()
	if code := run([]string{a, bad}, &out, &errOut); code != 1 {
		t.Fatalf("corrupt file: exit %d", code)
	}
	if !strings.Contains(errOut.String(), "bad.jsonl") {
		t.Errorf("error does not name the file: %s", errOut.String())
	}
}
