// Command obsdiff compares two exported timeline runs (the JSONL
// streams written by bfsbench/graph500 -timeline) and attributes the
// total virtual-time delta per phase, per rank, and per session — the
// profiler view of "what did this optimization actually buy".
//
// Usage:
//
//	obsdiff baseline.jsonl candidate.jsonl
//	obsdiff -json baseline.jsonl candidate.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"numabfs/internal/obs"
)

// run is the testable entry point: parses args, prints the diff to
// stdout, and returns the process exit code (0 ok, 1 runtime error,
// 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obsdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the diff as JSON instead of text")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: obsdiff [-json] <baseline.jsonl> <candidate.jsonl>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	a, err := obs.ReadRunFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "obsdiff: %v\n", err)
		return 1
	}
	b, err := obs.ReadRunFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "obsdiff: %v\n", err)
		return 1
	}
	d := obs.DiffRuns(a, b)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			fmt.Fprintf(stderr, "obsdiff: %v\n", err)
			return 1
		}
		return 0
	}
	fmt.Fprint(stdout, d.String())
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
