// Command graph500 runs the Graph500 benchmark methodology on the
// simulated NUMA cluster: generate an R-MAT graph, build the distributed
// graph, run BFS from 64 roots, validate, and report harmonic-mean TEPS
// with the per-phase breakdown.
//
// Usage:
//
//	graph500 -scale 18 -nodes 4 -policy bind -opt par -g 256 -roots 16 -validate
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"numabfs"
	"numabfs/internal/bfs"
	"numabfs/internal/trace"
)

// writeCSV dumps per-root results: one row per BFS iteration with the
// phase breakdown, ready for plotting.
func writeCSV(path string, perRoot []bfs.RootResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	header := []string{
		"root", "time_ns", "teps", "visited", "traversed_edges", "levels",
		"td_comp_ns", "td_comm_ns", "bu_comp_ns", "bu_comm_ns", "switch_ns", "stall_ns",
	}
	if err := w.Write(header); err != nil {
		f.Close()
		return err
	}
	for _, r := range perRoot {
		b := r.Breakdown
		row := []string{
			strconv.FormatInt(r.Root, 10),
			strconv.FormatFloat(r.TimeNs, 'f', 0, 64),
			strconv.FormatFloat(r.TEPS, 'e', 6, 64),
			strconv.FormatInt(r.Visited, 10),
			strconv.FormatInt(r.TraversedEdges, 10),
			strconv.Itoa(r.Levels),
			strconv.FormatFloat(b.Ns[trace.TDComp], 'f', 0, 64),
			strconv.FormatFloat(b.Ns[trace.TDComm], 'f', 0, 64),
			strconv.FormatFloat(b.Ns[trace.BUComp], 'f', 0, 64),
			strconv.FormatFloat(b.Ns[trace.BUComm], 'f', 0, 64),
			strconv.FormatFloat(b.Ns[trace.Switch], 'f', 0, 64),
			strconv.FormatFloat(b.Ns[trace.Stall], 'f', 0, 64),
		}
		if err := w.Write(row); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	scale := flag.Int("scale", 16, "graph scale (log2 of vertex count)")
	nodes := flag.Int("nodes", 1, "cluster nodes")
	paperScale := flag.Int("paperscale", 0, "paper-equivalent scale for machine scaling (0 = scale+12)")
	policy := flag.String("policy", "bind", "placement: noflag | interleave | noflag8 | bind")
	opt := flag.String("opt", "original", "optimization: original | shareinq | shareall | par | compressed | overlap")
	mode := flag.String("mode", "hybrid", "algorithm: hybrid | topdown | bottomup")
	gran := flag.Int64("g", 64, "summary bitmap granularity (multiple of 64)")
	roots := flag.Int("roots", 64, "number of BFS roots")
	validate := flag.Bool("validate", false, "validate every BFS tree")
	seed := flag.Uint64("seed", 0, "graph seed (0 = default)")
	levels := flag.Bool("levels", false, "print the frontier growth curve of the first root")
	csvOut := flag.String("csv", "", "write per-root results as CSV to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file (open in chrome://tracing or Perfetto)")
	metrics := flag.Bool("metrics", false, "print the aggregated observability report")
	timelineOut := flag.String("timeline", "", "write the run timeline (spans, counters, gauges) as a JSONL event stream to this file — the obsdiff input format")
	htmlOut := flag.String("report-html", "", "write a self-contained HTML report (rank x phase heatmaps, gauge timelines) to this file")
	promOut := flag.String("prom", "", "write a Prometheus-style text exposition of the run to this file")
	sampleNs := flag.Float64("sample-ns", 100_000, "virtual-time gauge sampling grid pitch in ns, used by -timeline/-report-html/-prom")
	flag.Parse()

	if *sampleNs <= 0 {
		fmt.Fprintln(os.Stderr, "graph500: -sample-ns must be positive")
		os.Exit(2)
	}
	sampled := *timelineOut != "" || *htmlOut != "" || *promOut != ""
	sampleNsSet := false
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == "sample-ns" {
			sampleNsSet = true
		}
	})
	if sampleNsSet && !sampled {
		fmt.Fprintln(os.Stderr, "graph500: -sample-ns has no effect without -timeline, -report-html or -prom")
		os.Exit(2)
	}

	pol, ok := map[string]numabfs.Policy{
		"noflag":     numabfs.PPN1NoFlag,
		"interleave": numabfs.PPN1Interleave,
		"noflag8":    numabfs.PPN8NoFlag,
		"bind":       numabfs.PPN8Bind,
	}[*policy]
	if !ok {
		fmt.Fprintf(os.Stderr, "graph500: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	opts := numabfs.DefaultOptions()
	opts.Granularity = *gran
	switch *opt {
	case "original":
		opts.Opt = numabfs.OptOriginal
	case "shareinq":
		opts.Opt = numabfs.OptShareInQueue
	case "shareall":
		opts.Opt = numabfs.OptShareAll
	case "par":
		opts.Opt = numabfs.OptParAllgather
	case "compressed":
		opts.Opt = numabfs.OptCompressedAllgather
	case "overlap":
		opts.Opt = numabfs.OptOverlapAllgather
	default:
		fmt.Fprintf(os.Stderr, "graph500: unknown optimization %q\n", *opt)
		os.Exit(2)
	}
	switch *mode {
	case "hybrid":
		opts.Mode = numabfs.ModeHybrid
	case "topdown":
		opts.Mode = numabfs.ModeTopDown
	case "bottomup":
		opts.Mode = numabfs.ModeBottomUp
	default:
		fmt.Fprintf(os.Stderr, "graph500: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	ps := *paperScale
	if ps == 0 {
		ps = *scale + 12
	}
	cfg := numabfs.ScaledCluster(*scale, ps).WithNodes(*nodes)
	params := numabfs.Graph500Params(*scale)
	if *seed != 0 {
		params = params.WithSeed(*seed)
	}

	var rec *numabfs.Recorder
	if *traceOut != "" || *metrics || sampled {
		rec = numabfs.NewRecorder()
	}
	bench := numabfs.Benchmark{
		Machine:  cfg,
		Policy:   pol,
		Params:   params,
		Opts:     opts,
		NumRoots: *roots,
		Validate: *validate,
		Obs:      rec,
	}
	if sampled {
		bench.SampleNs = *sampleNs
	}
	res, err := numabfs.Run(bench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graph500: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("graph500 scale=%d nodes=%d ranks=%d policy=%s opt=%s mode=%s g=%d roots=%d\n",
		*scale, *nodes, *nodes*cfg.SocketsPerNode, pol, opts.Opt, opts.Mode, *gran, *roots)
	fmt.Printf("construction:     %10.3f ms (virtual)\n", res.SetupNs/1e6)
	fmt.Printf("harmonic TEPS:    %10.3e\n", res.HarmonicTEPS)
	fmt.Printf("mean TEPS:        %10.3e   (min %.3e, max %.3e)\n", res.MeanTEPS, res.MinTEPS, res.MaxTEPS)
	fmt.Printf("mean time/root:   %10.3f ms (virtual)\n", res.MeanTimeNs/1e6)
	b := res.Breakdown
	fmt.Printf("breakdown (mean): td-comp %.1f%%  td-comm %.1f%%  bu-comp %.1f%%  bu-comm %.1f%%  switch %.1f%%  stall %.1f%%\n",
		100*b.Proportion(trace.TDComp), 100*b.Proportion(trace.TDComm),
		100*b.Proportion(trace.BUComp), 100*b.Proportion(trace.BUComm),
		100*b.Proportion(trace.Switch), 100*b.Proportion(trace.Stall))
	fmt.Printf("levels (mean):    %d top-down + %d bottom-up\n", b.TDLevels, b.BULevels)
	if *validate {
		fmt.Println("validation:       all BFS trees pass the Graph500 checks")
	}
	if *csvOut != "" {
		if err := writeCSV(*csvOut, res.PerRoot); err != nil {
			fmt.Fprintf(os.Stderr, "graph500: csv: %v\n", err)
			os.Exit(1)
		}
	}
	if *metrics {
		fmt.Print(rec.BuildReport().String())
	}
	if *traceOut != "" {
		if err := rec.WriteChromeTraceFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "graph500: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "graph500: wrote Chrome trace to %s\n", *traceOut)
	}
	if *timelineOut != "" {
		if err := rec.WriteTimelineFile(*timelineOut); err != nil {
			fmt.Fprintf(os.Stderr, "graph500: timeline: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "graph500: wrote timeline JSONL to %s\n", *timelineOut)
	}
	if *htmlOut != "" {
		if err := rec.WriteHTMLReportFile(*htmlOut); err != nil {
			fmt.Fprintf(os.Stderr, "graph500: report-html: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "graph500: wrote HTML report to %s\n", *htmlOut)
	}
	if *promOut != "" {
		if err := rec.WritePromFile(*promOut); err != nil {
			fmt.Fprintf(os.Stderr, "graph500: prom: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "graph500: wrote Prometheus text to %s\n", *promOut)
	}
	if *levels && len(res.PerRoot) > 0 {
		fmt.Printf("\nfrontier growth (root %d):\n", res.PerRoot[0].Root)
		fmt.Printf("  %5s %-9s %12s %14s %12s\n", "level", "procedure", "frontier", "frontier edges", "ms")
		for _, ls := range res.PerRoot[0].LevelStats {
			proc := "top-down"
			if ls.BottomUp {
				proc = "bottom-up"
			}
			fmt.Printf("  %5d %-9s %12d %14d %12.4f\n", ls.Level, proc, ls.NF, ls.MF, ls.Ns/1e6)
		}
	}
}
