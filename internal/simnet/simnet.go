// Package simnet models the cluster interconnect of the paper's testbed:
// two 40 Gb/s InfiniBand ports per node behind one 36-port switch, plus
// the shared-memory path MPI uses between ranks of the same node.
//
// Transfers are charged with an alpha-beta model: a fixed per-message
// overhead plus bytes over the path bandwidth. Inter-node bandwidth
// depends on how many same-node ranks drive the NIC concurrently — one
// rank's stream reaches only about half of the two-port peak, which is
// the measured behaviour behind Fig. 4 and the motivation for the
// parallelized allgather of Section III.B. Collective implementations
// know their own communication structure, so they pass the concurrent
// stream count explicitly; this keeps the model deterministic.
package simnet

import (
	"fmt"
	"sync/atomic"

	"numabfs/internal/machine"
)

// Network charges virtual time for transfers over a machine's topology
// and keeps volume counters used to verify Eq. (1) and Eq. (2).
type Network struct {
	cfg machine.Config

	intraBytes atomic.Int64 // bytes moved between ranks of one node
	interBytes atomic.Int64 // bytes moved between nodes
	intraMsgs  atomic.Int64
	interMsgs  atomic.Int64

	// Raw (logical, pre-compression) volume. TransferTime counts what
	// crosses the wire; when payloads travel encoded (wire formats of
	// internal/wire), the mpi layer also reports the logical size here,
	// so wire-vs-raw shows the compression savings in one run. For
	// uncompressed traffic the raw counters equal the wire counters.
	rawIntraBytes atomic.Int64
	rawInterBytes atomic.Int64
}

// New returns a network over cfg.
func New(cfg machine.Config) *Network {
	return &Network{cfg: cfg}
}

// Config returns the machine configuration the network models.
func (n *Network) Config() machine.Config { return n.cfg }

// weak reports whether a node is the testbed's ill-performing node.
func (n *Network) weak(node int) bool {
	return n.cfg.WeakNode >= 0 && node == n.cfg.WeakNode
}

// InterNodeBandwidth returns the per-stream bandwidth (bytes/ns) of a
// transfer between srcNode and dstNode when `streams` same-node ranks
// drive each NIC concurrently.
func (n *Network) InterNodeBandwidth(srcNode, dstNode, streams int) float64 {
	bw := n.cfg.StreamBandwidth(streams)
	if n.weak(srcNode) || n.weak(dstNode) {
		f := n.cfg.WeakNodeBWFactor
		if f <= 0 || f > 1 {
			f = 1
		}
		bw *= f
	}
	return bw
}

// IntraNodeBandwidth returns the per-stream shared-memory copy bandwidth
// when `streams` rank pairs of the node copy concurrently. The copies all
// run through the node's memory system, so they share it.
func (n *Network) IntraNodeBandwidth(streams int) float64 {
	if streams < 1 {
		streams = 1
	}
	return n.cfg.ShmCopyBW / float64(streams)
}

// TransferTime returns the virtual duration (ns) of moving `bytes` from a
// rank on srcNode to a rank on dstNode with `streams` concurrent streams
// on the contended resource (the NIC for inter-node, the memory system
// for intra-node). A zero-byte transfer still pays the alpha overhead —
// it is a synchronizing message.
func (n *Network) TransferTime(bytes int64, srcNode, dstNode, streams int) float64 {
	if bytes < 0 {
		panic(fmt.Sprintf("simnet: negative transfer size %d", bytes))
	}
	if srcNode == dstNode {
		n.intraBytes.Add(bytes)
		n.intraMsgs.Add(1)
		return n.cfg.IntraNodeAlphaNs + float64(bytes)/n.IntraNodeBandwidth(streams)
	}
	n.interBytes.Add(bytes)
	n.interMsgs.Add(1)
	return n.cfg.InterNodeAlphaNs + float64(bytes)/n.InterNodeBandwidth(srcNode, dstNode, streams)
}

// CountRaw records the logical (pre-compression) size of one received
// message. The mpi layer calls it exactly once per message, on the
// receiver side, next to the TransferTime charge for the wire bytes.
func (n *Network) CountRaw(bytes int64, intra bool) {
	if intra {
		n.rawIntraBytes.Add(bytes)
		return
	}
	n.rawInterBytes.Add(bytes)
}

// Volume reports cumulative transferred bytes and message counts. The
// Raw fields are the logical (pre-compression) volume; they equal the
// wire fields unless encoded payloads were in flight.
type Volume struct {
	IntraBytes, InterBytes       int64
	IntraMsgs, InterMsgs         int64
	RawIntraBytes, RawInterBytes int64
}

// Volume returns the network's cumulative counters.
func (n *Network) Volume() Volume {
	return Volume{
		IntraBytes:    n.intraBytes.Load(),
		InterBytes:    n.interBytes.Load(),
		IntraMsgs:     n.intraMsgs.Load(),
		InterMsgs:     n.interMsgs.Load(),
		RawIntraBytes: n.rawIntraBytes.Load(),
		RawInterBytes: n.rawInterBytes.Load(),
	}
}

// ResetVolume zeroes the counters (between experiment phases).
func (n *Network) ResetVolume() {
	n.intraBytes.Store(0)
	n.interBytes.Store(0)
	n.intraMsgs.Store(0)
	n.interMsgs.Store(0)
	n.rawIntraBytes.Store(0)
	n.rawInterBytes.Store(0)
}

// NodeBandwidthAt returns the aggregate node-to-node bandwidth achieved
// when k ranks per node communicate simultaneously: k streams at the
// shared-NIC rate. This is the curve of Fig. 4.
func (n *Network) NodeBandwidthAt(k int) float64 {
	return float64(k) * n.cfg.StreamBandwidth(k)
}
