// Package simnet models the cluster interconnect of the paper's testbed:
// two 40 Gb/s InfiniBand ports per node behind one 36-port switch, plus
// the shared-memory path MPI uses between ranks of the same node.
//
// Transfers are charged with an alpha-beta model: a fixed per-message
// overhead plus bytes over the path bandwidth. Inter-node bandwidth
// depends on how many same-node ranks drive the NIC concurrently — one
// rank's stream reaches only about half of the two-port peak, which is
// the measured behaviour behind Fig. 4 and the motivation for the
// parallelized allgather of Section III.B. Collective implementations
// know their own communication structure, so they pass the concurrent
// stream count explicitly; this keeps the model deterministic.
package simnet

import (
	"fmt"
	"sync/atomic"

	"numabfs/internal/fault"
	"numabfs/internal/machine"
)

// Network charges virtual time for transfers over a machine's topology
// and keeps volume counters used to verify Eq. (1) and Eq. (2).
type Network struct {
	cfg machine.Config

	// inj perturbs inter-node bandwidth (internal/fault). New installs
	// the config's weak node as a trivial static plan; SetInjector
	// replaces it wholesale. Held through an atomic pointer because
	// SetInjector (driver goroutine, between runs) would otherwise be a
	// plain write racing TransferTimeAt readers on rank goroutines.
	inj atomic.Pointer[fault.Injector]

	intraBytes atomic.Int64 // bytes moved between ranks of one node
	interBytes atomic.Int64 // bytes moved between nodes
	intraMsgs  atomic.Int64
	interMsgs  atomic.Int64

	// Raw (logical, pre-compression) volume. TransferTime counts what
	// crosses the wire; when payloads travel encoded (wire formats of
	// internal/wire), the mpi layer also reports the logical size here,
	// so wire-vs-raw shows the compression savings in one run. For
	// uncompressed traffic the raw counters equal the wire counters.
	rawIntraBytes atomic.Int64
	rawInterBytes atomic.Int64

	degradedMsgs atomic.Int64 // inter-node messages sent at reduced bandwidth

	// Reliable-transport ledger (internal/mpi under a fault.Plan with
	// Loss events). Protocol traffic — frame headers, retransmitted
	// frames, duplicates and acks — lands in interBytes like any wire
	// traffic; xportOverheadBytes records how much of interBytes it is,
	// so goodput = InterBytes - XportOverheadBytes and the goodput /
	// raw-wire split mirrors the compression ledger's wire / raw split.
	xportOverheadBytes atomic.Int64
	xportRetransmits   atomic.Int64 // frames sent beyond the first attempt
	xportCorruptions   atomic.Int64 // frames delivered corrupted, caught by CRC
	xportDuplicates    atomic.Int64 // duplicate frame deliveries
	xportReorders      atomic.Int64 // frames held for resequencing
	xportAcks          atomic.Int64 // ack frames
}

// New returns a network over cfg. The testbed's ill-performing node
// (cfg.WeakNode) is realized as a static single-event fault plan; it is
// validated by machine.Config.Validate, so compiling it cannot fail.
func New(cfg machine.Config) *Network {
	inj, err := fault.NewInjector(fault.WeakNode(cfg.WeakNode, cfg.WeakNodeBWFactor), 0)
	if err != nil {
		panic(fmt.Sprintf("simnet: invalid weak-node config: %v", err))
	}
	n := &Network{cfg: cfg}
	n.inj.Store(inj)
	return n
}

// Config returns the machine configuration the network models.
func (n *Network) Config() machine.Config { return n.cfg }

// Injector returns the network's current fault injector.
func (n *Network) Injector() *fault.Injector { return n.inj.Load() }

// SetInjector replaces the fault injector. The caller owns composing the
// config's weak node into the new plan if it should persist (see
// mpi.World.InjectFaults). The swap is atomic, so a concurrent transfer
// is charged consistently under exactly one of the two injectors; for
// deterministic results, still install plans only between runs.
func (n *Network) SetInjector(inj *fault.Injector) { n.inj.Store(inj) }

// InterNodeBandwidth returns the per-stream bandwidth (bytes/ns) of a
// transfer between srcNode and dstNode when `streams` same-node ranks
// drive each NIC concurrently, at virtual time zero.
func (n *Network) InterNodeBandwidth(srcNode, dstNode, streams int) float64 {
	return n.InterNodeBandwidthAt(0, srcNode, dstNode, streams)
}

// InterNodeBandwidthAt is InterNodeBandwidth at virtual time `at`, when
// scheduled fault events may degrade the link.
func (n *Network) InterNodeBandwidthAt(at float64, srcNode, dstNode, streams int) float64 {
	bw := n.cfg.StreamBandwidth(streams)
	if f := n.inj.Load().LinkFactor(srcNode, dstNode, at); f != 1 {
		bw *= f
	}
	return bw
}

// PeakStreamBandwidth returns the undegraded inter-node bandwidth
// (bytes/ns) a single rank's stream can drive — the normalization
// constant the observability layer's link-utilization view divides
// per-bucket wire volume by.
func (n *Network) PeakStreamBandwidth() float64 { return n.cfg.StreamBandwidth(1) }

// IntraNodeBandwidth returns the per-stream shared-memory copy bandwidth
// when `streams` rank pairs of the node copy concurrently. The copies all
// run through the node's memory system, so they share it.
func (n *Network) IntraNodeBandwidth(streams int) float64 {
	if streams < 1 {
		panic(fmt.Sprintf("simnet: stream count %d, need >= 1", streams))
	}
	return n.cfg.ShmCopyBW / float64(streams)
}

// TransferTime returns the virtual duration (ns) of moving `bytes` from a
// rank on srcNode to a rank on dstNode with `streams` concurrent streams
// on the contended resource (the NIC for inter-node, the memory system
// for intra-node). A zero-byte transfer still pays the alpha overhead —
// it is a synchronizing message. Equivalent to TransferTimeAt at virtual
// time zero (before any scheduled fault event can start).
func (n *Network) TransferTime(bytes int64, srcNode, dstNode, streams int) float64 {
	return n.TransferTimeAt(0, bytes, srcNode, dstNode, streams)
}

// TransferTimeAt is TransferTime for a transfer beginning at virtual
// time `at`: bandwidth-degradation events active at that moment slow the
// inter-node path. The degradation factor is sampled once at transfer
// start — events are coarse relative to single messages, so integrating
// the rate over a window boundary is not worth the model complexity.
func (n *Network) TransferTimeAt(at float64, bytes int64, srcNode, dstNode, streams int) float64 {
	if bytes < 0 {
		panic(fmt.Sprintf("simnet: negative transfer size %d", bytes))
	}
	if srcNode == dstNode {
		n.intraBytes.Add(bytes)
		n.intraMsgs.Add(1)
		return n.cfg.IntraNodeAlphaNs + float64(bytes)/n.IntraNodeBandwidth(streams)
	}
	n.interBytes.Add(bytes)
	n.interMsgs.Add(1)
	bw := n.cfg.StreamBandwidth(streams)
	if f := n.inj.Load().LinkFactor(srcNode, dstNode, at); f != 1 {
		bw *= f
		n.degradedMsgs.Add(1)
	}
	return n.cfg.InterNodeAlphaNs + float64(bytes)/bw
}

// CountRaw records the logical (pre-compression) size of one received
// message. The mpi layer calls it exactly once per message, on the
// receiver side, next to the TransferTime charge for the wire bytes.
func (n *Network) CountRaw(bytes int64, intra bool) {
	if intra {
		n.rawIntraBytes.Add(bytes)
		return
	}
	n.rawInterBytes.Add(bytes)
}

// CountXportOverhead attributes `bytes` of already-charged wire traffic
// to the reliable-transport protocol (frame headers, retransmissions,
// duplicates, acks). The transport calls it next to the TransferTimeAt
// charges it accounts for.
func (n *Network) CountXportOverhead(bytes int64) { n.xportOverheadBytes.Add(bytes) }

// CountXportEvents adds one batch of per-message transport outcomes:
// retransmitted frames (of which `corruptions` arrived but failed the
// CRC), duplicate deliveries, resequencing holds and ack frames.
func (n *Network) CountXportEvents(retransmits, corruptions, duplicates, reorders, acks int64) {
	if retransmits != 0 {
		n.xportRetransmits.Add(retransmits)
	}
	if corruptions != 0 {
		n.xportCorruptions.Add(corruptions)
	}
	if duplicates != 0 {
		n.xportDuplicates.Add(duplicates)
	}
	if reorders != 0 {
		n.xportReorders.Add(reorders)
	}
	if acks != 0 {
		n.xportAcks.Add(acks)
	}
}

// Xport is the reliable-transport slice of a Volume: how much of the
// inter-node wire traffic was protocol overhead rather than payload,
// and the event counts behind it. All-zero when no loss plan is active.
type Xport struct {
	OverheadBytes int64 // header + retransmit + duplicate + ack bytes within InterBytes
	Retransmits   int64
	Corruptions   int64
	Duplicates    int64
	Reorders      int64
	Acks          int64
}

// Volume reports cumulative transferred bytes and message counts. The
// Raw fields are the logical (pre-compression) volume; they equal the
// wire fields unless encoded payloads were in flight.
type Volume struct {
	IntraBytes, InterBytes       int64
	IntraMsgs, InterMsgs         int64
	RawIntraBytes, RawInterBytes int64

	// DegradedMsgs counts inter-node messages that paid a fault-injected
	// bandwidth penalty (weak node, brown-out, or link event).
	DegradedMsgs int64

	// Xport is the reliable-transport overhead ledger. Inter-node
	// goodput is InterBytes - Xport.OverheadBytes.
	Xport Xport
}

// Goodput returns the inter-node payload bytes: wire volume minus
// reliable-transport protocol overhead. Without a loss plan it equals
// InterBytes exactly.
func (v Volume) Goodput() int64 { return v.InterBytes - v.Xport.OverheadBytes }

// Volume returns the network's cumulative counters.
func (n *Network) Volume() Volume {
	return Volume{
		IntraBytes:    n.intraBytes.Load(),
		InterBytes:    n.interBytes.Load(),
		IntraMsgs:     n.intraMsgs.Load(),
		InterMsgs:     n.interMsgs.Load(),
		RawIntraBytes: n.rawIntraBytes.Load(),
		RawInterBytes: n.rawInterBytes.Load(),
		DegradedMsgs:  n.degradedMsgs.Load(),
		Xport: Xport{
			OverheadBytes: n.xportOverheadBytes.Load(),
			Retransmits:   n.xportRetransmits.Load(),
			Corruptions:   n.xportCorruptions.Load(),
			Duplicates:    n.xportDuplicates.Load(),
			Reorders:      n.xportReorders.Load(),
			Acks:          n.xportAcks.Load(),
		},
	}
}

// ResetVolume zeroes the counters (between experiment phases).
func (n *Network) ResetVolume() {
	n.intraBytes.Store(0)
	n.interBytes.Store(0)
	n.intraMsgs.Store(0)
	n.interMsgs.Store(0)
	n.rawIntraBytes.Store(0)
	n.rawInterBytes.Store(0)
	n.degradedMsgs.Store(0)
	n.xportOverheadBytes.Store(0)
	n.xportRetransmits.Store(0)
	n.xportCorruptions.Store(0)
	n.xportDuplicates.Store(0)
	n.xportReorders.Store(0)
	n.xportAcks.Store(0)
}

// NodeBandwidthAt returns the aggregate node-to-node bandwidth achieved
// when k ranks per node communicate simultaneously: k streams at the
// shared-NIC rate. This is the curve of Fig. 4.
func (n *Network) NodeBandwidthAt(k int) float64 {
	return float64(k) * n.cfg.StreamBandwidth(k)
}
