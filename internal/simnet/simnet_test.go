package simnet

import (
	"testing"
	"testing/quick"

	"numabfs/internal/fault"
	"numabfs/internal/machine"
)

func testNet() *Network {
	cfg := machine.TableI()
	cfg.WeakNode = -1
	return New(cfg)
}

func TestTransferTimeComponents(t *testing.T) {
	n := testNet()
	cfg := n.Config()
	// Zero-byte transfers pay only alpha.
	if got := n.TransferTime(0, 0, 1, 1); got != cfg.InterNodeAlphaNs {
		t.Fatalf("zero-byte inter = %g, want alpha %g", got, cfg.InterNodeAlphaNs)
	}
	if got := n.TransferTime(0, 0, 0, 1); got != cfg.IntraNodeAlphaNs {
		t.Fatalf("zero-byte intra = %g, want alpha %g", got, cfg.IntraNodeAlphaNs)
	}
	// One MB inter-node at one stream: alpha + bytes/stream-bw.
	want := cfg.InterNodeAlphaNs + float64(1<<20)/cfg.StreamBandwidth(1)
	if got := n.TransferTime(1<<20, 0, 1, 1); got != want {
		t.Fatalf("1MB inter = %g, want %g", got, want)
	}
}

func TestMoreStreamsSlowerEach(t *testing.T) {
	n := testNet()
	t1 := n.TransferTime(1<<20, 0, 1, 1)
	t8 := n.TransferTime(1<<20, 0, 1, 8)
	if t8 <= t1 {
		t.Fatalf("per-stream time with 8 streams (%g) should exceed 1 stream (%g)", t8, t1)
	}
	// But aggregate improves: 8 concurrent 1MB transfers finish sooner
	// than 8 sequential ones.
	if t8 >= 8*t1 {
		t.Fatalf("8 streams give no aggregate benefit: %g vs %g", t8, 8*t1)
	}
}

func TestWeakNodeSlowsTransfers(t *testing.T) {
	cfg := machine.TableI()
	cfg.WeakNode = 2
	cfg.WeakNodeBWFactor = 0.5
	n := New(cfg)
	normal := n.TransferTime(1<<20, 0, 1, 1)
	weakSrc := n.TransferTime(1<<20, 2, 1, 1)
	weakDst := n.TransferTime(1<<20, 0, 2, 1)
	if weakSrc <= normal || weakDst <= normal {
		t.Fatalf("weak node not slower: normal %g, src %g, dst %g", normal, weakSrc, weakDst)
	}
	// Intra-node traffic on the weak node is unaffected (its problem is
	// the InfiniBand path).
	intraWeak := n.TransferTime(1<<20, 2, 2, 1)
	intraOK := n.TransferTime(1<<20, 0, 0, 1)
	if intraWeak != intraOK {
		t.Fatalf("weak node slowed intra traffic: %g vs %g", intraWeak, intraOK)
	}
}

func TestVolumeCounters(t *testing.T) {
	n := testNet()
	n.TransferTime(100, 0, 0, 1)
	n.TransferTime(200, 0, 1, 1)
	n.TransferTime(300, 1, 0, 1)
	v := n.Volume()
	if v.IntraBytes != 100 || v.InterBytes != 500 {
		t.Fatalf("volume = %+v", v)
	}
	if v.IntraMsgs != 1 || v.InterMsgs != 2 {
		t.Fatalf("messages = %+v", v)
	}
	n.ResetVolume()
	if v := n.Volume(); v.IntraBytes != 0 || v.InterBytes != 0 {
		t.Fatalf("counters survive reset: %+v", v)
	}
}

func TestNodeBandwidthCurve(t *testing.T) {
	// Fig. 4's shape: monotone rise to the two-port peak.
	n := testNet()
	prev := 0.0
	for k := 1; k <= 8; k++ {
		bw := n.NodeBandwidthAt(k)
		if bw < prev {
			t.Fatalf("bandwidth curve not monotone at %d streams", k)
		}
		prev = bw
	}
	if peak := n.Config().NodeIBBandwidth(); prev != peak {
		t.Fatalf("8 streams reach %g, want peak %g", prev, peak)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	testNet().TransferTime(-1, 0, 1, 1)
}

func TestTransferTimeMonotoneInSizeProperty(t *testing.T) {
	n := testNet()
	f := func(a, b uint32, sameNode bool, streams uint8) bool {
		s := int(streams%8) + 1
		dst := 1
		if sameNode {
			dst = 0
		}
		lo, hi := int64(a%1e6), int64(b%1e6)
		if lo > hi {
			lo, hi = hi, lo
		}
		return n.TransferTime(lo, 0, dst, s) <= n.TransferTime(hi, 0, dst, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTransferTimeAtWindowedDegradation(t *testing.T) {
	n := testNet()
	inj, err := fault.NewInjector(fault.Plan{BW: []fault.BWEvent{
		{Node: 1, Src: -1, Dst: -1, Factor: 0.5, FromNs: 1000, UntilNs: 2000},
	}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	n.SetInjector(inj)
	clean := n.TransferTimeAt(0, 1<<20, 0, 1, 1)
	during := n.TransferTimeAt(1500, 1<<20, 0, 1, 1)
	after := n.TransferTimeAt(2000, 1<<20, 0, 1, 1)
	if during <= clean {
		t.Fatalf("brown-out window did not slow the transfer: %g vs %g", during, clean)
	}
	if clean != after {
		t.Fatalf("degradation leaked outside its window: %g vs %g", clean, after)
	}
	// Intra-node transfers never pay inter-node link degradation.
	if a, b := n.TransferTimeAt(1500, 1<<20, 1, 1, 4), n.TransferTimeAt(0, 1<<20, 1, 1, 4); a != b {
		t.Fatalf("link fault applied to intra-node transfer: %g vs %g", a, b)
	}
	if got := n.Volume().DegradedMsgs; got != 1 {
		t.Fatalf("DegradedMsgs = %d, want 1 (only the in-window inter-node transfer)", got)
	}
}

func TestIntraNodeBandwidthRejectsBadStreams(t *testing.T) {
	n := testNet()
	defer func() {
		if recover() == nil {
			t.Fatal("IntraNodeBandwidth(0) should panic, not silently clamp")
		}
	}()
	n.IntraNodeBandwidth(0)
}

func TestXportLedger(t *testing.T) {
	n := testNet()
	if n.Volume().Xport != (Xport{}) {
		t.Fatal("fresh network has transport counters")
	}
	n.CountXportOverhead(48)
	n.CountXportEvents(3, 1, 2, 1, 5)
	wire := n.TransferTime(1000, 0, 1, 1) // payload charge, for Goodput below
	if wire <= 0 {
		t.Fatal("transfer charged no time")
	}
	v := n.Volume()
	want := Xport{OverheadBytes: 48, Retransmits: 3, Corruptions: 1, Duplicates: 2, Reorders: 1, Acks: 5}
	if v.Xport != want {
		t.Fatalf("xport = %+v, want %+v", v.Xport, want)
	}
	if g := v.Goodput(); g != v.InterBytes-48 {
		t.Fatalf("goodput %d, want inter %d - overhead 48", g, v.InterBytes)
	}
	n.ResetVolume()
	if n.Volume().Xport != (Xport{}) {
		t.Fatal("ResetVolume left transport counters")
	}
}

// TestSetInjectorConcurrentWithTransfers pins the injector swap as safe
// under the race detector: SetInjector was a plain pointer write racing
// TransferTimeAt readers on rank goroutines; it is now an atomic swap.
// Run with -race to make this meaningful.
func TestSetInjectorConcurrentWithTransfers(t *testing.T) {
	n := testNet()
	inj, err := fault.NewInjector(fault.WeakNode(0, 0.5), 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			n.TransferTimeAt(float64(i), 4096, 0, 1, 1)
			n.InterNodeBandwidthAt(float64(i), 0, 1, 1)
		}
	}()
	for i := 0; i < 1000; i++ {
		n.SetInjector(inj)
		if n.Injector() == nil {
			t.Fatal("Injector() returned nil after SetInjector")
		}
	}
	<-done
}
