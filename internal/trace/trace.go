// Package trace records the per-phase execution-time breakdown the
// paper's profiling reports (Figs. 11-14): top-down computation and
// communication, bottom-up computation and communication, the top-down /
// bottom-up switch conversions, and stall (idle time from load imbalance,
// measured at the barrier preceding each communication phase).
package trace

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Phase identifies one component of BFS execution time.
type Phase int

const (
	TDComp   Phase = iota // top-down computation
	TDComm                // top-down communication (alltoallv + allreduce)
	BUComp                // bottom-up computation
	BUComm                // bottom-up communication (the two allgathers)
	Switch                // td->bu and bu->td data-structure conversion
	Stall                 // idle time at phase barriers (load imbalance)
	Ckpt                  // level-boundary checkpoint saves (fault tolerance)
	Recovery              // crash detection, rollback and state restore
	Xport                 // reliable-transport stall (retransmits, backoff, protocol frames)
	Overlap               // communication hidden behind computation (pipelined allgather)
	Reown                 // survivor repartitioning: re-owning a dead rank's state
	NumPhases
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case TDComp:
		return "td-comp"
	case TDComm:
		return "td-comm"
	case BUComp:
		return "bu-comp"
	case BUComm:
		return "bu-comm"
	case Switch:
		return "switch"
	case Stall:
		return "stall"
	case Ckpt:
		return "ckpt"
	case Recovery:
		return "recovery"
	case Xport:
		return "xport"
	case Overlap:
		return "overlap"
	case Reown:
		return "reown"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// PhaseNames returns every phase's name in enum order — the canonical
// column order for exporters that key rows by phase name. The slice is
// freshly allocated; callers may keep it.
func PhaseNames() []string {
	names := make([]string, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		names[p] = p.String()
	}
	return names
}

// PhaseByName resolves a phase name produced by Phase.String; ok is
// false for anything else. Exporters use it to fold span streams keyed
// by name back onto the enum without a quadratic name scan.
func PhaseByName(name string) (Phase, bool) {
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() == name {
			return p, true
		}
	}
	return 0, false
}

// LevelStat records one BFS level as observed by a rank: which
// procedure ran it, the global frontier it produced, and the rank's time
// in it. The sequence of LevelStats is the frontier growth curve that
// drives the hybrid switch (and the sparsity regime of the summary
// bitmap).
type LevelStat struct {
	Level    int
	BottomUp bool
	// NF and MF are the allreduced size and edge sum of the frontier the
	// level discovered.
	NF, MF int64
	// Ns is the rank's virtual time spent in the level (all phases).
	Ns float64
}

// Breakdown accumulates virtual ns per phase, plus level counts.
type Breakdown struct {
	Ns       [NumPhases]float64
	TDLevels int
	BULevels int
	// BUCommCount is the number of bottom-up communication phases, for
	// Fig. 13's "average time per communication phase".
	BUCommCount int
	// OverlapExposedNs is the transfer time the pipelined allgather could
	// not hide (the rank stalled in Wait for it). Unlike Ns[Overlap] it is
	// already inside the wall-clock phases (BUComm/Switch), so it is an
	// annotation, not a phase.
	OverlapExposedNs float64
}

// Add charges ns to phase p.
func (b *Breakdown) Add(p Phase, ns float64) { b.Ns[p] += ns }

// Total returns the summed time over all phases. Ns[Overlap] is
// excluded: hidden communication ran concurrently with computation that
// is already charged to the wall-clock phases, so counting it would
// double-book time that never elapsed.
func (b *Breakdown) Total() float64 {
	var t float64
	for p, v := range b.Ns {
		if Phase(p) == Overlap {
			continue
		}
		t += v
	}
	return t
}

// Proportion returns phase p's share of the total (0 when total is 0).
func (b *Breakdown) Proportion(p Phase) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.Ns[p] / t
}

// AvgBUCommNs returns the average time of one bottom-up communication
// phase (Fig. 13), or 0 if none ran.
func (b *Breakdown) AvgBUCommNs() float64 {
	if b.BUCommCount == 0 {
		return 0
	}
	return b.Ns[BUComm] / float64(b.BUCommCount)
}

// Merge adds o into b (summing phases and counts).
func (b *Breakdown) Merge(o Breakdown) {
	for i := range b.Ns {
		b.Ns[i] += o.Ns[i]
	}
	b.TDLevels += o.TDLevels
	b.BULevels += o.BULevels
	b.BUCommCount += o.BUCommCount
	b.OverlapExposedNs += o.OverlapExposedNs
}

// Scale multiplies every accumulator by f (for averaging over roots).
func (b *Breakdown) Scale(f float64) {
	for i := range b.Ns {
		b.Ns[i] *= f
	}
	b.OverlapExposedNs *= f
}

// MarshalJSON renders the breakdown with one named field per phase
// (rather than a bare Ns array indexed by Phase ordinal, which no JSON
// consumer could read), so tables that carry breakdowns — bfsbench
// -json — stay self-describing.
func (b Breakdown) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		TDCompNs    float64 `json:"td_comp_ns"`
		TDCommNs    float64 `json:"td_comm_ns"`
		BUCompNs    float64 `json:"bu_comp_ns"`
		BUCommNs    float64 `json:"bu_comm_ns"`
		SwitchNs    float64 `json:"switch_ns"`
		StallNs     float64 `json:"stall_ns"`
		CkptNs      float64 `json:"ckpt_ns"`
		RecoveryNs  float64 `json:"recovery_ns"`
		XportNs     float64 `json:"xport_ns"`
		OverlapNs   float64 `json:"overlap_ns"`
		OverlapExpNs float64 `json:"overlap_exposed_ns"`
		ReownNs     float64 `json:"reown_ns"`
		TotalNs     float64 `json:"total_ns"`
		TDLevels    int     `json:"td_levels"`
		BULevels    int     `json:"bu_levels"`
		BUCommCount int     `json:"bu_comm_count"`
	}{
		TDCompNs: b.Ns[TDComp], TDCommNs: b.Ns[TDComm],
		BUCompNs: b.Ns[BUComp], BUCommNs: b.Ns[BUComm],
		SwitchNs: b.Ns[Switch], StallNs: b.Ns[Stall],
		CkptNs: b.Ns[Ckpt], RecoveryNs: b.Ns[Recovery],
		XportNs:   b.Ns[Xport],
		OverlapNs: b.Ns[Overlap], OverlapExpNs: b.OverlapExposedNs,
		ReownNs:  b.Ns[Reown],
		TotalNs:  b.Total(),
		TDLevels: b.TDLevels, BULevels: b.BULevels, BUCommCount: b.BUCommCount,
	})
}

// String renders a one-line ms breakdown.
func (b *Breakdown) String() string {
	var sb strings.Builder
	for p := Phase(0); p < NumPhases; p++ {
		if p > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%s=%.2fms", p, b.Ns[p]/1e6)
	}
	fmt.Fprintf(&sb, "  total=%.2fms", b.Total()/1e6)
	return sb.String()
}
