package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestAddTotalProportion(t *testing.T) {
	var b Breakdown
	b.Add(TDComp, 10)
	b.Add(BUComp, 30)
	b.Add(BUComm, 60)
	if b.Total() != 100 {
		t.Fatalf("Total = %g", b.Total())
	}
	if got := b.Proportion(BUComm); got != 0.6 {
		t.Fatalf("Proportion(BUComm) = %g", got)
	}
	var empty Breakdown
	if empty.Proportion(TDComp) != 0 {
		t.Fatal("empty proportion should be 0")
	}
}

func TestAvgBUComm(t *testing.T) {
	var b Breakdown
	b.Add(BUComm, 90)
	b.BUCommCount = 3
	if got := b.AvgBUCommNs(); got != 30 {
		t.Fatalf("AvgBUCommNs = %g", got)
	}
	var none Breakdown
	if none.AvgBUCommNs() != 0 {
		t.Fatal("no comm phases should average 0")
	}
}

func TestMergeAndScale(t *testing.T) {
	var a, b Breakdown
	a.Add(Stall, 5)
	a.TDLevels = 2
	b.Add(Stall, 7)
	b.BULevels = 3
	b.BUCommCount = 3
	a.Merge(b)
	if a.Ns[Stall] != 12 || a.TDLevels != 2 || a.BULevels != 3 || a.BUCommCount != 3 {
		t.Fatalf("merge: %+v", a)
	}
	a.Scale(0.5)
	if a.Ns[Stall] != 6 {
		t.Fatalf("scale: %g", a.Ns[Stall])
	}
}

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		TDComp: "td-comp", TDComm: "td-comm", BUComp: "bu-comp",
		BUComm: "bu-comm", Switch: "switch", Stall: "stall",
		Ckpt: "ckpt", Recovery: "recovery", Xport: "xport",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if Phase(42).String() == "" {
		t.Error("unknown phase must render")
	}
	var b Breakdown
	b.Add(BUComp, 2e6)
	if !strings.Contains(b.String(), "bu-comp=2.00ms") {
		t.Errorf("Breakdown.String() = %q", b.String())
	}
}

func TestPhaseNamesRoundTrip(t *testing.T) {
	names := PhaseNames()
	if len(names) != int(NumPhases) {
		t.Fatalf("PhaseNames() has %d entries, want %d", len(names), NumPhases)
	}
	for i, name := range names {
		if name != Phase(i).String() {
			t.Errorf("names[%d] = %q, want %q", i, name, Phase(i))
		}
		p, ok := PhaseByName(name)
		if !ok || p != Phase(i) {
			t.Errorf("PhaseByName(%q) = %v, %v", name, p, ok)
		}
	}
	if _, ok := PhaseByName("not-a-phase"); ok {
		t.Error("unknown name resolved")
	}
}

func TestBreakdownMarshalJSON(t *testing.T) {
	var b Breakdown
	b.Add(TDComp, 10)
	b.Add(BUComm, 40)
	b.Add(Stall, 5)
	b.TDLevels = 2
	b.BULevels = 3
	b.BUCommCount = 3
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"td_comp_ns": 10, "td_comm_ns": 0, "bu_comp_ns": 0, "bu_comm_ns": 40,
		"switch_ns": 0, "stall_ns": 5, "ckpt_ns": 0, "recovery_ns": 0,
		"reown_ns": 0, "xport_ns": 0, "overlap_ns": 0, "overlap_exposed_ns": 0,
		"total_ns": 55,
		"td_levels": 2, "bu_levels": 3, "bu_comm_count": 3,
	}
	if len(m) != len(want) {
		t.Fatalf("fields = %v, want %v", m, want)
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("%s = %g, want %g", k, m[k], v)
		}
	}
	// A pointer marshals the same way (the method has a value receiver).
	pdata, err := json.Marshal(&b)
	if err != nil {
		t.Fatal(err)
	}
	if string(pdata) != string(data) {
		t.Fatalf("pointer marshal differs: %s vs %s", pdata, data)
	}
}
