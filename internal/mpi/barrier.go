package mpi

import "sync"

// barrier is a reusable N-party barrier that also computes the maximum
// virtual clock among arrivals — the semantics of a barrier in virtual
// time. A parity buffer publishes each generation's result: a rank cannot
// be two generations ahead of any other, so two slots suffice.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     uint64
	cur     float64    // max clock accumulating for the current generation
	result  [2]float64 // published max per generation parity
	aborted bool       // job aborted: release and fail all waiters
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// sync blocks until all n parties have arrived and returns the maximum
// clock among them. If the job aborts while waiting, it panics with
// errAborted so the rank unwinds.
func (b *barrier) sync(clock float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		panic(errAborted{})
	}
	gen := b.gen
	if clock > b.cur {
		b.cur = clock
	}
	b.arrived++
	if b.arrived == b.n {
		b.result[gen&1] = b.cur
		b.cur = 0
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return b.result[gen&1]
	}
	for b.gen == gen {
		b.cond.Wait()
		if b.aborted {
			panic(errAborted{})
		}
	}
	return b.result[gen&1]
}

// abortAll releases every waiter with a failure.
func (b *barrier) abortAll() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
