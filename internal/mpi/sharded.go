package mpi

import "sync"

// shardedBarrier is the two-level reusable N-party barrier behind
// World.Barrier. The flat barrier wakes every rank under one mutex with
// one cond.Broadcast — at 512 ranks that is a thundering herd re-locking
// a single lock on every BFS level boundary. Here ranks arrive at their
// node's shard instead; the last arrival of each shard (the shard
// leader for that generation) carries the shard's running maximum to a
// small inter-node combiner, and only the combiner synchronizes across
// nodes. Contention drops from all-ranks-on-one-lock to
// ranks-per-node-on-a-shard-lock plus nodes-on-the-combiner-lock, and
// each broadcast wakes one shard's waiters, not the whole world.
//
// The virtual-time semantics are identical to the flat barrier: sync
// returns the maximum clock among all arrivals of the generation. The
// same parity argument publishes results — a rank cannot be two
// generations ahead of any other across a full barrier, so two result
// slots per shard (and per combiner) suffice.
type shardedBarrier struct {
	shards []*barrierShard
	inter  barrierShard // combiner: one "arrival" per shard leader
}

// barrierShard is one level of the hierarchy: a flat cond-barrier over
// its own parties. Shards are allocated individually so two shards
// never share a cache line through the slice backing array.
type barrierShard struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     uint64
	cur     float64    // max clock accumulating for the current generation
	result  [2]float64 // published max per generation parity
	aborted bool
}

func newBarrierShard(n int) *barrierShard {
	s := &barrierShard{n: n}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// newShardedBarrier builds a barrier over shards*perShard ranks: one
// shard per node, combined over an inter-node stage with one party per
// shard.
func newShardedBarrier(shards, perShard int) *shardedBarrier {
	counts := make([]int, shards)
	for i := range counts {
		counts[i] = perShard
	}
	return newShardedBarrierCounts(counts)
}

// newShardedBarrierCounts builds the barrier over per-shard party counts
// — the membership-aware shape: after a shrink or with parked spares,
// nodes carry unequal live populations, and a node with no live ranks
// contributes no leader to the combiner (its shard would deadlock it).
func newShardedBarrierCounts(counts []int) *shardedBarrier {
	b := &shardedBarrier{shards: make([]*barrierShard, len(counts))}
	populated := 0
	for i, c := range counts {
		b.shards[i] = newBarrierShard(c)
		if c > 0 {
			populated++
		}
	}
	b.inter.n = populated
	b.inter.cond = sync.NewCond(&b.inter.mu)
	return b
}

// sync blocks until every party of every shard has arrived and returns
// the global maximum clock. shard is the caller's shard index (its
// node). Panics with errAborted if the job aborts while waiting.
func (b *shardedBarrier) sync(shard int, clock float64) float64 {
	s := b.shards[shard]
	s.mu.Lock()
	if s.aborted {
		s.mu.Unlock()
		panic(errAborted{})
	}
	gen := s.gen
	if clock > s.cur {
		s.cur = clock
	}
	s.arrived++
	if s.arrived < s.n {
		// Not last in the shard: wait for the shard leader to publish the
		// combined result.
		for s.gen == gen {
			s.cond.Wait()
			if s.aborted {
				s.mu.Unlock()
				panic(errAborted{})
			}
		}
		r := s.result[gen&1]
		s.mu.Unlock()
		return r
	}
	// Shard leader: take the shard's maximum to the combiner. Reset the
	// arrival state now — members can only re-arrive for the next
	// generation after s.gen advances below, which requires this leader
	// to have returned from the combiner first.
	cur := s.cur
	s.arrived = 0
	s.cur = 0
	s.mu.Unlock()

	max := b.interSync(cur)

	s.mu.Lock()
	if s.aborted {
		s.mu.Unlock()
		panic(errAborted{})
	}
	s.result[gen&1] = max
	s.gen++
	s.cond.Broadcast()
	s.mu.Unlock()
	return max
}

// interSync is the combiner stage: a flat barrier over the shard
// leaders (one per node), exchanging shard maxima for the global one.
func (b *shardedBarrier) interSync(clock float64) float64 {
	s := &b.inter
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aborted {
		panic(errAborted{})
	}
	gen := s.gen
	if clock > s.cur {
		s.cur = clock
	}
	s.arrived++
	if s.arrived == s.n {
		s.result[gen&1] = s.cur
		s.cur = 0
		s.arrived = 0
		s.gen++
		s.cond.Broadcast()
		return s.result[gen&1]
	}
	for s.gen == gen {
		s.cond.Wait()
		if s.aborted {
			panic(errAborted{})
		}
	}
	return s.result[gen&1]
}

// abortAll releases every waiter at both levels with a failure.
func (b *shardedBarrier) abortAll() {
	for _, s := range b.shards {
		s.mu.Lock()
		s.aborted = true
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	b.inter.mu.Lock()
	b.inter.aborted = true
	b.inter.cond.Broadcast()
	b.inter.mu.Unlock()
}
