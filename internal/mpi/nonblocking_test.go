package mpi

import "testing"

func TestIsendIrecvDeliverPayload(t *testing.T) {
	w := testWorld(t, 2)
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			req := p.Isend(5, 3, 32, []uint64{9, 9, 9, 9}, 1)
			req.Wait()
		case 5:
			var m Msg
			req := p.Irecv(0, 3, &m)
			req.Wait()
			if m.Src != 0 || m.Bytes != 32 || m.Payload.([]uint64)[0] != 9 {
				t.Errorf("Msg = %+v", m)
			}
		}
	})
}

func TestNonblockingOverlapsComputation(t *testing.T) {
	// A rank that computes while a large transfer is in flight must
	// finish sooner than one that transfers first and computes after.
	const bytes = 64 << 20 // a slow inter-node transfer
	const work = 5e6       // 5 ms of computation

	run := func(overlap bool) float64 {
		w := testWorld(t, 2)
		w.Run(func(p *Proc) {
			switch p.Rank() {
			case 0:
				if overlap {
					req := p.Isend(4, 1, bytes, nil, 1)
					p.Compute(work)
					req.Wait()
				} else {
					p.Send(4, 1, bytes, nil, 1)
					p.Compute(work)
				}
			case 4:
				var m Msg
				req := p.Irecv(0, 1, &m)
				if overlap {
					p.Compute(work)
				}
				req.Wait()
				if !overlap {
					p.Compute(work)
				}
			}
		})
		return w.MaxClock()
	}

	seq := run(false)
	ov := run(true)
	if ov >= seq {
		t.Fatalf("overlapped run (%g) not faster than sequential (%g)", ov, seq)
	}
	// With transfer >> work the overlapped time approaches the transfer
	// time alone.
	if ov > seq-0.9*work {
		t.Fatalf("overlap hid only %g of %g ns of work", seq-ov, work)
	}
}

func TestWaitTwicePanics(t *testing.T) {
	w := testWorld(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			req := p.Isend(1, 1, 8, nil, 1)
			req.Wait()
			req.Wait()
		case 1:
			p.Recv(0, 1)
		}
	})
}

func TestWaitAllOrders(t *testing.T) {
	w := testWorld(t, 1)
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			r1 := p.Isend(1, 1, 1024, nil, 1)
			r2 := p.Isend(1, 2, 1024, nil, 1)
			WaitAll(r1, r2)
		case 1:
			var a, b Msg
			r1 := p.Irecv(0, 1, &a)
			r2 := p.Irecv(0, 2, &b)
			WaitAll(r1, r2)
			if a.Tag != 1 || b.Tag != 2 {
				t.Errorf("tags: %d, %d", a.Tag, b.Tag)
			}
		}
	})
}
