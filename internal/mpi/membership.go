package mpi

import "fmt"

// This file is the world's membership layer: which ranks Run/TryRun
// schedules, and the epoch numbering of world views. A rank is live by
// default; Park removes hot spares from the schedule before the first
// run, Shrink removes permanently dead ranks mid-job, and Promote swaps
// a parked spare in for a dead rank. Every membership change rebuilds
// the sharded global barrier and the per-node barriers over the live
// populations, so barrier pricing and the combiner's party counts track
// the epoch — at full membership the shapes (and modelled costs) are
// bit-identical to the historical fixed-world ones.
//
// Mutators must only be called when no rank goroutine is running
// (between Run/TryRun attempts), like Injector.Disarm.

// Epoch returns the world-view number: 0 until the first Shrink or
// Promote, incremented by each.
func (w *World) Epoch() int { return w.epoch }

// Live reports whether rank r is scheduled by Run/TryRun.
func (w *World) Live(r int) bool { return w.live[r] }

// LiveRanks returns the live ranks in ascending order.
func (w *World) LiveRanks() []int {
	out := make([]int, 0, len(w.procs))
	for r := range w.live {
		if w.live[r] {
			out = append(out, r)
		}
	}
	return out
}

// LiveOnNode returns how many live ranks node carries in this epoch.
func (w *World) LiveOnNode(node int) int { return w.liveOnNode[node] }

// MaxLivePPN returns the largest live population on any node — the
// intra-node dissemination depth the barrier model charges.
func (w *World) MaxLivePPN() int { return w.maxLivePPN }

// LiveNodes returns how many nodes still carry live ranks.
func (w *World) LiveNodes() int { return w.liveNodes }

// Park removes ranks from the schedule without declaring them dead —
// hot spares waiting for a Promote. Call before the first Run; parking
// does not advance the epoch (the first run's view is still epoch 0).
func (w *World) Park(ranks []int) {
	for _, r := range ranks {
		if !w.live[r] {
			panic(fmt.Sprintf("mpi: Park(%d): rank already parked or dead", r))
		}
		w.live[r] = false
	}
	w.rebuildMembership()
}

// Shrink removes permanently dead ranks from the world and advances the
// epoch. Their mailboxes are drained (a dead rank may have left a
// posted message no one will take) and the barriers are rebuilt over
// the survivors; a node losing its last rank drops out of the barrier
// combiner entirely.
func (w *World) Shrink(dead []int) {
	for _, r := range dead {
		if !w.live[r] {
			panic(fmt.Sprintf("mpi: Shrink(%d): rank already parked or dead", r))
		}
		w.live[r] = false
		w.drainMail(r)
	}
	w.epoch++
	w.rebuildMembership()
}

// Promote swaps the parked spare in for the dead rank and advances the
// epoch. The spare joins the schedule, the dead rank leaves it, and
// barriers are rebuilt — with a same-node spare the populations (and so
// every modelled barrier cost) are unchanged.
func (w *World) Promote(spare, dead int) {
	if w.live[spare] {
		panic(fmt.Sprintf("mpi: Promote(%d, %d): spare is not parked", spare, dead))
	}
	if !w.live[dead] {
		panic(fmt.Sprintf("mpi: Promote(%d, %d): dead rank already removed", spare, dead))
	}
	w.live[spare] = true
	w.live[dead] = false
	w.drainMail(dead)
	w.epoch++
	w.rebuildMembership()
}

// drainMail empties every mailbox to and from rank r.
func (w *World) drainMail(r int) {
	for s := range w.mail[r] {
		select {
		case <-w.mail[r][s]:
		default:
		}
	}
	for d := range w.mail {
		select {
		case <-w.mail[d][r]:
		default:
		}
	}
}

// rebuildMembership recomputes the live counts and rebuilds both
// barrier levels over them.
func (w *World) rebuildMembership() {
	for n := range w.liveOnNode {
		w.liveOnNode[n] = 0
	}
	for r, ok := range w.live {
		if ok {
			w.liveOnNode[r/w.pl.ProcsPerNode]++
		}
	}
	w.liveNodes, w.maxLivePPN = 0, 0
	for _, c := range w.liveOnNode {
		if c > 0 {
			w.liveNodes++
		}
		if c > w.maxLivePPN {
			w.maxLivePPN = c
		}
	}
	w.globalBarrier = newShardedBarrierCounts(w.liveOnNode)
	for n := range w.nodeBarriers {
		w.nodeBarriers[n] = newBarrier(w.liveOnNode[n])
	}
}
