package mpi

// Tests for the membership layer: epoch-numbered world views, parked
// spares, mid-job shrinks and promotions, and the deterministic
// lease/heartbeat failure detector for permanent deaths.

import (
	"sync"
	"testing"

	"numabfs/internal/fault"
)

// ranSet runs body and records which ranks executed.
func ranSet(w *World) map[int]bool {
	var mu sync.Mutex
	ran := make(map[int]bool)
	w.Run(func(p *Proc) {
		p.Compute(10)
		p.Barrier()
		mu.Lock()
		ran[p.Rank()] = true
		mu.Unlock()
	})
	return ran
}

func TestParkExcludesSparesWithoutAdvancingEpoch(t *testing.T) {
	w := testWorld(t, 2) // 2 nodes x 4 ranks
	w.Park([]int{3, 7})  // last rank of each node
	if w.Epoch() != 0 {
		t.Fatalf("Park advanced the epoch to %d", w.Epoch())
	}
	if w.LiveOnNode(0) != 3 || w.LiveOnNode(1) != 3 || w.MaxLivePPN() != 3 {
		t.Fatalf("live counts %d/%d max %d, want 3/3/3", w.LiveOnNode(0), w.LiveOnNode(1), w.MaxLivePPN())
	}
	ran := ranSet(w)
	if len(ran) != 6 || ran[3] || ran[7] {
		t.Fatalf("parked ranks scheduled: ran = %v", ran)
	}
}

func TestShrinkRemovesDeadAndStepsEpoch(t *testing.T) {
	w := testWorld(t, 2)
	w.Shrink([]int{5})
	if w.Epoch() != 1 {
		t.Fatalf("epoch %d after one shrink, want 1", w.Epoch())
	}
	if w.Live(5) || !w.Live(4) {
		t.Fatal("wrong liveness after shrink")
	}
	if got := w.LiveRanks(); len(got) != 7 {
		t.Fatalf("LiveRanks = %v", got)
	}
	if w.LiveOnNode(1) != 3 || w.LiveNodes() != 2 {
		t.Fatalf("node populations %d live nodes %d", w.LiveOnNode(1), w.LiveNodes())
	}
	// Survivors still run and synchronize: the barriers were rebuilt
	// over the shrunken populations.
	ran := ranSet(w)
	if len(ran) != 7 || ran[5] {
		t.Fatalf("shrunk world ran %v", ran)
	}
}

func TestShrinkLastRankOfNodeDropsNodeFromBarrier(t *testing.T) {
	w := testWorld(t, 2)
	w.Shrink([]int{4, 5, 6, 7})
	if w.LiveNodes() != 1 || w.LiveOnNode(1) != 0 {
		t.Fatalf("node 1 still counted: nodes %d, on-node %d", w.LiveNodes(), w.LiveOnNode(1))
	}
	ran := ranSet(w)
	if len(ran) != 4 {
		t.Fatalf("ran %v", ran)
	}
}

func TestPromoteSwapsSpareForDead(t *testing.T) {
	w := testWorld(t, 2)
	w.Park([]int{3, 7})
	w.Promote(3, 1)
	if w.Epoch() != 1 {
		t.Fatalf("epoch %d after promote, want 1", w.Epoch())
	}
	if !w.Live(3) || w.Live(1) {
		t.Fatal("promote did not swap liveness")
	}
	if w.LiveOnNode(0) != 3 || w.MaxLivePPN() != 3 {
		t.Fatalf("populations changed: %d max %d", w.LiveOnNode(0), w.MaxLivePPN())
	}
	ran := ranSet(w)
	if ran[1] || !ran[3] || len(ran) != 6 {
		t.Fatalf("ran %v", ran)
	}
}

func TestMembershipMisusePanics(t *testing.T) {
	for name, f := range map[string]func(w *World){
		"double shrink":      func(w *World) { w.Shrink([]int{2}); w.Shrink([]int{2}) },
		"park dead":          func(w *World) { w.Shrink([]int{2}); w.Park([]int{2}) },
		"promote live spare": func(w *World) { w.Shrink([]int{1}); w.Promote(0, 2) },
		"promote onto live":  func(w *World) { w.Park([]int{3}); w.Promote(3, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f(testWorld(t, 2))
		}()
	}
}

// TestShrunkenWorldStaysDeterministic: the rebuilt sharded barrier over
// survivors must yield identical virtual clocks on every run.
func TestShrunkenWorldStaysDeterministic(t *testing.T) {
	run := func() []float64 {
		w := testWorld(t, 2)
		w.Shrink([]int{2, 7})
		w.Run(func(p *Proc) {
			p.Compute(float64(10 * (p.Rank() + 1)))
			p.Barrier()
			p.Compute(5)
			p.NodeBarrier()
		})
		var clocks []float64
		for _, r := range w.LiveRanks() {
			clocks = append(clocks, w.Proc(r).Clock())
		}
		return clocks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clock %d differs: %v vs %v", i, a, b)
		}
	}
}

// TestDetectionTimeLeaseExpiry: a permanent death at `at` is detected
// when the lease taken at the last heartbeat boundary expires — never
// before at + timeout.
func TestDetectionTimeLeaseExpiry(t *testing.T) {
	in, err := fault.NewInjector(fault.Plan{
		DetectTimeoutNs:   1000,
		HeartbeatPeriodNs: 400,
		Crashes:           []fault.Crash{{Rank: 0, AtNs: 900, Permanent: true}},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Last renewal before 900 is at 800; the lease expires at 1800.
	if got := in.DetectionTimeNs(900); got != 1800 {
		t.Fatalf("DetectionTimeNs(900) = %g, want 1800", got)
	}
	// A crash exactly on a beat renews first: detection a full timeout on.
	if got := in.DetectionTimeNs(800); got != 1800 {
		t.Fatalf("DetectionTimeNs(800) = %g, want 1800", got)
	}

	// Misconfigured period longer than the timeout: the floor keeps
	// detection after the death.
	in2, err := fault.NewInjector(fault.Plan{
		DetectTimeoutNs:   100,
		HeartbeatPeriodNs: 1000,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := in2.DetectionTimeNs(950); got != 1050 {
		t.Fatalf("floored DetectionTimeNs(950) = %g, want 1050", got)
	}

	// Default period is a quarter of the timeout.
	in3, err := fault.NewInjector(fault.Plan{DetectTimeoutNs: 2000}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := in3.HeartbeatPeriodNs(); got != 500 {
		t.Fatalf("default HeartbeatPeriodNs = %g, want 500", got)
	}
}

// TestPermanentFlagTravelsThroughFaultError: TryRun surfaces the
// Permanent flag of the scheduled crash.
func TestPermanentFlagTravelsThroughFaultError(t *testing.T) {
	w := testWorld(t, 2)
	if err := w.InjectFaults(fault.Plan{
		Crashes: []fault.Crash{{Rank: 2, AtNs: 50, Permanent: true}},
	}); err != nil {
		t.Fatal(err)
	}
	err := w.TryRun(func(p *Proc) {
		p.Compute(100)
		p.Barrier()
	})
	f, ok := err.(*FaultError)
	if !ok || !f.Permanent || f.Rank != 2 {
		t.Fatalf("TryRun error = %v (%T), want permanent crash of rank 2", err, err)
	}
}
