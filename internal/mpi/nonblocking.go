package mpi

import "fmt"

// Request is a handle to a nonblocking operation. Complete it with Wait;
// a Request must be waited on exactly once.
type Request struct {
	p    *Proc
	done bool

	// send fields
	ack       chan float64
	sendBytes int64

	// recv fields
	isRecv    bool
	src, tag  int
	postClock float64
	out       *Msg
}

// Isend posts a nonblocking send. The transfer is timestamped with the
// clock at post time, so computation between Isend and Wait genuinely
// overlaps the transfer: Wait only advances the clock if the rendezvous
// finishes after the rank's own work.
func (p *Proc) Isend(dst, tag int, bytes int64, payload any, streams int) *Request {
	if dst == p.rank {
		panic(fmt.Sprintf("mpi: rank %d isend to self", p.rank))
	}
	p.checkCrash()
	m := message{
		src: p.rank, tag: tag, bytes: bytes, raw: bytes, streams: streams,
		payload: payload, sent: p.clock, ack: make(chan float64, 1),
	}
	p.post(dst, m)
	p.sentBytes += bytes
	return &Request{p: p, ack: m.ack, sendBytes: bytes}
}

// Irecv posts a nonblocking receive from src with the given tag. The
// message's transfer is timed from the later of the sender's post and
// this receive's post, so work between Irecv and Wait overlaps the
// incoming transfer. The received message is stored into out at Wait.
func (p *Proc) Irecv(src, tag int, out *Msg) *Request {
	if src == p.rank {
		panic(fmt.Sprintf("mpi: rank %d irecv from self", p.rank))
	}
	return &Request{
		p: p, isRecv: true, src: src, tag: tag,
		postClock: p.clock, out: out,
	}
}

// Wait completes the operation: it blocks until the rendezvous partner
// has arrived, then advances the rank's clock to max(own clock, transfer
// end) — the overlap semantics of MPI_Wait.
func (r *Request) Wait() {
	if r.done {
		panic("mpi: Request waited on twice")
	}
	r.done = true
	p := r.p
	start := p.clock
	if !r.isRecv {
		end := p.await(r.ack)
		if end > p.clock {
			p.clock = end
		}
		p.commNs += p.clock - start
		return
	}
	m := p.take(r.src)
	if m.tag != r.tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", p.rank, r.tag, r.src, m.tag))
	}
	begin := maxf(m.sent, r.postClock)
	recvEnd, sendEnd := p.deliver(m, begin)
	m.ack <- sendEnd
	if recvEnd > p.clock {
		p.clock = recvEnd
	}
	p.commNs += p.clock - start
	if r.out != nil {
		*r.out = Msg{Src: m.src, Tag: m.tag, Bytes: m.bytes, Payload: m.payload}
	}
}

// WaitAll completes a set of requests in order.
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		r.Wait()
	}
}
