package mpi

import "fmt"

// Request is a handle to a nonblocking operation. Complete it with Wait;
// a Request must be waited on exactly once.
//
// Requests are pooled per rank: Wait returns the Request to its rank's
// free-list, and the rank's next Isend/Irecv may hand the same struct
// back out. A completed Request's fields (BeginNs/EndNs, Msg) therefore
// stay valid only until the rank's next nonblocking post — the
// pipelined collectives read them immediately after Wait, before
// posting the next chunk pair, which is the contract.
type Request struct {
	p    *Proc
	done bool

	// send fields
	ack       chan float64
	sendBytes int64

	// recv fields
	isRecv    bool
	src, tag  int
	postClock float64
	out       *Msg
	msg       Msg

	// BeginNs and EndNs bracket the completed transfer on the virtual
	// timeline (recv side only; valid after Wait). Pipelined collectives
	// diff them against the clock at Wait to split the transfer into
	// hidden time (it ran under the rank's own computation) and exposed
	// time (the rank stalled for it).
	BeginNs, EndNs float64
}

// Msg returns the received message (recv side only; valid after Wait,
// until the rank's next nonblocking post). Callers that read the
// message here instead of passing an out pointer to Irecv keep the hot
// path allocation-free: a per-iteration out variable escapes to the
// heap, the pooled Request's internal storage does not.
func (r *Request) Msg() Msg { return r.msg }

// Isend posts a nonblocking send. The transfer is timestamped with the
// clock at post time, so computation between Isend and Wait genuinely
// overlaps the transfer: Wait only advances the clock if the rendezvous
// finishes after the rank's own work.
func (p *Proc) Isend(dst, tag int, bytes int64, payload any, streams int) *Request {
	return p.IsendWire(dst, tag, bytes, bytes, payload, streams)
}

// IsendWire is Isend for an encoded payload: wireBytes cross the
// simulated network and drive the transfer cost, rawBytes is the
// logical (pre-encoding) size recorded by the raw-volume counters —
// the nonblocking counterpart of SendRecvWire.
func (p *Proc) IsendWire(dst, tag int, wireBytes, rawBytes int64, payload any, streams int) *Request {
	if dst == p.rank {
		panic(fmt.Sprintf("mpi: rank %d isend to self", p.rank))
	}
	p.checkCrash()
	m := message{
		src: p.rank, tag: tag, bytes: wireBytes, raw: rawBytes, streams: streams,
		payload: payload, sent: p.clock, ack: p.getAck(),
	}
	p.post(dst, m)
	p.sentBytes += wireBytes
	p.countMsg(dst, wireBytes, rawBytes)
	r := p.getReq()
	r.ack = m.ack
	r.sendBytes = wireBytes
	return r
}

// Irecv posts a nonblocking receive from src with the given tag. The
// message's transfer is timed from the later of the sender's post and
// this receive's post, so work between Irecv and Wait overlaps the
// incoming transfer. The received message is stored into out at Wait;
// out may be nil, in which case the message is read from Request.Msg.
func (p *Proc) Irecv(src, tag int, out *Msg) *Request {
	if src == p.rank {
		panic(fmt.Sprintf("mpi: rank %d irecv from self", p.rank))
	}
	r := p.getReq()
	r.isRecv = true
	r.src, r.tag = src, tag
	r.postClock = p.clock
	r.out = out
	return r
}

// Wait completes the operation: it blocks until the rendezvous partner
// has arrived, then advances the rank's clock to max(own clock, transfer
// end) — the overlap semantics of MPI_Wait.
func (r *Request) Wait() {
	if r.done {
		panic("mpi: Request waited on twice")
	}
	r.done = true
	p := r.p
	start := p.clock
	if !r.isRecv {
		end := p.await(r.ack)
		p.putAck(r.ack)
		if end > p.clock {
			p.clock = end
		}
		p.commNs += p.clock - start
		p.putReq(r)
		return
	}
	m := p.take(r.src)
	if m.tag != r.tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", p.rank, r.tag, r.src, m.tag))
	}
	begin := maxf(m.sent, r.postClock)
	recvEnd, sendEnd := p.deliver(m, begin)
	m.ack <- sendEnd
	r.BeginNs, r.EndNs = begin, recvEnd
	if recvEnd > p.clock {
		p.clock = recvEnd
	}
	p.commNs += p.clock - start
	r.msg = Msg{Src: m.src, Tag: m.tag, Bytes: m.bytes, Payload: m.payload}
	if r.out != nil {
		*r.out = r.msg
	}
	p.putReq(r)
}

// WaitAll completes a set of requests in order.
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		r.Wait()
	}
}
