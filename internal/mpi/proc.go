package mpi

import (
	"fmt"

	"numabfs/internal/fault"
	"numabfs/internal/obs"
)

// message is an in-flight transfer. ack carries the rendezvous end time
// back to the sender so both clocks agree. bytes is what crosses the
// wire; raw is the logical (pre-compression) size, equal to bytes
// except for encoded payloads posted via SendRecvWire.
type message struct {
	src, tag int
	bytes    int64
	raw      int64
	streams  int
	payload  any
	sent     float64 // sender's clock when the send was posted
	ack      chan float64
}

// Msg is a received message as seen by the application.
type Msg struct {
	Src     int
	Tag     int
	Bytes   int64
	Payload any
}

// Proc is one simulated MPI rank. All methods must be called from the
// rank's own goroutine (inside World.Run's body).
type Proc struct {
	w     *World
	rank  int
	node  int
	local int // index within the node; equals the socket when bound

	clock     float64 // virtual ns
	commNs    float64 // cumulative time spent inside Send/Recv/Barrier
	xportNs   float64 // reliable-transport share of commNs (retransmit waits, holds, acks)
	sentBytes int64   // cumulative bytes sent by this rank

	// obs is the rank's observability stream; nil (the disabled
	// recorder) unless World.AttachObs was called.
	obs *obs.Rank

	// ackFree is the rank's free-list of rendezvous ack channels. Every
	// blocking or nonblocking send needs a one-shot channel for the
	// receiver to return the transfer end time on; recycling them keeps
	// the Send/Recv hot path allocation-free. Only the owning rank's
	// goroutine touches the list: channels are taken before posting and
	// returned after a successful await, so a pooled channel is always
	// empty. Channels in flight during an abort unwind are simply
	// dropped.
	ackFree []chan float64

	// reqFree is the rank's free-list of nonblocking Requests: Wait
	// returns a completed Request here, Isend/Irecv draw from it. Only
	// the owning rank's goroutine touches the list; a completed
	// Request's fields stay readable until the rank's next nonblocking
	// post (Request's doc comment carries the contract). Requests in
	// flight during an abort unwind are simply dropped.
	reqFree []*Request
}

// getAck takes an ack channel from the free-list, or allocates one.
func (p *Proc) getAck() chan float64 {
	if n := len(p.ackFree); n > 0 {
		ch := p.ackFree[n-1]
		p.ackFree = p.ackFree[:n-1]
		return ch
	}
	return make(chan float64, 1)
}

// putAck returns a consumed ack channel to the free-list.
func (p *Proc) putAck(ch chan float64) { p.ackFree = append(p.ackFree, ch) }

// getReq takes a Request from the free-list (reset to zero state), or
// allocates one.
func (p *Proc) getReq() *Request {
	if n := len(p.reqFree); n > 0 {
		r := p.reqFree[n-1]
		p.reqFree = p.reqFree[:n-1]
		*r = Request{p: p}
		return r
	}
	return &Request{p: p}
}

// putReq returns a completed Request to the free-list.
func (p *Proc) putReq(r *Request) { p.reqFree = append(p.reqFree, r) }

// Obs returns the rank's observability stream. It is nil when tracing
// is off — a nil *obs.Rank is a valid recorder whose methods no-op, so
// callers use the result without checking.
func (p *Proc) Obs() *obs.Rank { return p.obs }

// countMsg charges one outbound transfer to the hop-class counters:
// wire bytes (what crossed the network) and raw bytes (the logical,
// pre-compression size).
func (p *Proc) countMsg(dst int, wire, raw int64) {
	if p.obs == nil {
		return
	}
	d := p.w.procs[dst]
	p.obs.CountMsg(obs.ClassifyHop(p.node, p.local, d.node, d.local), wire, raw)
}

// Rank returns the global rank.
func (p *Proc) Rank() int { return p.rank }

// Node returns the node index the rank lives on.
func (p *Proc) Node() int { return p.node }

// LocalRank returns the rank's index within its node.
func (p *Proc) LocalRank() int { return p.local }

// World returns the owning world.
func (p *Proc) World() *World { return p.w }

// Clock returns the rank's virtual time in ns.
func (p *Proc) Clock() float64 { return p.clock }

// CommNs returns the cumulative virtual time this rank has spent inside
// communication calls (including waiting for partners).
func (p *Proc) CommNs() float64 { return p.commNs }

// XportNs returns the reliable transport's cumulative share of CommNs:
// retransmission waits, resequencer holds and ack round-trips. Zero
// unless the fault plan declares lossy links. Callers diff it around a
// communication section to attribute transport stall to a phase.
func (p *Proc) XportNs() float64 { return p.xportNs }

// SentBytes returns the cumulative payload bytes this rank has sent.
func (p *Proc) SentBytes() int64 { return p.sentBytes }

// Compute advances the rank's clock by ns of modelled computation. A
// straggler rank's cost is scaled by its plan factor, and a scheduled
// crash inside the interval truncates it: the rank dies at the crash
// time, not at the end of the phase it never finished.
func (p *Proc) Compute(ns float64) {
	if ns < 0 {
		panic(fmt.Sprintf("mpi: rank %d negative compute %g", p.rank, ns))
	}
	if s := p.w.inj.ComputeScale(p.rank); s != 1 {
		ns *= s
	}
	if at, ok := p.w.inj.NextCrash(p.rank); ok && p.clock+ns >= at {
		p.crashAt(at)
	}
	p.clock += ns
}

// checkCrash fires a scheduled crash whose time this rank's clock has
// reached. Called at every communication boundary, so a crashed rank
// dies before it can interact with the rest of the job again.
func (p *Proc) checkCrash() {
	if at, ok := p.w.inj.NextCrash(p.rank); ok && p.clock >= at {
		p.crashAt(at)
	}
}

// crashAt kills the rank: its clock lands on the crash time (never
// rewinding past work already charged) and the structured *fault.Error
// unwinds through the abort machinery so blocked partners are released.
func (p *Proc) crashAt(at float64) {
	p.clock = maxf(p.clock, at)
	p.obs.FaultEvent("crash", p.clock)
	panic(&fault.Error{Rank: p.rank, AtNs: at, Permanent: p.w.inj.CrashPermanent(p.rank, at)})
}

// RestoreClock sets the rank's clock to a checkpointed value. Only
// crash recovery may call this — ordinary code advances clocks through
// Compute and the communication calls.
func (p *Proc) RestoreClock(ns float64) { p.clock = ns }

// Send transfers bytes of payload to dst under tag. streams is the number
// of same-node ranks concurrently driving the contended resource (NIC or
// memory system) during the enclosing collective step; the caller — the
// collective implementation — knows its own structure. Send blocks until
// the matching Recv completes and advances the clock to the transfer end.
func (p *Proc) Send(dst, tag int, bytes int64, payload any, streams int) {
	if dst == p.rank {
		panic(fmt.Sprintf("mpi: rank %d send to self", p.rank))
	}
	p.checkCrash()
	start := p.clock
	m := message{
		src: p.rank, tag: tag, bytes: bytes, raw: bytes, streams: streams,
		payload: payload, sent: p.clock, ack: p.getAck(),
	}
	p.post(dst, m)
	end := p.await(m.ack)
	p.putAck(m.ack)
	p.clock = end
	p.commNs += end - start
	p.sentBytes += bytes
	p.countMsg(dst, bytes, bytes)
}

// post delivers a message to dst's mailbox, failing if the job aborts.
func (p *Proc) post(dst int, m message) {
	select {
	case p.w.mail[dst][p.rank] <- m:
	case <-p.w.abort:
		panic(errAborted{})
	}
}

// await waits for a rendezvous acknowledgement, failing on abort.
func (p *Proc) await(ack chan float64) float64 {
	select {
	case end := <-ack:
		return end
	case <-p.w.abort:
		panic(errAborted{})
	}
}

// take receives the next message from src, failing on abort.
func (p *Proc) take(src int) message {
	select {
	case m := <-p.w.mail[p.rank][src]:
		return m
	case <-p.w.abort:
		panic(errAborted{})
	}
}

// Recv receives the next message from src, which must carry tag (the
// simulated programs use fully matched, in-order communication; a tag
// mismatch is a program bug and panics). The transfer starts when both
// sides have arrived and both clocks advance to its end.
func (p *Proc) Recv(src, tag int) Msg {
	if src == p.rank {
		panic(fmt.Sprintf("mpi: rank %d recv from self", p.rank))
	}
	p.checkCrash()
	start := p.clock
	m := p.take(src)
	if m.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", p.rank, tag, src, m.tag))
	}
	begin := maxf(m.sent, p.clock)
	recvEnd, sendEnd := p.deliver(m, begin)
	m.ack <- sendEnd
	p.clock = recvEnd
	p.commNs += recvEnd - start
	return Msg{Src: m.src, Tag: m.tag, Bytes: m.bytes, Payload: m.payload}
}

// SendRecv posts a send to dst and a receive from src concurrently and
// completes both, as MPI_Sendrecv does. Ring exchanges need this: with
// blocking Send alone, a cycle of ranks would deadlock.
func (p *Proc) SendRecv(dst, sendTag int, bytes int64, payload any, src, recvTag int, streams int) Msg {
	return p.sendRecv(dst, sendTag, bytes, bytes, payload, src, recvTag, streams)
}

// SendRecvWire is SendRecv for an encoded payload: wireBytes cross the
// simulated network and drive the transfer cost, while rawBytes — the
// logical, pre-encoding size — is recorded by the raw-volume counters,
// so one run exposes both the compressed and the uncompressed volume.
func (p *Proc) SendRecvWire(dst, sendTag int, wireBytes, rawBytes int64, payload any, src, recvTag int, streams int) Msg {
	return p.sendRecv(dst, sendTag, wireBytes, rawBytes, payload, src, recvTag, streams)
}

func (p *Proc) sendRecv(dst, sendTag int, wire, raw int64, payload any, src, recvTag int, streams int) Msg {
	p.checkCrash()
	start := p.clock
	m := message{
		src: p.rank, tag: sendTag, bytes: wire, raw: raw, streams: streams,
		payload: payload, sent: p.clock, ack: p.getAck(),
	}
	p.post(dst, m)

	// Receive inline while the send waits for its ack.
	in := p.take(src)
	if in.tag != recvTag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", p.rank, recvTag, src, in.tag))
	}
	begin := maxf(in.sent, p.clock)
	recvEnd, inSendEnd := p.deliver(in, begin)
	in.ack <- inSendEnd

	sendEnd := p.await(m.ack)
	p.putAck(m.ack)
	p.clock = maxf(recvEnd, sendEnd)
	p.commNs += p.clock - start
	p.sentBytes += wire
	p.countMsg(dst, wire, raw)
	return Msg{Src: in.src, Tag: in.tag, Bytes: in.bytes, Payload: in.payload}
}

// Barrier synchronizes all ranks: every clock advances to the maximum
// arrival time plus the cost of a hierarchical dissemination barrier —
// the ceilLog2(ppn) rounds that stay inside a node are charged at the
// intra-node per-message overhead, and only the ceilLog2(Nodes) rounds
// that cross the network pay the inter-node alpha. (Charging every
// round at inter-node alpha, as a flat dissemination over all np ranks
// would, overprices the barrier: MPI barriers on NUMA clusters combine
// within the node over shared memory first.) It returns the rank's wait
// time (max - own arrival), the "stall" of Fig. 11.
func (p *Proc) Barrier() float64 {
	p.checkCrash()
	start := p.clock
	max := p.w.globalBarrier.sync(p.node, p.clock)
	// Dissemination depth follows the live epoch: at full membership
	// these counts equal ProcsPerNode and Nodes exactly.
	cost := float64(ceilLog2(p.w.maxLivePPN)) * p.w.cfg.IntraNodeAlphaNs
	cost += float64(ceilLog2(p.w.liveNodes)) * p.w.cfg.InterNodeAlphaNs
	p.clock = max + cost
	p.commNs += p.clock - start
	p.obs.BarrierWait(max - start)
	return max - start
}

// NodeBarrier synchronizes the ranks of p's node only (used around
// shared-memory epochs). Returns the rank's wait time.
func (p *Proc) NodeBarrier() float64 {
	p.checkCrash()
	start := p.clock
	max := p.w.nodeBarriers[p.node].sync(p.clock)
	rounds := ceilLog2(p.w.liveOnNode[p.node])
	p.clock = max + float64(rounds)*p.w.cfg.IntraNodeAlphaNs
	p.commNs += p.clock - start
	p.obs.NodeBarrierWait(max - start)
	return max - start
}

// SharedWords returns the node-scoped shared region `name` (see
// World.SharedWords); the region name is qualified with the node index so
// each node gets its own copy.
func (p *Proc) SharedWords(name string, words int64) []uint64 {
	return p.w.SharedWords(fmt.Sprintf("%s@node%d", name, p.node), words)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func ceilLog2(n int) int {
	r := 0
	for v := 1; v < n; v <<= 1 {
		r++
	}
	return r
}
