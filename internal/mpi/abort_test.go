package mpi

// Abort-path tests: one rank failing must release every partner blocked
// in communication — these paths are load-bearing under rank-crash
// injection (internal/fault), where a scheduled crash unwinds one rank
// while the others sit in rendezvous or barriers. Each test's TryRun
// return doubles as the liveness assertion: TryRun only returns after
// every rank goroutine has exited, so a hung partner is a test timeout.

import (
	"strings"
	"testing"

	"numabfs/internal/fault"
)

func TestAbortReleasesBlockedRecv(t *testing.T) {
	w := testWorld(t, 1)
	err := w.TryRun(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Recv(1, 1) // rank 1 never sends
		case 1:
			panic("boom")
		default:
			p.Recv(1, 2) // more partners of the failed rank
		}
	})
	if err == nil || !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("TryRun = %v, want rank 1 panic", err)
	}
}

func TestAbortReleasesBlockedSendAndPost(t *testing.T) {
	w := testWorld(t, 1)
	err := w.TryRun(func(p *Proc) {
		switch p.Rank() {
		case 0:
			// The Isend fills the capacity-1 mailbox to rank 1; the Send
			// then blocks inside post, the Isend's Wait inside await.
			// Neither is ever matched.
			req := p.Isend(1, 1, 8, nil, 1)
			p.Send(1, 2, 8, nil, 1)
			req.Wait()
		case 1:
			p.Recv(2, 3) // blocks in take; rank 2 never sends
		case 2:
			panic("boom")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "rank 2") {
		t.Fatalf("TryRun = %v, want rank 2 panic", err)
	}
}

func TestAbortReleasesBarriers(t *testing.T) {
	w := testWorld(t, 2)
	err := w.TryRun(func(p *Proc) {
		switch {
		case p.Rank() == 3:
			panic("boom")
		case p.Rank()%2 == 0:
			p.Barrier() // never completes: rank 3 is gone
		default:
			p.NodeBarrier()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "rank 3") {
		t.Fatalf("TryRun = %v, want rank 3 panic", err)
	}
}

func TestAbortReleasesSendRecvRing(t *testing.T) {
	w := testWorld(t, 2)
	np := w.NumProcs()
	err := w.TryRun(func(p *Proc) {
		if p.Rank() == np-1 {
			panic("boom")
		}
		// A ring exchange that can never complete without the last rank.
		p.SendRecv((p.Rank()+1)%np, 1, 8, nil, (p.Rank()+np-1)%np, 1, 1)
	})
	if err == nil || !strings.Contains(err.Error(), "rank 7") {
		t.Fatalf("TryRun = %v, want rank 7 panic", err)
	}
}

func TestTryRunReturnsFaultError(t *testing.T) {
	w := testWorld(t, 1)
	if err := w.InjectFaults(fault.Plan{Crashes: []fault.Crash{{Rank: 2, AtNs: 100}}}); err != nil {
		t.Fatal(err)
	}
	err := w.TryRun(func(p *Proc) {
		p.Compute(1e6)
		p.Barrier()
	})
	f, ok := err.(*FaultError)
	if !ok {
		t.Fatalf("TryRun = %v (%T), want *FaultError", err, err)
	}
	if f.Rank != 2 || f.AtNs != 100 {
		t.Fatalf("fault = %+v, want rank 2 at 100", f)
	}
	// The crash truncates the compute phase: the dead rank's clock lands
	// on the crash time, not the end of the phase it never finished.
	if got := w.Proc(2).Clock(); got != 100 {
		t.Errorf("crashed rank clock = %g, want 100", got)
	}
}

func TestTryRunPicksEarliestFaultDeterministically(t *testing.T) {
	// Both crashes fire in the same attempt (both ranks reach their crash
	// time inside the same Compute). The reported fault must be the
	// earliest virtual time, ties broken by rank — never whichever rank
	// goroutine the host scheduler happened to unwind first.
	for i := 0; i < 20; i++ {
		w := testWorld(t, 1)
		plan := fault.Plan{Crashes: []fault.Crash{
			{Rank: 3, AtNs: 50},
			{Rank: 1, AtNs: 50},
			{Rank: 0, AtNs: 70},
		}}
		if err := w.InjectFaults(plan); err != nil {
			t.Fatal(err)
		}
		err := w.TryRun(func(p *Proc) { p.Compute(1e6) })
		f, ok := err.(*FaultError)
		if !ok || f.Rank != 1 || f.AtNs != 50 {
			t.Fatalf("iteration %d: TryRun = %v, want rank 1 at 50", i, err)
		}
	}
}

func TestProgrammingBugOutranksConcurrentFault(t *testing.T) {
	w := testWorld(t, 1)
	if err := w.InjectFaults(fault.Plan{Crashes: []fault.Crash{{Rank: 1, AtNs: 0}}}); err != nil {
		t.Fatal(err)
	}
	err := w.TryRun(func(p *Proc) {
		switch p.Rank() {
		case 0:
			panic("boom")
		default:
			p.Compute(10) // rank 1's scheduled crash fires here
		}
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("TryRun = %v, want the rank 0 bug, not the rank 1 fault", err)
	}
}

func TestWorldReusableAfterAbort(t *testing.T) {
	w := testWorld(t, 2)
	err := w.TryRun(func(p *Proc) {
		switch p.Rank() {
		case 0:
			// Leave a posted message behind in rank 1's mailbox.
			p.Isend(1, 9, 8, nil, 1)
			p.Barrier()
		case 5:
			panic("boom")
		default:
			p.Barrier()
		}
	})
	if err == nil {
		t.Fatal("first attempt should fail")
	}
	// The next attempt reuses the same world: the abort channel is
	// re-armed, the poisoned barriers are rebuilt and the orphaned
	// message is drained, so fresh sends and barriers work.
	w.PrepareRecovery()
	err = w.TryRun(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, 1, 8, []uint64{7}, 1)
		case 1:
			if m := p.Recv(0, 1); m.Tag != 1 {
				t.Errorf("stale message leaked into retry: %+v", m)
			}
		}
		p.Barrier()
		p.NodeBarrier()
	})
	if err != nil {
		t.Fatalf("retry after abort: %v", err)
	}
}

func TestCrashRecoveryDisarm(t *testing.T) {
	w := testWorld(t, 1)
	if err := w.InjectFaults(fault.Plan{Crashes: []fault.Crash{{Rank: 0, AtNs: 5}}}); err != nil {
		t.Fatal(err)
	}
	body := func(p *Proc) {
		p.Compute(10)
		p.Barrier()
	}
	f, ok := w.TryRun(body).(*FaultError)
	if !ok {
		t.Fatal("first attempt should crash")
	}
	w.Injector().Disarm(f.Rank, f.AtNs)
	w.PrepareRecovery()
	if err := w.TryRun(body); err != nil {
		t.Fatalf("disarmed retry: %v", err)
	}
}

// TestBarrierHierarchicalPricing pins the bugfixed barrier cost model: a
// dissemination barrier on a NUMA cluster combines within the node over
// shared memory first, so only ceilLog2(nodes) rounds pay the inter-node
// alpha; the ceilLog2(ppn) intra-node rounds pay the (much cheaper)
// intra-node alpha. The old model charged all ceilLog2(np) rounds at
// inter-node alpha.
func TestBarrierHierarchicalPricing(t *testing.T) {
	w := testWorld(t, 4) // 4 nodes x 4 ranks
	w.Run(func(p *Proc) { p.Barrier() })
	cfg := w.Config()
	want := 2*cfg.IntraNodeAlphaNs + 2*cfg.InterNodeAlphaNs // ceilLog2(4)=2 both
	for r := 0; r < w.NumProcs(); r++ {
		if got := w.Proc(r).Clock(); got != want {
			t.Fatalf("rank %d clock = %g, want %g", r, got, want)
		}
	}

	// Single node: zero inter-node rounds — the barrier must not touch
	// the network at all (this is what keeps one-node results identical
	// to the pre-fix model).
	w1 := testWorld(t, 1)
	w1.Run(func(p *Proc) { p.Barrier() })
	want1 := 2 * w1.Config().IntraNodeAlphaNs
	if got := w1.Proc(0).Clock(); got != want1 {
		t.Fatalf("single-node barrier clock = %g, want %g (no inter-node alpha)", got, want1)
	}
}
