package mpi

import (
	"strings"
	"testing"

	"numabfs/internal/machine"
)

// testWorld builds a small world: nodes x 4-socket nodes, bound placement.
func testWorld(t *testing.T, nodes int) *World {
	t.Helper()
	cfg := machine.TableI()
	cfg.Nodes = nodes
	cfg.SocketsPerNode = 4
	cfg.WeakNode = -1
	pl := machine.PlacementFor(cfg, machine.PPN8Bind)
	return NewWorld(cfg, pl)
}

func TestWorldGeometry(t *testing.T) {
	w := testWorld(t, 2)
	if got, want := w.NumProcs(), 8; got != want {
		t.Fatalf("NumProcs = %d, want %d", got, want)
	}
	if got, want := w.ProcsPerNode(), 4; got != want {
		t.Fatalf("ProcsPerNode = %d, want %d", got, want)
	}
	for r := 0; r < w.NumProcs(); r++ {
		p := w.Proc(r)
		if p.Rank() != r {
			t.Errorf("rank %d: Rank() = %d", r, p.Rank())
		}
		if want := r / 4; p.Node() != want {
			t.Errorf("rank %d: Node() = %d, want %d", r, p.Node(), want)
		}
		if want := r % 4; p.LocalRank() != want {
			t.Errorf("rank %d: LocalRank() = %d, want %d", r, p.LocalRank(), want)
		}
	}
}

func TestSendRecvTransfersPayloadAndAdvancesClocks(t *testing.T) {
	w := testWorld(t, 2)
	var got []uint64
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(5, 7, 4*8, []uint64{1, 2, 3, 4}, 1)
		case 5:
			m := p.Recv(0, 7)
			got = m.Payload.([]uint64)
			if m.Src != 0 || m.Bytes != 32 {
				t.Errorf("Msg = %+v", m)
			}
		}
	})
	if len(got) != 4 || got[3] != 4 {
		t.Fatalf("payload = %v", got)
	}
	// Both ends advance to the same rendezvous end time.
	c0, c5 := w.Proc(0).Clock(), w.Proc(5).Clock()
	if c0 != c5 || c0 <= 0 {
		t.Fatalf("clocks after transfer: %g vs %g", c0, c5)
	}
	// Inter-node transfer must include the inter-node alpha.
	if c0 < w.Config().InterNodeAlphaNs {
		t.Fatalf("clock %g below inter-node alpha", c0)
	}
}

func TestRendezvousStartsAtMaxOfClocks(t *testing.T) {
	w := testWorld(t, 1)
	const lead = 5e6
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Compute(lead)
			p.Send(1, 1, 8, []uint64{42}, 1)
		case 1:
			p.Recv(0, 1)
		}
	})
	// Receiver arrived at t=0 but cannot finish before the sender's lead.
	if c := w.Proc(1).Clock(); c <= lead {
		t.Fatalf("receiver clock %g, want > %g", c, lead)
	}
}

func TestIntraNodeCheaperThanInterNode(t *testing.T) {
	w := testWorld(t, 2)
	const bytes = 1 << 20
	var intra, inter float64
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, 1, bytes, nil, 1)
			intra = p.Clock()
			p.Send(4, 2, bytes, nil, 1)
			inter = p.Clock() - intra
		case 1:
			p.Recv(0, 1)
		case 4:
			p.Recv(0, 2)
		}
	})
	// With TableI parameters shm copy (3 GB/s) is slower than one IB
	// stream (2.6 GB/s)? No: 3 > 2.6, so intra should be cheaper.
	if intra >= inter {
		t.Fatalf("intra %g >= inter %g", intra, inter)
	}
}

func TestSendRecvRingDoesNotDeadlock(t *testing.T) {
	w := testWorld(t, 2)
	n := w.NumProcs()
	w.Run(func(p *Proc) {
		me := p.Rank()
		next := (me + 1) % n
		prev := (me - 1 + n) % n
		for s := 0; s < 3; s++ {
			m := p.SendRecv(next, 100+s, 64, []uint64{uint64(me)}, prev, 100+s, 1)
			if v := m.Payload.([]uint64)[0]; v != uint64(prev) {
				t.Errorf("rank %d step %d: got %d want %d", me, s, v, prev)
			}
		}
	})
}

func TestBarrierSynchronizesToMaxAndReportsWait(t *testing.T) {
	w := testWorld(t, 2)
	waits := make([]float64, w.NumProcs())
	w.Run(func(p *Proc) {
		p.Compute(float64(p.Rank()) * 1000)
		waits[p.Rank()] = p.Barrier()
	})
	last := w.NumProcs() - 1
	if waits[last] != 0 {
		t.Errorf("slowest rank waited %g, want 0", waits[last])
	}
	if waits[0] != float64(last)*1000 {
		t.Errorf("rank 0 waited %g, want %g", waits[0], float64(last)*1000)
	}
	// All clocks equal after the barrier.
	c := w.Proc(0).Clock()
	for r := 1; r < w.NumProcs(); r++ {
		if w.Proc(r).Clock() != c {
			t.Fatalf("clock mismatch after barrier: rank %d", r)
		}
	}
}

func TestNodeBarrierOnlySyncsNode(t *testing.T) {
	w := testWorld(t, 2)
	w.Run(func(p *Proc) {
		if p.Node() == 0 {
			p.Compute(1e6)
		}
		p.NodeBarrier()
	})
	if c0, c4 := w.Proc(0).Clock(), w.Proc(4).Clock(); c0 <= c4 {
		t.Fatalf("node 0 clock %g should exceed node 1 clock %g", c0, c4)
	}
}

func TestSharedWordsIsPerNode(t *testing.T) {
	w := testWorld(t, 2)
	w.Run(func(p *Proc) {
		s := p.SharedWords("inq", 8)
		p.NodeBarrier()
		if p.LocalRank() == 0 {
			s[0] = uint64(100 + p.Node())
		}
		p.NodeBarrier()
		if want := uint64(100 + p.Node()); s[0] != want {
			t.Errorf("rank %d sees %d, want %d", p.Rank(), s[0], want)
		}
	})
}

func TestResetClocks(t *testing.T) {
	w := testWorld(t, 1)
	w.Run(func(p *Proc) { p.Compute(123) })
	if w.MaxClock() != 123 {
		t.Fatalf("MaxClock = %g", w.MaxClock())
	}
	w.ResetClocks()
	if w.MaxClock() != 0 {
		t.Fatalf("MaxClock after reset = %g", w.MaxClock())
	}
}

func TestRunPropagatesPanicWithRank(t *testing.T) {
	w := testWorld(t, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if !strings.Contains(r.(error).Error(), "rank 2") {
			t.Fatalf("panic %v does not name rank 2", r)
		}
	}()
	w.Run(func(p *Proc) {
		if p.Rank() == 2 {
			panic("boom")
		}
	})
}

func TestRecvTagMismatchPanics(t *testing.T) {
	w := testWorld(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected tag-mismatch panic")
		}
	}()
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, 7, 8, nil, 1)
		case 1:
			p.Recv(0, 8) // wrong tag: a program bug, must fail loudly
		}
	})
}

func TestSelfSendPanics(t *testing.T) {
	w := testWorld(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected self-send panic")
		}
	}()
	w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(0, 1, 8, nil, 1)
		}
	})
}

func TestSharedWordsSizeMismatchPanics(t *testing.T) {
	w := testWorld(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected size-mismatch panic")
		}
	}()
	w.Run(func(p *Proc) {
		p.SharedWords("x", 8)
		p.NodeBarrier()
		if p.Rank() == 0 {
			p.SharedWords("x", 16)
		}
	})
}

func TestDropSharedAllowsResize(t *testing.T) {
	w := testWorld(t, 1)
	w.Run(func(p *Proc) {
		s := p.SharedWords("y", 8)
		_ = s
	})
	w.DropShared("y@node0")
	w.Run(func(p *Proc) {
		if s := p.SharedWords("y", 16); len(s) != 16 {
			t.Errorf("resized region has %d words", len(s))
		}
	})
}

func TestClocksNeverRegress(t *testing.T) {
	// Property-style: through a mix of computes, sends and barriers, a
	// rank's clock is non-decreasing at every observation point.
	w := testWorld(t, 2)
	n := w.NumProcs()
	bad := make([]bool, n)
	w.Run(func(p *Proc) {
		last := p.Clock()
		check := func() {
			if p.Clock() < last {
				bad[p.Rank()] = true
			}
			last = p.Clock()
		}
		for i := 0; i < 5; i++ {
			p.Compute(float64(p.Rank()+1) * 10)
			check()
			m := p.SendRecv((p.Rank()+1)%n, 50+i, 16, nil, (p.Rank()-1+n)%n, 50+i, 1)
			_ = m
			check()
			p.Barrier()
			check()
		}
	})
	for r, b := range bad {
		if b {
			t.Errorf("rank %d observed a clock regression", r)
		}
	}
}

func TestCommNsAccumulates(t *testing.T) {
	w := testWorld(t, 1)
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, 1, 1024, nil, 1)
		case 1:
			p.Recv(0, 1)
		}
	})
	if w.Proc(0).CommNs() <= 0 || w.Proc(1).CommNs() <= 0 {
		t.Fatal("CommNs not accumulated")
	}
	if w.Proc(0).SentBytes() != 1024 {
		t.Fatalf("SentBytes = %d", w.Proc(0).SentBytes())
	}
}
