package mpi

import (
	"runtime"
	"testing"

	"numabfs/internal/fault"
	"numabfs/internal/simnet"
	"numabfs/internal/wire"
)

// exchange is a small mixed workload touching all three delivery paths:
// blocking pairs, a sendrecv ring, and nonblocking overlap.
func exchange(p *Proc) {
	np := p.World().NumProcs()
	// Blocking pair: rank 0 -> last rank (inter-node in testWorld).
	if p.Rank() == 0 {
		p.Send(np-1, 1, 1000, nil, 1)
	}
	if p.Rank() == np-1 {
		p.Recv(0, 1)
	}
	// SendRecv ring, three rounds.
	for s := 0; s < 3; s++ {
		dst := (p.Rank() + 1) % np
		src := (p.Rank() - 1 + np) % np
		p.SendRecv(dst, 10+s, 512, nil, src, 10+s, 1)
	}
	// Nonblocking cross-node pair with overlap.
	if p.Rank() == 0 {
		var m Msg
		rr := p.Irecv(np-1, 2, &m)
		rs := p.Isend(np-1, 3, 2048, nil, 1)
		p.Compute(5000)
		rr.Wait()
		rs.Wait()
	}
	if p.Rank() == np-1 {
		var m Msg
		rr := p.Irecv(0, 3, &m)
		rs := p.Isend(0, 2, 4096, nil, 1)
		p.Compute(1000)
		rs.Wait()
		rr.Wait()
	}
	p.Barrier()
}

// TestTransportIdentityWithoutLossPlan pins the identity guarantee at
// the mpi layer: a plan with transport tuning but no Loss events leaves
// every clock and every ledger bit-identical to no plan at all, with the
// transport counters untouched.
func TestTransportIdentityWithoutLossPlan(t *testing.T) {
	base := testWorld(t, 2)
	base.Run(exchange)

	tuned := testWorld(t, 2)
	if err := tuned.InjectFaults(fault.Plan{
		RetransmitTimeoutNs: 5e3, RetransmitBackoff: 1.5, RetryBudget: 4,
	}); err != nil {
		t.Fatal(err)
	}
	tuned.Run(exchange)

	for r := 0; r < base.NumProcs(); r++ {
		if a, b := base.Proc(r).Clock(), tuned.Proc(r).Clock(); a != b {
			t.Errorf("rank %d clock %v != %v under tuning-only plan", r, a, b)
		}
		if a, b := base.Proc(r).CommNs(), tuned.Proc(r).CommNs(); a != b {
			t.Errorf("rank %d commNs %v != %v", r, a, b)
		}
	}
	va, vb := base.Net().Volume(), tuned.Net().Volume()
	if va != vb {
		t.Errorf("volumes differ:\n%+v\n%+v", va, vb)
	}
	if vb.Xport != (simnet.Xport{}) {
		t.Errorf("tuning-only plan touched the transport ledger: %+v", vb.Xport)
	}
}

// TestTransportProtocolCharges verifies the analytic charging of a
// clean (zero-rate) lossy link: one inter-node message pays exactly one
// framed transfer plus one ack, the overhead ledger carries header+ack,
// and goodput equals the payload.
func TestTransportProtocolCharges(t *testing.T) {
	w := testWorld(t, 2)
	if err := w.InjectFaults(fault.Lossy(1, 0)); err != nil {
		t.Fatal(err)
	}
	const payload = 1000
	last := w.NumProcs() - 1
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(last, 1, payload, nil, 1)
		case last:
			p.Recv(0, 1)
		}
	})
	cfg := w.Config()
	bw := cfg.StreamBandwidth(1)
	frameDur := cfg.InterNodeAlphaNs + float64(payload+wire.FrameHeaderBytes)/bw
	ackDur := cfg.InterNodeAlphaNs + float64(wire.AckFrameBytes)/bw
	if got := w.Proc(last).Clock(); got != frameDur {
		t.Errorf("receiver clock %v, want frame transfer %v", got, frameDur)
	}
	if got := w.Proc(0).Clock(); got != frameDur+ackDur {
		t.Errorf("sender clock %v, want frame+ack %v", got, frameDur+ackDur)
	}
	v := w.Net().Volume()
	if v.InterBytes != payload+wire.FrameHeaderBytes+wire.AckFrameBytes {
		t.Errorf("inter bytes %d", v.InterBytes)
	}
	if v.InterMsgs != 2 {
		t.Errorf("inter msgs %d, want frame + ack", v.InterMsgs)
	}
	if v.Xport.OverheadBytes != wire.FrameHeaderBytes+wire.AckFrameBytes {
		t.Errorf("overhead %d", v.Xport.OverheadBytes)
	}
	if g := v.Goodput(); g != payload {
		t.Errorf("goodput %d, want %d", g, payload)
	}
	if v.Xport.Acks != 1 || v.Xport.Retransmits != 0 || v.Xport.Duplicates != 0 {
		t.Errorf("xport events %+v", v.Xport)
	}
	if v.RawInterBytes != payload {
		t.Errorf("raw inter bytes %d", v.RawInterBytes)
	}
}

// TestTransportIntraNodeBypassesProtocol: shared-memory traffic is
// reliable by construction and never framed, even under a loss plan
// covering every link.
func TestTransportIntraNodeBypassesProtocol(t *testing.T) {
	w := testWorld(t, 2)
	if err := w.InjectFaults(fault.Lossy(1, 0.5)); err != nil {
		t.Fatal(err)
	}
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, 1, 1000, nil, 1) // ranks 0 and 1 share node 0
		case 1:
			p.Recv(0, 1)
		}
	})
	v := w.Net().Volume()
	if v.Xport != (simnet.Xport{}) {
		t.Errorf("intra-node message hit the transport: %+v", v.Xport)
	}
	if v.IntraBytes != 1000 || v.InterBytes != 0 {
		t.Errorf("volume %+v", v)
	}
}

// TestTransportRetransmitTiming uses a total brown-out window so the
// first attempt is deterministically lost: the message must arrive via
// the retransmission at exactly one timeout later, with the lost frame
// charged as overhead.
func TestTransportRetransmitTiming(t *testing.T) {
	const rto = 5e3
	plan := fault.Plan{
		Seed:                1,
		Loss:                []fault.Loss{{Node: -1, Src: -1, Dst: -1, DropProb: 1, UntilNs: 1}},
		RetransmitTimeoutNs: rto,
	}
	w := testWorld(t, 2)
	if err := w.InjectFaults(plan); err != nil {
		t.Fatal(err)
	}
	const payload = 1000
	last := w.NumProcs() - 1
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(last, 1, payload, nil, 1)
		case last:
			p.Recv(0, 1)
		}
	})
	cfg := w.Config()
	bw := cfg.StreamBandwidth(1)
	frameDur := cfg.InterNodeAlphaNs + float64(payload+wire.FrameHeaderBytes)/bw
	if got, want := w.Proc(last).Clock(), rto+frameDur; got != want {
		t.Errorf("receiver clock %v, want retransmit at timeout: %v", got, want)
	}
	v := w.Net().Volume()
	if v.Xport.Retransmits != 1 {
		t.Errorf("retransmits %d, want 1", v.Xport.Retransmits)
	}
	wantOverhead := int64(payload) + 3*wire.FrameHeaderBytes // lost frame + delivered header + ack
	if v.Xport.OverheadBytes != wantOverhead {
		t.Errorf("overhead %d, want %d", v.Xport.OverheadBytes, wantOverhead)
	}
	if g := v.Goodput(); g != payload {
		t.Errorf("goodput %d, want %d", g, payload)
	}
}

// TestTransportBackoffOutlastsBrownout: a 100%-drop window much longer
// than the base timeout must be survived by the exponential backoff
// schedule within the default retry budget.
func TestTransportBackoffOutlastsBrownout(t *testing.T) {
	plan := fault.Plan{
		Seed:                1,
		Loss:                []fault.Loss{{Node: -1, Src: -1, Dst: -1, DropProb: 1, UntilNs: 100e3}},
		RetransmitTimeoutNs: 1e3, // attempts at 0, 1k, 3k, 7k, ..., 127k
	}
	w := testWorld(t, 2)
	if err := w.InjectFaults(plan); err != nil {
		t.Fatal(err)
	}
	last := w.NumProcs() - 1
	err := w.TryRun(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(last, 1, 100, nil, 1)
		case last:
			p.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatalf("brown-out not survived: %v", err)
	}
	if got := w.Proc(last).Clock(); got < 100e3 {
		t.Errorf("receiver clock %v inside the brown-out window", got)
	}
	v := w.Net().Volume()
	if v.Xport.Retransmits < 5 {
		t.Errorf("retransmits %d, want a backoff ladder", v.Xport.Retransmits)
	}
}

// TestTransportBudgetExhaustion: a permanently dead link must surface as
// a structured KindLinkLoss fault on the receiving rank, not hang or
// panic opaquely.
func TestTransportBudgetExhaustion(t *testing.T) {
	plan := fault.Plan{
		Seed:                1,
		Loss:                []fault.Loss{{Node: -1, Src: -1, Dst: -1, DropProb: 1}},
		RetransmitTimeoutNs: 1e3,
		RetryBudget:         3,
	}
	w := testWorld(t, 2)
	if err := w.InjectFaults(plan); err != nil {
		t.Fatal(err)
	}
	last := w.NumProcs() - 1
	err := w.TryRun(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(last, 1, 100, nil, 1)
		case last:
			p.Recv(0, 1)
		}
	})
	fe, ok := err.(*fault.Error)
	if !ok {
		t.Fatalf("error = %v, want *fault.Error", err)
	}
	if fe.Kind != fault.KindLinkLoss {
		t.Errorf("kind = %v, want KindLinkLoss", fe.Kind)
	}
	if fe.Rank != last {
		t.Errorf("rank = %d, want the receiver %d", fe.Rank, last)
	}
	if v := w.Net().Volume(); v.Xport.Retransmits != 3 {
		t.Errorf("retransmits %d, want the full budget of 3", v.Xport.Retransmits)
	}
}

// TestTransportDupReorderCorruptCounters forces each remaining fate with
// probability-one events and checks the ledgers.
func TestTransportDupReorderCorruptCounters(t *testing.T) {
	plan := fault.Plan{
		Seed: 1,
		Loss: []fault.Loss{{Node: -1, Src: -1, Dst: -1, DupProb: 1, ReorderProb: 1, ReorderWindow: 3}},
	}
	w := testWorld(t, 2)
	if err := w.InjectFaults(plan); err != nil {
		t.Fatal(err)
	}
	const payload = 1000
	last := w.NumProcs() - 1
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(last, 1, payload, nil, 1)
		case last:
			p.Recv(0, 1)
		}
	})
	v := w.Net().Volume()
	if v.Xport.Duplicates != 1 || v.Xport.Reorders != 1 {
		t.Errorf("xport %+v, want 1 dup + 1 reorder", v.Xport)
	}
	// The duplicate burns a full extra frame on the wire.
	frame := int64(payload + wire.FrameHeaderBytes)
	if v.InterBytes != 2*frame+wire.AckFrameBytes {
		t.Errorf("inter bytes %d, want original + duplicate + ack", v.InterBytes)
	}
	// The resequencing hold delays delivery by 1..3 inter-node alphas.
	cfg := w.Config()
	bw := cfg.StreamBandwidth(1)
	clean := cfg.InterNodeAlphaNs + float64(frame)/bw
	hold := w.Proc(last).Clock() - clean
	alpha := cfg.InterNodeAlphaNs
	if hold < alpha-1e-9 || hold > 3*alpha+1e-9 {
		t.Errorf("reorder hold %v, want within [1, 3] alphas (%v)", hold, alpha)
	}

	// Corruption: CRC-detected and retransmitted, counted separately.
	w2 := testWorld(t, 2)
	if err := w2.InjectFaults(fault.Plan{
		Seed: 1,
		Loss: []fault.Loss{{Node: -1, Src: -1, Dst: -1, CorruptProb: 1, UntilNs: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	w2.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(last, 1, payload, nil, 1)
		case last:
			p.Recv(0, 1)
		}
	})
	v2 := w2.Net().Volume()
	if v2.Xport.Corruptions != 1 || v2.Xport.Retransmits != 1 {
		t.Errorf("corruption ledger %+v, want 1 corruption causing 1 retransmit", v2.Xport)
	}
}

// TestTransportDeterministicAcrossHostParallelism runs a contended
// workload under a mixed loss plan at GOMAXPROCS 1 and 4: every rank
// clock and every ledger must be bit-identical.
func TestTransportDeterministicAcrossHostParallelism(t *testing.T) {
	run := func(procs int) ([]float64, simnet.Volume) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		w := testWorld(t, 2)
		if err := w.InjectFaults(fault.Lossy(42, 0.05)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			w.Run(exchange)
		}
		clocks := make([]float64, w.NumProcs())
		for r := range clocks {
			clocks[r] = w.Proc(r).Clock()
		}
		return clocks, w.Net().Volume()
	}
	c1, v1 := run(1)
	c4, v4 := run(4)
	for r := range c1 {
		if c1[r] != c4[r] {
			t.Errorf("rank %d clock %v != %v across GOMAXPROCS", r, c1[r], c4[r])
		}
	}
	if v1 != v4 {
		t.Errorf("volumes differ across GOMAXPROCS:\n%+v\n%+v", v1, v4)
	}
}
