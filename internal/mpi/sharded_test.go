package mpi

import (
	"sync"
	"testing"
)

// TestShardedBarrierReturnsGlobalMax drives the sharded barrier directly
// (outside a World) through several generations: every party of every
// shard must observe the global maximum of the generation, not just its
// own shard's.
func TestShardedBarrierReturnsGlobalMax(t *testing.T) {
	const shards, perShard, gens = 4, 8, 5
	b := newShardedBarrier(shards, perShard)
	np := shards * perShard
	got := make([][gens]float64, np)
	var wg sync.WaitGroup
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for g := 0; g < gens; g++ {
				// Rank r arrives with clock g*1000+r; the global max of the
				// generation is g*1000 + (np-1).
				got[r][g] = b.sync(r/perShard, float64(g*1000+r))
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < np; r++ {
		for g := 0; g < gens; g++ {
			if want := float64(g*1000 + np - 1); got[r][g] != want {
				t.Fatalf("rank %d gen %d: sync = %g, want %g", r, g, got[r][g], want)
			}
		}
	}
}

// TestShardedBarrierSingleShard covers the degenerate one-node geometry,
// where the combiner has a single party and must not deadlock.
func TestShardedBarrierSingleShard(t *testing.T) {
	const perShard = 4
	b := newShardedBarrier(1, perShard)
	var wg sync.WaitGroup
	got := make([]float64, perShard)
	for r := 0; r < perShard; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			got[r] = b.sync(0, float64(r))
		}(r)
	}
	wg.Wait()
	for r, v := range got {
		if v != perShard-1 {
			t.Fatalf("rank %d: sync = %g, want %d", r, v, perShard-1)
		}
	}
}

// TestShardedBarrierAbortReleasesWaiters parks ranks of one shard in the
// barrier (their shard is full, but another shard never arrives, so they
// block at combiner or shard level) and then aborts: every waiter must
// unwind with errAborted instead of hanging.
func TestShardedBarrierAbortReleasesWaiters(t *testing.T) {
	const shards, perShard = 2, 4
	b := newShardedBarrier(shards, perShard)
	var wg sync.WaitGroup
	released := make(chan struct{}, perShard)
	var entered sync.WaitGroup
	entered.Add(perShard)
	for r := 0; r < perShard; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if _, ok := recover().(errAborted); !ok {
					t.Errorf("party %d: expected errAborted", r)
				}
				released <- struct{}{}
			}()
			entered.Done()
			b.sync(0, float64(r)) // shard 1 never arrives
		}(r)
	}
	entered.Wait()
	b.abortAll()
	wg.Wait()
	if len(released) != perShard {
		t.Fatalf("released %d of %d waiters", len(released), perShard)
	}
	// A poisoned barrier must keep failing new arrivals, not hang them.
	func() {
		defer func() {
			if _, ok := recover().(errAborted); !ok {
				t.Error("post-abort sync: expected errAborted")
			}
		}()
		b.sync(1, 0)
	}()
}
