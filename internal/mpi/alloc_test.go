package mpi

import (
	"runtime"
	"testing"
)

// mallocsDuring runs f and returns the number of heap allocations the
// whole process performed meanwhile. The rendezvous paths run on rank
// goroutines, so testing.AllocsPerRun (calling-goroutine only) cannot
// see them; the global Mallocs counter can, at the cost of absorbing a
// small fixed overhead from the world's goroutine spawns.
func mallocsDuring(f func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestSendRecvHotPathDoesNotAllocPerMessage pins the ack-channel pooling
// win: after a warm-up run has populated the free-lists, a run exchanging
// msgs messages must allocate far fewer than msgs objects. Before
// pooling, every Send and every sendRecv allocated a fresh ack channel —
// this bound would fail by an order of magnitude.
func TestSendRecvHotPathDoesNotAllocPerMessage(t *testing.T) {
	const msgs = 2000
	w := testWorld(t, 1) // 4 ranks, one node
	body := func(p *Proc) {
		switch p.Rank() {
		case 0:
			for i := 0; i < msgs; i++ {
				p.Send(1, 7, 64, nil, 1)
			}
		case 1:
			for i := 0; i < msgs; i++ {
				p.Recv(0, 7)
			}
		case 2:
			for i := 0; i < msgs; i++ {
				p.SendRecv(3, 9, 64, nil, 3, 9, 1)
			}
		case 3:
			for i := 0; i < msgs; i++ {
				p.SendRecv(2, 9, 64, nil, 2, 9, 1)
			}
		}
	}
	w.Run(body) // warm-up: fills the per-rank ack free-lists
	w.ResetClocks()
	allocs := mallocsDuring(func() { w.Run(body) })
	// Per-run fixed overhead (goroutine spawns, WaitGroup, panics chan,
	// scheduler bookkeeping) is a few dozen objects; 3*msgs messages
	// crossed the mailboxes. Budget well below one alloc per message.
	if allocs > msgs/2 {
		t.Fatalf("run with %d messages allocated %d objects; ack pooling regressed", 3*msgs, allocs)
	}
}

// TestIsendHotPathDoesNotAllocAckChannels covers the nonblocking path:
// Isend must draw its ack channel from the pool, Irecv its Request, and
// Wait must return both. With Requests pooled, the only per-exchange
// allocation left in this variant is the receiver's out Msg, which
// escapes because its address outlives the loop iteration.
func TestIsendHotPathDoesNotAllocAckChannels(t *testing.T) {
	const msgs = 2000
	w := testWorld(t, 1)
	body := func(p *Proc) {
		switch p.Rank() {
		case 0:
			for i := 0; i < msgs; i++ {
				r := p.Isend(1, 5, 64, nil, 1)
				r.Wait()
			}
		case 1:
			for i := 0; i < msgs; i++ {
				var m Msg
				r := p.Irecv(0, 5, &m)
				r.Wait()
			}
		}
	}
	w.Run(body)
	w.ResetClocks()
	allocs := mallocsDuring(func() { w.Run(body) })
	// One escaping Msg per exchange is expected; the regression this
	// guards is the two Request structs (and the ack channel) coming
	// back on top of it — before pooling, this path cost ~3 allocations
	// per pair and the historical budget was 3*msgs+500.
	if allocs > msgs+500 {
		t.Fatalf("run with %d isend/irecv pairs allocated %d objects; request pooling regressed", msgs, allocs)
	}
}

// TestIsendPooledPathAllocFree is the fully pooled variant: the
// receiver reads the message from the pooled Request's internal storage
// (Request.Msg) instead of an escaping out pointer, so the steady-state
// exchange must allocate essentially nothing per message — the same
// budget the blocking Send/Recv path meets.
func TestIsendPooledPathAllocFree(t *testing.T) {
	const msgs = 2000
	w := testWorld(t, 1)
	body := func(p *Proc) {
		switch p.Rank() {
		case 0:
			for i := 0; i < msgs; i++ {
				r := p.Isend(1, 5, 64, nil, 1)
				r.Wait()
			}
		case 1:
			for i := 0; i < msgs; i++ {
				r := p.Irecv(0, 5, nil)
				r.Wait()
				if m := r.Msg(); m.Tag != 5 || m.Src != 0 {
					panic("pooled Irecv delivered the wrong message")
				}
			}
		}
	}
	w.Run(body)
	w.ResetClocks()
	allocs := mallocsDuring(func() { w.Run(body) })
	if allocs > msgs/2 {
		t.Fatalf("run with %d fully pooled isend/irecv pairs allocated %d objects", msgs, allocs)
	}
}

// TestRequestPoolRecycles checks the free-list mechanics directly: a
// Request completed by Wait comes back from the next post, reset, and
// the pool never hands out a Request still in flight.
func TestRequestPoolRecycles(t *testing.T) {
	w := testWorld(t, 1)
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			r1 := p.Isend(1, 3, 8, nil, 1)
			r1.Wait()
			r2 := p.Isend(1, 3, 8, nil, 1)
			if r2 != r1 {
				panic("mpi: completed Request not recycled by the next post")
			}
			r2.Wait()
		case 1:
			for i := 0; i < 2; i++ {
				r := p.Irecv(0, 3, nil)
				r.Wait()
			}
		}
	})
}

// TestAckPoolRecycles checks the free-list mechanics directly: a channel
// returned via putAck comes back from getAck, and a stale value left by
// an abort unwind cannot leak into the next rendezvous.
func TestAckPoolRecycles(t *testing.T) {
	p := &Proc{}
	ch := p.getAck()
	p.putAck(ch)
	if got := p.getAck(); got != ch {
		t.Fatal("getAck did not reuse the pooled channel")
	}
}
