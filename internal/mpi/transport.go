package mpi

import (
	"numabfs/internal/fault"
	"numabfs/internal/obs"
	"numabfs/internal/wire"
)

// This file is the reliable-transport layer under every point-to-point
// delivery (Recv, SendRecv, Irecv.Wait — collectives are built on these,
// so they inherit reliability for free). When the fault plan declares
// lossy links (fault.Plan.Loss), inter-node messages travel as sequenced,
// CRC-protected frames (wire.AppendFrame is the concrete codec) and the
// receiver only acknowledges intact in-order data; dropped or corrupted
// frames are retransmitted after a timeout with exponential backoff until
// a retry budget is exhausted, which surfaces as a structured
// *fault.Error (KindLinkLoss) through the same abort machinery as a rank
// crash.
//
// The protocol is charged analytically: instead of shuffling bytes per
// attempt, the receiver — who under the simulator's rendezvous scheme
// computes delivery timing for both sides — walks the attempt schedule
// drawing each frame's fate from the deterministic transport hash
// (fault.Injector.TransportDraw) and charges every attempt, duplicate
// and ack to the virtual clock and the simnet ledgers. Draws hash the
// message identity and attempt number, never a live counter, so fates
// depend only on virtual time: repeats, GOMAXPROCS values and
// crash-recovery replays all see the same losses. (Two messages posted
// by one rank to one peer at the same clock with equal sizes share an
// identity and thus a fate schedule; clocks advance between blocking
// sends, so this only affects back-to-back equal-size Isends, where a
// shared fate is indistinguishable from a correlated burst loss.)
//
// With no Loss events the transport is compiled in but bypassed on a
// fast path that executes the exact pre-transport instruction sequence —
// results, ledgers and allocation counts are bit-identical to a build
// without this file.

// rtoCapFactor bounds exponential backoff at this multiple of the base
// retransmission timeout (TCP-style cap), so a transient brown-out
// window longer than a few timeouts is survived with a bounded probe
// interval instead of one enormous overshoot.
const rtoCapFactor = 64

// deliver charges one message's delivery to the receiving rank p and
// returns when the payload is available to the receiver (recvEnd) and
// when the sender may complete (sendEnd: the cumulative-ack arrival
// under the reliable transport; equal to recvEnd otherwise). begin is
// the rendezvous start — the later of the sender's post and the
// receiver's arrival. Exactly one CountRaw charge happens inside.
func (p *Proc) deliver(m message, begin float64) (recvEnd, sendEnd float64) {
	srcNode := p.w.procs[m.src].node
	intra := srcNode == p.node
	if intra || !p.w.inj.Reliable() {
		dur := p.w.net.TransferTimeAt(begin, m.bytes, srcNode, p.node, m.streams)
		if j := p.w.inj.JitterNs(m.src, p.rank, m.sent, m.bytes); j != 0 {
			dur += j
		}
		p.w.net.CountRaw(m.raw, intra)
		end := begin + dur
		p.obs.LinkTransfer(!intra, m.bytes, begin, end)
		return end, end
	}
	return p.reliableDeliver(m, begin, srcNode)
}

// reliableDeliver walks the reliable transport's attempt schedule for
// one inter-node message. Without gauge sampling it allocates nothing:
// the hot loop is scalar arithmetic over the deterministic draw hash
// plus atomic ledger adds.
func (p *Proc) reliableDeliver(m message, begin float64, srcNode int) (recvEnd, sendEnd float64) {
	inj := p.w.inj
	net := p.w.net
	frame := m.bytes + wire.FrameHeaderBytes
	rto := inj.RetransmitTimeoutNs()
	maxRTO := rto * rtoCapFactor
	backoff := inj.RetransmitBackoff()
	budget := inj.RetryBudget()

	var retrans, corrupt int64
	var overheadBytes int64
	sendAt := begin
	var arrive float64
	var loss fault.LinkLoss
	for attempt := 1; ; attempt++ {
		dur := net.TransferTimeAt(sendAt, frame, srcNode, p.node, m.streams)
		if j := inj.JitterNs(m.src, p.rank, m.sent, m.bytes); j != 0 {
			dur += j
		}
		arrive = sendAt + dur
		// Every attempt occupies the wire for its flight window, lost or
		// not — the bytes-in-flight gauge sees them all.
		p.obs.LinkTransfer(true, frame, sendAt, arrive)
		// Sample the link at the attempt's send time, so a transient
		// brown-out window is outlasted by the backoff schedule.
		loss = inj.LossAt(srcNode, p.node, sendAt)
		lost := loss.Drop > 0 &&
			inj.TransportDraw(fault.DrawDrop, m.src, p.rank, m.sent, m.bytes, attempt) < loss.Drop
		if !lost && loss.Corrupt > 0 &&
			inj.TransportDraw(fault.DrawCorrupt, m.src, p.rank, m.sent, m.bytes, attempt) < loss.Corrupt {
			// Delivered but fails the CRC: discarded like a drop.
			lost = true
			corrupt++
		}
		if !lost {
			break
		}
		// The whole attempt was protocol overhead; the sender times out
		// and retransmits.
		net.CountXportOverhead(frame)
		overheadBytes += frame
		retrans++
		p.obs.GaugeAdd(obs.GaugeRetransBacklog, sendAt, 1)
		if attempt >= budget {
			at := sendAt + rto
			net.CountXportEvents(retrans, corrupt, 0, 0, 0)
			p.obs.Xport(retrans, corrupt, 0, 0, 0, overheadBytes, at-begin)
			p.obs.FaultEvent("link-loss", at)
			panic(&fault.Error{Rank: p.rank, AtNs: at, Kind: fault.KindLinkLoss})
		}
		sendAt += rto
		if rto < maxRTO {
			rto *= backoff
			if rto > maxRTO {
				rto = maxRTO
			}
		}
	}

	// Duplicate delivery: the copy burns wire bytes and a NIC slot but
	// trails the original, so the receiver discards it without delay.
	var dups int64
	if loss.Dup > 0 &&
		inj.TransportDraw(fault.DrawDup, m.src, p.rank, m.sent, m.bytes, 0) < loss.Dup {
		net.TransferTimeAt(arrive, frame, srcNode, p.node, m.streams)
		net.CountXportOverhead(frame)
		overheadBytes += frame
		dups++
	}

	// Reordering: the frame was overtaken by up to Window successors, so
	// the resequencer (wire.Resequencer) holds it for the gap to close —
	// one inter-node alpha per overtaking frame slot.
	var reorders int64
	var hold float64
	if loss.Reorder > 0 {
		if d := inj.TransportDraw(fault.DrawReorder, m.src, p.rank, m.sent, m.bytes, 0); d < loss.Reorder {
			slots := 1 + int(d/loss.Reorder*float64(loss.Window))
			if slots > loss.Window {
				slots = loss.Window
			}
			hold = float64(slots) * p.w.cfg.InterNodeAlphaNs
			reorders++
		}
	}
	recvEnd = arrive + hold

	// Cumulative ack back to the sender: header-only frame, never lost in
	// the model (cumulative acks are loss-tolerant — the next one
	// supersedes). The sender completes when it arrives.
	ackDur := net.TransferTimeAt(recvEnd, wire.AckFrameBytes, p.node, srcNode, m.streams)
	sendEnd = recvEnd + ackDur
	// Overhead bytes: every lost attempt and duplicate (counted above),
	// the delivered frame's header, and the ack.
	net.CountXportOverhead(wire.FrameHeaderBytes + wire.AckFrameBytes)
	overheadBytes += wire.FrameHeaderBytes + wire.AckFrameBytes

	net.CountRaw(m.raw, false)
	net.CountXportEvents(retrans, corrupt, dups, reorders, 1)
	p.xportNs += (sendAt - begin) + hold + ackDur
	p.obs.Xport(retrans, corrupt, dups, reorders, 1, overheadBytes,
		(sendAt-begin)+hold+ackDur)
	return recvEnd, sendEnd
}
