package mpi

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkBarrier compares the flat single-cond barrier (kept for node
// scope) against the two-level sharded barrier that now backs
// Proc.Barrier, at the geometries the experiment sweeps actually build.
// One benchmark iteration is one full-barrier generation across all np
// parties; the flat variant broadcasts all np waiters under one mutex,
// the sharded one wakes per-node shards and combines across nodes.
func BenchmarkBarrier(b *testing.B) {
	for _, geo := range []struct{ nodes, ppn int }{
		{8, 8},   // np=64
		{32, 16}, // np=512
	} {
		np := geo.nodes * geo.ppn
		b.Run(fmt.Sprintf("np=%d/flat", np), func(b *testing.B) {
			bar := newBarrier(np)
			benchBarrier(b, np, func(r int, clock float64) { bar.sync(clock) })
		})
		b.Run(fmt.Sprintf("np=%d/sharded", np), func(b *testing.B) {
			bar := newShardedBarrier(geo.nodes, geo.ppn)
			benchBarrier(b, np, func(r int, clock float64) { bar.sync(r/geo.ppn, clock) })
		})
	}
}

func benchBarrier(b *testing.B, np int, sync1 func(r int, clock float64)) {
	b.ReportAllocs()
	var wg sync.WaitGroup
	b.ResetTimer()
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				sync1(r, float64(i))
			}
		}(r)
	}
	wg.Wait()
}
