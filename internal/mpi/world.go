// Package mpi is an execution-driven simulator of the MPI runtime the
// paper's BFS is written against. Each rank is a goroutine executing the
// real algorithm on real data; every rank carries a virtual clock in
// nanoseconds. Computation advances a rank's clock by modelled phase
// costs (internal/machine); point-to-point transfers rendezvous — the
// transfer starts when both sides have arrived and both clocks advance to
// its end, with the duration charged by the network model
// (internal/simnet). Barriers synchronize clocks to the maximum plus a
// dissemination-round cost and report each rank's wait (the paper's
// "stall" time).
//
// The result is deterministic: virtual time depends only on the machine
// configuration, the algorithm and the input — never on host scheduling
// or host core count.
package mpi

import (
	"fmt"
	"sync"

	"numabfs/internal/fault"
	"numabfs/internal/machine"
	"numabfs/internal/obs"
	"numabfs/internal/simnet"
)

// FaultError is the structured error a modelled rank crash produces:
// TryRun returns it (instead of an opaque panic) so callers can tell a
// scheduled fault from a programming bug and attempt recovery.
type FaultError = fault.Error

// World is one simulated MPI job: a set of ranks placed on a machine.
type World struct {
	cfg machine.Config
	pl  machine.Placement
	net *simnet.Network

	// inj is the active fault injector, shared with net. Never nil — an
	// empty plan compiles to an injector whose every hook is an exact
	// identity.
	inj *fault.Injector

	procs []*Proc
	// mail[dst][src] carries messages from src to dst.
	mail [][]chan message

	globalBarrier *shardedBarrier
	nodeBarriers  []*barrier

	// Membership (membership.go): live[r] marks rank r as scheduled by
	// Run/TryRun — parked spares and permanently dead ranks are not.
	// The derived counts price barriers over the live epoch only, and
	// epoch numbers the world views (0 = the view Run first saw;
	// Shrink/Promote advance it).
	live       []bool
	liveOnNode []int
	liveNodes  int
	maxLivePPN int
	epoch      int

	// abort is closed when any rank panics, releasing ranks blocked in
	// communication (MPI job-abort semantics: one failing rank brings
	// the whole job down instead of deadlocking its partners).
	abort     chan struct{}
	abortOnce sync.Once

	shmMu      sync.Mutex
	shmRegions map[string][]uint64

	// obsSess is the attached observability session, nil when off.
	obsSess *obs.Session
}

// errAborted is the panic value delivered to ranks released by an abort.
type errAborted struct{}

func (errAborted) Error() string { return "mpi: job aborted by another rank's failure" }

// doAbort releases every blocked rank.
func (w *World) doAbort() {
	w.abortOnce.Do(func() {
		close(w.abort)
		w.globalBarrier.abortAll()
		for _, b := range w.nodeBarriers {
			b.abortAll()
		}
	})
}

// NewWorld builds a world of pl.Procs(cfg) ranks over cfg. Rank r lives
// on node r/ProcsPerNode; when the placement is bound, local rank i is
// pinned to socket i.
func NewWorld(cfg machine.Config, pl machine.Placement) *World {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	np := pl.Procs(cfg)
	w := &World{
		cfg:        cfg,
		pl:         pl,
		net:        simnet.New(cfg),
		abort:      make(chan struct{}),
		shmRegions: make(map[string][]uint64),
	}
	w.inj = w.net.Injector()
	w.mail = make([][]chan message, np)
	for d := range w.mail {
		w.mail[d] = make([]chan message, np)
		for s := range w.mail[d] {
			// Capacity 1 lets the sender post and block on the ack,
			// avoiding a second handshake for the common case.
			w.mail[d][s] = make(chan message, 1)
		}
	}
	w.live = make([]bool, np)
	for r := range w.live {
		w.live[r] = true
	}
	w.liveOnNode = make([]int, cfg.Nodes)
	w.nodeBarriers = make([]*barrier, cfg.Nodes)
	w.rebuildMembership()
	w.procs = make([]*Proc, np)
	for r := 0; r < np; r++ {
		w.procs[r] = &Proc{
			w:     w,
			rank:  r,
			node:  r / pl.ProcsPerNode,
			local: r % pl.ProcsPerNode,
		}
	}
	return w
}

// NumProcs returns the number of ranks.
func (w *World) NumProcs() int { return len(w.procs) }

// ProcsPerNode returns ranks per node.
func (w *World) ProcsPerNode() int { return w.pl.ProcsPerNode }

// Config returns the machine configuration.
func (w *World) Config() machine.Config { return w.cfg }

// Placement returns the execution placement.
func (w *World) Placement() machine.Placement { return w.pl }

// Net returns the network model (for volume counters).
func (w *World) Net() *simnet.Network { return w.net }

// Injector returns the active fault injector (never nil).
func (w *World) Injector() *fault.Injector { return w.inj }

// InjectFaults installs a fault plan. The configuration's weak node is
// folded in so it persists — the plan adds to the machine, it does not
// replace it. Call between runs only; rank-scoped entries are validated
// against this world's size.
func (w *World) InjectFaults(plan fault.Plan) error {
	merged := fault.WeakNode(w.cfg.WeakNode, w.cfg.WeakNodeBWFactor).Merge(plan)
	inj, err := fault.NewInjector(merged, len(w.procs))
	if err != nil {
		return err
	}
	w.inj = inj
	w.net.SetInjector(inj)
	return nil
}

// Proc returns rank r. Intended for post-run inspection.
func (w *World) Proc(r int) *Proc { return w.procs[r] }

// Run executes body once per rank, each on its own goroutine, and blocks
// until all ranks return. A panic in any rank aborts the whole job —
// ranks blocked in communication are released, as MPI would — and the
// first failure is re-raised on the caller with its rank attached.
func (w *World) Run(body func(p *Proc)) {
	if err := w.TryRun(body); err != nil {
		panic(err)
	}
}

// TryRun is Run returning the job's failure instead of panicking. A
// modelled rank crash surfaces as a *FaultError — when several ranks
// crash in one attempt, deterministically the earliest (ties broken by
// rank), never whichever goroutine the host scheduler unblocked first —
// while a programming bug keeps its descriptive wrapped panic and takes
// precedence over any concurrent fault. After a failed attempt the world
// is re-armed (abort channel, barriers, mailboxes), so a recovery
// attempt can reuse it.
func (w *World) TryRun(body func(p *Proc)) error {
	w.resetAbort()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var faults []*fault.Error
	panics := make(chan error, len(w.procs))
	for _, p := range w.procs {
		if !w.live[p.rank] {
			continue
		}
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					switch e := r.(type) {
					case errAborted:
					case *fault.Error:
						mu.Lock()
						faults = append(faults, e)
						mu.Unlock()
					default:
						panics <- fmt.Errorf("mpi: rank %d panicked: %v", p.rank, r)
					}
					w.doAbort()
				}
			}()
			body(p)
		}(p)
	}
	wg.Wait()
	select {
	case err := <-panics:
		return err
	default:
	}
	if len(faults) > 0 {
		first := faults[0]
		for _, f := range faults[1:] {
			if f.AtNs < first.AtNs || (f.AtNs == first.AtNs && f.Rank < first.Rank) {
				first = f
			}
		}
		return first
	}
	return nil
}

// resetAbort re-arms the abort machinery after a failed attempt: a fresh
// abort channel, fresh barriers (an aborted barrier generation is
// poisoned), and drained mailboxes (a crashed rank may have left a
// posted message no one will ever take). A no-op unless an abort fired.
func (w *World) resetAbort() {
	select {
	case <-w.abort:
	default:
		return
	}
	w.abort = make(chan struct{})
	w.abortOnce = sync.Once{}
	w.rebuildMembership()
	for d := range w.mail {
		for s := range w.mail[d] {
			select {
			case <-w.mail[d][s]:
			default:
			}
		}
	}
}

// MaxClock returns the maximum virtual clock across ranks — the job's
// virtual wall time.
func (w *World) MaxClock() float64 {
	var m float64
	for _, p := range w.procs {
		if !w.live[p.rank] {
			continue
		}
		if p.clock > m {
			m = p.clock
		}
	}
	return m
}

// AttachObs connects an observability session: every rank gets its own
// span/counter stream (rank, node, socket). Call before Run — typically
// right after NewWorld, so construction-phase collectives are recorded
// too. Recording never advances virtual time, so results are identical
// with and without a session attached.
func (w *World) AttachObs(s *obs.Session) {
	w.obsSess = s
	s.SetLinkPeak(w.net.PeakStreamBandwidth())
	for _, p := range w.procs {
		// local is the rank's socket under the bound placement and the
		// best available stand-in otherwise.
		p.obs = s.AddRank(p.rank, p.node, p.local)
	}
}

// ResetClocks zeroes every rank's clock and counters (between BFS roots).
func (w *World) ResetClocks() {
	if w.obsSess != nil {
		// Stitch the next run onto the session timeline: everything
		// recorded so far ends at MaxClock, the next root restarts at 0.
		w.obsSess.Advance(w.MaxClock())
	}
	for _, p := range w.procs {
		p.clock = 0
		p.commNs = 0
		p.sentBytes = 0
	}
	w.net.ResetVolume()
}

// PrepareRecovery zeroes rank clocks and per-rank counters before a
// crash-recovery attempt — but, unlike ResetClocks, neither advances the
// observability epoch nor clears the network volume counters: the lost
// attempt's traffic stays in the iteration totals (those bytes really
// crossed the modelled network) and its spans stay on the timeline.
// Recovery then restores each clock from the checkpoint via
// Proc.RestoreClock.
func (w *World) PrepareRecovery() {
	for _, p := range w.procs {
		p.clock = 0
		p.commNs = 0
		p.sentBytes = 0
	}
}

// SharedWords returns (allocating on first use) a word slice shared by
// all ranks that request the same name. The BFS uses per-node names so
// ranks of one node share one in_queue, mirroring the paper's
// mmap-sharing. Callers synchronize access with node barriers.
func (w *World) SharedWords(name string, words int64) []uint64 {
	w.shmMu.Lock()
	defer w.shmMu.Unlock()
	if s, ok := w.shmRegions[name]; ok {
		if int64(len(s)) != words {
			panic(fmt.Sprintf("mpi: shared region %q size mismatch: have %d want %d", name, len(s), words))
		}
		return s
	}
	s := make([]uint64, words)
	w.shmRegions[name] = s
	return s
}

// DropShared removes a shared region so a later phase can re-create it
// with a different size.
func (w *World) DropShared(name string) {
	w.shmMu.Lock()
	defer w.shmMu.Unlock()
	delete(w.shmRegions, name)
}
