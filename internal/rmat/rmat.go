// Package rmat generates scale-free graphs with the R-MAT recursive
// matrix model of Chakrabarti, Zhan and Faloutsos, using the Graph500
// parameters (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) and edgefactor 16.
//
// Edges are generated independently by index: EdgeAt(i) derives a private
// PRNG stream from (seed, i), so any rank of a distributed job can
// generate any slice of the edge list without coordination — mirroring
// the structure of the Graph500 reference generator. Vertex labels are
// scrambled with a seeded bijective permutation so that vertex id carries
// no locality information (the reference code's vertex scrambling).
package rmat

import (
	"fmt"

	"numabfs/internal/xrand"
)

// Params describes an R-MAT instance.
type Params struct {
	Scale      int     // log2 of the number of vertices
	EdgeFactor int64   // edges per vertex (Graph500: 16)
	A, B, C, D float64 // quadrant probabilities, summing to 1
	Seed       uint64
	// Scramble applies a uniform bijective relabelling to vertex ids, as
	// the Graph500 specification requires (default). Disabling it keeps
	// R-MAT's natural ordering, in which popular vertices cluster at low
	// ids — useful for studying how clustered in_queue zeros interact
	// with the summary granularity, at the price of heavy partition
	// imbalance.
	Scramble bool
}

// Graph500 returns the standard Graph500 R-MAT parameters at the given
// scale, with spec-conforming vertex scrambling.
func Graph500(scale int) Params {
	return Params{
		Scale:      scale,
		EdgeFactor: 16,
		A:          0.57,
		B:          0.19,
		C:          0.19,
		D:          0.05,
		Seed:       20120924, // CLUSTER 2012 conference date
		Scramble:   true,
	}
}

// WithScramble returns a copy of p with vertex scrambling set to on.
func (p Params) WithScramble(on bool) Params {
	p.Scramble = on
	return p
}

// WithSeed returns a copy of p with the given seed.
func (p Params) WithSeed(seed uint64) Params {
	p.Seed = seed
	return p
}

// NumVertices returns 2^Scale.
func (p Params) NumVertices() int64 { return 1 << uint(p.Scale) }

// NumEdges returns EdgeFactor * 2^Scale.
func (p Params) NumEdges() int64 { return p.EdgeFactor << uint(p.Scale) }

// Validate reports a parameter error, or nil.
func (p Params) Validate() error {
	if p.Scale < 1 || p.Scale > 40 {
		return fmt.Errorf("rmat: scale %d out of range [1, 40]", p.Scale)
	}
	if p.EdgeFactor < 1 {
		return fmt.Errorf("rmat: edge factor %d < 1", p.EdgeFactor)
	}
	sum := p.A + p.B + p.C + p.D
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("rmat: quadrant probabilities sum to %g, want 1", sum)
	}
	if p.A < 0 || p.B < 0 || p.C < 0 || p.D < 0 {
		return fmt.Errorf("rmat: negative quadrant probability")
	}
	return nil
}

// EdgeAt returns the endpoints of edge i (0 <= i < NumEdges), after
// vertex scrambling. Self-loops are possible, as in the reference
// generator; graph construction drops them.
func (p Params) EdgeAt(i int64) (u, v int64) {
	// A private stream per edge keeps generation order-independent.
	rng := xrand.NewXoshiro256(mix(p.Seed, uint64(i)))
	ab := p.A + p.B
	acNorm := p.C / (p.C + p.D)
	aNorm := p.A / ab
	for bit := p.Scale - 1; bit >= 0; bit-- {
		// Noise on the quadrant probabilities, as in the Graph500
		// reference, prevents exact self-similarity artifacts.
		f1 := 0.95 + 0.1*rng.Float64()
		f2 := 0.95 + 0.1*rng.Float64()
		r := rng.Float64()
		if r > ab*f1/(ab*f1+(1-ab)) {
			u |= 1 << uint(bit)
			if rng.Float64() > acNorm*f2/(acNorm*f2+(1-acNorm)) {
				v |= 1 << uint(bit)
			}
		} else if rng.Float64() > aNorm*f2/(aNorm*f2+(1-aNorm)) {
			v |= 1 << uint(bit)
		}
	}
	if p.Scramble {
		return p.ScrambleVertex(u), p.ScrambleVertex(v)
	}
	return u, v
}

// Edges appends edges [lo, hi) to dst (as endpoint pairs) and returns it.
func (p Params) Edges(dst []int64, lo, hi int64) []int64 {
	for i := lo; i < hi; i++ {
		u, v := p.EdgeAt(i)
		dst = append(dst, u, v)
	}
	return dst
}

// ScrambleVertex applies a seeded bijection on [0, 2^Scale): two rounds
// of multiply-by-odd and xorshift, both invertible modulo a power of two.
func (p Params) ScrambleVertex(v int64) int64 {
	mask := uint64(p.NumVertices() - 1)
	x := uint64(v) & mask
	k1 := (mix(p.Seed, 0xa5a5a5a5) | 1) // odd multiplier
	k2 := (mix(p.Seed, 0x5a5a5a5a) | 1)
	half := uint(p.Scale+1) / 2
	x = (x * k1) & mask
	x ^= (x >> half)
	x = (x * k2) & mask
	x ^= (x >> half)
	return int64(x & mask)
}

// mix combines a seed and an index into a well-distributed 64-bit value.
func mix(seed, i uint64) uint64 {
	s := xrand.NewSplitMix64(seed ^ (i * 0x9e3779b97f4a7c15))
	return s.Uint64()
}

// Roots returns n distinct BFS roots that have at least one incident
// edge, chosen deterministically from the seed — the Graph500 evaluation
// draws 64 such roots. hasEdge reports whether a vertex has neighbours.
func (p Params) Roots(n int, hasEdge func(v int64) bool) []int64 {
	rng := xrand.NewXoshiro256(mix(p.Seed, 0x0072007))
	seen := make(map[int64]bool, n)
	roots := make([]int64, 0, n)
	nv := uint64(p.NumVertices())
	// R-MAT graphs have many isolated vertices; bound the rejection
	// sampling so a pathological hasEdge cannot spin forever.
	for attempts := uint64(0); len(roots) < n; attempts++ {
		if attempts > 256*nv {
			panic(fmt.Sprintf("rmat: could not find %d rooted vertices (graph too sparse?)", n))
		}
		v := int64(rng.Uint64n(nv))
		if seen[v] || !hasEdge(v) {
			continue
		}
		seen[v] = true
		roots = append(roots, v)
	}
	return roots
}
