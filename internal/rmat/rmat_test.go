package rmat

import (
	"testing"
	"testing/quick"
)

func TestGraph500Params(t *testing.T) {
	p := Graph500(20)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumVertices() != 1<<20 {
		t.Fatalf("NumVertices = %d", p.NumVertices())
	}
	if p.NumEdges() != 16<<20 {
		t.Fatalf("NumEdges = %d", p.NumEdges())
	}
	if p.A != 0.57 || p.B != 0.19 || p.C != 0.19 || p.D != 0.05 {
		t.Fatalf("wrong quadrant probabilities: %+v", p)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{Scale: 0, EdgeFactor: 16, A: 0.57, B: 0.19, C: 0.19, D: 0.05},
		{Scale: 41, EdgeFactor: 16, A: 0.57, B: 0.19, C: 0.19, D: 0.05},
		{Scale: 10, EdgeFactor: 0, A: 0.57, B: 0.19, C: 0.19, D: 0.05},
		{Scale: 10, EdgeFactor: 16, A: 0.9, B: 0.19, C: 0.19, D: 0.05},
		{Scale: 10, EdgeFactor: 16, A: -0.1, B: 0.5, C: 0.5, D: 0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestEdgeAtDeterministicAndInRange(t *testing.T) {
	p := Graph500(12)
	n := p.NumVertices()
	for i := int64(0); i < 1000; i++ {
		u1, v1 := p.EdgeAt(i)
		u2, v2 := p.EdgeAt(i)
		if u1 != u2 || v1 != v2 {
			t.Fatalf("edge %d not deterministic", i)
		}
		if u1 < 0 || u1 >= n || v1 < 0 || v1 >= n {
			t.Fatalf("edge %d = (%d,%d) out of range", i, u1, v1)
		}
	}
}

func TestEdgesOrderIndependent(t *testing.T) {
	// Generating [0,100) in one call equals two disjoint slices — the
	// property distributed generation relies on.
	p := Graph500(10)
	all := p.Edges(nil, 0, 100)
	lo := p.Edges(nil, 0, 37)
	hi := p.Edges(nil, 37, 100)
	both := append(lo, hi...)
	if len(all) != len(both) {
		t.Fatalf("length mismatch: %d vs %d", len(all), len(both))
	}
	for i := range all {
		if all[i] != both[i] {
			t.Fatalf("edge stream differs at %d", i)
		}
	}
}

func TestScrambleIsBijection(t *testing.T) {
	p := Graph500(10)
	n := p.NumVertices()
	seen := make([]bool, n)
	for v := int64(0); v < n; v++ {
		s := p.ScrambleVertex(v)
		if s < 0 || s >= n {
			t.Fatalf("Scramble(%d) = %d out of range", v, s)
		}
		if seen[s] {
			t.Fatalf("ScrambleVertex collision at %d", s)
		}
		seen[s] = true
	}
}

func TestScrambleBijectionProperty(t *testing.T) {
	f := func(seed uint64, scaleSmall uint8) bool {
		scale := int(scaleSmall%8) + 4 // 4..11
		p := Graph500(scale).WithSeed(seed)
		n := p.NumVertices()
		seen := make(map[int64]bool, n)
		for v := int64(0); v < n; v++ {
			s := p.ScrambleVertex(v)
			if s < 0 || s >= n || seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSkewedDegreeDistribution(t *testing.T) {
	// R-MAT graphs are scale-free: the maximum vertex in-degree must far
	// exceed the average.
	p := Graph500(12)
	deg := make([]int64, p.NumVertices())
	for i := int64(0); i < p.NumEdges(); i++ {
		u, v := p.EdgeAt(i)
		deg[u]++
		deg[v]++
	}
	var max, sum int64
	for _, d := range deg {
		sum += d
		if d > max {
			max = d
		}
	}
	avg := float64(sum) / float64(len(deg))
	if float64(max) < 10*avg {
		t.Fatalf("max degree %d not >> avg %.1f: not scale-free", max, avg)
	}
}

func TestRootsDistinctWithEdges(t *testing.T) {
	p := Graph500(10)
	hasEdge := func(v int64) bool { return v%3 != 0 }
	roots := p.Roots(16, hasEdge)
	if len(roots) != 16 {
		t.Fatalf("got %d roots", len(roots))
	}
	seen := make(map[int64]bool)
	for _, r := range roots {
		if seen[r] {
			t.Fatalf("duplicate root %d", r)
		}
		if !hasEdge(r) {
			t.Fatalf("root %d has no edges", r)
		}
		seen[r] = true
	}
}

func TestDifferentSeedsDifferentGraphs(t *testing.T) {
	a := Graph500(10)
	b := Graph500(10).WithSeed(999)
	same := true
	for i := int64(0); i < 64; i++ {
		ua, va := a.EdgeAt(i)
		ub, vb := b.EdgeAt(i)
		if ua != ub || va != vb {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the same edges")
	}
}
