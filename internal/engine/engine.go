// Package engine chooses between the 1-D (internal/bfs) and 2-D
// Buluç–Madduri (internal/bfs2d) BFS engines for a given machine and
// problem size, using an analytic cost model built from the same
// primitives the simulator itself prices phases with: machine.PhaseTime
// for computation and simnet.TransferTime for communication.
//
// The model replays the canonical Graph500 R-MAT level structure at the
// requested scale (the hybrid direction schedule is deterministic for
// the generator, so the per-level frontier and edge masses are a
// function of scale alone — they are tabulated below from instrumented
// runs) and prices the dominant phases of both engines level by level,
// with the same access shapes the engines charge:
//
//   - 1-D: the bottom-up scan probes every unvisited owned vertex's
//     adjacency against a full-length in_queue bitmap (n/8 bytes — the
//     poorly cached structure), and the frontier allgather spans all p
//     ranks. Its bottom-up allgather is overlapped with the scan, so
//     communication is dominated by the top-down/switch levels.
//   - 2-D: the per-level bitmaps shrink to the processor-column width
//     n/C (better cached, exchanged over the small row and column
//     groups), bought with column-width vertex scans — R times the
//     block — whose early-exit depth collapses when the previous
//     frontier is edge-light, the regime where the 2-D engine loses.
//
// Because both costs are computed from machine.Config, the choice
// shifts with the machine exactly as the simulated engines do.
package engine

import (
	"math"

	"numabfs/internal/bfs2d"
	"numabfs/internal/machine"
	"numabfs/internal/simnet"
)

// Choice is the selector's verdict for one (machine, scale, nodes)
// cell.
type Choice struct {
	// Use2D is true when the model predicts the 2-D engine wins.
	Use2D bool
	// Grid is the processor grid the 2-D engine would use
	// (bfs2d.DefaultGrid of the rank count).
	Grid bfs2d.Grid
	// Cost1DNs and Cost2DNs are the modelled per-root BFS times.
	Cost1DNs float64
	Cost2DNs float64
}

// Ratio returns Cost2DNs / Cost1DNs: < 1 means the 2-D engine is
// predicted faster.
func (c Choice) Ratio() float64 { return c.Cost2DNs / c.Cost1DNs }

// level is one entry of a frontier profile: the frontier and examined
// edge mass as fractions of n (nf, mf), and whether the hybrid
// schedule runs it bottom-up.
type level struct {
	nf, mf   float64
	bottomUp bool
}

// profiles tabulates the hybrid level structure of the Graph500 R-MAT
// family by scale, from the 1-D engine's LevelStats (both engines
// produce the same schedule — the direction heuristic sees the same
// frontiers). The load-bearing features: below scale 16 the top-down
// phase hands over at a dense frontier (11–17% of n) and two bottom-up
// levels finish the peak; from scale 16 the hand-over happens earlier
// (2–4% of n) and a third, edge-light bottom-up level appears, whose
// deep scans punish the 2-D engine's column-width redundancy.
var profiles = map[int][]level{
	13: {{0.0007, 0.23, false}, {0.1697, 17.74, false}, {0.5958, 6.90, true}, {0.0250, 0.03, true}, {0, 0, false}},
	14: {{0.0004, 0.17, false}, {0.1126, 16.76, false}, {0.6171, 9.03, true}, {0.0372, 0.05, true}, {0, 0, false}},
	15: {{0.0004, 0.22, false}, {0.1406, 19.72, false}, {0.5705, 6.98, true}, {0.0273, 0.03, true}, {0, 0, false}},
	16: {{0.0285, 10.47, false}, {0.5797, 17.09, true}, {0.1056, 0.17, true}, {0.0006, 0, true}, {0, 0, false}},
	17: {{0.0099, 6.59, false}, {0.5085, 21.51, true}, {0.1703, 0.35, true}, {0.0013, 0, true}, {0, 0, false}},
	18: {{0.0429, 16.04, false}, {0.5569, 12.87, true}, {0.0643, 0.08, true}, {0.0003, 0, true}, {0, 0, false}},
	19: {{0.0239, 13.64, false}, {0.5302, 15.74, true}, {0.0858, 0.12, true}, {0.0004, 0, true}, {0, 0, false}},
}

// profileFor returns the level profile for a scale, clamped to the
// tabulated range (the structure drifts slowly and monotonically).
func profileFor(scale int) []level {
	if scale < 13 {
		scale = 13
	}
	if scale > 19 {
		scale = 19
	}
	return profiles[scale]
}

// Model constants: the stored-graph shape and the coverage scalars the
// profile averages away.
const (
	degree      = 27.0 // stored directed edges per vertex (symmetrized R-MAT, ef 16)
	isoDegree   = 1.5  // stored degree of never-reached vertices (R-MAT leaves)
	granularity = 64.0 // summary bits covered per summary probe (bitmap.Summary default)
	chunk       = 1024 // dynamic-schedule chunk (omp.DefaultChunk)
	skew        = 1.1  // residual degree-skew imbalance on a balanced region
)

// Calibration. The model prices each engine's dominant phases only; two
// residual effects shift the absolute level without changing the shape:
// the 1-D engine overlaps more work across its priced phases than the
// sum-of-phases model credits (its bottom-up allgather hides under the
// scan, and the switch/steady levels share warmed structures), and the
// 2-D engine pays per-level stall barriers and extra collective rounds
// (two allgathers, a fold exchange and three allreduces per level, each
// synchronizing on the slowest rank) that the bandwidth-only comm terms
// above do not see. Both scalars were fitted once against instrumented
// runs of both engines over the base-scale 12-16 x 2-8-node lattice and
// hold within ~20% across it; the ranking power of the model comes from
// the priced physics, which these constants only re-level.
const (
	cal1D = 0.65
	cal2D = 1.40
)

// Select predicts whether the 1-D or the 2-D engine completes a BFS
// root faster on cfg at the given graph scale and node count, assuming
// the paper's recommended ppn=8 bind-to-socket placement, the hybrid
// direction policy, and compressed wire formats on both engines.
func Select(cfg machine.Config, scale, nodes int) Choice {
	cfg.Nodes = nodes
	np := nodes * cfg.SocketsPerNode
	grid := bfs2d.DefaultGrid(np)
	m := model{
		cfg: cfg,
		pl:  machine.PlacementFor(cfg, machine.PPN8Bind),
		net: simnet.New(cfg),
		n:   float64(int64(1) << scale),
		np:  float64(np),
		lvs: profileFor(scale),
	}
	c1, c2 := m.cost1D(), m.cost2D(grid)
	return Choice{Use2D: c2 < c1, Grid: grid, Cost1DNs: c1, Cost2DNs: c2}
}

type model struct {
	cfg machine.Config
	pl  machine.Placement
	net *simnet.Network
	n   float64
	np  float64
	lvs []level
}

// phase prices one computation phase of one rank: the aggregate load at
// full team parallelism, stretched by the dynamic-schedule imbalance a
// region of iters iterations exhibits. With fewer chunks than threads
// only chunks workers are busy — the dominant effect at small per-rank
// blocks, and the handicap the 2-D engine's R-times-wider scans escape.
func (m model) phase(load machine.PhaseLoad, iters float64) float64 {
	t := float64(m.pl.ThreadsPerProc)
	chunks := math.Ceil(iters / chunk)
	imb := skew
	if chunks >= 1 && chunks < t {
		imb = t / chunks
	}
	return m.cfg.PhaseTime(load, m.pl.ThreadsPerProc, m.pl.SocketsPerProc, m.pl.BWShare) * imb
}

// step prices one point-to-point transfer; inter selects the IB path
// over the intra-node shared-memory path.
func (m model) step(bytes float64, inter bool) float64 {
	dst := 0
	if inter {
		dst = 1
	}
	return m.net.TransferTime(int64(bytes), 0, dst, 1)
}

// allgather prices a ring allgather over g ranks assembling total
// bytes: g-1 pipelined steps of the per-rank share, paced by the
// slowest link in the ring.
func (m model) allgather(g int, total float64, inter bool) float64 {
	if g <= 1 {
		return 0
	}
	return float64(g-1) * m.step(total/float64(g), inter)
}

// alltoallv prices a pairwise exchange over g ranks where each rank
// ships perRank bytes split over its g-1 peers.
func (m model) alltoallv(g int, perRank float64, inter bool) float64 {
	if g <= 1 {
		return 0
	}
	return float64(g-1) * m.step(perRank/float64(g-1), inter)
}

// allreduce prices a recursive-doubling scalar allreduce over g ranks.
func (m model) allreduce(g int) float64 {
	if g <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(g))) * m.step(8, true)
}

// wireBitmap returns the wire size of a bitmap spanning span bits with
// set bits set: the codec ships the cheaper of the plain words and the
// set-bit list.
func wireBitmap(span, set float64) float64 {
	return math.Min(span/8, set*8+16)
}

// scanDepth returns the expected adjacency entries examined per
// unvisited vertex by a bottom-up scan over rows of rowLen entries,
// when each entry hits the previous frontier with probability q
// (truncated-geometric early exit: dense frontiers stop the scan after
// a couple of entries, edge-light ones force full rows — the regime
// separating the engines).
func scanDepth(rowLen, q float64) float64 {
	if q <= 0 {
		return rowLen
	}
	if q >= 1 {
		return 1
	}
	return (1 - math.Pow(1-q, rowLen)) / q
}

// coverage returns the fraction of summary probes the coarse bitmap
// fails to prune when the summarized frontier has the given bit
// density (a summary bit covers `granularity` base bits).
func coverage(density float64) float64 {
	if density <= 0 {
		return 0
	}
	if density >= 1 {
		return 1
	}
	return 1 - math.Pow(1-density, granularity)
}

// cost1D prices the 1-D engine (hybrid, compressed overlapped
// allgather): each rank owns an n/p block; bottom-up scans probe the
// full-length in_queue; the bottom-up allgather is overlapped with the
// scan, so the exposed communication is the top-down frontier
// exchange, the switch conversion, and the per-level allreduces.
func (m model) cost1D() float64 {
	b := m.n / m.np
	np := int(m.np)
	shared := machine.NodeShared
	unreach := m.unreached()
	var total float64
	prevNF := 1 / m.n
	prevMF := degree / m.n
	unvis := 1.0
	for _, lv := range m.lvs {
		var comp machine.PhaseLoad
		var comm float64
		var iters float64
		if lv.bottomUp {
			// Unvisited vertices still reachable scan until the frontier
			// hit; the never-reached remainder are R-MAT leaves with
			// short rows.
			q := prevMF / degree
			edges := (unvis-unreach)*b*scanDepth(degree, q) + unreach*b*isoDegree
			checks := edges * coverage(prevNF)
			comp = machine.PhaseLoad{
				Random: []machine.Access{
					{Count: int64(edges), StructBytes: int64(m.n / 512), Loc: shared},
					{Count: int64(checks), StructBytes: int64(m.n / 8), Loc: shared},
					{Count: int64(lv.nf * m.n / m.np), StructBytes: int64(b * 8), Loc: m.pl.PrivateLoc},
				},
				SeqBytes: int64(b*8 + edges*8),
				SeqLoc:   m.pl.GraphLoc,
				CPUOps:   int64(edges*2 + b),
			}
			iters = b
			// The frontier allgather overlaps the scan; the exposed cost
			// is the summary exchange and the two scalar allreduces.
			comm = m.allgather(np, m.n/512, true) + 2*m.allreduce(np)
		} else {
			// The level expands the previous frontier (prevMF is its edge
			// mass); nearly every edge is routed to its owner as a
			// 16-byte pair and re-probed against the parent array there.
			edges := prevMF * m.n / m.np
			comp = machine.PhaseLoad{
				Random: []machine.Access{
					{Count: int64(prevNF * m.n / m.np), StructBytes: int64(degree * m.n * 12 / m.np), Loc: m.pl.GraphLoc},
					{Count: int64(edges), StructBytes: int64(b * 8), Loc: m.pl.PrivateLoc},
				},
				SeqBytes: int64(edges * 24),
				SeqLoc:   m.pl.GraphLoc,
				CPUOps:   int64(edges * 5),
			}
			iters = edges
			comm = m.allgather(np, lv.nf*m.n*8, true) + m.alltoallv(np, edges*16, true) + m.allreduce(np)
		}
		total += m.phase(comp, iters) + comm
		prevNF, prevMF, unvis = lv.nf, lv.mf, unvis-lv.nf
	}
	return total * cal1D
}

// unreached returns the fraction of vertices the traversal never
// visits (outside the root's component — R-MAT isolates and leaves),
// which keeps appearing in every bottom-up scan.
func (m model) unreached() float64 {
	reach := 0.0
	for _, lv := range m.lvs {
		reach += lv.nf
	}
	if reach > 1 {
		reach = 1
	}
	return 1 - reach
}

// cost2D prices the 2-D engine (hybrid, compressed fold): per-level
// bitmaps shrink to the column width n/C and move over the small row
// and column groups (column groups are consecutive ranks — shared
// memory at ppn=8; row groups stride R ranks and cross nodes), paid
// for with column-width scans R times the block and a fold exchange
// every level.
func (m model) cost2D(grid bfs2d.Grid) float64 {
	r, c := float64(grid.R), float64(grid.C)
	w := m.n / c
	b := m.n / m.np
	np := int(m.np)
	colInter := grid.R > m.cfg.SocketsPerNode
	unreach := m.unreached()
	var total float64
	prevNF := 1 / m.n
	prevMF := degree / m.n
	unvis := 1.0
	for _, lv := range m.lvs {
		var comp machine.PhaseLoad
		var comm float64
		var iters float64
		pairs := lv.nf * m.n / m.np
		if lv.bottomUp {
			// The column-width scan sees R times the block's vertices,
			// each with a 1/R slice of its row.
			q := prevMF / degree
			edges := (unvis-unreach)*w*scanDepth(degree/r, q) + unreach*w*isoDegree/r
			checks := edges * coverage(prevNF)
			comp = machine.PhaseLoad{
				Random: []machine.Access{
					{Count: int64(edges), StructBytes: int64(w / 512), Loc: m.pl.PrivateLoc},
					{Count: int64(checks), StructBytes: int64(w / 8), Loc: m.pl.PrivateLoc},
					{Count: int64(pairs), StructBytes: int64(b * 8), Loc: m.pl.PrivateLoc},
				},
				SeqBytes: int64(w/8 + edges*8 + pairs*16),
				SeqLoc:   m.pl.GraphLoc,
				CPUOps:   int64(edges*2 + w),
			}
			iters = w
			comm = m.allgather(grid.R, wireBitmap(w, lv.nf*m.n/c), colInter) +
				m.allgather(grid.C, wireBitmap(m.n/r, lv.nf*m.n/r), true) +
				m.alltoallv(grid.R, pairs*16, colInter) +
				3*m.allreduce(np)
		} else {
			// The column scans the expanded previous frontier (R times
			// the 1-D queue length), probes the dedup stamps once per
			// edge, and folds roughly half the edges (post-dedup) as
			// pairs along the grid row.
			edges := prevMF * m.n / m.np
			fold := 0.5 * edges
			comp = machine.PhaseLoad{
				Random: []machine.Access{
					{Count: int64(prevNF * m.n / c), StructBytes: int64(degree * m.n * 12 / m.np), Loc: m.pl.GraphLoc},
					{Count: int64(edges), StructBytes: int64(w * 8), Loc: m.pl.PrivateLoc},
					{Count: int64(fold), StructBytes: int64(b * 8), Loc: m.pl.PrivateLoc},
				},
				SeqBytes: int64(edges*8 + fold*32),
				SeqLoc:   m.pl.GraphLoc,
				CPUOps:   int64(edges*3 + fold*2),
			}
			iters = edges
			comm = m.allgather(grid.R, prevNF*m.n/c*8, colInter) +
				m.alltoallv(grid.C, fold*16, true) +
				m.allreduce(np)
		}
		total += m.phase(comp, iters) + comm
		prevNF, prevMF, unvis = lv.nf, lv.mf, unvis-lv.nf
	}
	return total * cal2D
}
