package engine

import (
	"math"
	"testing"

	"numabfs/internal/machine"
)

// cellConfig reproduces the experiment suites' weak-scaling cell setup:
// scale = base + log2(nodes), cfg scaled down from the paper-scale
// problem the cell stands in for.
func cellConfig(base, nodes int) (machine.Config, int) {
	scale := base + int(math.Round(math.Log2(float64(nodes))))
	cfg := machine.Scaled(scale, 28+scale-base)
	cfg.Nodes = nodes
	cfg.WeakNode = -1
	return cfg, scale
}

// TestSelectMatchesMeasuredCrossover pins the selector's verdict on the
// cells the repo's own suites run, against the measured winner from
// instrumented runs of both engines (averaged over the suites' root
// sets): at base scale 12 (the CI smoke cell) the 1-D engine wins at
// every node count; at base scale 13 (the benchmark baseline) the 2-D
// engine takes over at 4 and 8 nodes; at base scale 16 the early hybrid
// switch point hands the ladder back to 1-D everywhere.
func TestSelectMatchesMeasuredCrossover(t *testing.T) {
	cases := []struct {
		base, nodes int
		want2D      bool
	}{
		{12, 2, false}, {12, 4, false}, {12, 8, false},
		{13, 2, false}, {13, 4, true}, {13, 8, true},
		{16, 2, false}, {16, 4, false}, {16, 8, false},
	}
	for _, c := range cases {
		cfg, scale := cellConfig(c.base, c.nodes)
		ch := Select(cfg, scale, c.nodes)
		if ch.Use2D != c.want2D {
			t.Errorf("base %d nodes %d (scale %d): Use2D=%v (ratio %.3f), want %v",
				c.base, c.nodes, scale, ch.Use2D, ch.Ratio(), c.want2D)
		}
	}
}

// TestSelectInvariants: the verdict must be internally consistent and
// the costs finite and positive for every cell in the modelled range,
// including scales outside the tabulated profiles (clamped).
func TestSelectInvariants(t *testing.T) {
	for base := 11; base <= 20; base++ {
		for _, nodes := range []int{2, 4, 8, 16} {
			cfg, scale := cellConfig(base, nodes)
			ch := Select(cfg, scale, nodes)
			if !(ch.Cost1DNs > 0) || !(ch.Cost2DNs > 0) ||
				math.IsInf(ch.Cost1DNs, 0) || math.IsInf(ch.Cost2DNs, 0) ||
				math.IsNaN(ch.Cost1DNs) || math.IsNaN(ch.Cost2DNs) {
				t.Fatalf("base %d nodes %d: degenerate costs %+v", base, nodes, ch)
			}
			if ch.Use2D != (ch.Cost2DNs < ch.Cost1DNs) {
				t.Fatalf("base %d nodes %d: verdict disagrees with costs: %+v", base, nodes, ch)
			}
			if got := ch.Grid.R * ch.Grid.C; got != nodes*cfg.SocketsPerNode {
				t.Fatalf("base %d nodes %d: grid %dx%d does not cover %d ranks",
					base, nodes, ch.Grid.R, ch.Grid.C, nodes*cfg.SocketsPerNode)
			}
		}
	}
}

// TestSelectDeterministic: the model is a pure function of its inputs.
func TestSelectDeterministic(t *testing.T) {
	cfg, scale := cellConfig(13, 4)
	a := Select(cfg, scale, 4)
	b := Select(cfg, scale, 4)
	if a != b {
		t.Fatalf("Select not deterministic: %+v vs %+v", a, b)
	}
}
