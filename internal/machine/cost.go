package machine

import "fmt"

// Locality describes where a data structure's backing memory lives
// relative to the cores that access it. It is the variable the paper's
// NUMA experiments turn: binding one rank per socket makes the graph
// Local; one interleaved rank per node makes it Interleaved; an unbound
// run first-touches everything on one socket (SingleSocket).
type Locality int

const (
	// Local: the structure is in the DRAM attached to the accessing
	// socket (ppn=8 bind-to-socket).
	Local Locality = iota
	// Remote: the structure is in another socket's DRAM.
	Remote
	// Interleaved: pages are spread round-robin over all sockets of the
	// node (numactl --interleave=all); 1/S of accesses are local.
	Interleaved
	// SingleSocket: the whole structure was first-touched on one socket
	// (the "noflag" default); all sockets' traffic converges there.
	SingleSocket
	// NodeShared: one copy per node, mmap-shared by all ranks of the node
	// (the paper's Section III.A optimization). Pages are effectively
	// interleaved; the combined L3 of all sockets caches it and hot lines
	// are often found in a peer socket's cache.
	NodeShared
)

// String implements fmt.Stringer.
func (l Locality) String() string {
	switch l {
	case Local:
		return "local"
	case Remote:
		return "remote"
	case Interleaved:
		return "interleaved"
	case SingleSocket:
		return "single-socket"
	case NodeShared:
		return "node-shared"
	default:
		return fmt.Sprintf("Locality(%d)", int(l))
	}
}

// Access describes a batch of random (latency-bound) accesses to one
// structure during a phase: how many accesses, how large the structure is
// (which sets the modelled cache hit rate), and where it lives.
type Access struct {
	Count       int64
	StructBytes int64
	Loc         Locality
}

// PhaseLoad aggregates the work of one computation phase of one rank.
// Random accesses dominate BFS (bitmap checks, adjacency jumps); SeqBytes
// covers streaming reads such as CSR adjacency scans; CPUOps covers the
// branchy bookkeeping.
type PhaseLoad struct {
	Random   []Access
	SeqBytes int64
	SeqLoc   Locality
	CPUOps   int64
}

// Add accumulates o into l.
func (l *PhaseLoad) Add(o PhaseLoad) {
	l.Random = append(l.Random, o.Random...)
	l.SeqBytes += o.SeqBytes
	l.CPUOps += o.CPUOps
	if o.SeqBytes > 0 {
		l.SeqLoc = o.SeqLoc
	}
}

// missLatency returns the DRAM latency for loc.
func (c Config) missLatency(loc Locality) float64 {
	s := float64(c.SocketsPerNode)
	switch loc {
	case Local:
		return c.LocalMemNs
	case Remote:
		return c.RemoteMemNs
	case Interleaved, NodeShared:
		return (c.LocalMemNs + (s-1)*c.RemoteMemNs) / s
	case SingleSocket:
		// 1/S of sockets see it local; queueing at the one memory
		// controller is captured by the bandwidth floor, not here.
		return (c.LocalMemNs + (s-1)*c.RemoteMemNs) / s
	default:
		return c.RemoteMemNs
	}
}

// spansNode reports whether accesses to loc come from cores across the
// whole node (an interleaved or unbound process, or a node-shared
// structure) rather than from one bound socket.
func (c Config) spansNode(loc Locality) bool {
	return loc != Local && loc != Remote
}

// hitLatency returns the average cache-hit latency. For a structure
// accessed from all sockets, read-mostly hot lines replicate into every
// socket's L3 (MESI shared state), so the portion of the structure that
// fits one L3 hits locally; the rest is found in a peer socket's cache —
// still faster than local DRAM (Molka et al., the paper's argument (d)
// for sharing in_queue).
func (c Config) hitLatency(loc Locality, structBytes int64) float64 {
	if !c.spansNode(loc) {
		return c.L3LatencyNs
	}
	res := c.CacheResidency
	if res <= 0 || res > 1 {
		res = 1
	}
	localBytes := float64(c.L3Bytes) * res
	localFrac := 1.0
	if float64(structBytes) > localBytes {
		localFrac = localBytes / float64(structBytes)
	}
	return localFrac*c.L3LatencyNs + (1-localFrac)*c.RemoteCacheNs
}

// cacheCapacity returns the effective cache capacity available to a
// structure: one socket's L3 for a bound rank's private data, the whole
// node's L3s for anything accessed from all sockets (the paper's
// argument (b): sharing one in_queue enlarges its usable cache) — in
// both cases reduced to the CacheResidency share a single hot structure
// can defend against the other streams polluting the cache.
func (c Config) cacheCapacity(loc Locality) int64 {
	cap := c.L3Bytes
	if c.spansNode(loc) {
		cap *= int64(c.SocketsPerNode)
	}
	res := c.CacheResidency
	if res <= 0 || res > 1 {
		res = 1
	}
	return int64(float64(cap) * res)
}

// HitRate returns the modelled cache hit rate for random accesses to a
// structure of structBytes at loc: min(1, capacity/size).
func (c Config) HitRate(structBytes int64, loc Locality) float64 {
	if structBytes <= 0 {
		return 1
	}
	cap := c.cacheCapacity(loc)
	if cap >= structBytes {
		return 1
	}
	return float64(cap) / float64(structBytes)
}

// AccessLatency returns the average latency of one random access.
func (c Config) AccessLatency(a Access) float64 {
	h := c.HitRate(a.StructBytes, a.Loc)
	return h*c.hitLatency(a.Loc, a.StructBytes) + (1-h)*c.missLatency(a.Loc)
}

// SharedAccessLatency generalizes AccessLatency to a structure shared by
// `sockets` of the node's sockets (1 = private and local, SocketsPerNode
// = fully node-shared): capacity aggregates over the sharing group, the
// locally fitting fraction of hits stays in the local L3 while the rest
// lands in peer caches, and misses mix local and remote DRAM in the
// sharing group's proportions. This is the model behind the
// sharing-degree ablation — the paper's closing question of how far
// sharing should go.
func (c Config) SharedAccessLatency(structBytes int64, sockets int) float64 {
	if sockets < 1 {
		sockets = 1
	}
	if sockets > c.SocketsPerNode {
		sockets = c.SocketsPerNode
	}
	res := c.CacheResidency
	if res <= 0 || res > 1 {
		res = 1
	}
	cap := float64(c.L3Bytes) * float64(sockets) * res
	h := 1.0
	if float64(structBytes) > cap {
		h = cap / float64(structBytes)
	}
	localBytes := float64(c.L3Bytes) * res
	localFrac := 1.0
	if float64(structBytes) > localBytes {
		localFrac = localBytes / float64(structBytes)
	}
	hitLat := localFrac*c.L3LatencyNs + (1-localFrac)*c.RemoteCacheNs
	if sockets == 1 {
		hitLat = c.L3LatencyNs
	}
	s := float64(sockets)
	missLat := (c.LocalMemNs + (s-1)*c.RemoteMemNs) / s
	return h*hitLat + (1-h)*missLat
}

// qpiDerate returns the configured random-transfer efficiency of QPI.
func (c Config) qpiDerate() float64 {
	if c.RandomQPIDerate <= 0 || c.RandomQPIDerate > 1 {
		return 1
	}
	return c.RandomQPIDerate
}

// randomBandwidth returns the cache-line bandwidth available to random
// misses at loc for a rank spanning socketsUsed sockets. Traffic that
// crosses QPI is derated: random remote lines move far less efficiently
// than streams (directory snoops, page misses).
func (c Config) randomBandwidth(loc Locality, socketsUsed int) float64 {
	s := float64(c.SocketsPerNode)
	switch loc {
	case Local:
		return float64(socketsUsed) * c.MemBWPerSocket
	case SingleSocket:
		// All traffic converges on one memory controller.
		return c.MemBWPerSocket * c.qpiDerate()
	case Remote:
		return minf(c.QPIBW*c.qpiDerate(), c.MemBWPerSocket)
	case Interleaved, NodeShared:
		// All sockets' DRAM serves, but (s-1)/s of traffic crosses QPI;
		// the cross-section is half the links' aggregate, derated.
		mem := s * c.MemBWPerSocket
		qpi := s * c.QPIBW / 2 * c.qpiDerate()
		return minf(mem, qpi)
	default:
		return c.MemBWPerSocket
	}
}

// seqBandwidth returns the bandwidth for streaming (prefetchable)
// accesses, which cross QPI at full link efficiency.
func (c Config) seqBandwidth(loc Locality, socketsUsed int) float64 {
	s := float64(c.SocketsPerNode)
	switch loc {
	case Local:
		return float64(socketsUsed) * c.MemBWPerSocket
	case SingleSocket:
		return c.MemBWPerSocket
	case Remote:
		return minf(c.QPIBW, c.MemBWPerSocket)
	case Interleaved, NodeShared:
		return minf(s*c.MemBWPerSocket, s*c.QPIBW/2)
	default:
		return c.MemBWPerSocket
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// shareBandwidth scales a node-wide bandwidth domain by the fraction a
// single rank receives when several co-located ranks compete for it.
// Socket-local bandwidth (Local) is private to the bound rank and is not
// shared.
func (c Config) shareBandwidth(loc Locality, bw, bwShare float64) float64 {
	if loc == Local || bwShare <= 0 || bwShare >= 1 {
		return bw
	}
	return bw * bwShare
}

// PhaseTime returns the modelled wall time (ns) of a computation phase
// executed by `threads` cores spanning socketsUsed sockets, where the rank
// receives bwShare of any node-wide bandwidth domain it touches (1 for a
// rank that owns the node, 1/8 when eight unbound ranks compete). The
// phase is the max of a latency-limited term (each core sustains MLP
// outstanding misses) and a bandwidth-limited term (lines moved by misses
// plus streamed bytes over the available bandwidth), plus scalar CPU work.
func (c Config) PhaseTime(load PhaseLoad, threads, socketsUsed int, bwShare float64) float64 {
	if threads < 1 {
		threads = 1
	}
	if socketsUsed < 1 {
		socketsUsed = 1
	}
	var latency float64   // core-ns of memory stall
	var lineBytes float64 // DRAM bytes moved by misses
	bw := 0.0
	for _, a := range load.Random {
		if a.Count == 0 {
			continue
		}
		latency += float64(a.Count) * c.AccessLatency(a)
		miss := 1 - c.HitRate(a.StructBytes, a.Loc)
		lb := float64(a.Count) * miss * float64(c.CacheLineBytes)
		lineBytes += lb
		// The tightest domain in the traffic mix limits the phase.
		b := c.shareBandwidth(a.Loc, c.randomBandwidth(a.Loc, socketsUsed), bwShare)
		if bw == 0 || b < bw {
			bw = b
		}
	}
	seqBW := c.shareBandwidth(load.SeqLoc, c.seqBandwidth(load.SeqLoc, socketsUsed), bwShare)
	// Streaming reads use open-page bandwidth; no latency term.
	var seqTime float64
	if load.SeqBytes > 0 {
		seqTime = float64(load.SeqBytes) / seqBW
	}
	latTime := latency / (float64(threads) * c.MLP)
	var bwTime float64
	if lineBytes > 0 && bw > 0 {
		bwTime = lineBytes / bw
	}
	memTime := latTime
	if bwTime > memTime {
		memTime = bwTime
	}
	cpuTime := float64(load.CPUOps) * c.CPUOpNs / float64(threads)
	return memTime + seqTime + cpuTime
}
