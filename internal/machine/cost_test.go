package machine

import "testing"

func TestSeqBandwidthExceedsRandom(t *testing.T) {
	c := TableI()
	// Streaming transfers cross QPI at full link efficiency; random
	// lines are derated.
	for _, loc := range []Locality{Remote, Interleaved, NodeShared} {
		seq := c.seqBandwidth(loc, c.SocketsPerNode)
		rnd := c.randomBandwidth(loc, c.SocketsPerNode)
		if rnd >= seq {
			t.Errorf("%s: random bw %g not below streaming %g", loc, rnd, seq)
		}
	}
	// Local traffic is not derated.
	if c.randomBandwidth(Local, 1) != c.seqBandwidth(Local, 1) {
		t.Error("local random bandwidth should equal streaming")
	}
}

func TestShareBandwidthOnlyDividesNodeDomains(t *testing.T) {
	c := TableI()
	if got := c.shareBandwidth(Local, 100, 0.125); got != 100 {
		t.Errorf("local bandwidth shared: %g", got)
	}
	if got := c.shareBandwidth(Interleaved, 100, 0.125); got != 12.5 {
		t.Errorf("interleaved share = %g, want 12.5", got)
	}
	// Degenerate shares are ignored.
	if got := c.shareBandwidth(Interleaved, 100, 0); got != 100 {
		t.Errorf("zero share = %g", got)
	}
}

func TestMissLatencyOrdering(t *testing.T) {
	c := TableI()
	local := c.missLatency(Local)
	inter := c.missLatency(Interleaved)
	remote := c.missLatency(Remote)
	if !(local < inter && inter < remote) {
		t.Fatalf("miss latency ordering wrong: %g %g %g", local, inter, remote)
	}
	if c.missLatency(Interleaved) != c.missLatency(NodeShared) {
		t.Fatal("interleaved and node-shared DRAM latency should match")
	}
}

func TestHitLatencyReplication(t *testing.T) {
	c := TableI()
	// A structure fitting the residency share of one L3 hits locally
	// even when accessed node-wide (hot-line replication).
	small := int64(float64(c.L3Bytes) * c.CacheResidency / 2)
	if got := c.hitLatency(NodeShared, small); got != c.L3LatencyNs {
		t.Fatalf("small shared structure hit latency = %g, want local L3 %g", got, c.L3LatencyNs)
	}
	// A much larger one mostly hits peer caches.
	big := c.L3Bytes * 64
	got := c.hitLatency(NodeShared, big)
	if got <= c.L3LatencyNs || got > c.RemoteCacheNs {
		t.Fatalf("large shared structure hit latency = %g, want within (L3, remote-cache]", got)
	}
	// Bound ranks always hit their own L3.
	if c.hitLatency(Local, big) != c.L3LatencyNs {
		t.Fatal("bound rank hit latency must be local L3")
	}
}

func TestPhaseLoadAdd(t *testing.T) {
	a := PhaseLoad{
		Random:   []Access{{Count: 1, StructBytes: 10, Loc: Local}},
		SeqBytes: 5,
		CPUOps:   7,
	}
	b := PhaseLoad{
		Random:   []Access{{Count: 2, StructBytes: 20, Loc: Remote}},
		SeqBytes: 3,
		SeqLoc:   Remote,
		CPUOps:   1,
	}
	a.Add(b)
	if len(a.Random) != 2 || a.SeqBytes != 8 || a.CPUOps != 8 || a.SeqLoc != Remote {
		t.Fatalf("Add result: %+v", a)
	}
}

func TestPhaseTimeEmptyLoadIsFree(t *testing.T) {
	c := TableI()
	if got := c.PhaseTime(PhaseLoad{}, 8, 1, 1); got != 0 {
		t.Fatalf("empty phase costs %g", got)
	}
}
