package machine

import "fmt"

// Policy is one of the execution policies of Fig. 10: how many MPI ranks
// are spawned per node and how they (and their memory) are placed.
type Policy int

const (
	// PPN1NoFlag: one rank per node, no numactl/mpirun flags. All 64
	// threads run across the node, but the graph was first-touched on one
	// socket, so that socket's memory controller serves everything.
	PPN1NoFlag Policy = iota
	// PPN1Interleave: one rank per node with numactl --interleave=all;
	// the graph is spread over all sockets, 7/8 of accesses are remote.
	PPN1Interleave
	// PPN8NoFlag: one rank per socket but without binding; threads drift
	// across sockets, so accesses behave as interleaved and the eight
	// ranks compete for node-wide bandwidth.
	PPN8NoFlag
	// PPN8Bind: one rank per socket with --bind-to-socket --bysocket; the
	// paper's recommended mapping. Graph and private structures are local.
	PPN8Bind
)

// String implements fmt.Stringer using the paper's labels.
func (p Policy) String() string {
	switch p {
	case PPN1NoFlag:
		return "ppn=1.noflag"
	case PPN1Interleave:
		return "ppn=1.interleave"
	case PPN8NoFlag:
		return "ppn=8.noflag"
	case PPN8Bind:
		return "ppn=8.bind-to-socket"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Placement is the resolved execution geometry of a policy on a machine:
// how many ranks per node, how many modelled threads each runs, where the
// rank's structures live, and how node bandwidth is shared.
type Placement struct {
	Policy         Policy
	ProcsPerNode   int
	ThreadsPerProc int
	// GraphLoc is where a rank's share of the graph (CSR) lives.
	GraphLoc Locality
	// PrivateLoc is where the rank's private bitmaps (its own in_queue
	// copy, out_queue, parent array) live.
	PrivateLoc Locality
	// SocketsPerProc is the number of bandwidth domains a bound rank owns.
	SocketsPerProc int
	// BWShare is the fraction of node-wide bandwidth domains one rank
	// receives (1 when one rank owns the node; 1/ProcsPerNode when
	// unbound ranks compete).
	BWShare float64
	// Bound reports whether ranks are pinned to sockets.
	Bound bool
}

// PlacementFor resolves a policy on machine c.
func PlacementFor(c Config, p Policy) Placement {
	s := c.SocketsPerNode
	switch p {
	case PPN1NoFlag:
		return Placement{
			Policy: p, ProcsPerNode: 1, ThreadsPerProc: c.CoresPerNode(),
			GraphLoc: SingleSocket, PrivateLoc: SingleSocket,
			SocketsPerProc: s, BWShare: 1, Bound: false,
		}
	case PPN1Interleave:
		return Placement{
			Policy: p, ProcsPerNode: 1, ThreadsPerProc: c.CoresPerNode(),
			GraphLoc: Interleaved, PrivateLoc: Interleaved,
			SocketsPerProc: s, BWShare: 1, Bound: false,
		}
	case PPN8NoFlag:
		// Each rank's memory is first-touched on whatever socket its
		// allocating thread happened to run on, while its threads drift
		// across sockets: most accesses are remote over congested QPI,
		// and the drifting threads defeat cache replication.
		return Placement{
			Policy: p, ProcsPerNode: s, ThreadsPerProc: c.CoresPerSocket,
			GraphLoc: Remote, PrivateLoc: Remote,
			SocketsPerProc: s, BWShare: 1, Bound: false,
		}
	case PPN8Bind:
		return Placement{
			Policy: p, ProcsPerNode: s, ThreadsPerProc: c.CoresPerSocket,
			GraphLoc: Local, PrivateLoc: Local,
			SocketsPerProc: 1, BWShare: 1, Bound: true,
		}
	default:
		panic(fmt.Sprintf("machine: unknown policy %d", int(p)))
	}
}

// Procs returns the total number of ranks the placement spawns on c.
func (pl Placement) Procs(c Config) int { return c.Nodes * pl.ProcsPerNode }
