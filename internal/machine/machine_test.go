package machine

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableIValid(t *testing.T) {
	c := TableI()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.TotalCores() != 1024 {
		t.Fatalf("TotalCores = %d, want 1024 (the paper's thousand-core platform)", c.TotalCores())
	}
	if c.CoresPerNode() != 64 {
		t.Fatalf("CoresPerNode = %d", c.CoresPerNode())
	}
	if c.NodeIBBandwidth() != 10 {
		t.Fatalf("NodeIBBandwidth = %g GB/s, want 10 (2x 40Gb ports)", c.NodeIBBandwidth())
	}
	if !strings.Contains(c.Table1String(), "8 sockets") {
		t.Fatal("Table1String missing socket count")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.SocketsPerNode = 0 },
		func(c *Config) { c.CoresPerSocket = -1 },
		func(c *Config) { c.L3Bytes = 0 },
		func(c *Config) { c.MemBWPerSocket = 0 },
		func(c *Config) { c.LocalMemNs = -5 },
		func(c *Config) { c.MLP = 0 },
		func(c *Config) { c.IBPorts = 0 },
		// With a weak node set, its bandwidth factor must be a valid
		// fraction — rejected here, never silently clamped downstream.
		func(c *Config) { c.WeakNodeBWFactor = 0 },
		func(c *Config) { c.WeakNodeBWFactor = -0.5 },
		func(c *Config) { c.WeakNodeBWFactor = 1.5 },
	}
	for i, mod := range mods {
		c := TableI()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mod %d: expected validation error", i)
		}
	}
}

func TestStreamBandwidthCurve(t *testing.T) {
	c := TableI()
	// Fig. 4's shape: aggregate bandwidth rises with streams up to the
	// two-port peak; one stream reaches only about half.
	agg1 := 1 * c.StreamBandwidth(1)
	agg8 := 8 * c.StreamBandwidth(8)
	if agg8 != c.NodeIBBandwidth() {
		t.Fatalf("8 streams reach %g, want the %g peak", agg8, c.NodeIBBandwidth())
	}
	if agg1 > 0.6*agg8 {
		t.Fatalf("1 stream reaches %g of %g — should be about half", agg1, agg8)
	}
	prev := 0.0
	for k := 1; k <= 8; k++ {
		agg := float64(k) * c.StreamBandwidth(k)
		if agg < prev {
			t.Fatalf("aggregate bandwidth not monotone at %d streams", k)
		}
		prev = agg
	}
}

func TestScaledPreservesRatios(t *testing.T) {
	full := TableI()
	s := Scaled(16, 28)
	if want := full.L3Bytes >> 12; s.L3Bytes != want {
		t.Fatalf("Scaled L3 = %d, want %d", s.L3Bytes, want)
	}
	if s.LocalMemNs != full.LocalMemNs {
		t.Fatal("latencies must not scale")
	}
	// in_queue at the run scale relates to the scaled cache as the
	// paper-scale in_queue relates to the real cache.
	inqRun := int64(1) << 16 / 8
	inqPaper := int64(1) << 28 / 8
	rRun := float64(s.L3Bytes) / float64(inqRun)
	rPaper := float64(full.L3Bytes) / float64(inqPaper)
	if rRun/rPaper < 0.99 || rRun/rPaper > 1.01 {
		t.Fatalf("cache:in_queue ratio drifted: %g vs %g", rRun, rPaper)
	}
	// No shrink when running at the paper's scale.
	if same := Scaled(28, 28); same.L3Bytes != full.L3Bytes {
		t.Fatal("Scaled at equal scales must not shrink")
	}
}

func TestHitRateAndLatencyModel(t *testing.T) {
	c := TableI()
	// Tiny structure: fully cached.
	if h := c.HitRate(1024, Local); h != 1 {
		t.Fatalf("HitRate(small) = %g", h)
	}
	// Structure of twice the L3: the rank's residency share of 50%.
	if h, want := c.HitRate(2*c.L3Bytes, Local), c.CacheResidency/2; h < want*0.99 || h > want*1.01 {
		t.Fatalf("HitRate(2*L3, Local) = %g, want ~%g", h, want)
	}
	// Node-spanning access sees the aggregate (8x) cache, capped at 1.
	hSpan := c.HitRate(2*c.L3Bytes, Interleaved)
	hLocal := c.HitRate(2*c.L3Bytes, Local)
	if want := minf(1, 8*hLocal); hSpan < want*0.99 {
		t.Fatalf("aggregate cache missing: span %g vs local %g", hSpan, hLocal)
	}
	// Remote misses cost more than local ones.
	local := c.AccessLatency(Access{Count: 1, StructBytes: 1 << 30, Loc: Local})
	remote := c.AccessLatency(Access{Count: 1, StructBytes: 1 << 30, Loc: Remote})
	inter := c.AccessLatency(Access{Count: 1, StructBytes: 1 << 30, Loc: Interleaved})
	if !(local < inter && inter < remote) {
		t.Fatalf("latency ordering wrong: local %g, interleaved %g, remote %g", local, inter, remote)
	}
}

func TestPhaseTimeScalesWithThreads(t *testing.T) {
	c := TableI()
	load := PhaseLoad{
		Random: []Access{{Count: 1 << 20, StructBytes: 1 << 30, Loc: Local}},
		CPUOps: 1 << 20,
	}
	t1 := c.PhaseTime(load, 1, 1, 1)
	t8 := c.PhaseTime(load, 8, 1, 1)
	if t8 >= t1 {
		t.Fatalf("more threads not faster: %g vs %g", t8, t1)
	}
	// But the bandwidth floor caps the speedup eventually (the few
	// cache hits shave a little off the all-miss floor).
	t512 := c.PhaseTime(load, 512, 1, 1)
	if t512 < 0.9*float64(1<<20)*64/c.MemBWPerSocket {
		t.Fatalf("PhaseTime %g below the bandwidth floor", t512)
	}
}

func TestPhaseTimeNonNegativeProperty(t *testing.T) {
	c := TableI()
	f := func(count uint32, sizeKB uint16, threads uint8, locPick uint8) bool {
		loc := Locality(int(locPick) % 5)
		load := PhaseLoad{
			Random:   []Access{{Count: int64(count % 1e6), StructBytes: int64(sizeKB)*1024 + 1, Loc: loc}},
			SeqBytes: int64(count % 4096),
			SeqLoc:   loc,
			CPUOps:   int64(count % 1e5),
		}
		ns := c.PhaseTime(load, int(threads%64)+1, 1, 1)
		return ns >= 0 && !isNaN(ns)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func isNaN(x float64) bool { return x != x }

func TestPlacements(t *testing.T) {
	c := TableI()
	for _, p := range []Policy{PPN1NoFlag, PPN1Interleave, PPN8NoFlag, PPN8Bind} {
		pl := PlacementFor(c, p)
		if pl.ProcsPerNode*pl.ThreadsPerProc != c.CoresPerNode() {
			t.Errorf("%s: %d procs x %d threads != %d cores",
				p, pl.ProcsPerNode, pl.ThreadsPerProc, c.CoresPerNode())
		}
		if pl.Procs(c) != c.Nodes*pl.ProcsPerNode {
			t.Errorf("%s: Procs mismatch", p)
		}
	}
	bind := PlacementFor(c, PPN8Bind)
	if !bind.Bound || bind.GraphLoc != Local {
		t.Error("PPN8Bind must pin ranks with local graph")
	}
	il := PlacementFor(c, PPN1Interleave)
	if il.ProcsPerNode != 1 || il.GraphLoc != Interleaved {
		t.Error("PPN1Interleave geometry wrong")
	}
}

func TestPolicyStrings(t *testing.T) {
	if PPN8Bind.String() != "ppn=8.bind-to-socket" {
		t.Fatalf("PPN8Bind = %q", PPN8Bind.String())
	}
	if PPN1Interleave.String() != "ppn=1.interleave" {
		t.Fatalf("PPN1Interleave = %q", PPN1Interleave.String())
	}
	if Locality(99).String() == "" || Policy(99).String() == "" {
		t.Fatal("unknown values must still render")
	}
}

func TestWithNodes(t *testing.T) {
	c := TableI().WithNodes(4)
	if c.Nodes != 4 {
		t.Fatalf("WithNodes: %d", c.Nodes)
	}
}
