// Package machine models the NUMA cluster hardware of the paper's Table I:
// nodes of eight Intel Xeon X7550 sockets joined by QPI, each socket with
// eight cores, a shared 18 MB L3 and four populated DDR3 channels, and two
// 40 Gb/s InfiniBand ports per node.
//
// The repository runs the real hybrid-BFS algorithm on real R-MAT graphs,
// but time is *modelled*: computation phases are charged according to the
// memory accesses they perform and where the touched structures live
// (local socket, remote socket, interleaved, or shared across a node), and
// communication is charged by an alpha-beta model over this topology. The
// paper's results are ratios driven by exactly these parameters, so a
// calibrated model reproduces their shape without the 1,024-core testbed.
package machine

import (
	"fmt"
	"strings"
)

// Config describes one cluster configuration. Bandwidths are in bytes/ns
// (numerically equal to GB/s), latencies in ns, capacities in bytes.
type Config struct {
	// Topology.
	Nodes          int // cluster nodes (16 in the paper's testbed)
	SocketsPerNode int // CPU sockets per node (8)
	CoresPerSocket int // cores per socket, SMT disabled (8)

	// Per-socket memory hierarchy.
	L3Bytes        int64   // shared L3 capacity per socket
	CacheLineBytes int64   // cache line size
	L3LatencyNs    float64 // load-to-use latency of the local L3
	RemoteCacheNs  float64 // latency to a line cached in another socket's L3
	LocalMemNs     float64 // local DRAM latency (through Intel SMB)
	RemoteMemNs    float64 // DRAM on another socket via QPI (multi-hop avg)
	MemBWPerSocket float64 // sustainable DRAM bandwidth per socket
	QPIBW          float64 // one QPI link, per direction
	MLP            float64 // outstanding misses a core sustains
	// RandomQPIDerate is the efficiency of random cache-line transfers
	// crossing QPI relative to the links' streaming bandwidth: directory
	// snoops and open-page misses make random remote traffic far less
	// efficient than bulk copies.
	RandomQPIDerate float64
	// CacheResidency is the fraction of L3 one hot structure can
	// actually hold against pollution from the other streams (graph
	// adjacency, parent array) sharing the cache.
	CacheResidency float64

	// Node interconnect (intra-node MPI path through shared memory).
	ShmCopyBW        float64 // effective large-copy bandwidth between ranks of a node
	IntraNodeAlphaNs float64 // per-message overhead for intra-node MPI

	// Network.
	IBPorts          int     // InfiniBand ports per node
	IBPortBW         float64 // one port, per direction
	PerStreamBW      float64 // max bandwidth a single rank's stream can drive
	InterNodeAlphaNs float64 // per-message overhead for inter-node MPI

	// AllgatherRingThreshold is the library's algorithm switch point for
	// allgather (Thakur-Gropp): recursive doubling below it, ring at or
	// above it. The in_queue allgather is far above it at paper scales.
	AllgatherRingThreshold int64

	// Core.
	ClockGHz float64
	CPUOpNs  float64 // cost of a simple ALU/branch operation

	// WeakNode reproduces the testbed's one ill-performing node ("there
	// is one weak node in the 16 nodes, the communication performance of
	// which is weak ... due to unknown reason"). Transfers touching this
	// node run at WeakNodeBWFactor of normal bandwidth. -1 disables it.
	WeakNode         int
	WeakNodeBWFactor float64
}

// TableI returns the paper's node configuration (Table I) as a 16-node
// cluster model. Latency and bandwidth figures follow the paper's cited
// sources for Nehalem-EX class parts: local DRAM through the SMB is slow
// (~130 ns), a remote socket's cache is faster than local memory
// (Molka et al. [35]), and multi-hop QPI DRAM is roughly 2.6x local.
// The two IB ports give 10 GB/s per node, but a single rank's stream can
// only drive about half of it — the observation behind Fig. 4.
func TableI() Config {
	return Config{
		Nodes:          16,
		SocketsPerNode: 8,
		CoresPerSocket: 8,

		L3Bytes:         18 << 20,
		CacheLineBytes:  64,
		L3LatencyNs:     18,
		RemoteCacheNs:   110,
		LocalMemNs:      130,
		RemoteMemNs:     260,
		MemBWPerSocket:  17.1,
		QPIBW:           12.8,
		MLP:             4,
		RandomQPIDerate: 0.35,
		CacheResidency:  0.3,

		ShmCopyBW:        12.0,
		IntraNodeAlphaNs: 600,

		IBPorts:          2,
		IBPortBW:         5.0, // 40 Gb/s
		PerStreamBW:      2.6, // one rank's stream drives about one port (Fig. 4)
		InterNodeAlphaNs: 2000,

		AllgatherRingThreshold: 512 << 10,

		ClockGHz: 2.0,
		CPUOpNs:  0.5,

		WeakNode:         15,
		WeakNodeBWFactor: 0.8,
	}
}

// Scaled returns TableI adjusted to run a graph of runScale in place of
// the paper's experiment at paperScale (28 on one node up to 32 on
// sixteen, weak scaling). Structure sizes shrink by 2^(paperScale -
// runScale), so the per-socket cache shrinks by the same factor to keep
// the working-set : cache ratios (in_queue : L3 : summary) that drive
// the cache-locality results (Figs. 11 and 16). Per-message overheads,
// negligible against paper-scale phase times, shrink by the same factor
// so they stay negligible against the proportionally smaller phases.
// Communication bytes and edge counts scale linearly with |V|, so their
// ratios are preserved automatically and need no adjustment.
func Scaled(runScale, paperScale int) Config {
	c := TableI()
	if runScale < paperScale {
		shift := uint(paperScale - runScale)
		c.L3Bytes >>= shift
		if c.L3Bytes < 64 {
			c.L3Bytes = 64
		}
		f := 1 / float64(int64(1)<<shift)
		c.IntraNodeAlphaNs *= f
		c.InterNodeAlphaNs *= f
		// The algorithm switch point must shrink with the payloads, or a
		// scaled run would recursive-double a bitmap whose paper-scale
		// counterpart the library would ring.
		c.AllgatherRingThreshold >>= shift
		if c.AllgatherRingThreshold < 8 {
			c.AllgatherRingThreshold = 8
		}
	}
	return c
}

// WithNodes returns a copy of c using n nodes (for weak-scaling sweeps).
func (c Config) WithNodes(n int) Config {
	c.Nodes = n
	return c
}

// CoresPerNode returns the number of cores in one node.
func (c Config) CoresPerNode() int { return c.SocketsPerNode * c.CoresPerSocket }

// TotalCores returns the number of cores in the cluster.
func (c Config) TotalCores() int { return c.Nodes * c.CoresPerNode() }

// NodeIBBandwidth returns the aggregate InfiniBand bandwidth of one node.
func (c Config) NodeIBBandwidth() float64 { return float64(c.IBPorts) * c.IBPortBW }

// StreamBandwidth returns the per-stream inter-node bandwidth when k
// same-node ranks drive the NIC concurrently: the node total is
// min(k * PerStreamBW, NodeIBBandwidth), shared equally. This is the
// model behind Fig. 4 — one rank per node only reaches about half of the
// two-port peak, while eight concurrent ranks saturate it.
func (c Config) StreamBandwidth(k int) float64 {
	if k < 1 {
		k = 1
	}
	total := float64(k) * c.PerStreamBW
	if peak := c.NodeIBBandwidth(); total > peak {
		total = peak
	}
	return total / float64(k)
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("machine: Nodes = %d, need >= 1", c.Nodes)
	case c.SocketsPerNode < 1:
		return fmt.Errorf("machine: SocketsPerNode = %d, need >= 1", c.SocketsPerNode)
	case c.CoresPerSocket < 1:
		return fmt.Errorf("machine: CoresPerSocket = %d, need >= 1", c.CoresPerSocket)
	case c.L3Bytes <= 0:
		return fmt.Errorf("machine: L3Bytes = %d, need > 0", c.L3Bytes)
	case c.MemBWPerSocket <= 0 || c.QPIBW <= 0 || c.ShmCopyBW <= 0 ||
		c.IBPortBW <= 0 || c.PerStreamBW <= 0:
		return fmt.Errorf("machine: bandwidths must be positive")
	case c.L3LatencyNs <= 0 || c.LocalMemNs <= 0 || c.RemoteMemNs <= 0 || c.RemoteCacheNs <= 0:
		return fmt.Errorf("machine: latencies must be positive")
	case c.MLP <= 0:
		return fmt.Errorf("machine: MLP must be positive")
	case c.IBPorts < 1:
		return fmt.Errorf("machine: IBPorts = %d, need >= 1", c.IBPorts)
	case c.WeakNode >= 0 && (c.WeakNodeBWFactor <= 0 || c.WeakNodeBWFactor > 1):
		// Reject rather than clamp: a typo like 80 for 0.8 would
		// otherwise silently disable the weak node.
		return fmt.Errorf("machine: WeakNodeBWFactor = %g, need in (0, 1] when WeakNode is set", c.WeakNodeBWFactor)
	}
	return nil
}

// Table1String renders the node configuration in the style of Table I.
func (c Config) Table1String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CPUs:    %d sockets per node, %d cores each @ %.1f GHz (SMT off)\n",
		c.SocketsPerNode, c.CoresPerSocket, c.ClockGHz)
	fmt.Fprintf(&b, "         %.0f MB shared L3 per socket, %d B lines\n",
		float64(c.L3Bytes)/(1<<20), c.CacheLineBytes)
	fmt.Fprintf(&b, "Memory:  %.1f GB/s peak per socket; local %.0f ns, remote %.0f ns, remote cache %.0f ns\n",
		c.MemBWPerSocket, c.LocalMemNs, c.RemoteMemNs, c.RemoteCacheNs)
	fmt.Fprintf(&b, "QPI:     %.1f GB/s per link per direction\n", c.QPIBW)
	fmt.Fprintf(&b, "Network: %dx %.0f Gb/s InfiniBand per node (%.1f GB/s aggregate, %.1f GB/s per stream)\n",
		c.IBPorts, c.IBPortBW*8, c.NodeIBBandwidth(), c.PerStreamBW)
	fmt.Fprintf(&b, "Cluster: %d nodes, %d cores total\n", c.Nodes, c.TotalCores())
	return b.String()
}
