package bitmap

import (
	"testing"
	"testing/quick"

	"numabfs/internal/xrand"
)

func TestSummaryRebuildConsistency(t *testing.T) {
	const n = 4096
	for _, g := range []int64{64, 128, 256, 1024, 4096} {
		b := New(n)
		for _, i := range []int64{0, 100, 1000, 4095} {
			b.Set(i)
		}
		s := NewSummary(n, g)
		s.Rebuild(b)
		if !s.Consistent(b) {
			t.Fatalf("g=%d: inconsistent after Rebuild", g)
		}
		// CoveredZero must never claim zero for a granule with a set bit.
		for _, i := range []int64{0, 100, 1000, 4095} {
			if s.CoveredZero(i) {
				t.Fatalf("g=%d: CoveredZero(%d) = true for a set bit", g, i)
			}
		}
	}
}

func TestSummaryZeroFraction(t *testing.T) {
	const n = 4096
	b := New(n)
	b.Set(0) // only granule 0 is non-zero
	s := NewSummary(n, 64)
	s.Rebuild(b)
	if got, want := s.ZeroFraction(), 63.0/64.0; got != want {
		t.Fatalf("ZeroFraction = %g, want %g", got, want)
	}
	// Larger granularity -> fewer summary bits -> lower zero fraction
	// for clustered ones, equal or lower in general.
	s2 := NewSummary(n, 4096)
	s2.Rebuild(b)
	if s2.ZeroFraction() != 0 {
		t.Fatalf("one set bit with full-coverage granule: ZeroFraction = %g", s2.ZeroFraction())
	}
}

func TestSummaryMarkBase(t *testing.T) {
	s := NewSummary(1024, 128)
	s.MarkBase(200)
	if s.CoveredZero(255) || s.CoveredZero(128) {
		t.Fatal("granule [128,256) should be marked")
	}
	if !s.CoveredZero(127) || !s.CoveredZero(256) {
		t.Fatal("neighbouring granules should stay zero")
	}
}

func TestSummaryRebuildRange(t *testing.T) {
	const n, g = 2048, 128
	b := New(n)
	b.Set(130)  // granule 1
	b.Set(1500) // granule 11
	s := NewSummary(n, g)
	// Rebuild only the first half; the second half stays stale-zero.
	s.RebuildRange(b, 0, 1024)
	if s.CoveredZero(130) {
		t.Fatal("granule 1 not rebuilt")
	}
	if !s.CoveredZero(1500) {
		t.Fatal("granule 11 rebuilt although out of range")
	}
	s.RebuildRange(b, 1024, 2048)
	if s.CoveredZero(1500) {
		t.Fatal("granule 11 not rebuilt by second half")
	}
	if !s.Consistent(b) {
		t.Fatal("inconsistent after both halves")
	}
}

func TestSummaryRangePanicsOnMisalignment(t *testing.T) {
	s := NewSummary(1024, 128)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.RebuildRange(New(1024), 64, 1024) // 64 not granule-aligned
}

func TestNewSummaryValidatesGranularity(t *testing.T) {
	for _, g := range []int64{0, -64, 32, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("g=%d: expected panic", g)
				}
			}()
			NewSummary(1024, g)
		}()
	}
}

func TestWrapSummarySharesBits(t *testing.T) {
	words := make([]uint64, 1)
	base := New(1024)
	base.Set(70)
	s := WrapSummary(FromWords(words, 16), 64, 1024)
	s.Rebuild(base)
	if words[0] != 1<<1 {
		t.Fatalf("backing words = %b, want bit 1", words[0])
	}
}

// Property: after any sequence of random sets, Rebuild yields a summary
// where CoveredZero(i) implies the whole granule of i is zero, and every
// granule with a set bit has its summary bit set — for any granularity.
func TestSummaryInvariantProperty(t *testing.T) {
	f := func(seed uint64, gPick uint8) bool {
		gs := []int64{64, 128, 256, 512, 1024}
		g := gs[int(gPick)%len(gs)]
		const n = 1 << 13
		b := New(n)
		rng := xrand.NewXoshiro256(seed)
		for k := 0; k < 200; k++ {
			b.Set(int64(rng.Uint64n(n)))
		}
		s := NewSummary(n, g)
		s.Rebuild(b)
		if !s.Consistent(b) {
			return false
		}
		for i := int64(0); i < n; i++ {
			if s.CoveredZero(i) && b.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: zero fraction is monotonically non-increasing in granularity.
func TestZeroFractionMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		const n = 1 << 13
		b := New(n)
		rng := xrand.NewXoshiro256(seed)
		for k := 0; k < 64; k++ {
			b.Set(int64(rng.Uint64n(n)))
		}
		prev := 1.1
		for _, g := range []int64{64, 128, 256, 512, 1024} {
			s := NewSummary(n, g)
			s.Rebuild(b)
			zf := s.ZeroFraction()
			if zf > prev+1e-12 {
				return false
			}
			prev = zf
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
