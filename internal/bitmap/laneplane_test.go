package bitmap

import "testing"

func TestLanePlaneBasics(t *testing.T) {
	p := NewLanePlane(130)
	if p.Len() != 130 || len(p.Words()) != 130 || p.Bytes() != 130*8 {
		t.Fatalf("plane geometry: len=%d words=%d bytes=%d", p.Len(), len(p.Words()), p.Bytes())
	}
	p.Or(5, 1<<3)
	p.Or(5, 1<<7)
	p.Or(129, ^uint64(0))
	if p.Word(5) != (1<<3)|(1<<7) {
		t.Fatalf("word(5) = %#x", p.Word(5))
	}
	if !p.AnyMasked(1<<7, 0, 130) {
		t.Fatal("AnyMasked missed lane 7")
	}
	if p.AnyMasked(1<<9, 0, 129) {
		t.Fatal("AnyMasked false positive (lane 9 only at vertex 129)")
	}
	var counts [LaneBits]int64
	p.LaneCounts(&counts, 0, 130)
	if counts[3] != 2 || counts[7] != 2 || counts[9] != 1 {
		t.Fatalf("lane counts: %v %v %v", counts[3], counts[7], counts[9])
	}
	p.ResetRange(0, 130)
	if p.AnyMasked(^uint64(0), 0, 130) {
		t.Fatal("ResetRange left bits behind")
	}
}

func TestPlaneFromWordsAliases(t *testing.T) {
	words := make([]uint64, 8)
	p := PlaneFromWords(words, 8)
	p.Or(3, 1<<60)
	if words[3] != 1<<60 {
		t.Fatal("PlaneFromWords did not alias the backing slice")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("undersized PlaneFromWords did not panic")
		}
	}()
	PlaneFromWords(words, 9)
}

func TestLaneSummaryExactPerLane(t *testing.T) {
	const n, g = 300, 64
	p := NewLanePlane(n)
	s := NewLaneSummary(n, g)
	// Lane 0 dense in granule 0, lane 5 only in granule 2.
	for v := int64(0); v < 64; v++ {
		p.Or(v, 1)
	}
	p.Or(150, 1<<5)
	s.Rebuild(p)
	if !s.Consistent(p) {
		t.Fatal("summary inconsistent after Rebuild")
	}
	// Lane 5 must short-circuit in granule 0 even though lane 0 is dense
	// there — the per-lane OR keeps the filter exact.
	if !s.CoveredZero(10, 1<<5) {
		t.Fatal("lane 5 not covered-zero in granule 0")
	}
	if s.CoveredZero(10, 1) {
		t.Fatal("lane 0 wrongly covered-zero in granule 0")
	}
	if s.CoveredZero(150, 1<<5) {
		t.Fatal("lane 5 wrongly covered-zero in its own granule")
	}
	// A masked query over both lanes is zero only where both are empty.
	if !s.CoveredZero(250, (1<<5)|1) {
		t.Fatal("granule 3 should be covered-zero for lanes {0,5}")
	}
}

func TestLaneSummaryRebuildRange(t *testing.T) {
	const n, g = 256, 64
	p := NewLanePlane(n)
	s := NewLaneSummary(n, g)
	p.Or(70, 1<<9)
	if w := s.RebuildRange(p, 64, 128); w != 1 {
		t.Fatalf("RebuildRange wrote %d words, want 1", w)
	}
	if s.CoveredZero(70, 1<<9) {
		t.Fatal("rebuilt granule missing lane 9")
	}
	// Clearing the plane and rebuilding the range must clear the word.
	p.SetWord(70, 0)
	s.RebuildRange(p, 64, 128)
	if !s.CoveredZero(70, ^uint64(0)) {
		t.Fatal("rebuilt granule not cleared")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned RebuildRange did not panic")
		}
	}()
	s.RebuildRange(p, 1, 128)
}

func TestLaneSummaryTailGranule(t *testing.T) {
	// n not a granule multiple: the last summary word covers a short tail.
	const n, g = 100, 64
	p := NewLanePlane(n)
	s := NewLaneSummary(n, g)
	p.Or(99, 1<<63)
	s.Rebuild(p)
	if s.CoveredZero(99, 1<<63) {
		t.Fatal("tail granule missing lane 63")
	}
	if !s.Consistent(p) {
		t.Fatal("tail summary inconsistent")
	}
}
