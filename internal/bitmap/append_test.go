package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// appendNaive is the reference extraction: Get over every bit in range.
func appendNaive(b *Bitmap, dst []int64, lo, hi int64) []int64 {
	if lo < 0 {
		lo = 0
	}
	if hi > b.Len() {
		hi = b.Len()
	}
	for i := lo; i < hi; i++ {
		if b.Get(i) {
			dst = append(dst, i)
		}
	}
	return dst
}

func TestAppendSetBits(t *testing.T) {
	b := New(300)
	for _, i := range []int64{0, 1, 63, 64, 65, 127, 128, 200, 255, 299} {
		b.Set(i)
	}
	cases := []struct{ lo, hi int64 }{
		{0, 300},   // full
		{0, 0},     // empty
		{64, 128},  // word-aligned
		{1, 299},   // clips both boundary bits
		{63, 65},   // straddles a word boundary
		{65, 65},   // empty mid-word
		{-5, 1000}, // clamped
		{200, 100}, // inverted
		{128, 129}, // single set bit
		{129, 130}, // single clear bit
	}
	var got, want []int64
	for _, c := range cases {
		got = b.AppendSetBits(got[:0], c.lo, c.hi)
		want = appendNaive(b, want[:0], c.lo, c.hi)
		if len(got) != len(want) {
			t.Fatalf("[%d,%d): got %v, want %v", c.lo, c.hi, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("[%d,%d): got %v, want %v", c.lo, c.hi, got, want)
			}
		}
	}
	// Appends to existing contents rather than overwriting.
	out := b.AppendSetBits([]int64{-7}, 0, 300)
	if out[0] != -7 || int64(len(out)-1) != b.Count() {
		t.Fatalf("append semantics broken: %v", out)
	}
}

func TestAppendSetBitsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(words []uint64, loRaw, hiRaw uint16) bool {
		b := &Bitmap{n: int64(len(words)) * 64, words: words}
		lo := int64(loRaw) % (b.n + 1)
		hi := lo + int64(hiRaw)%97
		got := b.AppendSetBits(nil, lo, hi)
		want := appendNaive(b, nil, lo, hi)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
