package bitmap

import (
	"fmt"
	"math/bits"
)

// LaneBits is the lane capacity of a plane word: one 64-bit word per
// vertex carries one bit per concurrent BFS source (MS-BFS lane).
const LaneBits = 64

// LanePlane is the multi-source generalization of Bitmap: where a Bitmap
// stores one bit per vertex, a LanePlane stores one 64-bit lane word per
// vertex — bit l of word v is vertex v's membership in lane l's set. One
// adjacency scan can then test or update all 64 lanes of a batched
// traversal with single word operations, which is the MS-BFS idea
// (Then et al.): the frontier and visited sets of up to 64 roots share
// every sweep and every collective.
//
// A LanePlane's word slice is laid out exactly like a Bitmap's — a flat
// []uint64 a collective Layout can segment — so the existing allgather
// variants and wire codecs apply verbatim (a plane segment is just a
// bitmap of 64·n bits whose density is the mean lane density).
type LanePlane struct {
	n     int64 // vertices
	words []uint64
}

// NewLanePlane returns a zeroed plane over n vertices.
func NewLanePlane(n int64) *LanePlane {
	if n < 0 {
		panic("bitmap: negative lane-plane length")
	}
	return &LanePlane{n: n, words: make([]uint64, n)}
}

// PlaneFromWords wraps an existing word slice (e.g. a node-shared region)
// as a plane over n vertices. The slice is used directly, not copied.
func PlaneFromWords(words []uint64, n int64) *LanePlane {
	if int64(len(words)) < n {
		panic(fmt.Sprintf("bitmap: %d words cannot hold a %d-vertex lane-plane", len(words), n))
	}
	return &LanePlane{n: n, words: words}
}

// Len returns the number of vertices.
func (p *LanePlane) Len() int64 { return p.n }

// Words returns the backing word slice (one word per vertex). Callers
// must not resize it.
func (p *LanePlane) Words() []uint64 { return p.words }

// Bytes returns the backing storage size — the quantity an allgather of
// the plane transfers.
func (p *LanePlane) Bytes() int64 { return p.n * 8 }

// Word returns vertex v's lane word.
func (p *LanePlane) Word(v int64) uint64 { return p.words[v] }

// Or sets the lanes of mask at vertex v.
func (p *LanePlane) Or(v int64, mask uint64) { p.words[v] |= mask }

// SetWord replaces vertex v's lane word.
func (p *LanePlane) SetWord(v int64, w uint64) { p.words[v] = w }

// ResetRange zeroes the lane words of vertices [lo, hi).
func (p *LanePlane) ResetRange(lo, hi int64) {
	for v := lo; v < hi; v++ {
		p.words[v] = 0
	}
}

// LaneCounts adds the per-lane population of vertices [lo, hi) into dst:
// dst[l] accumulates the number of vertices whose lane-l bit is set.
func (p *LanePlane) LaneCounts(dst *[LaneBits]int64, lo, hi int64) {
	for v := lo; v < hi; v++ {
		w := p.words[v]
		for w != 0 {
			l := bits.TrailingZeros64(w)
			dst[l]++
			w &= w - 1
		}
	}
}

// AnyMasked reports whether any vertex in [lo, hi) has a lane of mask set.
func (p *LanePlane) AnyMasked(mask uint64, lo, hi int64) bool {
	for v := lo; v < hi; v++ {
		if p.words[v]&mask != 0 {
			return true
		}
	}
	return false
}

// LaneSummary is the multi-source counterpart of Summary: one lane word
// per granule of g vertices, the OR of the granule's plane words. Because
// the OR preserves per-lane structure, a zero bit l in a summary word
// proves lane l's frontier has no vertex in the granule — the bottom-up
// sweep's short-circuit stays exact per lane, with no cross-lane false
// positives, even when other lanes are dense in the same granule.
type LaneSummary struct {
	plane *LanePlane // one word per granule
	g     int64      // vertices per granule
	n     int64      // vertices of the base plane
}

// NewLaneSummary returns a zeroed summary for a plane of n vertices at
// granularity g (vertices per summary word). Like Summary, g must be a
// positive multiple of 64 so both summaries cover identical granules.
func NewLaneSummary(n, g int64) *LaneSummary {
	if g <= 0 || g%wordBits != 0 {
		panic(fmt.Sprintf("bitmap: lane-summary granularity %d must be a positive multiple of %d", g, wordBits))
	}
	return &LaneSummary{plane: NewLanePlane((n + g - 1) / g), g: g, n: n}
}

// WrapLaneSummary builds a LaneSummary view over an existing plane of one
// word per granule (e.g. a node-shared region). The plane must hold
// ceil(n/g) words.
func WrapLaneSummary(plane *LanePlane, g, n int64) *LaneSummary {
	if g <= 0 || g%wordBits != 0 {
		panic(fmt.Sprintf("bitmap: lane-summary granularity %d must be a positive multiple of %d", g, wordBits))
	}
	if want := (n + g - 1) / g; plane.Len() != want {
		panic(fmt.Sprintf("bitmap: lane-summary plane has %d words, want %d", plane.Len(), want))
	}
	return &LaneSummary{plane: plane, g: g, n: n}
}

// Granularity returns the number of vertices one summary word covers.
func (s *LaneSummary) Granularity() int64 { return s.g }

// Plane returns the summary's own plane (one word per granule).
func (s *LaneSummary) Plane() *LanePlane { return s.plane }

// Bytes returns the summary storage size in bytes.
func (s *LaneSummary) Bytes() int64 { return s.plane.Bytes() }

// CoveredZero reports whether the granule containing vertex v is known to
// be empty in every lane of mask. True means the caller may skip reading
// the base plane for all those lanes at once.
func (s *LaneSummary) CoveredZero(v int64, mask uint64) bool {
	return s.plane.words[v/s.g]&mask == 0
}

// RebuildRange recomputes the summary words covering vertices [lo, hi)
// from the base plane. lo and hi must be granule-aligned (hi may equal
// the vertex count). Returns the number of summary words written, which
// the cost model charges as sequential work.
func (s *LaneSummary) RebuildRange(base *LanePlane, lo, hi int64) int64 {
	if base.Len() != s.n {
		panic("bitmap: lane-summary RebuildRange length mismatch")
	}
	if lo%s.g != 0 || (hi != s.n && hi%s.g != 0) {
		panic("bitmap: lane-summary RebuildRange bounds not granule-aligned")
	}
	firstGranule := lo / s.g
	lastGranule := (hi + s.g - 1) / s.g
	var written int64
	for gi := firstGranule; gi < lastGranule; gi++ {
		vLo := gi * s.g
		vHi := vLo + s.g
		if vHi > s.n {
			vHi = s.n
		}
		var any uint64
		for v := vLo; v < vHi; v++ {
			any |= base.words[v]
		}
		s.plane.words[gi] = any
		written++
	}
	return written
}

// Rebuild recomputes the whole summary from the base plane.
func (s *LaneSummary) Rebuild(base *LanePlane) int64 {
	return s.RebuildRange(base, 0, s.n)
}

// Consistent reports whether the summary exactly matches base: summary
// word gi equals the OR of granule gi's plane words. Used by property
// tests.
func (s *LaneSummary) Consistent(base *LanePlane) bool {
	if base.Len() != s.n {
		return false
	}
	fresh := NewLaneSummary(s.n, s.g)
	fresh.Rebuild(base)
	for i, w := range fresh.plane.words {
		if s.plane.words[i] != w {
			return false
		}
	}
	return true
}
