package bitmap

import "testing"

// FuzzSummaryConsistency drives random set/clear sequences against every
// granularity and asserts the rebuilt summary never lies: CoveredZero
// must imply an all-zero granule.
func FuzzSummaryConsistency(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint8(0))
	f.Add([]byte{255, 0, 128, 7}, uint8(3))
	f.Fuzz(func(t *testing.T, ops []byte, gPick uint8) {
		const n = 1 << 12
		gs := []int64{64, 128, 256, 512}
		g := gs[int(gPick)%len(gs)]
		b := New(n)
		for i, op := range ops {
			idx := (int64(op)*131 + int64(i)*7919) % n
			if op%3 == 0 {
				b.Clear(idx)
			} else {
				b.Set(idx)
			}
		}
		s := NewSummary(n, g)
		s.Rebuild(b)
		if !s.Consistent(b) {
			t.Fatalf("g=%d: summary inconsistent after %d ops", g, len(ops))
		}
		for i := int64(0); i < n; i++ {
			if s.CoveredZero(i) && b.Get(i) {
				t.Fatalf("g=%d: CoveredZero lied at bit %d", g, i)
			}
		}
	})
}

// FuzzBitmapSetGet cross-checks the word-packed bitmap against a map.
func FuzzBitmapSetGet(f *testing.F) {
	f.Add([]byte{0, 1, 2})
	f.Fuzz(func(t *testing.T, idxs []byte) {
		const n = 2048
		b := New(n)
		ref := map[int64]bool{}
		for i, x := range idxs {
			idx := (int64(x)*257 + int64(i)) % n
			if x%2 == 0 {
				b.Set(idx)
				ref[idx] = true
			} else {
				b.Clear(idx)
				delete(ref, idx)
			}
		}
		if b.Count() != int64(len(ref)) {
			t.Fatalf("count %d, want %d", b.Count(), len(ref))
		}
		for i := int64(0); i < n; i++ {
			if b.Get(i) != ref[i] {
				t.Fatalf("bit %d: %v, want %v", i, b.Get(i), ref[i])
			}
		}
	})
}
