// Package bitmap implements the dense bit vectors at the heart of the
// bottom-up BFS phase: in_queue, out_queue and their summary bitmaps.
//
// A Bitmap is a fixed-length vector of bits backed by []uint64 words. The
// bottom-up computation phase checks in_queue bits for essentially every
// edge it examines, so these operations are kept allocation-free and
// branch-light. A Summary is a second, smaller bitmap in which one bit
// covers a fixed-size granule of the underlying bitmap (64 bits in the
// Graph500 reference code); a zero summary bit proves the whole granule is
// zero and short-circuits the check. Section III.C of the paper tunes this
// granularity.
package bitmap

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

const wordBits = 64

// Bitmap is a fixed-size bit vector. The zero value is an empty bitmap of
// length 0; use New to allocate one of a given length.
type Bitmap struct {
	n     int64
	words []uint64
}

// New returns a zeroed bitmap holding n bits. It panics if n is negative.
func New(n int64) *Bitmap {
	if n < 0 {
		panic("bitmap: negative length")
	}
	return &Bitmap{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromWords wraps an existing word slice as a bitmap of n bits. The slice
// is used directly, not copied: this is how per-node shared regions are
// viewed as bitmaps by several simulated processes at once.
func FromWords(words []uint64, n int64) *Bitmap {
	if need := (n + wordBits - 1) / wordBits; int64(len(words)) < need {
		panic(fmt.Sprintf("bitmap: %d words cannot hold %d bits", len(words), n))
	}
	return &Bitmap{n: n, words: words}
}

// Len returns the number of bits in the bitmap.
func (b *Bitmap) Len() int64 { return b.n }

// Words returns the backing word slice. Callers must not resize it.
func (b *Bitmap) Words() []uint64 { return b.words }

// Bytes returns the size of the backing storage in bytes. This is the
// quantity transferred when the bitmap is allgathered.
func (b *Bitmap) Bytes() int64 { return int64(len(b.words)) * 8 }

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int64) bool {
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Set sets bit i. It is not safe for concurrent writers to the same word;
// use SetAtomic from parallel loops.
func (b *Bitmap) Set(i int64) {
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (b *Bitmap) Clear(i int64) {
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// SetAtomic sets bit i with an atomic or-loop so that concurrent workers
// of one simulated process may write neighbouring bits of the same word.
// It reports whether this call changed the bit (false if already set).
func (b *Bitmap) SetAtomic(i int64) bool {
	w := &b.words[i/wordBits]
	mask := uint64(1) << uint(i%wordBits)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return true
		}
	}
}

// GetAtomic reports whether bit i is set, using an atomic load. Needed
// when readers race with SetAtomic writers inside one level.
func (b *Bitmap) GetAtomic(i int64) bool {
	w := atomic.LoadUint64(&b.words[i/wordBits])
	return w&(1<<uint(i%wordBits)) != 0
}

// Reset clears all bits.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int64 {
	var c int64
	for _, w := range b.words {
		c += int64(bits.OnesCount64(w))
	}
	return c
}

// Any reports whether any bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// CopyFrom copies src into b. The bitmaps must have the same length.
func (b *Bitmap) CopyFrom(src *Bitmap) {
	if b.n != src.n {
		panic("bitmap: CopyFrom length mismatch")
	}
	copy(b.words, src.words)
}

// OrFrom ors src into b. The bitmaps must have the same length.
func (b *Bitmap) OrFrom(src *Bitmap) {
	if b.n != src.n {
		panic("bitmap: OrFrom length mismatch")
	}
	for i, w := range src.words {
		b.words[i] |= w
	}
}

// Equal reports whether b and o hold identical bits.
func (b *Bitmap) Equal(o *Bitmap) bool {
	if b.n != o.n {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// ForEachSet calls fn with the index of every set bit in ascending order.
func (b *Bitmap) ForEachSet(fn func(i int64)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			i := int64(wi)*wordBits + int64(bit)
			if i >= b.n {
				return
			}
			fn(i)
			w &= w - 1
		}
	}
}

// AppendSetBits appends the indices of the set bits in [loBit, hiBit)
// to dst in ascending order and returns the extended slice. dst is
// caller-owned scratch — pass dst[:0] to reuse it, making steady-state
// extraction allocation-free. Scanning is word-at-a-time with
// TrailingZeros64, masking the partial first and last words.
func (b *Bitmap) AppendSetBits(dst []int64, loBit, hiBit int64) []int64 {
	if loBit < 0 {
		loBit = 0
	}
	if hiBit > b.n {
		hiBit = b.n
	}
	if loBit >= hiBit {
		return dst
	}
	loW := loBit / wordBits
	hiW := (hiBit + wordBits - 1) / wordBits
	for wi := loW; wi < hiW; wi++ {
		w := b.words[wi]
		base := wi * wordBits
		if wi == loW {
			if off := loBit - base; off > 0 {
				w &= ^uint64(0) << uint(off)
			}
		}
		if rem := hiBit - base; rem < wordBits {
			w &= (uint64(1) << uint(rem)) - 1
		}
		for w != 0 {
			dst = append(dst, base+int64(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// WordRange returns the half-open word range [lo, hi) covering bit range
// [loBit, hiBit). Used to slice a bitmap into per-rank segments whose
// boundaries are word-aligned by construction of the 1-D partition.
func WordRange(loBit, hiBit int64) (lo, hi int64) {
	return loBit / wordBits, (hiBit + wordBits - 1) / wordBits
}
