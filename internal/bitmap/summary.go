package bitmap

import "fmt"

// DefaultGranularity is the summary granularity used by the Graph500
// reference code: one summary bit per 64-bit word of the base bitmap.
const DefaultGranularity = 64

// Summary is a coarse bitmap over a base bitmap: summary bit j is set iff
// any bit of granule j (base bits [j*g, (j+1)*g)) is set. Because the
// summary is g times smaller than the base, it enjoys far better cache
// locality; a zero summary bit proves the granule is zero without touching
// the base bitmap. Section III.C of the paper studies the granularity g.
type Summary struct {
	bits *Bitmap
	g    int64 // bits of base bitmap per summary bit; multiple of 64
	n    int64 // length of the base bitmap in bits
}

// NewSummary returns a zeroed summary for a base bitmap of n bits at
// granularity g. g must be a positive multiple of 64 so that granule
// boundaries are word-aligned (letting Rebuild work word-at-a-time, as
// the reference implementation does).
func NewSummary(n int64, g int64) *Summary {
	if g <= 0 || g%wordBits != 0 {
		panic(fmt.Sprintf("bitmap: summary granularity %d must be a positive multiple of %d", g, wordBits))
	}
	return &Summary{bits: New((n + g - 1) / g), g: g, n: n}
}

// WrapSummary builds a Summary view over an existing bitmap of one bit
// per granule (e.g. a node-shared region) for a base bitmap of n bits at
// granularity g. The bitmap must hold ceil(n/g) bits.
func WrapSummary(bits *Bitmap, g, n int64) *Summary {
	if g <= 0 || g%wordBits != 0 {
		panic(fmt.Sprintf("bitmap: summary granularity %d must be a positive multiple of %d", g, wordBits))
	}
	if want := (n + g - 1) / g; bits.Len() != want {
		panic(fmt.Sprintf("bitmap: summary bitmap has %d bits, want %d", bits.Len(), want))
	}
	return &Summary{bits: bits, g: g, n: n}
}

// Granularity returns the number of base bits covered by one summary bit.
func (s *Summary) Granularity() int64 { return s.g }

// Bits returns the summary's own bitmap (one bit per granule).
func (s *Summary) Bits() *Bitmap { return s.bits }

// Len returns the number of summary bits.
func (s *Summary) Len() int64 { return s.bits.Len() }

// Bytes returns the summary storage size in bytes.
func (s *Summary) Bytes() int64 { return s.bits.Bytes() }

// CoveredZero reports whether the granule containing base bit i is known
// to be all-zero (summary bit clear). The caller may skip reading the base
// bitmap when it returns true.
func (s *Summary) CoveredZero(i int64) bool {
	return !s.bits.Get(i / s.g)
}

// MarkBase records that base bit i has been set, setting the covering
// summary bit. Safe for a single writer; use Rebuild after bulk updates.
func (s *Summary) MarkBase(i int64) {
	s.bits.Set(i / s.g)
}

// Rebuild recomputes the summary from the base bitmap. This is what the
// BFS does after each allgather of in_queue (or, for the segment a rank
// owns, before the summary allgather). It returns the number of summary
// words written, which the cost model charges as sequential work.
func (s *Summary) Rebuild(base *Bitmap) int64 {
	if base.Len() != s.n {
		panic("bitmap: Rebuild length mismatch")
	}
	return s.RebuildRange(base, 0, s.n)
}

// RebuildRange recomputes summary bits covering base bit range [lo, hi).
// lo and hi must be granule-aligned (hi may equal the base length).
func (s *Summary) RebuildRange(base *Bitmap, lo, hi int64) int64 {
	if lo%s.g != 0 || (hi != s.n && hi%s.g != 0) {
		panic("bitmap: RebuildRange bounds not granule-aligned")
	}
	wordsPerGranule := s.g / wordBits
	words := base.Words()
	firstGranule := lo / s.g
	lastGranule := (hi + s.g - 1) / s.g
	var written int64
	for gi := firstGranule; gi < lastGranule; gi++ {
		wLo := gi * wordsPerGranule
		wHi := wLo + wordsPerGranule
		if wHi > int64(len(words)) {
			wHi = int64(len(words))
		}
		var any uint64
		for w := wLo; w < wHi; w++ {
			any |= words[w]
		}
		if any != 0 {
			s.bits.Set(gi)
		} else {
			s.bits.Clear(gi)
		}
		written++
	}
	return written
}

// ZeroFraction returns the fraction of summary bits that are zero. This is
// the quantity that shrinks as granularity grows (Section III.C's
// "less zeros, less speedup" trade-off) and the experiments report it.
func (s *Summary) ZeroFraction() float64 {
	total := s.bits.Len()
	if total == 0 {
		return 1
	}
	return float64(total-s.bits.Count()) / float64(total)
}

// Consistent reports whether the summary exactly matches base: summary bit
// j is set iff granule j has a set bit. Used by property tests.
func (s *Summary) Consistent(base *Bitmap) bool {
	if base.Len() != s.n {
		return false
	}
	fresh := NewSummary(s.n, s.g)
	fresh.Rebuild(base)
	return fresh.bits.Equal(s.bits)
}
