package bitmap

import (
	"sync"
	"testing"
	"testing/quick"

	"numabfs/internal/xrand"
)

func TestNewAndLen(t *testing.T) {
	for _, n := range []int64{0, 1, 63, 64, 65, 1000} {
		b := New(n)
		if b.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, b.Len())
		}
		if want := (n + 63) / 64 * 8; b.Bytes() != want {
			t.Errorf("New(%d).Bytes() = %d, want %d", n, b.Bytes(), want)
		}
		if b.Any() {
			t.Errorf("New(%d) has set bits", n)
		}
	}
}

func TestSetGetClear(t *testing.T) {
	b := New(200)
	for _, i := range []int64{0, 1, 63, 64, 127, 128, 199} {
		if b.Get(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("bit 64 set after Clear")
	}
	b.Reset()
	if b.Any() || b.Count() != 0 {
		t.Fatal("bits remain after Reset")
	}
}

func TestSetAtomicReportsChange(t *testing.T) {
	b := New(128)
	if !b.SetAtomic(70) {
		t.Fatal("first SetAtomic returned false")
	}
	if b.SetAtomic(70) {
		t.Fatal("second SetAtomic returned true")
	}
	if !b.GetAtomic(70) || !b.Get(70) {
		t.Fatal("bit not visible after SetAtomic")
	}
}

func TestSetAtomicConcurrent(t *testing.T) {
	// Many goroutines set neighbouring bits of shared words; every bit
	// must land and the change-report must be exact (each bit claimed
	// exactly once).
	const n = 1 << 12
	b := New(n)
	var wg sync.WaitGroup
	claimed := make([]int64, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(w); i < n; i += 8 {
				if b.SetAtomic(i) {
					claimed[w]++
				}
				if b.SetAtomic((i * 7) % n) { // contended duplicates
					claimed[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	if got := b.Count(); got != n {
		t.Fatalf("Count = %d, want %d", got, n)
	}
	var total int64
	for _, c := range claimed {
		total += c
	}
	if total != n {
		t.Fatalf("claimed %d distinct first-sets, want %d", total, n)
	}
}

func TestFromWordsShares(t *testing.T) {
	words := make([]uint64, 4)
	a := FromWords(words, 256)
	c := FromWords(words, 256)
	a.Set(130)
	if !c.Get(130) {
		t.Fatal("views over the same words do not share")
	}
}

func TestFromWordsTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromWords(make([]uint64, 1), 65)
}

func TestCopyOrEqual(t *testing.T) {
	a, b := New(130), New(130)
	a.Set(0)
	a.Set(129)
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Fatal("copies not equal")
	}
	c := New(130)
	c.Set(5)
	c.OrFrom(a)
	if !c.Get(0) || !c.Get(5) || !c.Get(129) || c.Count() != 3 {
		t.Fatal("OrFrom wrong")
	}
	if a.Equal(New(131)) {
		t.Fatal("different lengths reported equal")
	}
}

func TestForEachSet(t *testing.T) {
	b := New(300)
	want := []int64{3, 64, 65, 255, 299}
	for _, i := range want {
		b.Set(i)
	}
	var got []int64
	b.ForEachSet(func(i int64) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCountMatchesNaiveProperty(t *testing.T) {
	f := func(seed uint64, nSmall uint16) bool {
		n := int64(nSmall%2000) + 1
		b := New(n)
		rng := xrand.NewXoshiro256(seed)
		set := make(map[int64]bool)
		for k := 0; k < 100; k++ {
			i := int64(rng.Uint64n(uint64(n)))
			b.Set(i)
			set[i] = true
		}
		if b.Count() != int64(len(set)) {
			return false
		}
		for i := int64(0); i < n; i++ {
			if b.Get(i) != set[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWordRange(t *testing.T) {
	lo, hi := WordRange(128, 256)
	if lo != 2 || hi != 4 {
		t.Fatalf("WordRange(128,256) = %d,%d", lo, hi)
	}
	lo, hi = WordRange(0, 65)
	if lo != 0 || hi != 2 {
		t.Fatalf("WordRange(0,65) = %d,%d", lo, hi)
	}
}
