package msbfs

import (
	"numabfs/internal/bfs"
	"numabfs/internal/machine"
	"numabfs/internal/mpi"
	"numabfs/internal/trace"
)

// publishFrontier runs one level boundary: the freshly written owned
// out-plane segments become the next level's in-plane. When any active
// lane runs bottom-up next, every rank needs the WHOLE plane and its
// summary — one allgather round, shared by all 64 lanes; this is the
// amortization the batch exists for, counted in rounds. When every
// active lane runs top-down next, the boundary is a local owned-segment
// copy: top-down reads nothing beyond the owned segment, so sequential
// runs' per-root allgathers simply never happen.
func (ls *laneState) publishFrontier(p *mpi.Proc, needPlane bool) {
	r := ls.r
	wlo := r.planeLayout.Displs[ls.pos]
	wcnt := r.planeLayout.Counts[ls.pos]
	if !needPlane {
		t0 := p.Clock()
		copy(ls.inPlane.Words()[wlo:wlo+wcnt], ls.outPlane.Words()[wlo:wlo+wcnt])
		p.Compute(ls.team.Parallel(machine.PhaseLoad{
			SeqBytes: wcnt * 16, SeqLoc: r.inqLoc(),
		}))
		ls.charge(trace.Switch, t0, p.Clock())
		return
	}
	// Synchronize before touching shared buffers (as bfs's bottom-up
	// conversion does), then the two allgathers of Fig. 1 — once per
	// level for the whole batch.
	t0 := p.Clock()
	wait := p.Barrier()
	ls.bd.Add(trace.Stall, wait)
	ls.bd.Add(trace.BUComm, p.Clock()-t0-wait)
	ls.rec.PhaseSpan(trace.Stall, ls.levels, t0, t0+wait)
	ls.rec.PhaseSpan(trace.BUComm, ls.levels, t0+wait, p.Clock())
	t0, x0 := p.Clock(), p.XportNs()
	ls.allgatherPlane(p)
	ls.allgatherSummary(p)
	ls.chargeComm(p, trace.BUComm, t0, x0)
	ls.rounds++
	ls.bd.BUCommCount++
}

// allgatherPlane distributes the next frontier plane under the
// configured optimization level — bfs.allgatherInQueue verbatim, with
// lane-plane words in place of bitmap words (the plane layout follows
// the vertex partition, so each variant applies unchanged).
func (ls *laneState) allgatherPlane(p *mpi.Proc) {
	r := ls.r
	wlo := r.planeLayout.Displs[ls.pos]
	wcnt := r.planeLayout.Counts[ls.pos]
	ownOut := ls.outPlane.Words()[wlo : wlo+wcnt]

	switch r.Opts.Opt {
	case bfs.OptOriginal:
		// Stage the owned segment into the private in-plane, then the
		// MPI library's default allgather over all ranks.
		copy(ls.inPlane.Words()[wlo:wlo+wcnt], ownOut)
		p.Compute(ls.team.Parallel(machine.PhaseLoad{
			SeqBytes: wcnt * 16, SeqLoc: r.pl.PrivateLoc,
		}))
		r.AllGroup.Allgather(p, ls.inPlane.Words(), r.planeLayout)

	case bfs.OptShareInQueue:
		r.NC.SharedInQueueAllgather(p, ls.inPlane.Words(), ownOut, r.planeLayout)

	case bfs.OptShareAll:
		r.NC.SharedAllAgather(p, ls.inPlane.Words(), ls.outPlane.Words(), r.planeLayout)

	case bfs.OptParAllgather:
		r.NC.ParallelAllgather(p, ls.inPlane.Words(), ownOut, r.planeLayout)

	case bfs.OptCompressedAllgather:
		// A plane segment is a bitmap of 64·n bits whose density is the
		// mean lane density — the adaptive codec applies as-is.
		r.NC.ParallelAllgatherCompressed(p, ls.inPlane.Words(), ownOut, r.planeLayout, ls.planeCodec)
	}
}

// allgatherSummary rebuilds this rank's share of the lane summary from
// the freshly allgathered plane and distributes it — the second, much
// smaller allgather, also paid once per level for the whole batch.
func (ls *laneState) allgatherSummary(p *mpi.Proc) {
	r := ls.r

	vLo, vHi := ls.shareVerts(ls.pos)
	written := ls.inSum.RebuildRange(ls.inPlane, vLo, vHi)
	p.Compute(ls.team.Parallel(machine.PhaseLoad{
		SeqBytes: (vHi-vLo)*8 + written*8,
		SeqLoc:   r.inqLoc(),
	}))

	sumWords := ls.inSum.Plane().Words()
	switch r.Opts.Opt {
	case bfs.OptOriginal, bfs.OptShareInQueue:
		r.AllGroup.Allgather(p, sumWords, r.sumLayout)
	case bfs.OptShareAll:
		r.NC.SharedInPlaceAllgather(p, sumWords, r.sumLayout)
	case bfs.OptParAllgather:
		r.NC.ParallelAllgatherInPlace(p, sumWords, r.sumLayout)
	case bfs.OptCompressedAllgather:
		r.NC.ParallelAllgatherInPlaceCompressed(p, sumWords, r.sumLayout, ls.sumCodec)
	}
}

// shareVerts returns the vertex range [vLo, vHi) of a rank's
// lane-summary share (granule-aligned; clamped to the vertex count).
// The summary layout is in granule words, one word per granule.
func (ls *laneState) shareVerts(pos int) (int64, int64) {
	r := ls.r
	g := r.Opts.Granularity
	n := r.Params.NumVertices()
	vLo := r.sumLayout.Displs[pos] * g
	vHi := (r.sumLayout.Displs[pos] + r.sumLayout.Counts[pos]) * g
	if vLo > n {
		vLo = n
	}
	if vHi > n {
		vHi = n
	}
	return vLo, vHi
}
