package msbfs

import (
	"fmt"
	"math/bits"

	"numabfs/internal/bfs"
	"numabfs/internal/machine"
	"numabfs/internal/mpi"
	"numabfs/internal/obs"
	"numabfs/internal/trace"
)

// batchState is the lockstep control state of one batch. Every field is
// derived from allreduced per-lane vectors, so all ranks hold identical
// copies and the collective call pattern is identical by construction —
// the same invariant bfs.loopState maintains for one root, kept here
// per lane.
type batchState struct {
	active uint64 // lanes still traversing
	bu     uint64 // lanes currently in the bottom-up procedure
	nf     [64]int64
	mf     [64]int64
	prevNf [64]int64
	// visEdges[l] is lane l's explored directed-edge count, the hybrid
	// switch's "unexplored" complement.
	visEdges [64]int64
}

// RunBatch traverses from up to 64 roots at once and returns the batch
// result. Rank clocks are reset, so TimeNs is the batch's virtual
// duration — directly comparable against the sum of len(roots)
// single-root runs.
func (r *Runner) RunBatch(roots []int64) BatchResult {
	if len(r.states) == 0 || r.states[0] == nil {
		panic("msbfs: RunBatch before Setup")
	}
	if len(roots) == 0 || len(roots) > 64 {
		panic(fmt.Sprintf("msbfs: batch of %d roots outside [1, 64]", len(roots)))
	}
	r.W.ResetClocks()
	for _, ls := range r.states {
		if ls.planeCodec != nil {
			ls.planeCodec.ResetStats()
			ls.sumCodec.ResetStats()
		}
	}
	if err := r.W.TryRun(func(p *mpi.Proc) {
		r.states[p.Rank()].runBatch(p, roots)
	}); err != nil {
		// No checkpoint path here: a transport fault that exhausts its
		// retry budget (or a programming bug) is terminal.
		panic(err)
	}
	return r.assemble(roots)
}

// runBatch executes one batch on this rank.
func (ls *laneState) runBatch(p *mpi.Proc, roots []int64) {
	r := ls.r
	st := ls.initBatch(p, roots)
	for st.active != 0 {
		ls.levels++
		levelStart := p.Clock()
		tdMask := st.active &^ st.bu
		buMask := st.active & st.bu
		var nfL, mfL [64]int64

		// Both sweeps write the next frontier into the owned out-plane
		// segment; clear it once per level (a streaming memset).
		ls.clearOwnedOut(p, buMask != 0)
		if tdMask != 0 {
			ls.topDownSweep(p, tdMask, &nfL, &mfL)
			ls.bd.TDLevels++
		}
		if buMask != 0 {
			ls.bottomUpSweep(p, buMask, &nfL, &mfL)
			ls.bd.BULevels++
		}

		commPh := trace.TDComm
		buLevel := buMask != 0
		if buLevel {
			commPh = trace.BUComm
		}
		ls.stallBarrier(p, commPh)

		// Frontier accounting: two 64-lane vector allreduces replace the
		// 2·len(roots) scalar allreduces sequential runs pay per level.
		t0, x0 := p.Clock(), p.XportNs()
		r.AllGroup.AllreduceSumVec64(p, &nfL)
		r.AllGroup.AllreduceSumVec64(p, &mfL)
		ls.chargeComm(p, commPh, t0, x0)

		// Per-lane termination: finished lanes drop out of every
		// subsequent sweep (their plane bits stay zero — an empty
		// frontier writes nothing).
		var levNF, levMF int64
		for m := st.active; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			st.nf[l], st.mf[l] = nfL[l], mfL[l]
			st.visEdges[l] += mfL[l]
			levNF += nfL[l]
			levMF += mfL[l]
			if nfL[l] == 0 {
				st.active &^= 1 << uint(l)
				ls.laneLevels[l] = ls.levels
			}
		}
		ls.levelStats = append(ls.levelStats, trace.LevelStat{
			Level: ls.levels, BottomUp: buLevel, NF: levNF, MF: levMF,
			Ns: p.Clock() - levelStart,
		})
		ls.rec.LevelSpan(buLevel, ls.levels, levelStart, p.Clock())
		ls.rec.GaugeSet(obs.GaugeFrontier, p.Clock(), float64(levNF))
		ls.rec.GaugeSet(obs.GaugeFrontierDensity, p.Clock(),
			float64(levNF)/float64(r.Params.NumVertices()*int64(ls.nl)))
		if st.active == 0 {
			break
		}

		// Per-lane mode decisions, Beamer-style with bfs's exact
		// thresholds — each lane follows the schedule its own frontier
		// curve dictates, so a lane's level structure is independent of
		// its batch-mates.
		if r.Opts.Mode == bfs.ModeHybrid {
			for m := st.active; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				bit := uint64(1) << uint(l)
				if st.bu&bit == 0 {
					unexplored := r.totalEdges - st.visEdges[l]
					if st.nf[l] > st.prevNf[l] && float64(st.mf[l]) > float64(unexplored)/r.Opts.Alpha {
						st.bu |= bit
					}
				} else if float64(st.nf[l]) < float64(r.Params.NumVertices())/r.Opts.Beta {
					st.bu &^= bit
				}
			}
		}
		st.prevNf = st.nf

		// Level boundary: publish the next frontier. Bottom-up lanes
		// need the whole plane (and its summary) everywhere — one
		// allgather round shared by every lane in the batch. A boundary
		// where every active lane runs top-down next is allgather-free:
		// top-down reads only the owned plane segment.
		ls.publishFrontier(p, st.active&st.bu != 0)
	}
}

// initBatch resets per-batch state, seeds the root lanes and performs
// the initial allreduce, mode setup and frontier publication.
func (ls *laneState) initBatch(p *mpi.Proc, roots []int64) *batchState {
	r := ls.r
	ls.reset(len(roots))
	ls.rec = p.Obs()

	// Seed the owned roots into the out-plane (cleared owned segment
	// first, as at every level).
	t0 := p.Clock()
	wlo := r.planeLayout.Displs[ls.pos]
	wcnt := r.planeLayout.Counts[ls.pos]
	own := ls.outPlane.Words()[wlo : wlo+wcnt]
	for i := range own {
		own[i] = 0
	}
	var nfL, mfL [64]int64
	var owned int64
	lo := ls.csr.Lo
	for l, root := range roots {
		if r.Part.Owner(root) != ls.pos {
			continue
		}
		owned++
		bit := uint64(1) << uint(l)
		i := root - lo
		ls.vis[i] |= bit
		ls.parent[l][i] = root
		d := ls.csr.Degree(root)
		ls.outPlane.Or(root, bit)
		nfL[l] = 1
		mfL[l] = d
		ls.visitedCount[l] = 1
		ls.visitedEdges[l] = d
	}
	p.Compute(ls.team.Parallel(machine.PhaseLoad{
		Random:   []machine.Access{{Count: owned, StructBytes: wcnt * 8, Loc: ls.outLoc()}},
		SeqBytes: wcnt * 8,
		SeqLoc:   ls.outLoc(),
	}))
	ls.charge(trace.Switch, t0, p.Clock())

	t0, x0 := p.Clock(), p.XportNs()
	r.AllGroup.AllreduceSumVec64(p, &nfL)
	r.AllGroup.AllreduceSumVec64(p, &mfL)
	ls.chargeComm(p, trace.TDComm, t0, x0)

	st := &batchState{active: ls.all}
	if r.Opts.Mode == bfs.ModeBottomUp {
		st.bu = ls.all
	}
	for l := 0; l < ls.nl; l++ {
		st.nf[l], st.mf[l] = nfL[l], mfL[l]
		st.visEdges[l] = mfL[l]
	}
	st.prevNf = st.nf
	ls.publishFrontier(p, st.bu != 0)
	return st
}

// reset clears per-batch state for a batch of nl lanes. The planes need
// no full clearing: the owned out-plane segment is cleared every level,
// top-down reads only the owned in-plane segment (fully overwritten by
// publishFrontier), and bottom-up levels are always preceded by a full
// plane+summary allgather.
func (ls *laneState) reset(nl int) {
	ls.nl = nl
	if nl == 64 {
		ls.all = ^uint64(0)
	} else {
		ls.all = (uint64(1) << uint(nl)) - 1
	}
	for l := 0; l < nl; l++ {
		p := ls.parent[l]
		for i := range p {
			p[i] = -1
		}
	}
	for i := range ls.vis {
		ls.vis[i] = 0
	}
	ls.visitedEdges = [64]int64{}
	ls.visitedCount = [64]int64{}
	ls.laneLevels = [64]int{}
	ls.bd = trace.Breakdown{}
	ls.levels = 0
	ls.rounds = 0
	ls.levelStats = ls.levelStats[:0]
}

// clearOwnedOut zeroes the owned out-plane segment (a streaming memset,
// charged to the level's dominant computation phase).
func (ls *laneState) clearOwnedOut(p *mpi.Proc, buLevel bool) {
	r := ls.r
	wlo := r.planeLayout.Displs[ls.pos]
	wcnt := r.planeLayout.Counts[ls.pos]
	own := ls.outPlane.Words()[wlo : wlo+wcnt]
	for i := range own {
		own[i] = 0
	}
	ph := trace.TDComp
	if buLevel {
		ph = trace.BUComp
	}
	ns := ls.team.Parallel(machine.PhaseLoad{SeqBytes: wcnt * 8, SeqLoc: ls.outLoc()})
	tc := p.Clock()
	p.Compute(ns)
	ls.charge(ph, tc, p.Clock())
}

// claim visits owned vertex v with parent u for every lane of w not yet
// holding v; accumulates per-lane frontier counters. The caller
// sequences claims canonically (ascending owned vertex order for local
// claims, sender-position order for remote ones), which makes each
// lane's winning parent independent of what the other lanes do.
func (ls *laneState) claim(v, u int64, w uint64, nfL, mfL *[64]int64) {
	i := v - ls.csr.Lo
	nw := w &^ ls.vis[i]
	if nw == 0 {
		return
	}
	ls.vis[i] |= nw
	ls.outPlane.Or(v, nw)
	d := ls.csr.Degree(v)
	for m := nw; m != 0; m &= m - 1 {
		l := bits.TrailingZeros64(m)
		ls.parent[l][i] = u
		nfL[l]++
		mfL[l] += d
		ls.visitedCount[l]++
		ls.visitedEdges[l] += d
	}
}

// stallBarrier / charge / chargeComm mirror bfs's phase attribution.
func (ls *laneState) stallBarrier(p *mpi.Proc, comm trace.Phase) {
	t0 := p.Clock()
	wait := p.Barrier()
	ls.bd.Add(trace.Stall, wait)
	ls.bd.Add(comm, p.Clock()-t0-wait)
	ls.rec.PhaseSpan(trace.Stall, ls.levels, t0, t0+wait)
	ls.rec.PhaseSpan(comm, ls.levels, t0+wait, p.Clock())
}

func (ls *laneState) charge(ph trace.Phase, start, end float64) {
	ls.bd.Add(ph, end-start)
	ls.rec.PhaseSpan(ph, ls.levels, start, end)
}

func (ls *laneState) chargeComm(p *mpi.Proc, ph trace.Phase, t0, x0 float64) {
	end := p.Clock()
	dx := p.XportNs() - x0
	ls.bd.Add(trace.Xport, dx)
	ls.bd.Add(ph, end-t0-dx)
	ls.rec.PhaseSpan(ph, ls.levels, t0, end)
}
