package msbfs

import (
	"fmt"
	"runtime"
	"testing"

	"numabfs/internal/bfs"
	"numabfs/internal/fault"
	"numabfs/internal/graph"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
)

func testConfig(scale, nodes, sockets int) machine.Config {
	cfg := machine.Scaled(scale, scale+12)
	cfg.Nodes = nodes
	cfg.SocketsPerNode = sockets
	cfg.WeakNode = -1
	return cfg
}

// laneLevelsOf reconstructs lane l's global levels from its parent tree.
func laneLevelsOf(r *Runner, l int, root int64) []int64 {
	parent := r.LaneParents(l)
	level := make([]int64, len(parent))
	for i := range level {
		level[i] = -1
	}
	if parent[root] < 0 {
		return level
	}
	level[root] = 0
	for changed := true; changed; {
		changed = false
		for v := range parent {
			if level[v] >= 0 || parent[v] < 0 {
				continue
			}
			if pl := level[parent[v]]; pl >= 0 {
				level[v] = pl + 1
				changed = true
			}
		}
	}
	return level
}

func newTestRunner(t *testing.T, scale int, opts bfs.Options) *Runner {
	t.Helper()
	params := rmat.Graph500(scale)
	r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	return r
}

// TestBatchMatchesReferenceAcrossVariants: every lane's level structure
// must equal the sequential reference BFS at every mode and every
// supported optimization level.
func TestBatchMatchesReferenceAcrossVariants(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	ref := graph.BuildGlobal(params, true)
	roots := params.Roots(8, ref.HasEdge)

	for _, mode := range []bfs.Mode{bfs.ModeHybrid, bfs.ModeTopDown, bfs.ModeBottomUp} {
		for _, opt := range []bfs.Opt{bfs.OptOriginal, bfs.OptShareInQueue, bfs.OptShareAll,
			bfs.OptParAllgather, bfs.OptCompressedAllgather} {
			t.Run(fmt.Sprintf("%s/%s", mode, opt), func(t *testing.T) {
				opts := bfs.DefaultOptions()
				opts.Mode = mode
				opts.Opt = opt
				r := newTestRunner(t, scale, opts)
				res := r.RunBatch(roots)
				if res.TimeNs <= 0 || res.TEPS <= 0 {
					t.Fatalf("non-positive time/TEPS: %+v", res)
				}
				for l, root := range roots {
					wantLevel, _ := graph.ReferenceBFS(ref, root)
					got := laneLevelsOf(r, l, root)
					for v := range got {
						if got[v] != wantLevel[v] {
							t.Fatalf("lane %d root %d vertex %d: level %d, want %d",
								l, root, v, got[v], wantLevel[v])
						}
					}
					var wantVisited, wantEdges int64
					for v, lev := range wantLevel {
						if lev >= 0 {
							wantVisited++
							wantEdges += ref.Degree(int64(v))
						}
					}
					lr := res.Lanes[l]
					if lr.Visited != wantVisited {
						t.Errorf("lane %d: visited %d, want %d", l, lr.Visited, wantVisited)
					}
					if lr.TraversedEdges != wantEdges/2 {
						t.Errorf("lane %d: traversed edges %d, want %d", l, lr.TraversedEdges, wantEdges/2)
					}
				}
			})
		}
	}
}

// TestBatchBitIdenticalToBatchOne: the tentpole determinism claim — a
// root's parent tree in a full batch is byte-identical to the same
// root traversed alone, at every optimization level.
func TestBatchBitIdenticalToBatchOne(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	for _, opt := range []bfs.Opt{bfs.OptOriginal, bfs.OptShareAll, bfs.OptCompressedAllgather} {
		t.Run(opt.String(), func(t *testing.T) {
			opts := bfs.DefaultOptions()
			opts.Opt = opt
			r := newTestRunner(t, scale, opts)
			roots := params.Roots(16, r.HasEdgeGlobal)
			r.RunBatch(roots)
			batched := make([][]int64, len(roots))
			for l := range roots {
				batched[l] = r.LaneParents(l)
			}
			for l, root := range roots {
				r.RunBatch([]int64{root})
				solo := r.LaneParents(0)
				for v := range solo {
					if solo[v] != batched[l][v] {
						t.Fatalf("lane %d root %d vertex %d: batched parent %d, solo parent %d",
							l, root, v, batched[l][v], solo[v])
					}
				}
			}
		})
	}
}

// TestBatchAmortizesAllgathers: the headline perf property at test
// scale — one batch performs strictly fewer allgather rounds and takes
// strictly less virtual time than the same roots run one at a time.
func TestBatchAmortizesAllgathers(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	opts := bfs.DefaultOptions()
	opts.Opt = bfs.OptCompressedAllgather
	r := newTestRunner(t, scale, opts)
	roots := params.Roots(32, r.HasEdgeGlobal)

	batch := r.RunBatch(roots)
	var seqRounds int64
	var seqTime float64
	for _, root := range roots {
		res := r.RunBatch([]int64{root})
		seqRounds += res.AllgatherRounds
		seqTime += res.TimeNs
	}
	if batch.AllgatherRounds >= seqRounds {
		t.Errorf("batched rounds %d not < sequential rounds %d", batch.AllgatherRounds, seqRounds)
	}
	if batch.TimeNs >= seqTime {
		t.Errorf("batched time %g not < sequential time %g", batch.TimeNs, seqTime)
	}
}

// TestLaneDropEarlyTermination: lanes whose components exhaust early
// must drop out while the rest keep traversing, and a dropped lane's
// results must be unaffected by the survivors.
func TestLaneDropEarlyTermination(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	ref := graph.BuildGlobal(params, true)
	giant := params.Roots(1, ref.HasEdge)[0]
	// Find a root in a small component: its lane terminates levels
	// before the giant-component lane does.
	small := int64(-1)
	for v := int64(0); v < params.NumVertices(); v++ {
		if ref.HasEdge(v) && graph.ConnectedComponent(ref, v) < 64 {
			small = v
			break
		}
	}
	if small < 0 {
		t.Skip("no small component at this scale/seed")
	}
	opts := bfs.DefaultOptions()
	r := newTestRunner(t, scale, opts)
	res := r.RunBatch([]int64{giant, small})
	if res.Lanes[1].Levels >= res.Lanes[0].Levels {
		t.Errorf("small-component lane ran %d levels, giant lane %d — expected early drop",
			res.Lanes[1].Levels, res.Lanes[0].Levels)
	}
	if want := graph.ConnectedComponent(ref, small); res.Lanes[1].Visited != want {
		t.Errorf("small lane visited %d, want component size %d", res.Lanes[1].Visited, want)
	}
	// The dropped lane's tree is still the solo tree.
	batched := r.LaneParents(1)
	r.RunBatch([]int64{small})
	solo := r.LaneParents(0)
	for v := range solo {
		if solo[v] != batched[v] {
			t.Fatalf("vertex %d: dropped-lane parent %d, solo parent %d", v, batched[v], solo[v])
		}
	}
}

// TestSingleVertexLane: a lane whose root has edges only to itself-like
// minimal frontiers must terminate level 1 without disturbing others —
// exercised via a batch of one (smallest batch) plus repeats.
func TestBatchRepeatsAreBitIdentical(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	opts := bfs.DefaultOptions()
	opts.Opt = bfs.OptParAllgather
	r := newTestRunner(t, scale, opts)
	roots := params.Roots(16, r.HasEdgeGlobal)
	a := r.RunBatch(roots)
	pa := make([][]int64, len(roots))
	for l := range roots {
		pa[l] = r.LaneParents(l)
	}
	b := r.RunBatch(roots)
	if a.TimeNs != b.TimeNs || a.AllgatherRounds != b.AllgatherRounds ||
		a.TraversedEdges != b.TraversedEdges || a.Breakdown.Total() != b.Breakdown.Total() {
		t.Fatalf("repeat diverged: (%g, %d, %d) vs (%g, %d, %d)",
			a.TimeNs, a.AllgatherRounds, a.TraversedEdges,
			b.TimeNs, b.AllgatherRounds, b.TraversedEdges)
	}
	for l := range roots {
		again := r.LaneParents(l)
		for v := range again {
			if again[v] != pa[l][v] {
				t.Fatalf("lane %d vertex %d: parent changed across repeats", l, v)
			}
		}
	}
}

// TestDeterministicAcrossHostParallelism: batched virtual time must not
// depend on host scheduling, the simulator's core guarantee.
func TestDeterministicAcrossHostParallelism(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	run := func() (float64, float64, int64, int64) {
		opts := bfs.DefaultOptions()
		opts.Opt = bfs.OptCompressedAllgather
		r := newTestRunner(t, scale, opts)
		roots := params.Roots(16, r.HasEdgeGlobal)
		res := r.RunBatch(roots)
		return res.TimeNs, res.Breakdown.Total(), res.TraversedEdges, res.AllgatherRounds
	}
	prev := runtime.GOMAXPROCS(1)
	t1, b1, e1, g1 := run()
	runtime.GOMAXPROCS(4)
	t4, b4, e4, g4 := run()
	runtime.GOMAXPROCS(prev)
	if t1 != t4 || b1 != b4 || e1 != e4 || g1 != g4 {
		t.Fatalf("host parallelism leaked into results: (%g, %g, %d, %d) vs (%g, %g, %d, %d)",
			t1, b1, e1, g1, t4, b4, e4, g4)
	}
}

// TestLossyPlanComposition: a lossy-link fault plan must slow the batch
// down without changing any lane's parent tree.
func TestLossyPlanComposition(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	opts := bfs.DefaultOptions()

	clean := newTestRunner(t, scale, opts)
	roots := params.Roots(8, clean.HasEdgeGlobal)
	cleanRes := clean.RunBatch(roots)
	cleanParents := make([][]int64, len(roots))
	for l := range roots {
		cleanParents[l] = clean.LaneParents(l)
	}

	lossy := newTestRunner(t, scale, opts)
	if err := lossy.InjectFaults(fault.Lossy(42, 0.05)); err != nil {
		t.Fatal(err)
	}
	res := lossy.RunBatch(roots)
	if res.TimeNs <= cleanRes.TimeNs {
		t.Errorf("lossy batch (%g ns) not slower than clean (%g ns)", res.TimeNs, cleanRes.TimeNs)
	}
	if res.Xport.Retransmits == 0 {
		t.Error("lossy plan produced no retransmits")
	}
	for l := range roots {
		got := lossy.LaneParents(l)
		for v := range got {
			if got[v] != cleanParents[l][v] {
				t.Fatalf("lane %d vertex %d: loss changed the parent tree", l, v)
			}
		}
	}
}

// TestInjectFaultsRejectsCrashPlans: no checkpoint path, no crashes.
func TestInjectFaultsRejectsCrashPlans(t *testing.T) {
	r := newTestRunner(t, 12, bfs.DefaultOptions())
	plan := fault.Plan{Crashes: []fault.Crash{{Rank: 1, AtNs: 1e6}}}
	if err := r.InjectFaults(plan); err == nil {
		t.Fatal("crash plan accepted by the batched engine")
	}
}

// TestValidateOptionsGates: the overlap level and the recovery
// machinery are out of the batched engine's scope.
func TestValidateOptionsGates(t *testing.T) {
	o := bfs.DefaultOptions()
	o.Opt = bfs.OptOverlapAllgather
	if err := ValidateOptions(o); err == nil {
		t.Error("overlap level accepted")
	}
	o = bfs.DefaultOptions()
	o.SpareRanks = 1
	if err := ValidateOptions(o); err == nil {
		t.Error("spare ranks accepted")
	}
	o = bfs.DefaultOptions()
	o.Recovery = bfs.RecoverShrink
	if err := ValidateOptions(o); err == nil {
		t.Error("shrink recovery accepted")
	}
}
