package msbfs

import (
	"math/bits"

	"numabfs/internal/machine"
	"numabfs/internal/mpi"
	"numabfs/internal/trace"
)

// bottomUpSweep runs one bottom-up step for the lanes of buMask: every
// owned vertex still unvisited in at least one of those lanes scans its
// neighbours once, resolving ALL its pending lanes in that single pass —
// lane l adopts the first neighbour (in adjacency order) present in lane
// l's frontier, the reference code's rule applied independently per
// lane. The lane summary's per-lane OR keeps the short-circuit exact:
// a granule is skipped for exactly the pending lanes it is empty in,
// never because another lane is dense there.
func (ls *laneState) bottomUpSweep(p *mpi.Proc, buMask uint64, nfL, mfL *[64]int64) {
	r := ls.r
	inqLoc, sumLoc := r.inqLoc(), r.sumLoc()
	res := ls.team.For(ls.csr.NumLocal(), r.Opts.Chunk, func(lo, hi int64, load *machine.PhaseLoad) {
		var edges, sumChecks, planeChecks, found int64
		for i := lo; i < hi; i++ {
			pend := buMask &^ ls.vis[i]
			if pend == 0 {
				continue
			}
			v := ls.csr.Lo + i
			var d int64 // v's degree, fetched lazily on the first hit
			for _, u := range ls.csr.Neighbors(v) {
				edges++
				sumChecks++
				if ls.inSum.CoveredZero(u, pend) {
					continue // the summary proved every pending lane empty here
				}
				planeChecks++
				hit := ls.inPlane.Word(u) & pend
				if hit == 0 {
					continue
				}
				ls.vis[i] |= hit
				ls.outPlane.Or(v, hit)
				if d == 0 {
					d = ls.csr.Degree(v)
				}
				for m := hit; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					ls.parent[l][i] = u
					nfL[l]++
					mfL[l] += d
					ls.visitedCount[l]++
					ls.visitedEdges[l] += d
				}
				found++
				pend &^= hit
				if pend == 0 {
					break
				}
			}
		}
		load.Random = append(load.Random,
			machine.Access{Count: sumChecks, StructBytes: r.sumBytes, Loc: sumLoc},
			machine.Access{Count: planeChecks, StructBytes: r.planeBytes, Loc: inqLoc},
			machine.Access{Count: found, StructBytes: ls.visBytes(), Loc: r.pl.PrivateLoc},
		)
		// Visited-word scan + adjacency stream.
		load.SeqBytes = (hi-lo)*8 + edges*8
		load.SeqLoc = r.pl.GraphLoc
		load.CPUOps = edges*2 + (hi - lo)
	})
	tc := p.Clock()
	p.Compute(res.Ns)
	ls.charge(trace.BUComp, tc, p.Clock())
}
