package msbfs

import (
	"numabfs/internal/simnet"
	"numabfs/internal/trace"
	"numabfs/internal/wire"
)

// LaneResult is one lane's (one root's) view of a batch.
type LaneResult struct {
	Root           int64
	Levels         int
	TraversedEdges int64 // undirected edges in the lane's component
	Visited        int64 // vertices the lane reached
	// TEPS is the lane's effective rate against the WHOLE batch's wall
	// time — the honest per-query number a service reports: the lane
	// paid the batch's duration to get its answer.
	TEPS float64
}

// BatchResult summarizes one multi-source batch.
type BatchResult struct {
	Roots  []int64
	TimeNs float64 // virtual wall time of the whole batch
	Levels int     // level count of the longest-running lane
	// AllgatherRounds is the number of plane+summary allgather
	// boundaries the batch performed — the figure of merit: sequential
	// runs pay their rounds per root, the batch pays each round once
	// for all 64 lanes.
	AllgatherRounds int64
	Lanes           []LaneResult
	// TraversedEdges / Visited / TEPS aggregate all lanes: the batch
	// traversed this many (lane, edge) pairs in TimeNs.
	TraversedEdges int64
	Visited        int64
	TEPS           float64
	Breakdown      trace.Breakdown // mean across ranks
	// LevelStats is the batch frontier curve (rank 0's view; NF/MF are
	// summed across lanes).
	LevelStats []trace.LevelStat
	// CommBytes / RawCommBytes / Wire / Xport as in bfs.RootResult.
	CommBytes    int64
	RawCommBytes int64
	Wire         wire.Stats
	Xport        simnet.Xport
}

// assemble gathers the per-rank lane states into a BatchResult.
func (r *Runner) assemble(roots []int64) BatchResult {
	res := BatchResult{
		Roots:  append([]int64(nil), roots...),
		TimeNs: r.W.MaxClock(),
	}
	res.Lanes = make([]LaneResult, len(roots))
	var bd trace.Breakdown
	for _, ls := range r.states {
		bd.Merge(ls.bd)
		if ls.levels > res.Levels {
			res.Levels = ls.levels
		}
		for l := range roots {
			res.Lanes[l].TraversedEdges += ls.visitedEdges[l]
			res.Lanes[l].Visited += ls.visitedCount[l]
		}
	}
	for l, root := range roots {
		lr := &res.Lanes[l]
		lr.Root = root
		lr.TraversedEdges /= 2 // both endpoints counted
		lr.Levels = r.states[0].laneLevels[l]
		if res.TimeNs > 0 {
			lr.TEPS = float64(lr.TraversedEdges) / (res.TimeNs / 1e9)
		}
		res.TraversedEdges += lr.TraversedEdges
		res.Visited += lr.Visited
	}
	bd.Scale(1 / float64(len(r.states)))
	bd.TDLevels = r.states[0].bd.TDLevels
	bd.BULevels = r.states[0].bd.BULevels
	bd.BUCommCount = r.states[0].bd.BUCommCount
	res.Breakdown = bd
	res.AllgatherRounds = r.states[0].rounds
	res.LevelStats = append([]trace.LevelStat(nil), r.states[0].levelStats...)
	vol := r.W.Net().Volume()
	res.CommBytes = vol.IntraBytes + vol.InterBytes
	res.RawCommBytes = vol.RawIntraBytes + vol.RawInterBytes
	res.Xport = vol.Xport
	for _, ls := range r.states {
		if ls.planeCodec != nil {
			res.Wire.Add(ls.planeCodec.Stats())
			res.Wire.Add(ls.sumCodec.Stats())
		}
	}
	if res.TimeNs > 0 {
		res.TEPS = float64(res.TraversedEdges) / (res.TimeNs / 1e9)
	}
	return res
}
