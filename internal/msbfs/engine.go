// Package msbfs implements bit-parallel multi-source BFS (MS-BFS, after
// Then et al.): up to 64 roots traverse the graph together, one bit-lane
// per root packed into a per-vertex uint64 lane word. A single adjacency
// scan tests or updates all lanes at once, and — the point of the
// exercise on a NUMA cluster — the whole batch shares ONE frontier
// allgather and ONE summary allgather per level where a lane-at-a-time
// run pays them per root per level. The engine reuses the paper's
// optimization ladder verbatim (node-shared planes, leader-based /
// parallel / compressed allgathers through internal/collective and
// internal/wire); only the overlap level is out of scope, because the
// chunk-rebuild pipeline is specialized to single-bit summaries.
//
// Determinism contract: every lane's parent tree is a pure function of
// that lane's own frontier. The top-down sweep claims owned vertices in
// ascending vertex order and processes remote claims in sender-position
// order; the bottom-up sweep applies the reference code's
// first-hit-in-adjacency-order rule independently per lane (the lane
// summary's per-lane OR keeps the short-circuit exact, with no
// cross-lane false positives). A root therefore produces the same
// parent tree whether it runs in a full batch of 64 or alone in a batch
// of 1 — the property internal/graph500's batched validation asserts.
package msbfs

import (
	"fmt"

	"numabfs/internal/bfs"
	"numabfs/internal/bitmap"
	"numabfs/internal/collective"
	"numabfs/internal/fault"
	"numabfs/internal/graph"
	"numabfs/internal/machine"
	"numabfs/internal/mpi"
	"numabfs/internal/obs"
	"numabfs/internal/omp"
	"numabfs/internal/rmat"
	"numabfs/internal/trace"
	"numabfs/internal/wire"
)

// ValidateOptions checks a bfs.Options for the batched engine: the
// shared/parallel/compressed allgather ladder applies verbatim, the
// overlap level and the crash-recovery machinery do not.
func ValidateOptions(o bfs.Options) error {
	if err := o.Validate(); err != nil {
		return err
	}
	if o.Opt > bfs.OptCompressedAllgather {
		return fmt.Errorf("msbfs: optimization level %q not supported by the batched engine (max %q)",
			o.Opt, bfs.OptCompressedAllgather)
	}
	if o.SpareRanks != 0 || o.Recovery != bfs.RecoverRerun {
		return fmt.Errorf("msbfs: crash recovery (spares/shrink) not supported by the batched engine")
	}
	return nil
}

// Runner owns one simulated multi-source BFS job. Build with NewRunner,
// call Setup once (kernel 1), then RunBatch per batch of up to 64 roots.
type Runner struct {
	W        *mpi.World
	NC       *collective.NodeComm
	AllGroup *collective.Group
	Part     graph.Partition
	Params   rmat.Params
	Opts     bfs.Options

	cfg machine.Config
	pl  machine.Placement

	// planeLayout maps rank -> lane-plane word segment (one word per
	// vertex, so plane segments follow the vertex partition directly);
	// sumLayout maps rank -> lane-summary word segment (one word per
	// granule, even split).
	planeLayout collective.Layout
	sumLayout   collective.Layout

	planeBytes int64 // full lane-plane size, for the cache model
	sumBytes   int64 // full lane-summary size

	states []*laneState

	totalEdges int64

	// SetupNs is the virtual time of distributed construction.
	SetupNs float64

	faults fault.Plan

	prebuilt   []*graph.CSR
	prebuiltNs float64
}

// laneState is the per-rank algorithm state. Unlike bfs.rankState there
// is no spare/recovery indirection: position == rank.
type laneState struct {
	r    *Runner
	pos  int
	csr  *graph.CSR
	team omp.Team

	nl  int    // lanes in the current batch
	all uint64 // mask of the current batch's lanes

	// parent[l][i] is owned vertex (Lo+i)'s parent in lane l's tree, -1
	// unvisited. vis[i] is the vertex's visited lane word — the bitwise
	// union of the 64 single-source visited maps.
	parent [][]int64
	vis    []uint64

	inPlane  *bitmap.LanePlane   // full frontier plane over all vertices
	outPlane *bitmap.LanePlane   // next frontier; only the owned segment is written
	inSum    *bitmap.LaneSummary // lane summary of inPlane

	// planeCodec/sumCodec are the compressed-allgather wire codecs (nil
	// below OptCompressedAllgather), one per collective purpose as in
	// bfs.
	planeCodec *wire.Codec
	sumCodec   *wire.Codec

	send [][]int64 // top-down owner routing: (child, parent, laneMask) triples

	visitedEdges [64]int64 // per lane: degrees of vertices this rank visited
	visitedCount [64]int64
	laneLevels   [64]int // per lane: level count at termination

	bd         trace.Breakdown
	levels     int
	rounds     int64 // plane+summary allgather boundaries this batch
	levelStats []trace.LevelStat

	rec *obs.Rank
}

// NewRunner builds a batched runner over cfg with the given placement
// policy. Options follow bfs semantics restricted by ValidateOptions.
func NewRunner(cfg machine.Config, policy machine.Policy, params rmat.Params, opts bfs.Options) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateOptions(opts); err != nil {
		return nil, err
	}
	pl := machine.PlacementFor(cfg, policy)
	w := mpi.NewWorld(cfg, pl)
	np := w.NumProcs()
	n := params.NumVertices()
	if n < int64(np)*64 {
		return nil, fmt.Errorf("msbfs: scale %d too small for %d ranks (need >= 64 vertices per rank)", params.Scale, np)
	}
	r := &Runner{
		W:      w,
		Params: params,
		Opts:   opts,
		cfg:    cfg,
		pl:     pl,
	}
	ranks := make([]int, np)
	for i := range ranks {
		ranks[i] = i
	}
	r.Part = graph.NewPartition(n, np)
	r.AllGroup = collective.NewGroup(w, ranks)
	r.NC = collective.NewNodeCommRanks(w, ranks)
	// One plane word per vertex: the plane layout IS the vertex
	// partition, so the same allgather code that moves bitmap words
	// moves lane words.
	r.planeLayout = collective.SegLayout(r.Part.Offsets())
	r.planeBytes = n * 8
	granules := (n + opts.Granularity - 1) / opts.Granularity
	if granules < 1 {
		granules = 1
	}
	r.sumLayout = collective.EvenLayout(granules, np)
	r.sumBytes = granules * 8
	r.states = make([]*laneState, np)
	return r, nil
}

// InjectFaults installs a deterministic fault plan for subsequent
// RunBatch calls: degradation, stragglers, jitter and lossy links
// compose with the batched engine exactly as with bfs. Crash plans are
// rejected — the engine has no checkpoint/recovery path.
func (r *Runner) InjectFaults(plan fault.Plan) error {
	if len(plan.Crashes) > 0 {
		return fmt.Errorf("msbfs: crash plans not supported (no checkpointing in the batched engine)")
	}
	if err := r.W.InjectFaults(plan); err != nil {
		return err
	}
	r.faults = plan
	return nil
}

// AttachObs routes the runner's world through an observability session.
// Call before Setup. Tracing never advances virtual time.
func (r *Runner) AttachObs(s *obs.Session) { r.W.AttachObs(s) }

// UsePrebuilt installs per-rank CSRs cached from an earlier build with
// identical parameters (internal/graph500's graph cache — a bfs build
// with the same scale/seed/rank count produces the same partition, so
// its CSRs are directly shareable). Call before Setup.
func (r *Runner) UsePrebuilt(csrs []*graph.CSR, setupNs float64) error {
	if len(csrs) != len(r.states) {
		return fmt.Errorf("msbfs: prebuilt CSRs for %d ranks, world has %d", len(csrs), len(r.states))
	}
	r.prebuilt = csrs
	r.prebuiltNs = setupNs
	return nil
}

// CSRs returns each rank's CSR (aliases; read-only during traversal).
// Valid after Setup; used to populate the graph cache.
func (r *Runner) CSRs() []*graph.CSR {
	out := make([]*graph.CSR, len(r.states))
	for i, ls := range r.states {
		out[i] = ls.csr
	}
	return out
}

// sharedLoc / inqLoc / sumLoc mirror bfs: the lane plane lives where
// in_queue lives, the lane summary where in_queue_summary lives.
func (r *Runner) sharedLoc() machine.Locality {
	if r.pl.ProcsPerNode == 1 {
		return r.pl.PrivateLoc
	}
	return machine.NodeShared
}

func (r *Runner) inqLoc() machine.Locality {
	if r.Opts.Opt >= bfs.OptShareInQueue {
		return r.sharedLoc()
	}
	return r.pl.PrivateLoc
}

func (r *Runner) sumLoc() machine.Locality {
	if r.Opts.Opt >= bfs.OptShareAll {
		return r.sharedLoc()
	}
	return r.pl.PrivateLoc
}

func (ls *laneState) outLoc() machine.Locality {
	if ls.r.Opts.Opt >= bfs.OptShareAll {
		return ls.r.sharedLoc()
	}
	return ls.r.pl.PrivateLoc
}

// Setup runs distributed construction (kernel 1) and allocates the
// per-rank lane state. Must be called exactly once before RunBatch.
func (r *Runner) Setup() {
	n := r.Params.NumVertices()
	granules := r.sumLayout.TotalWords()
	opt := r.Opts.Opt
	r.W.Run(func(p *mpi.Proc) {
		pos := p.Rank()
		var csr *graph.CSR
		if r.prebuilt != nil {
			csr = r.prebuilt[pos]
		} else {
			csr = graph.BuildDistributed(p, r.AllGroup, r.Part, r.Params, r.Opts.Dedup)
		}
		ls := &laneState{
			r:    r,
			pos:  pos,
			csr:  csr,
			team: omp.TeamFor(r.cfg, r.pl),
		}
		ls.parent = make([][]int64, bitmap.LaneBits)
		for l := range ls.parent {
			ls.parent[l] = make([]int64, csr.NumLocal())
		}
		ls.vis = make([]uint64, csr.NumLocal())

		// The frontier plane is shared per node from ShareInQueue on; the
		// next-frontier plane and the lane summary from ShareAll on —
		// the same ladder rungs as bfs's in_queue/out_queue/summary.
		if opt >= bfs.OptShareInQueue {
			ls.inPlane = bitmap.PlaneFromWords(p.SharedWords("ms_in_plane", n), n)
		} else {
			ls.inPlane = bitmap.NewLanePlane(n)
		}
		if opt >= bfs.OptShareAll {
			ls.outPlane = bitmap.PlaneFromWords(p.SharedWords("ms_out_plane", n), n)
			ls.inSum = bitmap.WrapLaneSummary(
				bitmap.PlaneFromWords(p.SharedWords("ms_in_summary", granules), granules),
				r.Opts.Granularity, n)
		} else {
			ls.outPlane = bitmap.NewLanePlane(n)
			ls.inSum = bitmap.NewLaneSummary(n, r.Opts.Granularity)
		}
		ls.send = make([][]int64, len(r.states))
		if opt >= bfs.OptCompressedAllgather {
			ls.planeCodec = &wire.Codec{
				Team: ls.team, Loc: r.inqLoc(),
				Force:            r.Opts.WireFormat,
				SparseMaxDensity: r.Opts.WireSparseDensity,
			}
			ls.sumCodec = &wire.Codec{
				Team: ls.team, Loc: r.sumLoc(),
				Force:            r.Opts.WireFormat,
				SparseMaxDensity: r.Opts.WireSparseDensity,
			}
		}
		r.states[pos] = ls
	})
	r.SetupNs = r.W.MaxClock()
	if r.prebuilt != nil {
		r.SetupNs = r.prebuiltNs
	}
	r.W.ResetClocks()
	r.totalEdges = 0
	for _, ls := range r.states {
		r.totalEdges += ls.csr.NumEdges()
	}
}

// HasEdgeGlobal reports whether vertex v has any incident edge (Graph500
// root selection).
func (r *Runner) HasEdgeGlobal(v int64) bool {
	ls := r.states[r.Part.Owner(v)]
	return ls.csr.HasEdge(v)
}

// LaneParents assembles lane l's global parent array (length
// NumVertices; -1 unvisited). Valid after RunBatch, until the next one.
func (r *Runner) LaneParents(l int) []int64 {
	out := make([]int64, r.Params.NumVertices())
	for pos, ls := range r.states {
		lo, _ := r.Part.Range(pos)
		copy(out[lo:], ls.parent[l])
	}
	return out
}

// visBytes is the visited lane-word footprint for the cache model (the
// structure every claim probes).
func (ls *laneState) visBytes() int64 { return ls.csr.NumLocal() * 8 }
