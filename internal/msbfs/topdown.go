package msbfs

import (
	"numabfs/internal/machine"
	"numabfs/internal/mpi"
	"numabfs/internal/trace"
)

// tdChunk is the dynamic-schedule granularity (in edges) of the
// top-down sweep, matching bfs.
const tdChunk = 256

// topDownSweep explores the top-down lanes' frontiers in one pass over
// the owned in-plane segment: every owned vertex whose lane word
// intersects tdMask expands once, and each neighbour is claimed for ALL
// of those lanes together — locally when this rank owns it, otherwise
// routed to its owner as a (child, parent, laneMask) triple. Owned
// vertices are scanned in ascending order and received triples in
// sender-position order, so the subsequence of claims carrying any one
// lane is exactly the claim sequence a batch-1 run of that lane
// produces — the bit-identity invariant.
func (ls *laneState) topDownSweep(p *mpi.Proc, tdMask uint64, nfL, mfL *[64]int64) {
	r := ls.r
	for i := range ls.send {
		ls.send[i] = ls.send[i][:0]
	}
	me := ls.pos
	lo, hi := ls.csr.Lo, ls.csr.Hi
	ownedN := hi - lo
	var fverts, edges, localTries, remote int64
	for v := lo; v < hi; v++ {
		w := ls.inPlane.Word(v) & tdMask
		if w == 0 {
			continue
		}
		fverts++
		for _, u := range ls.csr.Neighbors(v) {
			edges++
			if o := r.Part.Owner(u); o == me {
				localTries++
				ls.claim(u, v, w, nfL, mfL)
			} else {
				remote++
				ls.send[o] = append(ls.send[o], u, v, int64(w))
			}
		}
	}
	load := machine.PhaseLoad{
		Random: []machine.Access{
			// Frontier rows start at random CSR positions.
			{Count: fverts, StructBytes: ls.csr.BytesApprox(), Loc: r.pl.GraphLoc},
			// Local claims probe the visited lane words at random offsets.
			{Count: localTries, StructBytes: ls.visBytes(), Loc: r.pl.PrivateLoc},
		},
		// Owned in-plane scan + adjacency stream + triple staging.
		SeqBytes: ownedN*8 + edges*8 + remote*24,
		SeqLoc:   r.pl.GraphLoc,
		CPUOps:   ownedN + edges*3,
	}
	items := edges
	if items < ownedN {
		items = ownedN // the plane scan itself when frontiers are tiny
	}
	ns := ls.team.ForBalanced(items, tdChunk, load)
	tc := p.Clock()
	p.Compute(ns)
	ls.charge(trace.TDComp, tc, p.Clock())

	ls.stallBarrier(p, trace.TDComm)

	// Route discovered triples to their owners — one alltoallv for the
	// whole batch where sequential runs pay one per lane.
	t0, x0 := p.Clock(), p.XportNs()
	recv := r.AllGroup.AlltoallvInt64(p, ls.send)
	ls.chargeComm(p, trace.TDComm, t0, x0)

	// Process received triples in sender-position order (the owner
	// re-checks visitation lane by lane, as bfs does bit by bit).
	var triples int64
	for src, vec := range recv {
		if src == me {
			continue
		}
		for k := 0; k+2 < len(vec); k += 3 {
			triples++
			ls.claim(vec[k], vec[k+1], uint64(vec[k+2])&tdMask, nfL, mfL)
		}
	}
	proc := machine.PhaseLoad{
		Random: []machine.Access{
			{Count: triples, StructBytes: ls.visBytes(), Loc: r.pl.PrivateLoc},
		},
		SeqBytes: triples * 24,
		SeqLoc:   r.pl.PrivateLoc,
		CPUOps:   triples * 3,
	}
	ns = ls.team.ForBalanced(triples, tdChunk, proc)
	tc = p.Clock()
	p.Compute(ns)
	ls.charge(trace.TDComp, tc, p.Clock())
}
