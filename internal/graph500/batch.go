package graph500

import (
	"fmt"

	"numabfs/internal/msbfs"
)

// NewBatchRunner builds a batched MS-BFS runner under a benchmark
// Config, wiring the same graph cache and observability recorder the
// single-root path uses. The cache key matches Run's exactly — the
// batched engine partitions vertices identically — so an experiment
// mixing batched and sequential cells builds each graph once and both
// engines traverse bit-identical CSRs. NumRoots and Validate are
// ignored (batch size and validation are the caller's; see
// ValidateBatch). The runner is returned Setup and ready for RunBatch.
func NewBatchRunner(cfg Config) (*msbfs.Runner, error) {
	runner, err := msbfs.NewRunner(cfg.Machine, cfg.Policy, cfg.Params, cfg.Opts)
	if err != nil {
		return nil, err
	}
	if cfg.Obs != nil {
		label := fmt.Sprintf("msbfs %s %s g=%d scale=%d nodes=%d",
			cfg.Policy, cfg.Opts.Opt, cfg.Opts.Granularity,
			cfg.Params.Scale, cfg.Machine.Nodes)
		sess := cfg.Obs.NewSession(label)
		if cfg.SampleNs > 0 {
			sess.EnableSampling(cfg.SampleNs)
		}
		runner.AttachObs(sess)
	}
	if cfg.Cache != nil {
		k := cacheKeyOf(cfg)
		e, leader := cfg.Cache.acquire(k)
		if leader {
			committed := false
			defer func() {
				if !committed {
					cfg.Cache.abandon(k, e)
				}
			}()
			runner.Setup()
			cfg.Cache.commit(e, runner.CSRs(), runner.SetupNs)
			committed = true
		} else {
			if csrs, setupNs, ok := e.wait(); ok {
				if err := runner.UsePrebuilt(csrs, setupNs); err != nil {
					return nil, err
				}
			}
			runner.Setup()
		}
	} else {
		runner.Setup()
	}
	if cfg.Faults != nil {
		if err := runner.InjectFaults(*cfg.Faults); err != nil {
			return nil, err
		}
	}
	return runner, nil
}

// ValidateBatch checks every lane of the last RunBatch on r against the
// Graph500 specification, each lane's parent tree validated
// independently (the batched engine shares sweeps and collectives
// across lanes, but each lane's tree must stand on its own exactly as a
// sequential run's would).
func ValidateBatch(r *msbfs.Runner, roots []int64) error {
	csrs := r.CSRs()
	for l, root := range roots {
		if err := validateTree(r.LaneParents(l), root, csrs); err != nil {
			return fmt.Errorf("lane %d (root %d): %w", l, root, err)
		}
	}
	return nil
}

// ValidateBatchIdentity asserts the batched engine's determinism
// contract: each lane's parent tree from the last RunBatch(roots) must
// be bit-identical to the tree the SAME engine produces traversing that
// root alone (a batch of one — the sequential counterpart at the same
// optimization level). The check runs len(roots) single-root batches on
// r, then re-runs the full batch so the runner's lane state is restored
// for the caller.
func ValidateBatchIdentity(r *msbfs.Runner, roots []int64) error {
	batched := make([][]int64, len(roots))
	for l := range roots {
		batched[l] = r.LaneParents(l)
	}
	for l, root := range roots {
		r.RunBatch([]int64{root})
		solo := r.LaneParents(0)
		for v := range solo {
			if solo[v] != batched[l][v] {
				r.RunBatch(roots)
				return fmt.Errorf("lane %d (root %d) vertex %d: batched parent %d, sequential parent %d",
					l, root, v, batched[l][v], solo[v])
			}
		}
	}
	r.RunBatch(roots)
	return nil
}

// LaneLevels reconstructs lane l's global level array from the batched
// runner's parent trees (-1 unreached), for tests comparing against the
// sequential reference BFS.
func LaneLevels(r *msbfs.Runner, l int, root int64) []int64 {
	parent := r.LaneParents(l)
	level := make([]int64, len(parent))
	for i := range level {
		level[i] = -1
	}
	if parent[root] < 0 {
		return level
	}
	level[root] = 0
	for changed := true; changed; {
		changed = false
		for v := range parent {
			if level[v] >= 0 || parent[v] < 0 {
				continue
			}
			if pl := level[parent[v]]; pl >= 0 {
				level[v] = pl + 1
				changed = true
			}
		}
	}
	return level
}
