package graph500

import (
	"fmt"
	"sort"

	"numabfs/internal/bfs"
	"numabfs/internal/graph"
)

// ValidateRun checks the BFS tree left in a runner's rank states against
// the Graph500 specification:
//
//  1. the root's parent is itself;
//  2. every tree edge (v, parent[v]) exists in the graph;
//  3. levels derived from the parent tree are consistent (each vertex is
//     exactly one level below its parent) and the tree is acyclic;
//  4. every graph edge joins vertices whose levels differ by at most
//     one, and never joins a visited vertex to an unvisited one (so the
//     visited set is exactly the root's connected component).
func ValidateRun(r *bfs.Runner, root int64) error {
	n := r.Params.NumVertices()
	parent := make([]int64, n)
	for rank, pa := range r.ParentArrays() {
		lo, _ := r.Part.Range(rank)
		copy(parent[lo:lo+int64(len(pa))], pa)
	}
	csrs := make([]*graph.CSR, len(r.ParentArrays()))
	for pos := range csrs {
		csrs[pos] = r.State(pos).CSR
	}
	return validateTree(parent, root, csrs)
}

// validateTree is the specification core shared by the single-root and
// the batched (per-lane) validators: parent is the global parent array,
// csrs the distributed graph (per-member edge checks run on positions,
// not world ranks: spares own nothing and a shrink removes a position).
func validateTree(parent []int64, root int64, csrs []*graph.CSR) error {
	n := int64(len(parent))
	if parent[root] != root {
		return fmt.Errorf("root %d has parent %d, want itself", root, parent[root])
	}

	// Derive levels by relaxation; depth passes suffice and a pass
	// without progress with unvisited-but-parented vertices means a
	// cycle or orphaned subtree.
	level := make([]int64, n)
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	pending := int64(0)
	for v := int64(0); v < n; v++ {
		if parent[v] >= 0 && v != root {
			pending++
		}
	}
	for pending > 0 {
		progressed := int64(0)
		for v := int64(0); v < n; v++ {
			if level[v] >= 0 || parent[v] < 0 {
				continue
			}
			if pl := level[parent[v]]; pl >= 0 {
				level[v] = pl + 1
				progressed++
			}
		}
		if progressed == 0 {
			return fmt.Errorf("%d vertices have parents but are unreachable from the root (cycle in tree)", pending)
		}
		pending -= progressed
	}

	for _, csr := range csrs {
		lo, hi := csr.Lo, csr.Hi
		for v := lo; v < hi; v++ {
			row := csr.Neighbors(v)
			if pv := parent[v]; pv >= 0 && v != root {
				// Rule 2: the tree edge must be a graph edge.
				i := sort.Search(len(row), func(i int) bool { return row[i] >= pv })
				if i >= len(row) || row[i] != pv {
					return fmt.Errorf("tree edge (%d, %d) is not a graph edge", v, pv)
				}
				// Rule 3: exactly one level apart.
				if level[v] != level[pv]+1 {
					return fmt.Errorf("vertex %d at level %d but parent %d at level %d", v, level[v], pv, level[pv])
				}
			}
			// Rule 4: graph edges span at most one level; visited and
			// unvisited vertices are never adjacent.
			for _, u := range row {
				lv, lu := level[v], level[u]
				switch {
				case lv < 0 && lu < 0:
					// both outside the component: fine
				case lv < 0 || lu < 0:
					return fmt.Errorf("edge (%d, %d) joins visited and unvisited vertices (levels %d, %d)", v, u, lv, lu)
				case lv-lu > 1 || lu-lv > 1:
					return fmt.Errorf("edge (%d, %d) spans levels %d and %d", v, u, lv, lu)
				}
			}
		}
	}
	return nil
}

// Levels reconstructs the global level array from a runner's parent
// arrays (for tests comparing against the sequential reference BFS).
// Unreached vertices get -1.
func Levels(r *bfs.Runner, root int64) []int64 {
	n := r.Params.NumVertices()
	parent := make([]int64, n)
	for rank, pa := range r.ParentArrays() {
		lo, _ := r.Part.Range(rank)
		copy(parent[lo:lo+int64(len(pa))], pa)
	}
	level := make([]int64, n)
	for i := range level {
		level[i] = -1
	}
	if parent[root] < 0 {
		return level
	}
	level[root] = 0
	for changed := true; changed; {
		changed = false
		for v := int64(0); v < n; v++ {
			if level[v] >= 0 || parent[v] < 0 {
				continue
			}
			if pl := level[parent[v]]; pl >= 0 {
				level[v] = pl + 1
				changed = true
			}
		}
	}
	return level
}
