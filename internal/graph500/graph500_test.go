package graph500

import (
	"strings"
	"testing"

	"numabfs/internal/bfs"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
)

func testConfig(scale int) Config {
	cfg := machine.Scaled(scale, scale+12)
	cfg.Nodes = 2
	cfg.SocketsPerNode = 4
	cfg.WeakNode = -1
	return Config{
		Machine:  cfg,
		Policy:   machine.PPN8Bind,
		Params:   rmat.Graph500(scale),
		Opts:     bfs.DefaultOptions(),
		NumRoots: 3,
		Validate: true,
	}
}

func TestRunValidatesAndAggregates(t *testing.T) {
	res, err := Run(testConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRoot) != 3 {
		t.Fatalf("PerRoot = %d", len(res.PerRoot))
	}
	if res.HarmonicTEPS <= 0 || res.MeanTEPS <= 0 {
		t.Fatalf("TEPS: %+v", res)
	}
	if res.HarmonicTEPS > res.MeanTEPS+1e-6 {
		t.Fatalf("harmonic %g > mean %g", res.HarmonicTEPS, res.MeanTEPS)
	}
	if res.MinTEPS > res.MaxTEPS {
		t.Fatalf("min %g > max %g", res.MinTEPS, res.MaxTEPS)
	}
	if res.SetupNs <= 0 {
		t.Fatal("construction time missing")
	}
	if res.Breakdown.Total() <= 0 {
		t.Fatal("breakdown missing")
	}
	if !strings.Contains(res.String(), "harmonic TEPS") {
		t.Fatalf("String() = %q", res.String())
	}
}

func TestRunWithSingleRankPerNode(t *testing.T) {
	// ppn=1 degenerates every node-aware path (leader == only rank,
	// shared == private); the harness must still validate.
	cfg := testConfig(12)
	cfg.Policy = machine.PPN1Interleave
	for _, opt := range []bfs.Opt{bfs.OptOriginal, bfs.OptShareAll, bfs.OptParAllgather} {
		cfg.Opts.Opt = opt
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("opt %s: %v", opt, err)
		}
		if res.HarmonicTEPS <= 0 {
			t.Fatalf("opt %s: TEPS = %g", opt, res.HarmonicTEPS)
		}
	}
}

func TestRunDefaultsRoots(t *testing.T) {
	cfg := testConfig(12)
	cfg.NumRoots = 0
	cfg.Validate = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRoot) != DefaultRoots {
		t.Fatalf("defaulted to %d roots, want %d", len(res.PerRoot), DefaultRoots)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := testConfig(12)
	cfg.Opts.Granularity = 63
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected error for bad granularity")
	}
}

func TestValidatorCatchesCorruptedTrees(t *testing.T) {
	cfg := testConfig(12)
	runner, err := bfs.NewRunner(cfg.Machine, cfg.Policy, cfg.Params, cfg.Opts)
	if err != nil {
		t.Fatal(err)
	}
	runner.Setup()
	root := cfg.Params.Roots(1, runner.HasEdgeGlobal)[0]
	runner.RunRoot(root)
	if err := ValidateRun(runner, root); err != nil {
		t.Fatalf("genuine tree rejected: %v", err)
	}

	// Corruption 1: break the root's self-parent.
	parents := runner.ParentArrays()
	own := cfg.Machine.Nodes * cfg.Machine.SocketsPerNode
	_ = own
	rootRank := runner.Part.Owner(root)
	lo, _ := runner.Part.Range(rootRank)
	orig := parents[rootRank][root-lo]
	parents[rootRank][root-lo] = -1
	if err := ValidateRun(runner, root); err == nil {
		t.Fatal("validator accepted a rootless tree")
	}
	parents[rootRank][root-lo] = orig

	// Corruption 2: point some visited vertex at a non-neighbour.
	found := false
corrupt:
	for rank, pa := range parents {
		rlo, _ := runner.Part.Range(rank)
		for i := range pa {
			v := rlo + int64(i)
			if pa[i] >= 0 && v != root && pa[i] != v {
				// Pick a parent that cannot be a neighbour of v: itself.
				pa[i] = v
				found = true
				break corrupt
			}
		}
	}
	if !found {
		t.Fatal("no vertex to corrupt")
	}
	if err := ValidateRun(runner, root); err == nil {
		t.Fatal("validator accepted a self-parented non-root vertex")
	}
}

func TestValidatorCatchesUnreachedNeighbour(t *testing.T) {
	// Rule 4: a visited vertex adjacent to an unvisited one means the
	// BFS stopped short of the component's edge — un-visiting one
	// interior vertex must be rejected.
	cfg := testConfig(12)
	runner, err := bfs.NewRunner(cfg.Machine, cfg.Policy, cfg.Params, cfg.Opts)
	if err != nil {
		t.Fatal(err)
	}
	runner.Setup()
	root := cfg.Params.Roots(1, runner.HasEdgeGlobal)[0]
	runner.RunRoot(root)

	// Un-visit some non-root vertex that has visited neighbours.
	parents := runner.ParentArrays()
	for rank, pa := range parents {
		lo, _ := runner.Part.Range(rank)
		for i := range pa {
			v := lo + int64(i)
			if pa[i] >= 0 && v != root {
				pa[i] = -1
				if err := ValidateRun(runner, root); err == nil {
					t.Fatal("validator accepted a hole in the visited set")
				}
				return
			}
		}
	}
	t.Fatal("no vertex to corrupt")
}

func TestLevelsMatchesRelaxation(t *testing.T) {
	cfg := testConfig(12)
	runner, err := bfs.NewRunner(cfg.Machine, cfg.Policy, cfg.Params, cfg.Opts)
	if err != nil {
		t.Fatal(err)
	}
	runner.Setup()
	root := cfg.Params.Roots(1, runner.HasEdgeGlobal)[0]
	res := runner.RunRoot(root)
	level := Levels(runner, root)
	var visited int64
	for _, l := range level {
		if l >= 0 {
			visited++
		}
	}
	if visited != res.Visited {
		t.Fatalf("Levels sees %d visited, runner reports %d", visited, res.Visited)
	}
	if level[root] != 0 {
		t.Fatalf("root level = %d", level[root])
	}
}
