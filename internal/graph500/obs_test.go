package graph500

import (
	"encoding/json"
	"math"
	"testing"

	"numabfs/internal/obs"
	"numabfs/internal/trace"
)

// TestObsDoesNotChangeResults pins the zero-cost claim: attaching a
// recorder must leave every benchmark number bit-identical.
func TestObsDoesNotChangeResults(t *testing.T) {
	base, err := Run(testConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(12)
	cfg.Obs = obs.NewRecorder()
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.HarmonicTEPS != traced.HarmonicTEPS || base.MeanTimeNs != traced.MeanTimeNs ||
		base.SetupNs != traced.SetupNs {
		t.Fatalf("tracing changed results: %+v vs %+v", base, traced)
	}
	if base.Breakdown != traced.Breakdown {
		t.Fatalf("tracing changed the breakdown: %+v vs %+v", base.Breakdown, traced.Breakdown)
	}
	for i := range base.PerRoot {
		if base.PerRoot[i].TimeNs != traced.PerRoot[i].TimeNs {
			t.Fatalf("root %d: TimeNs %g vs %g", i,
				base.PerRoot[i].TimeNs, traced.PerRoot[i].TimeNs)
		}
	}
}

// TestObsReportMatchesBreakdown checks the two independent accountings
// of the same run against each other: the span stream, aggregated by
// the report, must reproduce the hand-maintained trace.Breakdown.
func TestObsReportMatchesBreakdown(t *testing.T) {
	cfg := testConfig(12)
	cfg.Obs = obs.NewRecorder()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := cfg.Obs.BuildReport()
	if len(rep.Sessions) != 1 {
		t.Fatalf("sessions = %d", len(rep.Sessions))
	}
	sr := rep.Sessions[0]
	ranks := cfg.Machine.Nodes * cfg.Machine.SocketsPerNode
	if sr.Ranks != ranks {
		t.Fatalf("ranks = %d, want %d", sr.Ranks, ranks)
	}
	// PhaseNs is summed over roots; Result.Breakdown is the per-root
	// mean. The two sum float sequences in different orders (and span
	// endpoints round through the clock), so compare with a relative
	// tolerance.
	roots := float64(cfg.NumRoots)
	for p := trace.Phase(0); p < trace.NumPhases; p++ {
		got := sr.PhaseNs[p.String()] / roots
		want := res.Breakdown.Ns[p]
		if math.Abs(got-want) > 1e-6*(math.Abs(want)+1) {
			t.Errorf("%s: report %g, breakdown %g", p, got, want)
		}
	}
	// Every level of the deepest traversal must appear in the
	// critical-path table, each with a bounding rank and phase.
	maxLevels := 0
	for _, rr := range res.PerRoot {
		if rr.Levels > maxLevels {
			maxLevels = rr.Levels
		}
	}
	if len(sr.Levels) != maxLevels {
		t.Fatalf("critical-path rows = %d, want %d", len(sr.Levels), maxLevels)
	}
	for _, l := range sr.Levels {
		if l.BoundRank < 0 || l.BoundRank >= ranks {
			t.Errorf("level %d: bound rank %d out of range", l.Level, l.BoundRank)
		}
		if l.BoundPhase == "" {
			t.Errorf("level %d: no bound phase", l.Level)
		}
		if l.MeanNs <= 0 {
			t.Errorf("level %d: mean %g", l.Level, l.MeanNs)
		}
	}
	// The simulator's invariant: multi-rank BFS moves real bytes.
	var msgs int64
	for _, n := range sr.Msgs {
		msgs += n
	}
	if msgs == 0 {
		t.Fatal("no point-to-point messages counted")
	}
	if sr.BarrierCount == 0 {
		t.Fatal("no barrier waits counted")
	}
}

// TestObsTraceDeterministicAcrossRuns pins the exporter's end-to-end
// determinism: two identically seeded benchmark runs must export
// byte-identical Chrome traces with one named track per rank and a
// phase span for every phase of every level.
func TestObsTraceDeterministicAcrossRuns(t *testing.T) {
	runTrace := func() ([]byte, *Result) {
		cfg := testConfig(12)
		cfg.Obs = obs.NewRecorder()
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := cfg.Obs.ChromeTraceJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data, res
	}
	a, res := runTrace()
	b, _ := runTrace()
	if string(a) != string(b) {
		t.Fatal("same-seed runs exported different trace bytes")
	}
	if !json.Valid(a) {
		t.Fatal("invalid trace JSON")
	}

	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &tr); err != nil {
		t.Fatal(err)
	}
	ranks := testConfig(12).Machine.Nodes * testConfig(12).Machine.SocketsPerNode
	tracks := 0
	levelPhases := make(map[int]map[string]bool)
	for _, e := range tr.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			tracks++
		}
		if e.Ph == "X" && e.Cat == obs.CatPhase {
			lv := int(e.Args["level"].(float64))
			if levelPhases[lv] == nil {
				levelPhases[lv] = make(map[string]bool)
			}
			levelPhases[lv][e.Name] = true
		}
	}
	if tracks != ranks {
		t.Fatalf("named tracks = %d, want one per rank (%d)", tracks, ranks)
	}
	maxLevels := 0
	for _, rr := range res.PerRoot {
		if rr.Levels > maxLevels {
			maxLevels = rr.Levels
		}
	}
	for lv := 1; lv <= maxLevels; lv++ {
		if len(levelPhases[lv]) == 0 {
			t.Errorf("level %d has no phase spans", lv)
		}
	}
	// Both computation and communication phases must be represented
	// somewhere in the trace.
	all := make(map[string]bool)
	for _, m := range levelPhases {
		for name := range m {
			all[name] = true
		}
	}
	for _, p := range []trace.Phase{trace.TDComp, trace.TDComm, trace.BUComp, trace.BUComm} {
		if !all[p.String()] {
			t.Errorf("no %s spans in trace", p)
		}
	}
}
