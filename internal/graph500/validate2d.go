package graph500

import (
	"fmt"

	"numabfs/internal/bfs2d"
)

// ValidateRun2D checks the BFS tree left in a 2-D runner's rank states
// against the same Graph500 rule set as ValidateRun:
//
//  1. the root's parent is itself;
//  2. every tree edge (v, parent[v]) exists in the graph;
//  3. levels derived from the parent tree are consistent (each vertex is
//     exactly one level below its parent) and the tree is acyclic;
//  4. every graph edge joins vertices whose levels differ by at most
//     one, and never joins a visited vertex to an unvisited one (so the
//     visited set is exactly the root's connected component).
//
// Rule 2 consults the grid rank storing the (v, parent) adjacency; rule
// 4 walks every rank's stored edges, so each undirected edge is checked
// in both directions (they live on different grid ranks).
func ValidateRun2D(r *bfs2d.Runner, root int64) error {
	parent := r.Parents()
	n := int64(len(parent))
	if parent[root] != root {
		return fmt.Errorf("root %d has parent %d, want itself", root, parent[root])
	}

	// Derive levels by relaxation; depth passes suffice and a pass
	// without progress with unvisited-but-parented vertices means a
	// cycle or orphaned subtree.
	level := make([]int64, n)
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	pending := int64(0)
	for v := int64(0); v < n; v++ {
		if parent[v] >= 0 && v != root {
			pending++
		}
	}
	for pending > 0 {
		progressed := int64(0)
		for v := int64(0); v < n; v++ {
			if level[v] >= 0 || parent[v] < 0 {
				continue
			}
			if pl := level[parent[v]]; pl >= 0 {
				level[v] = pl + 1
				progressed++
			}
		}
		if progressed == 0 {
			return fmt.Errorf("%d vertices have parents but are unreachable from the root (cycle in tree)", pending)
		}
		pending -= progressed
	}

	// Rules 2 and 3 over the parent tree.
	for v := int64(0); v < n; v++ {
		pv := parent[v]
		if pv < 0 || v == root {
			continue
		}
		if !r.HasEdge(v, pv) {
			return fmt.Errorf("tree edge (%d, %d) is not a graph edge", v, pv)
		}
		if level[v] != level[pv]+1 {
			return fmt.Errorf("vertex %d at level %d but parent %d at level %d", v, level[v], pv, level[pv])
		}
	}

	// Rule 4 over every stored directed adjacency.
	var err error
	for rank := 0; rank < r.Grid.R*r.Grid.C && err == nil; rank++ {
		r.EachStoredEdge(rank, func(u, v int64) {
			if err != nil {
				return
			}
			lu, lv := level[u], level[v]
			switch {
			case lu < 0 && lv < 0:
				// both outside the component: fine
			case lu < 0 || lv < 0:
				err = fmt.Errorf("edge (%d, %d) joins visited and unvisited vertices (levels %d, %d)", u, v, lu, lv)
			case lu-lv > 1 || lv-lu > 1:
				err = fmt.Errorf("edge (%d, %d) spans levels %d and %d", u, v, lu, lv)
			}
		})
	}
	return err
}
