package graph500

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"numabfs/internal/bfs"
	"numabfs/internal/fault"
	"numabfs/internal/machine"
	"numabfs/internal/obs"
	"numabfs/internal/rmat"
)

// diffCleanVsShrink runs the same root twice on the 1-D hybrid engine —
// a clean run as baseline A, and as candidate B the identical
// configuration with one rank killed permanently mid-iteration and the
// world shrunk onto the survivors — and returns the obsdiff between
// them plus the shrink run's result. The profile is the recovery bill
// itemized per phase.
func diffCleanVsShrink(t *testing.T) (*obs.RunDiff, bfs.RootResult) {
	t.Helper()
	const scale = 12
	cfg := machine.Scaled(scale, scale+12)
	cfg.Nodes = 2
	cfg.SocketsPerNode = 4
	cfg.WeakNode = -1
	params := rmat.Graph500(scale)
	opts := bfs.DefaultOptions()
	opts.Opt = bfs.OptParAllgather

	recA := obs.NewRecorder()
	rA, err := bfs.NewRunner(cfg, machine.PPN8Bind, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	rA.AttachObs(recA.NewSession("clean"))
	rA.Setup()
	root := params.Roots(1, rA.HasEdgeGlobal)[0]
	clean := rA.RunRoot(root)

	opts.Recovery = bfs.RecoverShrink
	recB := obs.NewRecorder()
	rB, err := bfs.NewRunner(cfg, machine.PPN8Bind, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	rB.AttachObs(recB.NewSession("shrink"))
	rB.Setup()
	plan := fault.Plan{Crashes: []fault.Crash{
		{Rank: 1, AtNs: 0.5 * clean.TimeNs, Permanent: true},
	}}
	if err := rB.InjectFaults(plan); err != nil {
		t.Fatal(err)
	}
	res := rB.RunRoot(root)
	if len(res.Faults) != 1 || res.Epoch != 1 {
		t.Fatalf("shrink run survived %d fault(s) on epoch %d, want 1 on epoch 1", len(res.Faults), res.Epoch)
	}

	return obs.DiffRuns(recA.Dump(), recB.Dump()), res
}

// recoveryAttribution renders the deterministic core of the clean-vs-
// shrink diff: the recovery and re-own phases (charged analytically at
// rollback, so bit-stable) and the run's fault/epoch summary. The rest
// of the diff — the doomed attempt's partial compute spans and byte
// counters — is real but host-racy (how far each rank got before the
// abort released it depends on the host schedule; see the fault-
// injection notes in README.md), so it stays out of the golden.
func recoveryAttribution(d *obs.RunDiff, res bfs.RootResult) string {
	var b strings.Builder
	s := d.Sessions[0]
	fmt.Fprintf(&b, "== %s -> %s: recovery attribution ==\n", s.LabelA, s.LabelB)
	for _, want := range []string{"recovery", "reown"} {
		for _, p := range s.Phases {
			if p.Name == want {
				fmt.Fprintf(&b, "%-10s A %.4fms   B %.4fms   delta %+.4fms\n",
					p.Name, p.ANs/1e6, p.BNs/1e6, p.DeltaNs/1e6)
			}
		}
	}
	fmt.Fprintf(&b, "faults %d  epoch %d  degraded virtual time %.4fms\n",
		len(res.Faults), res.Epoch, res.TimeNs/1e6)
	return b.String()
}

const diffShrinkGolden = "diff_shrink_golden.txt"

// TestObsdiffCleanVsShrinkGolden pins the deterministic recovery
// attribution of the clean-vs-shrink run diff byte for byte: after a
// permanent death the entire detection + rollback + restore bill lands
// in the recovery phase and the absorber's partition re-fetch in the
// re-own phase — both zero in the clean run. Regenerate with:
//
//	OBS_UPDATE_GOLDEN=1 go test ./internal/graph500 -run TestObsdiffCleanVsShrinkGolden
func TestObsdiffCleanVsShrinkGolden(t *testing.T) {
	d, res := diffCleanVsShrink(t)
	got := recoveryAttribution(d, res)
	for _, phase := range []string{"recovery", "reown"} {
		if !strings.Contains(got, phase) {
			t.Errorf("diff does not attribute any delta to the %s phase:\n%s", phase, got)
		}
	}
	// The attributed phases must be new cost: absent from the clean run,
	// paid by the shrink run.
	for _, p := range d.Sessions[0].Phases {
		if (p.Name == "recovery" || p.Name == "reown") && (p.ANs != 0 || p.BNs <= 0) {
			t.Errorf("phase %s: A=%g B=%g, want A=0 and B>0", p.Name, p.ANs, p.BNs)
		}
	}
	path := filepath.Join("testdata", diffShrinkGolden)
	if os.Getenv("OBS_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with OBS_UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("clean vs shrink recovery attribution drifted from golden %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestObsdiffCleanVsShrinkDeterministic: the recovery attribution must
// be invariant under host parallelism, like the engines themselves.
func TestObsdiffCleanVsShrinkDeterministic(t *testing.T) {
	d1, r1 := diffCleanVsShrink(t)
	a := recoveryAttribution(d1, r1)
	old := runtime.GOMAXPROCS(1)
	d2, r2 := diffCleanVsShrink(t)
	b := recoveryAttribution(d2, r2)
	runtime.GOMAXPROCS(old)
	if a != b {
		t.Fatalf("recovery attribution differs under GOMAXPROCS=1:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}
