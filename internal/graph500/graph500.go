// Package graph500 implements the Graph500 evaluation methodology the
// paper adopts: generate an R-MAT graph at a given scale (kernel 0),
// build the distributed graph (kernel 1), run BFS from 64 random roots
// with at least one incident edge (kernel 2), validate each BFS tree
// against the specification, and report the harmonic mean of per-root
// TEPS.
package graph500

import (
	"fmt"

	"numabfs/internal/bfs"
	"numabfs/internal/fault"
	"numabfs/internal/machine"
	"numabfs/internal/obs"
	"numabfs/internal/rmat"
	"numabfs/internal/stats"
	"numabfs/internal/trace"
)

// DefaultRoots is the number of BFS iterations the spec prescribes.
const DefaultRoots = 64

// Config describes one benchmark run.
type Config struct {
	Machine  machine.Config
	Policy   machine.Policy
	Params   rmat.Params
	Opts     bfs.Options
	NumRoots int  // 0 means DefaultRoots
	Validate bool // validate every BFS tree against the spec

	// Obs, when non-nil, records the run into a new labeled session on
	// the recorder: per-rank span timelines, collective spans, and
	// communication counters. Tracing never changes results.
	Obs *obs.Recorder

	// SampleNs, when positive, additionally enables the session's
	// virtual-time gauge grid (internal/obs/sample.go) at that bucket
	// pitch: frontier size and density, link bytes in flight, retransmit
	// backlog, checkpoint debt, exposed collective waits. Requires Obs;
	// sampling never changes results either.
	SampleNs float64

	// Faults, when non-nil, is the deterministic perturbation plan
	// (internal/fault) applied to every BFS iteration: degraded links,
	// stragglers, jitter, and rank crashes survived through checkpoint
	// recovery. Construction (kernel 1) runs unperturbed.
	Faults *fault.Plan

	// Cache, when non-nil, reuses constructed graphs across runs with
	// identical (machine, policy, R-MAT params, dedup): kernel 1 is
	// skipped on a hit and the cached build's SetupNs reported, so
	// results are bit-identical either way. Experiment sweeps share one
	// cache across their cells (bfsbench).
	Cache *GraphCache
}

// Result aggregates a benchmark run.
type Result struct {
	Config       Config
	HarmonicTEPS float64
	MeanTEPS     float64
	MinTEPS      float64
	MaxTEPS      float64
	MeanTimeNs   float64
	SetupNs      float64
	PerRoot      []bfs.RootResult
	// Breakdown is the per-phase time averaged over roots and ranks —
	// the quantity Figs. 11-14 report.
	Breakdown trace.Breakdown
	// Faults is the total number of rank crashes survived via checkpoint
	// recovery across all roots.
	Faults int
	// MTTRNs is the summed modelled repair time of those crashes
	// (detection delay plus re-own transfer; see bfs.RootResult.MTTRNs).
	MTTRNs float64
}

// Run executes the benchmark.
func Run(cfg Config) (*Result, error) {
	if cfg.NumRoots == 0 {
		cfg.NumRoots = DefaultRoots
	}
	runner, err := bfs.NewRunner(cfg.Machine, cfg.Policy, cfg.Params, cfg.Opts)
	if err != nil {
		return nil, err
	}
	if cfg.Obs != nil {
		label := fmt.Sprintf("%s %s g=%d scale=%d nodes=%d",
			cfg.Policy, cfg.Opts.Opt, cfg.Opts.Granularity,
			cfg.Params.Scale, cfg.Machine.Nodes)
		sess := cfg.Obs.NewSession(label)
		if cfg.SampleNs > 0 {
			sess.EnableSampling(cfg.SampleNs)
		}
		runner.AttachObs(sess)
	}
	if cfg.Cache != nil {
		k := cacheKeyOf(cfg)
		e, leader := cfg.Cache.acquire(k)
		if leader {
			// Build and publish; if anything below panics before the
			// commit, release the claim so waiting followers don't hang.
			committed := false
			defer func() {
				if !committed {
					cfg.Cache.abandon(k, e)
				}
			}()
			runner.Setup()
			cfg.Cache.commit(e, runner.CSRs(), runner.SetupNs)
			committed = true
		} else {
			if csrs, setupNs, ok := e.wait(); ok {
				if err := runner.UsePrebuilt(csrs, setupNs); err != nil {
					return nil, err
				}
			}
			runner.Setup()
		}
	} else {
		runner.Setup()
	}
	if cfg.Faults != nil {
		if err := runner.InjectFaults(*cfg.Faults); err != nil {
			return nil, err
		}
	}
	roots := cfg.Params.Roots(cfg.NumRoots, runner.HasEdgeGlobal)

	res := &Result{Config: cfg, SetupNs: runner.SetupNs}
	teps := make([]float64, 0, len(roots))
	times := make([]float64, 0, len(roots))
	for _, root := range roots {
		rr := runner.RunRoot(root)
		if cfg.Validate {
			if err := ValidateRun(runner, root); err != nil {
				return nil, fmt.Errorf("graph500: root %d: %w", root, err)
			}
		}
		res.PerRoot = append(res.PerRoot, rr)
		res.Faults += len(rr.Faults)
		res.MTTRNs += rr.MTTRNs
		teps = append(teps, rr.TEPS)
		times = append(times, rr.TimeNs)
		res.Breakdown.Merge(rr.Breakdown)
	}
	res.HarmonicTEPS = stats.HarmonicMean(teps)
	res.MeanTEPS = stats.Mean(teps)
	res.MinTEPS = stats.Min(teps)
	res.MaxTEPS = stats.Max(teps)
	res.MeanTimeNs = stats.Mean(times)
	res.Breakdown.Scale(1 / float64(len(roots)))
	res.Breakdown.TDLevels /= len(roots)
	res.Breakdown.BULevels /= len(roots)
	res.Breakdown.BUCommCount /= len(roots)
	return res, nil
}

// String renders the headline numbers.
func (r *Result) String() string {
	return fmt.Sprintf("scale=%d nodes=%d %s %s g=%d: harmonic TEPS=%.3e (mean %.3e) mean time=%.2fms",
		r.Config.Params.Scale, r.Config.Machine.Nodes, r.Config.Policy,
		r.Config.Opts.Opt, r.Config.Opts.Granularity,
		r.HarmonicTEPS, r.MeanTEPS, r.MeanTimeNs/1e6)
}
