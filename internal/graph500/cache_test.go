package graph500

import (
	"testing"

	"numabfs/internal/bfs"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
)

// TestGraphCacheBitIdentical: a cache hit must reproduce the uncached
// run exactly — same TEPS, same construction time, same per-root trees —
// while the counters record the reuse, and a config differing in any key
// component must miss.
func TestGraphCacheBitIdentical(t *testing.T) {
	const scale = 12
	cfg := machine.Scaled(scale, scale+12)
	cfg.Nodes = 2
	cfg.WeakNode = -1
	base := Config{
		Machine:  cfg,
		Policy:   machine.PPN8Bind,
		Params:   rmat.Graph500(scale),
		Opts:     bfs.DefaultOptions(),
		NumRoots: 2,
		Validate: true,
	}

	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewGraphCache()
	withCache := base
	withCache.Cache = cache
	miss, err := Run(withCache)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := Run(withCache)
	if err != nil {
		t.Fatal(err)
	}

	if h, m := cache.Stats(); h != 1 || m != 1 {
		t.Fatalf("cache counters: hits=%d misses=%d, want 1/1", h, m)
	}
	for i, res := range []*Result{miss, hit} {
		if res.HarmonicTEPS != plain.HarmonicTEPS || res.MeanTimeNs != plain.MeanTimeNs {
			t.Errorf("run %d: TEPS/time differ from uncached: %g/%g vs %g/%g",
				i, res.HarmonicTEPS, res.MeanTimeNs, plain.HarmonicTEPS, plain.MeanTimeNs)
		}
		if res.SetupNs != plain.SetupNs {
			t.Errorf("run %d: SetupNs %g, want %g", i, res.SetupNs, plain.SetupNs)
		}
		if res.PerRoot[0].Root != plain.PerRoot[0].Root {
			t.Errorf("run %d: root selection changed: %d vs %d", i, res.PerRoot[0].Root, plain.PerRoot[0].Root)
		}
	}

	// A different optimization level reuses the same graph (dedup and
	// params unchanged): second hit.
	lvl := withCache
	lvl.Opts.Opt = bfs.OptParAllgather
	if _, err := Run(lvl); err != nil {
		t.Fatal(err)
	}
	if h, m := cache.Stats(); h != 2 || m != 1 {
		t.Fatalf("cache counters after level change: hits=%d misses=%d, want 2/1", h, m)
	}

	// Changing a key component (dedup) must miss and build fresh.
	ded := withCache
	ded.Opts.Dedup = !ded.Opts.Dedup
	if _, err := Run(ded); err != nil {
		t.Fatal(err)
	}
	if h, m := cache.Stats(); h != 2 || m != 2 {
		t.Fatalf("cache counters after dedup change: hits=%d misses=%d, want 2/2", h, m)
	}
}
