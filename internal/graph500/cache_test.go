package graph500

import (
	"sync"
	"testing"

	"numabfs/internal/bfs"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
)

// TestGraphCacheBitIdentical: a cache hit must reproduce the uncached
// run exactly — same TEPS, same construction time, same per-root trees —
// while the counters record the reuse, and a config differing in any key
// component must miss.
func TestGraphCacheBitIdentical(t *testing.T) {
	const scale = 12
	cfg := machine.Scaled(scale, scale+12)
	cfg.Nodes = 2
	cfg.WeakNode = -1
	base := Config{
		Machine:  cfg,
		Policy:   machine.PPN8Bind,
		Params:   rmat.Graph500(scale),
		Opts:     bfs.DefaultOptions(),
		NumRoots: 2,
		Validate: true,
	}

	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewGraphCache()
	withCache := base
	withCache.Cache = cache
	miss, err := Run(withCache)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := Run(withCache)
	if err != nil {
		t.Fatal(err)
	}

	if h, m := cache.Stats(); h != 1 || m != 1 {
		t.Fatalf("cache counters: hits=%d misses=%d, want 1/1", h, m)
	}
	for i, res := range []*Result{miss, hit} {
		if res.HarmonicTEPS != plain.HarmonicTEPS || res.MeanTimeNs != plain.MeanTimeNs {
			t.Errorf("run %d: TEPS/time differ from uncached: %g/%g vs %g/%g",
				i, res.HarmonicTEPS, res.MeanTimeNs, plain.HarmonicTEPS, plain.MeanTimeNs)
		}
		if res.SetupNs != plain.SetupNs {
			t.Errorf("run %d: SetupNs %g, want %g", i, res.SetupNs, plain.SetupNs)
		}
		if res.PerRoot[0].Root != plain.PerRoot[0].Root {
			t.Errorf("run %d: root selection changed: %d vs %d", i, res.PerRoot[0].Root, plain.PerRoot[0].Root)
		}
	}

	// A different optimization level reuses the same graph (dedup and
	// params unchanged): second hit.
	lvl := withCache
	lvl.Opts.Opt = bfs.OptParAllgather
	if _, err := Run(lvl); err != nil {
		t.Fatal(err)
	}
	if h, m := cache.Stats(); h != 2 || m != 1 {
		t.Fatalf("cache counters after level change: hits=%d misses=%d, want 2/1", h, m)
	}

	// Changing a key component (dedup) must miss and build fresh.
	ded := withCache
	ded.Opts.Dedup = !ded.Opts.Dedup
	if _, err := Run(ded); err != nil {
		t.Fatal(err)
	}
	if h, m := cache.Stats(); h != 2 || m != 2 {
		t.Fatalf("cache counters after dedup change: hits=%d misses=%d, want 2/2", h, m)
	}
}

// TestGraphCacheSingleflight: concurrent requesters of one key must
// produce exactly one build (one miss, n-1 hits) with every follower
// receiving the leader's CSRs — the property that keeps cache counters
// and results deterministic under the parallel experiment runner.
func TestGraphCacheSingleflight(t *testing.T) {
	const scale = 12
	cfg := machine.Scaled(scale, scale+12)
	cfg.Nodes = 2
	cfg.WeakNode = -1
	base := Config{
		Machine:  cfg,
		Policy:   machine.PPN8Bind,
		Params:   rmat.Graph500(scale),
		Opts:     bfs.DefaultOptions(),
		NumRoots: 1,
		Cache:    NewGraphCache(),
	}

	const n = 4
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(base)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if h, m := base.Cache.Stats(); h != n-1 || m != 1 {
		t.Fatalf("cache counters: hits=%d misses=%d, want %d/1", h, m, n-1)
	}
	for i := 1; i < n; i++ {
		if results[i].HarmonicTEPS != results[0].HarmonicTEPS || results[i].SetupNs != results[0].SetupNs {
			t.Fatalf("run %d diverged: TEPS %g vs %g, SetupNs %g vs %g", i,
				results[i].HarmonicTEPS, results[0].HarmonicTEPS, results[i].SetupNs, results[0].SetupNs)
		}
	}
}

// TestGraphCacheAbandonReleasesFollowers: when the leader's build dies,
// followers must not hang — they are woken, build independently, and a
// later requester becomes a fresh leader.
func TestGraphCacheAbandonReleasesFollowers(t *testing.T) {
	c := NewGraphCache()
	k := graphKey{dedup: true}
	e, leader := c.acquire(k)
	if !leader {
		t.Fatal("first acquire not leader")
	}
	done := make(chan bool)
	go func() {
		_, _, ok := e.wait()
		done <- ok
	}()
	c.abandon(k, e)
	if ok := <-done; ok {
		t.Fatal("follower saw a committed build after abandon")
	}
	if _, leader := c.acquire(k); !leader {
		t.Fatal("post-abandon acquire should be a fresh leader")
	}
	if h, m := c.Stats(); h != 0 || m != 2 {
		t.Fatalf("counters: hits=%d misses=%d, want 0/2", h, m)
	}
}
