package graph500

import (
	"bytes"
	"math"
	"runtime"
	"testing"

	"numabfs/internal/bfs"
	"numabfs/internal/obs"
	"numabfs/internal/trace"
)

// sampledConfig returns the benchmark configuration the acceptance
// tests below run with the virtual-time gauge grid enabled.
func sampledConfig(scale int, opt bfs.Opt) Config {
	cfg := testConfig(scale)
	cfg.Opts.Opt = opt
	cfg.Obs = obs.NewRecorder()
	cfg.SampleNs = 50_000
	return cfg
}

// TestSamplingDoesNotChangeResults pins the tentpole contract: turning
// on gauge sampling must leave every benchmark number bit-identical,
// because recording only reads clocks.
func TestSamplingDoesNotChangeResults(t *testing.T) {
	base, err := Run(testConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sampledConfig(12, bfs.DefaultOptions().Opt)
	sampled, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.HarmonicTEPS != sampled.HarmonicTEPS || base.MeanTimeNs != sampled.MeanTimeNs ||
		base.SetupNs != sampled.SetupNs {
		t.Fatalf("sampling changed results: %+v vs %+v", base, sampled)
	}
	if base.Breakdown != sampled.Breakdown {
		t.Fatalf("sampling changed the breakdown: %+v vs %+v", base.Breakdown, sampled.Breakdown)
	}
	for i := range base.PerRoot {
		if base.PerRoot[i].TimeNs != sampled.PerRoot[i].TimeNs {
			t.Fatalf("root %d: TimeNs %g vs %g", i,
				base.PerRoot[i].TimeNs, sampled.PerRoot[i].TimeNs)
		}
	}
	// And the run must actually have recorded gauges: a zero-cost
	// sampler that samples nothing would pass the identity trivially.
	sess := cfg.Obs.Sessions()[0]
	if sess.Sampler() == nil {
		t.Fatal("SampleNs did not enable the sampler")
	}
	frontier := false
	for _, rk := range sess.Ranks() {
		if len(rk.GaugeSeries(obs.GaugeFrontier)) > 0 {
			frontier = true
		}
	}
	if !frontier {
		t.Fatal("no frontier gauge samples recorded")
	}
	if sess.LinkPeakBytesPerNs() <= 0 {
		t.Fatal("world did not publish the link peak")
	}
}

// TestObsdiffOverlapAcceptance is the issue's acceptance criterion:
// with sampling on, an obsdiff of a level-5 (compressed allgather) run
// against a level-6 (overlapped allgather) run must reproduce the
// overlap ledger — hidden and exposed transfer time — that the
// benchmark's own breakdown reports, within 1e-9 relative tolerance.
func TestObsdiffOverlapAcceptance(t *testing.T) {
	runLevel := func(opt bfs.Opt) (*Result, *obs.Run) {
		cfg := sampledConfig(12, opt)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, cfg.Obs.Dump()
	}
	resC, runC := runLevel(bfs.OptCompressedAllgather)
	resO, runO := runLevel(bfs.OptOverlapAllgather)

	d := obs.DiffRuns(runC, runO)
	if len(d.Sessions) != 1 || len(d.AOnly) != 0 || len(d.BOnly) != 0 {
		t.Fatalf("diff shape: %d paired, %d a-only, %d b-only",
			len(d.Sessions), len(d.AOnly), len(d.BOnly))
	}
	sd := d.Sessions[0]

	// Result.Breakdown is the mean over ranks and roots; the diff's
	// overlap ledger is the total over ranks (summed over roots), so the
	// scale factor between them is ranks*roots.
	cfg := testConfig(12)
	factor := float64(cfg.Machine.Nodes*cfg.Machine.SocketsPerNode) * float64(cfg.NumRoots)
	relClose := func(got, want float64) bool {
		return math.Abs(got-want) <= 1e-9*math.Max(math.Abs(want), 1)
	}
	if want := resO.Breakdown.Ns[trace.Overlap] * factor; !relClose(sd.OverlapHiddenBNs, want) {
		t.Errorf("hidden (B): diff %g, breakdown*%g = %g", sd.OverlapHiddenBNs, factor, want)
	}
	if want := resO.Breakdown.OverlapExposedNs * factor; !relClose(sd.OverlapExposedBNs, want) {
		t.Errorf("exposed (B): diff %g, breakdown*%g = %g", sd.OverlapExposedBNs, factor, want)
	}
	if want := resC.Breakdown.Ns[trace.Overlap] * factor; !relClose(sd.OverlapHiddenANs, want) {
		t.Errorf("hidden (A): diff %g, breakdown*%g = %g", sd.OverlapHiddenANs, factor, want)
	}
	if want := resC.Breakdown.OverlapExposedNs * factor; !relClose(sd.OverlapExposedANs, want) {
		t.Errorf("exposed (A): diff %g, breakdown*%g = %g", sd.OverlapExposedANs, factor, want)
	}
	// Level 6 must actually pipeline: it hides transfer time level 5
	// spends exposed, and the diff attributes a bu-comm reduction.
	if sd.OverlapHiddenBNs <= sd.OverlapHiddenANs {
		t.Errorf("overlap level hides %g ns, compressed %g ns — no pipelining visible",
			sd.OverlapHiddenBNs, sd.OverlapHiddenANs)
	}
	var buComm *obs.PhaseDelta
	for i := range sd.Phases {
		if sd.Phases[i].Name == trace.BUComm.String() {
			buComm = &sd.Phases[i]
		}
	}
	if buComm == nil {
		t.Fatal("bu-comm missing from the phase delta table")
	}
	if buComm.DeltaNs >= 0 {
		t.Errorf("bu-comm delta %g ns not negative: pipelining did not reduce exposed comm", buComm.DeltaNs)
	}
}

// TestExportsByteIdenticalAcrossRepeats pins end-to-end export
// determinism on a real benchmark: identically configured runs,
// executed under different GOMAXPROCS, must produce byte-identical
// timeline JSONL, Prometheus text and HTML report output.
func TestExportsByteIdenticalAcrossRepeats(t *testing.T) {
	export := func() (tl, prom, html []byte) {
		cfg := sampledConfig(12, bfs.OptOverlapAllgather)
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		var a, b, c bytes.Buffer
		if err := cfg.Obs.WriteTimelineJSONL(&a); err != nil {
			t.Fatal(err)
		}
		if err := cfg.Obs.WritePromText(&b); err != nil {
			t.Fatal(err)
		}
		if err := cfg.Obs.WriteHTMLReport(&c); err != nil {
			t.Fatal(err)
		}
		return a.Bytes(), b.Bytes(), c.Bytes()
	}
	tl1, prom1, html1 := export()

	old := runtime.GOMAXPROCS(1)
	tl2, prom2, html2 := export()
	runtime.GOMAXPROCS(old)
	tl3, prom3, html3 := export()

	for _, cmp := range []struct {
		name    string
		a, b, c []byte
	}{
		{"timeline", tl1, tl2, tl3},
		{"prom", prom1, prom2, prom3},
		{"html", html1, html2, html3},
	} {
		if !bytes.Equal(cmp.a, cmp.b) {
			t.Errorf("%s differs under GOMAXPROCS=1", cmp.name)
		}
		if !bytes.Equal(cmp.a, cmp.c) {
			t.Errorf("%s differs across repeats", cmp.name)
		}
	}
	if len(tl1) == 0 || len(prom1) == 0 || len(html1) == 0 {
		t.Fatal("empty export")
	}

	// The JSONL stream round-trips: a reloaded run diffed against the
	// live recording is all zeros.
	run, err := obs.ReadRun(bytes.NewReader(tl1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sampledConfig(12, bfs.OptOverlapAllgather)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	d := obs.DiffRuns(cfg.Obs.Dump(), run)
	for _, sd := range d.Sessions {
		if sd.DeltaNs != 0 {
			t.Errorf("session %q: reloaded run drifts by %g ns", sd.LabelA, sd.DeltaNs)
		}
	}
}
