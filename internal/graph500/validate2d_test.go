package graph500

import (
	"testing"

	"numabfs/internal/bfs"
	"numabfs/internal/bfs2d"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
)

func testRunner2D(t *testing.T, scale int, mode bfs2d.Mode) *bfs2d.Runner {
	t.Helper()
	cfg := machine.Scaled(scale, scale+12)
	cfg.Nodes = 2
	cfg.SocketsPerNode = 4
	cfg.WeakNode = -1
	r, err := bfs2d.NewRunner(cfg, machine.PPN8Bind, bfs2d.Grid{R: 2, C: 4}, rmat.Graph500(scale))
	if err != nil {
		t.Fatal(err)
	}
	r.Mode = mode
	r.Setup()
	return r
}

// TestValidateRun2DAcceptsGenuineTrees: every rung of the 2-D ladder
// must produce trees the Graph500 validator accepts.
func TestValidateRun2DAcceptsGenuineTrees(t *testing.T) {
	for _, mode := range []bfs2d.Mode{bfs2d.ModeTopDown, bfs2d.ModeHybrid, bfs2d.ModeBottomUp} {
		r := testRunner2D(t, 12, mode)
		for _, root := range r.Params.Roots(2, r.HasEdgeGlobal) {
			r.RunRoot(root)
			if err := ValidateRun2D(r, root); err != nil {
				t.Fatalf("%v: genuine tree rejected: %v", mode, err)
			}
		}
	}
}

// TestValidateRun2DCatchesCorruption exercises each rule on a genuine
// run with one surgical corruption at a time.
func TestValidateRun2DCatchesCorruption(t *testing.T) {
	r := testRunner2D(t, 12, bfs2d.ModeTopDown)
	root := r.Params.Roots(1, r.HasEdgeGlobal)[0]
	r.RunRoot(root)
	if err := ValidateRun2D(r, root); err != nil {
		t.Fatalf("genuine tree rejected: %v", err)
	}
	parents := r.ParentArrays()
	bs := r.BlockSize()

	// Rule 1: break the root's self-parent.
	rootRank := int(root / bs)
	orig := parents[rootRank][root%bs]
	parents[rootRank][root%bs] = -1
	if err := ValidateRun2D(r, root); err == nil {
		t.Fatal("validator accepted a rootless tree")
	}
	parents[rootRank][root%bs] = orig

	// Rule 2/3: point a visited vertex at itself (never a graph edge —
	// self-loops are dropped at Setup — and a level cycle).
	found := false
corrupt:
	for rank, pa := range parents {
		for i := range pa {
			v := int64(rank)*bs + int64(i)
			if pa[i] >= 0 && v != root && pa[i] != v {
				orig = pa[i]
				pa[i] = v
				found = true
				break corrupt
			}
		}
	}
	if !found {
		t.Fatal("no vertex to corrupt")
	}
	if err := ValidateRun2D(r, root); err == nil {
		t.Fatal("validator accepted a self-parented non-root vertex")
	}

	// Rule 4: un-visit an interior vertex (its neighbours stay visited).
	for rank, pa := range parents {
		for i := range pa {
			v := int64(rank)*bs + int64(i)
			if pa[i] >= 0 && v != root {
				pa[i] = -1
				if err := ValidateRun2D(r, root); err == nil {
					t.Fatal("validator accepted a hole in the visited set")
				}
				return
			}
		}
	}
	t.Fatal("no vertex to corrupt")
}

// TestBFS2DLevelsMatchesValidatorScale16 is the regression test for the
// Levels parent-chase rewrite: at scale 16 the 2-D hybrid engine's
// level reconstruction must agree vertex-for-vertex with the 1-D
// engine's validator-backed Levels on the same graph, and the tree must
// pass the full 2-D validation. (The old fixed-point reconstruction was
// O(n x diameter); the parent-chase is one O(n) pass, which is what
// makes this scale practical in the validation sweeps.)
func TestBFS2DLevelsMatchesValidatorScale16(t *testing.T) {
	const scale = 16
	cfg := machine.Scaled(scale, scale+12)
	cfg.Nodes = 2
	cfg.SocketsPerNode = 4
	cfg.WeakNode = -1
	params := rmat.Graph500(scale)

	r1, err := bfs.NewRunner(cfg, machine.PPN8Bind, params, bfs.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r1.Setup()
	r2 := testRunner2D(t, scale, bfs2d.ModeHybrid)

	root := params.Roots(1, r1.HasEdgeGlobal)[0]
	r1.RunRoot(root)
	r2.RunRoot(root)
	if err := ValidateRun2D(r2, root); err != nil {
		t.Fatalf("2-D tree rejected at scale %d: %v", scale, err)
	}
	want := Levels(r1, root)
	got := r2.Levels(root)
	if len(got) != len(want) {
		t.Fatalf("level array length %d, want %d", len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: 2-D level %d, 1-D level %d", v, got[v], want[v])
		}
	}
}
