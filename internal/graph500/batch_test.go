package graph500

import (
	"strings"
	"testing"

	"numabfs/internal/bfs"
	"numabfs/internal/graph"
	"numabfs/internal/machine"
	"numabfs/internal/msbfs"
	"numabfs/internal/rmat"
)

func newBatchRunner(t *testing.T, scale int, opt bfs.Opt) (*msbfs.Runner, rmat.Params) {
	t.Helper()
	cfg := machine.Scaled(scale, scale+12)
	cfg.Nodes = 2
	cfg.SocketsPerNode = 4
	cfg.WeakNode = -1
	params := rmat.Graph500(scale)
	opts := bfs.DefaultOptions()
	opts.Opt = opt
	r, err := msbfs.NewRunner(cfg, machine.PPN8Bind, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	return r, params
}

// TestValidateBatchAtEveryOptLevel: every lane's parent tree passes the
// Graph500 rules and is bit-identical to its sequential (batch-of-one)
// counterpart, at every optimization level the batched engine supports.
func TestValidateBatchAtEveryOptLevel(t *testing.T) {
	const scale = 12
	for _, opt := range []bfs.Opt{bfs.OptOriginal, bfs.OptShareInQueue, bfs.OptShareAll,
		bfs.OptParAllgather, bfs.OptCompressedAllgather} {
		t.Run(opt.String(), func(t *testing.T) {
			r, params := newBatchRunner(t, scale, opt)
			roots := params.Roots(8, r.HasEdgeGlobal)
			r.RunBatch(roots)
			if err := ValidateBatch(r, roots); err != nil {
				t.Fatalf("batched validation failed: %v", err)
			}
			if err := ValidateBatchIdentity(r, roots); err != nil {
				t.Fatalf("lane not bit-identical to sequential run: %v", err)
			}
			// Identity validation re-runs the batch: lane state must be
			// restored for post-validation inspection.
			if err := ValidateBatch(r, roots); err != nil {
				t.Fatalf("lane state not restored after identity check: %v", err)
			}
		})
	}
}

// TestLaneLevelsMatchReference: the per-lane level helper agrees with
// the sequential reference BFS.
func TestLaneLevelsMatchReference(t *testing.T) {
	const scale = 12
	r, params := newBatchRunner(t, scale, bfs.OptCompressedAllgather)
	ref := graph.BuildGlobal(params, true)
	roots := params.Roots(4, r.HasEdgeGlobal)
	r.RunBatch(roots)
	for l, root := range roots {
		want, _ := graph.ReferenceBFS(ref, root)
		got := LaneLevels(r, l, root)
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("lane %d vertex %d: level %d, want %d", l, v, got[v], want[v])
			}
		}
	}
}

// TestValidateBatchCatchesCorruption: a lane pointing at a non-edge
// must fail with the lane identified.
func TestValidateBatchCatchesCorruption(t *testing.T) {
	const scale = 12
	r, params := newBatchRunner(t, scale, bfs.OptOriginal)
	roots := params.Roots(2, r.HasEdgeGlobal)
	r.RunBatch(roots)
	// Corrupt lane 1: claim the wrong root so rule 1 fails.
	bad := []int64{roots[0], (roots[1] + 1) % params.NumVertices()}
	err := ValidateBatch(r, bad)
	if err == nil {
		t.Fatal("corrupted batch validated")
	}
	if !strings.Contains(err.Error(), "lane 1") {
		t.Fatalf("error does not identify the lane: %v", err)
	}
}
