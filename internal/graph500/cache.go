package graph500

import (
	"sync"
	"sync/atomic"

	"numabfs/internal/graph"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
)

// GraphCache caches constructed distributed graphs across benchmark
// configurations: experiment sweeps rerun many optimization levels and
// knob settings over the identical R-MAT graph, and kernel 1 (generation
// + CSR build) is by far the slowest host-time step of a cell. Entries
// are keyed by everything that determines the per-rank CSR content and
// the modelled construction time — the full machine config, placement
// policy, R-MAT parameters, and the dedup option — so a hit is
// bit-identical to a fresh build, including SetupNs.
//
// Lookups are singleflight so the cache stays deterministic under the
// parallel experiment runner: the first requester of a key becomes the
// build leader (counted as the one miss), later requesters count as hits
// and wait for the leader's commit instead of each building — and
// mis-counting — their own copy. Hit/miss totals therefore match the
// sequential schedule exactly. The cached CSRs are shared read-only.
type GraphCache struct {
	mu      sync.Mutex
	entries map[graphKey]*graphEntry

	hits, misses atomic.Int64
}

type graphKey struct {
	machine machine.Config
	policy  machine.Policy
	params  rmat.Params
	dedup   bool
	// spares changes the active member count and with it the partition,
	// so per-rank CSR content differs per spare setting.
	spares int
}

// graphEntry is one cache slot. ready is closed when the leader commits
// (csrs non-nil) or abandons (csrs nil — the build failed; followers
// fall back to building their own).
type graphEntry struct {
	ready   chan struct{}
	csrs    []*graph.CSR
	setupNs float64
}

// NewGraphCache returns an empty cache.
func NewGraphCache() *GraphCache {
	return &GraphCache{entries: make(map[graphKey]*graphEntry)}
}

// Stats returns the lookup counters: hits (construction skipped or
// awaited from a concurrent leader) and misses (built fresh).
func (c *GraphCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

func cacheKeyOf(cfg Config) graphKey {
	return graphKey{
		machine: cfg.Machine, policy: cfg.Policy, params: cfg.Params,
		dedup: cfg.Opts.Dedup, spares: cfg.Opts.SpareRanks,
	}
}

// acquire claims the key. The first requester gets leader=true — it must
// build and then either commit or abandon the entry. Followers get the
// existing entry to wait() on.
func (c *GraphCache) acquire(k graphKey) (e *graphEntry, leader bool) {
	c.mu.Lock()
	e = c.entries[k]
	if e == nil {
		e = &graphEntry{ready: make(chan struct{})}
		c.entries[k] = e
		leader = true
	}
	c.mu.Unlock()
	if leader {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	return e, leader
}

// commit publishes the leader's build and releases waiting followers.
func (c *GraphCache) commit(e *graphEntry, csrs []*graph.CSR, setupNs float64) {
	e.csrs = csrs
	e.setupNs = setupNs
	close(e.ready)
}

// abandon releases a leader's claim after a failed build: the slot is
// removed (a later requester becomes a fresh leader) and current waiters
// are woken to build on their own.
func (c *GraphCache) abandon(k graphKey, e *graphEntry) {
	c.mu.Lock()
	if c.entries[k] == e {
		delete(c.entries, k)
	}
	c.mu.Unlock()
	close(e.ready)
}

// wait blocks until the entry's leader commits or abandons. ok reports
// whether a build was published.
func (e *graphEntry) wait() (csrs []*graph.CSR, setupNs float64, ok bool) {
	<-e.ready
	return e.csrs, e.setupNs, e.csrs != nil
}
