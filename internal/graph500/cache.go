package graph500

import (
	"sync"
	"sync/atomic"

	"numabfs/internal/graph"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
)

// GraphCache caches constructed distributed graphs across benchmark
// configurations: experiment sweeps rerun many optimization levels and
// knob settings over the identical R-MAT graph, and kernel 1 (generation
// + CSR build) is by far the slowest host-time step of a cell. Entries
// are keyed by everything that determines the per-rank CSR content and
// the modelled construction time — the full machine config, placement
// policy, R-MAT parameters, and the dedup option — so a hit is
// bit-identical to a fresh build, including SetupNs. Safe for concurrent
// use; the cached CSRs are shared read-only.
type GraphCache struct {
	mu      sync.Mutex
	entries map[graphKey]*graphEntry

	hits, misses atomic.Int64
}

type graphKey struct {
	machine machine.Config
	policy  machine.Policy
	params  rmat.Params
	dedup   bool
}

type graphEntry struct {
	csrs    []*graph.CSR
	setupNs float64
}

// NewGraphCache returns an empty cache.
func NewGraphCache() *GraphCache {
	return &GraphCache{entries: make(map[graphKey]*graphEntry)}
}

// Stats returns the lookup counters: hits (construction skipped) and
// misses (built fresh, then stored).
func (c *GraphCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

func cacheKeyOf(cfg Config) graphKey {
	return graphKey{machine: cfg.Machine, policy: cfg.Policy, params: cfg.Params, dedup: cfg.Opts.Dedup}
}

func (c *GraphCache) lookup(k graphKey) *graphEntry {
	c.mu.Lock()
	e := c.entries[k]
	c.mu.Unlock()
	if e != nil {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e
}

func (c *GraphCache) store(k graphKey, csrs []*graph.CSR, setupNs float64) {
	c.mu.Lock()
	if _, ok := c.entries[k]; !ok {
		c.entries[k] = &graphEntry{csrs: csrs, setupNs: setupNs}
	}
	c.mu.Unlock()
}
