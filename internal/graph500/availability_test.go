package graph500

import (
	"runtime"
	"testing"

	"numabfs/internal/bfs"
	"numabfs/internal/fault"
)

// TestPermanentCrashCompletesAtScale16 is the acceptance test for
// degraded-mode completion: a rank dies permanently mid-iteration at
// scale 16 and the run must finish — under both the shrink and the
// hot-spare policy, at every cumulative optimization level — with the
// resulting BFS tree passing the full Graph500 validation, the world
// epoch stepped exactly once, and a positive modelled MTTR. Each
// configuration is run twice (and one of them under a different
// GOMAXPROCS) to pin down bit-identical virtual-time results: recovery
// is part of the simulation, not of the host schedule. The kernel-1
// cache is shared across all configurations, so the graph builds once
// per spare reservation.
func TestPermanentCrashCompletesAtScale16(t *testing.T) {
	const scale = 16
	cache := NewGraphCache()

	// Probe the clean mean iteration to place the crash mid-run.
	probe := testConfig(scale)
	probe.NumRoots = 1
	probe.Validate = false
	probe.Cache = cache
	base, err := Run(probe)
	if err != nil {
		t.Fatal(err)
	}
	at := 0.5 * base.MeanTimeNs

	levels := []bfs.Opt{
		bfs.OptOriginal, bfs.OptShareInQueue, bfs.OptShareAll,
		bfs.OptParAllgather, bfs.OptCompressedAllgather,
	}
	policies := []struct {
		name     string
		recovery bfs.Recovery
		spares   int
	}{
		{"shrink", bfs.RecoverShrink, 0},
		{"spare", bfs.RecoverSpare, 1},
	}

	run := func(opt bfs.Opt, pol int) *Result {
		cfg := testConfig(scale)
		cfg.NumRoots = 1
		cfg.Cache = cache
		cfg.Opts.Opt = opt
		cfg.Opts.Recovery = policies[pol].recovery
		cfg.Opts.SpareRanks = policies[pol].spares
		// Rank 1 is active under both reservations (spares are the last
		// rank of each node).
		plan := fault.Plan{Crashes: []fault.Crash{{Rank: 1, AtNs: at, Permanent: true}}}
		cfg.Faults = &plan
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s/%s: %v", opt, policies[pol].name, err)
		}
		return res
	}

	for pi, pol := range policies {
		for _, opt := range levels {
			res := run(opt, pi)
			if res.Faults != 1 {
				t.Fatalf("%s/%s: %d crash(es) fired, want 1", opt, pol.name, res.Faults)
			}
			if res.MTTRNs <= 0 {
				t.Errorf("%s/%s: MTTR %g, want positive", opt, pol.name, res.MTTRNs)
			}
			if ep := res.PerRoot[0].Epoch; ep != 1 {
				t.Errorf("%s/%s: finished on epoch %d, want 1 (one %s surgery)", opt, pol.name, ep, pol.name)
			}
			if res.HarmonicTEPS <= 0 {
				t.Errorf("%s/%s: TEPS %g", opt, pol.name, res.HarmonicTEPS)
			}

			// Bit-identical repeat: virtual time, repair time and the
			// traversal must not depend on the host schedule.
			rep := run(opt, pi)
			a, b := res.PerRoot[0], rep.PerRoot[0]
			if a.TimeNs != b.TimeNs || a.TEPS != b.TEPS ||
				res.MTTRNs != rep.MTTRNs ||
				a.Visited != b.Visited || a.TraversedEdges != b.TraversedEdges ||
				a.Levels != b.Levels {
				t.Errorf("%s/%s: repeat diverged: %+v vs %+v (MTTR %g vs %g)",
					opt, pol.name, a, b, res.MTTRNs, rep.MTTRNs)
			}
		}
	}

	// One configuration per policy again under a different host width:
	// GOMAXPROCS must not leak into the recovery path either.
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	for pi, pol := range policies {
		res := run(bfs.OptParAllgather, pi)
		ref := func() *Result {
			runtime.GOMAXPROCS(prev)
			defer runtime.GOMAXPROCS(2)
			return run(bfs.OptParAllgather, pi)
		}()
		if res.PerRoot[0].TimeNs != ref.PerRoot[0].TimeNs || res.MTTRNs != ref.MTTRNs {
			t.Errorf("%s: GOMAXPROCS changed the recovered run: time %g vs %g, MTTR %g vs %g",
				pol.name, res.PerRoot[0].TimeNs, ref.PerRoot[0].TimeNs, res.MTTRNs, ref.MTTRNs)
		}
	}
}
