package graph500

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"numabfs/internal/bfs"
	"numabfs/internal/bfs2d"
	"numabfs/internal/machine"
	"numabfs/internal/obs"
	"numabfs/internal/rmat"
)

// diff1Dvs2D runs the same root through both engines at the top of
// their ladders — the 1-D hybrid with the compressed allgather as
// baseline A, the 2-D hybrid with compressed folds as candidate B —
// on the same graph and machine, and returns the obsdiff between them.
// This is the profile the crossover experiment reads to explain which
// phases the 2-D decomposition moves.
func diff1Dvs2D(t *testing.T) *obs.RunDiff {
	t.Helper()
	const scale = 12
	cfg := machine.Scaled(scale, scale+12)
	cfg.Nodes = 2
	cfg.SocketsPerNode = 4
	cfg.WeakNode = -1
	params := rmat.Graph500(scale)

	recA := obs.NewRecorder()
	opts := bfs.DefaultOptions()
	opts.Opt = bfs.OptCompressedAllgather
	r1, err := bfs.NewRunner(cfg, machine.PPN8Bind, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	r1.AttachObs(recA.NewSession("1-D hybrid"))
	r1.Setup()
	root := params.Roots(1, r1.HasEdgeGlobal)[0]
	r1.RunRoot(root)

	recB := obs.NewRecorder()
	r2, err := bfs2d.NewRunner(cfg, machine.PPN8Bind, bfs2d.Grid{R: 2, C: 4}, params)
	if err != nil {
		t.Fatal(err)
	}
	r2.Mode = bfs2d.ModeHybrid
	r2.Compress = true
	r2.AttachObs(recB.NewSession("2-D hybrid"))
	r2.Setup()
	r2.RunRoot(root)

	return obs.DiffRuns(recA.Dump(), recB.Dump())
}

const diffGolden = "diff_1d2d_golden.txt"

// TestObsdiff1Dvs2DGolden pins the rendered 1-D-vs-2-D run diff byte
// for byte. The fixture documents what the profiler shows at the
// crossover: which phases the 2-D engine trades (smaller allgathers,
// extra fold exchange), attributed per phase and per rank. Regenerate
// with:
//
//	OBS_UPDATE_GOLDEN=1 go test ./internal/graph500 -run TestObsdiff1Dvs2DGolden
func TestObsdiff1Dvs2DGolden(t *testing.T) {
	got := diff1Dvs2D(t).String()
	path := filepath.Join("testdata", diffGolden)
	if os.Getenv("OBS_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with OBS_UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("1-D vs 2-D diff drifted from golden %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestObsdiff1Dvs2DDeterministic: the diff must be invariant under host
// parallelism — the same property the engines themselves guarantee.
func TestObsdiff1Dvs2DDeterministic(t *testing.T) {
	a := diff1Dvs2D(t).String()
	old := runtime.GOMAXPROCS(1)
	b := diff1Dvs2D(t).String()
	runtime.GOMAXPROCS(old)
	if a != b {
		t.Fatal("1-D vs 2-D diff differs under GOMAXPROCS=1")
	}
}
