package stats

import (
	"math"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	if h.N != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram: N=%d mean=%g", h.N, h.Mean())
	}
	for _, q := range []float64{0, 0.5, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Fatalf("empty Quantile(%g) = %g, want 0", q, v)
		}
	}
	// Merging an empty histogram changes nothing.
	o := NewHistogram(0, 100, 10)
	h.Merge(o)
	if h.N != 0 {
		t.Fatalf("merge of two empties: N=%d", h.N)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	h.Add(42)
	if h.N != 1 || h.Sum != 42 || h.Mean() != 42 {
		t.Fatalf("single sample: N=%d sum=%g mean=%g", h.N, h.Sum, h.Mean())
	}
	if h.MinV != 42 || h.MaxV != 42 {
		t.Fatalf("single sample extremes: [%g, %g]", h.MinV, h.MaxV)
	}
	// Every quantile of a single sample is that sample (the estimate is
	// clamped to the observed range).
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 42 {
			t.Fatalf("single-sample Quantile(%g) = %g, want 42", q, v)
		}
	}
}

func TestHistogramBucketsAndOverflow(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	h.Add(-5)  // underflow
	h.Add(0)   // bucket 0 (inclusive lo)
	h.Add(99)  // bucket 9
	h.Add(100) // overflow (exclusive hi)
	h.Add(250) // overflow
	if h.Under != 1 || h.Over != 2 || h.N != 5 {
		t.Fatalf("under=%d over=%d n=%d", h.Under, h.Over, h.N)
	}
	if h.Counts[0] != 1 || h.Counts[9] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.MinV != -5 || h.MaxV != 250 {
		t.Fatalf("extremes [%g, %g]", h.MinV, h.MaxV)
	}
	if h.Quantile(0) != -5 || h.Quantile(1) != 250 {
		t.Fatalf("extreme quantiles = %g, %g", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100) // unit-width buckets
	for v := 0; v < 100; v++ {
		h.Add(float64(v) + 0.5)
	}
	// With one sample per unit bucket, the interpolated q-quantile of
	// U[0,100) lands at ~100q.
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := 100 * q
		if math.Abs(got-want) > 1.0 {
			t.Fatalf("Quantile(%g) = %g, want ~%g", q, got, want)
		}
	}
	// Monotone in q.
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 10, 5)
	for _, v := range []float64{1, 3, 5} {
		a.Add(v)
	}
	for _, v := range []float64{-1, 7, 20} {
		b.Add(v)
	}
	a.Merge(b)
	if a.N != 6 || a.Under != 1 || a.Over != 1 {
		t.Fatalf("merged: N=%d under=%d over=%d", a.N, a.Under, a.Over)
	}
	if a.MinV != -1 || a.MaxV != 20 {
		t.Fatalf("merged extremes [%g, %g]", a.MinV, a.MaxV)
	}
	if a.Sum != 35 {
		t.Fatalf("merged sum = %g", a.Sum)
	}

	// Merging into an empty histogram copies extremes.
	c := NewHistogram(0, 10, 5)
	c.Merge(a)
	if c.MinV != -1 || c.MaxV != 20 || c.N != 6 {
		t.Fatalf("empty.Merge: [%g, %g] N=%d", c.MinV, c.MaxV, c.N)
	}
}

func TestHistogramMergeMismatchPanics(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 10, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("merge of mismatched grids did not panic")
		}
	}()
	a.Merge(b)
}

func TestHistogramConstructorValidation(t *testing.T) {
	for _, tc := range []struct {
		lo, hi float64
		n      int
	}{{0, 10, 0}, {0, 10, -1}, {5, 5, 4}, {10, 0, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%g, %g, %d) did not panic", tc.lo, tc.hi, tc.n)
				}
			}()
			NewHistogram(tc.lo, tc.hi, tc.n)
		}()
	}
}
