package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bucket histogram over [Lo, Hi): n equal-width
// buckets plus an underflow and an overflow bucket. It supports merging
// (for folding per-rank distributions into a session view) and quantile
// estimation by linear interpolation within the located bucket — the
// accuracy/footprint trade the sampling layer wants for latency and
// gauge distributions, where keeping every sample would defeat the
// bucketing.
type Histogram struct {
	Lo, Hi float64 // value range covered by the equal-width buckets
	Counts []int64 // len n: Counts[i] covers [Lo + i*w, Lo + (i+1)*w)
	Under  int64   // samples < Lo
	Over   int64   // samples >= Hi
	N      int64   // total samples, including under/overflow
	Sum    float64 // sum of all samples (mean = Sum / N)
	MinV   float64 // smallest sample seen (undefined when N == 0)
	MaxV   float64 // largest sample seen (undefined when N == 0)
}

// NewHistogram returns a histogram of n equal-width buckets over
// [lo, hi). It panics on a non-positive bucket count or an empty range:
// both would make every Add land in under/overflow and silently degrade
// quantiles to the range endpoints.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic(fmt.Sprintf("stats: histogram bucket count %d, need > 0", n))
	}
	if !(hi > lo) {
		panic(fmt.Sprintf("stats: histogram range [%g, %g), need hi > lo", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, n)}
}

// width returns one bucket's value width.
func (h *Histogram) width() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Counts))
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	if h.N == 0 || v < h.MinV {
		h.MinV = v
	}
	if h.N == 0 || v > h.MaxV {
		h.MaxV = v
	}
	h.N++
	h.Sum += v
	switch {
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		i := int((v - h.Lo) / h.width())
		if i >= len(h.Counts) { // float rounding at the top edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Merge adds o's counts into h. The histograms must share the same
// range and bucket count; merging mismatched grids would silently
// misattribute counts, so it panics instead.
func (h *Histogram) Merge(o *Histogram) {
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Counts) != len(o.Counts) {
		panic(fmt.Sprintf("stats: merging histogram [%g, %g)/%d into [%g, %g)/%d",
			o.Lo, o.Hi, len(o.Counts), h.Lo, h.Hi, len(h.Counts)))
	}
	if o.N == 0 {
		return
	}
	if h.N == 0 || o.MinV < h.MinV {
		h.MinV = o.MinV
	}
	if h.N == 0 || o.MaxV > h.MaxV {
		h.MaxV = o.MaxV
	}
	h.N += o.N
	h.Sum += o.Sum
	h.Under += o.Under
	h.Over += o.Over
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
}

// Mean returns the mean of all samples, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by locating the
// bucket holding the q-th sample and interpolating linearly inside it.
// Underflow samples report MinV, overflow samples report MaxV (the true
// extremes are tracked exactly). Returns 0 for an empty histogram; q is
// clamped to [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if h.N == 0 {
		return 0
	}
	if q <= 0 {
		return h.MinV
	}
	if q >= 1 {
		return h.MaxV
	}
	// rank in [0, N): the sample index the quantile falls on.
	rank := q * float64(h.N)
	cum := float64(h.Under)
	if rank < cum {
		return h.MinV
	}
	w := h.width()
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank < next {
			lo := h.Lo + float64(i)*w
			frac := (rank - cum) / float64(c)
			v := lo + frac*w
			// The interpolated estimate never escapes the observed range.
			return math.Min(math.Max(v, h.MinV), h.MaxV)
		}
		cum = next
	}
	return h.MaxV
}
