package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{2, 2, 2}); !almost(got, 2) {
		t.Fatalf("constant: %g", got)
	}
	// Classic: harmonic mean of 40 and 60 is 48.
	if got := HarmonicMean([]float64{40, 60}); !almost(got, 48) {
		t.Fatalf("40,60: %g", got)
	}
	if got := HarmonicMean(nil); got != 0 {
		t.Fatalf("empty: %g", got)
	}
	// Non-positive values collapse to 0 (a failed iteration dominates).
	if got := HarmonicMean([]float64{1, 0, 3}); got != 0 {
		t.Fatalf("with zero: %g", got)
	}
}

func TestHarmonicLeMeanProperty(t *testing.T) {
	// AM-HM inequality: harmonic mean <= arithmetic mean for positives.
	f := func(raw [6]uint32) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
		}
		return HarmonicMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almost(got, 5) {
		t.Fatalf("mean: %g", got)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if got := Stddev(xs); !almost(got, math.Sqrt(32.0/7)) {
		t.Fatalf("stddev: %g", got)
	}
	if Stddev([]float64{1}) != 0 || Mean(nil) != 0 {
		t.Fatal("degenerate cases")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 9 {
		t.Fatalf("min/max/sum: %g %g %g", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max should be infinities")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.25); !almost(got, 2.5) {
		t.Fatalf("interpolated: %g", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
	// Input must not be mutated (Quantile sorts a copy).
	in := []float64{3, 1, 2}
	Quantile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Percentile(xs, 0); got != 15 {
		t.Fatalf("p0 = %g", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Fatalf("p100 = %g", got)
	}
	if got := Percentile(xs, 50); got != 35 {
		t.Fatalf("p50 = %g", got)
	}
	// Linear interpolation between order statistics: p25 sits a quarter
	// of the way through the four gaps, i.e. at x[1].
	if got := Percentile(xs, 25); !almost(got, 20) {
		t.Fatalf("p25 = %g", got)
	}
	if got := Percentile(xs, 90); !almost(got, 46) {
		t.Fatalf("p90 = %g", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty: %g", got)
	}
	// Out-of-range p clamps rather than panicking.
	if Percentile(xs, -10) != 15 || Percentile(xs, 200) != 50 {
		t.Fatal("clamping")
	}
}

func TestMinEmptyIsInf(t *testing.T) {
	// Documented contract: Min of nothing is the identity of min.
	if got := Min(nil); !math.IsInf(got, 1) {
		t.Fatalf("Min(nil) = %g, want +Inf", got)
	}
	if got := Max(nil); !math.IsInf(got, -1) {
		t.Fatalf("Max(nil) = %g, want -Inf", got)
	}
}
