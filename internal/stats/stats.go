// Package stats provides the small statistical helpers the Graph500
// evaluation methodology requires: harmonic means for TEPS aggregation,
// plus arithmetic summaries used in experiment reports.
package stats

import (
	"math"
	"sort"
)

// HarmonicMean returns the harmonic mean of xs. Graph500 reports the
// harmonic mean of per-root TEPS because TEPS is a rate. It returns 0 for
// an empty slice and 0 if any element is non-positive (a failed iteration
// dominates the harmonic mean toward zero, matching the spec's intent).
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (n-1 denominator),
// or 0 when fewer than two samples are present.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the minimum of xs. NOTE: for an empty slice it returns
// +Inf (the identity of min), not 0 — callers that can see empty inputs
// must guard before formatting or comparing the result.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs, the
// convention metrics reports use (p50/p95/max barrier wait). It is
// Quantile at q = p/100: linear interpolation between order statistics,
// 0 for an empty slice; p is clamped to [0, 100].
func Percentile(xs []float64, p float64) float64 {
	return Quantile(xs, p/100)
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}
