package obs

import "sort"

// This file is the virtual-time sampling layer: bucketed per-rank gauges
// recorded on a configurable grid over the session timeline. Where the
// span recorder answers "which phase ran when", the gauges answer "how
// big was the frontier, how loaded was the link, how deep was the
// retransmit backlog, how much checkpoint state was in flight" — the
// continuous quantities the paper's Figs. 9-15 argument reads off its
// per-phase time series. The instrumented layers feed it: bfs records
// frontier size and bitmap density at every level boundary, the mpi
// transport records per-link bytes in flight and its retransmit
// backlog, the pipelined collective records its exposed waits, and the
// checkpointing engine records its snapshot debt.
//
// The contract matches the span recorder exactly: every hook is a
// method on a possibly-nil *Rank that returns immediately, and a
// non-nil rank whose session has no sampler enabled returns just as
// fast — an attached-but-unsampled run executes the identical hot path
// and allocates nothing. Recording only reads clocks, never advances
// them, so virtual-time results are bit-identical with sampling on.
// Samples append to per-rank buffers in rank-deterministic order (the
// fold into buckets happens at export), so a deterministic simulation
// yields byte-identical exports at any GOMAXPROCS.

// Gauge identifies one sampled quantity.
type Gauge int

const (
	// GaugeFrontier is the global frontier size (vertices) published by
	// the level's allreduce, sampled at each level's end.
	GaugeFrontier Gauge = iota
	// GaugeFrontierDensity is GaugeFrontier over the vertex count — the
	// in_queue bitmap density that drives the wire-format selector.
	GaugeFrontierDensity
	// GaugeIntraBytes is the intra-node wire volume (bytes) the rank
	// received per bucket, spread over each transfer's flight window.
	GaugeIntraBytes
	// GaugeInterBytes is the inter-node equivalent: the rank's share of
	// bytes in flight on the NIC per bucket.
	GaugeInterBytes
	// GaugeRetransBacklog counts reliable-transport retransmissions per
	// bucket, each at the clock of the attempt it replaced — the
	// backlog timeline of a lossy link.
	GaugeRetransBacklog
	// GaugeCkptBytes is the checkpoint debt: snapshot bytes copied at
	// each level-boundary save.
	GaugeCkptBytes
	// GaugeExposedWait is the pipelined collective's exposed wait (ns
	// stalled for a chunk that was not hidden under computation) per
	// bucket.
	GaugeExposedWait
	// GaugeLiveRanks is the world's live-member count per epoch: set at
	// the start of each run and stepped at every detection-driven shrink
	// or spare promotion (instantaneous, not summed).
	GaugeLiveRanks
	NumGauges
)

// String implements fmt.Stringer; the names are stable wire identifiers
// (JSONL gauge records and Prometheus metric suffixes).
func (g Gauge) String() string {
	switch g {
	case GaugeFrontier:
		return "frontier"
	case GaugeFrontierDensity:
		return "frontier-density"
	case GaugeIntraBytes:
		return "intra-bytes"
	case GaugeInterBytes:
		return "inter-bytes"
	case GaugeRetransBacklog:
		return "retrans-backlog"
	case GaugeCkptBytes:
		return "ckpt-bytes"
	case GaugeExposedWait:
		return "exposed-wait-ns"
	case GaugeLiveRanks:
		return "live-ranks"
	default:
		return "gauge-?"
	}
}

// GaugeByName returns the gauge with the given wire name.
func GaugeByName(name string) (Gauge, bool) {
	for g := Gauge(0); g < NumGauges; g++ {
		if g.String() == name {
			return g, true
		}
	}
	return 0, false
}

// Cumulative reports how a gauge's samples fold into one bucket: true
// sums them (volumes, counts), false keeps the bucket's peak (sizes,
// densities — instantaneous state, downsampled peak-preserving).
func (g Gauge) Cumulative() bool {
	switch g {
	case GaugeFrontier, GaugeFrontierDensity, GaugeLiveRanks:
		return false
	default:
		return true
	}
}

// Sampler configures a session's virtual-time sampling grid. Enable it
// with Session.EnableSampling before the world runs.
type Sampler struct {
	// BucketNs is the grid pitch: session-timeline nanoseconds per
	// bucket. Sample k covers [k*BucketNs, (k+1)*BucketNs).
	BucketNs float64
}

// EnableSampling turns on gauge recording for the session on a grid of
// bucketNs virtual nanoseconds and returns the sampler. A non-positive
// pitch panics: a zero grid would fold every sample into bucket ±Inf.
func (s *Session) EnableSampling(bucketNs float64) *Sampler {
	if bucketNs <= 0 {
		panic("obs: sampling bucket must be positive")
	}
	s.sampler = &Sampler{BucketNs: bucketNs}
	return s.sampler
}

// Sampler returns the session's sampler, nil when sampling is off.
func (s *Session) Sampler() *Sampler { return s.sampler }

// LinkPeakBytesPerNs returns the per-stream inter-node peak bandwidth
// the attaching world published (0 when unknown); exporters derive link
// utilization from it.
func (s *Session) LinkPeakBytesPerNs() float64 { return s.linkPeak }

// SetLinkPeak publishes the machine's per-stream inter-node peak
// bandwidth (bytes/ns) for utilization reporting.
func (s *Session) SetLinkPeak(bytesPerNs float64) { s.linkPeak = bytesPerNs }

// gaugeSample is one raw observation: bucket index and value. Folding
// (sum or peak per Gauge.Cumulative) happens at read time, so the
// hot path is a bounds check and an append.
type gaugeSample struct {
	bucket int64
	v      float64
}

// bucketOf maps a raw rank-clock instant to its session-grid bucket.
func (r *Rank) bucketOf(at float64) int64 {
	return int64((r.sess.epoch + at) / r.sess.sampler.BucketNs)
}

// GaugeSet records an instantaneous sample of g at raw rank-clock time
// at. No-op on a nil rank or when the session has no sampler.
func (r *Rank) GaugeSet(g Gauge, at, v float64) {
	if r == nil || r.sess.sampler == nil {
		return
	}
	r.samples[g] = append(r.samples[g], gaugeSample{bucket: r.bucketOf(at), v: v})
}

// GaugeAdd records an additive contribution to g's bucket at raw
// rank-clock time at. No-op on a nil rank or when the session has no
// sampler.
func (r *Rank) GaugeAdd(g Gauge, at, v float64) {
	if r == nil || r.sess.sampler == nil {
		return
	}
	r.samples[g] = append(r.samples[g], gaugeSample{bucket: r.bucketOf(at), v: v})
}

// LinkTransfer spreads one received transfer's wire bytes over the
// buckets its flight window [start, end) covers, proportionally to the
// overlap — the bytes-in-flight timeline of the rank's links. start and
// end are raw rank-clock ns. No-op on a nil rank or without a sampler.
func (r *Rank) LinkTransfer(inter bool, bytes int64, start, end float64) {
	if r == nil || r.sess.sampler == nil {
		return
	}
	g := GaugeIntraBytes
	if inter {
		g = GaugeInterBytes
	}
	bn := r.sess.sampler.BucketNs
	st := r.sess.epoch + start
	en := r.sess.epoch + end
	b0 := int64(st / bn)
	b1 := int64(en / bn)
	if b0 == b1 || en <= st {
		r.samples[g] = append(r.samples[g], gaugeSample{bucket: b0, v: float64(bytes)})
		return
	}
	total := en - st
	for b := b0; b <= b1; b++ {
		lo := float64(b) * bn
		hi := lo + bn
		if lo < st {
			lo = st
		}
		if hi > en {
			hi = en
		}
		if hi <= lo {
			continue
		}
		r.samples[g] = append(r.samples[g], gaugeSample{
			bucket: b, v: float64(bytes) * (hi - lo) / total,
		})
	}
}

// GaugePoint is one folded bucket of a gauge series.
type GaugePoint struct {
	Bucket int64   // grid index: covers [Bucket*BucketNs, (Bucket+1)*BucketNs)
	V      float64 // folded value (sum or peak per Gauge.Cumulative)
}

// GaugeSeries folds the rank's raw samples of g into per-bucket points,
// sorted by bucket. Cumulative gauges sum within a bucket in record
// order; instantaneous gauges keep the largest sample — the
// peak-preserving downsampling, so a bucket coarser than the event
// spacing (one bucket spanning many BFS levels, say) still shows the
// extreme rather than whichever sample happened to land last. Returns
// nil when the rank is nil, sampling was off, or nothing was recorded.
func (r *Rank) GaugeSeries(g Gauge) []GaugePoint {
	if r == nil || len(r.samples[g]) == 0 {
		return nil
	}
	raw := r.samples[g]
	idx := make(map[int64]int, len(raw))
	pts := make([]GaugePoint, 0, len(raw))
	for _, s := range raw {
		if i, ok := idx[s.bucket]; ok {
			if g.Cumulative() {
				pts[i].V += s.v
			} else if s.v > pts[i].V {
				pts[i].V = s.v
			}
			continue
		}
		idx[s.bucket] = len(pts)
		pts = append(pts, GaugePoint{Bucket: s.bucket, V: s.v})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Bucket < pts[j].Bucket })
	return pts
}

// HasSamples reports whether any gauge recorded at least one sample.
func (r *Rank) HasSamples() bool {
	if r == nil {
		return false
	}
	for g := Gauge(0); g < NumGauges; g++ {
		if len(r.samples[g]) > 0 {
			return true
		}
	}
	return false
}
