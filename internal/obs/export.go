package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// This file defines the portable run snapshot — the data model every
// timeline consumer shares. A live Recorder dumps into a Run; a Run
// serializes to a JSONL event stream (one self-describing JSON object
// per line, for external tooling and for obsdiff); ReadRun parses the
// stream back into the identical Run. The Prometheus and HTML exporters
// and the run-diff profiler all operate on *Run, so a live recording
// and a file loaded back are interchangeable.
//
// The stream is byte-deterministic for a deterministic recording:
// lines are emitted in session, rank, and record order, struct fields
// marshal in declaration order, and maps marshal with sorted keys.

// Run is a portable snapshot of one recording.
type Run struct {
	Sessions []*RunSession
}

// RunSession is one session's snapshot.
type RunSession struct {
	Label    string
	BucketNs float64 // sampling grid pitch; 0 when sampling was off
	LinkPeak float64 // per-stream inter-node peak bandwidth (bytes/ns), 0 unknown
	Marks    []float64
	Ranks    []*RunRank
}

// RunRank is one rank's snapshot.
type RunRank struct {
	ID     int
	Node   int
	Socket int
	Spans  []Span
	Comm   Comm
	Gauges [NumGauges][]GaugePoint
}

// Dump snapshots the recorder into a Run. Gauge streams are folded into
// sorted per-bucket series (the wire form); spans and counters are
// copied as recorded.
func (r *Recorder) Dump() *Run {
	run := &Run{}
	for _, s := range r.Sessions() {
		rs := &RunSession{
			Label:    s.Label,
			LinkPeak: s.linkPeak,
			Marks:    append([]float64(nil), s.marks...),
		}
		if s.sampler != nil {
			rs.BucketNs = s.sampler.BucketNs
		}
		for _, rk := range s.Ranks() {
			rr := &RunRank{
				ID: rk.ID, Node: rk.Node, Socket: rk.Socket,
				Spans: append([]Span(nil), rk.spans...),
				Comm:  rk.comm,
			}
			rr.Comm.BarrierWaits = append([]float64(nil), rk.comm.BarrierWaits...)
			for g := Gauge(0); g < NumGauges; g++ {
				rr.Gauges[g] = rk.GaugeSeries(g)
			}
			rs.Ranks = append(rs.Ranks, rr)
		}
		run.Sessions = append(run.Sessions, rs)
	}
	return run
}

// JSONL line records. The "t" tag makes each line self-describing; "s"
// and "r" are the session and rank indices the line belongs to.
type jsonlSession struct {
	T        string    `json:"t"` // "session"
	S        int       `json:"s"`
	Label    string    `json:"label"`
	Ranks    int       `json:"ranks"`
	BucketNs float64   `json:"bucket_ns,omitempty"`
	LinkPeak float64   `json:"link_peak,omitempty"`
	Marks    []float64 `json:"marks,omitempty"`
}

type jsonlRank struct {
	T      string `json:"t"` // "rank"
	S      int    `json:"s"`
	R      int    `json:"r"`
	ID     int    `json:"id"`
	Node   int    `json:"node"`
	Socket int    `json:"socket"`
}

type jsonlSpan struct {
	T     string  `json:"t"` // "span"
	S     int     `json:"s"`
	R     int     `json:"r"`
	Name  string  `json:"name"`
	Cat   string  `json:"cat"`
	Level int     `json:"level"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// commWire mirrors Comm with stable wire names.
type commWire struct {
	Msgs             [NumHops]int64   `json:"msgs"`
	Bytes            [NumHops]int64   `json:"bytes"`
	RawBytes         [NumHops]int64   `json:"raw_bytes"`
	Barriers         int64            `json:"barriers,omitempty"`
	BarrierWaitNs    float64          `json:"barrier_wait_ns,omitempty"`
	BarrierWaits     []float64        `json:"barrier_waits,omitempty"`
	NodeBarriers     int64            `json:"node_barriers,omitempty"`
	NodeBarrierWait  float64          `json:"node_barrier_wait_ns,omitempty"`
	Collectives      map[string]int64 `json:"collectives,omitempty"`
	Faults           map[string]int64 `json:"faults,omitempty"`
	Retransmits      int64            `json:"retransmits,omitempty"`
	CorruptDetected  int64            `json:"corrupt_detected,omitempty"`
	DupsDelivered    int64            `json:"dups_delivered,omitempty"`
	Reordered        int64            `json:"reordered,omitempty"`
	Acks             int64            `json:"acks,omitempty"`
	XportOverheadNs  float64          `json:"xport_overhead_ns,omitempty"`
	XportOverheadBys int64            `json:"xport_overhead_bytes,omitempty"`
	OverlapHiddenNs  float64          `json:"overlap_hidden_ns,omitempty"`
	OverlapExposedNs float64          `json:"overlap_exposed_ns,omitempty"`
}

type jsonlComm struct {
	T    string   `json:"t"` // "comm"
	S    int      `json:"s"`
	R    int      `json:"r"`
	Comm commWire `json:"comm"`
}

type jsonlGauge struct {
	T string  `json:"t"` // "gauge"
	S int     `json:"s"`
	R int     `json:"r"`
	G string  `json:"g"`
	B int64   `json:"b"`
	V float64 `json:"v"`
}

func commToWire(c *Comm) commWire {
	return commWire{
		Msgs: c.Msgs, Bytes: c.Bytes, RawBytes: c.RawBytes,
		Barriers: c.Barriers, BarrierWaitNs: c.BarrierWaitNs,
		BarrierWaits: c.BarrierWaits,
		NodeBarriers: c.NodeBarriers, NodeBarrierWait: c.NodeBarrierWaitNs,
		Collectives: c.Collectives, Faults: c.Faults,
		Retransmits: c.Retransmits, CorruptDetected: c.CorruptDetected,
		DupsDelivered: c.DupsDelivered, Reordered: c.Reordered, Acks: c.Acks,
		XportOverheadNs: c.XportOverheadNs, XportOverheadBys: c.XportOverheadBys,
		OverlapHiddenNs: c.OverlapHiddenNs, OverlapExposedNs: c.OverlapExposedNs,
	}
}

func wireToComm(w *commWire) Comm {
	return Comm{
		Msgs: w.Msgs, Bytes: w.Bytes, RawBytes: w.RawBytes,
		Barriers: w.Barriers, BarrierWaitNs: w.BarrierWaitNs,
		BarrierWaits: w.BarrierWaits,
		NodeBarriers: w.NodeBarriers, NodeBarrierWaitNs: w.NodeBarrierWait,
		Collectives: w.Collectives, Faults: w.Faults,
		Retransmits: w.Retransmits, CorruptDetected: w.CorruptDetected,
		DupsDelivered: w.DupsDelivered, Reordered: w.Reordered, Acks: w.Acks,
		XportOverheadNs: w.XportOverheadNs, XportOverheadBys: w.XportOverheadBys,
		OverlapHiddenNs: w.OverlapHiddenNs, OverlapExposedNs: w.OverlapExposedNs,
	}
}

// WriteJSONL writes the run as a JSONL event stream: for each session a
// "session" line, then per rank a "rank" line, its "span" lines in
// record order, one "comm" line, and its "gauge" lines in gauge and
// bucket order.
func (run *Run) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline JSONL wants
	for si, s := range run.Sessions {
		if err := enc.Encode(jsonlSession{
			T: "session", S: si, Label: s.Label, Ranks: len(s.Ranks),
			BucketNs: s.BucketNs, LinkPeak: s.LinkPeak, Marks: s.Marks,
		}); err != nil {
			return err
		}
		for ri, rk := range s.Ranks {
			if err := enc.Encode(jsonlRank{
				T: "rank", S: si, R: ri, ID: rk.ID, Node: rk.Node, Socket: rk.Socket,
			}); err != nil {
				return err
			}
			for _, sp := range rk.Spans {
				if err := enc.Encode(jsonlSpan{
					T: "span", S: si, R: ri, Name: sp.Name, Cat: sp.Cat,
					Level: sp.Level, Start: sp.Start, End: sp.End,
				}); err != nil {
					return err
				}
			}
			if err := enc.Encode(jsonlComm{
				T: "comm", S: si, R: ri, Comm: commToWire(&rk.Comm),
			}); err != nil {
				return err
			}
			for g := Gauge(0); g < NumGauges; g++ {
				for _, pt := range rk.Gauges[g] {
					if err := enc.Encode(jsonlGauge{
						T: "gauge", S: si, R: ri, G: g.String(), B: pt.Bucket, V: pt.V,
					}); err != nil {
						return err
					}
				}
			}
		}
	}
	return bw.Flush()
}

// WriteTimelineJSONL writes the recorder's snapshot as a JSONL stream.
func (r *Recorder) WriteTimelineJSONL(w io.Writer) error {
	return r.Dump().WriteJSONL(w)
}

// WriteTimelineFile writes the recorder's JSONL stream to path.
func (r *Recorder) WriteTimelineFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteTimelineJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadRun parses a JSONL stream written by WriteJSONL back into a Run.
// It validates that every line references a session and rank that was
// already declared.
func ReadRun(r io.Reader) (*Run, error) {
	run := &Run{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	rank := func(s, ri int) (*RunRank, error) {
		if s < 0 || s >= len(run.Sessions) {
			return nil, fmt.Errorf("line %d: session %d not declared", lineNo, s)
		}
		sess := run.Sessions[s]
		if ri < 0 || ri >= len(sess.Ranks) {
			return nil, fmt.Errorf("line %d: rank %d of session %d not declared", lineNo, ri, s)
		}
		return sess.Ranks[ri], nil
	}
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		switch probe.T {
		case "session":
			var l jsonlSession
			if err := json.Unmarshal(line, &l); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			if l.S != len(run.Sessions) {
				return nil, fmt.Errorf("line %d: session index %d, want %d", lineNo, l.S, len(run.Sessions))
			}
			run.Sessions = append(run.Sessions, &RunSession{
				Label: l.Label, BucketNs: l.BucketNs, LinkPeak: l.LinkPeak, Marks: l.Marks,
			})
		case "rank":
			var l jsonlRank
			if err := json.Unmarshal(line, &l); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			if l.S < 0 || l.S >= len(run.Sessions) {
				return nil, fmt.Errorf("line %d: session %d not declared", lineNo, l.S)
			}
			sess := run.Sessions[l.S]
			if l.R != len(sess.Ranks) {
				return nil, fmt.Errorf("line %d: rank index %d, want %d", lineNo, l.R, len(sess.Ranks))
			}
			sess.Ranks = append(sess.Ranks, &RunRank{ID: l.ID, Node: l.Node, Socket: l.Socket})
		case "span":
			var l jsonlSpan
			if err := json.Unmarshal(line, &l); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			rk, err := rank(l.S, l.R)
			if err != nil {
				return nil, err
			}
			rk.Spans = append(rk.Spans, Span{
				Name: l.Name, Cat: l.Cat, Level: l.Level, Start: l.Start, End: l.End,
			})
		case "comm":
			var l jsonlComm
			if err := json.Unmarshal(line, &l); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			rk, err := rank(l.S, l.R)
			if err != nil {
				return nil, err
			}
			rk.Comm = wireToComm(&l.Comm)
		case "gauge":
			var l jsonlGauge
			if err := json.Unmarshal(line, &l); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			rk, err := rank(l.S, l.R)
			if err != nil {
				return nil, err
			}
			g, ok := GaugeByName(l.G)
			if !ok {
				return nil, fmt.Errorf("line %d: unknown gauge %q", lineNo, l.G)
			}
			rk.Gauges[g] = append(rk.Gauges[g], GaugePoint{Bucket: l.B, V: l.V})
		default:
			return nil, fmt.Errorf("line %d: unknown record type %q", lineNo, probe.T)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(run.Sessions) == 0 {
		return nil, fmt.Errorf("empty timeline: no session records")
	}
	return run, nil
}

// ReadRunFile reads a JSONL timeline from path.
func ReadRunFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	run, err := ReadRun(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return run, nil
}
