package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// chromeEvent is one entry of the Chrome trace_event JSON array
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Timestamps and durations are microseconds; pid groups one session's
// ranks into a process, tid is the rank — one track per rank.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"` // required on "X" events, even when 0
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the trace_event "JSON object format" envelope, which
// chrome://tracing and Perfetto both open directly.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTraceJSON renders the recorder's sessions as a Chrome
// trace_event file. Sessions become processes (pid = session index + 1,
// named by the session label); ranks become threads in rank order, so
// every rank is one horizontal track. The output is byte-for-byte
// deterministic for a deterministic recording: events are emitted in
// session, rank, and record order, and args maps marshal with sorted
// keys.
func (r *Recorder) ChromeTraceJSON() ([]byte, error) {
	var events []chromeEvent
	for si, s := range r.Sessions() {
		pid := si + 1
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": s.Label},
		})
		events = append(events, chromeEvent{
			Name: "process_sort_index", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"sort_index": si},
		})
		for _, rk := range s.Ranks() {
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: rk.ID,
				Args: map[string]any{
					"name": fmt.Sprintf("rank %d (node %d, socket %d)", rk.ID, rk.Node, rk.Socket),
				},
			})
			events = append(events, chromeEvent{
				Name: "thread_sort_index", Ph: "M", Pid: pid, Tid: rk.ID,
				Args: map[string]any{"sort_index": rk.ID},
			})
		}
		for _, rk := range s.Ranks() {
			for _, sp := range rk.Spans() {
				dur := (sp.End - sp.Start) / 1e3
				ev := chromeEvent{
					Name: sp.Name, Cat: sp.Cat, Ph: "X",
					Ts:  sp.Start / 1e3,
					Dur: &dur,
					Pid: pid, Tid: rk.ID,
				}
				if sp.Level >= 0 {
					ev.Args = map[string]any{"level": sp.Level}
				}
				events = append(events, ev)
			}
		}
	}
	return json.Marshal(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ns"})
}

// WriteChromeTrace writes the trace_event JSON to w.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	data, err := r.ChromeTraceJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// WriteChromeTraceFile writes the trace_event JSON to path.
func (r *Recorder) WriteChromeTraceFile(path string) error {
	data, err := r.ChromeTraceJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
