// Package obs is the structured observability layer over the
// simulator's virtual time. Where internal/trace keeps a six-bucket
// per-phase accumulator, obs records the raw event stream the paper's
// profiling methodology (Figs. 11-14) is distilled from: one span per
// phase of every BFS level on every rank, one span per collective call,
// and per-rank communication counters (messages and bytes by NUMA hop
// distance, barrier waits). Exporters turn the stream into a Chrome
// trace_event file (internal/obs/chrome.go) and an aggregated metrics
// report with critical-path and stall attribution
// (internal/obs/report.go).
//
// Recording is disabled by default and zero-cost when off: every hook
// in the hot paths is a method on a possibly-nil *Rank that returns
// immediately, so a run without an attached Recorder executes exactly
// the instruction sequence of the untraced simulator and produces
// bit-identical virtual times. A run with the Recorder attached only
// reads clocks — it never advances them — so results are identical
// with tracing on, too.
//
// A Recorder holds one Session per simulated world (one benchmark
// configuration); a Session holds one Rank stream per MPI rank. Because
// every rank is its own goroutine writing only to its own stream, no
// locks are needed and recording order is as deterministic as the
// simulation itself.
package obs

import "numabfs/internal/trace"

// Hop classifies a point-to-point transfer by the NUMA distance it
// crosses, the granularity at which Eq. (2)'s data-volume claims are
// stated: between two ranks of one socket, between sockets of one node
// (QPI / shared memory), or between nodes (InfiniBand).
type Hop int

const (
	HopIntraSocket Hop = iota
	HopIntraNode
	HopInterNode
	NumHops
)

// String implements fmt.Stringer.
func (h Hop) String() string {
	switch h {
	case HopIntraSocket:
		return "intra-socket"
	case HopIntraNode:
		return "intra-node"
	case HopInterNode:
		return "inter-node"
	default:
		return "hop-?"
	}
}

// ClassifyHop returns the hop class of a transfer from (srcNode,
// srcSocket) to (dstNode, dstSocket).
func ClassifyHop(srcNode, srcSocket, dstNode, dstSocket int) Hop {
	if srcNode != dstNode {
		return HopInterNode
	}
	if srcSocket != dstSocket {
		return HopIntraNode
	}
	return HopIntraSocket
}

// Span categories.
const (
	// CatPhase marks spans charged to a trace.Phase bucket; summing them
	// reproduces the trace.Breakdown accumulators.
	CatPhase = "phase"
	// CatCollective marks one collective call (allgather, alltoallv,
	// allreduce, ...). Collective spans nest inside phase spans.
	CatCollective = "collective"
	// CatLevel marks one whole BFS level on one rank; phase spans nest
	// inside it. The critical-path walk is built on these.
	CatLevel = "level"
	// CatFault marks injected-fault events (crashes, checkpoint restores)
	// as zero-duration instants on the crashing rank's timeline.
	CatFault = "fault"
)

// Span is one recorded interval of a rank's virtual timeline. Start and
// End are session-timeline nanoseconds: consecutive BFS roots (whose
// rank clocks each restart at zero) are laid end to end by the session
// epoch, so a whole benchmark reads as one continuous timeline.
type Span struct {
	Name  string
	Cat   string
	Level int // BFS level for phase/level spans, -1 otherwise
	Start float64
	End   float64
}

// Comm accumulates one rank's communication counters.
type Comm struct {
	// Msgs and Bytes count sender-side point-to-point transfers by hop
	// class (each message is counted once, at its sender). Bytes is the
	// wire size — what crossed the network; RawBytes is the logical
	// (pre-compression) size, equal to Bytes except for the encoded
	// payloads of the compressed allgather, where the gap between the
	// two is the compression saving.
	Msgs     [NumHops]int64
	Bytes    [NumHops]int64
	RawBytes [NumHops]int64
	// Barriers counts global barrier entries; BarrierWaitNs sums the
	// rank's wait (arrival to last arrival) and BarrierWaits keeps the
	// individual samples for percentile reporting.
	Barriers      int64
	BarrierWaitNs float64
	BarrierWaits  []float64
	// NodeBarriers / NodeBarrierWaitNs are the node-scoped equivalents
	// (shared-memory epochs).
	NodeBarriers      int64
	NodeBarrierWaitNs float64
	// Collectives counts collective calls by name.
	Collectives map[string]int64
	// Faults counts injected-fault events by kind ("crash", "recover").
	Faults map[string]int64
	// Reliable-transport counters, filled only under a loss plan. The
	// receiver of a message records its protocol outcomes, so per-rank
	// values attribute transport work to the rank that waited for it.
	Retransmits      int64   // data frames received beyond each message's first attempt
	CorruptDetected  int64   // frames that failed the CRC (handled as drops)
	DupsDelivered    int64   // duplicate frame deliveries discarded
	Reordered        int64   // frames held for resequencing
	Acks             int64   // ack frames sent back to the sender
	XportOverheadNs  float64 // extra delivery latency versus a clean link (retransmit waits, holds, acks)
	XportOverheadBys int64   // protocol bytes (headers, retransmits, dups, acks) this rank received
	// Pipelined-allgather overlap counters (OptOverlapAllgather): transfer
	// time hidden under the rank's own decode/scan versus time the rank
	// stalled in Wait for it. Zero for every non-pipelined collective.
	OverlapHiddenNs  float64
	OverlapExposedNs float64
}

// merge adds o's counters into c (BarrierWaits samples included).
func (c *Comm) merge(o *Comm) {
	for h := Hop(0); h < NumHops; h++ {
		c.Msgs[h] += o.Msgs[h]
		c.Bytes[h] += o.Bytes[h]
		c.RawBytes[h] += o.RawBytes[h]
	}
	c.Barriers += o.Barriers
	c.BarrierWaitNs += o.BarrierWaitNs
	c.BarrierWaits = append(c.BarrierWaits, o.BarrierWaits...)
	c.NodeBarriers += o.NodeBarriers
	c.NodeBarrierWaitNs += o.NodeBarrierWaitNs
	for name, n := range o.Collectives {
		if c.Collectives == nil {
			c.Collectives = make(map[string]int64)
		}
		c.Collectives[name] += n
	}
	for name, n := range o.Faults {
		if c.Faults == nil {
			c.Faults = make(map[string]int64)
		}
		c.Faults[name] += n
	}
	c.Retransmits += o.Retransmits
	c.CorruptDetected += o.CorruptDetected
	c.DupsDelivered += o.DupsDelivered
	c.Reordered += o.Reordered
	c.Acks += o.Acks
	c.XportOverheadNs += o.XportOverheadNs
	c.XportOverheadBys += o.XportOverheadBys
	c.OverlapHiddenNs += o.OverlapHiddenNs
	c.OverlapExposedNs += o.OverlapExposedNs
}

// Recorder collects observability sessions. The zero Recorder is ready
// to use; a nil *Recorder means observability is off.
type Recorder struct {
	sessions []*Session
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// NewSession opens a new session (one simulated world / benchmark
// configuration) under the given human-readable label.
func (r *Recorder) NewSession(label string) *Session {
	s := &Session{Label: label}
	r.sessions = append(r.sessions, s)
	return s
}

// Sessions returns the recorder's sessions in creation order.
func (r *Recorder) Sessions() []*Session { return r.sessions }

// Adopt moves sub's sessions onto the end of r, preserving their order.
// The parallel experiment runner gives every cell a private Recorder and
// adopts them in submission order once all cells finish, so the merged
// session sequence — and every export derived from it — is identical to
// a sequential run's. Call only after the worlds recording into sub have
// completed.
func (r *Recorder) Adopt(sub *Recorder) {
	r.sessions = append(r.sessions, sub.sessions...)
	sub.sessions = nil
}

// Session is the event stream of one simulated world. Rank streams are
// appended by the world on attach; Advance stitches the per-root clock
// resets into one continuous timeline.
type Session struct {
	Label string

	ranks []*Rank
	// epoch is the session-timeline offset added to raw rank clocks:
	// the sum of all virtual durations that already elapsed before the
	// current World run (setup, earlier roots).
	epoch float64
	// marks are the segment boundaries Advance recorded (end of setup,
	// end of each root), for grouping spans by BFS iteration.
	marks []float64
	// sampler, when non-nil, turns on the virtual-time gauge grid
	// (internal/obs/sample.go); linkPeak is the attaching world's
	// per-stream inter-node peak bandwidth for utilization reporting.
	sampler  *Sampler
	linkPeak float64
}

// AddRank appends a rank stream with its placement coordinates and
// returns it.
func (s *Session) AddRank(rank, node, socket int) *Rank {
	r := &Rank{sess: s, ID: rank, Node: node, Socket: socket}
	s.ranks = append(s.ranks, r)
	return r
}

// Ranks returns the session's rank streams in rank order.
func (s *Session) Ranks() []*Rank { return s.ranks }

// Advance shifts the session timeline by d virtual ns and records a
// segment boundary. The simulated world calls it with its maximum clock
// whenever rank clocks are about to be reset (between BFS roots), so
// span timestamps from consecutive roots do not overlap.
func (s *Session) Advance(d float64) {
	if d <= 0 {
		return
	}
	s.epoch += d
	s.marks = append(s.marks, s.epoch)
}

// Marks returns the recorded segment boundaries (ascending).
func (s *Session) Marks() []float64 { return s.marks }

// segment returns the index of the segment a session-timeline instant
// belongs to: 0 before the first mark, i after mark i-1.
func (s *Session) segment(t float64) int {
	lo, hi := 0, len(s.marks)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.marks[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Rank records one simulated rank's spans and counters. All methods are
// safe on a nil receiver and no-op, so call sites need no enabled-check:
// a nil *Rank IS the disabled recorder.
type Rank struct {
	sess   *Session
	ID     int
	Node   int
	Socket int

	spans   []Span
	comm    Comm
	samples [NumGauges][]gaugeSample
}

// Spans returns the rank's recorded spans in record order.
func (r *Rank) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// Comm returns the rank's communication counters.
func (r *Rank) Comm() *Comm {
	if r == nil {
		return nil
	}
	return &r.comm
}

// span appends a span on the session timeline.
func (r *Rank) span(name, cat string, level int, start, end float64) {
	e := r.sess.epoch
	r.spans = append(r.spans, Span{
		Name: name, Cat: cat, Level: level,
		Start: e + start, End: e + end,
	})
}

// PhaseSpan records one interval charged to phase p at the given BFS
// level; start and end are raw rank-clock ns.
func (r *Rank) PhaseSpan(p trace.Phase, level int, start, end float64) {
	if r == nil {
		return
	}
	r.span(p.String(), CatPhase, level, start, end)
}

// LevelSpan records one whole BFS level (all phases).
func (r *Rank) LevelSpan(bottomUp bool, level int, start, end float64) {
	if r == nil {
		return
	}
	name := "td level"
	if bottomUp {
		name = "bu level"
	}
	r.span(name, CatLevel, level, start, end)
}

// Collective records one collective call and counts it by name.
func (r *Rank) Collective(name string, start, end float64) {
	if r == nil {
		return
	}
	r.span(name, CatCollective, -1, start, end)
	if r.comm.Collectives == nil {
		r.comm.Collectives = make(map[string]int64)
	}
	r.comm.Collectives[name]++
}

// CountMsg counts one sender-side point-to-point transfer: wireBytes
// crossed the network, rawBytes is the logical (pre-compression) size.
func (r *Rank) CountMsg(h Hop, wireBytes, rawBytes int64) {
	if r == nil {
		return
	}
	r.comm.Msgs[h]++
	r.comm.Bytes[h] += wireBytes
	r.comm.RawBytes[h] += rawBytes
}

// BarrierWait records one global-barrier wait sample.
func (r *Rank) BarrierWait(ns float64) {
	if r == nil {
		return
	}
	r.comm.Barriers++
	r.comm.BarrierWaitNs += ns
	r.comm.BarrierWaits = append(r.comm.BarrierWaits, ns)
}

// NodeBarrierWait records one node-barrier wait.
func (r *Rank) NodeBarrierWait(ns float64) {
	if r == nil {
		return
	}
	r.comm.NodeBarriers++
	r.comm.NodeBarrierWaitNs += ns
}

// Xport records the reliable-transport outcomes of one received
// message: retransmitted frames (corrupt of them CRC-failed), discarded
// duplicates, resequencing holds, acks sent, the protocol bytes and the
// extra latency versus a clean link. Called by the receiving rank, once
// per message, only when a loss plan is active.
func (r *Rank) Xport(retrans, corrupt, dups, reorders, acks, overheadBytes int64, overheadNs float64) {
	if r == nil {
		return
	}
	r.comm.Retransmits += retrans
	r.comm.CorruptDetected += corrupt
	r.comm.DupsDelivered += dups
	r.comm.Reordered += reorders
	r.comm.Acks += acks
	r.comm.XportOverheadBys += overheadBytes
	r.comm.XportOverheadNs += overheadNs
}

// Overlap records one pipelined collective's hidden-vs-exposed transfer
// split (counters only — hidden time is concurrent with computation
// spans already on the timeline, so it is not a span of its own).
func (r *Rank) Overlap(hiddenNs, exposedNs float64) {
	if r == nil {
		return
	}
	r.comm.OverlapHiddenNs += hiddenNs
	r.comm.OverlapExposedNs += exposedNs
}

// FaultEvent records one injected-fault instant ("crash", "recover") at
// the given raw rank-clock time and counts it by kind.
func (r *Rank) FaultEvent(kind string, at float64) {
	if r == nil {
		return
	}
	r.span(kind, CatFault, -1, at, at)
	if r.comm.Faults == nil {
		r.comm.Faults = make(map[string]int64)
	}
	r.comm.Faults[kind]++
}
