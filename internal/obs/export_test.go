package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"numabfs/internal/trace"
)

// sampledRecorder builds a fixed recording that exercises the full
// export surface: two sessions, the first sampled (gauges, link peak,
// comm counters, two segments), the second without sampling.
func sampledRecorder() *Recorder {
	rec := NewRecorder()

	s := rec.NewSession("lvl5 scale=14")
	s.EnableSampling(100)
	s.SetLinkPeak(2.5)
	r0 := s.AddRank(0, 0, 0)
	r1 := s.AddRank(1, 0, 1)

	r0.PhaseSpan(trace.TDComp, 0, 0, 120)
	r0.PhaseSpan(trace.TDComm, 0, 120, 200)
	r0.LevelSpan(false, 0, 0, 200)
	r0.GaugeSet(GaugeFrontier, 200, 64)
	r0.GaugeSet(GaugeFrontierDensity, 200, 0.25)
	r0.LinkTransfer(true, 500, 120, 200)
	r0.CountMsg(HopInterNode, 500, 800)
	r0.BarrierWait(12)

	r1.PhaseSpan(trace.BUComp, 0, 0, 90)
	r1.PhaseSpan(trace.Stall, 0, 90, 200)
	r1.LevelSpan(true, 0, 0, 200)
	r1.Collective("allgather-pipelined", 10, 80)
	r1.Overlap(55, 15)
	r1.GaugeAdd(GaugeExposedWait, 70, 15)
	r1.GaugeAdd(GaugeCkptBytes, 150, 4096)
	r1.LinkTransfer(false, 320, 30, 60)
	r1.BarrierWait(30)

	s.Advance(200)
	r0.PhaseSpan(trace.TDComp, 1, 0, 50)
	r0.GaugeSet(GaugeFrontier, 50, 8)
	r1.Xport(2, 1, 0, 1, 3, 96, 44)
	r1.GaugeAdd(GaugeRetransBacklog, 20, 2)

	s2 := rec.NewSession("plain")
	r := s2.AddRank(0, 1, 2)
	r.PhaseSpan(trace.Switch, 2, 0, 7.5)
	r.FaultEvent("crash", 3)

	return rec
}

func TestTimelineRoundTrip(t *testing.T) {
	rec := sampledRecorder()
	want := rec.Dump()
	var buf bytes.Buffer
	if err := rec.WriteTimelineJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got: %+v\nwant: %+v", got, want)
	}
}

func TestTimelineGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampledRecorder().WriteTimelineJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "timeline_golden.jsonl", buf.Bytes())
}

func TestPromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampledRecorder().WritePromText(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "prom_golden.txt", buf.Bytes())
}

func TestHTMLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampledRecorder().WriteHTMLReport(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "html_golden.html", buf.Bytes())
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with OBS_UPDATE_GOLDEN=1 go test -run TestRegenerateGolden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n got: %.2000s\nwant: %.2000s", golden, got, want)
	}
}

// TestExportDeterminism pins byte determinism of every exporter: two
// identical recordings must export identical bytes.
func TestExportDeterminism(t *testing.T) {
	render := func() (jsonl, prom, html string) {
		rec := sampledRecorder()
		var a, b, c bytes.Buffer
		if err := rec.WriteTimelineJSONL(&a); err != nil {
			t.Fatal(err)
		}
		if err := rec.WritePromText(&b); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteHTMLReport(&c); err != nil {
			t.Fatal(err)
		}
		return a.String(), b.String(), c.String()
	}
	j1, p1, h1 := render()
	j2, p2, h2 := render()
	if j1 != j2 {
		t.Error("JSONL export is nondeterministic")
	}
	if p1 != p2 {
		t.Error("Prometheus export is nondeterministic")
	}
	if h1 != h2 {
		t.Error("HTML export is nondeterministic")
	}
}

func TestHTMLStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := sampledRecorder().WriteHTMLReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"lvl5 scale=14",
		"rank x phase",
		"<svg",
		"frontier",
		"sampling grid 100 ns",
		"</html>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
}

func TestReadRunErrors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":          "",
		"not json":       "nope\n",
		"unknown type":   `{"t":"bogus"}` + "\n",
		"rank first":     `{"t":"rank","s":0,"r":0}` + "\n",
		"span no rank":   `{"t":"session","s":0,"label":"x","ranks":1}` + "\n" + `{"t":"span","s":0,"r":0}` + "\n",
		"bad gauge name": `{"t":"session","s":0,"label":"x","ranks":1}` + "\n" + `{"t":"rank","s":0,"r":0}` + "\n" + `{"t":"gauge","s":0,"r":0,"g":"bogus"}` + "\n",
		"session gap":    `{"t":"session","s":1,"label":"x"}` + "\n",
	} {
		if _, err := ReadRun(strings.NewReader(in)); err == nil {
			t.Errorf("ReadRun(%s) succeeded, want error", name)
		}
	}
}

func TestPhaseHeatmap(t *testing.T) {
	run := sampledRecorder().Dump()
	hm := run.Sessions[0].PhaseHeatmap()
	if len(hm.Rows) != 2 || len(hm.Cols) != int(trace.NumPhases) {
		t.Fatalf("heatmap shape %dx%d", len(hm.Rows), len(hm.Cols))
	}
	// rank 0: td-comp 120 in segment 0 + 50 in segment 1.
	col := -1
	for i, c := range hm.Cols {
		if c == trace.TDComp.String() {
			col = i
		}
	}
	if col < 0 || hm.Cells[0][col] != 170 {
		t.Fatalf("td-comp cell = %g, want 170", hm.Cells[0][col])
	}
	if hm.Max < 170 {
		t.Fatalf("heatmap max = %g", hm.Max)
	}
}

func TestGaugeHeatmapAndCoarsen(t *testing.T) {
	run := sampledRecorder().Dump()
	s := run.Sessions[0]
	hm := s.GaugeHeatmap(GaugeFrontier)
	if hm == nil {
		t.Fatal("no frontier heatmap")
	}
	// Buckets 2 (t=200, v=64) and 2 again for segment-1 sample at
	// session time 250 -> bucket 2: last write wins in fold... the two
	// samples land in different folds only if buckets differ.
	if len(hm.Rows) != 2 {
		t.Fatalf("rows = %d", len(hm.Rows))
	}
	// No samples for this gauge in session 2.
	if run.Sessions[1].GaugeHeatmap(GaugeFrontier) != nil {
		t.Fatal("unsampled session produced a heatmap")
	}

	wide := &Heatmap{
		Cols:  []string{"0", "1", "2", "3", "4"},
		Rows:  []string{"r0"},
		Cells: [][]float64{{1, 2, 3, 4, 5}},
	}
	nar := wide.Coarsen(2)
	if len(nar.Cols) != 2 || nar.Cells[0][0] != 6 || nar.Cells[0][1] != 9 {
		t.Fatalf("coarsened = %+v", nar)
	}
	if got := wide.Coarsen(10); got != wide {
		t.Fatal("Coarsen widened a narrow heatmap")
	}
}
