package obs

import (
	"testing"
)

// TestNilSamplerNoOps pins the disabled-sampler contract: every gauge
// hook must be safe and do nothing on a nil *Rank AND on a live rank
// whose session never enabled sampling.
func TestNilSamplerNoOps(t *testing.T) {
	var nilRank *Rank
	nilRank.GaugeSet(GaugeFrontier, 5, 100)
	nilRank.GaugeAdd(GaugeCkptBytes, 5, 100)
	nilRank.LinkTransfer(true, 4096, 0, 10)
	if nilRank.GaugeSeries(GaugeFrontier) != nil {
		t.Fatal("nil rank has gauge series")
	}
	if nilRank.HasSamples() {
		t.Fatal("nil rank has samples")
	}

	rec := NewRecorder()
	s := rec.NewSession("off")
	rk := s.AddRank(0, 0, 0)
	rk.GaugeSet(GaugeFrontier, 5, 100)
	rk.GaugeAdd(GaugeCkptBytes, 5, 100)
	rk.LinkTransfer(false, 64, 0, 10)
	if rk.HasSamples() {
		t.Fatal("sampler-off rank recorded samples")
	}
}

// TestGaugeHooksZeroAlloc pins the hot-path cost with sampling off:
// gauge hooks on a nil rank and on an attached-but-unsampled rank must
// allocate nothing.
func TestGaugeHooksZeroAlloc(t *testing.T) {
	var nilRank *Rank
	rec := NewRecorder()
	rk := rec.NewSession("off").AddRank(0, 0, 0)
	if n := testing.AllocsPerRun(100, func() {
		nilRank.GaugeSet(GaugeFrontier, 1, 2)
		nilRank.GaugeAdd(GaugeInterBytes, 1, 2)
		nilRank.LinkTransfer(true, 64, 0, 5)
		rk.GaugeSet(GaugeFrontier, 1, 2)
		rk.GaugeAdd(GaugeInterBytes, 1, 2)
		rk.LinkTransfer(true, 64, 0, 5)
	}); n != 0 {
		t.Fatalf("gauge hooks allocate %g with sampling off, want 0", n)
	}
}

func TestGaugeFolding(t *testing.T) {
	rec := NewRecorder()
	s := rec.NewSession("fold")
	s.EnableSampling(100)
	rk := s.AddRank(0, 0, 0)

	// Cumulative gauge: samples in one bucket sum.
	rk.GaugeAdd(GaugeCkptBytes, 10, 5)
	rk.GaugeAdd(GaugeCkptBytes, 90, 7)
	rk.GaugeAdd(GaugeCkptBytes, 150, 1)
	// Instantaneous gauge: the bucket keeps its peak, so a frontier that
	// drains to zero inside one coarse bucket still shows its maximum.
	rk.GaugeSet(GaugeFrontier, 20, 11)
	rk.GaugeSet(GaugeFrontier, 80, 13)
	rk.GaugeSet(GaugeFrontier, 95, 4)
	rk.GaugeSet(GaugeFrontier, 350, 17)

	ck := rk.GaugeSeries(GaugeCkptBytes)
	if len(ck) != 2 || ck[0] != (GaugePoint{0, 12}) || ck[1] != (GaugePoint{1, 1}) {
		t.Fatalf("ckpt series = %+v", ck)
	}
	fr := rk.GaugeSeries(GaugeFrontier)
	if len(fr) != 2 || fr[0] != (GaugePoint{0, 13}) || fr[1] != (GaugePoint{3, 17}) {
		t.Fatalf("frontier series = %+v", fr)
	}
	if !rk.HasSamples() {
		t.Fatal("HasSamples = false after recording")
	}
}

// TestGaugeEpochStitching: gauges recorded after Session.Advance land
// in buckets on the continuous session timeline, like spans.
func TestGaugeEpochStitching(t *testing.T) {
	rec := NewRecorder()
	s := rec.NewSession("stitch")
	s.EnableSampling(100)
	rk := s.AddRank(0, 0, 0)

	rk.GaugeSet(GaugeFrontier, 50, 1) // bucket 0
	s.Advance(1000)                   // clocks reset; epoch now 1000
	rk.GaugeSet(GaugeFrontier, 50, 2) // session time 1050 -> bucket 10

	fr := rk.GaugeSeries(GaugeFrontier)
	if len(fr) != 2 || fr[0] != (GaugePoint{0, 1}) || fr[1] != (GaugePoint{10, 2}) {
		t.Fatalf("stitched series = %+v", fr)
	}
}

// TestLinkTransferSpreading: a transfer spanning several buckets
// contributes bytes proportionally to each bucket's overlap, and the
// contributions sum to the transfer size.
func TestLinkTransferSpreading(t *testing.T) {
	rec := NewRecorder()
	s := rec.NewSession("spread")
	s.EnableSampling(100)
	rk := s.AddRank(0, 0, 0)

	// 400 bytes over [50, 250): 50ns in bucket 0, 100ns in bucket 1,
	// 50ns in bucket 2 -> 100, 200, 100 bytes.
	rk.LinkTransfer(true, 400, 50, 250)
	got := rk.GaugeSeries(GaugeInterBytes)
	want := []GaugePoint{{0, 100}, {1, 200}, {2, 100}}
	if len(got) != len(want) {
		t.Fatalf("series = %+v, want %+v", got, want)
	}
	var sum float64
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("series[%d] = %+v, want %+v", i, got[i], want[i])
		}
		sum += got[i].V
	}
	if sum != 400 {
		t.Fatalf("spread bytes sum to %g, want 400", sum)
	}

	// A transfer inside one bucket lands whole.
	rk.LinkTransfer(false, 64, 10, 20)
	intra := rk.GaugeSeries(GaugeIntraBytes)
	if len(intra) != 1 || intra[0] != (GaugePoint{0, 64}) {
		t.Fatalf("intra series = %+v", intra)
	}
}

func TestGaugeNames(t *testing.T) {
	seen := make(map[string]bool)
	for g := Gauge(0); g < NumGauges; g++ {
		name := g.String()
		if name == "" || name == "gauge-?" || seen[name] {
			t.Fatalf("gauge %d has bad or duplicate name %q", g, name)
		}
		seen[name] = true
		back, ok := GaugeByName(name)
		if !ok || back != g {
			t.Fatalf("GaugeByName(%q) = %v, %v", name, back, ok)
		}
	}
	if _, ok := GaugeByName("bogus"); ok {
		t.Fatal("GaugeByName accepted bogus name")
	}
}

func TestEnableSamplingValidation(t *testing.T) {
	rec := NewRecorder()
	s := rec.NewSession("bad")
	defer func() {
		if recover() == nil {
			t.Fatal("EnableSampling(0) did not panic")
		}
	}()
	s.EnableSampling(0)
}
