package obs

import (
	"fmt"
	"sort"
	"strings"

	"numabfs/internal/stats"
	"numabfs/internal/trace"
)

// Report is the aggregated metrics view of a recording: per-phase
// totals (the Fig. 11 breakdown, recomputed from the span stream rather
// than hand-maintained accumulators), communication counters by hop
// class, barrier-wait percentiles, and a per-level critical-path table
// naming the rank and phase that bounded each level.
type Report struct {
	Sessions []SessionReport `json:"sessions"`
}

// SessionReport aggregates one session (one benchmark configuration).
type SessionReport struct {
	Label string `json:"label"`
	Ranks int    `json:"ranks"`

	// PhaseNs maps phase name -> mean-across-ranks total virtual ns,
	// summed over every BFS root the session ran. Dividing by the root
	// count reproduces trace.Breakdown (within float rounding).
	PhaseNs map[string]float64 `json:"phase_ns"`
	// TotalNs is the summed PhaseNs.
	TotalNs float64 `json:"total_ns"`

	// Msgs / Bytes are sender-side point-to-point totals over all
	// ranks, by hop class ("intra-socket", "intra-node", "inter-node").
	// Bytes is wire volume; RawBytes is the logical (pre-compression)
	// volume and is only present when it differs — i.e. when the
	// compressed allgather was active.
	Msgs     map[string]int64 `json:"msgs"`
	Bytes    map[string]int64 `json:"bytes"`
	RawBytes map[string]int64 `json:"raw_bytes,omitempty"`
	// Collectives counts collective calls by algorithm over all ranks.
	Collectives map[string]int64 `json:"collective_calls,omitempty"`
	// Faults counts injected-fault events ("crash", "recover") over all
	// ranks; absent when no fault fired.
	Faults map[string]int64 `json:"fault_events,omitempty"`

	// Barrier wait distribution over every (rank, global barrier) pair.
	BarrierCount  int64   `json:"barrier_count"`
	BarrierP50Ns  float64 `json:"barrier_p50_ns"`
	BarrierP95Ns  float64 `json:"barrier_p95_ns"`
	BarrierMaxNs  float64 `json:"barrier_max_ns"`
	BarrierMeanNs float64 `json:"barrier_mean_ns"`

	// StallNsByRank is each rank's total stall-phase time: the
	// per-rank load-imbalance attribution of Fig. 11.
	StallNsByRank []float64 `json:"stall_ns_by_rank"`

	// Transport aggregates the reliable-transport counters over all
	// ranks; absent without a loss plan. RetransStallNsByRank is each
	// rank's extra receive latency versus a clean link (retransmission
	// waits, resequencing holds, acks) — the per-rank attribution of
	// where lossy links actually cost time.
	Transport            map[string]int64 `json:"transport,omitempty"`
	XportOverheadBytes   int64            `json:"transport_overhead_bytes,omitempty"`
	RetransStallNsByRank []float64        `json:"retrans_stall_ns_by_rank,omitempty"`

	// Overlap aggregates the pipelined collective's ledger over all
	// ranks; absent unless the overlapped allgather ran. Hidden is
	// transfer time that completed under the ranks' own decode/scan work,
	// exposed is time stalled in the pipeline's waits. OverlapEffByRank
	// is each rank's hidden/(hidden+exposed) share — the per-rank overlap
	// efficiency of the sixth optimization level.
	OverlapHiddenNs  float64   `json:"overlap_hidden_ns,omitempty"`
	OverlapExposedNs float64   `json:"overlap_exposed_ns,omitempty"`
	OverlapEffByRank []float64 `json:"overlap_efficiency_by_rank,omitempty"`

	// Levels is the critical-path table, aggregated across roots by
	// level index.
	Levels []LevelReport `json:"levels,omitempty"`
}

// LevelReport aggregates every instance of one BFS level index (one
// instance per root) into a critical-path row.
type LevelReport struct {
	Level     int    `json:"level"`
	Name      string `json:"name"` // "td level" or "bu level"
	Instances int    `json:"instances"`
	// MeanNs is the mean wall duration of the level (first span start
	// to last span end across ranks).
	MeanNs float64 `json:"mean_ns"`
	// BoundRank is the rank that most often finished the level last —
	// the critical path runs through it.
	BoundRank int `json:"bound_rank"`
	// BoundPhase is that rank's dominant phase in the level.
	BoundPhase string `json:"bound_phase"`
	// MeanStallNs is the mean (per instance) stall summed over ranks.
	MeanStallNs float64 `json:"mean_stall_ns"`
}

// levelInstance is one (root, level) occurrence during aggregation.
type levelInstance struct {
	name      string
	start     float64
	end       float64
	boundRank int
	boundEnd  float64
	stallNs   float64
}

// BuildReport aggregates the recorder's raw streams.
func (r *Recorder) BuildReport() *Report {
	rep := &Report{}
	for _, s := range r.Sessions() {
		rep.Sessions = append(rep.Sessions, buildSessionReport(s))
	}
	return rep
}

func buildSessionReport(s *Session) SessionReport {
	sr := SessionReport{
		Label:   s.Label,
		Ranks:   len(s.ranks),
		PhaseNs: make(map[string]float64),
		Msgs:    make(map[string]int64),
		Bytes:   make(map[string]int64),
	}

	var comm Comm
	instances := make(map[[2]int]*levelInstance) // (segment, level) -> instance
	sr.StallNsByRank = make([]float64, len(s.ranks))

	for _, rk := range s.ranks {
		comm.merge(&rk.comm)
		for _, sp := range rk.spans {
			switch sp.Cat {
			case CatPhase:
				sr.PhaseNs[sp.Name] += sp.End - sp.Start
				if sp.Name == trace.Stall.String() {
					sr.StallNsByRank[rk.ID] += sp.End - sp.Start
				}
			case CatLevel:
				key := [2]int{s.segment(sp.Start), sp.Level}
				li := instances[key]
				if li == nil {
					li = &levelInstance{
						name: sp.Name, start: sp.Start, end: sp.End,
						boundRank: rk.ID, boundEnd: sp.End,
					}
					instances[key] = li
				} else {
					if sp.Start < li.start {
						li.start = sp.Start
					}
					if sp.End > li.end {
						li.end = sp.End
					}
					// Strictly-later end wins, so ties go to the
					// lowest rank (ranks are visited in order).
					if sp.End > li.boundEnd {
						li.boundEnd = sp.End
						li.boundRank = rk.ID
					}
				}
			}
		}
	}
	// Mean across ranks.
	if n := float64(len(s.ranks)); n > 0 {
		for name := range sr.PhaseNs {
			sr.PhaseNs[name] /= n
		}
	}
	for _, v := range sr.PhaseNs {
		sr.TotalNs += v
	}

	for h := Hop(0); h < NumHops; h++ {
		sr.Msgs[h.String()] = comm.Msgs[h]
		sr.Bytes[h.String()] = comm.Bytes[h]
		if comm.RawBytes[h] != comm.Bytes[h] {
			if sr.RawBytes == nil {
				sr.RawBytes = make(map[string]int64)
			}
			sr.RawBytes[h.String()] = comm.RawBytes[h]
		}
	}
	sr.Collectives = comm.Collectives
	sr.Faults = comm.Faults
	if comm.Retransmits != 0 || comm.Acks != 0 || comm.DupsDelivered != 0 ||
		comm.CorruptDetected != 0 || comm.Reordered != 0 {
		sr.Transport = map[string]int64{
			"retransmits":      comm.Retransmits,
			"corrupt-detected": comm.CorruptDetected,
			"dups-delivered":   comm.DupsDelivered,
			"reordered":        comm.Reordered,
			"acks":             comm.Acks,
		}
		sr.XportOverheadBytes = comm.XportOverheadBys
		sr.RetransStallNsByRank = make([]float64, len(s.ranks))
		for _, rk := range s.ranks {
			sr.RetransStallNsByRank[rk.ID] = rk.comm.XportOverheadNs
		}
	}
	if comm.OverlapHiddenNs != 0 || comm.OverlapExposedNs != 0 {
		sr.OverlapHiddenNs = comm.OverlapHiddenNs
		sr.OverlapExposedNs = comm.OverlapExposedNs
		sr.OverlapEffByRank = make([]float64, len(s.ranks))
		for _, rk := range s.ranks {
			if t := rk.comm.OverlapHiddenNs + rk.comm.OverlapExposedNs; t > 0 {
				sr.OverlapEffByRank[rk.ID] = rk.comm.OverlapHiddenNs / t
			}
		}
	}
	sr.BarrierCount = comm.Barriers
	if comm.Barriers > 0 {
		sr.BarrierP50Ns = stats.Percentile(comm.BarrierWaits, 50)
		sr.BarrierP95Ns = stats.Percentile(comm.BarrierWaits, 95)
		sr.BarrierMaxNs = stats.Max(comm.BarrierWaits)
		sr.BarrierMeanNs = comm.BarrierWaitNs / float64(comm.Barriers)
	}

	attributeLevels(s, &sr, instances)
	return sr
}

// attributeLevels fills each instance's stall sum and bounding phase,
// then folds the instances into per-level-index rows.
func attributeLevels(s *Session, sr *SessionReport, instances map[[2]int]*levelInstance) {
	if len(instances) == 0 {
		return
	}
	// Second pass over phase spans: stall per instance, and the
	// bounding rank's dominant phase.
	boundPhase := make(map[[2]int]map[string]float64)
	for _, rk := range s.ranks {
		for _, sp := range rk.spans {
			if sp.Cat != CatPhase {
				continue
			}
			key := [2]int{s.segment(sp.Start), sp.Level}
			li := instances[key]
			if li == nil {
				continue
			}
			if sp.Name == trace.Stall.String() {
				li.stallNs += sp.End - sp.Start
			}
			if rk.ID == li.boundRank && sp.Name != trace.Stall.String() {
				m := boundPhase[key]
				if m == nil {
					m = make(map[string]float64)
					boundPhase[key] = m
				}
				m[sp.Name] += sp.End - sp.Start
			}
		}
	}

	// Fold instances by level index.
	type agg struct {
		LevelReport
		sumNs      float64
		sumStall   float64
		rankVotes  map[int]int
		phaseVotes map[string]float64
	}
	// Fold in sorted (segment, level) order: map iteration order would
	// vary the float accumulation below (and which instance names the
	// row) run to run, breaking byte-identical reports.
	keys := make([][2]int, 0, len(instances))
	for key := range instances {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	byLevel := make(map[int]*agg)
	for _, key := range keys {
		li := instances[key]
		level := key[1]
		a := byLevel[level]
		if a == nil {
			a = &agg{
				LevelReport: LevelReport{Level: level, Name: li.name},
				rankVotes:   make(map[int]int),
				phaseVotes:  make(map[string]float64),
			}
			byLevel[level] = a
		}
		a.Instances++
		a.sumNs += li.end - li.start
		a.sumStall += li.stallNs
		a.rankVotes[li.boundRank]++
		for name, ns := range boundPhase[key] {
			a.phaseVotes[name] += ns
		}
	}
	levels := make([]int, 0, len(byLevel))
	for l := range byLevel {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	for _, l := range levels {
		a := byLevel[l]
		a.MeanNs = a.sumNs / float64(a.Instances)
		a.MeanStallNs = a.sumStall / float64(a.Instances)
		a.BoundRank = topRank(a.rankVotes)
		a.BoundPhase = topPhase(a.phaseVotes)
		sr.Levels = append(sr.Levels, a.LevelReport)
	}
}

// topRank returns the most-voted rank (ties to the lowest rank).
func topRank(votes map[int]int) int {
	best, bestVotes := -1, -1
	for r, v := range votes {
		if v > bestVotes || (v == bestVotes && r < best) {
			best, bestVotes = r, v
		}
	}
	return best
}

// topPhase returns the phase with the most accumulated time (ties to
// the lexicographically smallest name, for determinism).
func topPhase(votes map[string]float64) string {
	best, bestNs := "", -1.0
	for name, ns := range votes {
		if ns > bestNs || (ns == bestNs && name < best) {
			best, bestNs = name, ns
		}
	}
	return best
}

// String renders the report as aligned text.
func (r *Report) String() string {
	var b strings.Builder
	for i := range r.Sessions {
		if i > 0 {
			b.WriteByte('\n')
		}
		r.Sessions[i].render(&b)
	}
	return b.String()
}

func (sr *SessionReport) render(b *strings.Builder) {
	fmt.Fprintf(b, "== %s (%d ranks) ==\n", sr.Label, sr.Ranks)

	fmt.Fprintf(b, "phases (mean/rank):")
	for p := trace.Phase(0); p < trace.NumPhases; p++ {
		fmt.Fprintf(b, "  %s=%.2fms", p, sr.PhaseNs[p.String()]/1e6)
	}
	fmt.Fprintf(b, "  total=%.2fms\n", sr.TotalNs/1e6)

	fmt.Fprintf(b, "p2p traffic:")
	for h := Hop(0); h < NumHops; h++ {
		fmt.Fprintf(b, "  %s %d msgs / %.2f MiB", h, sr.Msgs[h.String()],
			float64(sr.Bytes[h.String()])/(1<<20))
		if raw, ok := sr.RawBytes[h.String()]; ok {
			fmt.Fprintf(b, " (raw %.2f MiB)", float64(raw)/(1<<20))
		}
	}
	b.WriteByte('\n')

	if len(sr.Collectives) > 0 {
		names := make([]string, 0, len(sr.Collectives))
		for name := range sr.Collectives {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(b, "collectives:")
		for _, name := range names {
			fmt.Fprintf(b, "  %s=%d", name, sr.Collectives[name])
		}
		b.WriteByte('\n')
	}

	if len(sr.Faults) > 0 {
		kinds := make([]string, 0, len(sr.Faults))
		for kind := range sr.Faults {
			kinds = append(kinds, kind)
		}
		sort.Strings(kinds)
		fmt.Fprintf(b, "fault events:")
		for _, kind := range kinds {
			fmt.Fprintf(b, "  %s=%d", kind, sr.Faults[kind])
		}
		b.WriteByte('\n')
	}

	if len(sr.Transport) > 0 {
		keys := make([]string, 0, len(sr.Transport))
		for k := range sr.Transport {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(b, "transport:")
		for _, k := range keys {
			fmt.Fprintf(b, "  %s=%d", k, sr.Transport[k])
		}
		fmt.Fprintf(b, "  overhead=%.2f MiB\n", float64(sr.XportOverheadBytes)/(1<<20))
		if n := len(sr.RetransStallNsByRank); n > 0 {
			worst, worstNs := 0, sr.RetransStallNsByRank[0]
			for rk, ns := range sr.RetransStallNsByRank {
				if ns > worstNs {
					worst, worstNs = rk, ns
				}
			}
			fmt.Fprintf(b, "retransmit stall: mean/rank=%.3fms  worst rank %d=%.3fms\n",
				stats.Mean(sr.RetransStallNsByRank)/1e6, worst, worstNs/1e6)
		}
	}

	if n := len(sr.OverlapEffByRank); n > 0 {
		worst, worstEff := 0, sr.OverlapEffByRank[0]
		for rk, eff := range sr.OverlapEffByRank {
			if eff < worstEff {
				worst, worstEff = rk, eff
			}
		}
		total := sr.OverlapHiddenNs + sr.OverlapExposedNs
		fmt.Fprintf(b, "overlap: hidden=%.3fms  exposed=%.3fms  efficiency=%.1f%%  worst rank %d=%.1f%%\n",
			sr.OverlapHiddenNs/1e6, sr.OverlapExposedNs/1e6,
			100*sr.OverlapHiddenNs/total, worst, 100*worstEff)
	}

	if sr.BarrierCount > 0 {
		fmt.Fprintf(b, "barrier wait: n=%d  p50=%.3fms  p95=%.3fms  max=%.3fms  mean=%.3fms\n",
			sr.BarrierCount, sr.BarrierP50Ns/1e6, sr.BarrierP95Ns/1e6,
			sr.BarrierMaxNs/1e6, sr.BarrierMeanNs/1e6)
	}

	if n := len(sr.StallNsByRank); n > 0 {
		worst, worstNs := 0, sr.StallNsByRank[0]
		for rk, ns := range sr.StallNsByRank {
			if ns > worstNs {
				worst, worstNs = rk, ns
			}
		}
		fmt.Fprintf(b, "stall: mean/rank=%.2fms  worst rank %d=%.2fms\n",
			stats.Mean(sr.StallNsByRank)/1e6, worst, worstNs/1e6)
	}

	if len(sr.Levels) > 0 {
		fmt.Fprintf(b, "critical path by level (mean over %d roots):\n", sr.Levels[0].Instances)
		fmt.Fprintf(b, "  %5s %-9s %10s %12s %12s %12s\n",
			"level", "procedure", "mean ms", "bound rank", "bound phase", "stall ms")
		for _, l := range sr.Levels {
			fmt.Fprintf(b, "  %5d %-9s %10.4f %12d %12s %12.4f\n",
				l.Level, l.Name, l.MeanNs/1e6, l.BoundRank, l.BoundPhase, l.MeanStallNs/1e6)
		}
	}
}
