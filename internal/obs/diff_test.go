package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"numabfs/internal/trace"
)

// diffPair builds two fixed single-session runs with known phase and
// rank deltas.
func diffPair() (*Run, *Run) {
	mk := func(tdComp0, tdComp1, stall1, hidden, exposed float64) *Run {
		rec := NewRecorder()
		s := rec.NewSession("lvl")
		r0 := s.AddRank(0, 0, 0)
		r1 := s.AddRank(1, 0, 1)
		r0.PhaseSpan(trace.TDComp, 0, 0, tdComp0)
		r1.PhaseSpan(trace.TDComp, 0, 0, tdComp1)
		r1.PhaseSpan(trace.Stall, 0, tdComp1, tdComp1+stall1)
		r1.Overlap(hidden, exposed)
		r0.CountMsg(HopInterNode, 1000, 1000)
		return rec.Dump()
	}
	// A: 100+80 td-comp, 40 stall; B: 90+70 td-comp, 10 stall.
	return mk(100, 80, 40, 10, 30), mk(90, 70, 10, 35, 5)
}

func TestDiffRuns(t *testing.T) {
	a, b := diffPair()
	d := DiffRuns(a, b)
	if len(d.Sessions) != 1 {
		t.Fatalf("sessions = %d", len(d.Sessions))
	}
	sd := d.Sessions[0]
	if sd.TotalANs != 220 || sd.TotalBNs != 170 || sd.DeltaNs != -50 {
		t.Fatalf("totals A=%g B=%g delta=%g", sd.TotalANs, sd.TotalBNs, sd.DeltaNs)
	}
	// Biggest mover first: stall moved -30, td-comp -20.
	if len(sd.Phases) != 2 || sd.Phases[0].Name != "stall" || sd.Phases[0].DeltaNs != -30 {
		t.Fatalf("phases = %+v", sd.Phases)
	}
	if sd.Phases[1].Name != "td-comp" || sd.Phases[1].DeltaNs != -20 {
		t.Fatalf("phases = %+v", sd.Phases)
	}
	// Rank attribution: rank 0 -10, rank 1 -40.
	if len(sd.Ranks) != 2 || sd.Ranks[0].DeltaNs != -10 || sd.Ranks[1].DeltaNs != -40 {
		t.Fatalf("ranks = %+v", sd.Ranks)
	}
	if sd.OverlapHiddenANs != 10 || sd.OverlapHiddenBNs != 35 ||
		sd.OverlapExposedANs != 30 || sd.OverlapExposedBNs != 5 {
		t.Fatalf("overlap = %+v", sd)
	}
	if sd.BytesA[HopInterNode] != 1000 || sd.BytesB[HopInterNode] != 1000 {
		t.Fatalf("bytes = %v %v", sd.BytesA, sd.BytesB)
	}
}

func TestDiffUnpairedSessions(t *testing.T) {
	a, b := diffPair()
	rec := NewRecorder()
	rec.NewSession("extra")
	b.Sessions = append(b.Sessions, rec.Dump().Sessions...)
	d := DiffRuns(a, b)
	if len(d.Sessions) != 1 || len(d.BOnly) != 1 || d.BOnly[0] != "extra" {
		t.Fatalf("diff = %+v", d)
	}
	if len(d.AOnly) != 0 {
		t.Fatalf("AOnly = %v", d.AOnly)
	}
}

// TestDiffDeterminism pins that text and JSON renderings are identical
// across repeats.
func TestDiffDeterminism(t *testing.T) {
	render := func() (string, string) {
		a, b := diffPair()
		d := DiffRuns(a, b)
		j, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		return d.String(), string(j)
	}
	t1, j1 := render()
	t2, j2 := render()
	if t1 != t2 || j1 != j2 {
		t.Fatal("diff rendering is nondeterministic")
	}
}

func TestDiffText(t *testing.T) {
	a, b := diffPair()
	out := DiffRuns(a, b).String()
	for _, want := range []string{
		"== lvl -> lvl ==",
		"total rank-time:",
		"stall",
		"td-comp",
		"overlap hidden:",
		"inter-node bytes: 1000 -> 1000 (+0)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff text missing %q in:\n%s", want, out)
		}
	}
}

// TestDiffIdentity: diffing a run against itself is all zeros.
func TestDiffIdentity(t *testing.T) {
	run := sampledRecorder().Dump()
	d := DiffRuns(run, run)
	for _, sd := range d.Sessions {
		if sd.DeltaNs != 0 {
			t.Fatalf("self-diff delta = %g", sd.DeltaNs)
		}
		for _, p := range sd.Phases {
			if p.DeltaNs != 0 {
				t.Fatalf("self-diff phase %s delta = %g", p.Name, p.DeltaNs)
			}
		}
		for _, r := range sd.Ranks {
			if r.DeltaNs != 0 {
				t.Fatalf("self-diff rank %d delta = %g", r.Rank, r.DeltaNs)
			}
		}
	}
}
