package obs

import (
	"testing"

	"numabfs/internal/trace"
)

func TestClassifyHop(t *testing.T) {
	cases := []struct {
		sn, ss, dn, ds int
		want           Hop
	}{
		{0, 0, 0, 0, HopIntraSocket},
		{0, 3, 0, 3, HopIntraSocket},
		{0, 0, 0, 1, HopIntraNode},
		{0, 7, 0, 0, HopIntraNode},
		{0, 0, 1, 0, HopInterNode},
		// Same socket ordinal on different nodes is still inter-node.
		{2, 5, 3, 5, HopInterNode},
	}
	for _, c := range cases {
		if got := ClassifyHop(c.sn, c.ss, c.dn, c.ds); got != c.want {
			t.Errorf("ClassifyHop(%d,%d -> %d,%d) = %v, want %v",
				c.sn, c.ss, c.dn, c.ds, got, c.want)
		}
	}
	names := map[Hop]string{
		HopIntraSocket: "intra-socket", HopIntraNode: "intra-node", HopInterNode: "inter-node",
	}
	for h, want := range names {
		if h.String() != want {
			t.Errorf("%d.String() = %q, want %q", h, h.String(), want)
		}
	}
}

// TestNilRankNoOps pins the disabled-recorder contract: every hook the
// hot paths call must be safe (and do nothing) on a nil *Rank.
func TestNilRankNoOps(t *testing.T) {
	var r *Rank
	r.PhaseSpan(trace.TDComp, 1, 0, 10)
	r.LevelSpan(true, 1, 0, 10)
	r.Collective("allgather-ring", 0, 10)
	r.CountMsg(HopInterNode, 4096, 4096)
	r.BarrierWait(3)
	r.NodeBarrierWait(2)
	if r.Spans() != nil {
		t.Fatal("nil rank has spans")
	}
	if r.Comm() != nil {
		t.Fatal("nil rank has comm counters")
	}
}

func TestSessionEpochStitching(t *testing.T) {
	rec := NewRecorder()
	s := rec.NewSession("test")
	rk := s.AddRank(0, 0, 0)

	// Segment 0 (setup): a span on the raw clock.
	rk.PhaseSpan(trace.TDComp, 0, 5, 10)
	s.Advance(100) // setup took 100 ns; clocks reset

	// Segment 1 (first root): raw clocks restart at 0.
	rk.PhaseSpan(trace.BUComp, 2, 1, 4)
	s.Advance(50)

	// Segment 2: zero-length advance must not create a segment.
	s.Advance(0)
	rk.LevelSpan(false, 1, 0, 7)

	sp := rk.Spans()
	if len(sp) != 3 {
		t.Fatalf("spans = %d, want 3", len(sp))
	}
	if sp[0].Start != 5 || sp[0].End != 10 {
		t.Errorf("setup span = [%g, %g], want [5, 10]", sp[0].Start, sp[0].End)
	}
	if sp[1].Start != 101 || sp[1].End != 104 {
		t.Errorf("root-1 span = [%g, %g], want [101, 104]", sp[1].Start, sp[1].End)
	}
	if sp[2].Start != 150 || sp[2].End != 157 {
		t.Errorf("root-2 span = [%g, %g], want [150, 157]", sp[2].Start, sp[2].End)
	}

	if got := s.Marks(); len(got) != 2 || got[0] != 100 || got[1] != 150 {
		t.Fatalf("marks = %v, want [100 150]", got)
	}
	for _, c := range []struct {
		t    float64
		want int
	}{{0, 0}, {99.9, 0}, {100, 1}, {120, 1}, {150, 2}, {1e9, 2}} {
		if got := s.segment(c.t); got != c.want {
			t.Errorf("segment(%g) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestCommCounters(t *testing.T) {
	rec := NewRecorder()
	s := rec.NewSession("test")
	rk := s.AddRank(3, 1, 2)
	rk.CountMsg(HopIntraNode, 100, 100)
	rk.CountMsg(HopIntraNode, 50, 50)
	rk.CountMsg(HopInterNode, 8, 64)
	rk.BarrierWait(10)
	rk.BarrierWait(0)
	rk.NodeBarrierWait(4)
	rk.Collective("allreduce", 0, 1)
	rk.Collective("allreduce", 2, 3)

	c := rk.Comm()
	if c.Msgs[HopIntraNode] != 2 || c.Bytes[HopIntraNode] != 150 {
		t.Errorf("intra-node = %d msgs / %d B", c.Msgs[HopIntraNode], c.Bytes[HopIntraNode])
	}
	if c.Msgs[HopInterNode] != 1 || c.Bytes[HopInterNode] != 8 {
		t.Errorf("inter-node = %d msgs / %d B", c.Msgs[HopInterNode], c.Bytes[HopInterNode])
	}
	if c.RawBytes[HopIntraNode] != 150 || c.RawBytes[HopInterNode] != 64 {
		t.Errorf("raw bytes = %v", c.RawBytes)
	}
	if c.Barriers != 2 || c.BarrierWaitNs != 10 || len(c.BarrierWaits) != 2 {
		t.Errorf("barriers: %+v", c)
	}
	if c.NodeBarriers != 1 || c.NodeBarrierWaitNs != 4 {
		t.Errorf("node barriers: %+v", c)
	}
	if c.Collectives["allreduce"] != 2 {
		t.Errorf("collectives: %v", c.Collectives)
	}
}
