package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"numabfs/internal/stats"
	"numabfs/internal/trace"
)

// Prometheus-style text exposition of a run snapshot. One write per
// run (virtual time has no live scrape), so every family is emitted
// fully with HELP/TYPE headers and label sets in a fixed order:
// sessions by index, ranks by ID, phases/hops/gauges in enum order,
// map keys sorted. Floats format with strconv's shortest round-trip
// form, so a deterministic recording yields byte-identical text.

// promF renders a float the way Prometheus clients do.
func promF(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promEsc escapes a label value per the exposition format.
func promEsc(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// WritePromText writes the run as a Prometheus text exposition.
func (run *Run) WritePromText(w io.Writer) error {
	bw := bufio.NewWriter(w)

	family := func(name, help, typ string) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	sessRank := func(si int, rk *RunRank) string {
		return fmt.Sprintf(`session="%s",rank="%d"`,
			promEsc(run.Sessions[si].Label), rk.ID)
	}

	family("numabfs_phase_ns_total", "Virtual ns charged to each phase, per rank.", "counter")
	for si, s := range run.Sessions {
		for _, rk := range s.Ranks {
			var perPhase [trace.NumPhases]float64
			for _, sp := range rk.Spans {
				if sp.Cat != CatPhase {
					continue
				}
				if p, ok := trace.PhaseByName(sp.Name); ok {
					perPhase[p] += sp.End - sp.Start
				}
			}
			for p := trace.Phase(0); p < trace.NumPhases; p++ {
				fmt.Fprintf(bw, "numabfs_phase_ns_total{%s,phase=\"%s\"} %s\n",
					sessRank(si, rk), p, promF(perPhase[p]))
			}
		}
	}

	family("numabfs_p2p_msgs_total", "Sender-side point-to-point messages by hop class.", "counter")
	for si, s := range run.Sessions {
		for _, rk := range s.Ranks {
			for h := Hop(0); h < NumHops; h++ {
				fmt.Fprintf(bw, "numabfs_p2p_msgs_total{%s,hop=\"%s\"} %d\n",
					sessRank(si, rk), h, rk.Comm.Msgs[h])
			}
		}
	}
	family("numabfs_p2p_bytes_total", "Sender-side wire bytes by hop class.", "counter")
	for si, s := range run.Sessions {
		for _, rk := range s.Ranks {
			for h := Hop(0); h < NumHops; h++ {
				fmt.Fprintf(bw, "numabfs_p2p_bytes_total{%s,hop=\"%s\"} %d\n",
					sessRank(si, rk), h, rk.Comm.Bytes[h])
			}
		}
	}

	family("numabfs_collective_calls_total", "Collective calls by algorithm.", "counter")
	for si, s := range run.Sessions {
		for _, rk := range s.Ranks {
			names := make([]string, 0, len(rk.Comm.Collectives))
			for name := range rk.Comm.Collectives {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Fprintf(bw, "numabfs_collective_calls_total{%s,op=\"%s\"} %d\n",
					sessRank(si, rk), promEsc(name), rk.Comm.Collectives[name])
			}
		}
	}

	// Barrier waits as a Prometheus histogram, bucketed by the fixed-grid
	// stats.Histogram over each session's observed wait range.
	family("numabfs_barrier_wait_ns", "Global-barrier wait distribution per session.", "histogram")
	for _, s := range run.Sessions {
		var all []float64
		for _, rk := range s.Ranks {
			all = append(all, rk.Comm.BarrierWaits...)
		}
		if len(all) == 0 {
			continue
		}
		hi := stats.Max(all)
		if hi <= 0 {
			hi = 1
		}
		h := stats.NewHistogram(0, hi*(1+1e-9), 16)
		for _, v := range all {
			h.Add(v)
		}
		label := promEsc(s.Label)
		cum := h.Under
		for i, c := range h.Counts {
			cum += c
			le := h.Lo + (h.Hi-h.Lo)*float64(i+1)/float64(len(h.Counts))
			fmt.Fprintf(bw, "numabfs_barrier_wait_ns_bucket{session=\"%s\",le=\"%s\"} %d\n",
				label, promF(le), cum)
		}
		fmt.Fprintf(bw, "numabfs_barrier_wait_ns_bucket{session=\"%s\",le=\"+Inf\"} %d\n", label, h.N)
		fmt.Fprintf(bw, "numabfs_barrier_wait_ns_sum{session=\"%s\"} %s\n", label, promF(h.Sum))
		fmt.Fprintf(bw, "numabfs_barrier_wait_ns_count{session=\"%s\"} %d\n", label, h.N)
	}

	family("numabfs_transport_events_total", "Reliable-transport protocol events.", "counter")
	for si, s := range run.Sessions {
		for _, rk := range s.Ranks {
			c := &rk.Comm
			if c.Retransmits == 0 && c.Acks == 0 && c.DupsDelivered == 0 &&
				c.CorruptDetected == 0 && c.Reordered == 0 {
				continue
			}
			for _, kv := range []struct {
				kind string
				n    int64
			}{
				{"acks", c.Acks},
				{"corrupt-detected", c.CorruptDetected},
				{"dups-delivered", c.DupsDelivered},
				{"reordered", c.Reordered},
				{"retransmits", c.Retransmits},
			} {
				fmt.Fprintf(bw, "numabfs_transport_events_total{%s,kind=\"%s\"} %d\n",
					sessRank(si, rk), kv.kind, kv.n)
			}
		}
	}

	family("numabfs_overlap_ns_total", "Pipelined-collective transfer time by visibility.", "counter")
	for si, s := range run.Sessions {
		for _, rk := range s.Ranks {
			c := &rk.Comm
			if c.OverlapHiddenNs == 0 && c.OverlapExposedNs == 0 {
				continue
			}
			fmt.Fprintf(bw, "numabfs_overlap_ns_total{%s,state=\"exposed\"} %s\n",
				sessRank(si, rk), promF(c.OverlapExposedNs))
			fmt.Fprintf(bw, "numabfs_overlap_ns_total{%s,state=\"hidden\"} %s\n",
				sessRank(si, rk), promF(c.OverlapHiddenNs))
		}
	}

	// Gauge series: one sample per (rank, gauge, bucket) with the bucket's
	// virtual start time as a label — a replayable timeline, not a scrape.
	family("numabfs_gauge", "Virtual-time gauge samples on the sampling grid.", "gauge")
	for si, s := range run.Sessions {
		for _, rk := range s.Ranks {
			for g := Gauge(0); g < NumGauges; g++ {
				for _, pt := range rk.Gauges[g] {
					fmt.Fprintf(bw, "numabfs_gauge{%s,gauge=\"%s\",t_ns=\"%s\"} %s\n",
						sessRank(si, rk), g, promF(float64(pt.Bucket)*s.BucketNs), promF(pt.V))
				}
			}
		}
	}

	// Derived link utilization: inter-node bytes per bucket over the
	// per-stream peak the attaching world published.
	family("numabfs_link_utilization", "Inter-node link utilization per bucket (bytes over peak).", "gauge")
	for si, s := range run.Sessions {
		if s.LinkPeak <= 0 || s.BucketNs <= 0 {
			continue
		}
		cap := s.LinkPeak * s.BucketNs
		for _, rk := range s.Ranks {
			for _, pt := range rk.Gauges[GaugeInterBytes] {
				fmt.Fprintf(bw, "numabfs_link_utilization{%s,t_ns=\"%s\"} %s\n",
					sessRank(si, rk), promF(float64(pt.Bucket)*s.BucketNs), promF(pt.V/cap))
			}
		}
	}

	return bw.Flush()
}

// WritePromText writes the recorder's snapshot as a Prometheus text
// exposition.
func (r *Recorder) WritePromText(w io.Writer) error {
	return r.Dump().WritePromText(w)
}

// WritePromFile writes the Prometheus text exposition to path.
func (r *Recorder) WritePromFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WritePromText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
