package obs

import (
	"bufio"
	"fmt"
	"html"
	"io"
	"os"
)

// Self-contained HTML report: rank×phase heatmaps and gauge timelines
// rendered server-side as HTML tables and inline SVG — no scripts, no
// external assets, one file that opens anywhere. Rendering order and
// number formatting are fixed, so a deterministic recording produces a
// byte-identical report.

// rankPalette colors rank series in the timeline SVGs (cycled by rank
// index).
var rankPalette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
	"#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
}

const htmlStyle = `body{font:14px/1.4 system-ui,sans-serif;margin:24px;color:#222}
h1{font-size:20px}h2{font-size:16px;margin-top:28px;border-bottom:1px solid #ddd;padding-bottom:4px}
h3{font-size:13px;margin-bottom:4px;color:#555}
table.hm{border-collapse:collapse;margin:8px 0}
table.hm td,table.hm th{border:1px solid #eee;padding:2px 8px;font-size:12px;text-align:right}
table.hm th{background:#fafafa;font-weight:600}
table.hm td.lbl{text-align:left;background:#fafafa}
svg{background:#fcfcfc;border:1px solid #eee;margin:4px 0}
.legend span{display:inline-block;margin-right:12px;font-size:12px}
.legend i{display:inline-block;width:10px;height:10px;margin-right:4px;border-radius:2px}
.meta{color:#777;font-size:12px}`

// heatCell returns the inline background style for a cell value on a
// white→red scale.
func heatCell(v, max float64) string {
	if max <= 0 || v <= 0 {
		return ""
	}
	frac := v / max
	if frac > 1 {
		frac = 1
	}
	// white (255,255,255) -> red (214,69,51)
	rC := 255 - int(frac*(255-214))
	g := 255 - int(frac*(255-69))
	b := 255 - int(frac*(255-51))
	style := fmt.Sprintf(" style=\"background:rgb(%d,%d,%d)", rC, g, b)
	if frac > 0.6 {
		style += ";color:#fff"
	}
	return style + "\""
}

func writeHeatmap(bw *bufio.Writer, h *Heatmap, fmtCell func(float64) string) {
	fmt.Fprintf(bw, "<h3>%s</h3>\n<table class=\"hm\"><tr><th></th>", html.EscapeString(h.Title))
	for _, c := range h.Cols {
		fmt.Fprintf(bw, "<th>%s</th>", html.EscapeString(c))
	}
	bw.WriteString("</tr>\n")
	for i, row := range h.Cells {
		fmt.Fprintf(bw, "<tr><td class=\"lbl\">%s</td>", html.EscapeString(h.Rows[i]))
		for _, v := range row {
			fmt.Fprintf(bw, "<td%s>%s</td>", heatCell(v, h.Max), fmtCell(v))
		}
		bw.WriteString("</tr>\n")
	}
	bw.WriteString("</table>\n")
}

// writeGaugeSVG draws one gauge's per-rank series as step lines over
// the session grid.
func writeGaugeSVG(bw *bufio.Writer, s *RunSession, g Gauge) bool {
	lo, hi := int64(0), int64(-1)
	var vmax float64
	for _, rk := range s.Ranks {
		pts := rk.Gauges[g]
		if len(pts) == 0 {
			continue
		}
		if hi < lo || pts[0].Bucket < lo {
			lo = pts[0].Bucket
		}
		if pts[len(pts)-1].Bucket > hi {
			hi = pts[len(pts)-1].Bucket
		}
		for _, pt := range pts {
			if pt.V > vmax {
				vmax = pt.V
			}
		}
	}
	if hi < lo || vmax <= 0 {
		return false
	}
	const W, H, pad = 720, 120, 8
	nb := hi - lo + 1
	xOf := func(b int64) float64 {
		return pad + (float64(b-lo)+0.5)/float64(nb)*(W-2*pad)
	}
	yOf := func(v float64) float64 {
		return H - pad - v/vmax*(H-2*pad)
	}
	fmt.Fprintf(bw, "<h3>%s (max %.6g, bucket %.0f ns)</h3>\n", html.EscapeString(g.String()), vmax, s.BucketNs)
	fmt.Fprintf(bw, "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">\n", W, H, W, H)
	// Segment boundaries (root ends) as dashed verticals.
	if s.BucketNs > 0 {
		for _, m := range s.Marks {
			b := int64(m / s.BucketNs)
			if b < lo || b > hi {
				continue
			}
			x := xOf(b)
			fmt.Fprintf(bw, "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" stroke=\"#bbb\" stroke-dasharray=\"3,3\"/>\n",
				x, pad, x, H-pad)
		}
	}
	for i, rk := range s.Ranks {
		pts := rk.Gauges[g]
		if len(pts) == 0 {
			continue
		}
		color := rankPalette[i%len(rankPalette)]
		fmt.Fprintf(bw, "<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\" points=\"", color)
		for j, pt := range pts {
			if j > 0 {
				bw.WriteByte(' ')
			}
			fmt.Fprintf(bw, "%.1f,%.1f", xOf(pt.Bucket), yOf(pt.V))
		}
		bw.WriteString("\"/>\n")
	}
	bw.WriteString("</svg>\n<div class=\"legend\">")
	for i, rk := range s.Ranks {
		if len(rk.Gauges[g]) == 0 {
			continue
		}
		fmt.Fprintf(bw, "<span><i style=\"background:%s\"></i>rank %d</span>",
			rankPalette[i%len(rankPalette)], rk.ID)
	}
	bw.WriteString("</div>\n")
	return true
}

// WriteHTMLReport renders the run as one self-contained HTML page: per
// session a rank×phase heatmap, gauge timelines (when sampling was on),
// and a rank×time heatmap of the inter-node wire volume.
func (run *Run) WriteHTMLReport(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	bw.WriteString("<title>numabfs timeline report</title>\n<style>" + htmlStyle + "</style></head>\n<body>\n")
	bw.WriteString("<h1>numabfs timeline report</h1>\n")
	for _, s := range run.Sessions {
		fmt.Fprintf(bw, "<h2>%s</h2>\n<p class=\"meta\">%d ranks",
			html.EscapeString(s.Label), len(s.Ranks))
		if s.BucketNs > 0 {
			fmt.Fprintf(bw, ", sampling grid %.0f ns", s.BucketNs)
		}
		if s.LinkPeak > 0 {
			fmt.Fprintf(bw, ", inter-node peak %.6g B/ns", s.LinkPeak)
		}
		bw.WriteString("</p>\n")

		writeHeatmap(bw, s.PhaseHeatmap(), func(v float64) string {
			return fmt.Sprintf("%.3f", v/1e6) // ms
		})

		if s.BucketNs > 0 {
			for g := Gauge(0); g < NumGauges; g++ {
				writeGaugeSVG(bw, s, g)
			}
			if hm := s.GaugeHeatmap(GaugeInterBytes); hm != nil {
				writeHeatmap(bw, hm.Coarsen(24), func(v float64) string {
					return fmt.Sprintf("%.0f", v)
				})
			}
		}
	}
	bw.WriteString("</body></html>\n")
	return bw.Flush()
}

// WriteHTMLReport writes the recorder's snapshot as an HTML report.
func (r *Recorder) WriteHTMLReport(w io.Writer) error {
	return r.Dump().WriteHTMLReport(w)
}

// WriteHTMLReportFile writes the HTML report to path.
func (r *Recorder) WriteHTMLReportFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteHTMLReport(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
