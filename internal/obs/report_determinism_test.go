package obs

import (
	"encoding/json"
	"testing"

	"numabfs/internal/trace"
)

// multiRootRecorder builds a recording with many (segment, level)
// instances whose durations differ in the low float bits, so any
// map-iteration-ordered accumulation in the report would produce
// run-to-run differences.
func multiRootRecorder() *Recorder {
	rec := NewRecorder()
	s := rec.NewSession("many roots")
	r0 := s.AddRank(0, 0, 0)
	r1 := s.AddRank(1, 0, 1)
	for root := 0; root < 8; root++ {
		for lvl := 0; lvl < 5; lvl++ {
			start := float64(lvl) * 10
			// Durations with a fractional part that does not sum exactly
			// in floating point, to expose order-dependent accumulation.
			d := 7.1 + float64(root)*0.3 + float64(lvl)*0.7
			r0.PhaseSpan(trace.TDComp, lvl, start, start+d)
			r0.PhaseSpan(trace.Stall, lvl, start+d, start+d+0.1*float64(root+1))
			r0.LevelSpan(false, lvl, start, start+d+0.1*float64(root+1))
			r1.PhaseSpan(trace.BUComp, lvl, start, start+d*1.01)
			r1.LevelSpan(false, lvl, start, start+d*1.01)
		}
		s.Advance(100)
	}
	return rec
}

// TestReportDeterminism pins that BuildReport is byte-identical across
// repeats: the level fold must iterate instances in sorted order, not
// map order, or float accumulation and row naming drift between runs.
func TestReportDeterminism(t *testing.T) {
	var wantText string
	var wantJSON []byte
	for i := 0; i < 20; i++ {
		rep := multiRootRecorder().BuildReport()
		text := rep.String()
		j, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			wantText, wantJSON = text, j
			continue
		}
		if text != wantText {
			t.Fatalf("report text differs on repeat %d:\n%s\n--- vs ---\n%s", i, text, wantText)
		}
		if string(j) != string(wantJSON) {
			t.Fatalf("report JSON differs on repeat %d", i)
		}
	}
}
