package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestRegenerateGolden rewrites every testdata golden fixture when the
// OBS_UPDATE_GOLDEN environment variable is set. Kept as a test so the
// fixtures can be regenerated without a separate generator binary:
//
//	OBS_UPDATE_GOLDEN=1 go test ./internal/obs -run TestRegenerateGolden
func TestRegenerateGolden(t *testing.T) {
	if os.Getenv("OBS_UPDATE_GOLDEN") == "" {
		t.Skip("set OBS_UPDATE_GOLDEN=1 to rewrite the golden files")
	}
	write := func(name string, data []byte) {
		if err := os.WriteFile(filepath.Join("testdata", name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	chrome, err := syntheticRecorder().ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	write("chrome_golden.json", chrome)

	rec := sampledRecorder()
	var jsonl, prom, html bytes.Buffer
	if err := rec.WriteTimelineJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	write("timeline_golden.jsonl", jsonl.Bytes())
	if err := rec.WritePromText(&prom); err != nil {
		t.Fatal(err)
	}
	write("prom_golden.txt", prom.Bytes())
	if err := rec.WriteHTMLReport(&html); err != nil {
		t.Fatal(err)
	}
	write("html_golden.html", html.Bytes())
}
