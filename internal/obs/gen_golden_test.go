package obs

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRegenerateGolden rewrites testdata/chrome_golden.json when the
// OBS_UPDATE_GOLDEN environment variable is set. Kept as a test so the
// fixture can be regenerated without a separate generator binary:
//
//	OBS_UPDATE_GOLDEN=1 go test ./internal/obs -run TestRegenerateGolden
func TestRegenerateGolden(t *testing.T) {
	if os.Getenv("OBS_UPDATE_GOLDEN") == "" {
		t.Skip("set OBS_UPDATE_GOLDEN=1 to rewrite the golden file")
	}
	data, err := syntheticRecorder().ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("testdata", "chrome_golden.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}
