package obs

import (
	"fmt"

	"numabfs/internal/trace"
)

// Heatmap is one rank-per-row matrix ready for rendering: the rank ×
// phase view (where does each rank's time go) and the rank × time view
// (how a gauge evolves over the session grid) both produce it.
type Heatmap struct {
	Title string
	Unit  string
	Rows  []string    // row labels, one per rank
	Cols  []string    // column labels (phase names or bucket times)
	Cells [][]float64 // [row][col]
	Max   float64     // largest cell, for color scaling
}

func rankLabel(rk *RunRank) string {
	return fmt.Sprintf("rank %d (n%d/s%d)", rk.ID, rk.Node, rk.Socket)
}

// PhaseHeatmap builds the rank × phase matrix: each cell is the rank's
// total virtual ns charged to the phase over the whole session. Columns
// are the trace phases in enum order, so the matrix shape is identical
// across runs and diffable cell-by-cell.
func (s *RunSession) PhaseHeatmap() *Heatmap {
	h := &Heatmap{
		Title: "rank x phase (total ns)",
		Unit:  "ns",
	}
	h.Cols = trace.PhaseNames()
	idx := make(map[string]int, len(h.Cols))
	for i, name := range h.Cols {
		idx[name] = i
	}
	for _, rk := range s.Ranks {
		row := make([]float64, len(h.Cols))
		for _, sp := range rk.Spans {
			if sp.Cat != CatPhase {
				continue
			}
			if i, ok := idx[sp.Name]; ok {
				row[i] += sp.End - sp.Start
			}
		}
		h.Rows = append(h.Rows, rankLabel(rk))
		h.Cells = append(h.Cells, row)
		for _, v := range row {
			if v > h.Max {
				h.Max = v
			}
		}
	}
	return h
}

// GaugeHeatmap builds the rank × time matrix of one gauge on the
// session's sampling grid. Columns cover the bucket range any rank
// touched; untouched cells are zero. Returns nil when the session
// recorded no samples of g (or sampling was off).
func (s *RunSession) GaugeHeatmap(g Gauge) *Heatmap {
	lo, hi := int64(0), int64(-1)
	for _, rk := range s.Ranks {
		pts := rk.Gauges[g]
		if len(pts) == 0 {
			continue
		}
		if hi < lo || pts[0].Bucket < lo {
			lo = pts[0].Bucket
		}
		if pts[len(pts)-1].Bucket > hi {
			hi = pts[len(pts)-1].Bucket
		}
	}
	if hi < lo {
		return nil
	}
	h := &Heatmap{
		Title: fmt.Sprintf("rank x time: %s (bucket %.0f ns)", g, s.BucketNs),
		Unit:  g.String(),
	}
	for b := lo; b <= hi; b++ {
		h.Cols = append(h.Cols, fmt.Sprintf("%.0f", float64(b)*s.BucketNs))
	}
	for _, rk := range s.Ranks {
		row := make([]float64, hi-lo+1)
		for _, pt := range rk.Gauges[g] {
			row[pt.Bucket-lo] = pt.V
		}
		h.Rows = append(h.Rows, rankLabel(rk))
		h.Cells = append(h.Cells, row)
		for _, v := range row {
			if v > h.Max {
				h.Max = v
			}
		}
	}
	return h
}

// Coarsen folds the heatmap's columns into at most maxCols groups by
// summing adjacent cells (mean for instantaneous quantities is not
// needed: callers render volumes and durations). It returns the
// receiver when already narrow enough.
func (h *Heatmap) Coarsen(maxCols int) *Heatmap {
	n := len(h.Cols)
	if maxCols <= 0 || n <= maxCols {
		return h
	}
	// group size: ceil(n / maxCols)
	gsz := (n + maxCols - 1) / maxCols
	out := &Heatmap{Title: h.Title, Unit: h.Unit, Rows: h.Rows}
	for i := 0; i < n; i += gsz {
		out.Cols = append(out.Cols, h.Cols[i])
	}
	for _, row := range h.Cells {
		nrow := make([]float64, len(out.Cols))
		for i, v := range row {
			nrow[i/gsz] += v
		}
		out.Cells = append(out.Cells, nrow)
		for _, v := range nrow {
			if v > out.Max {
				out.Max = v
			}
		}
	}
	return out
}
