package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"numabfs/internal/trace"
)

// syntheticRecorder builds a small fixed recording: two sessions, the
// first with two ranks across two segments, exercising every span
// category and the metadata events.
func syntheticRecorder() *Recorder {
	rec := NewRecorder()

	s := rec.NewSession("cfg A")
	r0 := s.AddRank(0, 0, 0)
	r1 := s.AddRank(1, 0, 1)
	r0.PhaseSpan(trace.TDComp, 1, 0, 100)
	r0.PhaseSpan(trace.TDComm, 1, 100, 150)
	r0.LevelSpan(false, 1, 0, 150)
	r1.Collective("allgather-ring", 20, 90)
	r1.PhaseSpan(trace.Stall, 1, 0, 20)
	s.Advance(150)
	r0.PhaseSpan(trace.BUComp, 2, 0, 75.5)
	r1.LevelSpan(true, 2, 0, 80)

	s2 := rec.NewSession("cfg B")
	r := s2.AddRank(0, 1, 3)
	r.PhaseSpan(trace.Switch, 3, 1.25, 9)

	return rec
}

func TestChromeTraceGolden(t *testing.T) {
	data, err := syntheticRecorder().ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("exporter produced invalid JSON")
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with OBS_UPDATE_GOLDEN=1 go test -run TestRegenerateGolden): %v", err)
	}
	if string(data) != string(want) {
		t.Errorf("trace differs from %s:\n got: %s\nwant: %s", golden, data, want)
	}
}

// TestChromeTraceDeterminism pins the byte-for-byte determinism claim:
// two identical recordings must export identically.
func TestChromeTraceDeterminism(t *testing.T) {
	a, err := syntheticRecorder().ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := syntheticRecorder().ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two identical recordings exported different bytes")
	}
}

// TestChromeTraceStructure checks the trace_event invariants a viewer
// relies on: the envelope fields, complete events with non-negative
// ts/dur in each rank's track, and name/sort metadata per process and
// thread.
func TestChromeTraceStructure(t *testing.T) {
	data, err := syntheticRecorder().ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}
	procNames := map[int]string{}
	threadNames := map[[2]int]bool{}
	var xCount int
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "M":
			switch e.Name {
			case "process_name":
				procNames[e.Pid] = e.Args["name"].(string)
			case "thread_name":
				threadNames[[2]int{e.Pid, e.Tid}] = true
			}
		case "X":
			xCount++
			if e.Dur == nil {
				t.Fatalf("complete event %q lacks dur", e.Name)
			}
			if e.Ts < 0 || *e.Dur < 0 {
				t.Fatalf("event %q has negative ts/dur: %g/%g", e.Name, e.Ts, *e.Dur)
			}
			if !threadNames[[2]int{e.Pid, e.Tid}] {
				t.Fatalf("event %q on unnamed track pid=%d tid=%d", e.Name, e.Pid, e.Tid)
			}
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	if procNames[1] != "cfg A" || procNames[2] != "cfg B" {
		t.Errorf("process names: %v", procNames)
	}
	// cfg A has 2 ranks, cfg B has 1: three named tracks.
	if len(threadNames) != 3 {
		t.Errorf("thread tracks = %d, want 3", len(threadNames))
	}
	// 7 spans in session A + 1 in session B.
	if xCount != 8 {
		t.Errorf("complete events = %d, want 8", xCount)
	}
}
