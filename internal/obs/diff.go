package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"numabfs/internal/trace"
)

// Run-diff profiler: given two exported runs (ReadRunFile /
// Recorder.Dump), attribute the total virtual-time delta per phase, per
// rank, and per session. In an optimization-level sweep each session is
// one level, so the session rows read as the per-level attribution the
// paper's Fig. 11-14 walk makes by hand. All times are totals over
// ranks (and over every BFS root the session ran): attribution weights
// rank-seconds, the quantity the optimizations actually move.

// RunDiff is the comparison of two runs (A = baseline, B = candidate).
type RunDiff struct {
	Sessions []SessionDiff `json:"sessions"`
	// AOnly/BOnly list session labels present in only one run (sessions
	// pair by index; the tail of the longer run is unpaired).
	AOnly []string `json:"a_only,omitempty"`
	BOnly []string `json:"b_only,omitempty"`
}

// SessionDiff compares one session pair.
type SessionDiff struct {
	LabelA string `json:"label_a"`
	LabelB string `json:"label_b"`

	// TotalNs sums every phase span over all ranks; Delta is B - A
	// (negative = candidate faster).
	TotalANs float64 `json:"total_a_ns"`
	TotalBNs float64 `json:"total_b_ns"`
	DeltaNs  float64 `json:"delta_ns"`

	// Phases attributes the delta per phase, ordered by |delta|
	// descending (ties in enum order); phases absent from both runs are
	// dropped.
	Phases []PhaseDelta `json:"phases"`
	// Ranks attributes the delta per rank ID, in rank order.
	Ranks []RankDelta `json:"ranks"`

	// Overlap ledger deltas (totals over ranks); zero when neither run
	// ran the pipelined collective.
	OverlapHiddenANs  float64 `json:"overlap_hidden_a_ns,omitempty"`
	OverlapHiddenBNs  float64 `json:"overlap_hidden_b_ns,omitempty"`
	OverlapExposedANs float64 `json:"overlap_exposed_a_ns,omitempty"`
	OverlapExposedBNs float64 `json:"overlap_exposed_b_ns,omitempty"`

	// Wire volume delta by hop class.
	BytesA [NumHops]int64 `json:"bytes_a"`
	BytesB [NumHops]int64 `json:"bytes_b"`
}

// PhaseDelta is one phase's contribution to a session's delta.
type PhaseDelta struct {
	Name    string  `json:"name"`
	ANs     float64 `json:"a_ns"`
	BNs     float64 `json:"b_ns"`
	DeltaNs float64 `json:"delta_ns"`
}

// RankDelta is one rank's contribution to a session's delta.
type RankDelta struct {
	Rank    int     `json:"rank"`
	ANs     float64 `json:"a_ns"`
	BNs     float64 `json:"b_ns"`
	DeltaNs float64 `json:"delta_ns"`
}

// sessionTotals sums one session's phase spans: per phase (enum order)
// and per rank ID.
func sessionTotals(s *RunSession) (perPhase [trace.NumPhases]float64, perRank map[int]float64) {
	perRank = make(map[int]float64)
	for _, rk := range s.Ranks {
		for _, sp := range rk.Spans {
			if sp.Cat != CatPhase {
				continue
			}
			d := sp.End - sp.Start
			if p, ok := trace.PhaseByName(sp.Name); ok {
				perPhase[p] += d
				perRank[rk.ID] += d
			}
		}
	}
	return perPhase, perRank
}

// DiffRuns compares baseline a against candidate b.
func DiffRuns(a, b *Run) *RunDiff {
	d := &RunDiff{}
	n := len(a.Sessions)
	if len(b.Sessions) < n {
		n = len(b.Sessions)
	}
	for i := 0; i < n; i++ {
		d.Sessions = append(d.Sessions, diffSession(a.Sessions[i], b.Sessions[i]))
	}
	for _, s := range a.Sessions[n:] {
		d.AOnly = append(d.AOnly, s.Label)
	}
	for _, s := range b.Sessions[n:] {
		d.BOnly = append(d.BOnly, s.Label)
	}
	return d
}

func diffSession(a, b *RunSession) SessionDiff {
	sd := SessionDiff{LabelA: a.Label, LabelB: b.Label}

	phA, rkA := sessionTotals(a)
	phB, rkB := sessionTotals(b)
	for p := trace.Phase(0); p < trace.NumPhases; p++ {
		if phA[p] == 0 && phB[p] == 0 {
			continue
		}
		sd.Phases = append(sd.Phases, PhaseDelta{
			Name: p.String(), ANs: phA[p], BNs: phB[p], DeltaNs: phB[p] - phA[p],
		})
		sd.TotalANs += phA[p]
		sd.TotalBNs += phB[p]
	}
	sd.DeltaNs = sd.TotalBNs - sd.TotalANs
	// Stable attribution order: biggest mover first, enum order on ties
	// (SliceStable keeps the enum-ordered input for equal keys).
	sort.SliceStable(sd.Phases, func(i, j int) bool {
		return math.Abs(sd.Phases[i].DeltaNs) > math.Abs(sd.Phases[j].DeltaNs)
	})

	ids := make([]int, 0, len(rkA)+len(rkB))
	seen := make(map[int]bool)
	for id := range rkA {
		ids = append(ids, id)
		seen[id] = true
	}
	for id := range rkB {
		if !seen[id] {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		sd.Ranks = append(sd.Ranks, RankDelta{
			Rank: id, ANs: rkA[id], BNs: rkB[id], DeltaNs: rkB[id] - rkA[id],
		})
	}

	for _, rk := range a.Ranks {
		sd.OverlapHiddenANs += rk.Comm.OverlapHiddenNs
		sd.OverlapExposedANs += rk.Comm.OverlapExposedNs
		for h := Hop(0); h < NumHops; h++ {
			sd.BytesA[h] += rk.Comm.Bytes[h]
		}
	}
	for _, rk := range b.Ranks {
		sd.OverlapHiddenBNs += rk.Comm.OverlapHiddenNs
		sd.OverlapExposedBNs += rk.Comm.OverlapExposedNs
		for h := Hop(0); h < NumHops; h++ {
			sd.BytesB[h] += rk.Comm.Bytes[h]
		}
	}
	return sd
}

// String renders the diff as aligned text, deterministic for golden
// tests.
func (d *RunDiff) String() string {
	var b strings.Builder
	for i := range d.Sessions {
		if i > 0 {
			b.WriteByte('\n')
		}
		d.Sessions[i].render(&b)
	}
	for _, l := range d.AOnly {
		fmt.Fprintf(&b, "only in A: %s\n", l)
	}
	for _, l := range d.BOnly {
		fmt.Fprintf(&b, "only in B: %s\n", l)
	}
	return b.String()
}

// pct renders delta as a percentage of the baseline.
func pct(delta, base float64) string {
	if base == 0 {
		return "    n/a"
	}
	return fmt.Sprintf("%+6.1f%%", 100*delta/base)
}

func (sd *SessionDiff) render(b *strings.Builder) {
	fmt.Fprintf(b, "== %s -> %s ==\n", sd.LabelA, sd.LabelB)
	fmt.Fprintf(b, "total rank-time: %.4fms -> %.4fms  (%+.4fms, %s)\n",
		sd.TotalANs/1e6, sd.TotalBNs/1e6, sd.DeltaNs/1e6, pct(sd.DeltaNs, sd.TotalANs))

	if len(sd.Phases) > 0 {
		fmt.Fprintf(b, "  %-9s %12s %12s %12s %8s\n", "phase", "A ms", "B ms", "delta ms", "of A")
		for _, p := range sd.Phases {
			fmt.Fprintf(b, "  %-9s %12.4f %12.4f %+12.4f %8s\n",
				p.Name, p.ANs/1e6, p.BNs/1e6, p.DeltaNs/1e6, pct(p.DeltaNs, sd.TotalANs))
		}
	}
	if len(sd.Ranks) > 0 {
		fmt.Fprintf(b, "  %-9s %12s %12s %12s\n", "rank", "A ms", "B ms", "delta ms")
		for _, r := range sd.Ranks {
			fmt.Fprintf(b, "  %-9d %12.4f %12.4f %+12.4f\n",
				r.Rank, r.ANs/1e6, r.BNs/1e6, r.DeltaNs/1e6)
		}
	}
	if sd.OverlapHiddenANs != 0 || sd.OverlapHiddenBNs != 0 ||
		sd.OverlapExposedANs != 0 || sd.OverlapExposedBNs != 0 {
		fmt.Fprintf(b, "overlap hidden: %.4fms -> %.4fms  exposed: %.4fms -> %.4fms\n",
			sd.OverlapHiddenANs/1e6, sd.OverlapHiddenBNs/1e6,
			sd.OverlapExposedANs/1e6, sd.OverlapExposedBNs/1e6)
	}
	for h := Hop(0); h < NumHops; h++ {
		if sd.BytesA[h] == 0 && sd.BytesB[h] == 0 {
			continue
		}
		fmt.Fprintf(b, "%s bytes: %d -> %d (%+d)\n",
			h, sd.BytesA[h], sd.BytesB[h], sd.BytesB[h]-sd.BytesA[h])
	}
}
