package collective

import "testing"

func TestStepStreamsCountsIntraAndInter(t *testing.T) {
	// 2 nodes x 4 ranks; a ring send topology i -> i+1.
	w := testWorld(t, 2, 4)
	g := WorldGroup(w)
	sendTo := make([]int, 8)
	for i := range sendTo {
		sendTo[i] = (i + 1) % 8
	}
	streams := g.stepStreams(sendTo)
	// Ranks 0,1,2 send intra on node 0 (3 concurrent intra streams);
	// rank 3 sends inter (node 0: 1 outbound + 1 inbound = 2 streams).
	for _, i := range []int{0, 1, 2, 4, 5, 6} {
		if streams[i] != 3 {
			t.Errorf("intra sender %d: streams = %d, want 3", i, streams[i])
		}
	}
	for _, i := range []int{3, 7} {
		if streams[i] != 2 {
			t.Errorf("inter sender %d: streams = %d, want 2", i, streams[i])
		}
	}
}

func TestStepStreamsIdleMembers(t *testing.T) {
	w := testWorld(t, 2, 4)
	g := WorldGroup(w)
	sendTo := []int{4, -1, -1, -1, 0, -1, -1, -1} // one inter pair, rest idle
	streams := g.stepStreams(sendTo)
	if streams[0] != 2 || streams[4] != 2 {
		t.Errorf("pair streams = %d, %d, want 2 (own out + in)", streams[0], streams[4])
	}
	for _, i := range []int{1, 2, 3, 5, 6, 7} {
		if streams[i] != 0 {
			t.Errorf("idle member %d: streams = %d", i, streams[i])
		}
	}
}

func TestGroupPosPanicsForNonMember(t *testing.T) {
	w := testWorld(t, 1, 4)
	g := NewGroup(w, []int{0, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Pos(1)
}

func TestLayouts(t *testing.T) {
	l := EvenLayout(10, 4)
	if got := l.TotalWords(); got != 10 {
		t.Fatalf("TotalWords = %d", got)
	}
	// 10 over 4: 3,3,2,2.
	want := []int64{3, 3, 2, 2}
	for i, w := range want {
		if l.Counts[i] != w {
			t.Fatalf("counts = %v, want %v", l.Counts, want)
		}
	}
	// Displacements are cumulative and disjoint.
	var off int64
	for i := range l.Counts {
		if l.Displs[i] != off {
			t.Fatalf("displs = %v", l.Displs)
		}
		off += l.Counts[i]
	}

	sl := SegLayout([]int64{0, 4, 4, 9})
	if sl.Counts[1] != 0 || sl.Counts[2] != 5 || sl.TotalWords() != 9 {
		t.Fatalf("SegLayout: %+v", sl)
	}
}

func TestNewGroupRejectsDuplicates(t *testing.T) {
	w := testWorld(t, 1, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGroup(w, []int{0, 1, 0})
}
