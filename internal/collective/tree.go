package collective

import "numabfs/internal/mpi"

// GatherBinomial gathers every member's segment of buf (per layout l) to
// the member at group position rootPos, along a binomial tree: in round
// k, members whose (virtual) position has bit k set send everything their
// subtree holds to the parent at distance 2^k. Non-root members' buffers
// are used as staging for their subtree's segments.
func (g *Group) GatherBinomial(p *mpi.Proc, buf []uint64, l Layout, rootPos int) {
	n := g.Size()
	if n == 1 {
		return
	}
	me := g.Pos(p.Rank())
	v := (me - rootPos + n) % n // virtual position: root is 0
	sendTo := make([]int, n)

	for k, d := 0, 1; d < n; k, d = k+1, d*2 {
		// Compute this round's send topology for stream counting.
		for i := range sendTo {
			vi := (i - rootPos + n) % n
			if vi&d != 0 && vi&(d-1) == 0 {
				sendTo[i] = (vi - d + rootPos) % n
			} else {
				sendTo[i] = -1
			}
		}
		streams := g.stepStreams(sendTo)

		if v&d != 0 && v&(d-1) == 0 {
			// I send my subtree: virtual positions [v, min(v+d, n)).
			hi := v + d
			if hi > n {
				hi = n
			}
			payload := blocks{}
			for s := v; s < hi; s++ {
				id := (s + rootPos) % n
				payload.ids = append(payload.ids, id)
				payload.data = append(payload.data, l.seg(buf, id))
			}
			parent := g.ranks[(v-d+rootPos)%n]
			p.Send(parent, tagGather+k, payload.words()*8, payload, streams[me])
			return // a sender is done after handing off its subtree
		}
		if v&(2*d-1) == 0 && v+d < n {
			child := g.ranks[(v+d+rootPos)%n]
			m := p.Recv(child, tagGather+k)
			in := m.Payload.(blocks)
			for j, id := range in.ids {
				copy(l.seg(buf, id), in.data[j])
			}
		}
	}
}

// BcastBinomial broadcasts words[0:total] of buf from the member at group
// position rootPos to all members along a binomial tree (rounds from the
// top bit down, the standard MPI algorithm).
func (g *Group) BcastBinomial(p *mpi.Proc, buf []uint64, total int64, rootPos int) {
	n := g.Size()
	if n == 1 {
		return
	}
	me := g.Pos(p.Rank())
	v := (me - rootPos + n) % n
	top := 1
	for top < n {
		top *= 2
	}
	sendTo := make([]int, n)
	for k, d := 0, top/2; d >= 1; k, d = k+1, d/2 {
		for i := range sendTo {
			vi := (i - rootPos + n) % n
			if vi&(d-1) == 0 && vi&d == 0 && vi+d < n && vi%(2*d) == 0 {
				sendTo[i] = (vi + d + rootPos) % n
			} else {
				sendTo[i] = -1
			}
		}
		streams := g.stepStreams(sendTo)
		switch {
		case v%(2*d) == 0 && v+d < n:
			dst := g.ranks[(v+d+rootPos)%n]
			p.Send(dst, tagBcast+k, total*8, buf[:total], streams[me])
		case v%(2*d) == d:
			src := g.ranks[(v-d+rootPos)%n]
			m := p.Recv(src, tagBcast+k)
			copy(buf[:total], m.Payload.([]uint64))
		}
	}
}
