package collective

import (
	"math/bits"

	"numabfs/internal/mpi"
)

// tagAllreduceV is the lane-vector allreduce's tag base, spaced away from
// every other collective family (allgather.go's table).
const tagAllreduceV = 0xD000

// laneVec is the wire payload of AllreduceSumVec64. It travels by value:
// boxing into the message's `any` copies the array, so a receiver's read
// can never race the sender's next mutation of its accumulator — the
// property the scalar allreduce gets for free from int64 payloads.
type laneVec [64]int64

// AllreduceSumVec64 sums a 64-element int64 vector over the group,
// in place: on return every member's x holds the element-wise global sum.
// This is the batched engine's per-lane frontier accounting — one
// 512-byte collective replaces the 64 scalar allreduces a lane-at-a-time
// run would pay. Same structure as AllreduceSumInt64: recursive doubling
// on power-of-two groups, linear gather + broadcast otherwise.
func (g *Group) AllreduceSumVec64(p *mpi.Proc, x *[64]int64) {
	n := g.Size()
	if n == 1 {
		return
	}
	me := g.Pos(p.Rank())
	t0 := p.Clock()
	const bytes = 64 * 8
	if n&(n-1) != 0 {
		// Linear fallback: gather to position 0, broadcast the sum.
		if me == 0 {
			for i := 1; i < n; i++ {
				m := p.Recv(g.ranks[i], tagAllreduceV)
				in := m.Payload.(laneVec)
				for k := range x {
					x[k] += in[k]
				}
			}
			for i := 1; i < n; i++ {
				p.Send(g.ranks[i], tagAllreduceV+1, bytes, laneVec(*x), 1)
			}
		} else {
			p.Send(g.ranks[0], tagAllreduceV, bytes, laneVec(*x), 1)
			m := p.Recv(g.ranks[0], tagAllreduceV+1)
			*x = [64]int64(m.Payload.(laneVec))
		}
		p.Obs().Collective("allreduce-vec", t0, p.Clock())
		return
	}
	steps := bits.TrailingZeros(uint(n))
	xor := g.xorStreams()
	for k := 0; k < steps; k++ {
		d := 1 << uint(k)
		partner := g.ranks[me^d]
		m := p.SendRecv(partner, tagAllreduceV+2+k, bytes, laneVec(*x),
			partner, tagAllreduceV+2+k, xor[k][me])
		in := m.Payload.(laneVec)
		for j := range x {
			x[j] += in[j]
		}
	}
	p.Obs().Collective("allreduce-vec", t0, p.Clock())
}
