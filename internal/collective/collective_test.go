package collective

import (
	"testing"
	"testing/quick"

	"numabfs/internal/machine"
	"numabfs/internal/mpi"
)

func testWorld(t testing.TB, nodes, ppn int) *mpi.World {
	t.Helper()
	cfg := machine.TableI()
	cfg.Nodes = nodes
	cfg.SocketsPerNode = ppn
	cfg.WeakNode = -1
	pl := machine.PlacementFor(cfg, machine.PPN8Bind)
	return mpi.NewWorld(cfg, pl)
}

// fillOwn stages rank r's segment with a recognizable pattern.
func fillOwn(buf []uint64, l Layout, pos int) {
	seg := l.seg(buf, pos)
	for i := range seg {
		seg[i] = uint64(pos)<<32 | uint64(i)
	}
}

// checkFull verifies every segment of buf carries its owner's pattern.
func checkFull(t *testing.T, who string, rank int, buf []uint64, l Layout) {
	t.Helper()
	for pos := range l.Counts {
		seg := l.seg(buf, pos)
		for i := range seg {
			if want := uint64(pos)<<32 | uint64(i); seg[i] != want {
				t.Fatalf("%s: rank %d segment %d word %d = %#x, want %#x", who, rank, pos, i, seg[i], want)
				return
			}
		}
	}
}

func runAllgather(t *testing.T, nodes, ppn int, words int64,
	fn func(g *Group, p *mpi.Proc, buf []uint64, l Layout)) {
	t.Helper()
	w := testWorld(t, nodes, ppn)
	g := WorldGroup(w)
	l := EvenLayout(words, g.Size())
	w.Run(func(p *mpi.Proc) {
		buf := make([]uint64, words)
		fillOwn(buf, l, g.Pos(p.Rank()))
		fn(g, p, buf, l)
		checkFull(t, "allgather", p.Rank(), buf, l)
	})
}

func TestAllgatherRing(t *testing.T) {
	runAllgather(t, 2, 4, 257, (*Group).AllgatherRing)
}

func TestAllgatherRingSingleRank(t *testing.T) {
	runAllgather(t, 1, 1, 16, (*Group).AllgatherRing)
}

func TestAllgatherRecDouble(t *testing.T) {
	runAllgather(t, 2, 4, 256, (*Group).AllgatherRecDouble)
}

func TestAllgatherBruck(t *testing.T) {
	runAllgather(t, 2, 4, 257, (*Group).AllgatherBruck)
}

func TestAllgatherBruckNonPowerOfTwo(t *testing.T) {
	// Bruck's selling point: any group size.
	runAllgather(t, 3, 2, 123, (*Group).AllgatherBruck)
	runAllgather(t, 1, 7, 99, (*Group).AllgatherBruck)
	runAllgather(t, 5, 1, 321, (*Group).AllgatherBruck)
}

func TestAllgatherAutoSmallAndLarge(t *testing.T) {
	runAllgather(t, 2, 4, 64, (*Group).Allgather)                       // rec-doubling path
	runAllgather(t, 2, 4, (RingThresholdBytes/8)*2, (*Group).Allgather) // ring path
}

func TestAllgatherVariantsAgreeProperty(t *testing.T) {
	// Property: for random uneven layouts, ring and recursive doubling
	// deliver identical full buffers.
	f := func(sizes [8]uint8) bool {
		var words int64
		counts := make([]int64, 8)
		for i, s := range sizes {
			counts[i] = int64(s%16) + 1
			words += counts[i]
		}
		offs := make([]int64, 9)
		for i := 0; i < 8; i++ {
			offs[i+1] = offs[i] + counts[i]
		}
		l := SegLayout(offs)

		results := make([][]uint64, 3)
		for vi, fn := range []func(g *Group, p *mpi.Proc, buf []uint64, l Layout){
			(*Group).AllgatherRing, (*Group).AllgatherRecDouble, (*Group).AllgatherBruck,
		} {
			w := testWorld(t, 2, 4)
			g := WorldGroup(w)
			out := make([]uint64, words)
			w.Run(func(p *mpi.Proc) {
				buf := make([]uint64, words)
				fillOwn(buf, l, g.Pos(p.Rank()))
				fn(g, p, buf, l)
				if p.Rank() == 3 {
					copy(out, buf)
				}
			})
			results[vi] = out
		}
		for i := range results[0] {
			if results[0][i] != results[1][i] || results[0][i] != results[2][i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGatherBinomial(t *testing.T) {
	for _, root := range []int{0, 3, 5} {
		w := testWorld(t, 2, 4)
		g := WorldGroup(w)
		l := EvenLayout(123, g.Size())
		w.Run(func(p *mpi.Proc) {
			buf := make([]uint64, 123)
			fillOwn(buf, l, g.Pos(p.Rank()))
			g.GatherBinomial(p, buf, l, root)
			if g.Pos(p.Rank()) == root {
				checkFull(t, "gather", p.Rank(), buf, l)
			}
		})
	}
}

func TestBcastBinomial(t *testing.T) {
	for _, root := range []int{0, 2, 7} {
		w := testWorld(t, 2, 4)
		g := WorldGroup(w)
		const words = 99
		w.Run(func(p *mpi.Proc) {
			buf := make([]uint64, words)
			if g.Pos(p.Rank()) == root {
				for i := range buf {
					buf[i] = uint64(i) * 3
				}
			}
			g.BcastBinomial(p, buf, words, root)
			for i := range buf {
				if buf[i] != uint64(i)*3 {
					t.Errorf("root %d rank %d word %d = %d", root, p.Rank(), i, buf[i])
					return
				}
			}
		})
	}
}

func TestAllreduceSumInt64(t *testing.T) {
	for _, geo := range []struct{ nodes, ppn int }{{2, 4}, {3, 1}, {1, 3}} {
		w := testWorld(t, geo.nodes, geo.ppn)
		g := WorldGroup(w)
		n := int64(g.Size())
		want := n * (n - 1) / 2
		w.Run(func(p *mpi.Proc) {
			got := g.AllreduceSumInt64(p, int64(p.Rank()))
			if got != want {
				t.Errorf("%d ranks: rank %d got %d, want %d", n, p.Rank(), got, want)
			}
		})
	}
}

func TestAlltoallvInt64(t *testing.T) {
	w := testWorld(t, 2, 3)
	g := WorldGroup(w)
	n := g.Size()
	w.Run(func(p *mpi.Proc) {
		me := g.Pos(p.Rank())
		send := make([][]int64, n)
		for j := 0; j < n; j++ {
			// me sends j a vector of length (me+1) holding me*100+j.
			v := make([]int64, me+1)
			for k := range v {
				v[k] = int64(me*100 + j)
			}
			send[j] = v
		}
		recv := g.AlltoallvInt64(p, send)
		for src := 0; src < n; src++ {
			if len(recv[src]) != src+1 {
				t.Errorf("rank %d: len(recv[%d]) = %d, want %d", me, src, len(recv[src]), src+1)
				continue
			}
			for _, v := range recv[src] {
				if v != int64(src*100+me) {
					t.Errorf("rank %d: recv[%d] holds %d, want %d", me, src, v, src*100+me)
					break
				}
			}
		}
	})
}

func TestLeaderAllgather(t *testing.T) {
	w := testWorld(t, 4, 4)
	nc := NewNodeComm(w)
	l := EvenLayout(640, w.NumProcs())
	w.Run(func(p *mpi.Proc) {
		buf := make([]uint64, 640)
		fillOwn(buf, l, p.Rank())
		st := nc.LeaderAllgather(p, buf, l)
		checkFull(t, "leader", p.Rank(), buf, l)
		if p.LocalRank() != 0 && st.InterNs != 0 {
			t.Errorf("child rank %d charged inter time %g", p.Rank(), st.InterNs)
		}
		if st.BcastNs <= 0 {
			t.Errorf("rank %d: BcastNs = %g, want > 0", p.Rank(), st.BcastNs)
		}
	})
}

func TestSharedInQueueAllgather(t *testing.T) {
	w := testWorld(t, 4, 4)
	nc := NewNodeComm(w)
	const words = 640
	l := EvenLayout(words, w.NumProcs())
	w.Run(func(p *mpi.Proc) {
		shared := p.SharedWords("inq", words)
		seg := make([]uint64, l.Counts[p.Rank()])
		for i := range seg {
			seg[i] = uint64(p.Rank())<<32 | uint64(i)
		}
		st := nc.SharedInQueueAllgather(p, shared, seg, l)
		checkFull(t, "shared-inq", p.Rank(), shared, l)
		if st.BcastNs != 0 {
			t.Errorf("rank %d: BcastNs = %g, want 0 (eliminated)", p.Rank(), st.BcastNs)
		}
	})
}

func TestSharedAllAgather(t *testing.T) {
	w := testWorld(t, 4, 4)
	nc := NewNodeComm(w)
	const words = 640
	l := EvenLayout(words, w.NumProcs())
	w.Run(func(p *mpi.Proc) {
		sharedIn := p.SharedWords("inq", words)
		sharedOut := p.SharedWords("outq", words)
		// Each rank stages its own segment in the node-shared out region.
		fillOwn(sharedOut, l, p.Rank())
		p.NodeBarrier()
		nc.SharedAllAgather(p, sharedIn, sharedOut, l)
		checkFull(t, "shared-all", p.Rank(), sharedIn, l)
	})
}

func TestParallelAllgather(t *testing.T) {
	w := testWorld(t, 4, 4)
	nc := NewNodeComm(w)
	const words = 640
	l := EvenLayout(words, w.NumProcs())
	w.Run(func(p *mpi.Proc) {
		shared := p.SharedWords("inq", words)
		seg := make([]uint64, l.Counts[p.Rank()])
		for i := range seg {
			seg[i] = uint64(p.Rank())<<32 | uint64(i)
		}
		nc.ParallelAllgather(p, shared, seg, l)
		checkFull(t, "parallel", p.Rank(), shared, l)
	})
}

func TestLeaderAllgatherPipelined(t *testing.T) {
	for _, geo := range []struct{ nodes, ppn int }{{4, 4}, {2, 8}, {3, 2}} {
		w := testWorld(t, geo.nodes, geo.ppn)
		nc := NewNodeComm(w)
		const words = 644
		l := EvenLayout(words, w.NumProcs())
		w.Run(func(p *mpi.Proc) {
			buf := make([]uint64, words)
			fillOwn(buf, l, p.Rank())
			nc.LeaderAllgatherPipelined(p, buf, l)
			checkFull(t, "pipelined", p.Rank(), buf, l)
		})
	}
}

func TestPipelinedOverlapHelpsButSharingWins(t *testing.T) {
	// The paper's Section V argument: overlap (HierKNEM-style) improves
	// on plain leader-based allgather, but cannot beat eliminating the
	// intra-node copies entirely by sharing.
	const nodes, ppn, words = 4, 8, 1 << 16
	timeOf := func(run func(w *mpi.World, nc *NodeComm, l Layout)) float64 {
		w := testWorld(t, nodes, ppn)
		nc := NewNodeComm(w)
		l := EvenLayout(words, w.NumProcs())
		run(w, nc, l)
		return w.MaxClock()
	}
	leader := timeOf(func(w *mpi.World, nc *NodeComm, l Layout) {
		w.Run(func(p *mpi.Proc) {
			buf := make([]uint64, words)
			nc.LeaderAllgather(p, buf, l)
		})
	})
	pipelined := timeOf(func(w *mpi.World, nc *NodeComm, l Layout) {
		w.Run(func(p *mpi.Proc) {
			buf := make([]uint64, words)
			nc.LeaderAllgatherPipelined(p, buf, l)
		})
	})
	shared := timeOf(func(w *mpi.World, nc *NodeComm, l Layout) {
		w.Run(func(p *mpi.Proc) {
			sharedIn := p.SharedWords("inq", words)
			sharedOut := p.SharedWords("outq", words)
			p.NodeBarrier()
			nc.SharedAllAgather(p, sharedIn, sharedOut, l)
		})
	})
	if !(pipelined < leader) {
		t.Errorf("pipelined overlap (%.0f) not faster than plain leader-based (%.0f)", pipelined, leader)
	}
	if !(shared < pipelined) {
		t.Errorf("sharing (%.0f) not faster than overlap (%.0f) — the paper's Section V claim", shared, pipelined)
	}
}

func TestEq1RingVolume(t *testing.T) {
	// Eq. (1): total allgather traffic is m*(np-1) bytes.
	w := testWorld(t, 2, 4)
	g := WorldGroup(w)
	const words = 800
	l := EvenLayout(words, g.Size())
	w.Run(func(p *mpi.Proc) {
		buf := make([]uint64, words)
		fillOwn(buf, l, g.Pos(p.Rank()))
		g.AllgatherRing(p, buf, l)
	})
	vol := w.Net().Volume()
	m := int64(words * 8)
	want := m * int64(g.Size()-1)
	if got := vol.IntraBytes + vol.InterBytes; got != want {
		t.Fatalf("ring volume = %d, want m*(np-1) = %d", got, want)
	}
}

func TestEq2ParallelVolume(t *testing.T) {
	// Eq. (2): parallelized allgather moves m*(np/ppn - 1) bytes over the
	// network — the same as one leader per node moving everything.
	const nodes, ppn, words = 4, 4, 960
	w := testWorld(t, nodes, ppn)
	nc := NewNodeComm(w)
	l := EvenLayout(words, w.NumProcs())
	w.Run(func(p *mpi.Proc) {
		shared := p.SharedWords("inq", words)
		seg := make([]uint64, l.Counts[p.Rank()])
		nc.ParallelAllgather(p, shared, seg, l)
	})
	vol := w.Net().Volume()
	m := int64(words * 8)
	want := m * int64(nodes-1)
	if vol.InterBytes != want {
		t.Fatalf("parallel allgather inter-node volume = %d, want m*(np/ppn-1) = %d", vol.InterBytes, want)
	}
	if vol.IntraBytes != 0 {
		t.Fatalf("parallel allgather moved %d intra-node MPI bytes, want 0", vol.IntraBytes)
	}
}

func TestLeaderAllgatherCheaperWhenShared(t *testing.T) {
	// The point of Section III.A: sharing eliminates intra-node steps, so
	// the whole operation takes less virtual time than leader-based.
	const nodes, ppn, words = 4, 8, 1 << 16
	timeOf := func(run func(w *mpi.World, nc *NodeComm, l Layout)) float64 {
		w := testWorld(t, nodes, ppn)
		nc := NewNodeComm(w)
		l := EvenLayout(words, w.NumProcs())
		run(w, nc, l)
		return w.MaxClock()
	}
	leader := timeOf(func(w *mpi.World, nc *NodeComm, l Layout) {
		w.Run(func(p *mpi.Proc) {
			buf := make([]uint64, words)
			nc.LeaderAllgather(p, buf, l)
		})
	})
	sharedIn := timeOf(func(w *mpi.World, nc *NodeComm, l Layout) {
		w.Run(func(p *mpi.Proc) {
			shared := p.SharedWords("inq", words)
			seg := make([]uint64, l.Counts[p.Rank()])
			nc.SharedInQueueAllgather(p, shared, seg, l)
		})
	})
	sharedAll := timeOf(func(w *mpi.World, nc *NodeComm, l Layout) {
		w.Run(func(p *mpi.Proc) {
			sharedIn := p.SharedWords("inq", words)
			sharedOut := p.SharedWords("outq", words)
			p.NodeBarrier()
			nc.SharedAllAgather(p, sharedIn, sharedOut, l)
		})
	})
	par := timeOf(func(w *mpi.World, nc *NodeComm, l Layout) {
		w.Run(func(p *mpi.Proc) {
			shared := p.SharedWords("inq", words)
			seg := make([]uint64, l.Counts[p.Rank()])
			nc.ParallelAllgather(p, shared, seg, l)
		})
	})
	if !(sharedIn < leader) {
		t.Errorf("share in_queue (%.0f) not faster than leader-based (%.0f)", sharedIn, leader)
	}
	if !(sharedAll < sharedIn) {
		t.Errorf("share all (%.0f) not faster than share in_queue (%.0f)", sharedAll, sharedIn)
	}
	if !(par < sharedAll) {
		t.Errorf("parallel allgather (%.0f) not faster than share all (%.0f)", par, sharedAll)
	}
}
