package collective

import (
	"testing"
	"testing/quick"

	"numabfs/internal/mpi"
)

func TestAllgathervInt64(t *testing.T) {
	w := testWorld(t, 2, 3)
	g := WorldGroup(w)
	n := g.Size()
	w.Run(func(p *mpi.Proc) {
		me := g.Pos(p.Rank())
		mine := make([]int64, me) // member i contributes i elements
		for k := range mine {
			mine[k] = int64(me*1000 + k)
		}
		out := g.AllgathervInt64(p, mine)
		for src := 0; src < n; src++ {
			if len(out[src]) != src {
				t.Errorf("rank %d: len(out[%d]) = %d, want %d", me, src, len(out[src]), src)
				continue
			}
			for k, v := range out[src] {
				if v != int64(src*1000+k) {
					t.Errorf("rank %d: out[%d][%d] = %d", me, src, k, v)
				}
			}
		}
	})
}

func TestAllgathervInt64SingleMember(t *testing.T) {
	w := testWorld(t, 1, 1)
	g := WorldGroup(w)
	w.Run(func(p *mpi.Proc) {
		out := g.AllgathervInt64(p, []int64{7, 8})
		if len(out) != 1 || len(out[0]) != 2 || out[0][1] != 8 {
			t.Errorf("out = %v", out)
		}
	})
}

// Property: for random per-member lengths, everyone sees everyone's
// exact contribution, empty slices included.
func TestAllgathervInt64Property(t *testing.T) {
	f := func(lens [6]uint8) bool {
		w := testWorld(t, 2, 3)
		g := WorldGroup(w)
		ok := true
		w.Run(func(p *mpi.Proc) {
			me := g.Pos(p.Rank())
			mine := make([]int64, int(lens[me]%5))
			for k := range mine {
				mine[k] = int64(me)<<8 | int64(k)
			}
			out := g.AllgathervInt64(p, mine)
			for src := 0; src < g.Size(); src++ {
				if len(out[src]) != int(lens[src]%5) {
					ok = false
					return
				}
				for k, v := range out[src] {
					if v != int64(src)<<8|int64(k) {
						ok = false
						return
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
