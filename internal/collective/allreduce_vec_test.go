package collective

import (
	"sync"
	"testing"

	"numabfs/internal/mpi"
)

func runAllreduceVec(t *testing.T, nodes, ppn int) {
	t.Helper()
	w := testWorld(t, nodes, ppn)
	g := WorldGroup(w)
	n := g.Size()
	// want[k] = sum over ranks of (rank+1)*(k+1).
	var want [64]int64
	for r := 0; r < n; r++ {
		for k := 0; k < 64; k++ {
			want[k] += int64(r+1) * int64(k+1)
		}
	}
	var mu sync.Mutex
	clocks := map[float64]int{}
	w.Run(func(p *mpi.Proc) {
		var x [64]int64
		for k := 0; k < 64; k++ {
			x[k] = int64(g.Pos(p.Rank())+1) * int64(k+1)
		}
		g.AllreduceSumVec64(p, &x)
		if x != want {
			t.Errorf("rank %d: vec allreduce sum wrong: got[0]=%d want[0]=%d", p.Rank(), x[0], want[0])
		}
		mu.Lock()
		clocks[p.Clock()]++
		mu.Unlock()
	})
	// Recursive doubling is symmetric: power-of-two groups end at one clock.
	if n&(n-1) == 0 && len(clocks) != 1 {
		t.Fatalf("power-of-two allreduce-vec desynchronized clocks: %v", clocks)
	}
}

func TestAllreduceSumVec64PowerOfTwo(t *testing.T) { runAllreduceVec(t, 2, 4) }
func TestAllreduceSumVec64Linear(t *testing.T)     { runAllreduceVec(t, 3, 2) }

func TestAllreduceSumVec64SingleRank(t *testing.T) {
	w := testWorld(t, 1, 1)
	g := WorldGroup(w)
	w.Run(func(p *mpi.Proc) {
		x := [64]int64{1: 7}
		g.AllreduceSumVec64(p, &x)
		if x[1] != 7 {
			t.Errorf("single-rank allreduce-vec changed the vector")
		}
	})
}
