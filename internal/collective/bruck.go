package collective

import "numabfs/internal/mpi"

const tagBruck = 0x7000

// AllgatherBruck is Bruck's allgather: ceil(log2 n) steps for *any*
// group size (not just powers of two). At each step a member sends every
// block it holds to the member `held` positions behind it and receives
// as many from the member `held` positions ahead, doubling its holdings;
// the final step tops up the remainder. Bruck is the short-message
// algorithm of choice for non-power-of-two groups in MPICH's tuned
// decisions; the repository's ablation experiment compares it with ring
// and recursive doubling on the in_queue allgather.
func (g *Group) AllgatherBruck(p *mpi.Proc, buf []uint64, l Layout) {
	n := g.Size()
	if n == 1 {
		return
	}
	me := g.Pos(p.Rank())
	sendTo := make([]int, n)
	step := 0
	for held := 1; held < n; held *= 2 {
		cnt := held
		if held+cnt > n {
			cnt = n - held
		}
		dst := (me - held + n) % n
		src := (me + held) % n
		for i := range sendTo {
			sendTo[i] = (i - held + n) % n
		}
		streams := g.stepStreams(sendTo)

		// Send blocks {me .. me+cnt-1}; receive {src .. src+cnt-1}.
		payload := blocks{ids: make([]int, cnt), data: make([][]uint64, cnt)}
		for j := 0; j < cnt; j++ {
			id := (me + j) % n
			payload.ids[j] = id
			payload.data[j] = l.seg(buf, id)
		}
		m := p.SendRecv(g.ranks[dst], tagBruck+step, payload.words()*8, payload,
			g.ranks[src], tagBruck+step, streams[me])
		in := m.Payload.(blocks)
		for j, id := range in.ids {
			if want := (src + j) % n; id != want {
				panic("collective: Bruck allgather received unexpected segment")
			}
			copy(l.seg(buf, id), in.data[j])
		}
		step++
	}
}
