package collective

import (
	"math/bits"

	"numabfs/internal/mpi"
	"numabfs/internal/wire"
)

// RingThresholdBytes is the default Thakur–Gropp switch point: recursive
// doubling for shorter allgathers, ring for longer ones (as in
// MPICH/Open MPI). The machine configuration can override it (and the
// Scaled preset shrinks it along with the payloads).
const RingThresholdBytes = 512 << 10

// tag space: each collective family uses a distinct, widely spaced base
// (steps are added to the base) so mismatched programs fail loudly.
const (
	tagRing      = 0x1000
	tagRecDouble = 0x2000
	tagGather    = 0x3000
	tagBcast     = 0x4000
	tagAlltoall  = 0x5000
	tagAllreduce = 0x6000
	tagRingC     = 0x9000
	tagListC     = 0xA000
	tagSeg       = 0xB000
	tagAlltoallC = 0xC000
)

// Allgather performs an allgatherv over the group into buf: member i's
// segment (layout seg i) must already be in place in its own buf; on
// return every member's buf holds all segments. Algorithm selection
// models the MPI library default (Thakur-Gropp): recursive doubling for
// short payloads on power-of-two groups, ring for long payloads — the
// in_queue allgather is always in the ring regime at paper scales.
func (g *Group) Allgather(p *mpi.Proc, buf []uint64, l Layout) {
	threshold := p.World().Config().AllgatherRingThreshold
	if threshold <= 0 {
		threshold = RingThresholdBytes
	}
	n := g.Size()
	if n&(n-1) == 0 && l.TotalWords()*8 < threshold {
		g.AllgatherRecDouble(p, buf, l)
		return
	}
	g.AllgatherRing(p, buf, l)
}

// AllgatherRing is the ring (bucket) allgatherv: n-1 steps; at step s
// member i forwards the segment it received at step s-1 (starting with
// its own) to its successor. Total traffic is m*(n-1) bytes — Eq. (1).
func (g *Group) AllgatherRing(p *mpi.Proc, buf []uint64, l Layout) {
	// The send topology is the same in every step: i -> i+1.
	t0 := p.Clock()
	g.allgatherRingStreams(p, buf, l, g.ringStreams()[g.Pos(p.Rank())])
	p.Obs().Collective("allgather-ring", t0, p.Clock())
}

// allgatherRingStreams is AllgatherRing with an explicit stream count,
// used by the parallelized allgather where several subgroups run
// concurrently and each must account for the others' NIC streams.
func (g *Group) allgatherRingStreams(p *mpi.Proc, buf []uint64, l Layout, streams int) {
	n := g.Size()
	if n == 1 {
		return
	}
	me := g.Pos(p.Rank())
	next := g.ranks[(me+1)%n]
	prev := g.ranks[(me-1+n)%n]

	for s := 0; s < n-1; s++ {
		sendID := (me - s + n) % n
		recvID := (me - s - 1 + n) % n
		seg := l.seg(buf, sendID)
		m := p.SendRecv(next, tagRing+s, int64(len(seg))*8, ringSeg{id: sendID, data: seg},
			prev, tagRing+s, streams)
		in := m.Payload.(ringSeg)
		if in.id != recvID {
			panic("collective: ring allgather received unexpected segment")
		}
		copy(l.seg(buf, in.id), in.data)
	}
}

// AllgatherRingCompressed is AllgatherRing with each segment travelling
// in the codec's wire formats: every member encodes its own segment
// once, and receivers decode into place, then forward the still-encoded
// payload. Wire bytes drive the modelled transfer cost while the
// network's raw counters keep Eq. (1)'s logical volume visible, so one
// run exposes the compression saving.
func (g *Group) AllgatherRingCompressed(p *mpi.Proc, buf []uint64, l Layout, c *wire.Codec) {
	t0 := p.Clock()
	g.allgatherRingStreamsC(p, buf, l, g.ringStreams()[g.Pos(p.Rank())], c)
	p.Obs().Collective("allgather-ring-comp", t0, p.Clock())
}

// allgatherRingStreamsC is the compressed ring with an explicit stream
// count (the parallelized allgather's subgroups pass their own).
func (g *Group) allgatherRingStreamsC(p *mpi.Proc, buf []uint64, l Layout, streams int, c *wire.Codec) {
	n := g.Size()
	if n == 1 {
		return
	}
	me := g.Pos(p.Rank())
	next := g.ranks[(me+1)%n]
	prev := g.ranks[(me-1+n)%n]

	pl, ns := c.Encode(l.seg(buf, me))
	p.Compute(ns)
	cur := encSeg{id: me, pl: pl}
	for s := 0; s < n-1; s++ {
		recvID := (me - s - 1 + n) % n
		m := p.SendRecvWire(next, tagRingC+s, cur.pl.WireBytes, cur.pl.RawBytes, cur,
			prev, tagRingC+s, streams)
		in := m.Payload.(encSeg)
		if in.id != recvID {
			panic("collective: compressed ring received unexpected segment")
		}
		p.Compute(c.Decode(l.seg(buf, in.id), in.pl))
		cur = in
	}
}

// AllgatherRecDouble is the recursive-doubling allgatherv for
// power-of-two group sizes: log2(n) steps; at step k, members at distance
// 2^k exchange everything they hold. Short-message optimal.
func (g *Group) AllgatherRecDouble(p *mpi.Proc, buf []uint64, l Layout) {
	n := g.Size()
	if n == 1 {
		return
	}
	if n&(n-1) != 0 {
		panic("collective: recursive doubling needs a power-of-two group")
	}
	me := g.Pos(p.Rank())
	t0 := p.Clock()
	steps := bits.TrailingZeros(uint(n))
	xor := g.xorStreams()
	for k := 0; k < steps; k++ {
		d := 1 << uint(k)
		streams := xor[k]
		partner := me ^ d
		// After k steps I hold the d segments of my d-aligned block;
		// my partner holds the sibling block of the 2d-aligned pair.
		myBase := me &^ (d - 1)
		pBase := partner &^ (d - 1)
		own := make([]int, 0, d)
		theirs := make([]int, 0, d)
		for i := 0; i < d; i++ {
			own = append(own, myBase+i)
			theirs = append(theirs, pBase+i)
		}
		payload := blocks{ids: own, data: make([][]uint64, len(own))}
		for j, id := range own {
			payload.data[j] = l.seg(buf, id)
		}
		m := p.SendRecv(g.ranks[partner], tagRecDouble+k, payload.words()*8, payload,
			g.ranks[partner], tagRecDouble+k, streams[me])
		in := m.Payload.(blocks)
		for j, id := range in.ids {
			if id != theirs[j] {
				panic("collective: recursive doubling received unexpected segment")
			}
			copy(l.seg(buf, id), in.data[j])
		}
	}
	p.Obs().Collective("allgather-recdouble", t0, p.Clock())
}

// AllreduceSumInt64 returns the sum of x over the group using recursive
// doubling on 8-byte scalars (with a fold-in preliminary step for
// non-power-of-two sizes handled by a simple linear fallback).
func (g *Group) AllreduceSumInt64(p *mpi.Proc, x int64) int64 {
	n := g.Size()
	if n == 1 {
		return x
	}
	me := g.Pos(p.Rank())
	t0 := p.Clock()
	if n&(n-1) != 0 {
		// Linear fallback: gather to position 0, broadcast the sum.
		var sum int64
		if me == 0 {
			sum = x
			for i := 1; i < n; i++ {
				m := p.Recv(g.ranks[i], tagAllreduce)
				sum += m.Payload.(int64)
			}
			for i := 1; i < n; i++ {
				p.Send(g.ranks[i], tagAllreduce+1, 8, sum, 1)
			}
		} else {
			p.Send(g.ranks[0], tagAllreduce, 8, x, 1)
			m := p.Recv(g.ranks[0], tagAllreduce+1)
			sum = m.Payload.(int64)
		}
		p.Obs().Collective("allreduce", t0, p.Clock())
		return sum
	}
	steps := bits.TrailingZeros(uint(n))
	xor := g.xorStreams()
	sum := x
	for k := 0; k < steps; k++ {
		d := 1 << uint(k)
		partner := g.ranks[me^d]
		m := p.SendRecv(partner, tagAllreduce+2+k, 8, sum, partner, tagAllreduce+2+k, xor[k][me])
		sum += m.Payload.(int64)
	}
	p.Obs().Collective("allreduce", t0, p.Clock())
	return sum
}
