package collective

import "numabfs/internal/mpi"

const tagPipe = 0x9000

// LeaderAllgatherPipelined is a HierKNEM-style overlapped leader
// allgather (Ma et al., IPDPS'12, discussed in the paper's related
// work): while the leaders' ring moves node slice k+1 over the network,
// the *children* pull the already-delivered slice k out of the leader's
// mapped buffer themselves (kernel-assisted copies that do not occupy
// the leader), overlapping intra- and inter-node work.
//
// The paper's argument — "if the intra-node communication cost is even
// higher than that of inter-node, overlapping will not help" (Section V)
// — is directly measurable against LeaderAllgather and the shared
// variants: the pipelined total approaches max(inter, pull) + one chunk
// of fill, which is still bounded below by the per-child copy time that
// sharing eliminates outright.
//
// buf is each rank's private full-size buffer with its own segment in
// place (like LeaderAllgather); on return every rank's buf holds all
// segments.
func (nc *NodeComm) LeaderAllgatherPipelined(p *mpi.Proc, buf []uint64, l Layout) StepTimes {
	var st StepTimes
	node := nc.Nodes[p.Node()]
	nl := nc.nodeLayout(l)
	cfg := p.World().Config()
	total := l.TotalWords()

	// The leader works in a node-shared staging buffer so the children
	// can pull completed chunks without involving it (the kernel-assist).
	stage := p.SharedWords("hierknem-stage", total)

	// Step 1 (small, not overlapped): children hand their segments to
	// the leader, which stages them.
	t0 := p.Clock()
	me := nc.World.Pos(p.Rank())
	mine := nc.members[p.Node()]
	if nc.IsLeader(p) {
		copy(l.seg(stage, me), l.seg(buf, me))
		p.Compute(float64(l.Counts[me]*8) / cfg.ShmCopyBW)
		for _, child := range mine[1:] {
			m := p.Recv(child, tagPipe-1)
			copy(l.seg(stage, nc.World.Pos(child)), m.Payload.([]uint64))
		}
	} else {
		seg := l.seg(buf, me)
		p.Send(nc.leaderOf[p.Node()], tagPipe-1, int64(len(seg))*8, seg, len(mine)-1)
	}
	st.GatherNs = p.Clock() - t0

	// Steps 2+3, pipelined at the ring's natural granularity: each time
	// the leader's ring step delivers another node's slice into the
	// staging buffer, the children pull it into their private buffers on
	// their own clocks while the leaders run the next step. (Chunking
	// finer than a ring step would only serialize the ring's hops.)
	nNodes := nc.Leaders.Size()
	notify := func(c int) {
		t0 = p.Clock()
		for _, child := range mine[1:] {
			p.Send(child, tagPipe+c, 0, nil, len(mine)-1)
		}
		st.BcastNs += p.Clock() - t0
	}
	pull := func(c int) {
		t0 = p.Clock()
		p.Recv(nc.leaderOf[p.Node()], tagPipe+c)
		slice := (nc.nodePos[p.Node()] - c + nNodes) % nNodes
		lo, hi := nl.Displs[slice], nl.Displs[slice]+nl.Counts[slice]
		copy(buf[lo:hi], stage[lo:hi])
		// The node's children pull concurrently, sharing the memory
		// system — the same contention the notify stream hint carries.
		p.Compute(float64((hi-lo)*8) * float64(len(mine)-1) / cfg.ShmCopyBW)
		st.BcastNs += p.Clock() - t0
	}
	if nc.IsLeader(p) {
		// The leader's own slice is available immediately.
		notify(0)
		meL := nc.Leaders.Pos(p.Rank())
		n := nNodes
		if n > 1 {
			next := nc.Leaders.Ranks()[(meL+1)%n]
			prev := nc.Leaders.Ranks()[(meL-1+n)%n]
			for s := 0; s < n-1; s++ {
				sendID := (meL - s + n) % n
				recvID := (meL - s - 1 + n) % n
				seg := nl.seg(stage, sendID)
				t0 = p.Clock()
				m := p.SendRecv(next, tagPipe+1000+s, int64(len(seg))*8, seg,
					prev, tagPipe+1000+s, 2)
				copy(nl.seg(stage, recvID), m.Payload.([]uint64))
				st.InterNs += p.Clock() - t0
				notify(s + 1)
			}
		}
	} else {
		for c := 0; c < nNodes; c++ {
			pull(c)
		}
	}
	// The leader's result lives in the staging buffer; materialize it in
	// its private view too (a no-cost aliasing in a real mapping).
	if nc.IsLeader(p) {
		copy(buf, stage[:total])
	}
	node.barrierVia(p)
	return st
}
