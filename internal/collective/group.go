// Package collective implements the MPI collective algorithms the paper
// uses, measures and optimizes, all built on point-to-point rendezvous
// transfers so their cost emerges from the message pattern:
//
//   - ring and recursive-doubling allgather with the Thakur–Gropp size
//     switch (the "default Open MPI" baseline of Fig. 6);
//   - binomial-tree gather and broadcast;
//   - leader-based allgather (Mamidala et al.) — gather to a node leader,
//     allgather between leaders, broadcast to children (Fig. 5a);
//   - the paper's shared-memory allgather — sharing in_queue removes the
//     broadcast step, sharing out_queue removes the gather step (Fig. 5b);
//   - the paper's parallelized allgather — per-socket subgroups allgather
//     slices concurrently so all NIC streams are busy (Fig. 7, Eq. 2);
//   - pairwise-exchange alltoallv for the top-down phase, and a scalar
//     allreduce for frontier counting and termination.
//
// All collectives are SPMD: every member of the group calls the same
// function with its own mpi.Proc.
package collective

import (
	"fmt"
	"math/bits"
	"sync"

	"numabfs/internal/mpi"
	"numabfs/internal/wire"
)

// Group is an ordered set of ranks that communicate collectively.
type Group struct {
	w       *mpi.World
	ranks   []int
	pos     map[int]int // rank -> position
	node    []int       // position -> node
	maxNode int

	// Cached per-topology stream tables. The ring and the
	// recursive-doubling exchanges use the same send topology in every
	// call, but the inner loops were recomputing it — two map
	// allocations per step per rank. The tables are built once, under
	// sync.Once because group members run on concurrent goroutines.
	ringOnce sync.Once
	ringStr  []int
	xorOnce  sync.Once
	xorStr   [][]int
}

// NewGroup builds a group over the given ranks (in order).
func NewGroup(w *mpi.World, ranks []int) *Group {
	g := &Group{
		w:     w,
		ranks: append([]int(nil), ranks...),
		pos:   make(map[int]int, len(ranks)),
		node:  make([]int, len(ranks)),
	}
	for i, r := range ranks {
		if _, dup := g.pos[r]; dup {
			panic(fmt.Sprintf("collective: rank %d appears twice in group", r))
		}
		g.pos[r] = i
		g.node[i] = w.Proc(r).Node()
		if g.node[i] > g.maxNode {
			g.maxNode = g.node[i]
		}
	}
	return g
}

// WorldGroup returns the group of all ranks in w.
func WorldGroup(w *mpi.World) *Group {
	ranks := make([]int, w.NumProcs())
	for i := range ranks {
		ranks[i] = i
	}
	return NewGroup(w, ranks)
}

// Size returns the number of members.
func (g *Group) Size() int { return len(g.ranks) }

// Ranks returns the member ranks in group order.
func (g *Group) Ranks() []int { return g.ranks }

// Pos returns the position of rank r in the group; it panics if r is not
// a member (calling a collective from a non-member is a program bug).
func (g *Group) Pos(r int) int {
	p, ok := g.pos[r]
	if !ok {
		panic(fmt.Sprintf("collective: rank %d is not in group", r))
	}
	return p
}

// stepStreams computes, for one communication step in which member
// position i sends to member position sendTo[i] (-1 when idle), the
// number of concurrent streams each sender's node drives on the contended
// resource: its NIC for inter-node sends, its memory system for
// intra-node sends. Receivers congest their node's NIC too, so inter-node
// stream counts include inbound transfers. The result is indexed by
// member position; idle members get 0.
func (g *Group) stepStreams(sendTo []int) []int {
	interByNode := make([]int, g.maxNode+1)
	intraByNode := make([]int, g.maxNode+1)
	for i, dst := range sendTo {
		if dst < 0 {
			continue
		}
		if g.node[i] == g.node[dst] {
			intraByNode[g.node[i]]++
		} else {
			interByNode[g.node[i]]++
			interByNode[g.node[dst]]++
		}
	}
	out := make([]int, len(sendTo))
	for i, dst := range sendTo {
		if dst < 0 {
			continue
		}
		if g.node[i] == g.node[dst] {
			out[i] = intraByNode[g.node[i]]
		} else {
			s := interByNode[g.node[i]]
			if d := interByNode[g.node[dst]]; d > s {
				s = d
			}
			out[i] = s
		}
	}
	return out
}

// ringStreams returns the per-position stream counts of the ring
// topology (position i sends to i+1), identical in every ring step.
func (g *Group) ringStreams() []int {
	g.ringOnce.Do(func() {
		sendTo := make([]int, len(g.ranks))
		for i := range sendTo {
			sendTo[i] = (i + 1) % len(sendTo)
		}
		g.ringStr = g.stepStreams(sendTo)
	})
	return g.ringStr
}

// xorStreams returns, for each recursive-doubling step k, the
// per-position stream counts of the i <-> i XOR 2^k exchange. The
// group size must be a power of two.
func (g *Group) xorStreams() [][]int {
	g.xorOnce.Do(func() {
		n := len(g.ranks)
		steps := bits.TrailingZeros(uint(n))
		g.xorStr = make([][]int, steps)
		sendTo := make([]int, n)
		for k := 0; k < steps; k++ {
			d := 1 << uint(k)
			for i := range sendTo {
				sendTo[i] = i ^ d
			}
			g.xorStr[k] = g.stepStreams(sendTo)
		}
	})
	return g.xorStr
}

// blocks is the payload of allgather-family messages: segment ids and
// their word data. The receiver copies each segment into place.
type blocks struct {
	ids  []int
	data [][]uint64
}

// ringSeg is the payload of one ring-allgather step: the single
// segment being forwarded. (The ring previously boxed a blocks value
// with one-element id and data slices — three heap allocations per
// step per rank in the hottest collective.)
type ringSeg struct {
	id   int
	data []uint64
}

// encSeg is ringSeg's compressed counterpart: one wire-encoded segment
// (or vertex list) with its id.
type encSeg struct {
	id int
	pl wire.Payload
}

func (b blocks) words() int64 {
	var w int64
	for _, d := range b.data {
		w += int64(len(d))
	}
	return w
}

// Layout describes an allgatherv buffer: counts[i] words contributed by
// member i, placed at displs[i] words in the destination buffer.
type Layout struct {
	Counts []int64
	Displs []int64
}

// EvenLayout splits `words` words over n members as evenly as possible
// (first words%n members get one extra word).
func EvenLayout(words int64, n int) Layout {
	counts := make([]int64, n)
	displs := make([]int64, n)
	base := words / int64(n)
	rem := words % int64(n)
	var off int64
	for i := 0; i < n; i++ {
		c := base
		if int64(i) < rem {
			c++
		}
		counts[i] = c
		displs[i] = off
		off += c
	}
	return Layout{Counts: counts, Displs: displs}
}

// SegLayout builds a layout from explicit per-member word offsets:
// member i owns [offs[i], offs[i+1]).
func SegLayout(offs []int64) Layout {
	n := len(offs) - 1
	counts := make([]int64, n)
	displs := make([]int64, n)
	for i := 0; i < n; i++ {
		displs[i] = offs[i]
		counts[i] = offs[i+1] - offs[i]
	}
	return Layout{Counts: counts, Displs: displs}
}

// TotalWords returns the total words the layout describes.
func (l Layout) TotalWords() int64 {
	var t int64
	for _, c := range l.Counts {
		t += c
	}
	return t
}

// seg returns member i's segment of buf.
func (l Layout) seg(buf []uint64, i int) []uint64 {
	return buf[l.Displs[i] : l.Displs[i]+l.Counts[i]]
}
