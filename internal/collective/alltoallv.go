package collective

import "numabfs/internal/mpi"

// AlltoallvInt64 exchanges variable-length int64 vectors between all
// members using the pairwise-exchange algorithm: n-1 steps, at step s
// member i sends to (i+s) mod n and receives from (i-s) mod n. The
// top-down BFS phase uses this to route discovered (vertex, parent)
// pairs to their owners, exactly as the Graph500 mpi_simple code does.
//
// send[j] is the vector destined for group position j (send[me] is
// delivered locally, without a message). The result is indexed by source
// group position.
func (g *Group) AlltoallvInt64(p *mpi.Proc, send [][]int64) [][]int64 {
	n := g.Size()
	me := g.Pos(p.Rank())
	recv := make([][]int64, n)
	recv[me] = send[me]
	if n == 1 {
		return recv
	}
	t0 := p.Clock()
	for s := 1; s < n; s++ {
		dst := (me + s) % n
		src := (me - s + n) % n
		payload := send[dst]
		// BFS top-down exchanges are sparse: in most steps only the few
		// ranks owning frontier hubs carry data, so a rank's transfer
		// contends with its own outbound and inbound streams (2), not
		// with every co-located rank's empty synchronization message.
		m := p.SendRecv(g.ranks[dst], tagAlltoall+s, int64(len(payload))*8, payload,
			g.ranks[src], tagAlltoall+s, 2)
		if m.Payload != nil {
			recv[src] = m.Payload.([]int64)
		}
	}
	p.Obs().Collective("alltoallv", t0, p.Clock())
	return recv
}
