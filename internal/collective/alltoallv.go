package collective

import (
	"numabfs/internal/mpi"
	"numabfs/internal/wire"
)

// AlltoallvInt64 exchanges variable-length int64 vectors between all
// members using the pairwise-exchange algorithm: n-1 steps, at step s
// member i sends to (i+s) mod n and receives from (i-s) mod n. The
// top-down BFS phase uses this to route discovered (vertex, parent)
// pairs to their owners, exactly as the Graph500 mpi_simple code does.
//
// send[j] is the vector destined for group position j (send[me] is
// delivered locally, without a message). The result is indexed by source
// group position.
func (g *Group) AlltoallvInt64(p *mpi.Proc, send [][]int64) [][]int64 {
	n := g.Size()
	me := g.Pos(p.Rank())
	recv := make([][]int64, n)
	recv[me] = send[me]
	if n == 1 {
		return recv
	}
	t0 := p.Clock()
	for s := 1; s < n; s++ {
		dst := (me + s) % n
		src := (me - s + n) % n
		payload := send[dst]
		// BFS top-down exchanges are sparse: in most steps only the few
		// ranks owning frontier hubs carry data, so a rank's transfer
		// contends with its own outbound and inbound streams (2), not
		// with every co-located rank's empty synchronization message.
		m := p.SendRecv(g.ranks[dst], tagAlltoall+s, int64(len(payload))*8, payload,
			g.ranks[src], tagAlltoall+s, 2)
		if m.Payload != nil {
			recv[src] = m.Payload.([]int64)
		}
	}
	p.Obs().Collective("alltoallv", t0, p.Clock())
	return recv
}

// AlltoallvInt64Compressed is AlltoallvInt64 with every vector
// travelling in the codec's varint-delta list format: the same pairwise
// exchange, but each step encodes the outgoing vector into a per-step
// scratch slot (EncodeListSlot — a payload in flight is never
// overwritten by a later encode) and decodes the incoming payload on
// arrival. out, when non-nil, is reused (out[i] is overwritten via
// out[i][:0]); pass nil on first use. The member's own vector is
// referenced, not copied, as in the uncompressed variant.
func (g *Group) AlltoallvInt64Compressed(p *mpi.Proc, send [][]int64, out [][]int64, c *wire.Codec) [][]int64 {
	n := g.Size()
	me := g.Pos(p.Rank())
	if out == nil {
		out = make([][]int64, n)
	}
	out[me] = send[me]
	if n == 1 {
		return out
	}
	t0 := p.Clock()
	for s := 1; s < n; s++ {
		dst := (me + s) % n
		src := (me - s + n) % n
		pl, ens := c.EncodeListSlot(send[dst], s)
		p.Compute(ens)
		// Same stream count as the raw pairwise exchange: sparse BFS fold
		// steps contend with the rank's own two streams, not with every
		// co-located rank.
		m := p.SendRecvWire(g.ranks[dst], tagAlltoallC+s, pl.WireBytes, pl.RawBytes, encSeg{id: me, pl: pl},
			g.ranks[src], tagAlltoallC+s, 2)
		in := m.Payload.(encSeg)
		if in.id != src {
			panic("collective: compressed alltoallv received unexpected vector")
		}
		var dns float64
		out[src], dns = c.DecodeList(in.pl, out[src][:0])
		p.Compute(dns)
	}
	p.Obs().Collective("alltoallv-comp", t0, p.Clock())
	return out
}
