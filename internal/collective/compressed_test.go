package collective

import (
	"testing"

	"numabfs/internal/machine"
	"numabfs/internal/mpi"
	"numabfs/internal/omp"
	"numabfs/internal/wire"
)

// newTestCodec builds a codec with a plausible single-socket team; the
// compressed collectives only need it for cost charging.
func newTestCodec() *wire.Codec {
	return &wire.Codec{
		Team: omp.Team{Cfg: machine.TableI(), Threads: 8, SocketsUsed: 1, BWShare: 1},
		Loc:  machine.Local,
	}
}

// variedWord gives owner pos a density class by position — empty,
// single-bit sparse, dense random-ish, or clustered runs — so one
// allgather exercises every wire format the selector can pick.
func variedWord(pos, i int) uint64 {
	switch pos % 4 {
	case 0:
		return 0
	case 1:
		if i == 0 {
			return 1 << uint(pos%64)
		}
		return 0
	case 2:
		return uint64(pos)<<32 | uint64(i) | 1
	default:
		if i%8 < 4 {
			return ^uint64(0)
		}
		return 0
	}
}

func fillVaried(buf []uint64, l Layout, pos int) {
	seg := l.seg(buf, pos)
	for i := range seg {
		seg[i] = variedWord(pos, i)
	}
}

func checkVaried(t *testing.T, who string, rank int, buf []uint64, l Layout) {
	t.Helper()
	for pos := range l.Counts {
		seg := l.seg(buf, pos)
		for i := range seg {
			if want := variedWord(pos, i); seg[i] != want {
				t.Fatalf("%s: rank %d segment %d word %d = %#x, want %#x",
					who, rank, pos, i, seg[i], want)
				return
			}
		}
	}
}

// wireStats aggregates the per-rank codec stats of one run.
func wireStats(codecs []*wire.Codec) wire.Stats {
	var st wire.Stats
	for _, c := range codecs {
		if c != nil {
			st.Add(c.Stats())
		}
	}
	return st
}

func TestAllgatherRingCompressed(t *testing.T) {
	for _, geo := range []struct{ nodes, ppn int }{{2, 4}, {1, 1}, {3, 2}} {
		w := testWorld(t, geo.nodes, geo.ppn)
		g := WorldGroup(w)
		l := EvenLayout(257, g.Size())
		codecs := make([]*wire.Codec, g.Size())
		w.Run(func(p *mpi.Proc) {
			buf := make([]uint64, 257)
			fillVaried(buf, l, g.Pos(p.Rank()))
			c := newTestCodec()
			codecs[g.Pos(p.Rank())] = c
			g.AllgatherRingCompressed(p, buf, l, c)
			checkVaried(t, "ring-comp", p.Rank(), buf, l)
		})
		if g.Size() > 1 {
			st := wireStats(codecs)
			var formats int
			for _, n := range st.Segments {
				if n > 0 {
					formats++
				}
			}
			if formats < 2 {
				t.Errorf("%d ranks: varied densities used only %d wire format(s): %v",
					g.Size(), formats, st.Segments)
			}
			if st.WireBytes >= st.RawBytes {
				t.Errorf("%d ranks: wire %d >= raw %d on compressible data",
					g.Size(), st.WireBytes, st.RawBytes)
			}
		}
	}
}

func TestParallelAllgatherCompressed(t *testing.T) {
	w := testWorld(t, 4, 4)
	nc := NewNodeComm(w)
	const words = 640
	l := EvenLayout(words, w.NumProcs())
	w.Run(func(p *mpi.Proc) {
		shared := p.SharedWords("inq", words)
		seg := make([]uint64, l.Counts[p.Rank()])
		for i := range seg {
			seg[i] = variedWord(p.Rank(), i)
		}
		nc.ParallelAllgatherCompressed(p, shared, seg, l, newTestCodec())
		checkVaried(t, "parallel-comp", p.Rank(), shared, l)
	})
}

func TestParallelAllgatherInPlaceCompressed(t *testing.T) {
	w := testWorld(t, 4, 4)
	nc := NewNodeComm(w)
	const words = 644
	l := EvenLayout(words, w.NumProcs())
	w.Run(func(p *mpi.Proc) {
		shared := p.SharedWords("inq", words)
		fillVaried(shared, l, p.Rank())
		p.NodeBarrier()
		nc.ParallelAllgatherInPlaceCompressed(p, shared, l, newTestCodec())
		checkVaried(t, "parallel-inplace-comp", p.Rank(), shared, l)
	})
}

func TestLeaderAllgatherCompressed(t *testing.T) {
	w := testWorld(t, 4, 4)
	nc := NewNodeComm(w)
	const words = 640
	l := EvenLayout(words, w.NumProcs())
	w.Run(func(p *mpi.Proc) {
		buf := make([]uint64, words)
		fillVaried(buf, l, p.Rank())
		st := nc.LeaderAllgatherCompressed(p, buf, l, newTestCodec())
		checkVaried(t, "leader-comp", p.Rank(), buf, l)
		if p.LocalRank() != 0 && st.InterNs != 0 {
			t.Errorf("child rank %d charged inter time %g", p.Rank(), st.InterNs)
		}
	})
}

func TestAllgathervInt64Compressed(t *testing.T) {
	w := testWorld(t, 2, 3)
	g := WorldGroup(w)
	n := g.Size()
	w.Run(func(p *mpi.Proc) {
		me := g.Pos(p.Rank())
		mine := make([]int64, me*7) // varied lengths, incl. empty for rank 0
		for i := range mine {
			mine[i] = int64(me*1000 + i*3)
		}
		var out [][]int64
		// Two rounds: the second reuses out, the engine's steady state.
		for round := 0; round < 2; round++ {
			out = g.AllgathervInt64Compressed(p, mine, out, newTestCodec())
			for src := 0; src < n; src++ {
				if len(out[src]) != src*7 {
					t.Errorf("round %d rank %d: len(out[%d]) = %d, want %d",
						round, me, src, len(out[src]), src*7)
					continue
				}
				for k, v := range out[src] {
					if v != int64(src*1000+k*3) {
						t.Errorf("round %d rank %d: out[%d][%d] = %d", round, me, src, k, v)
						break
					}
				}
			}
		}
	})
}

// expectedWire computes the analytic wire volume of a compressed ring
// over a group of n members under layout l: each owner's segment
// encodes to the Choose-predicted size and is forwarded n-1 times.
func expectedWire(l Layout, owners []int, hops int) int64 {
	var total int64
	for _, pos := range owners {
		seg := make([]uint64, l.Counts[pos])
		for i := range seg {
			seg[i] = variedWord(pos, i)
		}
		_, size := wire.Choose(wire.Analyze(seg))
		total += int64(size) * int64(hops)
	}
	return total
}

func TestEq1RingVolumeCompressed(t *testing.T) {
	// Under compression the wire bytes shrink, but the raw (logical)
	// volume the allgather moves still satisfies Eq. (1): m*(np-1).
	w := testWorld(t, 2, 4)
	g := WorldGroup(w)
	const words = 800
	l := EvenLayout(words, g.Size())
	w.Run(func(p *mpi.Proc) {
		buf := make([]uint64, words)
		fillVaried(buf, l, g.Pos(p.Rank()))
		g.AllgatherRingCompressed(p, buf, l, newTestCodec())
	})
	vol := w.Net().Volume()
	m := int64(words * 8)
	wantRaw := m * int64(g.Size()-1)
	if got := vol.RawIntraBytes + vol.RawInterBytes; got != wantRaw {
		t.Fatalf("compressed ring raw volume = %d, want m*(np-1) = %d", got, wantRaw)
	}
	owners := make([]int, g.Size())
	for i := range owners {
		owners[i] = i
	}
	wantWire := expectedWire(l, owners, g.Size()-1)
	if got := vol.IntraBytes + vol.InterBytes; got != wantWire {
		t.Fatalf("compressed ring wire volume = %d, analytic codec size = %d", got, wantWire)
	}
	if wantWire >= wantRaw {
		t.Fatalf("wire %d did not shrink below raw %d on varied-density data", wantWire, wantRaw)
	}
}

func TestEq2ParallelVolumeCompressed(t *testing.T) {
	// Eq. (2) on the raw ledger: the parallelized allgather still moves
	// m*(np/ppn - 1) logical bytes inter-node and nothing intra-node;
	// the wire ledger carries the codec's encoded sizes.
	const nodes, ppn, words = 4, 4, 960
	w := testWorld(t, nodes, ppn)
	nc := NewNodeComm(w)
	l := EvenLayout(words, w.NumProcs())
	w.Run(func(p *mpi.Proc) {
		shared := p.SharedWords("inq", words)
		seg := make([]uint64, l.Counts[p.Rank()])
		for i := range seg {
			seg[i] = variedWord(p.Rank(), i)
		}
		nc.ParallelAllgatherCompressed(p, shared, seg, l, newTestCodec())
	})
	vol := w.Net().Volume()
	m := int64(words * 8)
	wantRaw := m * int64(nodes-1)
	if vol.RawInterBytes != wantRaw {
		t.Fatalf("compressed parallel raw inter volume = %d, want m*(np/ppn-1) = %d",
			vol.RawInterBytes, wantRaw)
	}
	if vol.RawIntraBytes != 0 || vol.IntraBytes != 0 {
		t.Fatalf("compressed parallel moved intra-node MPI bytes (raw %d, wire %d), want 0",
			vol.RawIntraBytes, vol.IntraBytes)
	}
	owners := make([]int, w.NumProcs())
	for i := range owners {
		owners[i] = i
	}
	wantWire := expectedWire(l, owners, nodes-1)
	if vol.InterBytes != wantWire {
		t.Fatalf("compressed parallel wire volume = %d, analytic codec size = %d",
			vol.InterBytes, wantWire)
	}
	if vol.InterBytes >= wantRaw {
		t.Fatalf("wire %d did not shrink below raw %d", vol.InterBytes, wantRaw)
	}
}
