package collective

// Allocation parity for the reliable transport on the collective hot
// loops: compiling the transport in must not add a single allocation to
// the no-plan path, a tuning-only plan must stay on the identity fast
// path, and even an active loss plan charges its protocol analytically —
// zero extra allocations per collective.

import (
	"testing"

	"numabfs/internal/fault"
	"numabfs/internal/mpi"
)

// allgatherAllocs measures the allocations of one ring allgather across
// the whole world, with world construction and plan injection excluded
// from the measured region. AllocsPerRun pins GOMAXPROCS to 1, so the
// count is stable run to run.
func allgatherAllocs(t *testing.T, plan *fault.Plan) float64 {
	t.Helper()
	const words = 256
	w := testWorld(t, 2, 4)
	if plan != nil {
		if err := w.InjectFaults(*plan); err != nil {
			t.Fatal(err)
		}
	}
	g := WorldGroup(w)
	l := EvenLayout(words, g.Size())
	bufs := make([][]uint64, w.NumProcs())
	for r := range bufs {
		bufs[r] = make([]uint64, words)
	}
	return testing.AllocsPerRun(5, func() {
		w.Run(func(p *mpi.Proc) {
			buf := bufs[p.Rank()]
			fillOwn(buf, l, g.Pos(p.Rank()))
			g.AllgatherRing(p, buf, l)
		})
	})
}

func TestTransportAllocParityOnCollectives(t *testing.T) {
	base := allgatherAllocs(t, nil)

	tuned := fault.Plan{RetransmitTimeoutNs: 5e3, RetransmitBackoff: 1.5, RetryBudget: 4}
	if got := allgatherAllocs(t, &tuned); got != base {
		t.Errorf("tuning-only plan changed allocations: %g vs %g per run", got, base)
	}

	lossy := fault.Lossy(3, 0.05)
	if got := allgatherAllocs(t, &lossy); got != base {
		t.Errorf("loss plan changed allocations: %g vs %g per run (protocol must charge analytically)", got, base)
	}
}
