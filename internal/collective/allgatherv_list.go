package collective

import "numabfs/internal/mpi"

const tagGatherList = 0x8000

// AllgathervInt64 gathers every member's variable-length int64 vector to
// all members (a ring, like AllgatherRing, but over lists whose lengths
// only their owners know — the "expand" phase of the 2-D BFS gathers
// frontier vertex lists along a processor column this way). The result
// is indexed by group position; the caller's own slice is referenced,
// not copied.
func (g *Group) AllgathervInt64(p *mpi.Proc, mine []int64) [][]int64 {
	n := g.Size()
	me := g.Pos(p.Rank())
	out := make([][]int64, n)
	out[me] = mine
	if n == 1 {
		return out
	}
	next := g.ranks[(me+1)%n]
	prev := g.ranks[(me-1+n)%n]
	sendTo := make([]int, n)
	for i := range sendTo {
		sendTo[i] = (i + 1) % n
	}
	streams := g.stepStreams(sendTo)

	t0 := p.Clock()
	for s := 0; s < n-1; s++ {
		sendID := (me - s + n) % n
		recvID := (me - s - 1 + n) % n
		payload := out[sendID]
		m := p.SendRecv(next, tagGatherList+s, int64(len(payload))*8, payload,
			prev, tagGatherList+s, streams[me])
		if m.Payload == nil {
			out[recvID] = nil
			continue
		}
		out[recvID] = m.Payload.([]int64)
	}
	p.Obs().Collective("allgatherv-list", t0, p.Clock())
	return out
}
