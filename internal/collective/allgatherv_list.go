package collective

import (
	"numabfs/internal/mpi"
	"numabfs/internal/wire"
)

const tagGatherList = 0x8000

// AllgathervInt64 gathers every member's variable-length int64 vector to
// all members (a ring, like AllgatherRing, but over lists whose lengths
// only their owners know — the "expand" phase of the 2-D BFS gathers
// frontier vertex lists along a processor column this way). The result
// is indexed by group position; the caller's own slice is referenced,
// not copied.
func (g *Group) AllgathervInt64(p *mpi.Proc, mine []int64) [][]int64 {
	n := g.Size()
	me := g.Pos(p.Rank())
	out := make([][]int64, n)
	out[me] = mine
	if n == 1 {
		return out
	}
	next := g.ranks[(me+1)%n]
	prev := g.ranks[(me-1+n)%n]
	streams := g.ringStreams()[me]

	t0 := p.Clock()
	for s := 0; s < n-1; s++ {
		sendID := (me - s + n) % n
		recvID := (me - s - 1 + n) % n
		payload := out[sendID]
		m := p.SendRecv(next, tagGatherList+s, int64(len(payload))*8, payload,
			prev, tagGatherList+s, streams)
		if m.Payload == nil {
			out[recvID] = nil
			continue
		}
		out[recvID] = m.Payload.([]int64)
	}
	p.Obs().Collective("allgatherv-list", t0, p.Clock())
	return out
}

// AllgathervInt64Compressed is AllgathervInt64 with every list
// travelling in the codec's varint-delta format: each member encodes
// its own list once, receivers decode and forward the still-encoded
// payload. out, when non-nil, is reused (out[i] is overwritten via
// out[i][:0]); pass nil on first use. The member's own list is
// referenced, not copied, as in the uncompressed variant.
func (g *Group) AllgathervInt64Compressed(p *mpi.Proc, mine []int64, out [][]int64, c *wire.Codec) [][]int64 {
	n := g.Size()
	me := g.Pos(p.Rank())
	if out == nil {
		out = make([][]int64, n)
	}
	out[me] = mine
	if n == 1 {
		return out
	}
	next := g.ranks[(me+1)%n]
	prev := g.ranks[(me-1+n)%n]
	streams := g.ringStreams()[me]

	t0 := p.Clock()
	pl, ns := c.EncodeList(mine)
	p.Compute(ns)
	cur := encSeg{id: me, pl: pl}
	for s := 0; s < n-1; s++ {
		recvID := (me - s - 1 + n) % n
		m := p.SendRecvWire(next, tagListC+s, cur.pl.WireBytes, cur.pl.RawBytes, cur,
			prev, tagListC+s, streams)
		in := m.Payload.(encSeg)
		if in.id != recvID {
			panic("collective: compressed list ring received unexpected list")
		}
		var dns float64
		out[recvID], dns = c.DecodeList(in.pl, out[recvID][:0])
		p.Compute(dns)
		cur = in
	}
	p.Obs().Collective("allgatherv-list-comp", t0, p.Clock())
	return out
}
