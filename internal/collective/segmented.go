package collective

import (
	"fmt"

	"numabfs/internal/mpi"
	"numabfs/internal/obs"
	"numabfs/internal/wire"
)

// This file implements the segmented, pipelined variants of the
// parallelized allgather (Fig. 7) that the engine's sixth optimization
// level (OptOverlapAllgather) is built on: each member's segment is
// split into Q uniform chunks, the subgroup ring is driven through
// Isend/Irecv so exactly one chunk transfer per neighbor is in flight
// while the rank decodes and scans the chunk that just landed, and the
// caller's onChunk hook runs the moment a chunk's words are final —
// Buluç & Madduri's communication/computation overlap, expressed on the
// paper's NUMA-aware collective.

// Overlap is the caller-owned ledger a segmented allgather fills in: how
// much of the transfer time ran under the rank's own computation
// (hidden) versus stalled the rank in Wait (exposed), the chunk count
// actually used, and the virtual completion time of every received
// chunk. The ledger is reset at the start of each collective; its slices
// are reused across calls.
type Overlap struct {
	// HiddenNs is the part of the received transfers that completed (or
	// progressed) before the rank reached its Wait — communication the
	// pipeline hid behind decode and frontier scanning. ExposedNs is the
	// clock the rank actually spent stalled in the send/recv Waits;
	// transport retransmission delays under lossy links surface here.
	HiddenNs  float64
	ExposedNs float64
	// Segments is the chunk count per member segment actually used: the
	// requested count clamped to the smallest segment and the tag space.
	Segments int
	// SegEndNs records, in pipeline order, the virtual completion time of
	// every received chunk transfer.
	SegEndNs []float64

	// holdRaw/holdEnc are the ring pipeline's forwarding slots (chunk
	// received at flattened index k waits here until send k+Q). They
	// live on the caller-owned ledger so steady-state collectives — one
	// per bottom-up level of every root — reuse them instead of
	// allocating per call. Stale entries are never read: slot q is
	// always rewritten (step 0's receive) before its first forward.
	holdRaw [][]uint64
	holdEnc []wire.Payload
}

func (o *Overlap) reset() {
	o.HiddenNs, o.ExposedNs, o.Segments = 0, 0, 0
	o.SegEndNs = o.SegEndNs[:0]
}

// Efficiency returns the hidden share of all transfer time, in [0, 1]
// (0 when the collective moved nothing).
func (o *Overlap) Efficiency() float64 {
	t := o.HiddenNs + o.ExposedNs
	if t == 0 {
		return 0
	}
	return o.HiddenNs / t
}

// segChunk is one pipelined ring message: chunk q of origin segment id,
// travelling raw. Forwarded chunks alias the origin's buffer, which is
// stable for the whole collective.
type segChunk struct {
	id, q int
	data  []uint64
}

// encChunk is segChunk's compressed counterpart. The payload bytes live
// in the origin's per-slot codec scratch (wire.EncodeSlot), stable until
// the origin's next collective — forwarding never re-encodes.
type encChunk struct {
	id, q int
	pl    wire.Payload
}

// segChunkCount clamps the requested chunk count to what the layout and
// the tag space support: at least 1, at most the smallest non-empty
// segment (so no chunk is empty), at most 256 (the flattened step×chunk
// tags of a 16-node subgroup then stay inside the 0xB000 block).
func segChunkCount(l Layout, want int) int {
	q := int64(want)
	if q < 1 {
		q = 1
	}
	if q > 256 {
		q = 256
	}
	for _, c := range l.Counts {
		if c > 0 && c < q {
			q = c
		}
	}
	return int(q)
}

// chunkSpan returns the word range [w0, w1) of chunk q (of Q) of member
// id's segment. Both sides of every transfer derive the same bounds from
// the layout, so no chunk geometry ever crosses the wire.
func chunkSpan(l Layout, id, q, Q int) (int64, int64) {
	d, c := l.Displs[id], l.Counts[id]
	return d + c*int64(q)/int64(Q), d + c*int64(q+1)/int64(Q)
}

// allgatherRingSegmented is the pipelined ring allgather underneath the
// segmented parallel variants. The (n-1) ring steps × Q chunks flatten
// to K exchanges; the loop keeps exactly one send and one receive in
// flight: wait on pair k, post pair k+1, then decode and scan chunk k
// while pair k+1's transfer runs. Send k+1 always forwards data whose
// receive completed at k+1-Q ≤ k, so the pipeline can never deadlock on
// the capacity-1 mailboxes, and the per-chunk Wait bracketing splits
// every transfer into hidden and exposed time via Request.BeginNs/EndNs.
// A nil codec runs the raw path (forwarding received aliases, like the
// blocking ring); onChunk, when non-nil, is called with every finalized
// word range — own chunks first, right after the pipeline starts, so
// their scan overlaps the first transfer — and returns compute ns to
// charge.
func (g *Group) allgatherRingSegmented(p *mpi.Proc, buf []uint64, l Layout, streams, chunks int, c *wire.Codec, onChunk func(w0, w1 int64) float64, ov *Overlap) {
	Q := segChunkCount(l, chunks)
	ov.Segments = Q
	n := g.Size()
	me := g.Pos(p.Rank())
	if n == 1 {
		if onChunk != nil {
			for q := 0; q < Q; q++ {
				w0, w1 := chunkSpan(l, me, q, Q)
				p.Compute(onChunk(w0, w1))
			}
		}
		return
	}
	next := g.ranks[(me+1)%n]
	prev := g.ranks[(me-1+n)%n]
	K := (n - 1) * Q

	// hold[q] carries the payload received at flattened index k (k%Q == q)
	// until it is forwarded by send k+Q; the raw path holds []uint64
	// aliases, the compressed path wire.Payloads. The slots are pooled
	// on the ledger across collectives.
	if cap(ov.holdRaw) < Q {
		ov.holdRaw = make([][]uint64, Q)
	}
	if cap(ov.holdEnc) < Q {
		ov.holdEnc = make([]wire.Payload, Q)
	}
	holdRaw := ov.holdRaw[:Q]
	holdEnc := ov.holdEnc[:Q]
	var msgs [2]mpi.Msg

	postPair := func(k int) (*mpi.Request, *mpi.Request) {
		s, q := k/Q, k%Q
		sendID := (me - s + n) % n
		tag := tagSeg + k
		var sr *mpi.Request
		if c != nil {
			var pl wire.Payload
			if s == 0 {
				w0, w1 := chunkSpan(l, sendID, q, Q)
				var ns float64
				pl, ns = c.EncodeSlot(buf[w0:w1], q)
				p.Compute(ns)
			} else {
				pl = holdEnc[q]
			}
			sr = p.IsendWire(next, tag, pl.WireBytes, pl.RawBytes,
				encChunk{id: sendID, q: q, pl: pl}, streams)
		} else {
			var data []uint64
			if s == 0 {
				w0, w1 := chunkSpan(l, sendID, q, Q)
				data = buf[w0:w1]
			} else {
				data = holdRaw[q]
			}
			sr = p.Isend(next, tag, int64(len(data))*8,
				segChunk{id: sendID, q: q, data: data}, streams)
		}
		return sr, p.Irecv(prev, tag, &msgs[k%2])
	}

	sr, rr := postPair(0)
	if onChunk != nil {
		// Scan the rank's own segment while chunk 0 is in flight.
		for q := 0; q < Q; q++ {
			w0, w1 := chunkSpan(l, me, q, Q)
			p.Compute(onChunk(w0, w1))
		}
	}

	for k := 0; k < K; k++ {
		s, q := k/Q, k%Q
		recvID := (me - s - 1 + n) % n

		// Receive before the send wait: the send's ack only arrives once
		// the successor executes its own receive, so waiting on the send
		// first would deadlock the whole ring in send waits.
		waitStart := p.Clock()
		rr.Wait()
		sr.Wait()
		if d := p.Clock() - waitStart; d > 0 {
			ov.ExposedNs += d
			p.Obs().GaugeAdd(obs.GaugeExposedWait, waitStart, d)
		}
		if h := minf(waitStart, rr.EndNs) - rr.BeginNs; h > 0 {
			ov.HiddenNs += h
		}
		ov.SegEndNs = append(ov.SegEndNs, rr.EndNs)

		// Extract and stash the payload before posting pair k+1 (its send
		// may read hold slot q for a deeper forward in a later iteration;
		// the in-flight message keeps its own copy of the value).
		var id, cq int
		var inRaw []uint64
		var inEnc wire.Payload
		if c != nil {
			in := msgs[k%2].Payload.(encChunk)
			id, cq, inEnc = in.id, in.q, in.pl
			holdEnc[q] = inEnc
		} else {
			in := msgs[k%2].Payload.(segChunk)
			id, cq, inRaw = in.id, in.q, in.data
			holdRaw[q] = inRaw
		}
		if id != recvID || cq != q {
			panic(fmt.Sprintf("collective: segmented ring expected chunk %d/%d, got %d/%d",
				recvID, q, id, cq))
		}

		if k+1 < K {
			sr, rr = postPair(k + 1)
		}

		// Chunk k is final: land it and scan it while pair k+1 flies.
		w0, w1 := chunkSpan(l, id, cq, Q)
		if c != nil {
			p.Compute(c.Decode(buf[w0:w1], inEnc))
		} else {
			copy(buf[w0:w1], inRaw)
		}
		if onChunk != nil {
			p.Compute(onChunk(w0, w1))
		}
	}
}

// ParallelAllgatherSegmented is ParallelAllgather (Fig. 7) driven
// through the nonblocking chunk pipeline: same staging copy, same
// per-socket subgroup rings and node barrier, but each ring overlaps its
// transfers with the caller's per-chunk scan and reports the hidden and
// exposed time in ov.
func (nc *NodeComm) ParallelAllgatherSegmented(p *mpi.Proc, shared []uint64, seg []uint64, l Layout, chunks int, onChunk func(w0, w1 int64) float64, ov *Overlap) StepTimes {
	return nc.parallelSegmented(p, shared, seg, l, chunks, nil, onChunk, ov, "par-allgather-seg")
}

// ParallelAllgatherSegmentedC is ParallelAllgatherCompressed driven
// through the nonblocking chunk pipeline — the sixth optimization
// level's in_queue exchange. Chunks travel in the codec's wire formats
// (encoded once at the origin into per-chunk scratch slots, forwarded
// still-encoded), and decode + onChunk of each landed chunk run under
// the next chunk's transfer.
func (nc *NodeComm) ParallelAllgatherSegmentedC(p *mpi.Proc, shared []uint64, seg []uint64, l Layout, chunks int, c *wire.Codec, onChunk func(w0, w1 int64) float64, ov *Overlap) StepTimes {
	return nc.parallelSegmented(p, shared, seg, l, chunks, c, onChunk, ov, "par-allgather-seg-comp")
}

func (nc *NodeComm) parallelSegmented(p *mpi.Proc, shared []uint64, seg []uint64, l Layout, chunks int, c *wire.Codec, onChunk func(w0, w1 int64) float64, ov *Overlap, label string) StepTimes {
	var st StepTimes
	me := nc.World.Pos(p.Rank())
	node := nc.Nodes[p.Node()]
	tc := p.Clock()
	ov.reset()

	t0 := p.Clock()
	copy(l.seg(shared, me), seg)
	p.Compute(float64(l.Counts[me]*8) / p.World().Config().ShmCopyBW)

	lo, hi := nc.subRange(p)
	for j := lo; j <= hi; j++ {
		sub := nc.Subs[j]
		sub.allgatherRingSegmented(p, shared, nc.subLayout(sub, l, j), nc.nodeStreams(p), chunks, c, onChunk, ov)
	}
	st.InterNs = p.Clock() - t0

	t0 = p.Clock()
	node.barrierVia(p)
	st.InterNs += p.Clock() - t0
	p.Obs().Collective(label, tc, p.Clock())
	return st
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
