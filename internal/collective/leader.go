package collective

import (
	"numabfs/internal/mpi"
	"numabfs/internal/wire"
)

// NodeComm holds the group structure the paper's node-aware allgather
// variants need: per-node groups (leader = local rank 0), the leader
// group, and per-local-index subgroups for the parallelized allgather.
type NodeComm struct {
	World   *Group   // all ranks
	Nodes   []*Group // group of each node's ranks, leader first
	Leaders *Group   // one leader per node
	Subs    []*Group // subgroup j: the ranks with local index j, across nodes
	PPN     int
}

// NewNodeComm builds the node communicator structure of world w.
func NewNodeComm(w *mpi.World) *NodeComm {
	ppn := w.ProcsPerNode()
	nodes := w.Config().Nodes
	nc := &NodeComm{World: WorldGroup(w), PPN: ppn}
	leaders := make([]int, 0, nodes)
	nc.Nodes = make([]*Group, nodes)
	for n := 0; n < nodes; n++ {
		ranks := make([]int, ppn)
		for j := 0; j < ppn; j++ {
			ranks[j] = n*ppn + j
		}
		nc.Nodes[n] = NewGroup(w, ranks)
		leaders = append(leaders, ranks[0])
	}
	nc.Leaders = NewGroup(w, leaders)
	nc.Subs = make([]*Group, ppn)
	for j := 0; j < ppn; j++ {
		ranks := make([]int, nodes)
		for n := 0; n < nodes; n++ {
			ranks[n] = n*ppn + j
		}
		nc.Subs[j] = NewGroup(w, ranks)
	}
	return nc
}

// nodeLayout aggregates a per-rank layout into a per-node layout for the
// leader allgather: node n contributes the concatenation of its ranks'
// segments (which are contiguous under the block rank placement).
func (nc *NodeComm) nodeLayout(l Layout) Layout {
	nodes := len(nc.Nodes)
	counts := make([]int64, nodes)
	displs := make([]int64, nodes)
	for n := 0; n < nodes; n++ {
		first := n * nc.PPN
		displs[n] = l.Displs[first]
		for j := 0; j < nc.PPN; j++ {
			counts[n] += l.Counts[first+j]
		}
	}
	return Layout{Counts: counts, Displs: displs}
}

// StepTimes is the per-rank time spent in each step of a leader-based
// allgather — the breakdown of Fig. 6.
type StepTimes struct {
	GatherNs float64 // step 1: children -> leader (intra-node)
	InterNs  float64 // step 2: allgather between leaders (inter-node)
	BcastNs  float64 // step 3: leader -> children (intra-node)
}

// Total returns the summed step time.
func (t StepTimes) Total() float64 { return t.GatherNs + t.InterNs + t.BcastNs }

func (t *StepTimes) add(o StepTimes) {
	t.GatherNs += o.GatherNs
	t.InterNs += o.InterNs
	t.BcastNs += o.BcastNs
}

// LeaderAllgather is the prior-work baseline of Fig. 5a (Mamidala et
// al.): gather each node's segments to its leader, ring-allgather between
// leaders, broadcast the full buffer back to the children. buf is each
// rank's private full-size buffer with its own segment (layout l, indexed
// by world group position = rank) already in place.
func (nc *NodeComm) LeaderAllgather(p *mpi.Proc, buf []uint64, l Layout) StepTimes {
	var st StepTimes
	node := nc.Nodes[p.Node()]
	tc := p.Clock()

	t0 := p.Clock()
	node.GatherBinomial(p, buf, nc.localView(l, p.Node()), 0)
	st.GatherNs = p.Clock() - t0

	if p.LocalRank() == 0 {
		t0 = p.Clock()
		nc.Leaders.AllgatherRing(p, buf, nc.nodeLayout(l))
		st.InterNs = p.Clock() - t0
	}

	t0 = p.Clock()
	node.BcastBinomial(p, buf, l.TotalWords(), 0)
	st.BcastNs = p.Clock() - t0
	p.Obs().Collective("leader-allgather", tc, p.Clock())
	return st
}

// localView returns the layout of node n's ranks as a group-local layout
// (positions 0..ppn-1), still addressing the full buffer.
func (nc *NodeComm) localView(l Layout, n int) Layout {
	first := n * nc.PPN
	return Layout{
		Counts: l.Counts[first : first+nc.PPN],
		Displs: l.Displs[first : first+nc.PPN],
	}
}

// SharedInQueueAllgather is the paper's first optimization (Fig. 5b with
// only in_queue shared): buf is one node-shared buffer; children still
// gather their segments to the leader (step 1), leaders allgather on the
// shared buffer (step 2), and the broadcast disappears — children see the
// result through the shared mapping after a node barrier.
func (nc *NodeComm) SharedInQueueAllgather(p *mpi.Proc, shared []uint64, seg []uint64, l Layout) StepTimes {
	var st StepTimes
	node := nc.Nodes[p.Node()]
	me := nc.World.Pos(p.Rank())
	tc := p.Clock()

	// Step 1: children send their segment to the leader, which writes it
	// into the shared buffer. The leader's own segment is copied by its
	// compute phase already (seg aliases shared for the leader when the
	// caller stages directly; otherwise copy here).
	t0 := p.Clock()
	if p.LocalRank() == 0 {
		copy(l.seg(shared, me), seg)
		p.Compute(float64(len(seg)*8) / p.World().Config().ShmCopyBW)
		for j := 1; j < nc.PPN; j++ {
			child := p.Rank() + j
			m := p.Recv(child, tagGather)
			copy(l.seg(shared, nc.World.Pos(child)), m.Payload.([]uint64))
		}
	} else {
		// Children copy concurrently; the leader serializes receives.
		p.Send(p.Rank()-p.LocalRank(), tagGather, int64(len(seg))*8, seg, nc.PPN-1)
	}
	st.GatherNs = p.Clock() - t0

	if p.LocalRank() == 0 {
		t0 = p.Clock()
		nc.Leaders.AllgatherRing(p, shared, nc.nodeLayout(l))
		st.InterNs = p.Clock() - t0
	}

	// No step 3: a node barrier makes the shared result visible.
	t0 = p.Clock()
	node.barrierVia(p)
	st.BcastNs = 0
	st.InterNs += p.Clock() - t0 // children wait for the leader here
	p.Obs().Collective("shared-inq-allgather", tc, p.Clock())
	return st
}

// SharedAllAgather is the paper's "Share all" variant (Fig. 5b): both
// out_queue and in_queue are node-shared, so the leader reads children's
// segments directly from the shared out region — no gather, no broadcast.
// sharedOut holds the node's contribution at the node's displacement;
// sharedIn receives the full result.
func (nc *NodeComm) SharedAllAgather(p *mpi.Proc, sharedIn, sharedOut []uint64, l Layout) StepTimes {
	var st StepTimes
	node := nc.Nodes[p.Node()]
	nl := nc.nodeLayout(l)
	tc := p.Clock()

	if p.LocalRank() == 0 {
		// Copy the node's slice from the shared out region in place; this
		// is a local memory copy, charged at shared-copy bandwidth.
		t0 := p.Clock()
		n := p.Node()
		copy(nl.seg(sharedIn, n), nl.seg(sharedOut, n))
		p.Compute(float64(nl.Counts[n]*8) / p.World().Config().ShmCopyBW)
		st.GatherNs = p.Clock() - t0

		t0 = p.Clock()
		// The ring sources segments straight from the shared regions:
		// own-node data from sharedIn (just staged), remote arrivals land
		// in sharedIn as the ring progresses.
		nc.Leaders.AllgatherRing(p, sharedIn, nl)
		st.InterNs = p.Clock() - t0
	}

	t0 := p.Clock()
	node.barrierVia(p)
	st.InterNs += p.Clock() - t0
	p.Obs().Collective("shared-all-allgather", tc, p.Clock())
	return st
}

// ParallelAllgather is the paper's Section III.B scheme (Fig. 7): the
// ranks with local index j across all nodes form subgroup j; each
// subgroup ring-allgathers its members' segments into the node-shared
// buffer, all subgroups concurrently, so every NIC carries PPN streams.
// Total traffic is m*(np/ppn - 1) — Eq. (2). seg is the rank's own
// segment (copied into the shared buffer first).
func (nc *NodeComm) ParallelAllgather(p *mpi.Proc, shared []uint64, seg []uint64, l Layout) StepTimes {
	var st StepTimes
	me := nc.World.Pos(p.Rank())
	node := nc.Nodes[p.Node()]
	sub := nc.Subs[p.LocalRank()]
	tc := p.Clock()

	t0 := p.Clock()
	copy(l.seg(shared, me), seg)
	p.Compute(float64(l.Counts[me]*8) / p.World().Config().ShmCopyBW)

	sub.allgatherRingStreams(p, shared, nc.subLayout(sub, l), nc.PPN)
	st.InterNs = p.Clock() - t0

	t0 = p.Clock()
	node.barrierVia(p)
	st.InterNs += p.Clock() - t0
	p.Obs().Collective("par-allgather", tc, p.Clock())
	return st
}

// SharedInPlaceAllgather allgathers a fully node-shared buffer whose
// per-rank contributions are already written in place (each rank wrote
// its own segment into the shared region): a node barrier waits for the
// writers, the leaders exchange node slices, and a final node barrier
// publishes the result. This is the "Share all" path for the summary
// bitmaps, which every rank rebuilds directly into the shared region.
func (nc *NodeComm) SharedInPlaceAllgather(p *mpi.Proc, shared []uint64, l Layout) StepTimes {
	var st StepTimes
	node := nc.Nodes[p.Node()]
	t0 := p.Clock()
	node.barrierVia(p)
	if p.LocalRank() == 0 {
		nc.Leaders.AllgatherRing(p, shared, nc.nodeLayout(l))
	}
	node.barrierVia(p)
	st.InterNs = p.Clock() - t0
	p.Obs().Collective("shared-inplace-allgather", t0, p.Clock())
	return st
}

// ParallelAllgatherInPlace is ParallelAllgather for contributions already
// staged in the shared buffer (no copy step).
func (nc *NodeComm) ParallelAllgatherInPlace(p *mpi.Proc, shared []uint64, l Layout) StepTimes {
	var st StepTimes
	node := nc.Nodes[p.Node()]
	sub := nc.Subs[p.LocalRank()]
	tc := p.Clock()

	t0 := p.Clock()
	sub.allgatherRingStreams(p, shared, nc.subLayout(sub, l), nc.PPN)
	st.InterNs = p.Clock() - t0

	t0 = p.Clock()
	node.barrierVia(p)
	st.InterNs += p.Clock() - t0
	p.Obs().Collective("par-allgather-inplace", tc, p.Clock())
	return st
}

// subLayout returns the layout of a subgroup's members' segments
// within the full buffer.
func (nc *NodeComm) subLayout(sub *Group, l Layout) Layout {
	counts := make([]int64, sub.Size())
	displs := make([]int64, sub.Size())
	for i, r := range sub.Ranks() {
		wp := nc.World.Pos(r)
		counts[i] = l.Counts[wp]
		displs[i] = l.Displs[wp]
	}
	return Layout{Counts: counts, Displs: displs}
}

// ParallelAllgatherCompressed is ParallelAllgather with every subgroup
// segment travelling in the codec's adaptive wire formats — the fifth
// optimization level (OptCompressedAllgather), stacking Romera-style
// frontier compression on the paper's parallelized allgather. The
// staging copy and the node barrier are unchanged; only the inter-node
// rings carry encoded payloads.
func (nc *NodeComm) ParallelAllgatherCompressed(p *mpi.Proc, shared []uint64, seg []uint64, l Layout, c *wire.Codec) StepTimes {
	var st StepTimes
	me := nc.World.Pos(p.Rank())
	node := nc.Nodes[p.Node()]
	sub := nc.Subs[p.LocalRank()]
	tc := p.Clock()

	t0 := p.Clock()
	copy(l.seg(shared, me), seg)
	p.Compute(float64(l.Counts[me]*8) / p.World().Config().ShmCopyBW)

	sub.allgatherRingStreamsC(p, shared, nc.subLayout(sub, l), nc.PPN, c)
	st.InterNs = p.Clock() - t0

	t0 = p.Clock()
	node.barrierVia(p)
	st.InterNs += p.Clock() - t0
	p.Obs().Collective("par-allgather-comp", tc, p.Clock())
	return st
}

// ParallelAllgatherInPlaceCompressed is ParallelAllgatherInPlace with
// compressed subgroup rings (contributions already staged in the
// shared buffer).
func (nc *NodeComm) ParallelAllgatherInPlaceCompressed(p *mpi.Proc, shared []uint64, l Layout, c *wire.Codec) StepTimes {
	var st StepTimes
	node := nc.Nodes[p.Node()]
	sub := nc.Subs[p.LocalRank()]
	tc := p.Clock()

	t0 := p.Clock()
	sub.allgatherRingStreamsC(p, shared, nc.subLayout(sub, l), nc.PPN, c)
	st.InterNs = p.Clock() - t0

	t0 = p.Clock()
	node.barrierVia(p)
	st.InterNs += p.Clock() - t0
	p.Obs().Collective("par-allgather-inplace-comp", tc, p.Clock())
	return st
}

// LeaderAllgatherCompressed is LeaderAllgather with the inter-node
// leader ring carrying encoded payloads. The intra-node gather and
// broadcast stay raw: they move through shared memory, where the
// bandwidth gap compression exploits does not exist.
func (nc *NodeComm) LeaderAllgatherCompressed(p *mpi.Proc, buf []uint64, l Layout, c *wire.Codec) StepTimes {
	var st StepTimes
	node := nc.Nodes[p.Node()]
	tc := p.Clock()

	t0 := p.Clock()
	node.GatherBinomial(p, buf, nc.localView(l, p.Node()), 0)
	st.GatherNs = p.Clock() - t0

	if p.LocalRank() == 0 {
		t0 = p.Clock()
		nc.Leaders.AllgatherRingCompressed(p, buf, nc.nodeLayout(l), c)
		st.InterNs = p.Clock() - t0
	}

	t0 = p.Clock()
	node.BcastBinomial(p, buf, l.TotalWords(), 0)
	st.BcastNs = p.Clock() - t0
	p.Obs().Collective("leader-allgather-comp", tc, p.Clock())
	return st
}

// barrierVia runs a node barrier through the proc (helper so group code
// can synchronize a node's ranks).
func (g *Group) barrierVia(p *mpi.Proc) {
	if g.Size() == 1 {
		return
	}
	p.NodeBarrier()
}
