package collective

import (
	"fmt"

	"numabfs/internal/mpi"
	"numabfs/internal/wire"
)

// NodeComm holds the group structure the paper's node-aware allgather
// variants need: per-node groups (leader = the node's first member), the
// leader group, and per-member-index subgroups for the parallelized
// allgather. Membership is explicit — a NodeComm can be built over any
// subset of the world's ranks (survivors after a shrink, actives with
// spares parked), and over the full world it reproduces the historical
// arithmetic shapes exactly: leader n*ppn, children in ascending order,
// subgroup j = the ranks with local index j.
type NodeComm struct {
	World   *Group   // the member ranks, in member order
	Nodes   []*Group // per physical node: its members (nil when none)
	Leaders *Group   // one leader per populated node, ascending node order
	Subs    []*Group // subgroup j: each node's j-th member (see subRange)
	PPN     int      // largest member population on any node

	members   [][]int // per node: member ranks in member order
	leaderOf  []int   // per node: leader rank, -1 when unpopulated
	idxOnNode []int   // per rank: index in its node's member list, -1 outside
	nodeFirst []int   // per node: World position of its first member, -1
	nodePos   []int   // per node: position in Leaders, -1 when unpopulated
}

// NewNodeComm builds the node communicator over all ranks of world w.
func NewNodeComm(w *mpi.World) *NodeComm {
	ranks := make([]int, w.NumProcs())
	for i := range ranks {
		ranks[i] = i
	}
	return NewNodeCommRanks(w, ranks)
}

// NewNodeCommRanks builds the node communicator over an explicit member
// list (in group order). Each node's members must be contiguous in the
// list so that a node's buffer segments concatenate — true for the block
// rank placement, and preserved by survivor repartitioning.
func NewNodeCommRanks(w *mpi.World, ranks []int) *NodeComm {
	nodes := w.Config().Nodes
	np := w.NumProcs()
	nc := &NodeComm{
		World:     NewGroup(w, ranks),
		members:   make([][]int, nodes),
		leaderOf:  make([]int, nodes),
		idxOnNode: make([]int, np),
		nodeFirst: make([]int, nodes),
		nodePos:   make([]int, nodes),
	}
	for r := range nc.idxOnNode {
		nc.idxOnNode[r] = -1
	}
	for n := 0; n < nodes; n++ {
		nc.leaderOf[n], nc.nodeFirst[n], nc.nodePos[n] = -1, -1, -1
	}
	for pos, r := range ranks {
		n := w.Proc(r).Node()
		if nc.nodeFirst[n] == -1 {
			nc.nodeFirst[n] = pos
		}
		if nc.nodeFirst[n]+len(nc.members[n]) != pos {
			panic(fmt.Sprintf("collective: node %d's members are not contiguous in the member list", n))
		}
		nc.idxOnNode[r] = len(nc.members[n])
		nc.members[n] = append(nc.members[n], r)
	}
	nc.Nodes = make([]*Group, nodes)
	var leaders []int
	for n := 0; n < nodes; n++ {
		if len(nc.members[n]) == 0 {
			continue
		}
		nc.Nodes[n] = NewGroup(w, nc.members[n])
		nc.leaderOf[n] = nc.members[n][0]
		nc.nodePos[n] = len(leaders)
		leaders = append(leaders, nc.members[n][0])
		if len(nc.members[n]) > nc.PPN {
			nc.PPN = len(nc.members[n])
		}
	}
	nc.Leaders = NewGroup(w, leaders)
	// Subgroup j holds each node's j-th member; a node with fewer than
	// j+1 members is covered by its last member standing in (it carries
	// the leftover subs sequentially, contributing zero words — see
	// subLayout — so shorter nodes still receive every segment).
	nc.Subs = make([]*Group, nc.PPN)
	for j := 0; j < nc.PPN; j++ {
		var rs []int
		for n := 0; n < nodes; n++ {
			if cnt := len(nc.members[n]); cnt > 0 {
				if j < cnt {
					rs = append(rs, nc.members[n][j])
				} else {
					rs = append(rs, nc.members[n][cnt-1])
				}
			}
		}
		nc.Subs[j] = NewGroup(w, rs)
	}
	return nc
}

// IsLeader reports whether p is its node's leader.
func (nc *NodeComm) IsLeader(p *mpi.Proc) bool { return nc.leaderOf[p.Node()] == p.Rank() }

// subRange returns the subgroup indices rank p drives: its own member
// index, plus — when it is its node's last member — every leftover sub it
// stands in for. The rings run sequentially in ascending index; every
// member orders them the same way, so the pipeline of rendezvous
// mailboxes can never deadlock across rings.
func (nc *NodeComm) subRange(p *mpi.Proc) (lo, hi int) {
	i := nc.idxOnNode[p.Rank()]
	if i == len(nc.members[p.Node()])-1 {
		return i, nc.PPN - 1
	}
	return i, i
}

// nodeStreams returns the concurrent subgroup stream count p's node
// drives — its member population (PPN at full membership).
func (nc *NodeComm) nodeStreams(p *mpi.Proc) int { return len(nc.members[p.Node()]) }

// nodeLayout aggregates a per-member layout into a per-populated-node
// layout (indexed by Leaders position) for the leader allgather: node n
// contributes the concatenation of its members' segments (contiguous by
// the member-list invariant).
func (nc *NodeComm) nodeLayout(l Layout) Layout {
	populated := nc.Leaders.Size()
	counts := make([]int64, populated)
	displs := make([]int64, populated)
	for n := range nc.members {
		pos := nc.nodePos[n]
		if pos < 0 {
			continue
		}
		first := nc.nodeFirst[n]
		displs[pos] = l.Displs[first]
		for j := range nc.members[n] {
			counts[pos] += l.Counts[first+j]
		}
	}
	return Layout{Counts: counts, Displs: displs}
}

// StepTimes is the per-rank time spent in each step of a leader-based
// allgather — the breakdown of Fig. 6.
type StepTimes struct {
	GatherNs float64 // step 1: children -> leader (intra-node)
	InterNs  float64 // step 2: allgather between leaders (inter-node)
	BcastNs  float64 // step 3: leader -> children (intra-node)
}

// Total returns the summed step time.
func (t StepTimes) Total() float64 { return t.GatherNs + t.InterNs + t.BcastNs }

func (t *StepTimes) add(o StepTimes) {
	t.GatherNs += o.GatherNs
	t.InterNs += o.InterNs
	t.BcastNs += o.BcastNs
}

// LeaderAllgather is the prior-work baseline of Fig. 5a (Mamidala et
// al.): gather each node's segments to its leader, ring-allgather between
// leaders, broadcast the full buffer back to the children. buf is each
// rank's private full-size buffer with its own segment (layout l, indexed
// by world group position) already in place.
func (nc *NodeComm) LeaderAllgather(p *mpi.Proc, buf []uint64, l Layout) StepTimes {
	var st StepTimes
	node := nc.Nodes[p.Node()]
	tc := p.Clock()

	t0 := p.Clock()
	node.GatherBinomial(p, buf, nc.localView(l, p.Node()), 0)
	st.GatherNs = p.Clock() - t0

	if nc.IsLeader(p) {
		t0 = p.Clock()
		nc.Leaders.AllgatherRing(p, buf, nc.nodeLayout(l))
		st.InterNs = p.Clock() - t0
	}

	t0 = p.Clock()
	node.BcastBinomial(p, buf, l.TotalWords(), 0)
	st.BcastNs = p.Clock() - t0
	p.Obs().Collective("leader-allgather", tc, p.Clock())
	return st
}

// localView returns the layout of node n's members as a group-local
// layout (positions 0..cnt-1), still addressing the full buffer.
func (nc *NodeComm) localView(l Layout, n int) Layout {
	first := nc.nodeFirst[n]
	cnt := len(nc.members[n])
	return Layout{
		Counts: l.Counts[first : first+cnt],
		Displs: l.Displs[first : first+cnt],
	}
}

// SharedInQueueAllgather is the paper's first optimization (Fig. 5b with
// only in_queue shared): buf is one node-shared buffer; children still
// gather their segments to the leader (step 1), leaders allgather on the
// shared buffer (step 2), and the broadcast disappears — children see the
// result through the shared mapping after a node barrier.
func (nc *NodeComm) SharedInQueueAllgather(p *mpi.Proc, shared []uint64, seg []uint64, l Layout) StepTimes {
	var st StepTimes
	node := nc.Nodes[p.Node()]
	me := nc.World.Pos(p.Rank())
	tc := p.Clock()

	// Step 1: children send their segment to the leader, which writes it
	// into the shared buffer. The leader's own segment is copied by its
	// compute phase already (seg aliases shared for the leader when the
	// caller stages directly; otherwise copy here).
	t0 := p.Clock()
	mine := nc.members[p.Node()]
	if nc.IsLeader(p) {
		copy(l.seg(shared, me), seg)
		p.Compute(float64(len(seg)*8) / p.World().Config().ShmCopyBW)
		for _, child := range mine[1:] {
			m := p.Recv(child, tagGather)
			copy(l.seg(shared, nc.World.Pos(child)), m.Payload.([]uint64))
		}
	} else {
		// Children copy concurrently; the leader serializes receives.
		p.Send(nc.leaderOf[p.Node()], tagGather, int64(len(seg))*8, seg, len(mine)-1)
	}
	st.GatherNs = p.Clock() - t0

	if nc.IsLeader(p) {
		t0 = p.Clock()
		nc.Leaders.AllgatherRing(p, shared, nc.nodeLayout(l))
		st.InterNs = p.Clock() - t0
	}

	// No step 3: a node barrier makes the shared result visible.
	t0 = p.Clock()
	node.barrierVia(p)
	st.BcastNs = 0
	st.InterNs += p.Clock() - t0 // children wait for the leader here
	p.Obs().Collective("shared-inq-allgather", tc, p.Clock())
	return st
}

// SharedAllAgather is the paper's "Share all" variant (Fig. 5b): both
// out_queue and in_queue are node-shared, so the leader reads children's
// segments directly from the shared out region — no gather, no broadcast.
// sharedOut holds the node's contribution at the node's displacement;
// sharedIn receives the full result.
func (nc *NodeComm) SharedAllAgather(p *mpi.Proc, sharedIn, sharedOut []uint64, l Layout) StepTimes {
	var st StepTimes
	node := nc.Nodes[p.Node()]
	nl := nc.nodeLayout(l)
	tc := p.Clock()

	if nc.IsLeader(p) {
		// Copy the node's slice from the shared out region in place; this
		// is a local memory copy, charged at shared-copy bandwidth.
		t0 := p.Clock()
		n := nc.nodePos[p.Node()]
		copy(nl.seg(sharedIn, n), nl.seg(sharedOut, n))
		p.Compute(float64(nl.Counts[n]*8) / p.World().Config().ShmCopyBW)
		st.GatherNs = p.Clock() - t0

		t0 = p.Clock()
		// The ring sources segments straight from the shared regions:
		// own-node data from sharedIn (just staged), remote arrivals land
		// in sharedIn as the ring progresses.
		nc.Leaders.AllgatherRing(p, sharedIn, nl)
		st.InterNs = p.Clock() - t0
	}

	t0 := p.Clock()
	node.barrierVia(p)
	st.InterNs += p.Clock() - t0
	p.Obs().Collective("shared-all-allgather", tc, p.Clock())
	return st
}

// ParallelAllgather is the paper's Section III.B scheme (Fig. 7): each
// node's j-th members across all nodes form subgroup j; each subgroup
// ring-allgathers its members' segments into the node-shared buffer, all
// subgroups concurrently, so every NIC carries PPN streams. Total traffic
// is m*(np/ppn - 1) — Eq. (2). seg is the rank's own segment (copied into
// the shared buffer first).
func (nc *NodeComm) ParallelAllgather(p *mpi.Proc, shared []uint64, seg []uint64, l Layout) StepTimes {
	var st StepTimes
	me := nc.World.Pos(p.Rank())
	node := nc.Nodes[p.Node()]
	tc := p.Clock()

	t0 := p.Clock()
	copy(l.seg(shared, me), seg)
	p.Compute(float64(l.Counts[me]*8) / p.World().Config().ShmCopyBW)

	lo, hi := nc.subRange(p)
	for j := lo; j <= hi; j++ {
		nc.Subs[j].allgatherRingStreams(p, shared, nc.subLayout(nc.Subs[j], l, j), nc.nodeStreams(p))
	}
	st.InterNs = p.Clock() - t0

	t0 = p.Clock()
	node.barrierVia(p)
	st.InterNs += p.Clock() - t0
	p.Obs().Collective("par-allgather", tc, p.Clock())
	return st
}

// SharedInPlaceAllgather allgathers a fully node-shared buffer whose
// per-rank contributions are already written in place (each rank wrote
// its own segment into the shared region): a node barrier waits for the
// writers, the leaders exchange node slices, and a final node barrier
// publishes the result. This is the "Share all" path for the summary
// bitmaps, which every rank rebuilds directly into the shared region.
func (nc *NodeComm) SharedInPlaceAllgather(p *mpi.Proc, shared []uint64, l Layout) StepTimes {
	var st StepTimes
	node := nc.Nodes[p.Node()]
	t0 := p.Clock()
	node.barrierVia(p)
	if nc.IsLeader(p) {
		nc.Leaders.AllgatherRing(p, shared, nc.nodeLayout(l))
	}
	node.barrierVia(p)
	st.InterNs = p.Clock() - t0
	p.Obs().Collective("shared-inplace-allgather", t0, p.Clock())
	return st
}

// ParallelAllgatherInPlace is ParallelAllgather for contributions already
// staged in the shared buffer (no copy step).
func (nc *NodeComm) ParallelAllgatherInPlace(p *mpi.Proc, shared []uint64, l Layout) StepTimes {
	var st StepTimes
	node := nc.Nodes[p.Node()]
	tc := p.Clock()

	t0 := p.Clock()
	lo, hi := nc.subRange(p)
	for j := lo; j <= hi; j++ {
		nc.Subs[j].allgatherRingStreams(p, shared, nc.subLayout(nc.Subs[j], l, j), nc.nodeStreams(p))
	}
	st.InterNs = p.Clock() - t0

	t0 = p.Clock()
	node.barrierVia(p)
	st.InterNs += p.Clock() - t0
	p.Obs().Collective("par-allgather-inplace", tc, p.Clock())
	return st
}

// subLayout returns the layout of subgroup j's members' segments within
// the full buffer. A stand-in member (a short node's last member covering
// a leftover sub, idxOnNode != j) contributes zero words: its real
// segment travels in its own sub, so carrying it again would double-write
// receivers' shared buffers.
func (nc *NodeComm) subLayout(sub *Group, l Layout, j int) Layout {
	counts := make([]int64, sub.Size())
	displs := make([]int64, sub.Size())
	for i, r := range sub.Ranks() {
		wp := nc.World.Pos(r)
		displs[i] = l.Displs[wp]
		if nc.idxOnNode[r] == j {
			counts[i] = l.Counts[wp]
		}
	}
	return Layout{Counts: counts, Displs: displs}
}

// ParallelAllgatherCompressed is ParallelAllgather with every subgroup
// segment travelling in the codec's adaptive wire formats — the fifth
// optimization level (OptCompressedAllgather), stacking Romera-style
// frontier compression on the paper's parallelized allgather. The
// staging copy and the node barrier are unchanged; only the inter-node
// rings carry encoded payloads.
func (nc *NodeComm) ParallelAllgatherCompressed(p *mpi.Proc, shared []uint64, seg []uint64, l Layout, c *wire.Codec) StepTimes {
	var st StepTimes
	me := nc.World.Pos(p.Rank())
	node := nc.Nodes[p.Node()]
	tc := p.Clock()

	t0 := p.Clock()
	copy(l.seg(shared, me), seg)
	p.Compute(float64(l.Counts[me]*8) / p.World().Config().ShmCopyBW)

	lo, hi := nc.subRange(p)
	for j := lo; j <= hi; j++ {
		nc.Subs[j].allgatherRingStreamsC(p, shared, nc.subLayout(nc.Subs[j], l, j), nc.nodeStreams(p), c)
	}
	st.InterNs = p.Clock() - t0

	t0 = p.Clock()
	node.barrierVia(p)
	st.InterNs += p.Clock() - t0
	p.Obs().Collective("par-allgather-comp", tc, p.Clock())
	return st
}

// ParallelAllgatherInPlaceCompressed is ParallelAllgatherInPlace with
// compressed subgroup rings (contributions already staged in the
// shared buffer).
func (nc *NodeComm) ParallelAllgatherInPlaceCompressed(p *mpi.Proc, shared []uint64, l Layout, c *wire.Codec) StepTimes {
	var st StepTimes
	node := nc.Nodes[p.Node()]
	tc := p.Clock()

	t0 := p.Clock()
	lo, hi := nc.subRange(p)
	for j := lo; j <= hi; j++ {
		nc.Subs[j].allgatherRingStreamsC(p, shared, nc.subLayout(nc.Subs[j], l, j), nc.nodeStreams(p), c)
	}
	st.InterNs = p.Clock() - t0

	t0 = p.Clock()
	node.barrierVia(p)
	st.InterNs += p.Clock() - t0
	p.Obs().Collective("par-allgather-inplace-comp", tc, p.Clock())
	return st
}

// LeaderAllgatherCompressed is LeaderAllgather with the inter-node
// leader ring carrying encoded payloads. The intra-node gather and
// broadcast stay raw: they move through shared memory, where the
// bandwidth gap compression exploits does not exist.
func (nc *NodeComm) LeaderAllgatherCompressed(p *mpi.Proc, buf []uint64, l Layout, c *wire.Codec) StepTimes {
	var st StepTimes
	node := nc.Nodes[p.Node()]
	tc := p.Clock()

	t0 := p.Clock()
	node.GatherBinomial(p, buf, nc.localView(l, p.Node()), 0)
	st.GatherNs = p.Clock() - t0

	if nc.IsLeader(p) {
		t0 = p.Clock()
		nc.Leaders.AllgatherRingCompressed(p, buf, nc.nodeLayout(l), c)
		st.InterNs = p.Clock() - t0
	}

	t0 = p.Clock()
	node.BcastBinomial(p, buf, l.TotalWords(), 0)
	st.BcastNs = p.Clock() - t0
	p.Obs().Collective("leader-allgather-comp", tc, p.Clock())
	return st
}

// barrierVia runs a node barrier through the proc (helper so group code
// can synchronize a node's ranks).
func (g *Group) barrierVia(p *mpi.Proc) {
	if g.Size() == 1 {
		return
	}
	p.NodeBarrier()
}
