package collective

// Tests for member-explicit NodeComm construction: over the full world
// it must reproduce the historical shapes exactly, and over uneven
// survivor populations every allgather variant must still deliver every
// segment (the stand-in scheme covering leftover subgroups).

import (
	"reflect"
	"testing"

	"numabfs/internal/mpi"
)

func TestNodeCommRanksFullWorldMatchesNodeComm(t *testing.T) {
	w := testWorld(t, 3, 4)
	a, b := NewNodeComm(w), NewNodeCommRanks(w, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	if a.PPN != b.PPN {
		t.Fatalf("PPN %d vs %d", a.PPN, b.PPN)
	}
	if !reflect.DeepEqual(a.World.Ranks(), b.World.Ranks()) {
		t.Fatalf("world ranks %v vs %v", a.World.Ranks(), b.World.Ranks())
	}
	if !reflect.DeepEqual(a.Leaders.Ranks(), b.Leaders.Ranks()) {
		t.Fatalf("leaders %v vs %v", a.Leaders.Ranks(), b.Leaders.Ranks())
	}
	for j := range a.Subs {
		if !reflect.DeepEqual(a.Subs[j].Ranks(), b.Subs[j].Ranks()) {
			t.Fatalf("sub %d: %v vs %v", j, a.Subs[j].Ranks(), b.Subs[j].Ranks())
		}
	}
	for n := range a.Nodes {
		if !reflect.DeepEqual(a.Nodes[n].Ranks(), b.Nodes[n].Ranks()) {
			t.Fatalf("node %d: %v vs %v", n, a.Nodes[n].Ranks(), b.Nodes[n].Ranks())
		}
	}
}

func TestNodeCommRanksRejectsScatteredNode(t *testing.T) {
	w := testWorld(t, 2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("non-contiguous node membership did not panic")
		}
	}()
	// Rank 4 (node 1) splits node 0's block.
	NewNodeCommRanks(w, []int{0, 1, 4, 2})
}

// runUneven parks the non-members of a 2x4 world so only the member
// list runs, then executes body on every member.
func runUneven(t *testing.T, members []int, body func(nc *NodeComm, p *mpi.Proc, pos int)) {
	t.Helper()
	w := testWorld(t, 2, 4)
	in := make(map[int]bool)
	for _, r := range members {
		in[r] = true
	}
	var parked []int
	for r := 0; r < w.NumProcs(); r++ {
		if !in[r] {
			parked = append(parked, r)
		}
	}
	w.Park(parked)
	nc := NewNodeCommRanks(w, members)
	w.Run(func(p *mpi.Proc) {
		body(nc, p, nc.World.Pos(p.Rank()))
	})
}

// TestNodeCommRanksUnevenNodesComplete: a shrunken membership where the
// nodes carry different populations (3 vs 2 here) must still deliver
// every member's segment through each allgather variant — the short
// node's last member stands in for the missing subgroups.
func TestNodeCommRanksUnevenNodesComplete(t *testing.T) {
	members := []int{0, 1, 2, 4, 5}
	const words = 335
	l := EvenLayout(words, len(members))

	t.Run("leader", func(t *testing.T) {
		runUneven(t, members, func(nc *NodeComm, p *mpi.Proc, pos int) {
			buf := make([]uint64, words)
			fillOwn(buf, l, pos)
			nc.LeaderAllgather(p, buf, l)
			checkFull(t, "leader-uneven", p.Rank(), buf, l)
		})
	})
	t.Run("leader-pipelined", func(t *testing.T) {
		runUneven(t, members, func(nc *NodeComm, p *mpi.Proc, pos int) {
			buf := make([]uint64, words)
			fillOwn(buf, l, pos)
			nc.LeaderAllgatherPipelined(p, buf, l)
			checkFull(t, "pipelined-uneven", p.Rank(), buf, l)
		})
	})
	t.Run("shared-inq", func(t *testing.T) {
		runUneven(t, members, func(nc *NodeComm, p *mpi.Proc, pos int) {
			shared := p.SharedWords("inq", words)
			seg := make([]uint64, l.Counts[pos])
			for i := range seg {
				seg[i] = uint64(pos)<<32 | uint64(i)
			}
			nc.SharedInQueueAllgather(p, shared, seg, l)
			checkFull(t, "shared-inq-uneven", p.Rank(), shared, l)
		})
	})
	t.Run("parallel", func(t *testing.T) {
		runUneven(t, members, func(nc *NodeComm, p *mpi.Proc, pos int) {
			shared := p.SharedWords("inq", words)
			seg := make([]uint64, l.Counts[pos])
			for i := range seg {
				seg[i] = uint64(pos)<<32 | uint64(i)
			}
			nc.ParallelAllgather(p, shared, seg, l)
			checkFull(t, "parallel-uneven", p.Rank(), shared, l)
		})
	})
}

// TestNodeCommRanksSingleNodeSurvives: every member on one node — the
// leader group is size 1 and the inter step degenerates to zero work.
func TestNodeCommRanksSingleNodeSurvives(t *testing.T) {
	members := []int{0, 1, 2, 3}
	const words = 128
	l := EvenLayout(words, len(members))
	runUneven(t, members, func(nc *NodeComm, p *mpi.Proc, pos int) {
		buf := make([]uint64, words)
		fillOwn(buf, l, pos)
		st := nc.LeaderAllgather(p, buf, l)
		checkFull(t, "single-node", p.Rank(), buf, l)
		if st.InterNs != 0 {
			t.Errorf("rank %d charged inter time %g with one populated node", p.Rank(), st.InterNs)
		}
	})
}
