package graph

import (
	"testing"

	"numabfs/internal/rmat"
)

func TestDegreesSmall(t *testing.T) {
	// Star: vertex 0 connected to 1, 2, 3; vertex 4 isolated.
	pairs := []int64{0, 1, 1, 0, 0, 2, 2, 0, 0, 3, 3, 0}
	c := BuildCSR(0, 5, pairs, true)
	st := Degrees(c)
	if st.Vertices != 5 || st.Edges != 6 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Isolated != 1 {
		t.Fatalf("isolated = %d", st.Isolated)
	}
	if st.MaxDeg != 3 {
		t.Fatalf("max = %d", st.MaxDeg)
	}
	if st.P50 != 1 {
		t.Fatalf("p50 = %d", st.P50)
	}
}

func TestDegreesScaleFree(t *testing.T) {
	c := BuildGlobal(rmat.Graph500(12), true)
	st := Degrees(c)
	if st.MaxDeg < 20*int64(st.MeanDeg) {
		t.Fatalf("R-MAT max degree %d not heavy-tailed (mean %.1f)", st.MaxDeg, st.MeanDeg)
	}
	if st.Isolated == 0 {
		t.Fatal("R-MAT graphs have isolated vertices")
	}
	if !(st.P50 <= st.P90 && st.P90 <= st.P99 && st.P99 <= st.MaxDeg) {
		t.Fatalf("percentiles not monotone: %+v", st)
	}
}

func TestDegreeHistogram(t *testing.T) {
	pairs := []int64{
		0, 1, 0, 2, 0, 3, 0, 4, // deg(0) = 4 -> bucket 2
		1, 0, // deg(1) = 1 -> bucket 0
		2, 0, 2, 1, // deg(2) = 2 -> bucket 1
	}
	c := BuildCSR(0, 5, pairs, true)
	h := DegreeHistogram(c)
	if len(h) != 3 || h[0] != 1 || h[1] != 1 || h[2] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	var total int64
	st := Degrees(c)
	for _, b := range h {
		total += b
	}
	if total != st.Vertices-st.Isolated {
		t.Fatalf("histogram covers %d, want %d", total, st.Vertices-st.Isolated)
	}
}
