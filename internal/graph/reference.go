package graph

import "numabfs/internal/rmat"

// BuildGlobal materializes the whole graph as a single CSR — feasible at
// the scales the examples and validator use, and the ground truth the
// distributed construction must agree with.
func BuildGlobal(p rmat.Params, dedup bool) *CSR {
	n := p.NumVertices()
	ne := p.NumEdges()
	pairs := make([]int64, 0, 4*ne)
	for i := int64(0); i < ne; i++ {
		u, v := p.EdgeAt(i)
		if u == v {
			continue
		}
		pairs = append(pairs, u, v, v, u)
	}
	return BuildCSR(0, n, pairs, dedup)
}

// ReferenceBFS runs a sequential BFS over a global CSR and returns the
// level of every vertex (-1 for unreachable) and the parent array (-1
// for unreachable; root's parent is itself, per the Graph500 convention).
func ReferenceBFS(c *CSR, root int64) (level, parent []int64) {
	n := c.Hi - c.Lo
	level = make([]int64, n)
	parent = make([]int64, n)
	for i := range level {
		level[i] = -1
		parent[i] = -1
	}
	level[root] = 0
	parent[root] = root
	frontier := []int64{root}
	for depth := int64(1); len(frontier) > 0; depth++ {
		var next []int64
		for _, u := range frontier {
			for _, v := range c.Neighbors(u) {
				if level[v] < 0 {
					level[v] = depth
					parent[v] = u
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return level, parent
}

// ConnectedComponent returns the number of vertices reachable from root
// (including root) in a global CSR.
func ConnectedComponent(c *CSR, root int64) int64 {
	level, _ := ReferenceBFS(c, root)
	var n int64
	for _, l := range level {
		if l >= 0 {
			n++
		}
	}
	return n
}
