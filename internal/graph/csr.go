package graph

import (
	"fmt"
	"sort"
)

// CSR is the local adjacency structure of one rank: the out-neighbour
// lists of the vertices it owns, with global neighbour ids. The graph is
// undirected, so every edge (u, v) appears in u's list on u's owner and
// in v's list on v's owner.
type CSR struct {
	Lo, Hi int64   // owned vertex range [Lo, Hi)
	RowPtr []int64 // len Hi-Lo+1
	Col    []int64 // global neighbour ids, sorted per row
}

// NumLocal returns the number of owned vertices.
func (c *CSR) NumLocal() int64 { return c.Hi - c.Lo }

// NumEdges returns the number of stored directed adjacencies.
func (c *CSR) NumEdges() int64 { return int64(len(c.Col)) }

// Degree returns the degree of owned vertex v (global id).
func (c *CSR) Degree(v int64) int64 {
	i := v - c.Lo
	return c.RowPtr[i+1] - c.RowPtr[i]
}

// Neighbors returns the neighbour list of owned vertex v (global id).
// The returned slice aliases the CSR; do not modify.
func (c *CSR) Neighbors(v int64) []int64 {
	i := v - c.Lo
	return c.Col[c.RowPtr[i]:c.RowPtr[i+1]]
}

// HasEdge reports whether owned vertex v has at least one neighbour.
func (c *CSR) HasEdge(v int64) bool { return c.Degree(v) > 0 }

// BytesApprox returns the approximate memory footprint of the CSR, used
// by the cost model to size the structure for cache modelling.
func (c *CSR) BytesApprox() int64 {
	return int64(len(c.RowPtr))*8 + int64(len(c.Col))*8
}

// BuildCSR builds the CSR for owned range [lo, hi) from directed
// adjacency pairs: pairs[2k] is a source in [lo, hi), pairs[2k+1] its
// neighbour (global). Self-loops are dropped; duplicate adjacencies are
// kept or deduplicated according to dedup (Graph500 permits multigraphs;
// the reference BFS implementations deduplicate during construction).
func BuildCSR(lo, hi int64, pairs []int64, dedup bool) *CSR {
	if len(pairs)%2 != 0 {
		panic("graph: odd pair slice")
	}
	n := hi - lo
	c := &CSR{Lo: lo, Hi: hi, RowPtr: make([]int64, n+1)}
	// Counting pass.
	for k := 0; k < len(pairs); k += 2 {
		u, v := pairs[k], pairs[k+1]
		if u < lo || u >= hi {
			panic(fmt.Sprintf("graph: source %d outside [%d, %d)", u, lo, hi))
		}
		if u == v {
			continue
		}
		c.RowPtr[u-lo+1]++
	}
	for i := int64(0); i < n; i++ {
		c.RowPtr[i+1] += c.RowPtr[i]
	}
	c.Col = make([]int64, c.RowPtr[n])
	fill := make([]int64, n)
	for k := 0; k < len(pairs); k += 2 {
		u, v := pairs[k], pairs[k+1]
		if u == v {
			continue
		}
		i := u - lo
		c.Col[c.RowPtr[i]+fill[i]] = v
		fill[i]++
	}
	// Sort each row; optionally deduplicate in place.
	for i := int64(0); i < n; i++ {
		row := c.Col[c.RowPtr[i]:c.RowPtr[i+1]]
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
	}
	if dedup {
		c = c.dedup()
	}
	return c
}

// MergeCSR concatenates two CSRs over adjacent vertex ranges (a.Hi must
// equal b.Lo) into one CSR over [a.Lo, b.Hi). Survivor repartitioning
// uses this to re-own a dead rank's adjacency: row pointers concatenate
// with b's shifted by a's edge count, neighbour ids are global already.
func MergeCSR(a, b *CSR) *CSR {
	if a.Hi != b.Lo {
		panic(fmt.Sprintf("graph: MergeCSR ranges [%d, %d) and [%d, %d) not adjacent", a.Lo, a.Hi, b.Lo, b.Hi))
	}
	n := b.Hi - a.Lo
	out := &CSR{Lo: a.Lo, Hi: b.Hi, RowPtr: make([]int64, n+1)}
	copy(out.RowPtr, a.RowPtr)
	shift := a.RowPtr[len(a.RowPtr)-1]
	for i, v := range b.RowPtr[1:] {
		out.RowPtr[int64(len(a.RowPtr))+int64(i)] = v + shift
	}
	out.Col = make([]int64, 0, len(a.Col)+len(b.Col))
	out.Col = append(append(out.Col, a.Col...), b.Col...)
	return out
}

// dedup removes duplicate adjacencies from sorted rows, rebuilding the
// CSR compactly.
func (c *CSR) dedup() *CSR {
	n := c.Hi - c.Lo
	out := &CSR{Lo: c.Lo, Hi: c.Hi, RowPtr: make([]int64, n+1)}
	col := make([]int64, 0, len(c.Col))
	for i := int64(0); i < n; i++ {
		row := c.Col[c.RowPtr[i]:c.RowPtr[i+1]]
		var prev int64 = -1
		for _, v := range row {
			if v != prev {
				col = append(col, v)
				prev = v
			}
		}
		out.RowPtr[i+1] = int64(len(col))
	}
	out.Col = col
	return out
}
