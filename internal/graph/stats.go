package graph

import "sort"

// DegreeStats summarizes a degree distribution — R-MAT graphs are
// scale-free, which is what makes frontier hubs dominate the early BFS
// levels and the top-down phase's load so skewed.
type DegreeStats struct {
	Vertices int64
	Edges    int64 // directed adjacencies
	Isolated int64 // degree-0 vertices (never enter any frontier)
	MaxDeg   int64
	MeanDeg  float64
	// P50/P90/P99 are degree percentiles over non-isolated vertices.
	P50, P90, P99 int64
}

// Degrees computes the degree statistics of a global CSR.
func Degrees(c *CSR) DegreeStats {
	n := c.Hi - c.Lo
	st := DegreeStats{Vertices: n, Edges: c.NumEdges()}
	degs := make([]int64, 0, n)
	for v := c.Lo; v < c.Hi; v++ {
		d := c.Degree(v)
		if d == 0 {
			st.Isolated++
			continue
		}
		degs = append(degs, d)
		if d > st.MaxDeg {
			st.MaxDeg = d
		}
	}
	if n > 0 {
		st.MeanDeg = float64(st.Edges) / float64(n)
	}
	if len(degs) > 0 {
		sort.Slice(degs, func(i, j int) bool { return degs[i] < degs[j] })
		st.P50 = degs[len(degs)/2]
		st.P90 = degs[len(degs)*9/10]
		st.P99 = degs[len(degs)*99/100]
	}
	return st
}

// DegreeHistogram buckets vertices by floor(log2(degree)); bucket 0
// holds degree-1 vertices, bucket k holds degrees [2^k, 2^(k+1)).
// Isolated vertices are excluded.
func DegreeHistogram(c *CSR) []int64 {
	var hist []int64
	for v := c.Lo; v < c.Hi; v++ {
		d := c.Degree(v)
		if d == 0 {
			continue
		}
		b := 0
		for x := d; x > 1; x >>= 1 {
			b++
		}
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}
	return hist
}
