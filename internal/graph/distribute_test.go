package graph

import (
	"testing"

	"numabfs/internal/collective"
	"numabfs/internal/machine"
	"numabfs/internal/mpi"
	"numabfs/internal/rmat"
)

// TestBuildDistributedMatchesGlobal: kernel 1's distributed construction
// must produce, across all ranks, exactly the adjacency structure of the
// sequential global build.
func TestBuildDistributedMatchesGlobal(t *testing.T) {
	const scale = 10
	params := rmat.Graph500(scale)
	want := BuildGlobal(params, true)

	cfg := machine.TableI()
	cfg.Nodes = 2
	cfg.SocketsPerNode = 4
	cfg.WeakNode = -1
	pl := machine.PlacementFor(cfg, machine.PPN8Bind)
	w := mpi.NewWorld(cfg, pl)
	g := collective.WorldGroup(w)
	part := NewPartition(params.NumVertices(), w.NumProcs())

	locals := make([]*CSR, w.NumProcs())
	w.Run(func(p *mpi.Proc) {
		locals[p.Rank()] = BuildDistributed(p, g, part, params, true)
	})

	for rank, csr := range locals {
		lo, hi := part.Range(rank)
		if csr.Lo != lo || csr.Hi != hi {
			t.Fatalf("rank %d: range [%d,%d), want [%d,%d)", rank, csr.Lo, csr.Hi, lo, hi)
		}
		for v := lo; v < hi; v++ {
			got := csr.Neighbors(v)
			ref := want.Neighbors(v)
			if len(got) != len(ref) {
				t.Fatalf("vertex %d: %d neighbours, want %d", v, len(got), len(ref))
			}
			for k := range got {
				if got[k] != ref[k] {
					t.Fatalf("vertex %d neighbour %d: %d, want %d", v, k, got[k], ref[k])
				}
			}
		}
	}
	// Construction costs virtual time and network volume.
	if w.MaxClock() <= 0 {
		t.Fatal("construction charged no virtual time")
	}
	if vol := w.Net().Volume(); vol.IntraBytes+vol.InterBytes == 0 {
		t.Fatal("construction moved no bytes")
	}
}
