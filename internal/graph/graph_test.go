package graph

import (
	"testing"
	"testing/quick"

	"numabfs/internal/rmat"
)

func TestPartitionBasics(t *testing.T) {
	p := NewPartition(1024, 8)
	var total int64
	for r := 0; r < 8; r++ {
		lo, hi := p.Range(r)
		if lo%64 != 0 {
			t.Errorf("rank %d: boundary %d not word-aligned", r, lo)
		}
		total += hi - lo
		for v := lo; v < hi; v++ {
			if p.Owner(v) != r {
				t.Fatalf("Owner(%d) = %d, want %d", v, p.Owner(v), r)
			}
		}
	}
	if total != 1024 {
		t.Fatalf("ranges cover %d vertices, want 1024", total)
	}
}

func TestPartitionUnevenTail(t *testing.T) {
	// 640 vertices over 7 ranks: chunks of ceil(640/7)=92 -> 128 aligned;
	// later ranks may own nothing, but coverage must be exact and
	// disjoint.
	p := NewPartition(640, 7)
	var total int64
	for r := 0; r < 7; r++ {
		total += p.Count(r)
	}
	if total != 640 {
		t.Fatalf("coverage %d, want 640", total)
	}
}

func TestPartitionProperty(t *testing.T) {
	f := func(nSmall uint16, npSmall uint8) bool {
		np := int(npSmall%16) + 1
		n := int64(nSmall%4096) + int64(np)*64
		p := NewPartition(n, np)
		// Complete, disjoint, owner-consistent.
		var total int64
		for r := 0; r < np; r++ {
			lo, hi := p.Range(r)
			if hi < lo {
				return false
			}
			total += hi - lo
		}
		if total != n {
			return false
		}
		for _, v := range []int64{0, n / 3, n / 2, n - 1} {
			r := p.Owner(v)
			lo, hi := p.Range(r)
			if v < lo || v >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildCSRSortsAndDrops(t *testing.T) {
	pairs := []int64{
		0, 5, 0, 3, 0, 5, // duplicate (0,5)
		1, 1, // self loop: dropped
		2, 0,
	}
	c := BuildCSR(0, 4, pairs, true)
	if got := c.Neighbors(0); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	if c.Degree(1) != 0 {
		t.Fatalf("self loop survived: %v", c.Neighbors(1))
	}
	if got := c.Neighbors(2); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Neighbors(2) = %v", got)
	}
	if c.HasEdge(3) {
		t.Fatal("vertex 3 should have no edges")
	}
	// Without dedup, the duplicate stays.
	c2 := BuildCSR(0, 4, pairs, false)
	if c2.Degree(0) != 3 {
		t.Fatalf("no-dedup Degree(0) = %d, want 3", c2.Degree(0))
	}
}

func TestBuildCSRPanicsOnForeignSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildCSR(0, 4, []int64{7, 1}, true)
}

func TestBuildGlobalUndirected(t *testing.T) {
	p := rmat.Graph500(10)
	c := BuildGlobal(p, true)
	// Symmetry: u in N(v) iff v in N(u).
	for v := int64(0); v < c.Hi; v++ {
		for _, u := range c.Neighbors(v) {
			found := false
			for _, w := range c.Neighbors(u) {
				if w == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) not symmetric", v, u)
			}
		}
	}
}

func TestReferenceBFSSmall(t *testing.T) {
	// Path 0-1-2-3 plus isolated 4.
	pairs := []int64{0, 1, 1, 0, 1, 2, 2, 1, 2, 3, 3, 2}
	c := BuildCSR(0, 5, pairs, true)
	level, parent := ReferenceBFS(c, 0)
	wantLevel := []int64{0, 1, 2, 3, -1}
	for v, w := range wantLevel {
		if level[v] != w {
			t.Fatalf("level[%d] = %d, want %d", v, level[v], w)
		}
	}
	if parent[0] != 0 || parent[1] != 0 || parent[2] != 1 || parent[3] != 2 || parent[4] != -1 {
		t.Fatalf("parents = %v", parent)
	}
	if got := ConnectedComponent(c, 0); got != 4 {
		t.Fatalf("component size = %d, want 4", got)
	}
}

func TestReferenceBFSLevelsMonotone(t *testing.T) {
	p := rmat.Graph500(10)
	c := BuildGlobal(p, true)
	root := p.Roots(1, c.HasEdge)[0]
	level, parent := ReferenceBFS(c, root)
	for v := range level {
		if level[v] < 0 {
			if parent[v] != -1 {
				t.Fatalf("unreached %d has parent", v)
			}
			continue
		}
		if int64(v) == root {
			continue
		}
		if level[v] != level[parent[v]]+1 {
			t.Fatalf("vertex %d level %d, parent level %d", v, level[v], level[parent[v]])
		}
	}
}
