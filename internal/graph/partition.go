// Package graph provides the distributed graph representation the
// paper's BFS runs on: a 1-D block partition of the vertex set over MPI
// ranks, a local CSR (compressed sparse row) adjacency structure per
// rank, a distributed construction path (Graph500 kernel 1: route each
// generated edge to the owners of both endpoints), and a sequential
// reference BFS used by the validator and the tests.
package graph

import "fmt"

// Partition is a 1-D block partition of vertices [0, N) over NP ranks.
// Rank boundaries are aligned to 64 vertices so that each rank's slice of
// a bitmap is a whole number of words — required for the allgather of
// in_queue segments (and true in the reference code, where N and NP are
// powers of two).
type Partition struct {
	N    int64
	NP   int
	offs []int64 // len NP+1; rank r owns [offs[r], offs[r+1])
}

// NewPartition builds the partition. It panics if N < NP (every rank
// must own at least one vertex for the collectives to be meaningful).
func NewPartition(n int64, np int) Partition {
	if np < 1 || n < int64(np) {
		panic(fmt.Sprintf("graph: cannot partition %d vertices over %d ranks", n, np))
	}
	// Equal word-aligned chunks: ceil(n/np) rounded up to 64.
	chunk := (n + int64(np) - 1) / int64(np)
	chunk = (chunk + 63) &^ 63
	offs := make([]int64, np+1)
	for r := 1; r <= np; r++ {
		o := int64(r) * chunk
		if o > n {
			o = n
		}
		offs[r] = o
	}
	return Partition{N: n, NP: np, offs: offs}
}

// Owner returns the rank owning vertex v.
func (p Partition) Owner(v int64) int {
	chunk := p.offs[1] - p.offs[0]
	if chunk == 0 {
		return 0
	}
	r := int(v / chunk)
	if r >= p.NP {
		r = p.NP - 1
	}
	return r
}

// Range returns the vertex range [lo, hi) owned by rank r.
func (p Partition) Range(r int) (lo, hi int64) { return p.offs[r], p.offs[r+1] }

// Count returns the number of vertices rank r owns.
func (p Partition) Count(r int) int64 { return p.offs[r+1] - p.offs[r] }

// Offsets returns the NP+1 boundary offsets (shared; do not modify).
func (p Partition) Offsets() []int64 { return p.offs }

// WordOffsets returns the per-rank boundaries in 64-bit words, for use as
// a bitmap allgather layout. All boundaries are word-aligned by
// construction.
func (p Partition) WordOffsets() []int64 {
	w := make([]int64, len(p.offs))
	for i, o := range p.offs {
		if o%64 != 0 && i != len(p.offs)-1 {
			panic("graph: partition boundary not word-aligned")
		}
		w[i] = (o + 63) / 64
	}
	return w
}
