// Package graph provides the distributed graph representation the
// paper's BFS runs on: a 1-D block partition of the vertex set over MPI
// ranks, a local CSR (compressed sparse row) adjacency structure per
// rank, a distributed construction path (Graph500 kernel 1: route each
// generated edge to the owners of both endpoints), and a sequential
// reference BFS used by the validator and the tests.
package graph

import "fmt"

// Partition is a 1-D block partition of vertices [0, N) over NP ranks.
// Rank boundaries are aligned to 64 vertices so that each rank's slice of
// a bitmap is a whole number of words — required for the allgather of
// in_queue segments (and true in the reference code, where N and NP are
// powers of two).
type Partition struct {
	N    int64
	NP   int
	offs []int64 // len NP+1; rank r owns [offs[r], offs[r+1])
	// uniform marks the equal-chunk NewPartition shape, enabling
	// Owner's single-division fast path; survivor repartitioning
	// (RemoveRank) clears it and Owner binary-searches instead.
	uniform bool
}

// NewPartition builds the partition. It panics if N < NP (every rank
// must own at least one vertex for the collectives to be meaningful).
func NewPartition(n int64, np int) Partition {
	if np < 1 || n < int64(np) {
		panic(fmt.Sprintf("graph: cannot partition %d vertices over %d ranks", n, np))
	}
	// Equal word-aligned chunks: ceil(n/np) rounded up to 64.
	chunk := (n + int64(np) - 1) / int64(np)
	chunk = (chunk + 63) &^ 63
	offs := make([]int64, np+1)
	for r := 1; r <= np; r++ {
		o := int64(r) * chunk
		if o > n {
			o = n
		}
		offs[r] = o
	}
	return Partition{N: n, NP: np, offs: offs, uniform: true}
}

// Owner returns the rank owning vertex v. Uniform partitions (every
// chunk the size of the first — the NewPartition shape) resolve with
// one division; non-uniform ones (after RemoveRank merges a dead rank's
// range into a neighbour) fall back to a binary search over the
// boundaries.
func (p Partition) Owner(v int64) int {
	chunk := p.offs[1] - p.offs[0]
	if chunk == 0 {
		return 0
	}
	if p.uniform {
		r := int(v / chunk)
		if r >= p.NP {
			r = p.NP - 1
		}
		return r
	}
	// Binary search: the largest r with offs[r] <= v.
	lo, hi := 0, p.NP-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.offs[mid] <= v {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// RemoveRank returns the partition with rank r's vertex range merged
// into a contiguous neighbour, and the index of the surviving rank that
// absorbed it (in the NEW partition's numbering). The predecessor
// absorbs (drop the boundary below r); rank 0's range goes to its
// successor. Every survivor keeps a contiguous, word-aligned range, so
// the bitmap allgather layouts stay valid.
func (p Partition) RemoveRank(r int) (Partition, int) {
	if p.NP < 2 {
		panic("graph: cannot remove the last rank of a partition")
	}
	if r < 0 || r >= p.NP {
		panic(fmt.Sprintf("graph: RemoveRank(%d) outside [0, %d)", r, p.NP))
	}
	offs := make([]int64, 0, p.NP)
	drop := r // drop boundary offs[r]: predecessor r-1 absorbs
	absorber := r - 1
	if r == 0 {
		drop = 1 // drop offs[1]: successor absorbs, becoming new rank 0
		absorber = 0
	}
	for i := range p.offs {
		if i == drop {
			continue
		}
		offs = append(offs, p.offs[i])
	}
	np := p.NP - 1
	// The merged chunk breaks uniformity unless every chunk already
	// matched it; recompute conservatively.
	out := Partition{N: p.N, NP: np, offs: offs}
	out.uniform = out.isUniform()
	return out, absorber
}

// isUniform reports whether offs[r] == min(r*chunk, N) for every r —
// the NewPartition shape Owner's division fast path requires.
func (p Partition) isUniform() bool {
	chunk := p.offs[1] - p.offs[0]
	if chunk == 0 {
		return true
	}
	for r := 0; r <= p.NP; r++ {
		want := int64(r) * chunk
		if want > p.N {
			want = p.N
		}
		if p.offs[r] != want {
			return false
		}
	}
	return true
}

// Range returns the vertex range [lo, hi) owned by rank r.
func (p Partition) Range(r int) (lo, hi int64) { return p.offs[r], p.offs[r+1] }

// Count returns the number of vertices rank r owns.
func (p Partition) Count(r int) int64 { return p.offs[r+1] - p.offs[r] }

// Offsets returns the NP+1 boundary offsets (shared; do not modify).
func (p Partition) Offsets() []int64 { return p.offs }

// WordOffsets returns the per-rank boundaries in 64-bit words, for use as
// a bitmap allgather layout. All boundaries are word-aligned by
// construction.
func (p Partition) WordOffsets() []int64 {
	w := make([]int64, len(p.offs))
	for i, o := range p.offs {
		if o%64 != 0 && i != len(p.offs)-1 {
			panic("graph: partition boundary not word-aligned")
		}
		w[i] = (o + 63) / 64
	}
	return w
}
