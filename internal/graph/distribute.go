package graph

import (
	"math"

	"numabfs/internal/collective"
	"numabfs/internal/mpi"
	"numabfs/internal/rmat"
)

// BuildDistributed is Graph500 kernel 1 in its distributed form: every
// rank generates its slice of the R-MAT edge list, routes each endpoint
// to the owner of that vertex (undirected: both directions), and builds
// its local CSR. Generation and construction costs are charged to the
// rank's virtual clock; the alltoallv charges communication. Returns the
// rank's local CSR.
func BuildDistributed(p *mpi.Proc, g *collective.Group, part Partition, params rmat.Params, dedup bool) *CSR {
	cfg := p.World().Config()
	np := g.Size()
	me := g.Pos(p.Rank())
	ne := params.NumEdges()
	lo := ne * int64(me) / int64(np)
	hi := ne * int64(me+1) / int64(np)

	send := make([][]int64, np)
	for i := lo; i < hi; i++ {
		u, v := params.EdgeAt(i)
		if u == v {
			continue
		}
		ou, ov := part.Owner(u), part.Owner(v)
		send[ou] = append(send[ou], u, v)
		send[ov] = append(send[ov], v, u)
	}
	// Generation: ~Scale quadrant draws of a few ops per edge.
	p.Compute(float64(hi-lo) * float64(params.Scale) * 6 * cfg.CPUOpNs)

	recv := g.AlltoallvInt64(p, send)

	var pairs []int64
	for _, r := range recv {
		pairs = append(pairs, r...)
	}
	vlo, vhi := part.Range(me)
	csr := BuildCSR(vlo, vhi, pairs, dedup)

	// Construction: counting sort passes stream the pair list twice, and
	// per-row sorting costs ~m log(avg degree) comparisons.
	m := float64(len(pairs) / 2)
	logd := math.Log2(1 + m/math.Max(1, float64(vhi-vlo)))
	p.Compute(m*16/cfg.MemBWPerSocket + m*logd*4*cfg.CPUOpNs)
	return csr
}
