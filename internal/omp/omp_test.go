package omp

import (
	"testing"

	"numabfs/internal/machine"
)

func team(threads int) Team {
	return Team{Cfg: machine.TableI(), Threads: threads, SocketsUsed: 1, BWShare: 1}
}

func TestForVisitsWholeRange(t *testing.T) {
	tm := team(8)
	var visited int64
	var chunks int
	res := tm.For(1000, 64, func(lo, hi int64, load *machine.PhaseLoad) {
		if lo < 0 || hi > 1000 || lo >= hi {
			t.Fatalf("bad chunk [%d, %d)", lo, hi)
		}
		visited += hi - lo
		chunks++
		load.CPUOps = hi - lo
	})
	if visited != 1000 {
		t.Fatalf("visited %d of 1000", visited)
	}
	if want := (1000 + 63) / 64; chunks != want {
		t.Fatalf("chunks = %d, want %d", chunks, want)
	}
	if res.Ns <= 0 {
		t.Fatalf("Ns = %g", res.Ns)
	}
	if res.Imbalance < 1 {
		t.Fatalf("Imbalance = %g < 1", res.Imbalance)
	}
}

func TestForZeroIterations(t *testing.T) {
	tm := team(4)
	res := tm.For(0, 64, func(lo, hi int64, load *machine.PhaseLoad) {
		t.Fatal("body called for empty range")
	})
	if res.Ns != 0 {
		t.Fatalf("Ns = %g for empty loop", res.Ns)
	}
}

func TestForDefaultChunk(t *testing.T) {
	tm := team(2)
	var chunks int
	tm.For(DefaultChunk*3, 0, func(lo, hi int64, load *machine.PhaseLoad) { chunks++ })
	if chunks != 3 {
		t.Fatalf("chunks = %d, want 3 with default chunk", chunks)
	}
}

func TestMoreThreadsFaster(t *testing.T) {
	work := func(tm Team) float64 {
		res := tm.For(1<<16, 256, func(lo, hi int64, load *machine.PhaseLoad) {
			load.Random = append(load.Random, machine.Access{
				Count: hi - lo, StructBytes: 1 << 30, Loc: machine.Local,
			})
		})
		return res.Ns
	}
	t1, t8 := work(team(1)), work(team(8))
	if t8 >= t1 {
		t.Fatalf("8 threads (%g) not faster than 1 (%g)", t8, t1)
	}
}

func TestImbalanceWithSkewedChunks(t *testing.T) {
	// One enormous chunk among tiny ones: the worker owning it
	// dominates, so the region cost approaches the serial cost of the
	// big chunk rather than total/threads.
	tm := team(8)
	res := tm.For(8*64, 64, func(lo, hi int64, load *machine.PhaseLoad) {
		if lo == 0 {
			load.CPUOps = 1 << 20
		} else {
			load.CPUOps = 1
		}
	})
	if res.Imbalance < 4 {
		t.Fatalf("Imbalance = %g, want >> 1 for one hot chunk", res.Imbalance)
	}
}

func TestForBalancedLimitsWorkers(t *testing.T) {
	tm := team(64)
	load := machine.PhaseLoad{CPUOps: 1 << 20}
	// 100 items in chunks of 256 -> a single worker can run.
	one := tm.ForBalanced(100, 256, load)
	all := tm.ForBalanced(1<<20, 256, load)
	if one <= all {
		t.Fatalf("few-item region (%g) should cost more than well-split one (%g)", one, all)
	}
	serial := tm.Serial(load)
	if diff := one - serial; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("single-chunk region %g != serial %g", one, serial)
	}
}

func TestSerialAndParallel(t *testing.T) {
	tm := team(8)
	load := machine.PhaseLoad{CPUOps: 800}
	s, p := tm.Serial(load), tm.Parallel(load)
	if s <= p {
		t.Fatalf("serial %g should exceed parallel %g", s, p)
	}
}

func TestTeamFor(t *testing.T) {
	cfg := machine.TableI()
	pl := machine.PlacementFor(cfg, machine.PPN8Bind)
	tm := TeamFor(cfg, pl)
	if tm.Threads != cfg.CoresPerSocket || tm.SocketsUsed != 1 || tm.BWShare != 1 {
		t.Fatalf("TeamFor(bind) = %+v", tm)
	}
}
