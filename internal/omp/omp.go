// Package omp models the OpenMP worksharing layer of the paper's hybrid
// MPI/OpenMP BFS: each rank runs a team of threads over its local
// vertices with a dynamic, chunked schedule (the paper uses the OpenMP
// dynamic scheduler "to avoid load-balance problems").
//
// Execution is real but sequential within a rank: chunks run in the
// rank's goroutine and their modelled costs are attributed to virtual
// workers in round-robin order — the steady-state assignment a dynamic
// scheduler converges to under fine chunking. This keeps virtual time
// fully deterministic (independent of host scheduling and host core
// count) while still letting genuine load imbalance — skewed degree
// distributions, chunk counts smaller than the team — show up as a longer
// modelled phase.
package omp

import "numabfs/internal/machine"

// DefaultChunk is the dynamic-schedule chunk size in loop iterations.
const DefaultChunk = 1024

// Team describes the modelled execution resources of one rank: its thread
// count, the sockets it spans, and its share of node-wide bandwidth
// domains (see machine.Placement).
type Team struct {
	Cfg         machine.Config
	Threads     int
	SocketsUsed int
	BWShare     float64
}

// TeamFor builds the team a placement gives each rank.
func TeamFor(cfg machine.Config, pl machine.Placement) Team {
	return Team{
		Cfg:         cfg,
		Threads:     pl.ThreadsPerProc,
		SocketsUsed: pl.SocketsPerProc,
		BWShare:     pl.BWShare,
	}
}

// Result summarizes one parallel-for region.
type Result struct {
	// Ns is the modelled wall time of the region: the aggregate phase
	// cost at full team parallelism, stretched by the observed worker
	// imbalance.
	Ns float64
	// Imbalance is max worker time over mean worker time (>= 1).
	Imbalance float64
	// Load is the aggregate work of the region.
	Load machine.PhaseLoad
}

// For runs body over [0, n) in chunks of `chunk` iterations and returns
// the modelled region cost. body fills in the chunk's PhaseLoad; the
// chunk's cost is attributed to worker (chunkIndex mod Threads).
func (t Team) For(n, chunk int64, body func(lo, hi int64, load *machine.PhaseLoad)) Result {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	threads := t.Threads
	if threads < 1 {
		threads = 1
	}
	workerNs := make([]float64, threads)
	var agg machine.PhaseLoad
	var ci int64
	for lo := int64(0); lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		var load machine.PhaseLoad
		body(lo, hi, &load)
		workerNs[ci%int64(threads)] += t.Cfg.PhaseTime(load, 1, t.SocketsUsed, t.BWShare)
		agg.Add(load)
		ci++
	}
	ideal := t.Cfg.PhaseTime(agg, threads, t.SocketsUsed, t.BWShare)
	imb := imbalance(workerNs)
	return Result{Ns: ideal * imb, Imbalance: imb, Load: agg}
}

// ForBalanced charges a region of `items` independent work units (e.g.
// the frontier's edges, which the reference code's dynamic scheduler
// splits without regard to vertex boundaries): only min(Threads,
// ceil(items/chunk)) workers can be busy, but among them the work is
// evenly divided. Returns the modelled region time.
func (t Team) ForBalanced(items, chunk int64, load machine.PhaseLoad) float64 {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	eff := t.Threads
	if eff < 1 {
		eff = 1
	}
	if items <= 0 {
		eff = 1
	} else if chunks := (items + chunk - 1) / chunk; int64(eff) > chunks {
		eff = int(chunks)
	}
	return t.Cfg.PhaseTime(load, eff, t.SocketsUsed, t.BWShare)
}

// Serial charges a region executed by a single thread of the team (e.g.
// the rank's summary rebuild between communication steps).
func (t Team) Serial(load machine.PhaseLoad) float64 {
	return t.Cfg.PhaseTime(load, 1, t.SocketsUsed, t.BWShare)
}

// Parallel charges a region executed by the whole team with perfect
// balance (e.g. a bulk bitmap conversion).
func (t Team) Parallel(load machine.PhaseLoad) float64 {
	return t.Cfg.PhaseTime(load, t.Threads, t.SocketsUsed, t.BWShare)
}

// imbalance returns max/mean over workers with non-zero total, or 1.
func imbalance(ws []float64) float64 {
	var sum, max float64
	for _, w := range ws {
		sum += w
		if w > max {
			max = w
		}
	}
	if sum == 0 {
		return 1
	}
	mean := sum / float64(len(ws))
	if mean == 0 {
		return 1
	}
	if max < mean {
		return 1
	}
	return max / mean
}
