package bfs2d

// Acceptance tests giving the 2-D engine the same guarantees the 1-D
// engine's determinism/loss/fault suites pin down: bit-identical
// results across repeats and host core counts (including through the
// hybrid ladder, wire compression, lossy links and crash recovery), an
// empty plan as an exact identity, and loss/crash plans that perturb
// only time, never the traversal.

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"numabfs/internal/fault"
	"numabfs/internal/machine"
	"numabfs/internal/obs"
	"numabfs/internal/rmat"
	"numabfs/internal/trace"
	"numabfs/internal/wire"
)

// signature2d compresses everything a RootResult guarantees to be
// deterministic, plus the full parent array, into one comparable
// string — the 2-D analogue of the 1-D suite's signature().
func signature2d(r *Runner, res RootResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%x bd=%x e=%d v=%d lv=%d",
		res.TimeNs, res.Breakdown.Total(), res.TraversedEdges, res.Visited, res.Levels)
	for _, ls := range res.LevelStats {
		fmt.Fprintf(&b, " %d/%d/%v/%x", ls.NF, ls.MF, ls.BottomUp, ls.Ns)
	}
	for _, p := range r.Parents() {
		fmt.Fprintf(&b, ",%d", p)
	}
	return b.String()
}

func runWithPlan2D(t *testing.T, mode Mode, compress bool, plan *fault.Plan) (*Runner, RootResult) {
	t.Helper()
	const scale = 12
	params := rmat.Graph500(scale)
	r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, Grid{R: 2, C: 4}, params)
	if err != nil {
		t.Fatal(err)
	}
	r.Mode = mode
	r.Compress = compress
	r.Setup()
	if plan != nil {
		if err := r.InjectFaults(*plan); err != nil {
			t.Fatal(err)
		}
	}
	root := params.Roots(1, r.HasEdgeGlobal)[0]
	return r, r.RunRoot(root)
}

// TestBFS2DDeterministicAcrossHostParallelism: virtual time, breakdown,
// level stats and parent trees must be bit-identical across host core
// counts for every rung of the 2-D ladder.
func TestBFS2DDeterministicAcrossHostParallelism(t *testing.T) {
	for _, c := range []struct {
		mode     Mode
		compress bool
	}{
		{ModeTopDown, false},
		{ModeHybrid, false},
		{ModeHybrid, true},
		{ModeBottomUp, true},
	} {
		t.Run(fmt.Sprintf("%s-compress=%v", c.mode, c.compress), func(t *testing.T) {
			run := func() string {
				r, res := runWithPlan2D(t, c.mode, c.compress, nil)
				return signature2d(r, res)
			}
			prev := runtime.GOMAXPROCS(1)
			s1 := run()
			repeat := run()
			runtime.GOMAXPROCS(4)
			s4 := run()
			runtime.GOMAXPROCS(prev)
			if s1 != repeat {
				t.Fatalf("2-D run not repeatable:\n%.160s...\n%.160s...", s1, repeat)
			}
			if s1 != s4 {
				t.Fatalf("host parallelism leaked into 2-D results:\nGOMAXPROCS=1 %.160s...\nGOMAXPROCS=4 %.160s...", s1, s4)
			}
		})
	}
}

// TestBFS2DDeterministicWithTracing: recording must neither perturb the
// hybrid engine's virtual time nor itself depend on host scheduling.
func TestBFS2DDeterministicWithTracing(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	run := func() (string, []byte) {
		r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, Grid{R: 2, C: 4}, params)
		if err != nil {
			t.Fatal(err)
		}
		r.Mode = ModeHybrid
		rec := obs.NewRecorder()
		r.AttachObs(rec.NewSession("2d determinism"))
		r.Setup()
		root := params.Roots(1, r.HasEdgeGlobal)[0]
		res := r.RunRoot(root)
		data, err := rec.ChromeTraceJSON()
		if err != nil {
			t.Fatal(err)
		}
		return signature2d(r, res), data
	}
	prev := runtime.GOMAXPROCS(1)
	s1, d1 := run()
	runtime.GOMAXPROCS(4)
	s4, d4 := run()
	runtime.GOMAXPROCS(prev)
	if s1 != s4 {
		t.Fatalf("results differ under tracing:\n%.160s...\n%.160s...", s1, s4)
	}
	if string(d1) != string(d4) {
		t.Fatal("2-D trace bytes depend on host parallelism")
	}

	r, res := runWithPlan2D(t, ModeHybrid, false, nil)
	if got := signature2d(r, res); got != s1 {
		t.Fatalf("tracing changed 2-D results:\nuntraced %.160s...\ntraced   %.160s...", got, s1)
	}
}

// TestBFS2DEmptyPlanIsExactIdentity: a zero-value plan must leave every
// output bit-identical to a run with no injector call at all.
func TestBFS2DEmptyPlanIsExactIdentity(t *testing.T) {
	rBase, base := runWithPlan2D(t, ModeHybrid, false, nil)
	rPlan, withPlan := runWithPlan2D(t, ModeHybrid, false, &fault.Plan{})
	if sb, sp := signature2d(rBase, base), signature2d(rPlan, withPlan); sb != sp {
		t.Fatalf("empty plan perturbed the 2-D run:\nbase %.120s...\nplan %.120s...", sb, sp)
	}
	if base.CommBytes != withPlan.CommBytes || base.RawCommBytes != withPlan.RawCommBytes {
		t.Fatalf("empty plan perturbed comm volume: %d/%d vs %d/%d",
			base.CommBytes, base.RawCommBytes, withPlan.CommBytes, withPlan.RawCommBytes)
	}
}

// TestBFS2DLossPlanPreservesResults: with drop/dup/reorder/corrupt
// active on every link, every rung of the 2-D ladder must cost more
// virtual time and real retransmits — and keep the identical parent
// tree at every level.
func TestBFS2DLossPlanPreservesResults(t *testing.T) {
	for _, c := range []struct {
		mode     Mode
		compress bool
	}{
		{ModeTopDown, false},
		{ModeHybrid, true},
	} {
		t.Run(fmt.Sprintf("%s-compress=%v", c.mode, c.compress), func(t *testing.T) {
			rBase, base := runWithPlan2D(t, c.mode, c.compress, nil)
			if base.Breakdown.Ns[trace.Xport] != 0 || base.Xport.Retransmits != 0 {
				t.Fatalf("clean run charged transport: %+v", base.Xport)
			}
			plan := fault.Lossy(2026, 0.05)
			r, res := runWithPlan2D(t, c.mode, c.compress, &plan)
			if res.TEPS <= 0 {
				t.Fatalf("lossy 2-D run did not finish: %+v", res)
			}
			if res.Xport.Retransmits == 0 || res.Xport.Acks == 0 {
				t.Fatalf("5%% loss produced no transport work: %+v", res.Xport)
			}
			if res.Xport.OverheadBytes <= 0 || res.Xport.OverheadBytes >= res.CommBytes {
				t.Fatalf("overhead %d outside (0, comm %d)", res.Xport.OverheadBytes, res.CommBytes)
			}
			if res.TimeNs <= base.TimeNs {
				t.Fatalf("loss cost no time: %g vs clean %g", res.TimeNs, base.TimeNs)
			}
			if res.Breakdown.Ns[trace.Xport] <= 0 {
				t.Fatalf("no transport stall in breakdown under loss: %v", res.Breakdown.Ns)
			}
			// The traversal itself — parents, per-level frontier counts,
			// direction choices — must be untouched by the transport.
			if res.TraversedEdges != base.TraversedEdges || res.Visited != base.Visited {
				t.Fatalf("traversal differs under loss: %d/%d vs %d/%d",
					res.TraversedEdges, res.Visited, base.TraversedEdges, base.Visited)
			}
			if len(res.LevelStats) != len(base.LevelStats) {
				t.Fatalf("level count differs under loss: %d vs %d", len(res.LevelStats), len(base.LevelStats))
			}
			for k := range res.LevelStats {
				if res.LevelStats[k].NF != base.LevelStats[k].NF ||
					res.LevelStats[k].MF != base.LevelStats[k].MF ||
					res.LevelStats[k].BottomUp != base.LevelStats[k].BottomUp {
					t.Fatalf("level %d differs under loss: %+v vs %+v", k+1, res.LevelStats[k], base.LevelStats[k])
				}
			}
			pb, pl := rBase.Parents(), r.Parents()
			for v := range pb {
				if pb[v] != pl[v] {
					t.Fatalf("parent tree differs under loss at vertex %d: %d vs %d", v, pl[v], pb[v])
				}
			}
		})
	}
}

// TestBFS2DLossDeterministicAcrossHostParallelism: lossy hybrid runs
// must be bit-identical across repeats and host core counts.
func TestBFS2DLossDeterministicAcrossHostParallelism(t *testing.T) {
	plan := fault.Lossy(42, 0.05)
	plan.JitterMaxNs = 200
	run := func() string {
		p := plan
		r, res := runWithPlan2D(t, ModeHybrid, true, &p)
		if res.Xport.Retransmits == 0 {
			t.Fatal("loss plan produced no retransmits")
		}
		return signature2d(r, res)
	}
	prev := runtime.GOMAXPROCS(1)
	s1 := run()
	repeat := run()
	runtime.GOMAXPROCS(4)
	s4 := run()
	runtime.GOMAXPROCS(prev)
	if s1 != repeat {
		t.Fatalf("lossy 2-D run not repeatable:\n%.160s...\n%.160s...", s1, repeat)
	}
	if s1 != s4 {
		t.Fatalf("host parallelism leaked into lossy 2-D results:\nGOMAXPROCS=1 %.160s...\nGOMAXPROCS=4 %.160s...", s1, s4)
	}
}

// TestBFS2DCrashRecoveryCompletesWithSameTree: a crashed rank must
// recover by full rerun — finite TEPS, identical BFS tree, the recovery
// cost visible in the breakdown and the crash/recover events in the obs
// metrics report — instead of panicking.
func TestBFS2DCrashRecoveryCompletesWithSameTree(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	rBase, base := runWithPlan2D(t, ModeHybrid, false, nil)

	for _, frac := range []float64{0, 0.5} {
		plan := fault.Plan{Crashes: []fault.Crash{{Rank: 1, AtNs: frac * base.TimeNs}}}
		r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, Grid{R: 2, C: 4}, params)
		if err != nil {
			t.Fatal(err)
		}
		r.Mode = ModeHybrid
		rec := obs.NewRecorder()
		r.AttachObs(rec.NewSession(fmt.Sprintf("2d-crash-%g", frac)))
		r.Setup()
		if err := r.InjectFaults(plan); err != nil {
			t.Fatal(err)
		}
		res := r.RunRoot(base.Root)

		if len(res.Faults) != 1 || res.Faults[0].Rank != 1 {
			t.Fatalf("frac %g: Faults = %+v, want one crash of rank 1", frac, res.Faults)
		}
		if res.TEPS <= 0 || res.TimeNs <= base.TimeNs {
			t.Fatalf("frac %g: TEPS %g, TimeNs %g (base %g): recovery must cost time and still finish",
				frac, res.TEPS, res.TimeNs, base.TimeNs)
		}
		if res.TraversedEdges != base.TraversedEdges || res.Visited != base.Visited {
			t.Fatalf("frac %g: traversal differs: %d/%d vs base %d/%d",
				frac, res.TraversedEdges, res.Visited, base.TraversedEdges, base.Visited)
		}
		pb, pr := rBase.Parents(), r.Parents()
		for v := range pb {
			if pb[v] != pr[v] {
				t.Fatalf("frac %g: parent tree differs at vertex %d: %d vs %d", frac, v, pr[v], pb[v])
			}
		}
		if res.Breakdown.Ns[trace.Recovery] <= 0 {
			t.Errorf("frac %g: no recovery time in breakdown", frac)
		}
		report := rec.BuildReport().String()
		if !strings.Contains(report, "fault events:") ||
			!strings.Contains(report, "crash=1") || !strings.Contains(report, "recover=") {
			t.Errorf("frac %g: metrics report missing fault events:\n%s", frac, report)
		}
	}
}

// TestBFS2DFoldCompressionLedger: with Compress on, the fold alltoallv
// must actually travel in list format — fewer wire bytes than raw, the
// raw ledger equal to the uncompressed volume, and the codec stats
// internally consistent.
func TestBFS2DFoldCompressionLedger(t *testing.T) {
	rPlain, plain := runWithPlan2D(t, ModeTopDown, false, nil)
	rComp, comp := runWithPlan2D(t, ModeTopDown, true, nil)
	_ = rPlain

	if comp.RawCommBytes != plain.CommBytes {
		t.Fatalf("compressed raw volume %d != plain volume %d", comp.RawCommBytes, plain.CommBytes)
	}
	if comp.CommBytes >= plain.CommBytes {
		t.Fatalf("compressed wire bytes %d not below plain %d", comp.CommBytes, plain.CommBytes)
	}
	// The fold pairs go through their own codec in list format; the
	// aggregate Wire ledger must reflect both expand and fold traffic.
	var foldSegs int64
	for _, rs := range rComp.states {
		if rs.foldCodec == nil {
			t.Fatal("Compress set but foldCodec nil")
		}
		st := rs.foldCodec.Stats()
		foldSegs += st.Segments[wire.FormatList]
		for f, n := range st.Segments {
			if wire.Format(f) != wire.FormatList && n != 0 {
				t.Fatalf("fold codec used non-list format %d: %+v", f, st)
			}
		}
	}
	if foldSegs == 0 {
		t.Fatal("fold codec encoded no list segments")
	}
	if comp.Wire.RawBytes == 0 || comp.Wire.WireBytes == 0 || comp.Wire.WireBytes >= comp.Wire.RawBytes {
		t.Fatalf("aggregate wire ledger inconsistent: %+v", comp.Wire)
	}
	if plain.Wire.RawBytes != 0 {
		t.Fatalf("uncompressed run accumulated wire stats: %+v", plain.Wire)
	}
}

// TestPermanentCrashPromotesSpare2D: with hot spares parked, a
// permanent rank death remaps the dead rank's grid cell onto a spare
// and the rerun completes on the remapped grid — same traversal as the
// clean spared run, bit-identical across repeats, with the detection
// delay and the cell re-own cost in MTTR. A second permanent death
// promotes again; with no spare left (the zero-spare runner) a
// permanent crash falls back to rerun-in-place.
func TestPermanentCrashPromotesSpare2D(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	build := func() *Runner {
		// 8 ranks, 4 parked spares: the 4 grid cells divide the 4096
		// vertices evenly.
		r, err := NewRunnerSpares(testConfig(scale, 2, 4), machine.PPN8Bind, Grid{R: 2, C: 2}, params, 4)
		if err != nil {
			t.Fatal(err)
		}
		r.Setup()
		return r
	}

	clean := build()
	root := params.Roots(1, clean.HasEdgeGlobal)[0]
	cleanRes := clean.RunRoot(root)
	if cleanRes.Epoch != 0 {
		t.Fatalf("clean spared run stepped the epoch to %d", cleanRes.Epoch)
	}

	run := func() (*Runner, RootResult) {
		r := build()
		plan := fault.Plan{Crashes: []fault.Crash{{Rank: 2, AtNs: 0.5 * cleanRes.TimeNs, Permanent: true}}}
		if err := r.InjectFaults(plan); err != nil {
			t.Fatal(err)
		}
		return r, r.RunRoot(root)
	}
	r, res := run()
	if len(res.Faults) != 1 || !res.Faults[0].Permanent {
		t.Fatalf("Faults = %+v, want one permanent crash", res.Faults)
	}
	if res.Epoch != 1 {
		t.Fatalf("epoch %d after one promotion, want 1", res.Epoch)
	}
	if res.MTTRNs <= 0 {
		t.Errorf("MTTRNs = %g, want > 0", res.MTTRNs)
	}
	if res.Breakdown.Ns[trace.Reown] <= 0 {
		t.Errorf("no Reown time in the breakdown")
	}
	if res.Visited != cleanRes.Visited || res.TraversedEdges != cleanRes.TraversedEdges {
		t.Fatalf("traversal differs: %d/%d vs clean %d/%d",
			res.Visited, res.TraversedEdges, cleanRes.Visited, cleanRes.TraversedEdges)
	}
	// The grid shape and every block range survive the remap, and the
	// rerun replays the clean schedule: parent trees are bit-identical.
	cp, rp := clean.Parents(), r.Parents()
	for v := range rp {
		if rp[v] != cp[v] {
			t.Fatalf("parent of %d differs after promotion: %d vs %d", v, rp[v], cp[v])
		}
	}
	// Bit-identical across repeats.
	r2, res2 := run()
	if s1, s2 := signature2d(r, res), signature2d(r2, res2); s1 != s2 {
		t.Fatalf("promoted run not deterministic:\n1st %.160s...\n2nd %.160s...", s1, s2)
	}

	// Two permanent deaths, two promotions.
	r3 := build()
	if err := r3.InjectFaults(fault.Plan{Crashes: []fault.Crash{
		{Rank: 2, AtNs: 0.5 * cleanRes.TimeNs, Permanent: true},
		{Rank: 1, AtNs: 0.6 * cleanRes.TimeNs, Permanent: true},
	}}); err != nil {
		t.Fatal(err)
	}
	res3 := r3.RunRoot(root)
	if len(res3.Faults) != 2 || res3.Epoch != 2 {
		t.Fatalf("two permanent crashes: faults %d, epoch %d, want 2/2", len(res3.Faults), res3.Epoch)
	}
	if res3.Visited != cleanRes.Visited {
		t.Fatalf("visited %d vs clean %d", res3.Visited, cleanRes.Visited)
	}

	// No spares: a permanent crash falls back to the historical
	// rerun-in-place, epoch untouched.
	r4, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, Grid{R: 2, C: 4}, params)
	if err != nil {
		t.Fatal(err)
	}
	r4.Setup()
	if err := r4.InjectFaults(fault.Plan{Crashes: []fault.Crash{
		{Rank: 2, AtNs: 0.5 * cleanRes.TimeNs, Permanent: true},
	}}); err != nil {
		t.Fatal(err)
	}
	res4 := r4.RunRoot(root)
	if len(res4.Faults) != 1 || res4.Epoch != 0 {
		t.Fatalf("no-spare fallback: faults %d, epoch %d, want 1/0", len(res4.Faults), res4.Epoch)
	}
}

// TestSpareGridValidates2D: the Graph500 tree rules hold on the
// remapped grid, including when cell 0 itself is remapped (the
// cell→rank table, not rank arithmetic, must drive block ownership).
func TestSpareGridValidates2D(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	r, err := NewRunnerSpares(testConfig(scale, 2, 4), machine.PPN8Bind, Grid{R: 2, C: 2}, params, 4)
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	root := params.Roots(1, r.HasEdgeGlobal)[0]
	probe := r.RunRoot(root)
	if err := r.InjectFaults(fault.Plan{Crashes: []fault.Crash{
		{Rank: 0, AtNs: 0.4 * probe.TimeNs, Permanent: true}, // cell 0 dies: cellRank[0] remaps
	}}); err != nil {
		t.Fatal(err)
	}
	res := r.RunRoot(root)
	if res.Epoch != 1 {
		t.Fatalf("epoch %d, want 1", res.Epoch)
	}
	parent, level := r.Parents(), r.Levels(root)
	if parent[root] != root || level[root] != 0 {
		t.Fatalf("root: parent %d level %d", parent[root], level[root])
	}
	for v := int64(0); v < int64(len(parent)); v++ {
		pv := parent[v]
		if pv < 0 || v == root {
			continue
		}
		if !r.HasEdge(v, pv) {
			t.Fatalf("tree edge (%d, %d) is not a graph edge", v, pv)
		}
		if level[v] != level[pv]+1 {
			t.Fatalf("vertex %d at level %d, parent %d at level %d", v, level[v], pv, level[pv])
		}
	}
}
