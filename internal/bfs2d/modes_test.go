package bfs2d

import (
	"fmt"
	"testing"

	"numabfs/internal/graph"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
)

// TestBFS2DModesMatchReference: the hybrid and bottom-up 2-D ladders
// must produce exactly the reference traversal (levels, visited count),
// with and without wire compression, across grid shapes.
func TestBFS2DModesMatchReference(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	ref := graph.BuildGlobal(params, true)
	roots := params.Roots(3, ref.HasEdge)

	for _, mode := range []Mode{ModeHybrid, ModeBottomUp} {
		for _, compress := range []bool{false, true} {
			for _, grid := range []Grid{{R: 2, C: 4}, {R: 4, C: 2}, {R: 1, C: 8}, {R: 8, C: 1}} {
				name := fmt.Sprintf("%s-compress=%v-grid%dx%d", mode, compress, grid.R, grid.C)
				t.Run(name, func(t *testing.T) {
					r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, grid, params)
					if err != nil {
						t.Fatal(err)
					}
					r.Mode = mode
					r.Compress = compress
					r.Setup()
					for _, root := range roots {
						res := r.RunRoot(root)
						wantLevel, _ := graph.ReferenceBFS(ref, root)
						got := r.Levels(root)
						for v := range got {
							if got[v] != wantLevel[v] {
								t.Fatalf("root %d vertex %d: level %d, want %d", root, v, got[v], wantLevel[v])
							}
						}
						var wantVisited int64
						for _, l := range wantLevel {
							if l >= 0 {
								wantVisited++
							}
						}
						if res.Visited != wantVisited {
							t.Errorf("root %d: visited %d, want %d", root, res.Visited, wantVisited)
						}
						if mode == ModeBottomUp && res.Breakdown.BULevels == 0 {
							t.Errorf("root %d: bottom-up mode ran no bottom-up levels", root)
						}
						if mode == ModeHybrid && res.Breakdown.TDLevels == 0 {
							t.Errorf("root %d: hybrid mode ran no top-down levels", root)
						}
					}
				})
			}
		}
	}
}

// TestBFS2DHybridSwitches: on a Graph500 R-MAT graph at this scale the
// hybrid heuristic must actually take bottom-up levels (that is the
// whole point of the ladder), and record the direction and frontier
// sizes in LevelStats.
func TestBFS2DHybridSwitches(t *testing.T) {
	const scale = 14
	params := rmat.Graph500(scale)
	r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, Grid{R: 2, C: 4}, params)
	if err != nil {
		t.Fatal(err)
	}
	r.Mode = ModeHybrid
	r.Setup()
	root := params.Roots(1, r.HasEdgeGlobal)[0]
	res := r.RunRoot(root)
	if res.Breakdown.BULevels == 0 {
		t.Fatalf("hybrid ran only top-down levels: %+v", res.Breakdown)
	}
	if res.Breakdown.TDLevels == 0 {
		t.Fatalf("hybrid ran only bottom-up levels: %+v", res.Breakdown)
	}
	if len(res.LevelStats) != res.Levels {
		t.Fatalf("LevelStats has %d entries, want %d", len(res.LevelStats), res.Levels)
	}
	var sawBU, sawMF bool
	var nfSum int64
	for k, ls := range res.LevelStats {
		if ls.Level != k+1 {
			t.Fatalf("LevelStats[%d].Level = %d", k, ls.Level)
		}
		if ls.BottomUp {
			sawBU = true
		}
		if ls.MF > 0 {
			sawMF = true
		}
		nfSum += ls.NF
	}
	if !sawBU {
		t.Fatal("no LevelStat marked bottom-up")
	}
	if !sawMF {
		t.Fatal("no LevelStat carries a frontier edge count")
	}
	if nfSum != res.Visited-1 {
		t.Fatalf("LevelStats NF sum %d, want visited-1 = %d", nfSum, res.Visited-1)
	}
}

// TestBFS2DLegacyUnchanged: ModeTopDown (the zero value) must produce
// the same virtual time, breakdown and volume whether or not the new
// mode machinery is compiled in — guarded here by checking a pure
// top-down run is insensitive to the hybrid-only knobs.
func TestBFS2DLegacyUnchanged(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	build := func(alpha, beta float64) RootResult {
		r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, Grid{R: 2, C: 4}, params)
		if err != nil {
			t.Fatal(err)
		}
		r.Alpha, r.Beta = alpha, beta
		r.Setup()
		return r.RunRoot(params.Roots(1, r.HasEdgeGlobal)[0])
	}
	a := build(0, 0)
	b := build(99, 2)
	if a.TimeNs != b.TimeNs || a.Breakdown != b.Breakdown || a.CommBytes != b.CommBytes {
		t.Fatalf("top-down run depends on hybrid knobs: %+v vs %+v", a, b)
	}
	// A clean uncompressed run keeps the new ledgers exactly zero, as
	// the 1-D engine does.
	if a.Xport != (RootResult{}.Xport) || a.Wire.RawBytes != 0 || len(a.Faults) != 0 {
		t.Fatalf("clean top-down run has nonzero fault/wire ledgers: %+v", a)
	}
}
