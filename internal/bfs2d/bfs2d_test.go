package bfs2d

import (
	"fmt"
	"testing"

	"numabfs/internal/graph"
	"numabfs/internal/machine"
	"numabfs/internal/obs"
	"numabfs/internal/rmat"
)

func testConfig(scale, nodes, sockets int) machine.Config {
	cfg := machine.Scaled(scale, scale+12)
	cfg.Nodes = nodes
	cfg.SocketsPerNode = sockets
	cfg.WeakNode = -1
	return cfg
}

func TestDefaultGrid(t *testing.T) {
	cases := []struct{ np, r, c int }{
		{1, 1, 1}, {4, 2, 2}, {8, 2, 4}, {16, 4, 4}, {64, 8, 8}, {128, 8, 16},
		{6, 1, 6}, // non-power-of-two falls back to a row
	}
	for _, c := range cases {
		g := DefaultGrid(c.np)
		if g.R != c.r || g.C != c.c {
			t.Errorf("DefaultGrid(%d) = %dx%d, want %dx%d", c.np, g.R, g.C, c.r, c.c)
		}
		if g.R*g.C != c.np {
			t.Errorf("DefaultGrid(%d) does not cover all ranks", c.np)
		}
	}
}

func TestGridMappingRoundTrip(t *testing.T) {
	cfg := testConfig(12, 2, 4)
	r, err := NewRunner(cfg, machine.PPN8Bind, Grid{R: 2, C: 4}, rmat.Graph500(12))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			rank := r.rankOf(i, j)
			gi, gj := r.gridOf(rank)
			if gi != i || gj != j {
				t.Fatalf("gridOf(rankOf(%d,%d)) = (%d,%d)", i, j, gi, gj)
			}
			if seen[rank] {
				t.Fatalf("rank %d mapped twice", rank)
			}
			seen[rank] = true
		}
	}
	// Every vertex's owner must sit in the grid row its block hashes to.
	n := r.Params.NumVertices()
	for _, v := range []int64{0, 1, n / 3, n / 2, n - 1} {
		owner := r.ownerOf(v)
		i, _ := r.gridOf(owner)
		if !r.rowOwns(i, v) {
			t.Fatalf("vertex %d: owner rank %d in wrong grid row", v, owner)
		}
	}
}

func TestBFS2DMatchesReference(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	ref := graph.BuildGlobal(params, true)
	roots := params.Roots(3, ref.HasEdge)

	for _, geo := range []struct {
		nodes, sockets int
		grid           Grid
	}{
		{2, 4, Grid{R: 2, C: 4}},
		{2, 4, Grid{R: 4, C: 2}},
		{1, 4, Grid{R: 2, C: 2}},
	} {
		name := fmt.Sprintf("%dx%d-grid%dx%d", geo.nodes, geo.sockets, geo.grid.R, geo.grid.C)
		t.Run(name, func(t *testing.T) {
			r, err := NewRunner(testConfig(scale, geo.nodes, geo.sockets), machine.PPN8Bind, geo.grid, params)
			if err != nil {
				t.Fatal(err)
			}
			r.Setup()
			for _, root := range roots {
				res := r.RunRoot(root)
				wantLevel, _ := graph.ReferenceBFS(ref, root)
				got := r.Levels(root)
				for v := range got {
					if got[v] != wantLevel[v] {
						t.Fatalf("root %d vertex %d: level %d, want %d", root, v, got[v], wantLevel[v])
					}
				}
				var wantVisited int64
				for _, l := range wantLevel {
					if l >= 0 {
						wantVisited++
					}
				}
				if res.Visited != wantVisited {
					t.Errorf("root %d: visited %d, want %d", root, res.Visited, wantVisited)
				}
				if res.TimeNs <= 0 || res.CommBytes <= 0 {
					t.Errorf("root %d: missing time/volume: %+v", root, res)
				}
			}
		})
	}
}

func TestBFS2DDeterministic(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	times := make([]float64, 2)
	for k := range times {
		r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, Grid{R: 2, C: 4}, params)
		if err != nil {
			t.Fatal(err)
		}
		r.Setup()
		res := r.RunRoot(params.Roots(1, func(v int64) bool { return true })[0])
		times[k] = res.TimeNs
	}
	if times[0] != times[1] {
		t.Fatalf("2-D virtual time not deterministic: %g vs %g", times[0], times[1])
	}
}

func TestBFS2DDegenerateGrids(t *testing.T) {
	// A 1xN grid degenerates to 1-D column ownership; an Nx1 grid makes
	// the whole cluster one processor column (expand = full allgather,
	// fold local). Both must still match the reference.
	const scale = 12
	params := rmat.Graph500(scale)
	ref := graph.BuildGlobal(params, true)
	root := params.Roots(1, ref.HasEdge)[0]
	wantLevel, _ := graph.ReferenceBFS(ref, root)

	for _, grid := range []Grid{{R: 1, C: 8}, {R: 8, C: 1}} {
		r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, grid, params)
		if err != nil {
			t.Fatal(err)
		}
		r.Setup()
		r.RunRoot(root)
		got := r.Levels(root)
		for v := range got {
			if got[v] != wantLevel[v] {
				t.Fatalf("grid %dx%d vertex %d: level %d, want %d", grid.R, grid.C, v, got[v], wantLevel[v])
			}
		}
	}
}

func TestBFS2DDedupCutsFoldTraffic(t *testing.T) {
	// The sender-side dedup (Buluç & Madduri) must make the 2-D fold
	// traffic strictly smaller than the raw edge count would imply.
	const scale = 12
	params := rmat.Graph500(scale)
	r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, Grid{R: 2, C: 4}, params)
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	root := params.Roots(1, r.HasEdgeGlobal)[0]
	res := r.RunRoot(root)
	// An undeduplicated fold would move ~16 bytes per traversed directed
	// edge; dedup should bring it well under that.
	rawPairBytes := 2 * res.TraversedEdges * 16
	if res.CommBytes >= rawPairBytes {
		t.Fatalf("comm %d bytes not below raw pair volume %d", res.CommBytes, rawPairBytes)
	}
}

func TestBFS2DSingleRank(t *testing.T) {
	// A 1x1 grid on one single-socket node: all collectives degenerate.
	const scale = 10
	params := rmat.Graph500(scale)
	ref := graph.BuildGlobal(params, true)
	root := params.Roots(1, ref.HasEdge)[0]
	wantLevel, _ := graph.ReferenceBFS(ref, root)

	r, err := NewRunner(testConfig(scale, 1, 1), machine.PPN8Bind, Grid{R: 1, C: 1}, params)
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	r.RunRoot(root)
	got := r.Levels(root)
	for v := range got {
		if got[v] != wantLevel[v] {
			t.Fatalf("vertex %d: level %d, want %d", v, got[v], wantLevel[v])
		}
	}
}

func TestNewRunnerRejectsBadGrid(t *testing.T) {
	cfg := testConfig(12, 2, 4)
	if _, err := NewRunner(cfg, machine.PPN8Bind, Grid{R: 3, C: 3}, rmat.Graph500(12)); err == nil {
		t.Fatal("expected grid/ranks mismatch error")
	}
}

// TestObsRecordsSpans checks the 2-D engine feeds the observability
// layer: phase and level spans on every rank, without changing results.
func TestObsRecordsSpans(t *testing.T) {
	cfg := testConfig(12, 2, 4)
	params := rmat.Graph500(12)
	build := func(rec *obs.Recorder) *Runner {
		r, err := NewRunner(cfg, machine.PPN8Bind, Grid{R: 2, C: 4}, params)
		if err != nil {
			t.Fatal(err)
		}
		if rec != nil {
			r.AttachObs(rec.NewSession("2d test"))
		}
		r.Setup()
		return r
	}
	plain := build(nil)
	root := params.Roots(1, plain.HasEdgeGlobal)[0]
	want := plain.RunRoot(root)

	rec := obs.NewRecorder()
	traced := build(rec)
	got := traced.RunRoot(root)
	if got.TimeNs != want.TimeNs || got.Breakdown != want.Breakdown {
		t.Fatalf("tracing changed 2-D results: %+v vs %+v", got, want)
	}

	sess := rec.Sessions()[0]
	for _, rk := range sess.Ranks() {
		var phases, levels int
		for _, sp := range rk.Spans() {
			switch sp.Cat {
			case obs.CatPhase:
				phases++
			case obs.CatLevel:
				levels++
			}
		}
		if phases == 0 || levels == 0 {
			t.Fatalf("rank %d recorded %d phase / %d level spans", rk.ID, phases, levels)
		}
		if levels != got.Levels {
			t.Fatalf("rank %d level spans = %d, want %d", rk.ID, levels, got.Levels)
		}
	}
}

// TestBFS2DCompressedEquivalence: the compressed expand phase must
// produce the identical traversal while moving fewer wire bytes (the
// frontier lists are sorted per owner, so the varint-delta code beats 8
// bytes per vertex), with the raw ledger unchanged.
func TestBFS2DCompressedEquivalence(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	build := func(compress bool) *Runner {
		r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, Grid{R: 2, C: 4}, params)
		if err != nil {
			t.Fatal(err)
		}
		r.Compress = compress
		r.Setup()
		return r
	}
	plain := build(false)
	comp := build(true)
	root := params.Roots(1, plain.HasEdgeGlobal)[0]
	want := plain.RunRoot(root)
	got := comp.RunRoot(root)

	if got.Visited != want.Visited || got.TraversedEdges != want.TraversedEdges {
		t.Fatalf("compressed 2-D changed the traversal: %+v vs %+v", got, want)
	}
	wl, gl := plain.Levels(root), comp.Levels(root)
	for v := range wl {
		if wl[v] != gl[v] {
			t.Fatalf("vertex %d: level %d vs %d", v, gl[v], wl[v])
		}
	}
	if got.RawCommBytes != want.CommBytes {
		t.Errorf("compressed raw volume %d != plain volume %d", got.RawCommBytes, want.CommBytes)
	}
	if got.CommBytes >= want.CommBytes {
		t.Errorf("compressed wire bytes %d not below plain %d", got.CommBytes, want.CommBytes)
	}
}
