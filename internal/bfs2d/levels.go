package bfs2d

// HasEdgeGlobal reports whether vertex v has any stored adjacency, by
// consulting the processor column that stores v's out-edges. Used for
// Graph500-style root selection.
func (r *Runner) HasEdgeGlobal(v int64) bool {
	j := int(v / (int64(r.Grid.R) * r.blockSize))
	cLo, _ := r.colRange(j)
	for i := 0; i < r.Grid.R; i++ {
		rs := r.states[r.rankOf(i, j)]
		if rs.rowPtr[v-cLo+1] > rs.rowPtr[v-cLo] {
			return true
		}
	}
	return false
}

// ParentArrays returns the live owned parent blocks, indexed by grid
// cell (entries are owner-relative, cell k covering vertices
// [k*BlockSize, (k+1)*BlockSize)). Exposed for the external validator
// and its corruption tests, mirroring the 1-D engine. At construction
// cell k is held by rank k; a promotion remaps the cell, not the block.
func (r *Runner) ParentArrays() [][]int64 {
	out := make([][]int64, len(r.cellRank))
	for c, rank := range r.cellRank {
		out[c] = r.states[rank].parent
	}
	return out
}

// Parents assembles the global parent array from the per-cell blocks
// left by the last RunRoot (-1 for unreached vertices).
func (r *Runner) Parents() []int64 {
	parent := make([]int64, r.Params.NumVertices())
	for c, rank := range r.cellRank {
		lo := int64(c) * r.blockSize
		copy(parent[lo:lo+r.blockSize], r.states[rank].parent)
	}
	return parent
}

// Levels reconstructs the global level array from the per-rank parent
// blocks left by the last RunRoot (-1 for unreached vertices). Used by
// the validator-style tests and the experiment drivers.
//
// Each vertex's depth is resolved by chasing the parent chain until it
// reaches the root or an already-resolved ancestor, then unwinding the
// chase memoizing every vertex on it — a single O(n) pass overall,
// where the old fixed-point relaxation rescanned all n vertices once
// per BFS level. A chain longer than n vertices means the parent array
// contains a cycle not anchored at the root; those vertices (and any
// vertex whose chain leads into such a cycle, or to an unreached
// parent) stay -1, exactly as the relaxation left them.
func (r *Runner) Levels(root int64) []int64 {
	parent := r.Parents()
	n := int64(len(parent))
	level := make([]int64, n)
	for i := range level {
		level[i] = -1
	}
	if parent[root] < 0 {
		return level
	}
	level[root] = 0
	chain := make([]int64, 0, 64)
	for v := int64(0); v < n; v++ {
		if level[v] >= 0 || parent[v] < 0 {
			continue
		}
		chain = chain[:0]
		u := v
		for level[u] < 0 && parent[u] >= 0 && int64(len(chain)) <= n {
			chain = append(chain, u)
			u = parent[u]
		}
		base := level[u] // -1 when the chase hit a cycle or an unreached vertex
		if base < 0 {
			continue
		}
		for k := len(chain) - 1; k >= 0; k-- {
			base++
			level[chain[k]] = base
		}
	}
	return level
}

// BlockSize returns the number of vertices per owned block.
func (r *Runner) BlockSize() int64 { return r.blockSize }

// HasEdge reports whether the directed adjacency (u, v) is stored in
// the grid, via binary search of the sorted local row at the rank that
// owns it (grid row of v's block, processor column of u). The graph is
// symmetrized at Setup, so this also answers "is {u, v} an edge".
func (r *Runner) HasEdge(u, v int64) bool {
	j := int(u / (int64(r.Grid.R) * r.blockSize))
	i := int(v/r.blockSize) % r.Grid.R
	rs := r.states[r.rankOf(i, j)]
	cLo, _ := r.colRange(j)
	row := rs.col[rs.rowPtr[u-cLo]:rs.rowPtr[u-cLo+1]]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == v
}

// EachStoredEdge calls f for every directed adjacency (u, v) stored at
// grid cell `cell` (== the holding rank until a promotion remaps it).
// Together with HasEdge this is what an external validator needs to
// check the full Graph500 rule set without reaching into the CSR
// layout.
func (r *Runner) EachStoredEdge(cell int, f func(u, v int64)) {
	rs := r.states[r.cellRank[cell]]
	cLo, _ := r.colRange(rs.j)
	for rel := int64(0); rel < int64(len(rs.rowPtr))-1; rel++ {
		for _, v := range rs.col[rs.rowPtr[rel]:rs.rowPtr[rel+1]] {
			f(cLo+rel, v)
		}
	}
}
