package bfs2d

// HasEdgeGlobal reports whether vertex v has any stored adjacency, by
// consulting the processor column that stores v's out-edges. Used for
// Graph500-style root selection.
func (r *Runner) HasEdgeGlobal(v int64) bool {
	j := int(v / (int64(r.Grid.R) * r.blockSize))
	cLo, _ := r.colRange(j)
	for i := 0; i < r.Grid.R; i++ {
		rs := r.states[r.rankOf(i, j)]
		if rs.rowPtr[v-cLo+1] > rs.rowPtr[v-cLo] {
			return true
		}
	}
	return false
}

// Levels reconstructs the global level array from the per-rank parent
// blocks left by the last RunRoot (-1 for unreached vertices). Used by
// the validator-style tests and the experiment drivers.
func (r *Runner) Levels(root int64) []int64 {
	n := r.Params.NumVertices()
	parent := make([]int64, n)
	for rank, rs := range r.states {
		lo := int64(rank) * r.blockSize
		copy(parent[lo:lo+r.blockSize], rs.parent)
	}
	level := make([]int64, n)
	for i := range level {
		level[i] = -1
	}
	if parent[root] < 0 {
		return level
	}
	level[root] = 0
	for changed := true; changed; {
		changed = false
		for v := int64(0); v < n; v++ {
			if level[v] >= 0 || parent[v] < 0 {
				continue
			}
			if pl := level[parent[v]]; pl >= 0 {
				level[v] = pl + 1
				changed = true
			}
		}
	}
	return level
}
