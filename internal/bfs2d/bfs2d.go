// Package bfs2d implements the two-dimensional partitioned BFS of Buluç
// and Madduri (SC'11), which the paper's related-work section singles
// out as orthogonal to its NUMA optimizations: "our implementation could
// be applied to 2-D partition algorithm to further reduce its
// communication overhead".
//
// The np = R x C ranks form a processor grid. The vertex set is split
// into np blocks; rank (i, j) owns block j*R+i (so a processor column j
// collectively owns the contiguous vertex range C_j) and stores the
// adjacency entries (u, v) with u in C_j and v in a block of grid row i.
// A top-down level is then:
//
//	expand: allgather the frontier's C_j vertices down processor
//	        column j (R ranks);
//	local:  scan the local adjacency of the expanded frontier,
//	        producing (child, parent) candidates;
//	fold:   alltoallv the candidates along the grid row (C ranks) to
//	        the child's owner, which resolves visitation.
//
// Communication therefore involves groups of R and C ranks instead of
// all np — the structural reason 2-D partitioning cuts BFS
// communication, here measurable against the 1-D engine on the same
// simulated cluster (the Ext experiment).
package bfs2d

import (
	"fmt"

	"numabfs/internal/bitmap"
	"numabfs/internal/collective"
	"numabfs/internal/fault"
	"numabfs/internal/machine"
	"numabfs/internal/mpi"
	"numabfs/internal/obs"
	"numabfs/internal/omp"
	"numabfs/internal/rmat"
	"numabfs/internal/trace"
	"numabfs/internal/wire"
)

// Mode selects the 2-D engine's traversal direction policy, mirroring
// the 1-D engine's ladder. The zero value is the engine's historical
// pure top-down loop, so existing callers (and the committed bench
// tables) are bit-identical by construction.
type Mode int

const (
	// ModeTopDown runs every level top-down (expand/scan/fold).
	ModeTopDown Mode = iota
	// ModeHybrid switches between top-down and bottom-up per level with
	// the same Beamer-style alpha/beta heuristic as the 1-D engine.
	ModeHybrid
	// ModeBottomUp runs every level bottom-up.
	ModeBottomUp
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeTopDown:
		return "top-down"
	case ModeHybrid:
		return "hybrid"
	case ModeBottomUp:
		return "bottom-up"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Default hybrid-switch constants; identical to the 1-D engine's
// DefaultOptions so the two heuristics are comparable.
const (
	DefaultAlpha       = 30.0
	DefaultBeta        = 24.0
	DefaultGranularity = bitmap.DefaultGranularity
)

// Grid describes the processor grid.
type Grid struct {
	R, C int // rows x columns; R*C ranks
}

// DefaultGrid splits np into the most square power-of-two grid.
func DefaultGrid(np int) Grid {
	if np&(np-1) != 0 {
		// Fall back to a single row for non-power-of-two rank counts.
		return Grid{R: 1, C: np}
	}
	log := 0
	for v := np; v > 1; v >>= 1 {
		log++
	}
	r := 1 << uint(log/2)
	return Grid{R: r, C: np / r}
}

// Runner is the 2-D BFS engine. Build with NewRunner, call Setup once,
// then RunRoot per source.
type Runner struct {
	W      *mpi.World
	Grid   Grid
	Params rmat.Params

	// Compress routes the level loop's collectives through the wire
	// codecs: the expand phase's frontier vertex lists and the fold
	// phase's (child, parent) pairs travel varint-delta encoded, and in
	// bottom-up levels the frontier bitmap allgathers use the adaptive
	// dense/sparse/RLE ring — the 2-D engine's share of the
	// OptCompressedAllgather machinery. Set before Setup.
	Compress bool

	// Mode selects the traversal direction policy (top-down, hybrid,
	// bottom-up). The zero value is pure top-down — the engine's
	// historical behaviour. Set before Setup; hybrid and bottom-up
	// require the per-rank block size to be a multiple of 64 so frontier
	// bitmaps allgather on word boundaries.
	Mode Mode
	// Alpha and Beta are the hybrid switch thresholds (0 = the 1-D
	// engine's defaults): top-down hands over to bottom-up while the
	// frontier grows and its edges exceed unexplored/Alpha; bottom-up
	// hands back when the frontier falls below n/Beta.
	Alpha, Beta float64
	// Granularity is the bottom-up row-frontier summary granule in bits
	// (0 = 64, the Graph500 reference value).
	Granularity int64

	cfg machine.Config
	pl  machine.Placement

	blockSize int64 // vertices per block (n / (R*C))

	// cellRank maps grid cell j*R+i to the world rank currently holding
	// it, rankCell inverts it (-1 for parked spares and dead ranks). At
	// construction the map is the identity over the first R*C ranks; a
	// promotion rewrites one cell. The grid shape itself never changes —
	// the 2-D engine supports spare/rerun recovery only, never a shrink
	// (removing a cell would break the R x C factorization every
	// expand/fold path depends on).
	cellRank []int
	rankCell []int
	// spares are the parked hot-spare ranks still available, in rank
	// order (world ranks beyond the grid when NewRunnerSpares asked for
	// them).
	spares []int

	grid *collective.Group   // all grid cells, in cell order
	cols []*collective.Group // column group per j: cells (0..R-1, j)
	rows []*collective.Group // row group per i: cells (i, 0..C-1)

	// colLayout/rowLayout split the column/row frontier bitmaps into
	// per-member word segments for the bottom-up allgathers.
	colLayout collective.Layout
	rowLayout collective.Layout

	states []*rankState

	// totalEdges is the number of stored directed adjacencies across all
	// ranks, used by the hybrid switch heuristic.
	totalEdges int64

	// alpha/beta/granularity are the resolved knobs (Setup).
	alpha, beta float64
	granularity int64

	// faults is the active fault plan (InjectFaults); crashOn marks that
	// the plan schedules rank crashes, enabling the full-rerun recovery
	// path in RunRoot.
	faults  fault.Plan
	crashOn bool

	// SetupNs is the virtual construction time.
	SetupNs float64
}

// rankState is one rank's 2-D state.
type rankState struct {
	r    *Runner
	i, j int
	team omp.Team

	// Local adjacency: for u in colRange (relative), neighbours v that
	// fall into this grid row's blocks.
	rowPtr []int64
	col    []int64

	// Owned vertex block state.
	parent []int64

	frontier   []int64 // owned frontier entering the next level
	bd         trace.Breakdown
	levels     int
	levelStats []trace.LevelStat

	// codec and lists are the compressed-expand machinery (nil/empty
	// when Compress is off): the codec encodes the rank's frontier list
	// once per level, lists is the reused per-column receive scratch.
	// foldCodec serves the fold alltoallv (one codec per collective
	// purpose — fold payloads alias its slot scratch while expand
	// payloads alias codec's), and foldOutRow/foldOutCol are the reused
	// decode scratch for the row (top-down) and column (bottom-up)
	// folds.
	codec      *wire.Codec
	lists      [][]int64
	foldCodec  *wire.Codec
	foldOutRow [][]int64
	foldOutCol [][]int64

	// Bottom-up state (nil below ModeHybrid/ModeBottomUp):
	//
	//   colVisited — visited bits over the column's vertex range,
	//                maintained every level so the bottom-up scan skips
	//                settled vertices;
	//   colFront   — the column frontier bitmap; owners write their
	//                block's segment, the column allgather fills the
	//                rest;
	//   rowFront   — the frontier restricted to this grid row's blocks
	//                (what local adjacencies can hit), gathered along
	//                the row; rowSum summarizes it;
	//   sendCol    — the bottom-up fold's per-column-member candidate
	//                buffers.
	colVisited *bitmap.Bitmap
	colFront   *bitmap.Bitmap
	rowFront   *bitmap.Bitmap
	rowSum     *bitmap.Summary
	sendCol    [][]int64
	sendRow    [][]int64
	colCodec   *wire.Codec
	rowCodec   *wire.Codec

	// pendingRecoveryNs carries the full-rerun crash-recovery cost (the
	// detection-timeout floor) across reset(), which wipes bd.
	// pendingReownNs carries the promoted spare's cell re-own transfer
	// cost the same way (charged to the Reown phase).
	pendingRecoveryNs float64
	pendingReownNs    float64

	// sent stamps deduplicate fold candidates: a vertex discovered by
	// several local frontier sources is sent to its owner once per level
	// (Buluç & Madduri's optimization — the column aggregates R blocks'
	// worth of edges, so duplicates are common). Indexed by the
	// destination-ordinal and in-block offset of v; stamp equality means
	// "already sent this level".
	sent      []int64
	sentStamp int64

	// rec is the rank's observability stream (nil = tracing off).
	rec *obs.Rank
}

// NewRunner builds a 2-D runner covering every rank of the placement.
// The placement policy fixes ranks per node exactly as in the 1-D
// engine.
func NewRunner(cfg machine.Config, policy machine.Policy, grid Grid, params rmat.Params) (*Runner, error) {
	return NewRunnerSpares(cfg, policy, grid, params, 0)
}

// NewRunnerSpares builds a 2-D runner with the last `spares` world ranks
// parked as hot spares: the grid covers the first R*C ranks, and a
// permanent crash promotes a spare into the dead rank's grid cell (the
// cell→rank table is remapped; the grid shape and every block range are
// untouched). With no spare left a permanent crash falls back to the
// full-rerun recovery, like a transient one — the 2-D engine never
// shrinks the grid.
func NewRunnerSpares(cfg machine.Config, policy machine.Policy, grid Grid, params rmat.Params, spares int) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if spares < 0 {
		return nil, fmt.Errorf("bfs2d: negative spare count %d", spares)
	}
	pl := machine.PlacementFor(cfg, policy)
	w := mpi.NewWorld(cfg, pl)
	np := w.NumProcs()
	if grid.R*grid.C != np-spares {
		return nil, fmt.Errorf("bfs2d: grid %dx%d does not match %d ranks (%d spares)", grid.R, grid.C, np, spares)
	}
	cells := grid.R * grid.C
	n := params.NumVertices()
	if n%int64(cells) != 0 {
		return nil, fmt.Errorf("bfs2d: %d vertices not divisible by %d grid cells", n, cells)
	}
	r := &Runner{
		W: w, Grid: grid, Params: params,
		cfg: cfg, pl: pl,
		blockSize: n / int64(cells),
	}
	r.cellRank = make([]int, cells)
	r.rankCell = make([]int, np)
	for c := 0; c < cells; c++ {
		r.cellRank[c], r.rankCell[c] = c, c
	}
	for rank := cells; rank < np; rank++ {
		r.rankCell[rank] = -1
		r.spares = append(r.spares, rank)
	}
	if len(r.spares) > 0 {
		w.Park(r.spares)
	}
	r.rebuildGroups()
	r.states = make([]*rankState, np)
	return r, nil
}

// rebuildGroups derives the grid, column and row groups from the
// current cell→rank table. Called at construction and after a
// promotion remapped a cell.
func (r *Runner) rebuildGroups() {
	r.grid = collective.NewGroup(r.W, r.cellRank)
	r.cols = make([]*collective.Group, r.Grid.C)
	for j := 0; j < r.Grid.C; j++ {
		ranks := make([]int, r.Grid.R)
		for i := 0; i < r.Grid.R; i++ {
			ranks[i] = r.rankOf(i, j)
		}
		r.cols[j] = collective.NewGroup(r.W, ranks)
	}
	r.rows = make([]*collective.Group, r.Grid.R)
	for i := 0; i < r.Grid.R; i++ {
		ranks := make([]int, r.Grid.C)
		for j := 0; j < r.Grid.C; j++ {
			ranks[j] = r.rankOf(i, j)
		}
		r.rows[i] = collective.NewGroup(r.W, ranks)
	}
}

// promote swaps an available spare into the dead rank's grid cell,
// parking the modelled re-own cost of the spare adopting the cell's
// state (adjacency and parent block) out of node scratch in the moved
// state's pendingReownNs. Reports false — the caller reruns with the
// dead rank in place — when no spare is left or the dead rank holds no
// cell.
func (r *Runner) promote(dead int, floor float64) bool {
	if len(r.spares) == 0 || r.rankCell[dead] < 0 {
		return false
	}
	// Prefer a spare on the dead rank's node (scratch adoption at
	// shared-memory bandwidth); otherwise take the first one.
	deadNode := dead / r.W.ProcsPerNode()
	pick := 0
	for k, s := range r.spares {
		if s/r.W.ProcsPerNode() == deadNode {
			pick = k
			break
		}
	}
	spare := r.spares[pick]
	r.spares = append(r.spares[:pick], r.spares[pick+1:]...)

	cell := r.rankCell[dead]
	r.W.Promote(spare, dead)
	r.cellRank[cell] = spare
	r.rankCell[spare] = cell
	r.rankCell[dead] = -1
	r.rebuildGroups()

	// The spare re-binds the cell's state wholesale; the 2-D recovery is
	// a full rerun, so only the adjacency and the parent block move.
	rs := r.states[dead]
	r.states[spare], r.states[dead] = rs, nil
	bytes := int64(len(rs.col))*8 + int64(len(rs.rowPtr))*8 + int64(len(rs.parent))*8
	if spare/r.W.ProcsPerNode() == deadNode {
		rs.pendingReownNs += float64(bytes) / r.cfg.ShmCopyBW
	} else {
		rs.pendingReownNs += r.cfg.InterNodeAlphaNs + float64(bytes)/r.cfg.PerStreamBW
	}

	r.W.Proc(spare).Obs().FaultEvent("promote", floor)
	r.W.Proc(r.cellRank[0]).Obs().GaugeSet(obs.GaugeLiveRanks, floor, float64(len(r.cellRank)))
	return true
}

// AttachObs routes the runner's world through an observability session
// (per-rank span timelines and communication counters). Call before
// Setup so construction is recorded too; tracing never advances virtual
// time.
func (r *Runner) AttachObs(s *obs.Session) { r.W.AttachObs(s) }

// InjectFaults installs a deterministic fault plan (internal/fault) for
// all subsequent RunRoot calls: bandwidth degradation, stragglers,
// jitter and lossy links perturb the modelled times exactly as in the
// 1-D engine; a scheduled rank crash enables full-rerun recovery — the
// 2-D engine has no level-boundary checkpoints, so a crashed iteration
// restarts from the root with clocks floored at detection time. Call
// after Setup. The machine's configured weak node persists underneath
// the plan.
func (r *Runner) InjectFaults(plan fault.Plan) error {
	if err := r.W.InjectFaults(plan); err != nil {
		return err
	}
	r.faults = plan
	r.crashOn = len(plan.Crashes) > 0
	return nil
}

// rankOf maps grid coordinates to the rank currently holding the cell:
// grid rows vary fastest within a processor column, and at construction
// a column's R ranks are consecutive — on an R-ranks-per-node placement
// a whole column lands on one node, giving the expand phase intra-node
// communication. A promotion may remap individual cells.
func (r *Runner) rankOf(i, j int) int { return r.cellRank[j*r.Grid.R+i] }

// gridOf returns the grid coordinates of the cell a rank holds; the
// rank must hold one.
func (r *Runner) gridOf(rank int) (i, j int) {
	c := r.rankCell[rank]
	return c % r.Grid.R, c / r.Grid.R
}

// block returns the block id owned by grid position (i, j).
func (r *Runner) block(i, j int) int64 { return int64(j*r.Grid.R + i) }

// ownerOf returns the rank owning vertex v's block.
func (r *Runner) ownerOf(v int64) int { return r.cellRank[v/r.blockSize] }

// colRange returns the contiguous vertex range of processor column j.
func (r *Runner) colRange(j int) (lo, hi int64) {
	lo = int64(j) * int64(r.Grid.R) * r.blockSize
	return lo, lo + int64(r.Grid.R)*r.blockSize
}

// rowOwns reports whether vertex v's block belongs to grid row i.
func (r *Runner) rowOwns(i int, v int64) bool {
	return int(v/r.blockSize)%r.Grid.R == i
}
