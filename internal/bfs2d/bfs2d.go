// Package bfs2d implements the two-dimensional partitioned BFS of Buluç
// and Madduri (SC'11), which the paper's related-work section singles
// out as orthogonal to its NUMA optimizations: "our implementation could
// be applied to 2-D partition algorithm to further reduce its
// communication overhead".
//
// The np = R x C ranks form a processor grid. The vertex set is split
// into np blocks; rank (i, j) owns block j*R+i (so a processor column j
// collectively owns the contiguous vertex range C_j) and stores the
// adjacency entries (u, v) with u in C_j and v in a block of grid row i.
// A top-down level is then:
//
//	expand: allgather the frontier's C_j vertices down processor
//	        column j (R ranks);
//	local:  scan the local adjacency of the expanded frontier,
//	        producing (child, parent) candidates;
//	fold:   alltoallv the candidates along the grid row (C ranks) to
//	        the child's owner, which resolves visitation.
//
// Communication therefore involves groups of R and C ranks instead of
// all np — the structural reason 2-D partitioning cuts BFS
// communication, here measurable against the 1-D engine on the same
// simulated cluster (the Ext experiment).
package bfs2d

import (
	"fmt"

	"numabfs/internal/collective"
	"numabfs/internal/machine"
	"numabfs/internal/mpi"
	"numabfs/internal/obs"
	"numabfs/internal/omp"
	"numabfs/internal/rmat"
	"numabfs/internal/trace"
	"numabfs/internal/wire"
)

// Grid describes the processor grid.
type Grid struct {
	R, C int // rows x columns; R*C ranks
}

// DefaultGrid splits np into the most square power-of-two grid.
func DefaultGrid(np int) Grid {
	if np&(np-1) != 0 {
		// Fall back to a single row for non-power-of-two rank counts.
		return Grid{R: 1, C: np}
	}
	log := 0
	for v := np; v > 1; v >>= 1 {
		log++
	}
	r := 1 << uint(log/2)
	return Grid{R: r, C: np / r}
}

// Runner is the 2-D BFS engine. Build with NewRunner, call Setup once,
// then RunRoot per source.
type Runner struct {
	W      *mpi.World
	Grid   Grid
	Params rmat.Params

	// Compress sends the expand phase's frontier vertex lists in the
	// varint-delta wire format (internal/wire) instead of raw int64s —
	// the 2-D engine's share of the OptCompressedAllgather machinery.
	// Set before Setup.
	Compress bool

	cfg machine.Config
	pl  machine.Placement

	blockSize int64 // vertices per block (n / np)

	cols []*collective.Group // column group per j: ranks (0..R-1, j)
	rows []*collective.Group // row group per i: ranks (i, 0..C-1)

	states []*rankState

	// SetupNs is the virtual construction time.
	SetupNs float64
}

// rankState is one rank's 2-D state.
type rankState struct {
	r    *Runner
	i, j int
	team omp.Team

	// Local adjacency: for u in colRange (relative), neighbours v that
	// fall into this grid row's blocks.
	rowPtr []int64
	col    []int64

	// Owned vertex block state.
	parent []int64

	frontier []int64 // owned frontier entering the next level
	bd       trace.Breakdown
	levels   int

	// codec and lists are the compressed-expand machinery (nil/empty
	// when Compress is off): the codec encodes the rank's frontier list
	// once per level, lists is the reused per-column receive scratch.
	codec *wire.Codec
	lists [][]int64

	// sent stamps deduplicate fold candidates: a vertex discovered by
	// several local frontier sources is sent to its owner once per level
	// (Buluç & Madduri's optimization — the column aggregates R blocks'
	// worth of edges, so duplicates are common). Indexed by the
	// destination-ordinal and in-block offset of v; stamp equality means
	// "already sent this level".
	sent      []int64
	sentStamp int64

	// rec is the rank's observability stream (nil = tracing off).
	rec *obs.Rank
}

// NewRunner builds a 2-D runner. The placement policy fixes ranks per
// node exactly as in the 1-D engine.
func NewRunner(cfg machine.Config, policy machine.Policy, grid Grid, params rmat.Params) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	pl := machine.PlacementFor(cfg, policy)
	w := mpi.NewWorld(cfg, pl)
	np := w.NumProcs()
	if grid.R*grid.C != np {
		return nil, fmt.Errorf("bfs2d: grid %dx%d does not match %d ranks", grid.R, grid.C, np)
	}
	n := params.NumVertices()
	if n%int64(np) != 0 {
		return nil, fmt.Errorf("bfs2d: %d vertices not divisible by %d ranks", n, np)
	}
	r := &Runner{
		W: w, Grid: grid, Params: params,
		cfg: cfg, pl: pl,
		blockSize: n / int64(np),
	}
	r.cols = make([]*collective.Group, grid.C)
	for j := 0; j < grid.C; j++ {
		ranks := make([]int, grid.R)
		for i := 0; i < grid.R; i++ {
			ranks[i] = r.rankOf(i, j)
		}
		r.cols[j] = collective.NewGroup(w, ranks)
	}
	r.rows = make([]*collective.Group, grid.R)
	for i := 0; i < grid.R; i++ {
		ranks := make([]int, grid.C)
		for j := 0; j < grid.C; j++ {
			ranks[j] = r.rankOf(i, j)
		}
		r.rows[i] = collective.NewGroup(w, ranks)
	}
	r.states = make([]*rankState, np)
	return r, nil
}

// AttachObs routes the runner's world through an observability session
// (per-rank span timelines and communication counters). Call before
// Setup so construction is recorded too; tracing never advances virtual
// time.
func (r *Runner) AttachObs(s *obs.Session) { r.W.AttachObs(s) }

// rankOf maps grid coordinates to a rank: grid rows vary fastest within
// a processor column, and a column's R ranks are consecutive — on an
// R-ranks-per-node placement a whole column lands on one node, giving
// the expand phase intra-node communication.
func (r *Runner) rankOf(i, j int) int { return j*r.Grid.R + i }

// gridOf inverts rankOf.
func (r *Runner) gridOf(rank int) (i, j int) { return rank % r.Grid.R, rank / r.Grid.R }

// block returns the block id owned by grid position (i, j).
func (r *Runner) block(i, j int) int64 { return int64(j*r.Grid.R + i) }

// ownerOf returns the rank owning vertex v's block.
func (r *Runner) ownerOf(v int64) int { return int(v / r.blockSize) }

// colRange returns the contiguous vertex range of processor column j.
func (r *Runner) colRange(j int) (lo, hi int64) {
	lo = int64(j) * int64(r.Grid.R) * r.blockSize
	return lo, lo + int64(r.Grid.R)*r.blockSize
}

// rowOwns reports whether vertex v's block belongs to grid row i.
func (r *Runner) rowOwns(i int, v int64) bool {
	return int(v/r.blockSize)%r.Grid.R == i
}
