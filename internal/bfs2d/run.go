package bfs2d

import (
	"numabfs/internal/collective"
	"numabfs/internal/fault"
	"numabfs/internal/machine"
	"numabfs/internal/mpi"
	"numabfs/internal/obs"
	"numabfs/internal/omp"
	"numabfs/internal/simnet"
	"numabfs/internal/trace"
	"numabfs/internal/wire"
)

// RootResult summarizes one 2-D BFS iteration. The fields mirror
// bfs.RootResult so the two engines diff cleanly (obsdiff, the
// crossover experiment): Wire, Xport and Faults are zero/empty for a
// clean uncompressed run, exactly as in the 1-D engine.
type RootResult struct {
	Root           int64
	TimeNs         float64
	Visited        int64
	TraversedEdges int64
	TEPS           float64
	Levels         int
	Breakdown      trace.Breakdown // mean across ranks
	// LevelStats is the frontier growth curve (rank 0's view; the
	// frontier values are allreduced and identical everywhere). MF is
	// filled in hybrid/bottom-up modes, where the switch heuristic pays
	// for the frontier-edge allreduce; pure top-down leaves it 0 rather
	// than perturb the historical cost model.
	LevelStats []trace.LevelStat
	// CommBytes is the exact total network volume (intra + inter) of
	// the iteration, for comparison with the 1-D engine. With Compress
	// on these are wire bytes; RawCommBytes is the logical volume
	// (identical to CommBytes when compression is off).
	CommBytes    int64
	RawCommBytes int64
	// Wire aggregates every rank's codec decisions for the iteration
	// (expand lists, fold pairs and bottom-up bitmap segments); zero
	// unless Compress is set.
	Wire wire.Stats
	// Xport is the reliable-transport ledger of the iteration; all-zero
	// unless the fault plan declares lossy links.
	Xport simnet.Xport
	// Faults lists the rank crashes this iteration survived via
	// full-rerun recovery, in recovery order. When non-empty,
	// CommBytes/RawCommBytes and Wire include the lost attempts'
	// partial traffic, as in the 1-D engine.
	Faults []*mpi.FaultError
	// MTTRNs is the summed modelled repair time of the survived faults:
	// detection delay (crash to heartbeat-lease expiry) plus the cell
	// re-own transfer when a spare was promoted.
	MTTRNs float64
	// Epoch is the world-view number the iteration finished in: 0 until
	// a promotion replaced a permanently dead rank.
	Epoch int
}

// RunRoot runs one 2-D BFS from root. Rank clocks are reset, so TimeNs
// is the iteration's virtual duration. Under an active crash plan the
// iteration recovers by rerunning from the root with clocks floored at
// crash-detection time (the 2-D engine keeps no checkpoints).
func (r *Runner) RunRoot(root int64) RootResult {
	if len(r.states) == 0 || r.states[r.cellRank[0]] == nil {
		panic("bfs2d: RunRoot before Setup")
	}
	r.W.ResetClocks()
	for _, rs := range r.states {
		if rs == nil {
			continue
		}
		rs.pendingRecoveryNs, rs.pendingReownNs = 0, 0
		for _, c := range []*wire.Codec{rs.codec, rs.foldCodec, rs.colCodec, rs.rowCodec} {
			if c != nil {
				c.ResetStats()
			}
		}
	}
	var faults []*mpi.FaultError
	var mttrNs float64
	err := r.W.TryRun(func(p *mpi.Proc) {
		rs := r.states[p.Rank()]
		rs.run(p, r.grid, root)
	})
	for attempt := 0; err != nil; attempt++ {
		f, ok := err.(*mpi.FaultError)
		if !ok || f.Kind != fault.KindCrash || !r.crashOn || attempt >= len(r.faults.Crashes) {
			panic(err)
		}
		faults = append(faults, f)
		inj := r.W.Injector()
		inj.Disarm(f.Rank, f.AtNs)
		var floor float64
		if f.Permanent {
			// Permanent death: the survivors learn of it when the dead
			// rank's heartbeat lease expires. With a spare available its
			// grid cell is remapped; otherwise the dead rank reruns in
			// place (the 2-D engine never shrinks the grid).
			floor = inj.DetectionTimeNs(f.AtNs)
			r.W.Proc(f.Rank).Obs().FaultEvent("detect", floor)
			r.promote(f.Rank, floor)
		} else {
			floor = f.AtNs + inj.DetectTimeoutNs()
		}
		var maxReown float64
		for _, rs := range r.states {
			if rs != nil && rs.pendingReownNs > maxReown {
				maxReown = rs.pendingReownNs
			}
		}
		mttrNs += (floor - f.AtNs) + maxReown
		r.W.PrepareRecovery()
		err = r.W.TryRun(func(p *mpi.Proc) {
			rs := r.states[p.Rank()]
			// Full-rerun recovery: clocks restart at the detection floor
			// (plus any parked cell re-own transfer), and the floor is
			// charged to the Recovery phase once run()'s reset has wiped
			// the breakdown.
			p.RestoreClock(floor + rs.pendingReownNs)
			rs.pendingRecoveryNs = floor
			rec := p.Obs()
			rec.PhaseSpan(trace.Recovery, 0, 0, floor)
			rec.FaultEvent("recover", floor)
			rs.run(p, r.grid, root)
		})
	}
	res := RootResult{
		Root: root, TimeNs: r.W.MaxClock(), Faults: faults,
		MTTRNs: mttrNs, Epoch: r.W.Epoch(),
	}
	cells := r.Grid.R * r.Grid.C
	var bd trace.Breakdown
	for _, rs := range r.states {
		if rs == nil {
			continue
		}
		bd.Merge(rs.bd)
		for _, pa := range rs.parent {
			if pa >= 0 {
				res.Visited++
			}
		}
		if rs.levelsRun() > res.Levels {
			res.Levels = rs.levelsRun()
		}
	}
	// Traversed edges: sum local adjacencies whose source was visited;
	// every undirected edge is stored twice across the grid.
	for _, rs := range r.states {
		if rs == nil {
			continue
		}
		cLo, cHi := r.colRange(rs.j)
		for u := cLo; u < cHi; u++ {
			if r.states[r.ownerOf(u)].parentOf(u) >= 0 {
				res.TraversedEdges += rs.rowPtr[u-cLo+1] - rs.rowPtr[u-cLo]
			}
		}
	}
	res.TraversedEdges /= 2
	bd.Scale(1 / float64(cells))
	cell0 := r.states[r.cellRank[0]]
	bd.TDLevels = cell0.bd.TDLevels
	bd.BULevels = cell0.bd.BULevels
	bd.BUCommCount = cell0.bd.BUCommCount
	res.Breakdown = bd
	res.LevelStats = append([]trace.LevelStat(nil), cell0.levelStats...)
	vol := r.W.Net().Volume()
	res.CommBytes = vol.IntraBytes + vol.InterBytes
	res.RawCommBytes = vol.RawIntraBytes + vol.RawInterBytes
	res.Xport = vol.Xport
	for _, rs := range r.states {
		if rs == nil {
			continue
		}
		for _, c := range []*wire.Codec{rs.codec, rs.foldCodec, rs.colCodec, rs.rowCodec} {
			if c != nil {
				res.Wire.Add(c.Stats())
			}
		}
	}
	if res.TimeNs > 0 {
		res.TEPS = float64(res.TraversedEdges) / (res.TimeNs / 1e9)
	}
	return res
}

// parentOf returns the parent of owned vertex v.
func (rs *rankState) parentOf(v int64) int64 {
	return rs.parent[v-rs.ownLo()]
}

// levelsRun reports how many levels this rank recorded.
func (rs *rankState) levelsRun() int { return rs.levels }

// run executes the lockstep level loop on this rank. All control
// decisions (mode switch, termination) derive from allreduced values,
// so the collective call pattern is identical across ranks.
func (rs *rankState) run(p *mpi.Proc, all *collective.Group, root int64) {
	r := rs.r
	rs.reset()
	rs.rec = p.Obs()
	if rs.pendingRecoveryNs > 0 {
		rs.bd.Add(trace.Recovery, rs.pendingRecoveryNs)
		rs.pendingRecoveryNs = 0
	}
	if rs.pendingReownNs > 0 {
		rs.bd.Add(trace.Reown, rs.pendingReownNs)
		rs.rec.PhaseSpan(trace.Reown, 0, p.Clock()-rs.pendingReownNs, p.Clock())
		rs.pendingReownNs = 0
	}

	lo := rs.ownLo()
	var nfLocal int64
	if r.ownerOf(root) == p.Rank() {
		rs.parent[root-lo] = root
		rs.frontier = append(rs.frontier, root)
		nfLocal = 1
	}
	t0, x0 := p.Clock(), p.XportNs()
	nf := all.AllreduceSumInt64(p, nfLocal)
	rs.chargeComm(p, trace.TDComm, t0, x0)

	col := r.cols[rs.j]
	row := r.rows[rs.i]

	bottomUp := r.Mode == ModeBottomUp
	if bottomUp {
		rs.seedBottomUp(p, root)
	}
	prevNf := nf
	var visitedEdgesGlobal int64
	n := float64(r.Params.NumVertices())

	for nf > 0 {
		rs.levels++
		levelStart := p.Clock()
		if r.Mode == ModeHybrid && bottomUp && float64(nf) < n/r.beta {
			rs.switchToTopDown(p)
			bottomUp = false
		}
		var dnf int64
		if bottomUp {
			mf := rs.buExpand(p, all, col, row)
			rs.backfillMF(mf)
			visitedEdgesGlobal += mf
			dnf = rs.buScanFold(p, all, col)
		} else {
			lists := rs.expand(p, col)
			if r.Mode != ModeTopDown {
				mf := rs.hybridAccount(p, all, lists)
				rs.backfillMF(mf)
				visitedEdgesGlobal += mf
				// Beamer-style hand-over, as in the 1-D engine: only while
				// the frontier still grows, to keep the tail levels from
				// flapping.
				unexplored := r.totalEdges - visitedEdgesGlobal
				if r.Mode == ModeHybrid && nf > prevNf && float64(mf) > float64(unexplored)/r.alpha {
					rs.switchToBottomUp(p, row)
					bottomUp = true
					dnf = rs.buScanFold(p, all, col)
				}
			}
			if !bottomUp {
				dnf = rs.tdScanFold(p, all, row, lists)
			}
		}
		prevNf, nf = nf, dnf
		if bottomUp {
			rs.bd.BULevels++
		} else {
			rs.bd.TDLevels++
		}
		rs.levelStats = append(rs.levelStats, trace.LevelStat{
			Level: rs.levels, BottomUp: bottomUp, NF: nf,
			Ns: p.Clock() - levelStart,
		})
		rs.rec.LevelSpan(bottomUp, rs.levels, levelStart, p.Clock())
		rs.rec.GaugeSet(obs.GaugeFrontier, p.Clock(), float64(nf))
		rs.rec.GaugeSet(obs.GaugeFrontierDensity, p.Clock(), float64(nf)/n)
	}
}

// expand gathers the frontier of this column's blocks down the
// processor column, returning the per-source-position vertex lists.
func (rs *rankState) expand(p *mpi.Proc, col *collective.Group) [][]int64 {
	t0, x0 := p.Clock(), p.XportNs()
	var lists [][]int64
	if rs.codec != nil {
		rs.lists = col.AllgathervInt64Compressed(p, rs.frontier, rs.lists, rs.codec)
		lists = rs.lists
	} else {
		lists = col.AllgathervInt64(p, rs.frontier)
	}
	rs.chargeComm(p, trace.TDComm, t0, x0)
	return lists
}

// tdScanFold runs the top-down local scan, the row fold and the
// level-terminating frontier allreduce, returning the new global
// frontier size.
func (rs *rankState) tdScanFold(p *mpi.Proc, all *collective.Group, row *collective.Group, lists [][]int64) int64 {
	r := rs.r
	lo := rs.ownLo()

	// LOCAL: scan the expanded frontier's local adjacency.
	send := rs.sendRow
	for c := range send {
		send[c] = send[c][:0]
	}
	rs.sentStamp++
	var edges, frontierLen, sentPairs int64
	for _, list := range lists {
		frontierLen += int64(len(list))
		for _, u := range list {
			for _, v := range rs.neighbors(u) {
				edges++
				// v's owner sits in this grid row at column j(v).
				jc := int(v / (int64(r.Grid.R) * r.blockSize))
				// Send each candidate once per level: the column
				// aggregates R blocks of edges, so the same child is
				// typically discovered many times locally.
				si := int64(jc)*r.blockSize + v%r.blockSize
				if rs.sent[si] == rs.sentStamp {
					continue
				}
				rs.sent[si] = rs.sentStamp
				sentPairs++
				send[jc] = append(send[jc], v, u)
			}
		}
	}
	load := machine.PhaseLoad{
		Random: []machine.Access{
			{Count: frontierLen, StructBytes: int64(len(rs.col)+len(rs.rowPtr)) * 8, Loc: r.pl.GraphLoc},
			// The dedup stamps are probed once per scanned edge.
			{Count: edges, StructBytes: int64(len(rs.sent)) * 8, Loc: r.pl.PrivateLoc},
		},
		SeqBytes: edges*8 + sentPairs*16,
		SeqLoc:   r.pl.GraphLoc,
		CPUOps:   edges * 3,
	}
	ns := rs.team.ForBalanced(edges, 256, load)
	tc := p.Clock()
	p.Compute(ns)
	rs.bd.Add(trace.TDComp, ns)
	rs.rec.PhaseSpan(trace.TDComp, rs.levels, tc, p.Clock())

	// FOLD: route candidates along the grid row to their owners.
	rs.stallBarrier(p, trace.TDComm)
	t0, x0 := p.Clock(), p.XportNs()
	var recv [][]int64
	if rs.foldCodec != nil {
		rs.foldOutRow = row.AlltoallvInt64Compressed(p, send, rs.foldOutRow, rs.foldCodec)
		recv = rs.foldOutRow
	} else {
		recv = row.AlltoallvInt64(p, send)
	}
	rs.chargeComm(p, trace.TDComm, t0, x0)

	// Resolve visitation at the owners.
	rs.frontier = rs.frontier[:0]
	var nfLocal, pairs int64
	for _, vec := range recv {
		for k := 0; k+1 < len(vec); k += 2 {
			pairs++
			v, u := vec[k], vec[k+1]
			if i := v - lo; rs.parent[i] < 0 {
				rs.parent[i] = u
				rs.frontier = append(rs.frontier, v)
				nfLocal++
			}
		}
	}
	proc := machine.PhaseLoad{
		Random: []machine.Access{
			{Count: pairs, StructBytes: r.blockSize * 8, Loc: r.pl.PrivateLoc},
		},
		SeqBytes: pairs * 16,
		SeqLoc:   r.pl.PrivateLoc,
		CPUOps:   pairs * 2,
	}
	ns = rs.team.ForBalanced(pairs, 256, proc)
	tc = p.Clock()
	p.Compute(ns)
	rs.bd.Add(trace.TDComp, ns)
	rs.rec.PhaseSpan(trace.TDComp, rs.levels, tc, p.Clock())

	t0, x0 = p.Clock(), p.XportNs()
	nf := all.AllreduceSumInt64(p, nfLocal)
	rs.chargeComm(p, trace.TDComm, t0, x0)
	return nf
}

// hybridAccount folds the freshly expanded frontier into the column
// visited set and allreduces the frontier's stored-edge count — the
// quantities the hybrid switch heuristic runs on. Only called above
// ModeTopDown, so the historical pure top-down cost model is untouched.
func (rs *rankState) hybridAccount(p *mpi.Proc, all *collective.Group, lists [][]int64) int64 {
	r := rs.r
	cLo, _ := r.colRange(rs.j)
	var frontierLen, mfLocal int64
	for _, list := range lists {
		for _, u := range list {
			i := u - cLo
			rs.colVisited.Set(i)
			mfLocal += rs.rowPtr[i+1] - rs.rowPtr[i]
			frontierLen++
		}
	}
	load := machine.PhaseLoad{
		Random: []machine.Access{
			{Count: frontierLen, StructBytes: rs.colVisited.Bytes(), Loc: r.pl.PrivateLoc},
			{Count: frontierLen, StructBytes: int64(len(rs.rowPtr)) * 8, Loc: r.pl.GraphLoc},
		},
		CPUOps: 2 * frontierLen,
	}
	ns := rs.team.ForBalanced(frontierLen, 256, load)
	tc := p.Clock()
	p.Compute(ns)
	rs.bd.Add(trace.TDComp, ns)
	rs.rec.PhaseSpan(trace.TDComp, rs.levels, tc, p.Clock())

	t0, x0 := p.Clock(), p.XportNs()
	mf := all.AllreduceSumInt64(p, mfLocal)
	rs.chargeComm(p, trace.TDComm, t0, x0)
	return mf
}

// backfillMF records the current frontier's global edge count on the
// level stat that discovered it (the edge count only becomes known one
// expand later in the 2-D layout).
func (rs *rankState) backfillMF(mf int64) {
	if k := len(rs.levelStats); k > 0 {
		rs.levelStats[k-1].MF = mf
	}
}

// seedBottomUp initializes the frontier bitmaps for a pure bottom-up
// run: every rank clears its own block segments, the root's owner sets
// the root's bits. The first buExpand's allgathers then distribute
// them. Charged to Switch like the 1-D engine's mode conversions.
func (rs *rankState) seedBottomUp(p *mpi.Proc, root int64) {
	r := rs.r
	rs.clearOwnSegments()
	if r.ownerOf(root) == p.Rank() {
		off := root - rs.ownLo()
		rs.colFront.Set(int64(rs.i)*r.blockSize + off)
		rs.rowFront.Set(int64(rs.j)*r.blockSize + off)
	}
	load := machine.PhaseLoad{
		SeqBytes: r.blockSize / 4, // both own word segments
		SeqLoc:   r.pl.PrivateLoc,
		CPUOps:   r.blockSize / 32,
	}
	tc := p.Clock()
	p.Compute(rs.team.Parallel(load))
	rs.charge(trace.Switch, tc, p.Clock())
}

// switchToBottomUp converts the just-expanded top-down frontier to the
// bottom-up representation: the owned frontier becomes the rank's
// row-frontier segment, the segments are allgathered along the grid
// row, and the summary is rebuilt. Charged to the Switch phase, like
// the 1-D engine's conversion.
func (rs *rankState) switchToBottomUp(p *mpi.Proc, row *collective.Group) {
	r := rs.r
	lo := rs.ownLo()
	base := int64(rs.j) * r.blockSize
	words := rs.rowFront.Words()
	bsw := r.blockSize / 64
	for w := int64(rs.j) * bsw; w < int64(rs.j+1)*bsw; w++ {
		words[w] = 0
	}
	for _, v := range rs.frontier {
		rs.rowFront.Set(base + (v - lo))
	}
	conv := machine.PhaseLoad{
		SeqBytes: r.blockSize/8 + int64(len(rs.frontier))*8,
		SeqLoc:   r.pl.PrivateLoc,
		CPUOps:   r.blockSize/64 + int64(len(rs.frontier)),
	}
	tc := p.Clock()
	p.Compute(rs.team.Parallel(conv))
	rs.charge(trace.Switch, tc, p.Clock())

	t0, x0 := p.Clock(), p.XportNs()
	rs.rowAllgather(p, row)
	rs.chargeComm(p, trace.Switch, t0, x0)
	rs.rebuildSummary(p, trace.Switch)
}

// switchToTopDown extracts the owned frontier list from the column
// frontier bitmap left by the previous bottom-up resolve. Charged to
// the Switch phase.
func (rs *rankState) switchToTopDown(p *mpi.Proc) {
	r := rs.r
	cLo, _ := r.colRange(rs.j)
	base := int64(rs.i) * r.blockSize
	rs.frontier = rs.colFront.AppendSetBits(rs.frontier[:0], base, base+r.blockSize)
	for k := range rs.frontier {
		rs.frontier[k] += cLo // bitmap index is the in-column offset
	}
	load := machine.PhaseLoad{
		SeqBytes: r.blockSize/8 + int64(len(rs.frontier))*8,
		SeqLoc:   r.pl.PrivateLoc,
		CPUOps:   r.blockSize / 64,
	}
	tc := p.Clock()
	p.Compute(rs.team.Parallel(load))
	rs.charge(trace.Switch, tc, p.Clock())
}

// buExpand runs a bottom-up level's communication prologue: allgather
// the owned frontier segments along the column, fold them into the
// visited set, allreduce the frontier's edge count, then allgather the
// row frontier and rebuild its summary. Returns the global frontier
// edge count.
func (rs *rankState) buExpand(p *mpi.Proc, all, col, row *collective.Group) int64 {
	r := rs.r

	t0, x0 := p.Clock(), p.XportNs()
	if rs.colCodec != nil {
		col.AllgatherRingCompressed(p, rs.colFront.Words(), r.colLayout, rs.colCodec)
	} else {
		col.Allgather(p, rs.colFront.Words(), r.colLayout)
	}
	rs.chargeComm(p, trace.BUComm, t0, x0)

	// Fold the column frontier into the visited set and count its
	// stored edges (the hybrid heuristic's mf).
	rs.colVisited.OrFrom(rs.colFront)
	var mfLocal, cnf int64
	rs.colFront.ForEachSet(func(u int64) {
		mfLocal += rs.rowPtr[u+1] - rs.rowPtr[u]
		cnf++
	})
	load := machine.PhaseLoad{
		Random: []machine.Access{
			{Count: cnf, StructBytes: int64(len(rs.rowPtr)) * 8, Loc: r.pl.GraphLoc},
		},
		SeqBytes: 2 * rs.colFront.Bytes(),
		SeqLoc:   r.pl.PrivateLoc,
		CPUOps:   rs.colFront.Bytes()/8 + cnf,
	}
	tc := p.Clock()
	p.Compute(rs.team.Parallel(load))
	rs.charge(trace.BUComp, tc, p.Clock())

	t0, x0 = p.Clock(), p.XportNs()
	mf := all.AllreduceSumInt64(p, mfLocal)
	rs.chargeComm(p, trace.BUComm, t0, x0)

	t0, x0 = p.Clock(), p.XportNs()
	rs.rowAllgather(p, row)
	rs.chargeComm(p, trace.BUComm, t0, x0)
	rs.bd.BUCommCount++
	rs.rebuildSummary(p, trace.BUComp)
	return mf
}

// rowAllgather gathers the owned frontier segments along the grid row.
func (rs *rankState) rowAllgather(p *mpi.Proc, row *collective.Group) {
	r := rs.r
	if rs.rowCodec != nil {
		row.AllgatherRingCompressed(p, rs.rowFront.Words(), r.rowLayout, rs.rowCodec)
	} else {
		row.Allgather(p, rs.rowFront.Words(), r.rowLayout)
	}
}

// rebuildSummary recomputes the row-frontier summary after an
// allgather, charging the pass to ph.
func (rs *rankState) rebuildSummary(p *mpi.Proc, ph trace.Phase) {
	r := rs.r
	written := rs.rowSum.Rebuild(rs.rowFront)
	load := machine.PhaseLoad{
		SeqBytes: rs.rowFront.Bytes() + written*8,
		SeqLoc:   r.pl.PrivateLoc,
		CPUOps:   rs.rowFront.Bytes() / 8,
	}
	tc := p.Clock()
	p.Compute(rs.team.Parallel(load))
	rs.charge(ph, tc, p.Clock())
}

// buScanFold runs the bottom-up scan over the column's unvisited
// vertices, folds the (child, parent) candidates along the column to
// their owners, resolves visitation and allreduces the new frontier
// size.
func (rs *rankState) buScanFold(p *mpi.Proc, all, col *collective.Group) int64 {
	r := rs.r
	cLo, _ := r.colRange(rs.j)
	width := int64(r.Grid.R) * r.blockSize

	send := rs.sendCol
	for i := range send {
		send[i] = send[i][:0]
	}
	res := rs.team.For(width, omp.DefaultChunk, func(lo, hi int64, load *machine.PhaseLoad) {
		var cSum, cRow, cEdges, cFound int64
		for u := lo; u < hi; u++ {
			if rs.colVisited.Get(u) {
				continue
			}
			for _, v := range rs.col[rs.rowPtr[u]:rs.rowPtr[u+1]] {
				cEdges++
				jc := int(v / (int64(r.Grid.R) * r.blockSize))
				si := int64(jc)*r.blockSize + v%r.blockSize
				cSum++
				if rs.rowSum.CoveredZero(si) {
					continue
				}
				cRow++
				if rs.rowFront.Get(si) {
					cFound++
					iu := int(u / r.blockSize)
					send[iu] = append(send[iu], u+cLo, v)
					break
				}
			}
		}
		load.Random = []machine.Access{
			{Count: cSum, StructBytes: rs.rowSum.Bytes(), Loc: r.pl.PrivateLoc},
			{Count: cRow, StructBytes: rs.rowFront.Bytes(), Loc: r.pl.PrivateLoc},
		}
		load.SeqBytes = (hi-lo)/8 + cEdges*8 + cFound*16
		load.SeqLoc = r.pl.GraphLoc
		load.CPUOps = cEdges*2 + (hi - lo)
	})
	tc := p.Clock()
	p.Compute(res.Ns)
	rs.charge(trace.BUComp, tc, p.Clock())

	rs.stallBarrier(p, trace.BUComm)
	t0, x0 := p.Clock(), p.XportNs()
	var recv [][]int64
	if rs.foldCodec != nil {
		rs.foldOutCol = col.AlltoallvInt64Compressed(p, send, rs.foldOutCol, rs.foldCodec)
		recv = rs.foldOutCol
	} else {
		recv = col.AlltoallvInt64(p, send)
	}
	rs.chargeComm(p, trace.BUComm, t0, x0)

	// Resolve at the owners: clear the owned frontier segments, then
	// mark the newly discovered vertices. Source-position order makes
	// the first-writer deterministic.
	lo := rs.ownLo()
	rs.clearOwnSegments()
	var nfLocal, pairs int64
	for _, vec := range recv {
		for k := 0; k+1 < len(vec); k += 2 {
			pairs++
			v, u := vec[k], vec[k+1]
			if i := v - lo; rs.parent[i] < 0 {
				rs.parent[i] = u
				rs.colFront.Set(int64(rs.i)*r.blockSize + i)
				rs.rowFront.Set(int64(rs.j)*r.blockSize + i)
				nfLocal++
			}
		}
	}
	proc := machine.PhaseLoad{
		Random: []machine.Access{
			{Count: pairs, StructBytes: r.blockSize * 8, Loc: r.pl.PrivateLoc},
		},
		SeqBytes: pairs*16 + r.blockSize/4,
		SeqLoc:   r.pl.PrivateLoc,
		CPUOps:   pairs * 2,
	}
	ns := rs.team.ForBalanced(pairs, 256, proc)
	tc = p.Clock()
	p.Compute(ns)
	rs.charge(trace.BUComp, tc, p.Clock())

	t0, x0 = p.Clock(), p.XportNs()
	nf := all.AllreduceSumInt64(p, nfLocal)
	rs.chargeComm(p, trace.BUComm, t0, x0)
	return nf
}

// clearOwnSegments zeroes the rank's own block segment in the column
// and row frontier bitmaps (the previous level's frontier).
func (rs *rankState) clearOwnSegments() {
	r := rs.r
	bsw := r.blockSize / 64
	cw := rs.colFront.Words()
	for w := int64(rs.i) * bsw; w < int64(rs.i+1)*bsw; w++ {
		cw[w] = 0
	}
	rw := rs.rowFront.Words()
	for w := int64(rs.j) * bsw; w < int64(rs.j+1)*bsw; w++ {
		rw[w] = 0
	}
}

// stallBarrier separates computation from communication as the paper's
// profiling does: the wait at the barrier is load-imbalance stall, the
// dissemination rounds themselves are communication.
func (rs *rankState) stallBarrier(p *mpi.Proc, comm trace.Phase) {
	t0 := p.Clock()
	wait := p.Barrier()
	rs.bd.Add(trace.Stall, wait)
	rs.bd.Add(comm, p.Clock()-t0-wait)
	rs.rec.PhaseSpan(trace.Stall, rs.levels, t0, t0+wait)
	rs.rec.PhaseSpan(comm, rs.levels, t0+wait, p.Clock())
}

// charge adds the [start, end) interval to phase ph and, when tracing
// is on, records it as a span at the current level.
func (rs *rankState) charge(ph trace.Phase, start, end float64) {
	rs.bd.Add(ph, end-start)
	rs.rec.PhaseSpan(ph, rs.levels, start, end)
}

// chargeComm is charge for a communication section: the reliable
// transport's stall accrued inside it is carved into trace.Xport, so
// lossy-link protocol time never masquerades as algorithmic
// communication. x0 is p.XportNs() sampled at the section start; with
// no loss plan the delta is exactly 0.0 and the charge is bit-identical
// to charge().
func (rs *rankState) chargeComm(p *mpi.Proc, ph trace.Phase, t0, x0 float64) {
	end := p.Clock()
	dx := p.XportNs() - x0
	rs.bd.Add(trace.Xport, dx)
	rs.bd.Add(ph, end-t0-dx)
	rs.rec.PhaseSpan(ph, rs.levels, t0, end)
}

// reset clears per-root state.
func (rs *rankState) reset() {
	for i := range rs.parent {
		rs.parent[i] = -1
	}
	rs.frontier = rs.frontier[:0]
	rs.bd = trace.Breakdown{}
	rs.levels = 0
	rs.levelStats = rs.levelStats[:0]
	if rs.colVisited != nil {
		rs.colVisited.Reset()
	}
}
