package bfs2d

import (
	"numabfs/internal/collective"
	"numabfs/internal/machine"
	"numabfs/internal/mpi"
	"numabfs/internal/trace"
)

// RootResult summarizes one 2-D BFS iteration.
type RootResult struct {
	Root           int64
	TimeNs         float64
	Visited        int64
	TraversedEdges int64
	TEPS           float64
	Levels         int
	Breakdown      trace.Breakdown // mean across ranks
	// CommBytes is the exact total network volume (intra + inter) of
	// the iteration, for comparison with the 1-D engine. With Compress
	// on these are wire bytes; RawCommBytes is the logical volume
	// (identical to CommBytes when compression is off).
	CommBytes    int64
	RawCommBytes int64
}

// RunRoot runs one top-down 2-D BFS from root.
func (r *Runner) RunRoot(root int64) RootResult {
	if len(r.states) == 0 || r.states[0] == nil {
		panic("bfs2d: RunRoot before Setup")
	}
	r.W.ResetClocks()
	all := collective.WorldGroup(r.W)
	r.W.Run(func(p *mpi.Proc) {
		rs := r.states[p.Rank()]
		rs.run(p, all, root)
	})
	res := RootResult{Root: root, TimeNs: r.W.MaxClock()}
	var bd trace.Breakdown
	for _, rs := range r.states {
		bd.Merge(rs.bd)
		for _, pa := range rs.parent {
			if pa >= 0 {
				res.Visited++
			}
		}
		if rs.levelsRun() > res.Levels {
			res.Levels = rs.levelsRun()
		}
	}
	// Traversed edges: sum local adjacencies whose source was visited;
	// every undirected edge is stored twice across the grid.
	for _, rs := range r.states {
		cLo, cHi := r.colRange(rs.j)
		for u := cLo; u < cHi; u++ {
			if r.states[r.ownerOf(u)].parentOf(u) >= 0 {
				res.TraversedEdges += rs.rowPtr[u-cLo+1] - rs.rowPtr[u-cLo]
			}
		}
	}
	res.TraversedEdges /= 2
	bd.Scale(1 / float64(len(r.states)))
	res.Breakdown = bd
	vol := r.W.Net().Volume()
	res.CommBytes = vol.IntraBytes + vol.InterBytes
	res.RawCommBytes = vol.RawIntraBytes + vol.RawInterBytes
	if res.TimeNs > 0 {
		res.TEPS = float64(res.TraversedEdges) / (res.TimeNs / 1e9)
	}
	return res
}

// parentOf returns the parent of owned vertex v.
func (rs *rankState) parentOf(v int64) int64 {
	return rs.parent[v-rs.ownLo()]
}

// levelsRun reports how many levels this rank recorded.
func (rs *rankState) levelsRun() int { return rs.levels }

// run executes the lockstep level loop on this rank.
func (rs *rankState) run(p *mpi.Proc, all *collective.Group, root int64) {
	r := rs.r
	rs.reset()
	rs.rec = p.Obs()

	lo := rs.ownLo()
	var nfLocal int64
	if r.ownerOf(root) == p.Rank() {
		rs.parent[root-lo] = root
		rs.frontier = append(rs.frontier, root)
		nfLocal = 1
	}
	t0 := p.Clock()
	nf := all.AllreduceSumInt64(p, nfLocal)
	rs.charge(trace.TDComm, t0, p.Clock())

	col := r.cols[rs.j]
	row := r.rows[rs.i]
	send := make([][]int64, r.Grid.C)

	for nf > 0 {
		rs.levels++

		// EXPAND: gather the frontier of this column's blocks down the
		// processor column.
		levelStart := p.Clock()
		t0 = levelStart
		var lists [][]int64
		if rs.codec != nil {
			rs.lists = col.AllgathervInt64Compressed(p, rs.frontier, rs.lists, rs.codec)
			lists = rs.lists
		} else {
			lists = col.AllgathervInt64(p, rs.frontier)
		}
		rs.charge(trace.TDComm, t0, p.Clock())

		// LOCAL: scan the expanded frontier's local adjacency.
		for c := range send {
			send[c] = send[c][:0]
		}
		rs.sentStamp++
		var edges, frontierLen, sentPairs int64
		for _, list := range lists {
			frontierLen += int64(len(list))
			for _, u := range list {
				for _, v := range rs.neighbors(u) {
					edges++
					// v's owner sits in this grid row at column j(v).
					jc := int(v / (int64(r.Grid.R) * r.blockSize))
					// Send each candidate once per level: the column
					// aggregates R blocks of edges, so the same child is
					// typically discovered many times locally.
					si := int64(jc)*r.blockSize + v%r.blockSize
					if rs.sent[si] == rs.sentStamp {
						continue
					}
					rs.sent[si] = rs.sentStamp
					sentPairs++
					send[jc] = append(send[jc], v, u)
				}
			}
		}
		load := machine.PhaseLoad{
			Random: []machine.Access{
				{Count: frontierLen, StructBytes: int64(len(rs.col)+len(rs.rowPtr)) * 8, Loc: r.pl.GraphLoc},
				// The dedup stamps are probed once per scanned edge.
				{Count: edges, StructBytes: int64(len(rs.sent)) * 8, Loc: r.pl.PrivateLoc},
			},
			SeqBytes: edges*8 + sentPairs*16,
			SeqLoc:   r.pl.GraphLoc,
			CPUOps:   edges * 3,
		}
		ns := rs.team.ForBalanced(edges, 256, load)
		tc := p.Clock()
		p.Compute(ns)
		rs.bd.Add(trace.TDComp, ns)
		rs.rec.PhaseSpan(trace.TDComp, rs.levels, tc, p.Clock())

		// FOLD: route candidates along the grid row to their owners.
		t0 = p.Clock()
		wait := p.Barrier()
		rs.bd.Add(trace.Stall, wait)
		rs.bd.Add(trace.TDComm, p.Clock()-t0-wait)
		rs.rec.PhaseSpan(trace.Stall, rs.levels, t0, t0+wait)
		rs.rec.PhaseSpan(trace.TDComm, rs.levels, t0+wait, p.Clock())
		t0 = p.Clock()
		recv := row.AlltoallvInt64(p, send)
		rs.charge(trace.TDComm, t0, p.Clock())

		// Resolve visitation at the owners.
		rs.frontier = rs.frontier[:0]
		nfLocal = 0
		var pairs int64
		for _, vec := range recv {
			for k := 0; k+1 < len(vec); k += 2 {
				pairs++
				v, u := vec[k], vec[k+1]
				if i := v - lo; rs.parent[i] < 0 {
					rs.parent[i] = u
					rs.frontier = append(rs.frontier, v)
					nfLocal++
				}
			}
		}
		proc := machine.PhaseLoad{
			Random: []machine.Access{
				{Count: pairs, StructBytes: r.blockSize * 8, Loc: r.pl.PrivateLoc},
			},
			SeqBytes: pairs * 16,
			SeqLoc:   r.pl.PrivateLoc,
			CPUOps:   pairs * 2,
		}
		ns = rs.team.ForBalanced(pairs, 256, proc)
		tc = p.Clock()
		p.Compute(ns)
		rs.bd.Add(trace.TDComp, ns)
		rs.rec.PhaseSpan(trace.TDComp, rs.levels, tc, p.Clock())

		t0 = p.Clock()
		nf = all.AllreduceSumInt64(p, nfLocal)
		rs.charge(trace.TDComm, t0, p.Clock())
		rs.bd.TDLevels++
		rs.rec.LevelSpan(false, rs.levels, levelStart, p.Clock())
	}
}

// charge adds the [start, end) interval to phase ph and, when tracing
// is on, records it as a span at the current level.
func (rs *rankState) charge(ph trace.Phase, start, end float64) {
	rs.bd.Add(ph, end-start)
	rs.rec.PhaseSpan(ph, rs.levels, start, end)
}

// reset clears per-root state.
func (rs *rankState) reset() {
	for i := range rs.parent {
		rs.parent[i] = -1
	}
	rs.frontier = rs.frontier[:0]
	rs.bd = trace.Breakdown{}
	rs.levels = 0
}
