package bfs2d

import (
	"fmt"
	"math"
	"sort"

	"numabfs/internal/bitmap"
	"numabfs/internal/collective"
	"numabfs/internal/mpi"
	"numabfs/internal/omp"
	"numabfs/internal/wire"
)

// Setup generates the graph and builds the 2-D partitioned adjacency:
// each rank generates a slice of the R-MAT edge list, routes each
// directed adjacency (u, v) to the grid rank at (row of v's block,
// column of u), and builds its local CSR over the column's vertex range.
func (r *Runner) Setup() {
	r.alpha, r.beta, r.granularity = r.Alpha, r.Beta, r.Granularity
	if r.alpha == 0 {
		r.alpha = DefaultAlpha
	}
	if r.beta == 0 {
		r.beta = DefaultBeta
	}
	if r.granularity == 0 {
		r.granularity = DefaultGranularity
	}
	if r.Mode != ModeTopDown {
		if r.blockSize%64 != 0 {
			panic(fmt.Sprintf("bfs2d: %s mode needs a block size divisible by 64, have %d", r.Mode, r.blockSize))
		}
		colWords := int64(r.Grid.R) * r.blockSize / 64
		rowWords := int64(r.Grid.C) * r.blockSize / 64
		r.colLayout = collective.EvenLayout(colWords, r.Grid.R)
		r.rowLayout = collective.EvenLayout(rowWords, r.Grid.C)
	}
	// Generation and routing are indexed by grid cell, not world rank:
	// with spares parked only the grid ranks run, and at zero spares
	// cell == rank so the historical slicing is reproduced exactly.
	r.W.Run(func(p *mpi.Proc) {
		cfg := r.cfg
		cells := r.Grid.R * r.Grid.C
		me := p.Rank()
		cell := int64(r.rankCell[me])
		ne := r.Params.NumEdges()
		lo := ne * cell / int64(cells)
		hi := ne * (cell + 1) / int64(cells)

		send := make([][]int64, cells)
		route := func(u, v int64) {
			j := int(u / (int64(r.Grid.R) * r.blockSize))
			i := int(v/r.blockSize) % r.Grid.R
			send[j*r.Grid.R+i] = append(send[j*r.Grid.R+i], u, v)
		}
		for e := lo; e < hi; e++ {
			u, v := r.Params.EdgeAt(e)
			if u == v {
				continue
			}
			route(u, v)
			route(v, u)
		}
		p.Compute(float64(hi-lo) * float64(r.Params.Scale) * 6 * cfg.CPUOpNs)

		recv := r.grid.AlltoallvInt64(p, send)

		i, j := r.gridOf(me)
		cLo, cHi := r.colRange(j)
		width := cHi - cLo
		rs := &rankState{
			r: r, i: i, j: j,
			team:   omp.TeamFor(cfg, r.pl),
			rowPtr: make([]int64, width+1),
		}
		// Counting pass, fill, per-row sort + dedup.
		var pairs []int64
		for _, vec := range recv {
			pairs = append(pairs, vec...)
		}
		for k := 0; k+1 < len(pairs); k += 2 {
			rs.rowPtr[pairs[k]-cLo+1]++
		}
		for w := int64(0); w < width; w++ {
			rs.rowPtr[w+1] += rs.rowPtr[w]
		}
		rs.col = make([]int64, rs.rowPtr[width])
		fill := make([]int64, width)
		for k := 0; k+1 < len(pairs); k += 2 {
			u := pairs[k] - cLo
			rs.col[rs.rowPtr[u]+fill[u]] = pairs[k+1]
			fill[u]++
		}
		kept := int64(0)
		newPtr := make([]int64, width+1)
		for u := int64(0); u < width; u++ {
			row := rs.col[rs.rowPtr[u]:rs.rowPtr[u+1]]
			sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
			var prev int64 = -1
			for _, v := range row {
				if v != prev {
					rs.col[kept] = v
					kept++
					prev = v
				}
			}
			newPtr[u+1] = kept
		}
		rs.col = rs.col[:kept]
		rs.rowPtr = newPtr

		m := float64(len(pairs) / 2)
		logd := math.Log2(1 + m/math.Max(1, float64(width)))
		p.Compute(m*16/cfg.MemBWPerSocket + m*logd*4*cfg.CPUOpNs)

		rs.parent = make([]int64, r.blockSize)
		if r.Compress {
			rs.codec = &wire.Codec{Team: rs.team, Loc: r.pl.PrivateLoc}
			rs.lists = make([][]int64, r.Grid.R)
			rs.foldCodec = &wire.Codec{Team: rs.team, Loc: r.pl.PrivateLoc}
			rs.foldOutRow = make([][]int64, r.Grid.C)
		}
		if r.Mode != ModeTopDown {
			rs.colVisited = bitmap.New(width)
			rs.colFront = bitmap.New(width)
			rs.rowFront = bitmap.New(int64(r.Grid.C) * r.blockSize)
			rs.rowSum = bitmap.NewSummary(int64(r.Grid.C)*r.blockSize, r.granularity)
			rs.sendCol = make([][]int64, r.Grid.R)
			if r.Compress {
				rs.colCodec = &wire.Codec{Team: rs.team, Loc: r.pl.PrivateLoc}
				rs.rowCodec = &wire.Codec{Team: rs.team, Loc: r.pl.PrivateLoc}
				rs.foldOutCol = make([][]int64, r.Grid.R)
			}
		}
		rs.sendRow = make([][]int64, r.Grid.C)
		rs.sent = make([]int64, int64(r.Grid.C)*r.blockSize)
		for k := range rs.sent {
			rs.sent[k] = -1
		}
		r.states[me] = rs
	})
	r.SetupNs = r.W.MaxClock()
	r.W.ResetClocks()
	r.totalEdges = 0
	for _, rs := range r.states {
		if rs != nil {
			r.totalEdges += int64(len(rs.col))
		}
	}
}

// neighbors returns the locally stored adjacency of global vertex u
// (which must lie in this rank's column range).
func (rs *rankState) neighbors(u int64) []int64 {
	cLo, _ := rs.r.colRange(rs.j)
	i := u - cLo
	return rs.col[rs.rowPtr[i]:rs.rowPtr[i+1]]
}

// ownLo returns the first vertex of the rank's owned block.
func (rs *rankState) ownLo() int64 {
	return rs.r.block(rs.i, rs.j) * rs.r.blockSize
}
