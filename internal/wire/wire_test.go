package wire

import (
	"math/rand"
	"testing"

	"numabfs/internal/machine"
	"numabfs/internal/omp"
)

// segPatterns returns segments spanning the shapes the selector must
// handle: empty, a single bit, near-empty, clustered runs, alternating
// words, dense, and full.
func segPatterns() map[string][]uint64 {
	pats := map[string][]uint64{
		"empty":      make([]uint64, 32),
		"nil":        nil,
		"one-word":   {0xdeadbeef},
		"full":       {^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)},
		"single-bit": make([]uint64, 64),
		"clustered":  make([]uint64, 128),
		"alternate":  make([]uint64, 64),
		"dense-rand": make([]uint64, 64),
		"sparse":     make([]uint64, 256),
	}
	pats["single-bit"][37] = 1 << 11
	for i := 40; i < 56; i++ {
		pats["clustered"][i] = ^uint64(0)
	}
	for i := range pats["alternate"] {
		if i%2 == 0 {
			pats["alternate"][i] = 0xaaaa5555aaaa5555
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := range pats["dense-rand"] {
		pats["dense-rand"][i] = rng.Uint64()
	}
	for i := 0; i < 8; i++ {
		pats["sparse"][rng.Intn(256)] = 1 << uint(rng.Intn(64))
	}
	return pats
}

func segsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRoundTripAllFormats encodes every pattern in every bitmap format
// and checks the decode restores the exact words, that the header names
// the format, and that the size predictors match the encoded length.
func TestRoundTripAllFormats(t *testing.T) {
	for name, seg := range segPatterns() {
		st := Analyze(seg)
		for _, f := range []Format{FormatDense, FormatSparse, FormatRLE} {
			enc := Append(nil, f, seg)
			if Format(enc[0]) != f {
				t.Fatalf("%s/%s: header %d", name, f, enc[0])
			}
			var want int
			switch f {
			case FormatDense:
				want = DenseSize(len(seg))
			case FormatSparse:
				want = SparseSize(st.Pop)
			case FormatRLE:
				want = st.RLEBytes
			}
			if len(enc) != want {
				t.Fatalf("%s/%s: encoded %d bytes, predicted %d", name, f, len(enc), want)
			}
			dst := make([]uint64, len(seg))
			for i := range dst {
				dst[i] = ^uint64(0) // decode must overwrite, not or
			}
			got, err := DecodeBytes(dst, enc)
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", name, f, err)
			}
			if got != f {
				t.Fatalf("%s/%s: decoded header %s", name, f, got)
			}
			if !segsEqual(dst, seg) {
				t.Fatalf("%s/%s: round trip mismatch", name, f)
			}
		}
	}
}

// TestChooseNeverExceedsDense pins the selector's contract: the chosen
// size never exceeds the dense size (raw words + 1-byte header), i.e.
// adaptive selection costs at most the header over shipping raw words.
func TestChooseNeverExceedsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		words := rng.Intn(200)
		seg := make([]uint64, words)
		density := rng.Float64() * rng.Float64() // skew toward sparse
		for i := range seg {
			for b := 0; b < 64; b++ {
				if rng.Float64() < density {
					seg[i] |= 1 << uint(b)
				}
			}
		}
		st := Analyze(seg)
		f, size := Choose(st)
		if size > DenseSize(words) {
			t.Fatalf("trial %d: Choose picked %s at %d bytes > dense %d",
				trial, f, size, DenseSize(words))
		}
		if got := len(Append(nil, f, seg)); got != size {
			t.Fatalf("trial %d: Choose predicted %d bytes, %s encoded to %d",
				trial, size, f, got)
		}
	}
}

// TestAnalyze checks the one-pass scan against naive counting.
func TestAnalyze(t *testing.T) {
	for name, seg := range segPatterns() {
		st := Analyze(seg)
		if st.Words != len(seg) {
			t.Fatalf("%s: Words = %d", name, st.Words)
		}
		var pop int
		for _, w := range seg {
			for ; w != 0; w &= w - 1 {
				pop++
			}
		}
		if st.Pop != pop {
			t.Fatalf("%s: Pop = %d, want %d", name, st.Pop, pop)
		}
		if got := len(appendRLE(nil, seg)); got != st.RLEBytes {
			t.Fatalf("%s: RLEBytes = %d, encoded %d", name, st.RLEBytes, got)
		}
	}
}

// TestDecodeErrors feeds malformed payloads; every case must return an
// error rather than panic or write out of bounds.
func TestDecodeErrors(t *testing.T) {
	seg := []uint64{1, 0, ^uint64(0)}
	dst := make([]uint64, len(seg))
	cases := map[string][]byte{
		"empty":             {},
		"unknown-format":    {0x7f, 1, 2, 3},
		"auto-header":       {byte(FormatAuto)},
		"dense-short":       Append(nil, FormatDense, seg)[:8],
		"dense-long":        append(Append(nil, FormatDense, seg), 0),
		"sparse-no-count":   {byte(FormatSparse), 1, 0},
		"sparse-short":      {byte(FormatSparse), 2, 0, 0, 0, 5, 0, 0, 0},
		"sparse-oob-index":  {byte(FormatSparse), 1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff},
		"rle-truncated":     {byte(FormatRLE)},
		"rle-overflow":      {byte(FormatRLE), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0},
		"rle-no-literals":   {byte(FormatRLE), 0, 3},
		"rle-trailing":      append(Append(nil, FormatRLE, seg), 0xab),
		"list-not-list":     {byte(FormatDense)},
		"list-short-count":  {byte(FormatList), 0x80},
		"list-short-delta":  {byte(FormatList), 2, 2},
		"list-trailing":     append(AppendList(nil, []int64{3}), 0xcd),
	}
	for name, data := range cases {
		if name[:4] == "list" {
			if _, err := DecodeList(data, nil); err == nil {
				t.Errorf("%s: DecodeList accepted malformed payload", name)
			}
			continue
		}
		if _, err := DecodeBytes(dst, data); err == nil {
			t.Errorf("%s: DecodeBytes accepted malformed payload", name)
		}
	}
}

// TestListRoundTrip covers sorted vertex lists (the production shape),
// arbitrary signed values, and append-to-existing semantics.
func TestListRoundTrip(t *testing.T) {
	lists := [][]int64{
		nil,
		{0},
		{5, 6, 7, 1000, 1 << 40},
		{-3, 12, -1 << 50, 1 << 50, 0},
		make([]int64, 300),
	}
	rng := rand.New(rand.NewSource(3))
	for i := range lists[4] {
		lists[4][i] = rng.Int63() - rng.Int63()
	}
	for i, vals := range lists {
		enc := AppendList(nil, vals)
		if len(enc) != ListSize(vals) {
			t.Fatalf("list %d: encoded %d bytes, ListSize %d", i, len(enc), ListSize(vals))
		}
		out, err := DecodeList(enc, []int64{99})
		if err != nil {
			t.Fatalf("list %d: %v", i, err)
		}
		if out[0] != 99 {
			t.Fatalf("list %d: decode clobbered existing entries", i)
		}
		out = out[1:]
		if len(out) != len(vals) {
			t.Fatalf("list %d: decoded %d values, want %d", i, len(out), len(vals))
		}
		for j := range vals {
			if out[j] != vals[j] {
				t.Fatalf("list %d: value %d = %d, want %d", i, j, out[j], vals[j])
			}
		}
	}
}

func testCodec(force Format) *Codec {
	cfg := machine.TableI()
	return &Codec{
		Team:  omp.Team{Cfg: cfg, Threads: 8, SocketsUsed: 1, BWShare: 1},
		Loc:   machine.Local,
		Force: force,
	}
}

// TestCodecRoundTrip runs Encode/Decode through the cost-charging codec
// for every pattern under the adaptive selector and each forced format.
func TestCodecRoundTrip(t *testing.T) {
	for _, force := range []Format{FormatAuto, FormatDense, FormatSparse, FormatRLE} {
		c := testCodec(force)
		for name, seg := range segPatterns() {
			pl, ens := c.Encode(seg)
			if ens < 0 {
				t.Fatalf("%s/%s: negative encode time", force, name)
			}
			if pl.RawBytes != 8*int64(len(seg)) {
				t.Fatalf("%s/%s: RawBytes = %d", force, name, pl.RawBytes)
			}
			if pl.Format == FormatDense {
				if pl.WireBytes != int64(DenseSize(len(seg))) {
					t.Fatalf("%s/%s: dense WireBytes = %d", force, name, pl.WireBytes)
				}
			} else if pl.WireBytes != int64(len(pl.Enc)) {
				t.Fatalf("%s/%s: WireBytes %d != len(Enc) %d", force, name, pl.WireBytes, len(pl.Enc))
			}
			if force != FormatAuto && pl.Format != force &&
				!(force == FormatSparse && len(seg) > sparseMaxWords) {
				t.Fatalf("%s/%s: forced format came back %s", force, name, pl.Format)
			}
			dst := make([]uint64, len(seg))
			if dns := c.Decode(dst, pl); dns < 0 {
				t.Fatalf("%s/%s: negative decode time", force, name)
			}
			if !segsEqual(dst, seg) {
				t.Fatalf("%s/%s: codec round trip mismatch", force, name)
			}
		}
	}
}

// TestCodecAutoNeverExceedsDense is the codec-level form of the
// selector property: under FormatAuto, wire bytes never exceed raw
// bytes + 1 header byte per segment.
func TestCodecAutoNeverExceedsDense(t *testing.T) {
	c := testCodec(FormatAuto)
	segs := 0
	for _, seg := range segPatterns() {
		if pl, _ := c.Encode(seg); pl.WireBytes > pl.RawBytes+1 {
			t.Fatalf("auto payload %d wire bytes for %d raw", pl.WireBytes, pl.RawBytes)
		}
		segs++
	}
	st := c.Stats()
	var total int64
	for _, n := range st.Segments {
		total += n
	}
	if total != int64(segs) {
		t.Fatalf("stats counted %d segments, encoded %d", total, segs)
	}
	if st.WireBytes > st.RawBytes+total {
		t.Fatalf("aggregate wire %d exceeds raw %d + %d headers", st.WireBytes, st.RawBytes, total)
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Fatal("ResetStats left residue")
	}
}

// TestCodecDensityThreshold checks the ablation selector: with a
// density threshold set, the codec chooses sparse strictly below it and
// dense at or above it, never RLE.
func TestCodecDensityThreshold(t *testing.T) {
	c := testCodec(FormatAuto)
	c.SparseMaxDensity = 1.0 / 64
	sparse := make([]uint64, 64) // density 1/(64*64)
	sparse[10] = 1
	if pl, _ := c.Encode(sparse); pl.Format != FormatSparse {
		t.Fatalf("below threshold encoded %s", pl.Format)
	}
	dense := make([]uint64, 64) // density 1/64 == threshold
	for i := range dense {
		dense[i] = 1
	}
	if pl, _ := c.Encode(dense); pl.Format != FormatDense {
		t.Fatalf("at threshold encoded %s", pl.Format)
	}
	clustered := make([]uint64, 64) // RLE-friendly, still must not pick RLE
	clustered[0] = ^uint64(0)
	if pl, _ := c.Encode(clustered); pl.Format == FormatRLE {
		t.Fatal("density-threshold selector chose RLE")
	}
}

// TestCodecListRoundTrip exercises EncodeList/DecodeList with scratch
// reuse, the 2-D expand-phase pattern.
func TestCodecListRoundTrip(t *testing.T) {
	c := testCodec(FormatAuto)
	var out []int64
	for trial, vals := range [][]int64{{3, 1, 4, 1, 5}, nil, {1 << 45, -9}} {
		pl, ens := c.EncodeList(vals)
		if ens < 0 {
			t.Fatalf("trial %d: negative encode time", trial)
		}
		if pl.Format != FormatList || pl.WireBytes != int64(ListSize(vals)) {
			t.Fatalf("trial %d: payload %s/%d bytes", trial, pl.Format, pl.WireBytes)
		}
		var dns float64
		out, dns = c.DecodeList(pl, out[:0])
		if dns < 0 {
			t.Fatalf("trial %d: negative decode time", trial)
		}
		if len(out) != len(vals) {
			t.Fatalf("trial %d: %d values back, want %d", trial, len(out), len(vals))
		}
		for i := range vals {
			if out[i] != vals[i] {
				t.Fatalf("trial %d: value %d mismatch", trial, i)
			}
		}
	}
	if c.Stats().Segments[FormatList] != 3 {
		t.Fatalf("list segments = %d", c.Stats().Segments[FormatList])
	}
}
