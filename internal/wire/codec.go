package wire

import (
	"fmt"

	"numabfs/internal/machine"
	"numabfs/internal/omp"
)

// Payload is one encoded segment in flight through a collective. The
// dense format travels as an alias of the owner's stable words — no
// host copy, exactly like the uncompressed path — while the simulated
// transfer still pays DenseSize bytes. Every other format carries the
// real encoded bytes, so receivers exercise the byte decoders the fuzz
// tests cover. WireBytes is what crosses the simulated network;
// RawBytes is the logical (pre-encoding) size of the segment.
type Payload struct {
	Format    Format
	Dense     []uint64
	Enc       []byte
	WireBytes int64
	RawBytes  int64
}

// Stats accumulates one codec's encode-side selector decisions:
// segments encoded per format and the raw-vs-wire byte totals.
type Stats struct {
	Segments  [NumFormats]int64
	RawBytes  int64
	WireBytes int64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	for i := range s.Segments {
		s.Segments[i] += o.Segments[i]
	}
	s.RawBytes += o.RawBytes
	s.WireBytes += o.WireBytes
}

// Ratio returns wire bytes over raw bytes, or 1 when nothing was
// encoded.
func (s Stats) Ratio() float64 {
	if s.RawBytes == 0 {
		return 1
	}
	return float64(s.WireBytes) / float64(s.RawBytes)
}

// Codec encodes and decodes segments for one rank, charging the
// modelled CPU cost of every pass through the machine cost model (the
// rank's whole thread team streams the words, like the uncompressed
// path's staging copies). A Codec must not be shared between ranks,
// and one Codec serves one collective at a time: Encode reuses a
// single scratch buffer, and payloads alias it until every receiver
// has decoded — the collective's own synchronization (the ring
// completes before the next level's global allreduce) is what makes
// the reuse safe, the same argument as the engine's shared receive
// buffers.
type Codec struct {
	// Team is the rank's modelled execution resources (omp.TeamFor).
	Team omp.Team
	// Loc is the locality of the raw segment words being scanned.
	Loc machine.Locality

	// Force pins every segment to one wire format; FormatAuto (the
	// zero value) enables adaptive per-segment selection.
	Force Format
	// SparseMaxDensity, when > 0, replaces the analytic size-based
	// selector with the classic density threshold of Buluç & Madduri:
	// sparse below the threshold, dense at or above it (the ablation
	// knob; never chooses RLE).
	SparseMaxDensity float64

	buf   []byte
	// slots are additional scratch buffers for pipelined collectives
	// (EncodeSlot): a segmented ring keeps several of this rank's
	// encoded chunks in flight at once — possibly several hops
	// downstream — so each chunk needs scratch that lives until the
	// whole collective completes. Grown on demand, reused across calls.
	slots [][]byte
	stats Stats
}

// Stats returns the codec's accumulated encode statistics.
func (c *Codec) Stats() Stats { return c.stats }

// ResetStats clears the accumulated statistics.
func (c *Codec) ResetStats() { c.stats = Stats{} }

// pick resolves the wire format for a segment with stats st.
func (c *Codec) pick(st SegStats) Format {
	f := c.Force
	if f == FormatAuto || f == FormatList {
		if c.SparseMaxDensity > 0 {
			f = FormatDense
			if st.Words <= sparseMaxWords &&
				float64(st.Pop) < c.SparseMaxDensity*float64(64*st.Words) {
				f = FormatSparse
			}
		} else {
			f, _ = Choose(st)
		}
	}
	if f == FormatSparse && st.Words > sparseMaxWords {
		f = FormatDense
	}
	return f
}

// Encode encodes seg and returns the payload plus the modelled CPU
// time (ns) of the selection scan and the encoding pass. The scan
// streams the raw words once; sparse and RLE pay a second pass that
// writes the wire bytes. Dense costs only the scan — the payload
// aliases seg, so, like the uncompressed path, no host copy happens
// and none is charged.
func (c *Codec) Encode(seg []uint64) (Payload, float64) {
	var pl Payload
	var ns float64
	c.buf, pl, ns = c.encode(c.buf, seg)
	return pl, ns
}

// EncodeSlot is Encode with a dedicated scratch buffer per slot, for
// pipelined collectives that keep several of this rank's encoded chunks
// in flight at once: chunk i encodes into slot i, and no slot is reused
// until the collective completes globally (the engine's inter-level
// allreduce), so a payload several ring hops downstream is never
// overwritten by a later encode.
func (c *Codec) EncodeSlot(seg []uint64, slot int) (Payload, float64) {
	for len(c.slots) <= slot {
		c.slots = append(c.slots, nil)
	}
	var pl Payload
	var ns float64
	c.slots[slot], pl, ns = c.encode(c.slots[slot], seg)
	return pl, ns
}

// encode is the shared encode body: it writes any non-dense encoding
// into buf (reusing its capacity) and returns the buffer, the payload
// and the modelled CPU time.
func (c *Codec) encode(buf []byte, seg []uint64) ([]byte, Payload, float64) {
	st := Analyze(seg)
	f := c.pick(st)
	raw := 8 * int64(len(seg))
	load := machine.PhaseLoad{SeqBytes: raw, SeqLoc: c.Loc, CPUOps: int64(len(seg))}
	pl := Payload{Format: f, RawBytes: raw}
	switch f {
	case FormatDense:
		buf = buf[:0]
		pl.Dense = seg
		pl.WireBytes = int64(DenseSize(len(seg)))
	default:
		buf = Append(buf[:0], f, seg)
		pl.Enc = buf
		pl.WireBytes = int64(len(buf))
		load.SeqBytes += pl.WireBytes
		if f == FormatSparse {
			load.CPUOps += int64(st.Pop)
		} else {
			load.CPUOps += int64(len(seg))
		}
	}
	c.stats.Segments[f]++
	c.stats.RawBytes += raw
	c.stats.WireBytes += pl.WireBytes
	return buf, pl, c.Team.Parallel(load)
}

// Decode decodes pl into dst, overwriting it, and returns the modelled
// CPU time. Dense decode is free beyond the transfer, mirroring the
// uncompressed path (the receive copy is part of the modelled
// transfer); sparse and RLE pay a clear-plus-scatter pass over the
// wire bytes and the destination words.
func (c *Codec) Decode(dst []uint64, pl Payload) float64 {
	if pl.Format == FormatDense {
		copy(dst, pl.Dense)
		return 0
	}
	f, err := DecodeBytes(dst, pl.Enc)
	if err != nil {
		panic(fmt.Sprintf("wire: corrupt %s payload: %v", pl.Format, err))
	}
	if f != pl.Format {
		panic(fmt.Sprintf("wire: payload header %s does not match format %s", f, pl.Format))
	}
	load := machine.PhaseLoad{
		SeqBytes: pl.WireBytes + pl.RawBytes,
		SeqLoc:   c.Loc,
		CPUOps:   pl.RawBytes / 8,
	}
	if f == FormatSparse {
		load.CPUOps = (pl.WireBytes - 5) / 4
	}
	return c.Team.Parallel(load)
}

// EncodeList encodes an int64 vertex list in the varint-delta format
// and returns the payload plus the modelled CPU time (one read pass
// over the values, one write pass over the wire bytes).
func (c *Codec) EncodeList(vals []int64) (Payload, float64) {
	c.buf = AppendList(c.buf[:0], vals)
	raw := 8 * int64(len(vals))
	pl := Payload{
		Format:    FormatList,
		Enc:       c.buf,
		WireBytes: int64(len(c.buf)),
		RawBytes:  raw,
	}
	c.stats.Segments[FormatList]++
	c.stats.RawBytes += raw
	c.stats.WireBytes += pl.WireBytes
	load := machine.PhaseLoad{
		SeqBytes: raw + pl.WireBytes,
		SeqLoc:   c.Loc,
		CPUOps:   2 * int64(len(vals)),
	}
	return pl, c.Team.Parallel(load)
}

// EncodeListSlot is EncodeList with a dedicated scratch buffer per
// slot, for collectives that keep several of this rank's encoded lists
// in flight at once (the pairwise alltoallv encodes one list per step):
// step s encodes into slot s, and no slot is reused until the
// collective completes globally, so a payload still travelling is never
// overwritten by a later encode — the same argument as EncodeSlot.
func (c *Codec) EncodeListSlot(vals []int64, slot int) (Payload, float64) {
	for len(c.slots) <= slot {
		c.slots = append(c.slots, nil)
	}
	c.slots[slot] = AppendList(c.slots[slot][:0], vals)
	raw := 8 * int64(len(vals))
	pl := Payload{
		Format:    FormatList,
		Enc:       c.slots[slot],
		WireBytes: int64(len(c.slots[slot])),
		RawBytes:  raw,
	}
	c.stats.Segments[FormatList]++
	c.stats.RawBytes += raw
	c.stats.WireBytes += pl.WireBytes
	load := machine.PhaseLoad{
		SeqBytes: raw + pl.WireBytes,
		SeqLoc:   c.Loc,
		CPUOps:   2 * int64(len(vals)),
	}
	return pl, c.Team.Parallel(load)
}

// DecodeList decodes a list payload, appending the values to out, and
// returns the extended slice plus the modelled CPU time.
func (c *Codec) DecodeList(pl Payload, out []int64) ([]int64, float64) {
	out, err := DecodeList(pl.Enc, out)
	if err != nil {
		panic(fmt.Sprintf("wire: corrupt list payload: %v", err))
	}
	load := machine.PhaseLoad{
		SeqBytes: pl.WireBytes + pl.RawBytes,
		SeqLoc:   c.Loc,
		CPUOps:   pl.RawBytes / 4,
	}
	return out, c.Team.Parallel(load)
}
