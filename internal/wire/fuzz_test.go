package wire

import (
	"encoding/binary"
	"testing"
)

// wordsFromBytes builds a word segment from fuzzer bytes (zero-padding
// the tail) so every input maps to a valid segment.
func wordsFromBytes(data []byte) []uint64 {
	seg := make([]uint64, (len(data)+7)/8)
	var tail [8]byte
	for i := range seg {
		if (i+1)*8 <= len(data) {
			seg[i] = binary.LittleEndian.Uint64(data[i*8:])
		} else {
			copy(tail[:], data[i*8:])
			seg[i] = binary.LittleEndian.Uint64(tail[:])
			tail = [8]byte{}
		}
	}
	return seg
}

// FuzzSegRoundTrip checks, for arbitrary segments, that every bitmap
// format round-trips exactly, that the adaptive choice is never larger
// than dense, and that decoding the input bytes as a payload never
// panics.
func FuzzSegRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{byte(FormatSparse), 1, 0, 0, 0, 9, 0, 0, 0})
	f.Add([]byte{byte(FormatRLE), 0xff, 0xff, 0x01, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		seg := wordsFromBytes(data)
		st := Analyze(seg)
		chosen, size := Choose(st)
		if size > DenseSize(len(seg)) {
			t.Fatalf("Choose %s at %d bytes > dense %d", chosen, size, DenseSize(len(seg)))
		}
		dst := make([]uint64, len(seg))
		for _, format := range []Format{FormatDense, FormatSparse, FormatRLE} {
			enc := Append(nil, format, seg)
			if format == chosen && len(enc) != size {
				t.Fatalf("Choose predicted %d bytes, got %d", size, len(enc))
			}
			got, err := DecodeBytes(dst, enc)
			if err != nil || got != format {
				t.Fatalf("%s: decode %s, %v", format, got, err)
			}
			for i := range seg {
				if dst[i] != seg[i] {
					t.Fatalf("%s: word %d mismatch", format, i)
				}
			}
		}
		// Arbitrary bytes as payload: errors allowed, panics not.
		_, _ = DecodeBytes(dst, data)
	})
}

// FuzzListRoundTrip checks the varint-delta list format on arbitrary
// int64 sequences, that ListSize is exact, and that decoding arbitrary
// bytes never panics.
func FuzzListRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(AppendList(nil, []int64{-1, 1 << 60}))
	f.Fuzz(func(t *testing.T, data []byte) {
		seg := wordsFromBytes(data)
		vals := make([]int64, len(seg))
		for i, w := range seg {
			vals[i] = int64(w)
		}
		enc := AppendList(nil, vals)
		if len(enc) != ListSize(vals) {
			t.Fatalf("encoded %d bytes, ListSize %d", len(enc), ListSize(vals))
		}
		out, err := DecodeList(enc, nil)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(out) != len(vals) {
			t.Fatalf("decoded %d values, want %d", len(out), len(vals))
		}
		for i := range vals {
			if out[i] != vals[i] {
				t.Fatalf("value %d: %d != %d", i, out[i], vals[i])
			}
		}
		_, _ = DecodeList(data, nil)
	})
}
