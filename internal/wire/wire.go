// Package wire implements the self-describing frontier wire formats
// behind the compressed allgather (bfs.OptCompressedAllgather). The
// bottom-up allgather ships the dense in_queue bitmap even at levels
// where the frontier is nearly empty or nearly full; following Romera's
// multi-GPU frontier compression and Buluç & Madduri's per-level
// sparse-vs-dense choice, each segment is encoded in the cheapest of
// three formats, chosen per segment from its measured density:
//
//   - dense: the raw words — optimal near saturation;
//   - sparse: a u32 index per set bit — optimal for near-empty
//     frontiers (density below ~1/16);
//   - RLE: zero-word-skip run-length records — optimal when the
//     frontier clusters into runs, the typical mid-BFS shape under a
//     degree-sorted R-MAT vertex order.
//
// Every encoding starts with a 1-byte format header, so payloads are
// self-describing and the selector's worst case over shipping raw
// words is exactly that header (a property the tests pin down). A
// fourth format, the varint-delta list, serves the 2-D engine's
// expand-phase vertex lists. The Codec type (codec.go) pairs the byte
// codecs with the machine cost model so encode/decode CPU time is
// charged to the simulated clock — compression is a modelled
// trade-off, not a free lunch.
package wire

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Format identifies a wire encoding; it is the value of the 1-byte
// header that starts every encoded payload.
type Format byte

const (
	// FormatAuto is not a wire format: it tells the codec to pick the
	// cheapest format from the segment's scan statistics.
	FormatAuto Format = iota
	// FormatDense is the raw bitmap: header + 8 bytes per word.
	FormatDense
	// FormatSparse lists the set bits: header + u32 count + one u32
	// segment-relative bit index per set bit.
	FormatSparse
	// FormatRLE is a zero-word-skip run-length code: records of
	// (uvarint zero-word run, uvarint literal-word run, literal words)
	// until the segment is exhausted.
	FormatRLE
	// FormatList is the varint-delta code for int64 vertex lists
	// (uvarint count, then zigzag-varint deltas between consecutive
	// values).
	FormatList
	// NumFormats bounds Format values (for stats arrays).
	NumFormats
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatDense:
		return "dense"
	case FormatSparse:
		return "sparse"
	case FormatRLE:
		return "rle"
	case FormatList:
		return "list"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// sparseMaxWords bounds segments the sparse format can address: bit
// indices are u32, so a segment may hold at most 2^32 bits.
const sparseMaxWords = 1 << 26

// DenseSize returns the encoded size of a words-long segment in the
// dense format: the header plus the raw words.
func DenseSize(words int) int { return 1 + 8*words }

// SparseSize returns the encoded size of a segment with pop set bits
// in the sparse format: header, u32 count, u32 per bit.
func SparseSize(pop int) int { return 5 + 4*pop }

// SegStats summarizes one scan of a segment: its population count and
// the exact encoded size of the run-length format. One scan feeds the
// size prediction of every candidate format.
type SegStats struct {
	Words    int
	Pop      int
	RLEBytes int
}

// Analyze scans seg once, accumulating the popcount and the exact RLE
// size (runs of zero words alternating with runs of literal words).
func Analyze(seg []uint64) SegStats {
	st := SegStats{Words: len(seg), RLEBytes: 1}
	i := 0
	for i < len(seg) {
		z := i
		for i < len(seg) && seg[i] == 0 {
			i++
		}
		l := i
		for i < len(seg) && seg[i] != 0 {
			st.Pop += bits.OnesCount64(seg[i])
			i++
		}
		st.RLEBytes += uvarintLen(uint64(l-z)) + uvarintLen(uint64(i-l)) + 8*(i-l)
	}
	return st
}

// Choose returns the format with the smallest predicted size for a
// segment with the given scan statistics, and that size. Dense is
// always a candidate, so the chosen size never exceeds DenseSize —
// the adaptive selector's overhead versus shipping raw words is at
// most the 1-byte header.
func Choose(st SegStats) (Format, int) {
	best, size := FormatDense, DenseSize(st.Words)
	if st.RLEBytes < size {
		best, size = FormatRLE, st.RLEBytes
	}
	if st.Words <= sparseMaxWords {
		if s := SparseSize(st.Pop); s < size {
			best, size = FormatSparse, s
		}
	}
	return best, size
}

// Append appends the f-encoding of seg to dst and returns the
// extended slice. f must be a concrete bitmap format (dense, sparse
// or RLE).
func Append(dst []byte, f Format, seg []uint64) []byte {
	switch f {
	case FormatDense:
		return appendDense(dst, seg)
	case FormatSparse:
		return appendSparse(dst, seg)
	case FormatRLE:
		return appendRLE(dst, seg)
	default:
		panic(fmt.Sprintf("wire: Append of non-bitmap format %s", f))
	}
}

func appendDense(dst []byte, seg []uint64) []byte {
	dst = append(dst, byte(FormatDense))
	var b [8]byte
	for _, w := range seg {
		binary.LittleEndian.PutUint64(b[:], w)
		dst = append(dst, b[:]...)
	}
	return dst
}

func appendSparse(dst []byte, seg []uint64) []byte {
	if len(seg) > sparseMaxWords {
		panic("wire: segment too large for the sparse format")
	}
	dst = append(dst, byte(FormatSparse))
	cntAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	var n uint32
	var b [4]byte
	for wi, w := range seg {
		for w != 0 {
			binary.LittleEndian.PutUint32(b[:], uint32(wi*64+bits.TrailingZeros64(w)))
			dst = append(dst, b[:]...)
			n++
			w &= w - 1
		}
	}
	binary.LittleEndian.PutUint32(dst[cntAt:], n)
	return dst
}

func appendRLE(dst []byte, seg []uint64) []byte {
	dst = append(dst, byte(FormatRLE))
	var vb [binary.MaxVarintLen64]byte
	var wb [8]byte
	i := 0
	for i < len(seg) {
		z := i
		for i < len(seg) && seg[i] == 0 {
			i++
		}
		dst = append(dst, vb[:binary.PutUvarint(vb[:], uint64(i-z))]...)
		l := i
		for i < len(seg) && seg[i] != 0 {
			i++
		}
		dst = append(dst, vb[:binary.PutUvarint(vb[:], uint64(i-l))]...)
		for _, w := range seg[l:i] {
			binary.LittleEndian.PutUint64(wb[:], w)
			dst = append(dst, wb[:]...)
		}
	}
	return dst
}

// DecodeBytes decodes a bitmap payload produced by Append into dst,
// overwriting dst completely, and returns the format found in the
// header. dst must be exactly the segment the payload was encoded
// from; a malformed or mismatched payload returns an error.
func DecodeBytes(dst []uint64, data []byte) (Format, error) {
	if len(data) == 0 {
		return FormatAuto, fmt.Errorf("wire: empty payload")
	}
	f := Format(data[0])
	body := data[1:]
	switch f {
	case FormatDense:
		if len(body) != 8*len(dst) {
			return f, fmt.Errorf("wire: dense payload %d bytes for %d words", len(body), len(dst))
		}
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint64(body[8*i:])
		}
		return f, nil

	case FormatSparse:
		if len(body) < 4 {
			return f, fmt.Errorf("wire: truncated sparse header")
		}
		n := binary.LittleEndian.Uint32(body)
		body = body[4:]
		if uint64(len(body)) != 4*uint64(n) {
			return f, fmt.Errorf("wire: sparse payload %d bytes for %d indices", len(body), n)
		}
		for i := range dst {
			dst[i] = 0
		}
		for k := 0; k < int(n); k++ {
			idx := binary.LittleEndian.Uint32(body[4*k:])
			wi := int(idx / 64)
			if wi >= len(dst) {
				return f, fmt.Errorf("wire: sparse index %d beyond %d-word segment", idx, len(dst))
			}
			dst[wi] |= 1 << (idx % 64)
		}
		return f, nil

	case FormatRLE:
		i := 0
		for i < len(dst) {
			zrun, k := binary.Uvarint(body)
			if k <= 0 {
				return f, fmt.Errorf("wire: truncated rle zero-run")
			}
			body = body[k:]
			lrun, k := binary.Uvarint(body)
			if k <= 0 {
				return f, fmt.Errorf("wire: truncated rle literal-run")
			}
			body = body[k:]
			rem := uint64(len(dst) - i)
			if zrun > rem || lrun > rem-zrun {
				return f, fmt.Errorf("wire: rle runs overflow %d-word segment", len(dst))
			}
			for j := uint64(0); j < zrun; j++ {
				dst[i] = 0
				i++
			}
			if uint64(len(body)) < 8*lrun {
				return f, fmt.Errorf("wire: truncated rle literals")
			}
			for j := uint64(0); j < lrun; j++ {
				dst[i] = binary.LittleEndian.Uint64(body[8*j:])
				i++
			}
			body = body[8*lrun:]
		}
		if len(body) != 0 {
			return f, fmt.Errorf("wire: %d trailing rle bytes", len(body))
		}
		return f, nil
	}
	return f, fmt.Errorf("wire: unknown format %d", data[0])
}

// AppendList appends the varint-delta encoding of vals to dst: the
// list header, a uvarint count, then the zigzag-varint delta of each
// value from its predecessor (sorted vertex lists encode in a few
// bytes per entry; arbitrary order still round-trips).
func AppendList(dst []byte, vals []int64) []byte {
	dst = append(dst, byte(FormatList))
	var vb [binary.MaxVarintLen64]byte
	dst = append(dst, vb[:binary.PutUvarint(vb[:], uint64(len(vals)))]...)
	prev := int64(0)
	for _, v := range vals {
		dst = append(dst, vb[:binary.PutVarint(vb[:], v-prev)]...)
		prev = v
	}
	return dst
}

// DecodeList decodes an AppendList payload, appending the values to
// out and returning the extended slice.
func DecodeList(data []byte, out []int64) ([]int64, error) {
	if len(data) == 0 || Format(data[0]) != FormatList {
		return out, fmt.Errorf("wire: not a list payload")
	}
	body := data[1:]
	n, k := binary.Uvarint(body)
	if k <= 0 {
		return out, fmt.Errorf("wire: truncated list count")
	}
	body = body[k:]
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		d, k := binary.Varint(body)
		if k <= 0 {
			return out, fmt.Errorf("wire: truncated list delta %d/%d", i, n)
		}
		body = body[k:]
		prev += d
		out = append(out, prev)
	}
	if len(body) != 0 {
		return out, fmt.Errorf("wire: %d trailing list bytes", len(body))
	}
	return out, nil
}

// ListSize returns the exact encoded size of vals under AppendList.
func ListSize(vals []int64) int {
	sz := 1 + uvarintLen(uint64(len(vals)))
	prev := int64(0)
	for _, v := range vals {
		sz += uvarintLen(zigzag(v - prev))
		prev = v
	}
	return sz
}

// uvarintLen returns the encoded length of v under binary.PutUvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// zigzag maps a signed delta to binary.PutVarint's unsigned form.
func zigzag(v int64) uint64 {
	ux := uint64(v) << 1
	if v < 0 {
		ux = ^ux
	}
	return ux
}
