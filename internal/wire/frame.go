package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// This file implements the data-plane pieces of the reliable transport
// (internal/mpi, internal/fault.Loss): the frame that carries one
// point-to-point payload over a lossy link, and the receiver-side
// resequencer that turns duplicated / out-of-order frame arrivals back
// into the exactly-once, in-order message stream MPI semantics require.
//
// The simulator charges the protocol analytically — header and ack
// bytes, retransmission rounds and resequencing holds are added to the
// virtual clock and the simnet ledgers without materializing a byte
// buffer per message (the hot path must stay allocation-free). These
// types are the concrete protocol the charges stand in for; the frame
// property tests pin down the guarantee the model assumes: a CRC-32
// frame check detects every single-bit corruption of any encoded
// payload, and duplicate or reordered delivery never changes the
// reassembled stream.

// FrameHeaderBytes is the wire size of a reliable-transport frame
// header: sequence number (8 bytes), payload length (4), CRC-32 (4).
// Every inter-node message under an active loss plan is charged this
// overhead on top of its payload.
const FrameHeaderBytes = 16

// AckFrameBytes is the wire size of a cumulative acknowledgement: a
// header-only frame whose sequence field carries the highest in-order
// sequence delivered.
const AckFrameBytes = FrameHeaderBytes

// AppendFrame appends the frame encoding of payload under sequence
// number seq to dst and returns the extended slice. The CRC-32 (IEEE)
// covers the sequence number, the length and the payload, so a bit flip
// anywhere in the frame — header fields included — fails verification.
func AppendFrame(dst []byte, seq uint64, payload []byte) []byte {
	var hdr [FrameHeaderBytes - 4]byte
	binary.LittleEndian.PutUint64(hdr[0:], seq)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	dst = append(dst, hdr[:]...)
	var cb [4]byte
	binary.LittleEndian.PutUint32(cb[:], crc)
	dst = append(dst, cb[:]...)
	return append(dst, payload...)
}

// DecodeFrame parses one frame, verifying its length and CRC. The
// returned payload aliases data. Corrupted, truncated or trailing-byte
// frames return an error — the modelled transport treats a CRC failure
// exactly like a drop (the receiver discards the frame and the sender
// retransmits after its timeout).
func DecodeFrame(data []byte) (seq uint64, payload []byte, err error) {
	if len(data) < FrameHeaderBytes {
		return 0, nil, fmt.Errorf("wire: frame truncated at %d bytes", len(data))
	}
	seq = binary.LittleEndian.Uint64(data[0:])
	n := binary.LittleEndian.Uint32(data[8:])
	crc := binary.LittleEndian.Uint32(data[12:])
	payload = data[FrameHeaderBytes:]
	if uint64(len(payload)) != uint64(n) {
		return 0, nil, fmt.Errorf("wire: frame length %d for %d payload bytes", n, len(payload))
	}
	got := crc32.ChecksumIEEE(data[:12])
	got = crc32.Update(got, crc32.IEEETable, payload)
	if got != crc {
		return 0, nil, fmt.Errorf("wire: frame CRC mismatch (corrupted payload)")
	}
	return seq, payload, nil
}

// Resequencer reassembles one link's in-order message stream from frame
// deliveries that may repeat or arrive out of order. Sequence numbers
// start at 0 and increase by 1 per message; a duplicate (any sequence
// below the cursor, or already held) is discarded, an out-of-order
// arrival is held until its predecessors close the gap. CumulativeAck
// reports the highest in-order sequence delivered so far — the value an
// ack frame would carry.
type Resequencer struct {
	next uint64
	held map[uint64][]byte
	dups int
}

// Offer accepts one delivered frame and appends any payloads that became
// deliverable in order — possibly none (gap), possibly several (a gap
// just closed) — to out, returning the extended slice. The returned
// payloads alias what was offered. Duplicates are discarded and counted.
func (q *Resequencer) Offer(seq uint64, payload []byte, out [][]byte) [][]byte {
	if seq < q.next {
		q.dups++
		return out
	}
	if seq > q.next {
		if q.held == nil {
			q.held = make(map[uint64][]byte)
		}
		if _, ok := q.held[seq]; ok {
			q.dups++
			return out
		}
		q.held[seq] = payload
		return out
	}
	out = append(out, payload)
	q.next++
	for {
		p, ok := q.held[q.next]
		if !ok {
			return out
		}
		delete(q.held, q.next)
		out = append(out, p)
		q.next++
	}
}

// Dups returns the number of duplicate deliveries discarded.
func (q *Resequencer) Dups() int { return q.dups }

// CumulativeAck returns the highest sequence number delivered in order
// (the cumulative-ack value), or false if nothing has been delivered.
func (q *Resequencer) CumulativeAck() (uint64, bool) {
	if q.next == 0 {
		return 0, false
	}
	return q.next - 1, true
}

// Pending returns the number of out-of-order frames held for
// resequencing.
func (q *Resequencer) Pending() int { return len(q.held) }
