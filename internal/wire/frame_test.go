package wire

import (
	"math/rand"
	"testing"
)

// testSegments returns frontier segments with the shapes that drive the
// adaptive selector to each bitmap format: near-empty (sparse), clustered
// runs (RLE) and near-saturated (dense).
func testSegments() map[string][]uint64 {
	sparse := make([]uint64, 64)
	sparse[3] = 1 << 17
	sparse[40] = 1<<2 | 1<<63
	clustered := make([]uint64, 64)
	for i := 20; i < 29; i++ {
		clustered[i] = 0xdeadbeefcafe0000 | uint64(i)
	}
	dense := make([]uint64, 64)
	for i := range dense {
		dense[i] = ^uint64(0) &^ (1 << uint(i))
	}
	return map[string][]uint64{"sparse": sparse, "clustered": clustered, "dense": dense}
}

// encodeAll returns one encoded payload per concrete wire format for
// every test segment, plus a varint-delta list payload.
func encodeAll(t *testing.T) map[string][]byte {
	t.Helper()
	payloads := map[string][]byte{}
	for name, seg := range testSegments() {
		for _, f := range []Format{FormatDense, FormatSparse, FormatRLE} {
			payloads[name+"/"+f.String()] = Append(nil, f, seg)
		}
	}
	payloads["list"] = AppendList(nil, []int64{0, 5, 5, 1 << 40, -3, 12345})
	return payloads
}

func TestFrameRoundTrip(t *testing.T) {
	for name, payload := range encodeAll(t) {
		frame := AppendFrame(nil, 42, payload)
		if len(frame) != FrameHeaderBytes+len(payload) {
			t.Fatalf("%s: frame %d bytes, want header %d + payload %d",
				name, len(frame), FrameHeaderBytes, len(payload))
		}
		seq, got, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if seq != 42 {
			t.Fatalf("%s: seq = %d", name, seq)
		}
		if string(got) != string(payload) {
			t.Fatalf("%s: payload mangled", name)
		}
	}
	if _, _, err := DecodeFrame([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated frame decoded")
	}
}

// TestFrameCRCDetectsEverySingleBitFlip is the corruption oracle the
// analytic transport relies on: for every wire format, flipping any
// single bit anywhere in the frame — sequence, length, CRC or payload —
// must fail verification, so a corrupted delivery is always detected
// and handled as a drop.
func TestFrameCRCDetectsEverySingleBitFlip(t *testing.T) {
	for name, payload := range encodeAll(t) {
		frame := AppendFrame(nil, 7, payload)
		for bit := 0; bit < 8*len(frame); bit++ {
			frame[bit/8] ^= 1 << uint(bit%8)
			if _, _, err := DecodeFrame(frame); err == nil {
				t.Fatalf("%s: single-bit flip at bit %d went undetected", name, bit)
			}
			frame[bit/8] ^= 1 << uint(bit%8)
		}
		// The pristine frame must still decode (flips were reverted).
		if _, _, err := DecodeFrame(frame); err != nil {
			t.Fatalf("%s: pristine frame rejected after sweep: %v", name, err)
		}
	}
}

// FuzzFrameCorruption extends the single-bit property to arbitrary
// payloads and flip positions.
func FuzzFrameCorruption(f *testing.F) {
	f.Add([]byte{}, uint64(0), uint(0))
	f.Add([]byte{0xff}, uint64(9), uint(3))
	f.Add(Append(nil, FormatSparse, []uint64{1 << 5, 0, 1}), uint64(1<<40), uint(100))
	f.Fuzz(func(t *testing.T, payload []byte, seq uint64, bit uint) {
		frame := AppendFrame(nil, seq, payload)
		gotSeq, gotPayload, err := DecodeFrame(frame)
		if err != nil || gotSeq != seq || string(gotPayload) != string(payload) {
			t.Fatalf("round trip failed: seq %d->%d err %v", seq, gotSeq, err)
		}
		bit %= uint(8 * len(frame))
		frame[bit/8] ^= 1 << (bit % 8)
		if _, _, err := DecodeFrame(frame); err == nil {
			t.Fatalf("flip at bit %d undetected (payload %d bytes)", bit, len(payload))
		}
	})
}

// TestResequencerDeliversExactlyOnceInOrder is the delivery-integrity
// half of the transport property: however a link duplicates and reorders
// frames, the resequenced stream decodes to exactly the frontiers that
// were sent.
func TestResequencerDeliversExactlyOnceInOrder(t *testing.T) {
	segs := make([][]uint64, 0, 24)
	for _, s := range testSegments() {
		segs = append(segs, s)
	}
	rng := rand.New(rand.NewSource(1))
	for len(segs) < 24 {
		s := make([]uint64, 64)
		for i := range s {
			if rng.Intn(3) == 0 {
				s[i] = rng.Uint64()
			}
		}
		segs = append(segs, s)
	}

	// Sender: adaptively encode and frame each segment in sequence.
	frames := make([][]byte, len(segs))
	for i, s := range segs {
		f, _ := Choose(Analyze(s))
		frames[i] = AppendFrame(nil, uint64(i), Append(nil, f, s))
	}

	for trial := 0; trial < 50; trial++ {
		// Lossy link: duplicate ~1 in 3 frames, then reorder within a
		// bounded window (matching fault.Loss.ReorderWindow semantics).
		sched := make([]int, 0, 2*len(frames))
		for i := range frames {
			sched = append(sched, i)
			if rng.Intn(3) == 0 {
				sched = append(sched, i)
			}
		}
		const window = 5
		for i := range sched {
			j := i + rng.Intn(window)
			if j < len(sched) {
				sched[i], sched[j] = sched[j], sched[i]
			}
		}

		var q Resequencer
		var delivered [][]byte
		for _, idx := range sched {
			seq, payload, err := DecodeFrame(frames[idx])
			if err != nil {
				t.Fatalf("trial %d: decode frame %d: %v", trial, idx, err)
			}
			delivered = q.Offer(seq, payload, delivered)
		}
		if len(delivered) != len(segs) {
			t.Fatalf("trial %d: delivered %d of %d messages (pending %d, dups %d)",
				trial, len(delivered), len(segs), q.Pending(), q.Dups())
		}
		if q.Pending() != 0 {
			t.Fatalf("trial %d: %d frames stuck in the resequencer", trial, q.Pending())
		}
		if ack, ok := q.CumulativeAck(); !ok || ack != uint64(len(segs)-1) {
			t.Fatalf("trial %d: cumulative ack %d/%v", trial, ack, ok)
		}
		// Decoded frontiers must match the originals exactly, in order.
		got := make([]uint64, 64)
		for i, payload := range delivered {
			if _, err := DecodeBytes(got, payload); err != nil {
				t.Fatalf("trial %d: decode message %d: %v", trial, i, err)
			}
			for w := range got {
				if got[w] != segs[i][w] {
					t.Fatalf("trial %d: message %d word %d: %#x != %#x",
						trial, i, w, got[w], segs[i][w])
				}
			}
		}
	}
}

func TestResequencerDiscardsDuplicates(t *testing.T) {
	var q Resequencer
	var out [][]byte
	out = q.Offer(0, []byte("a"), out)
	out = q.Offer(0, []byte("a"), out) // dup of delivered
	out = q.Offer(2, []byte("c"), out) // held
	out = q.Offer(2, []byte("c"), out) // dup of held
	out = q.Offer(1, []byte("b"), out) // closes the gap
	if len(out) != 3 || string(out[0]) != "a" || string(out[1]) != "b" || string(out[2]) != "c" {
		t.Fatalf("delivered %q", out)
	}
	if q.Dups() != 2 {
		t.Fatalf("dups = %d, want 2", q.Dups())
	}
	if ack, ok := q.CumulativeAck(); !ok || ack != 2 {
		t.Fatalf("ack = %d/%v, want 2", ack, ok)
	}
}
