package queryserv

import (
	"fmt"
	"runtime"
	"testing"

	"numabfs/internal/bfs"
	"numabfs/internal/machine"
	"numabfs/internal/msbfs"
	"numabfs/internal/rmat"
)

func testRunner(t *testing.T, scale int) (*msbfs.Runner, rmat.Params) {
	t.Helper()
	cfg := machine.Scaled(scale, scale+12)
	cfg.Nodes = 2
	cfg.SocketsPerNode = 4
	cfg.WeakNode = -1
	params := rmat.Graph500(scale)
	opts := bfs.DefaultOptions()
	opts.Opt = bfs.OptCompressedAllgather
	r, err := msbfs.NewRunner(cfg, machine.PPN8Bind, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	return r, params
}

func workload(t *testing.T, r *msbfs.Runner, params rmat.Params, n int, qps float64) []Query {
	t.Helper()
	return PoissonWorkload(n, qps, 7, params.NumVertices(), r.HasEdgeGlobal)
}

func TestServeCompletesEveryQuery(t *testing.T) {
	r, params := testRunner(t, 12)
	qs := workload(t, r, params, 48, 2000)
	res, err := Serve(r, Policy{MaxBatch: 16, FillTimeoutNs: 5e5}, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != len(qs) {
		t.Fatalf("completed %d of %d queries", len(res.Completed), len(qs))
	}
	seen := map[int]bool{}
	for _, c := range res.Completed {
		if c.LatencyNs <= 0 {
			t.Fatalf("query %d: non-positive latency %g", c.ID, c.LatencyNs)
		}
		if c.DoneNs < c.ArriveNs || c.LaunchNs < c.ArriveNs {
			t.Fatalf("query %d: served before it arrived (%+v)", c.ID, c)
		}
		if c.TraversedEdges <= 0 || c.TEPS <= 0 {
			t.Fatalf("query %d: empty traversal (%+v)", c.ID, c)
		}
		seen[c.ID] = true
	}
	if len(seen) != len(qs) {
		t.Fatalf("duplicate or missing query IDs: %d unique", len(seen))
	}
	if res.ThroughputQPS <= 0 || res.MeanBatchFill < 1 {
		t.Fatalf("bad aggregates: %+v", res)
	}
	p50, p99 := res.LatencyPercentile(50), res.LatencyPercentile(99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("latency percentiles inverted: p50=%g p99=%g", p50, p99)
	}
}

// TestAdmissionFillVsTimeout: under a burst that arrives all at once, a
// fill-up policy packs full batches; with more lanes than queries a
// zero-timeout policy still serves immediately; and a batch-1 policy
// serializes — strictly more batches, strictly more allgather rounds.
func TestAdmissionFillVsTimeout(t *testing.T) {
	r, params := testRunner(t, 12)
	roots := params.Roots(32, r.HasEdgeGlobal)
	burst := make([]Query, len(roots))
	for i, root := range roots {
		burst[i] = Query{ID: i, Root: root, ArriveNs: 0}
	}
	packed, err := Serve(r, Policy{MaxBatch: 32}, burst)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed.Batches) != 1 || packed.Batches[0].Size != 32 {
		t.Fatalf("burst not packed into one batch: %+v", packed.Batches)
	}
	serial, err := Serve(r, Policy{MaxBatch: 1}, burst)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Batches) != 32 {
		t.Fatalf("batch-1 policy ran %d batches, want 32", len(serial.Batches))
	}
	if packed.AllgatherRounds >= serial.AllgatherRounds {
		t.Errorf("packed rounds %d not < serial rounds %d — amortization missing",
			packed.AllgatherRounds, serial.AllgatherRounds)
	}
	if packed.MakespanNs >= serial.MakespanNs {
		t.Errorf("packed makespan %g not < serial %g", packed.MakespanNs, serial.MakespanNs)
	}
}

// TestFillTimeoutBoundsWait: with sparse arrivals, a finite fill
// timeout launches the head query no later than its deadline plus the
// engine-busy time; timeout 0 launches immediately.
func TestFillTimeoutBoundsWait(t *testing.T) {
	r, params := testRunner(t, 12)
	roots := params.Roots(4, r.HasEdgeGlobal)
	// Arrivals spaced far beyond any batch duration.
	qs := make([]Query, len(roots))
	for i, root := range roots {
		qs[i] = Query{ID: i, Root: root, ArriveNs: float64(i) * 1e9}
	}
	const timeout = 1e6
	res, err := Serve(r, Policy{MaxBatch: 64, FillTimeoutNs: timeout}, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != len(qs) {
		t.Fatalf("sparse arrivals served in %d batches, want %d", len(res.Batches), len(qs))
	}
	for _, c := range res.Completed {
		if c.LaunchNs > c.ArriveNs+timeout {
			t.Errorf("query %d launched %g ns after arrival, timeout %g", c.ID, c.LaunchNs-c.ArriveNs, timeout)
		}
		if c.LaunchNs < c.ArriveNs+timeout {
			t.Errorf("query %d launched before its fill deadline with no lane-mates", c.ID)
		}
	}
}

// fingerprint serializes the committed result order — the
// determinism contract covers it byte for byte.
func fingerprint(res *Result) string {
	s := ""
	for _, c := range res.Completed {
		s += fmt.Sprintf("%d/%d/%d/%g/%g/%d;", c.ID, c.Batch, c.Lane, c.LaunchNs, c.LatencyNs, c.TraversedEdges)
	}
	return s
}

// TestServeDeterministicAcrossRepeatsAndGOMAXPROCS: the committed
// result order, every latency and every traversal count must be
// bit-identical across repeats and host parallelism.
func TestServeDeterministicAcrossRepeatsAndGOMAXPROCS(t *testing.T) {
	run := func() string {
		r, params := testRunner(t, 12)
		qs := workload(t, r, params, 32, 5000)
		res, err := Serve(r, Policy{MaxBatch: 16, FillTimeoutNs: 2e5}, qs)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(res)
	}
	a := run()
	if b := run(); a != b {
		t.Fatal("repeat diverged")
	}
	prev := runtime.GOMAXPROCS(1)
	c := run()
	runtime.GOMAXPROCS(8)
	d := run()
	runtime.GOMAXPROCS(prev)
	if a != c || a != d {
		t.Fatal("host parallelism leaked into the committed result order")
	}
}

func TestPolicyValidate(t *testing.T) {
	for _, po := range []Policy{
		{MaxBatch: 0},
		{MaxBatch: 65},
		{MaxBatch: 8, FillTimeoutNs: -1},
	} {
		if err := po.Validate(); err == nil {
			t.Errorf("policy %+v validated", po)
		}
	}
	if err := (Policy{MaxBatch: 64}).Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
}

func TestServeEdgeCases(t *testing.T) {
	r, params := testRunner(t, 12)
	res, err := Serve(r, Policy{MaxBatch: 8}, nil)
	if err != nil || len(res.Completed) != 0 {
		t.Fatalf("empty workload: %v %+v", err, res)
	}
	root := params.Roots(1, r.HasEdgeGlobal)[0]
	unsorted := []Query{{ID: 0, Root: root, ArriveNs: 10}, {ID: 1, Root: root, ArriveNs: 5}}
	if _, err := Serve(r, Policy{MaxBatch: 8}, unsorted); err == nil {
		t.Fatal("unsorted workload accepted")
	}
}

func TestPoissonWorkloadDeterministic(t *testing.T) {
	r, params := testRunner(t, 12)
	a := workload(t, r, params, 20, 1000)
	b := workload(t, r, params, 20, 1000)
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("workload sizes %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("workload draw %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if !r.HasEdgeGlobal(a[i].Root) {
			t.Fatalf("root %d has no edges", a[i].Root)
		}
		if i > 0 && a[i].ArriveNs < a[i-1].ArriveNs {
			t.Fatal("arrivals not sorted")
		}
	}
}
