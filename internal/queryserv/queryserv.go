// Package queryserv is the query-service layer over the batched MS-BFS
// engine: a stream of single-root BFS queries arrives over virtual
// time, an admission policy groups them into batches of up to 64, and
// each batch traverses once — the "millions of users" serving story,
// where the batch amortizes the per-level collectives across queries
// that happen to arrive together.
//
// The server is a deterministic virtual-time loop, not a goroutine
// system: the engine is the only resource, batches run back to back,
// and each decision (how long to hold the admission window open, which
// queries make the batch) is a pure function of the arrival times and
// the policy — so a workload replays bit-identically, which the
// determinism suite asserts.
package queryserv

import (
	"fmt"
	"math"
	"sort"

	"numabfs/internal/msbfs"
	"numabfs/internal/stats"
	"numabfs/internal/xrand"
)

// Query is one root request with a virtual arrival time.
type Query struct {
	ID      int
	Root    int64
	ArriveNs float64
}

// Policy is the admission policy: a batch launches when it is full
// (MaxBatch queries) or when the oldest waiting query has waited
// FillTimeoutNs, whichever comes first — the classic fill-vs-latency
// trade-off. The engine serves one batch at a time; queries arriving
// during a traversal queue for the next batch.
type Policy struct {
	// MaxBatch is the lane budget per batch, at most 64.
	MaxBatch int
	// FillTimeoutNs bounds the time a query may wait for lane-mates
	// before its batch launches anyway. 0 launches as soon as the
	// engine is free (latency-optimal, amortization-free at low load).
	FillTimeoutNs float64
}

// Validate reports a policy error, or nil.
func (po Policy) Validate() error {
	if po.MaxBatch < 1 || po.MaxBatch > 64 {
		return fmt.Errorf("queryserv: max batch %d outside [1, 64]", po.MaxBatch)
	}
	if po.FillTimeoutNs < 0 || math.IsNaN(po.FillTimeoutNs) || math.IsInf(po.FillTimeoutNs, 0) {
		return fmt.Errorf("queryserv: fill timeout %g must be finite and non-negative", po.FillTimeoutNs)
	}
	return nil
}

// Completed is one query's outcome.
type Completed struct {
	Query
	// Batch is the index of the batch that served the query; Lane its
	// lane within that batch.
	Batch, Lane int
	// LaunchNs / DoneNs bracket the serving batch on the virtual
	// timeline; LatencyNs = DoneNs - ArriveNs (queueing + fill wait +
	// traversal).
	LaunchNs, DoneNs float64
	LatencyNs        float64
	// TraversedEdges and TEPS are the query's own component against its
	// own latency — the per-query rate a client observes.
	TraversedEdges int64
	TEPS           float64
}

// BatchTrace records one served batch for inspection.
type BatchTrace struct {
	Size            int
	LaunchNs        float64
	DurationNs      float64
	AllgatherRounds int64
}

// Result is the outcome of serving a whole workload.
type Result struct {
	// Completed holds every query in commit order: batches in launch
	// order, lanes in admission (arrival) order within each batch. The
	// order is part of the deterministic contract.
	Completed []Completed
	Batches   []BatchTrace
	// MakespanNs is the virtual time from the first arrival to the last
	// completion; ThroughputQPS the served rate over it.
	MakespanNs    float64
	ThroughputQPS float64
	// MeanBatchFill is the mean batch occupancy in lanes.
	MeanBatchFill float64
	// AllgatherRounds totals the plane+summary rounds across batches.
	AllgatherRounds int64
}

// LatencyPercentile returns the p-th percentile (0..100) of per-query
// latency in ns.
func (res *Result) LatencyPercentile(p float64) float64 {
	xs := make([]float64, len(res.Completed))
	for i, c := range res.Completed {
		xs[i] = c.LatencyNs
	}
	return stats.Percentile(xs, p)
}

// TEPSPercentile returns the p-th percentile (0..100) of per-query
// effective TEPS.
func (res *Result) TEPSPercentile(p float64) float64 {
	xs := make([]float64, len(res.Completed))
	for i, c := range res.Completed {
		xs[i] = c.TEPS
	}
	return stats.Percentile(xs, p)
}

// Serve runs the workload through the runner under the policy. Queries
// must be sorted by arrival time (ties kept in slice order). The runner
// must be Setup; its clocks are reset per batch, with the server
// keeping the virtual service timeline itself.
func Serve(r *msbfs.Runner, po Policy, queries []Query) (*Result, error) {
	if err := po.Validate(); err != nil {
		return nil, err
	}
	for i := 1; i < len(queries); i++ {
		if queries[i].ArriveNs < queries[i-1].ArriveNs {
			return nil, fmt.Errorf("queryserv: queries not sorted by arrival (%d at %g after %d at %g)",
				queries[i].ID, queries[i].ArriveNs, queries[i-1].ID, queries[i-1].ArriveNs)
		}
	}
	res := &Result{}
	if len(queries) == 0 {
		return res, nil
	}
	engineFree := queries[0].ArriveNs
	for i := 0; i < len(queries); {
		head := queries[i]
		// The batch launches at the latest of: the engine coming free,
		// and the head query's fill deadline — unless the batch fills to
		// MaxBatch earlier, in which case the fill wait is cut short.
		launch := math.Max(engineFree, head.ArriveNs+po.FillTimeoutNs)
		if last := i + po.MaxBatch - 1; last < len(queries) {
			if t := math.Max(engineFree, queries[last].ArriveNs); t < launch {
				launch = t
			}
		}
		// Admit every arrival up to the launch instant, capped at the
		// lane budget.
		j := i
		for j < len(queries) && j-i < po.MaxBatch && queries[j].ArriveNs <= launch {
			j++
		}
		batch := queries[i:j]
		roots := make([]int64, len(batch))
		for k, q := range batch {
			roots[k] = q.Root
		}
		br := r.RunBatch(roots)
		done := launch + br.TimeNs
		bi := len(res.Batches)
		res.Batches = append(res.Batches, BatchTrace{
			Size: len(batch), LaunchNs: launch, DurationNs: br.TimeNs,
			AllgatherRounds: br.AllgatherRounds,
		})
		res.AllgatherRounds += br.AllgatherRounds
		for k, q := range batch {
			lat := done - q.ArriveNs
			c := Completed{
				Query: q, Batch: bi, Lane: k,
				LaunchNs: launch, DoneNs: done, LatencyNs: lat,
				TraversedEdges: br.Lanes[k].TraversedEdges,
			}
			if lat > 0 {
				c.TEPS = float64(c.TraversedEdges) / (lat / 1e9)
			}
			res.Completed = append(res.Completed, c)
		}
		engineFree = done
		i = j
	}
	first := queries[0].ArriveNs
	last := res.Completed[len(res.Completed)-1].DoneNs
	res.MakespanNs = last - first
	if res.MakespanNs > 0 {
		res.ThroughputQPS = float64(len(res.Completed)) / (res.MakespanNs / 1e9)
	}
	res.MeanBatchFill = float64(len(res.Completed)) / float64(len(res.Batches))
	return res, nil
}

// PoissonWorkload draws n queries with exponentially distributed
// interarrivals at the offered rate (queries per virtual second) and
// roots picked uniformly from vertices with edges — the Graph500 root
// rule. Deterministic in the seed.
func PoissonWorkload(n int, qps float64, seed uint64, numVertices int64, hasEdge func(int64) bool) []Query {
	if n < 0 || qps <= 0 {
		panic(fmt.Sprintf("queryserv: workload needs n >= 0 and qps > 0 (n=%d, qps=%g)", n, qps))
	}
	rng := xrand.NewXoshiro256(seed)
	qs := make([]Query, 0, n)
	t := 0.0
	meanGapNs := 1e9 / qps
	for len(qs) < n {
		t += -math.Log(1-rng.Float64()) * meanGapNs
		root := int64(rng.Uint64n(uint64(numVertices)))
		if !hasEdge(root) {
			continue // redraw arrival and root, as Params.Roots redraws roots
		}
		qs = append(qs, Query{ID: len(qs), Root: root, ArriveNs: t})
	}
	sort.SliceStable(qs, func(i, j int) bool { return qs[i].ArriveNs < qs[j].ArriveNs })
	return qs
}
