package bfs

import (
	"numabfs/internal/machine"
	"numabfs/internal/mpi"
	"numabfs/internal/trace"
)

// defaultOverlapSegments is the pipeline chunk count when
// Options.OverlapSegments is 0: two chunks already let each transfer
// hide the previous chunk's decode and summary rebuild without paying
// much extra per-message latency.
const defaultOverlapSegments = 2

// bitSpan is a granule-aligned base-bit interval [lo, hi) of this rank's
// in_queue_summary share whose rebuild already ran during the pipelined
// allgather.
type bitSpan struct{ lo, hi int64 }

// overlapAllgatherInQueue is the sixth level's in_queue exchange: the
// compressed parallel allgather driven through the segmented pipeline,
// with this rank's summary-share granules rebuilt the moment the
// in_queue chunk containing their words lands — the rebuild that level 5
// pays serially after the collective runs here under the next chunk's
// transfer. Only granules wholly inside chunks this rank itself staged
// or received are touched: the rest of the share covers in_queue words
// other local ranks' subgroup rings write, which are final only after
// the collective's closing node barrier (allgatherSummary rebuilds
// those gaps). The hidden/exposed split lands in the Overlap phase and
// the rank's observability counters.
func (rs *rankState) overlapAllgatherInQueue(p *mpi.Proc, ownOut []uint64) {
	r := rs.r
	segs := r.Opts.OverlapSegments
	if segs == 0 {
		segs = defaultOverlapSegments
	}
	rs.ovDone = rs.ovDone[:0]
	rs.ovRunStart, rs.ovRunEnd = -1, -1
	rs.ovReb = 0
	r.NC.ParallelAllgatherSegmentedC(p, rs.inQ.Words(), ownOut, r.wordLayout,
		segs, rs.inqCodec, rs.ovChunk, &rs.ov)
	rs.bd.Add(trace.Overlap, rs.ov.HiddenNs)
	rs.bd.OverlapExposedNs += rs.ov.ExposedNs
	rs.rec.Overlap(rs.ov.HiddenNs, rs.ov.ExposedNs)
}

// onOverlapChunk is the segmented allgather's per-chunk hook: in_queue
// words [w0, w1) are final. Consecutive chunks of one origin's segment
// arrive back to back, so the hook tracks the current contiguous landed
// run and rebuilds every summary granule that is wholly inside
// run ∩ share and not yet rebuilt. Returns the modelled rebuild cost
// (charged by the collective, inside the phase's comm window — exactly
// where level 5 charges the serial rebuild).
func (rs *rankState) onOverlapChunk(w0, w1 int64) float64 {
	r := rs.r
	g := r.Opts.Granularity
	n := r.Params.NumVertices()
	if w0 != rs.ovRunEnd {
		rs.ovRunStart = w0
		rs.ovReb = 0
	}
	rs.ovRunEnd = w1

	lo := rs.ovRunStart * 64
	hi := w1 * 64
	if hi > n {
		hi = n
	}
	if lo < rs.ovBitLo {
		lo = rs.ovBitLo
	}
	if hi > rs.ovBitHi {
		hi = rs.ovBitHi
	}
	if lo >= hi {
		return 0
	}
	from := (lo + g - 1) / g * g
	if rs.ovReb > from {
		from = rs.ovReb
	}
	target := hi / g * g
	if hi == n {
		// The bitmap ends here: the final partial granule has all its
		// words landed, and RebuildRange accepts hi == n.
		target = n
	}
	if target <= from {
		return 0
	}
	written := rs.inSum.RebuildRange(rs.inQ, from, target)
	rs.ovReb = target
	rs.addDoneSpan(from, target)
	return rs.team.Parallel(machine.PhaseLoad{
		SeqBytes: (target-from)/8 + written*8,
		SeqLoc:   r.inqLoc(),
	})
}

// addDoneSpan records a rebuilt interval, merging contiguous extensions
// of the current run and keeping the list sorted by lo (the list has at
// most one span per pipeline run, so insertion sort is alloc-free and
// cheap).
func (rs *rankState) addDoneSpan(lo, hi int64) {
	for i := range rs.ovDone {
		if rs.ovDone[i].hi == lo {
			rs.ovDone[i].hi = hi
			return
		}
	}
	rs.ovDone = append(rs.ovDone, bitSpan{lo: lo, hi: hi})
	for i := len(rs.ovDone) - 1; i > 0 && rs.ovDone[i].lo < rs.ovDone[i-1].lo; i-- {
		rs.ovDone[i], rs.ovDone[i-1] = rs.ovDone[i-1], rs.ovDone[i]
	}
}

// rebuildShareGaps rebuilds the summary-share intervals the pipelined
// rebuild could not cover (granules over other local ranks' in_queue
// words, and granules straddling segment boundaries), after the node
// barrier made all of in_queue final. Together with the chunk-time
// rebuilds this covers [bitLo, bitHi) exactly once, so the summary is
// bit-identical to level 5's serial rebuild.
func (rs *rankState) rebuildShareGaps(p *mpi.Proc, bitLo, bitHi int64) {
	r := rs.r
	var bytes, written int64
	pos := bitLo
	for _, sp := range rs.ovDone {
		if sp.lo > pos {
			written += rs.inSum.RebuildRange(rs.inQ, pos, sp.lo)
			bytes += (sp.lo - pos) / 8
		}
		if sp.hi > pos {
			pos = sp.hi
		}
	}
	if pos < bitHi {
		written += rs.inSum.RebuildRange(rs.inQ, pos, bitHi)
		bytes += (bitHi - pos) / 8
	}
	p.Compute(rs.team.Parallel(machine.PhaseLoad{
		SeqBytes: bytes + written*8,
		SeqLoc:   r.inqLoc(),
	}))
}
