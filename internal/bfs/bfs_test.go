package bfs

import (
	"fmt"
	"testing"

	"numabfs/internal/graph"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
)

func testConfig(scale, nodes, sockets int) machine.Config {
	cfg := machine.Scaled(scale, scale+12)
	cfg.Nodes = nodes
	cfg.SocketsPerNode = sockets
	cfg.WeakNode = -1
	return cfg
}

// levelsOf reconstructs global levels from the runner's parent arrays.
func levelsOf(r *Runner, root int64) []int64 {
	n := r.Params.NumVertices()
	parent := make([]int64, n)
	for rank, pa := range r.ParentArrays() {
		lo, _ := r.Part.Range(rank)
		copy(parent[lo:lo+int64(len(pa))], pa)
	}
	level := make([]int64, n)
	for i := range level {
		level[i] = -1
	}
	if parent[root] < 0 {
		return level
	}
	level[root] = 0
	for changed := true; changed; {
		changed = false
		for v := int64(0); v < n; v++ {
			if level[v] >= 0 || parent[v] < 0 {
				continue
			}
			if pl := level[parent[v]]; pl >= 0 {
				level[v] = pl + 1
				changed = true
			}
		}
	}
	return level
}

func TestBFSMatchesReferenceAcrossVariants(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	ref := graph.BuildGlobal(params, true)
	roots := params.Roots(3, ref.HasEdge)

	for _, mode := range []Mode{ModeHybrid, ModeTopDown, ModeBottomUp} {
		for _, opt := range []Opt{OptOriginal, OptShareInQueue, OptShareAll, OptParAllgather, OptCompressedAllgather} {
			for _, pol := range []machine.Policy{machine.PPN8Bind, machine.PPN1Interleave} {
				name := fmt.Sprintf("%s/%s/%s", mode, opt, pol)
				t.Run(name, func(t *testing.T) {
					opts := DefaultOptions()
					opts.Mode = mode
					opts.Opt = opt
					r, err := NewRunner(testConfig(scale, 2, 4), pol, params, opts)
					if err != nil {
						t.Fatal(err)
					}
					r.Setup()
					for _, root := range roots {
						res := r.RunRoot(root)
						wantLevel, _ := graph.ReferenceBFS(ref, root)
						got := levelsOf(r, root)
						for v := range got {
							if got[v] != wantLevel[v] {
								t.Fatalf("root %d vertex %d: level %d, want %d", root, v, got[v], wantLevel[v])
							}
						}
						var wantVisited, wantEdges int64
						for v, l := range wantLevel {
							if l >= 0 {
								wantVisited++
								wantEdges += ref.Degree(int64(v))
							}
						}
						if res.Visited != wantVisited {
							t.Errorf("root %d: visited %d, want %d", root, res.Visited, wantVisited)
						}
						if res.TraversedEdges != wantEdges/2 {
							t.Errorf("root %d: traversed edges %d, want %d", root, res.TraversedEdges, wantEdges/2)
						}
						if res.TimeNs <= 0 || res.TEPS <= 0 {
							t.Errorf("root %d: non-positive time/TEPS: %+v", root, res)
						}
					}
				})
			}
		}
	}
}

func TestHybridSwitchesModes(t *testing.T) {
	const scale = 14
	params := rmat.Graph500(scale)
	opts := DefaultOptions()
	r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	ref := graph.BuildGlobal(params, true)
	root := params.Roots(1, ref.HasEdge)[0]
	res := r.RunRoot(root)
	if res.Breakdown.TDLevels == 0 {
		t.Error("hybrid BFS ran no top-down levels")
	}
	if res.Breakdown.BULevels == 0 {
		t.Error("hybrid BFS ran no bottom-up levels on an R-MAT graph")
	}
	if res.Breakdown.Ns[4] /* switch */ <= 0 {
		t.Error("no switch time recorded")
	}
}

func TestGranularityVariantsAgree(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	ref := graph.BuildGlobal(params, true)
	root := params.Roots(1, ref.HasEdge)[0]
	wantLevel, _ := graph.ReferenceBFS(ref, root)

	for _, g := range []int64{64, 128, 256, 1024, 4096} {
		opts := DefaultOptions()
		opts.Granularity = g
		opts.Opt = OptParAllgather
		r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, params, opts)
		if err != nil {
			t.Fatal(err)
		}
		r.Setup()
		r.RunRoot(root)
		got := levelsOf(r, root)
		for v := range got {
			if got[v] != wantLevel[v] {
				t.Fatalf("g=%d vertex %d: level %d, want %d", g, v, got[v], wantLevel[v])
			}
		}
	}
}

func TestDeterministicVirtualTime(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	times := make([]float64, 2)
	for i := range times {
		r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, params, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		r.Setup()
		res := r.RunRoot(params.Roots(1, r.HasEdgeGlobal)[0])
		times[i] = res.TimeNs
	}
	if times[0] != times[1] {
		t.Fatalf("virtual time not deterministic: %g vs %g", times[0], times[1])
	}
}

func TestNewRunnerRejectsBadInputs(t *testing.T) {
	params := rmat.Graph500(8) // 256 vertices
	// 2 nodes x 4 sockets = 8 ranks -> needs >= 512 vertices.
	if _, err := NewRunner(testConfig(8, 2, 4), machine.PPN8Bind, params, DefaultOptions()); err == nil {
		t.Error("expected error for too-small scale")
	}
	opts := DefaultOptions()
	opts.Granularity = 100 // not a multiple of 64
	if _, err := NewRunner(testConfig(12, 1, 4), machine.PPN8Bind, rmat.Graph500(12), opts); err == nil {
		t.Error("expected error for bad granularity")
	}
}
