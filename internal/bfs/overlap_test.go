package bfs

// End-to-end acceptance tests for OptOverlapAllgather: the pipelined
// level must compute bit-identical parent trees to the compressed level
// at every node count, stay deterministic across host core counts and
// segment counts, hide real communication (and hide none at any prior
// level), and compose with lossy-link transport — retransmission delays
// surface as exposed communication, never as a pipeline deadlock.

import (
	"fmt"
	"runtime"
	"testing"

	"numabfs/internal/fault"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
	"numabfs/internal/trace"
)

// runOptRunner is runOpt returning the runner too (for parent arrays).
func runOptRunner(t *testing.T, scale, nodes int, opts Options) (*Runner, RootResult) {
	t.Helper()
	params := rmat.Graph500(scale)
	r, err := NewRunner(testConfig(scale, nodes, 4), machine.PPN8Bind, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	root := params.Roots(1, r.HasEdgeGlobal)[0]
	return r, r.RunRoot(root)
}

// sameParents fails the test if the two runners hold different trees.
func sameParents(t *testing.T, label string, a, b *Runner) {
	t.Helper()
	pa, pb := a.ParentArrays(), b.ParentArrays()
	for rank := range pa {
		for v := range pa[rank] {
			if pa[rank][v] != pb[rank][v] {
				t.Fatalf("%s: parent tree differs at rank %d vertex %d: %d vs %d",
					label, rank, v, pa[rank][v], pb[rank][v])
			}
		}
	}
}

// TestOverlapParentTreeIdentityAllNodeCounts: at every node count 1..16
// the pipelined level must produce the identical traversal to the
// compressed level — same parent trees, same visit counts, same level
// structure.
func TestOverlapParentTreeIdentityAllNodeCounts(t *testing.T) {
	const scale = 13 // >= 64 vertices per rank at 16 nodes x ppn 8
	for nodes := 1; nodes <= 16; nodes++ {
		rc, resC := runOptRunner(t, scale, nodes, optOptions(OptCompressedAllgather))
		ro, resO := runOptRunner(t, scale, nodes, optOptions(OptOverlapAllgather))
		label := fmt.Sprintf("nodes=%d", nodes)
		if resO.Visited != resC.Visited || resO.TraversedEdges != resC.TraversedEdges ||
			resO.Levels != resC.Levels {
			t.Fatalf("%s: traversal differs: %d/%d/%d vs %d/%d/%d", label,
				resO.Visited, resO.TraversedEdges, resO.Levels,
				resC.Visited, resC.TraversedEdges, resC.Levels)
		}
		if resO.RawCommBytes != resC.RawCommBytes {
			t.Errorf("%s: logical comm volume changed: %d vs %d — chunking must only re-encode, not move different data",
				label, resO.RawCommBytes, resC.RawCommBytes)
		}
		sameParents(t, label, ro, rc)
	}
}

// TestOverlapSegmentCountInvariance: the chunk count is a pure
// performance knob — every value must produce the identical traversal.
func TestOverlapSegmentCountInvariance(t *testing.T) {
	const scale, nodes = 13, 4
	rc, resC := runOptRunner(t, scale, nodes, optOptions(OptCompressedAllgather))
	for _, segs := range []int{1, 2, 4, 8, 256} {
		opts := optOptions(OptOverlapAllgather)
		opts.OverlapSegments = segs
		ro, resO := runOptRunner(t, scale, nodes, opts)
		label := fmt.Sprintf("segments=%d", segs)
		if resO.Visited != resC.Visited || resO.TraversedEdges != resC.TraversedEdges {
			t.Fatalf("%s: traversal differs: %d/%d vs %d/%d", label,
				resO.Visited, resO.TraversedEdges, resC.Visited, resC.TraversedEdges)
		}
		sameParents(t, label, ro, rc)
	}
}

// TestOverlapPhaseExactlyZeroBelowLevelSix: no prior level may ever
// report hidden or exposed overlap — the phase exists only for the
// pipelined collective.
func TestOverlapPhaseExactlyZeroBelowLevelSix(t *testing.T) {
	const scale, nodes = 12, 2
	for opt := OptOriginal; opt <= OptCompressedAllgather; opt++ {
		_, res := runOptRunner(t, scale, nodes, optOptions(opt))
		if res.Breakdown.Ns[trace.Overlap] != 0 {
			t.Errorf("%s: hidden overlap %g != 0", opt, res.Breakdown.Ns[trace.Overlap])
		}
		if res.Breakdown.OverlapExposedNs != 0 {
			t.Errorf("%s: exposed overlap %g != 0", opt, res.Breakdown.OverlapExposedNs)
		}
	}
}

// TestOverlapHidesCommunication: with at least two nodes the pipeline
// must attribute real hidden communication, and hiding it must not
// inflate the breakdown total (hidden time is concurrent, not
// additional).
func TestOverlapHidesCommunication(t *testing.T) {
	const scale, nodes = 13, 2
	_, res := runOptRunner(t, scale, nodes, optOptions(OptOverlapAllgather))
	if res.Breakdown.Ns[trace.Overlap] <= 0 {
		t.Fatalf("no hidden communication attributed: %v", res.Breakdown.Ns)
	}
	var wall float64
	for p := trace.Phase(0); p < trace.NumPhases; p++ {
		if p != trace.Overlap {
			wall += res.Breakdown.Ns[p]
		}
	}
	if res.Breakdown.Total() != wall {
		t.Errorf("Total() %g includes the Overlap phase (wall sum %g)", res.Breakdown.Total(), wall)
	}
}

// TestOverlapReducesTimeVsCompressed is the tentpole's acceptance check
// at unit scope: at 4 nodes the pipelined level must traverse the same
// graph in strictly less virtual time than the compressed level, with
// hidden communication accounting for the gain.
func TestOverlapReducesTimeVsCompressed(t *testing.T) {
	const scale, nodes = 16, 4
	comp := runOpt(t, scale, nodes, optOptions(OptCompressedAllgather))
	over := runOpt(t, scale, nodes, optOptions(OptOverlapAllgather))
	if over.Visited != comp.Visited || over.TraversedEdges != comp.TraversedEdges {
		t.Fatalf("overlap level changed the traversal: %+v vs %+v", over, comp)
	}
	if over.TimeNs >= comp.TimeNs {
		t.Errorf("overlap time %.0f ns not below compressed %.0f ns", over.TimeNs, comp.TimeNs)
	}
	if over.Breakdown.Ns[trace.Overlap] <= 0 {
		t.Errorf("no hidden communication: %v", over.Breakdown.Ns)
	}
}

// TestOverlapDeterministicAcrossHostParallelism: the pipelined level's
// virtual times and trees must be bit-identical across repeats and host
// core counts.
func TestOverlapDeterministicAcrossHostParallelism(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	opts := optOptions(OptOverlapAllgather)
	opts.OverlapSegments = 4

	run := func() string {
		r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, params, opts)
		if err != nil {
			t.Fatal(err)
		}
		r.Setup()
		root := params.Roots(1, r.HasEdgeGlobal)[0]
		res := r.RunRoot(root)
		if res.Breakdown.Ns[trace.Overlap] <= 0 {
			t.Fatal("pipelined run hid no communication")
		}
		return signature(r, res)
	}
	prev := runtime.GOMAXPROCS(1)
	s1 := run()
	repeat := run()
	runtime.GOMAXPROCS(4)
	s4 := run()
	runtime.GOMAXPROCS(prev)
	if s1 != repeat {
		t.Fatalf("pipelined run not repeatable:\n%.160s...\n%.160s...", s1, repeat)
	}
	if s1 != s4 {
		t.Fatalf("host parallelism leaked into pipelined results:\nGOMAXPROCS=1 %.160s...\nGOMAXPROCS=4 %.160s...", s1, s4)
	}
}

// TestOverlapUnderLoss: 5% loss on every link must not deadlock the
// pipeline; the run completes with the identical tree, real
// retransmits, and the transport's delays surfacing as exposed (not
// hidden) communication.
func TestOverlapUnderLoss(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	opts := optOptions(OptOverlapAllgather)

	clean, cleanRes := runOptRunner(t, scale, 2, opts)

	r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	if err := r.InjectFaults(fault.Lossy(9, 0.05)); err != nil {
		t.Fatal(err)
	}
	res := r.RunRoot(cleanRes.Root)
	if res.TEPS <= 0 {
		t.Fatalf("lossy pipelined run did not finish: %+v", res)
	}
	if res.Xport.Retransmits == 0 {
		t.Fatalf("5%% loss produced no transport work: %+v", res.Xport)
	}
	if res.Breakdown.Ns[trace.Xport] <= 0 {
		t.Fatalf("no transport stall in breakdown under loss: %v", res.Breakdown.Ns)
	}
	if res.Visited != cleanRes.Visited || res.TraversedEdges != cleanRes.TraversedEdges {
		t.Fatalf("traversal differs under loss: %d/%d vs %d/%d",
			res.Visited, res.TraversedEdges, cleanRes.Visited, cleanRes.TraversedEdges)
	}
	sameParents(t, "lossy", r, clean)
	if res.Breakdown.OverlapExposedNs <= cleanRes.Breakdown.OverlapExposedNs {
		t.Errorf("retransmission delays did not surface as exposed comm: lossy %.0f <= clean %.0f",
			res.Breakdown.OverlapExposedNs, cleanRes.Breakdown.OverlapExposedNs)
	}
}

// TestOverlapComposesWithCrashRecovery: a mid-run rank crash under the
// pipelined level must recover through checkpoints to the same tree.
func TestOverlapComposesWithCrashRecovery(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	opts := optOptions(OptOverlapAllgather)

	clean, cleanRes := runOptRunner(t, scale, 2, opts)

	r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	plan := fault.Plan{Crashes: []fault.Crash{{Rank: 3, AtNs: cleanRes.TimeNs / 2}}}
	if err := r.InjectFaults(plan); err != nil {
		t.Fatal(err)
	}
	res := r.RunRoot(cleanRes.Root)
	if len(res.Faults) == 0 {
		t.Fatalf("scheduled crash at %.0f ns never fired (run took %.0f ns)",
			cleanRes.TimeNs/2, res.TimeNs)
	}
	if res.Visited != cleanRes.Visited || res.TraversedEdges != cleanRes.TraversedEdges {
		t.Fatalf("traversal differs after recovery: %d/%d vs %d/%d",
			res.Visited, res.TraversedEdges, cleanRes.Visited, cleanRes.TraversedEdges)
	}
	sameParents(t, "crash-recovery", r, clean)
}
