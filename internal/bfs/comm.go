package bfs

import (
	"numabfs/internal/machine"
	"numabfs/internal/mpi"
)

// allgatherInQueue runs the in_queue allgather of Fig. 1 under the
// configured optimization level. On entry every rank's new frontier bits
// sit in its owned out_queue segment; on return every rank's in_queue
// view holds the full new frontier bitmap.
func (rs *rankState) allgatherInQueue(p *mpi.Proc) {
	r := rs.r
	wlo := r.wordLayout.Displs[rs.pos]
	wcnt := r.wordLayout.Counts[rs.pos]
	ownOut := rs.outQ.Words()[wlo : wlo+wcnt]

	switch r.Opts.Opt {
	case OptOriginal:
		// Stage the owned segment into the private in_queue, then the
		// MPI library's default allgather over all ranks.
		copy(rs.inQ.Words()[wlo:wlo+wcnt], ownOut)
		p.Compute(rs.team.Parallel(machine.PhaseLoad{
			SeqBytes: wcnt * 16, SeqLoc: r.pl.PrivateLoc,
		}))
		r.AllGroup.Allgather(p, rs.inQ.Words(), r.wordLayout)

	case OptShareInQueue:
		// Children send their private segments to the node leader, which
		// assembles the node-shared in_queue; no broadcast back.
		r.NC.SharedInQueueAllgather(p, rs.inQ.Words(), ownOut, r.wordLayout)

	case OptShareAll:
		// out_queue is node-shared too: the leader reads children's
		// segments directly; neither gather nor broadcast.
		r.NC.SharedAllAgather(p, rs.inQ.Words(), rs.outQ.Words(), r.wordLayout)

	case OptParAllgather:
		// Per-socket subgroups allgather concurrently into the shared
		// in_queue; each rank contributes its own (shared) out segment.
		r.NC.ParallelAllgather(p, rs.inQ.Words(), ownOut, r.wordLayout)

	case OptCompressedAllgather:
		// Parallelized allgather with each subgroup segment travelling
		// in the codec's adaptive wire format (sparse at low frontier
		// density, RLE/dense near saturation).
		r.NC.ParallelAllgatherCompressed(p, rs.inQ.Words(), ownOut, r.wordLayout, rs.inqCodec)

	case OptOverlapAllgather:
		// The compressed parallel allgather pipelined in chunks, with the
		// summary-share rebuild of each chunk running under the next
		// chunk's transfer (internal/bfs/overlap.go).
		rs.overlapAllgatherInQueue(p, ownOut)
	}
}

// allgatherSummary rebuilds this rank's share of in_queue_summary from
// the freshly allgathered in_queue and runs the summary allgather — the
// second, much smaller allgather of Fig. 1.
func (rs *rankState) allgatherSummary(p *mpi.Proc) {
	r := rs.r

	// This rank's summary share in summary words -> base bit range.
	bitLo, bitHi := rs.shareBits(rs.pos)
	if r.Opts.Opt >= OptOverlapAllgather {
		// Most of the share was rebuilt chunk-by-chunk inside the
		// pipelined allgather; only the gaps remain.
		rs.rebuildShareGaps(p, bitLo, bitHi)
	} else {
		written := rs.inSum.RebuildRange(rs.inQ, bitLo, bitHi)
		p.Compute(rs.team.Parallel(machine.PhaseLoad{
			SeqBytes: (bitHi-bitLo)/8 + written*8,
			SeqLoc:   r.inqLoc(),
		}))
	}

	sumWords := rs.inSum.Bits().Words()
	switch r.Opts.Opt {
	case OptOriginal, OptShareInQueue:
		// Private summary: the default allgather distributes the shares.
		r.AllGroup.Allgather(p, sumWords, r.sumLayout)
	case OptShareAll:
		// Shared summary, contributions rebuilt in place.
		r.NC.SharedInPlaceAllgather(p, sumWords, r.sumLayout)
	case OptParAllgather:
		r.NC.ParallelAllgatherInPlace(p, sumWords, r.sumLayout)
	case OptCompressedAllgather, OptOverlapAllgather:
		// The summary is orders of magnitude smaller than in_queue, but
		// it is also far sparser early on — the same codec pays off.
		// (The summary exchange stays blocking at level 6: it is too
		// small for chunking to hide anything.)
		r.NC.ParallelAllgatherInPlaceCompressed(p, sumWords, r.sumLayout, rs.sumCodec)
	}
}

// shareBits returns the base-bit range [bitLo, bitHi) of a partition
// position's in_queue_summary share (granule-aligned; clamped to the
// vertex count).
func (rs *rankState) shareBits(pos int) (int64, int64) {
	r := rs.r
	g := r.Opts.Granularity
	n := r.Params.NumVertices()
	slo := r.sumLayout.Displs[pos]
	scnt := r.sumLayout.Counts[pos]
	bitLo := slo * 64 * g
	bitHi := (slo + scnt) * 64 * g
	if bitLo > n {
		bitLo = n
	}
	if bitHi > n {
		bitHi = n
	}
	return bitLo, bitHi
}
