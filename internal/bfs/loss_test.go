package bfs

// End-to-end acceptance tests for the reliable transport: under any
// seeded loss plan the BFS completes with the identical parent tree and
// a deterministic (repeatable, GOMAXPROCS-independent) virtual time,
// and a plan that only tunes the transport without declaring loss is an
// exact identity.

import (
	"runtime"
	"testing"

	"numabfs/internal/fault"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
	"numabfs/internal/trace"
)

// TestLossPlanPreservesResults: with drop/dup/reorder/corrupt active on
// every link, the run must cost more virtual time and real retransmits —
// and change nothing about what was computed.
func TestLossPlanPreservesResults(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	rBase, base := runWithPlan(t, testConfig(scale, 2, 4), params, nil)

	for _, opt := range []Opt{OptOriginal, OptCompressedAllgather} {
		r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, params, optOptions(opt))
		if err != nil {
			t.Fatal(err)
		}
		r.Setup()
		if err := r.InjectFaults(fault.Lossy(9, 0.05)); err != nil {
			t.Fatal(err)
		}
		res := r.RunRoot(base.Root)

		if res.TEPS <= 0 {
			t.Fatalf("%s: lossy run did not finish: %+v", opt, res)
		}
		if res.Xport.Retransmits == 0 || res.Xport.Acks == 0 {
			t.Fatalf("%s: 5%% loss produced no transport work: %+v", opt, res.Xport)
		}
		if res.Xport.OverheadBytes <= 0 || res.Xport.OverheadBytes >= res.CommBytes {
			t.Fatalf("%s: overhead %d outside (0, comm %d)", opt, res.Xport.OverheadBytes, res.CommBytes)
		}
		if res.TraversedEdges != base.TraversedEdges || res.Visited != base.Visited {
			t.Fatalf("%s: traversal differs under loss: %d/%d vs %d/%d",
				opt, res.TraversedEdges, res.Visited, base.TraversedEdges, base.Visited)
		}
		for rank, pa := range r.ParentArrays() {
			for v, p := range pa {
				if p != rBase.ParentArrays()[rank][v] {
					t.Fatalf("%s: parent tree differs at rank %d vertex %d: %d vs %d",
						opt, rank, v, p, rBase.ParentArrays()[rank][v])
				}
			}
		}
	}

	// The baseline (OptOriginal) lossy run must cost more virtual time
	// than the clean one.
	r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, params, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	if err := r.InjectFaults(fault.Lossy(9, 0.05)); err != nil {
		t.Fatal(err)
	}
	res := r.RunRoot(base.Root)
	if res.TimeNs <= base.TimeNs {
		t.Fatalf("loss cost no time: %g vs clean %g", res.TimeNs, base.TimeNs)
	}
	// The transport's stall is carved out of the comm phases into its
	// own breakdown entry; clean runs never charge it.
	if res.Breakdown.Ns[trace.Xport] <= 0 {
		t.Fatalf("no transport stall in breakdown under loss: %v", res.Breakdown.Ns)
	}
	if base.Breakdown.Ns[trace.Xport] != 0 {
		t.Fatalf("clean run charged transport stall: %g", base.Breakdown.Ns[trace.Xport])
	}
}

// optOptions returns DefaultOptions at the given optimization level.
func optOptions(o Opt) Options {
	opts := DefaultOptions()
	opts.Opt = o
	return opts
}

// TestLossDeterministicAcrossHostParallelism: the transport's stateless
// draws must make lossy runs bit-identical across repeats and host core
// counts.
func TestLossDeterministicAcrossHostParallelism(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	plan := fault.Lossy(42, 0.05)
	plan.JitterMaxNs = 200 // loss and jitter together

	run := func() string {
		p := plan
		r, res := runWithPlan(t, testConfig(scale, 2, 4), params, &p)
		if res.Xport.Retransmits == 0 {
			t.Fatal("loss plan produced no retransmits")
		}
		return signature(r, res)
	}
	prev := runtime.GOMAXPROCS(1)
	s1 := run()
	repeat := run()
	runtime.GOMAXPROCS(4)
	s4 := run()
	runtime.GOMAXPROCS(prev)
	if s1 != repeat {
		t.Fatalf("lossy run not repeatable:\n%.160s...\n%.160s...", s1, repeat)
	}
	if s1 != s4 {
		t.Fatalf("host parallelism leaked into lossy results:\nGOMAXPROCS=1 %.160s...\nGOMAXPROCS=4 %.160s...", s1, s4)
	}
}

// TestTransportTuningOnlyPlanIsExactIdentity extends the empty-plan
// identity to plans that set retransmission tuning but no Loss events:
// the transport stays off and every output bit matches the clean run.
func TestTransportTuningOnlyPlanIsExactIdentity(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	rBase, base := runWithPlan(t, testConfig(scale, 2, 4), params, nil)
	tuned := fault.Plan{RetransmitTimeoutNs: 5e3, RetransmitBackoff: 1.5, RetryBudget: 4}
	rTuned, withTuning := runWithPlan(t, testConfig(scale, 2, 4), params, &tuned)
	if sb, st := signature(rBase, base), signature(rTuned, withTuning); sb != st {
		t.Fatalf("tuning-only plan perturbed the run:\nbase  %.120s...\ntuned %.120s...", sb, st)
	}
	if base.CommBytes != withTuning.CommBytes || base.RawCommBytes != withTuning.RawCommBytes {
		t.Fatalf("tuning-only plan perturbed comm volume: %d/%d vs %d/%d",
			base.CommBytes, base.RawCommBytes, withTuning.CommBytes, withTuning.RawCommBytes)
	}
	if withTuning.Xport.OverheadBytes != 0 || withTuning.Xport.Acks != 0 {
		t.Fatalf("tuning-only plan charged transport overhead: %+v", withTuning.Xport)
	}
}
