package bfs

import (
	"fmt"

	"numabfs/internal/machine"
	"numabfs/internal/mpi"
	"numabfs/internal/obs"
	"numabfs/internal/trace"
)

// This file implements level-boundary checkpointing for crash recovery
// (internal/fault). At the bottom of every level of the lockstep loop —
// after the allreduce that published the level's frontier and after any
// mode switch — each rank snapshots the state a resume needs, keeping
// the two newest generations. When a rank crash aborts the iteration,
// RunRoot restores a generation every survivor is guaranteed to hold
// and re-enters the level loop, charging the snapshot copies and the
// rollback through the virtual clock like any other modelled work.
//
// Two generations are the minimum that survives the abort race: ranks
// are released from a dying collective at arbitrary host moments, so a
// rank may abort after the crashed rank saved generation L but before
// saving its own. The crashed rank saving L proves every rank completed
// the level-L allreduce, which each rank only reaches after saving L-1 —
// so generation L-1 exists everywhere and is the recovery target. The
// target is derived from the crashed rank alone (its history at the
// deterministically-timed crash is deterministic), never from whichever
// survivor the host scheduler happened to release first.

// loopState is the lockstep control state of the level loop — the
// allreduce-derived values every rank holds identical copies of. A
// checkpoint embeds it so a restored rank re-enters the loop mid-flight.
type loopState struct {
	bottomUp bool
	// nf and mf are the allreduced size and edge sum of the current
	// frontier; visitedEdgesGlobal and prevNf drive the hybrid switch.
	nf, mf             int64
	visitedEdgesGlobal int64
	prevNf             int64
}

// checkpoint is one rank's saved state at a level boundary.
type checkpoint struct {
	level int       // BFS level completed when this was saved
	clock float64   // rank's virtual clock right after the save
	st    loopState // lockstep control state

	bd           trace.Breakdown
	levelStats   []trace.LevelStat
	parent       []int64
	queue        []int64 // top-down frontier (empty in bottom-up mode)
	visitedCount int64
	visitedEdges int64

	// inq/sum snapshot the frontier bitmaps, only in bottom-up mode and
	// only on the rank that owns the copy (every rank below the sharing
	// optimization level, the node leader above it). Top-down state
	// needs neither: the queue and parents fully determine a resume.
	inq []uint64
	sum []uint64

	// stable marks a generation every rank is known to hold — set when
	// it has been a restore target. A crash before the next save then
	// safely restores it again instead of reaching one level further
	// back than anyone saved.
	stable bool
}

// bytes is the snapshot's payload size (what the save models copying).
func (ck *checkpoint) bytes() int64 {
	b := int64(len(ck.parent))*8 + int64(len(ck.queue))*8 +
		int64(len(ck.inq))*8 + int64(len(ck.sum))*8 +
		int64(len(ck.levelStats))*48
	return b
}

// newCkpt pops a recycled generation from the rank's pool (or allocates
// the pool's very first ones): the snapshot slices keep their capacity,
// so steady-state checkpointing — every level of every root — allocates
// nothing once the pool is warm.
func (rs *rankState) newCkpt() *checkpoint {
	if n := len(rs.ckptPool); n > 0 {
		ck := rs.ckptPool[n-1]
		rs.ckptPool = rs.ckptPool[:n-1]
		return ck
	}
	return &checkpoint{}
}

// recycleCkpt returns a dropped generation to the pool. nil is allowed.
func (rs *rankState) recycleCkpt(ck *checkpoint) {
	if ck != nil {
		rs.ckptPool = append(rs.ckptPool, ck)
	}
}

// saveCheckpoint snapshots the rank's state at the current level
// boundary and charges the copy cost to the Ckpt phase. A no-op unless
// the active fault plan schedules a crash (checkpointing has a modelled
// cost; paying it without a threat would perturb every result).
//
// The generation swap happens before the cost is charged: if the crash
// truncates the save itself, the crashed rank's newest generation
// points at the level whose save it attempted, and the recovery target
// (one level older) stays a generation everyone completed.
func (rs *rankState) saveCheckpoint(p *mpi.Proc, st *loopState) {
	r := rs.r
	if !r.ckptOn {
		return
	}
	t0 := p.Clock()
	ck := rs.newCkpt()
	ck.level = rs.levels
	ck.st = *st
	ck.bd = rs.bd
	ck.levelStats = append(ck.levelStats[:0], rs.levelStats...)
	ck.parent = append(ck.parent[:0], rs.parent...)
	ck.queue = append(ck.queue[:0], rs.queue...)
	ck.visitedCount = rs.visitedCount
	ck.visitedEdges = rs.visitedEdges
	ck.inq, ck.sum = ck.inq[:0], ck.sum[:0]
	ck.stable = false
	if st.bottomUp {
		if r.Opts.Opt < OptShareInQueue || r.NC.IsLeader(p) {
			ck.inq = append(ck.inq, rs.inQ.Words()...)
		}
		if r.Opts.Opt < OptShareAll || r.NC.IsLeader(p) {
			ck.sum = append(ck.sum, rs.inSum.Bits().Words()...)
		}
	}
	rs.recycleCkpt(rs.ckptPrev)
	rs.ckptPrev, rs.ckptCur = rs.ckptCur, ck

	// Read the live state, write the snapshot: 2x the payload through
	// the rank's memory system.
	p.Compute(rs.team.Parallel(machine.PhaseLoad{
		SeqBytes: ck.bytes() * 2,
		SeqLoc:   r.pl.PrivateLoc,
	}))
	rs.bd.Add(trace.Ckpt, p.Clock()-t0)
	rs.rec.PhaseSpan(trace.Ckpt, rs.levels, t0, p.Clock())
	rs.rec.GaugeAdd(obs.GaugeCkptBytes, t0, float64(ck.bytes()))
	ck.clock = p.Clock()
	ck.bd = rs.bd
}

// recoveryTarget returns the level every rank can restore after the
// member at partition position `pos` crashed, or -1 when the iteration
// must rerun from the root. Derived from the crashed rank's generations
// only (see the file comment).
func (r *Runner) recoveryTarget(pos int) int {
	ck := r.states[pos].ckptCur
	switch {
	case ck == nil:
		return -1
	case ck.stable:
		return ck.level
	default:
		return ck.level - 1
	}
}

// restoreCheckpoint rolls the rank back to the generation at `target`
// and returns the loop state to resume with; target < 0 clears the
// generations and returns nil — the caller reruns the iteration from
// the root. Either way the rank's clock resumes no earlier than floor
// (crash time plus the modelled detection timeout): rolling back state
// never rolls back time. The rollback copy and the re-synchronizing
// barrier are charged to the Recovery phase.
func (rs *rankState) restoreCheckpoint(p *mpi.Proc, target int, floor float64) *loopState {
	r := rs.r
	rs.rec = p.Obs()
	if target < 0 {
		rs.recycleCkpt(rs.ckptCur)
		rs.recycleCkpt(rs.ckptPrev)
		rs.ckptCur, rs.ckptPrev = nil, nil
		// The rerun restarts at the detection-timeout floor (plus any
		// parked re-own transfer): that dead time is the recovery cost.
		// reset() is about to wipe bd, so the charges are parked and
		// folded back in right after (initRoot).
		p.RestoreClock(floor + rs.pendingReownNs)
		rs.pendingRecoveryNs = floor
		rs.rec.PhaseSpan(trace.Recovery, 0, 0, floor)
		rs.rec.FaultEvent("recover", p.Clock())
		return nil
	}
	var ck *checkpoint
	switch {
	case rs.ckptCur != nil && rs.ckptCur.level == target:
		ck = rs.ckptCur
	case rs.ckptPrev != nil && rs.ckptPrev.level == target:
		ck = rs.ckptPrev
	default:
		panic(fmt.Sprintf("bfs: rank %d has no checkpoint for level %d", p.Rank(), target))
	}
	ck.stable = true
	if ck == rs.ckptCur {
		rs.recycleCkpt(rs.ckptPrev)
	} else {
		rs.recycleCkpt(rs.ckptCur)
	}
	rs.ckptCur, rs.ckptPrev = ck, nil

	start := floor
	if ck.clock > start {
		start = ck.clock
	}
	p.RestoreClock(start)

	// Roll the algorithm state back to the snapshot.
	rs.bd = ck.bd
	rs.levels = ck.level
	rs.levelStats = append(rs.levelStats[:0], ck.levelStats...)
	copy(rs.parent, ck.parent)
	rs.queue = append(rs.queue[:0], ck.queue...)
	rs.next = rs.next[:0]
	rs.visitedCount = ck.visitedCount
	rs.visitedEdges = ck.visitedEdges
	if len(ck.inq) > 0 {
		copy(rs.inQ.Words(), ck.inq)
	}
	if len(ck.sum) > 0 {
		copy(rs.inSum.Bits().Words(), ck.sum)
	}

	if rs.pendingReownNs > 0 {
		// Survivor repartitioning: the re-own transfer (adjacency re-fetch
		// through the kernel-1 cache, checkpoint handoff from the dead
		// rank's node scratch) runs before the rollback copy.
		t0 := p.Clock()
		p.RestoreClock(t0 + rs.pendingReownNs)
		rs.bd.Add(trace.Reown, rs.pendingReownNs)
		rs.rec.PhaseSpan(trace.Reown, rs.levels, t0, p.Clock())
		rs.pendingReownNs = 0
	}

	// Charge the rollback copy, then barrier: ranks restoring shared
	// bitmaps (the node leaders) must finish writing before anyone
	// reads, and the loop resumes from synchronized clocks exactly as
	// it left them.
	reStart := p.Clock()
	p.Compute(rs.team.Parallel(machine.PhaseLoad{
		SeqBytes: ck.bytes() * 2,
		SeqLoc:   r.pl.PrivateLoc,
	}))
	p.Barrier()
	rs.bd.Add(trace.Recovery, p.Clock()-reStart)
	rs.rec.PhaseSpan(trace.Recovery, rs.levels, reStart, p.Clock())
	rs.rec.FaultEvent("recover", p.Clock())

	st := ck.st
	return &st
}
