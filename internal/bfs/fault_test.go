package bfs

// Acceptance tests for deterministic fault injection: an empty plan is
// an exact identity (bit-identical results, so the weak-node figures
// cannot move), a nontrivial plan is deterministic across host core
// counts, and a crashed rank recovers through level-boundary
// checkpoints with the same BFS tree and a finite TEPS.

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"numabfs/internal/fault"
	"numabfs/internal/machine"
	"numabfs/internal/obs"
	"numabfs/internal/rmat"
	"numabfs/internal/trace"
)

// signature compresses everything a RootResult guarantees to be
// deterministic, plus the full parent trees, into one comparable string.
func signature(r *Runner, res RootResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%x bd=%x e=%d v=%d lv=%d",
		res.TimeNs, res.Breakdown.Total(), res.TraversedEdges, res.Visited, res.Levels)
	for _, ls := range res.LevelStats {
		fmt.Fprintf(&b, " %d/%d/%x", ls.NF, ls.MF, ls.Ns)
	}
	for _, pa := range r.ParentArrays() {
		for _, p := range pa {
			fmt.Fprintf(&b, ",%d", p)
		}
	}
	return b.String()
}

func runWithPlan(t *testing.T, cfg machine.Config, params rmat.Params, plan *fault.Plan) (*Runner, RootResult) {
	t.Helper()
	r, err := NewRunner(cfg, machine.PPN8Bind, params, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	if plan != nil {
		if err := r.InjectFaults(*plan); err != nil {
			t.Fatal(err)
		}
	}
	root := params.Roots(1, r.HasEdgeGlobal)[0]
	return r, r.RunRoot(root)
}

// TestEmptyPlanIsExactIdentity: injecting a zero-value plan must leave
// every output bit-identical to a run with no injector call at all —
// the guarantee that the fault layer costs nothing when unused.
func TestEmptyPlanIsExactIdentity(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	rBase, base := runWithPlan(t, testConfig(scale, 2, 4), params, nil)
	rPlan, withPlan := runWithPlan(t, testConfig(scale, 2, 4), params, &fault.Plan{})
	if sb, sp := signature(rBase, base), signature(rPlan, withPlan); sb != sp {
		t.Fatalf("empty plan perturbed the run:\nbase %.120s...\nplan %.120s...", sb, sp)
	}
	if base.CommBytes != withPlan.CommBytes || base.RawCommBytes != withPlan.RawCommBytes {
		t.Fatalf("empty plan perturbed comm volume: %d/%d vs %d/%d",
			base.CommBytes, base.RawCommBytes, withPlan.CommBytes, withPlan.RawCommBytes)
	}
}

// TestWeakNodeConfigEqualsInjectedPlan: the config's weak node (the
// paper's ill-performing node, Figs. 13/15) is now implemented as a
// trivial static fault plan — a config-driven run and an explicitly
// injected equivalent plan must agree bit for bit.
func TestWeakNodeConfigEqualsInjectedPlan(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)

	cfgWeak := testConfig(scale, 2, 4)
	cfgWeak.WeakNode = 1
	cfgWeak.WeakNodeBWFactor = 0.8
	rCfg, viaConfig := runWithPlan(t, cfgWeak, params, nil)

	plan := fault.WeakNode(1, 0.8)
	rInj, viaPlan := runWithPlan(t, testConfig(scale, 2, 4), params, &plan)

	if sc, sp := signature(rCfg, viaConfig), signature(rInj, viaPlan); sc != sp {
		t.Fatalf("config weak node and injected plan disagree:\nconfig %.120s...\nplan   %.120s...", sc, sp)
	}
	// Sanity: the weak node actually slowed the run down.
	_, clean := runWithPlan(t, testConfig(scale, 2, 4), params, nil)
	if viaConfig.TimeNs <= clean.TimeNs {
		t.Fatalf("weak node did not slow the run: %g vs clean %g", viaConfig.TimeNs, clean.TimeNs)
	}
}

// TestFaultsDeterministicAcrossHostParallelism: the same plan + seed
// must yield bit-identical virtual-time results regardless of how the
// host schedules the rank goroutines — including through a crash and
// its checkpoint recovery.
func TestFaultsDeterministicAcrossHostParallelism(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)

	// Derive a mid-run crash time from an unperturbed probe.
	_, probe := runWithPlan(t, testConfig(scale, 2, 4), params, nil)
	plan := fault.Plan{
		Seed:        7,
		BW:          []fault.BWEvent{{Node: 1, Src: -1, Dst: -1, Factor: 0.5, FromNs: 0.2 * probe.TimeNs, UntilNs: 0.8 * probe.TimeNs}},
		Stragglers:  []fault.Straggler{{Rank: 3, Factor: 1.3}},
		JitterMaxNs: 200,
		Crashes:     []fault.Crash{{Rank: 2, AtNs: 0.5 * probe.TimeNs}},
	}

	run := func() string {
		p := plan
		r, res := runWithPlan(t, testConfig(scale, 2, 4), params, &p)
		if len(res.Faults) == 0 {
			t.Fatal("scheduled crash never fired")
		}
		return signature(r, res)
	}
	prev := runtime.GOMAXPROCS(1)
	s1 := run()
	runtime.GOMAXPROCS(4)
	s4 := run()
	runtime.GOMAXPROCS(prev)
	if s1 != s4 {
		t.Fatalf("host parallelism leaked into faulted results:\nGOMAXPROCS=1 %.160s...\nGOMAXPROCS=4 %.160s...", s1, s4)
	}
}

// TestCrashRecoveryCompletesWithSameTree: a crashed-rank run must
// complete via checkpoint recovery — finite TEPS, identical BFS tree to
// the undisturbed run, the recovery cost visible in the breakdown and
// the crash/recover events in the obs metrics report — instead of
// panicking.
func TestCrashRecoveryCompletesWithSameTree(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	rBase, base := runWithPlan(t, testConfig(scale, 2, 4), params, nil)

	for _, frac := range []float64{0, 0.5} { // before the first checkpoint (full rerun) and mid-run
		plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 1, AtNs: frac * base.TimeNs}}}
		r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, params, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.NewRecorder()
		r.AttachObs(rec.NewSession(fmt.Sprintf("crash-%g", frac)))
		r.Setup()
		if err := r.InjectFaults(*plan); err != nil {
			t.Fatal(err)
		}
		res := r.RunRoot(base.Root)

		if len(res.Faults) != 1 || res.Faults[0].Rank != 1 {
			t.Fatalf("frac %g: Faults = %+v, want one crash of rank 1", frac, res.Faults)
		}
		if res.TEPS <= 0 || res.TimeNs <= base.TimeNs {
			t.Fatalf("frac %g: TEPS %g, TimeNs %g (base %g): recovery must cost time and still finish",
				frac, res.TEPS, res.TimeNs, base.TimeNs)
		}
		if res.TraversedEdges != base.TraversedEdges || res.Visited != base.Visited {
			t.Fatalf("frac %g: traversal differs: %d/%d vs base %d/%d",
				frac, res.TraversedEdges, res.Visited, base.TraversedEdges, base.Visited)
		}
		for rank, pa := range r.ParentArrays() {
			for v, p := range pa {
				if p != rBase.ParentArrays()[rank][v] {
					t.Fatalf("frac %g: parent tree differs at rank %d vertex %d: %d vs %d",
						frac, rank, v, p, rBase.ParentArrays()[rank][v])
				}
			}
		}
		if res.Breakdown.Ns[trace.Recovery] <= 0 {
			t.Errorf("frac %g: no recovery time in breakdown", frac)
		}
		report := rec.BuildReport().String()
		if !strings.Contains(report, "fault events:") ||
			!strings.Contains(report, "crash=1") || !strings.Contains(report, "recover=") {
			t.Errorf("frac %g: metrics report missing fault events:\n%s", frac, report)
		}
	}
}

// TestCheckpointCostOnlyWhenCrashPlanned: a plan without crashes must
// not turn checkpointing on — the copies have a modelled cost that
// would otherwise perturb every perturbation-free result.
func TestCheckpointCostOnlyWhenCrashPlanned(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	plan := fault.Plan{Stragglers: []fault.Straggler{{Rank: 0, Factor: 1.5}}}
	r, res := runWithPlan(t, testConfig(scale, 2, 4), params, &plan)
	if r.ckptOn {
		t.Fatal("checkpointing on without a scheduled crash")
	}
	if ck := res.Breakdown.Ns[trace.Ckpt]; ck != 0 {
		t.Fatalf("checkpoint time %g charged without a crash plan", ck)
	}
}
