package bfs

import (
	"fmt"

	"numabfs/internal/bitmap"
	"numabfs/internal/collective"
	"numabfs/internal/fault"
	"numabfs/internal/graph"
	"numabfs/internal/machine"
	"numabfs/internal/mpi"
	"numabfs/internal/obs"
	"numabfs/internal/omp"
	"numabfs/internal/rmat"
	"numabfs/internal/simnet"
	"numabfs/internal/trace"
	"numabfs/internal/wire"
)

// Runner owns one simulated BFS job: the world of ranks, the partitioned
// graph, and the per-rank state. Build one with NewRunner, call Setup
// once (kernel 1), then RunRoot for each BFS root (kernel 2).
type Runner struct {
	W        *mpi.World
	NC       *collective.NodeComm
	AllGroup *collective.Group
	Part     graph.Partition
	Params   rmat.Params
	Opts     Options

	cfg machine.Config
	pl  machine.Placement

	// members maps partition position -> rank: the active member list the
	// partition, the layouts, the groups and the states are all indexed
	// by. posOf is the inverse (-1 for parked spares and dead ranks). At
	// full membership without spares, position == rank. Survivor
	// repartitioning (RecoverShrink) removes a position; spare promotion
	// (RecoverSpare) re-binds one to another rank.
	members []int
	posOf   []int
	// nodeSpares lists each node's parked spare ranks, lowest first,
	// consumed by promotions.
	nodeSpares [][]int

	// wordLayout maps position -> in_queue word segment; sumLayout maps
	// position -> summary word segment (even split).
	wordLayout collective.Layout
	sumLayout  collective.Layout

	inqBytes int64 // full in_queue size, for the cache model
	sumBytes int64 // full summary size

	states []*rankState

	// totalEdges is the number of directed adjacencies across all ranks,
	// used by the hybrid switch heuristic.
	totalEdges int64

	// SetupNs is the virtual time of distributed construction.
	SetupNs float64

	// faults is the active fault plan (InjectFaults); ckptOn enables
	// level-boundary checkpointing, only when the plan schedules a
	// crash — checkpoint copies have a modelled cost, so paying them
	// without a crash to survive would perturb every result.
	faults fault.Plan
	ckptOn bool

	// prebuilt, when non-nil, replaces distributed construction in Setup
	// with cached per-rank CSRs from an earlier identical build
	// (internal/graph500's graph cache); prebuiltNs is that build's
	// virtual construction time, reported as SetupNs.
	prebuilt   []*graph.CSR
	prebuiltNs float64
}

// rankState is the per-member algorithm state, indexed by partition
// position. A spare promotion re-binds the state to the spare's Proc —
// the state (and so the partition slot) survives the rank.
type rankState struct {
	r    *Runner
	pos  int // partition position == group position
	csr  *graph.CSR
	team omp.Team

	parent []int64 // per owned vertex; -1 unvisited

	inQ   *bitmap.Bitmap  // full bitmap over all vertices
	outQ  *bitmap.Bitmap  // full bitmap; only the owned segment is written
	inSum *bitmap.Summary // summary of inQ

	sumSeg []uint64 // staging for this rank's summary share (Par variant)

	// inqCodec/sumCodec are the rank's wire codecs for the compressed
	// allgather level (nil below OptCompressedAllgather). One codec per
	// collective purpose: each holds its own encode scratch, and a
	// payload aliases that scratch until the ring completes — separate
	// codecs keep the in_queue and summary rings independent.
	inqCodec *wire.Codec
	sumCodec *wire.Codec

	queue, next []int64   // top-down frontier queues (owned vertices)
	send        [][]int64 // top-down owner-routing buffers

	visitedEdges int64 // sum of degrees of vertices this rank visited
	visitedCount int64
	bd           trace.Breakdown
	levels       int
	levelStats   []trace.LevelStat

	// rec is the rank's observability stream (nil = tracing off; every
	// method on a nil stream no-ops).
	rec *obs.Rank

	// ckptCur/ckptPrev are the two newest level-boundary checkpoint
	// generations (internal/bfs/checkpoint.go); nil unless the active
	// fault plan schedules a crash. ckptPool recycles dropped
	// generations (their snapshot slices keep capacity), so steady-state
	// checkpointing allocates nothing across levels and roots.
	ckptCur  *checkpoint
	ckptPrev *checkpoint
	ckptPool []*checkpoint

	// pendingRecoveryNs carries the full-rerun recovery cost (the
	// detection-timeout floor) across reset(), which wipes bd.
	// pendingReownNs is the modelled cost of re-owning a dead rank's
	// state (adjacency re-fetch, checkpoint handoff), parked by a shrink
	// or promotion and charged to the Reown phase at the next restore.
	pendingRecoveryNs float64
	pendingReownNs    float64

	// Overlap-level (OptOverlapAllgather) state: the collective's
	// hidden/exposed ledger, the cached per-chunk rebuild hook, the
	// rank's summary-share bit range, and the chunk-rebuild bookkeeping
	// (current contiguous landed word run, rebuilt-up-to bit, and the
	// granule-aligned intervals already rebuilt this level).
	ov                   collective.Overlap
	ovChunk              func(w0, w1 int64) float64
	ovBitLo, ovBitHi     int64
	ovRunStart, ovRunEnd int64
	ovReb                int64
	ovDone               []bitSpan
}

// NewRunner builds a runner over cfg with the given placement policy.
func NewRunner(cfg machine.Config, policy machine.Policy, params rmat.Params, opts Options) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	pl := machine.PlacementFor(cfg, policy)
	w := mpi.NewWorld(cfg, pl)
	np := w.NumProcs()
	ppn := w.ProcsPerNode()
	if opts.SpareRanks >= ppn {
		return nil, fmt.Errorf("bfs: %d spare ranks per node leaves no active rank (ppn %d)", opts.SpareRanks, ppn)
	}
	// The last SpareRanks ranks of every node are parked as hot spares;
	// the partition covers the active members only. Each node's members
	// stay contiguous, which the node communicator requires.
	r := &Runner{
		W:      w,
		Params: params,
		Opts:   opts,
		cfg:    cfg,
		pl:     pl,
	}
	r.posOf = make([]int, np)
	r.nodeSpares = make([][]int, cfg.Nodes)
	var spares []int
	for rank := 0; rank < np; rank++ {
		if rank%ppn < ppn-opts.SpareRanks {
			r.posOf[rank] = len(r.members)
			r.members = append(r.members, rank)
		} else {
			r.posOf[rank] = -1
			node := rank / ppn
			r.nodeSpares[node] = append(r.nodeSpares[node], rank)
			spares = append(spares, rank)
		}
	}
	if len(spares) > 0 {
		w.Park(spares)
	}
	active := len(r.members)
	n := params.NumVertices()
	if n < int64(active)*64 {
		return nil, fmt.Errorf("bfs: scale %d too small for %d active ranks (need >= 64 vertices per rank)", params.Scale, active)
	}
	r.Part = graph.NewPartition(n, active)
	r.AllGroup = collective.NewGroup(w, r.members)
	r.NC = collective.NewNodeCommRanks(w, r.members)
	r.wordLayout = collective.SegLayout(r.Part.WordOffsets())
	words := (n + 63) / 64
	r.inqBytes = words * 8
	sumWords := (n/opts.Granularity + 63) / 64
	if sumWords < 1 {
		sumWords = 1
	}
	r.sumLayout = collective.EvenLayout(sumWords, active)
	r.sumBytes = sumWords * 8
	r.states = make([]*rankState, active)
	return r, nil
}

// InjectFaults installs a deterministic fault plan (internal/fault) for
// all subsequent RunRoot calls: bandwidth degradation, stragglers and
// jitter perturb the modelled times; a scheduled rank crash additionally
// turns on level-boundary checkpointing so the iteration recovers and
// completes instead of panicking. Call after Setup — construction
// (kernel 1) is not checkpointed, and the paper's perturbation study
// targets the traversal. The machine's configured weak node persists
// underneath the plan.
func (r *Runner) InjectFaults(plan fault.Plan) error {
	if err := r.W.InjectFaults(plan); err != nil {
		return err
	}
	r.faults = plan
	r.ckptOn = len(plan.Crashes) > 0
	return nil
}

// AttachObs routes the runner's world through an observability session:
// per-rank span timelines, collective spans, and communication counters
// (internal/obs). Call before Setup so the construction phase is
// recorded too. Tracing never advances virtual time — results are
// identical with and without a session.
func (r *Runner) AttachObs(s *obs.Session) { r.W.AttachObs(s) }

// UsePrebuilt installs per-rank CSRs cached from an earlier build with
// identical parameters (scale, edge factor, seed, rank count, dedup):
// Setup then skips distributed construction (kernel 1) and reports
// setupNs — the cached build's virtual construction time — as SetupNs,
// so results are bit-identical to a fresh build. Call before Setup.
func (r *Runner) UsePrebuilt(csrs []*graph.CSR, setupNs float64) error {
	if len(csrs) != len(r.states) {
		return fmt.Errorf("bfs: prebuilt CSRs for %d ranks, world has %d", len(csrs), len(r.states))
	}
	r.prebuilt = csrs
	r.prebuiltNs = setupNs
	return nil
}

// CSRs returns each rank's CSR (aliases; the graph is read-only during
// BFS). Valid after Setup; used to populate the graph cache.
func (r *Runner) CSRs() []*graph.CSR {
	out := make([]*graph.CSR, len(r.states))
	for i, rs := range r.states {
		out[i] = rs.csr
	}
	return out
}

// sharedLoc is the locality of a node-shared structure: with one rank per
// node "shared" degenerates to the rank's own interleaved memory.
func (r *Runner) sharedLoc() machine.Locality {
	if r.pl.ProcsPerNode == 1 {
		return r.pl.PrivateLoc
	}
	return machine.NodeShared
}

// inqLoc returns where in_queue lives under the current optimization.
func (r *Runner) inqLoc() machine.Locality {
	if r.Opts.Opt >= OptShareInQueue {
		return r.sharedLoc()
	}
	return r.pl.PrivateLoc
}

// sumLoc returns where in_queue_summary lives: the summaries are shared
// from the ShareAll level on ("Share all means in_queue, out_queue,
// in_queue_summary, and out_queue_summary are all shared" — Fig. 9).
func (r *Runner) sumLoc() machine.Locality {
	if r.Opts.Opt >= OptShareAll {
		return r.sharedLoc()
	}
	return r.pl.PrivateLoc
}

// Setup runs distributed construction (kernel 1) and allocates per-rank
// BFS state. Must be called exactly once before RunRoot.
func (r *Runner) Setup() {
	n := r.Params.NumVertices()
	words := (n + 63) / 64
	sumWords := r.sumLayout.TotalWords()
	opt := r.Opts.Opt
	r.W.Run(func(p *mpi.Proc) {
		pos := r.posOf[p.Rank()]
		var csr *graph.CSR
		if r.prebuilt != nil {
			csr = r.prebuilt[pos]
		} else {
			csr = graph.BuildDistributed(p, r.AllGroup, r.Part, r.Params, r.Opts.Dedup)
		}
		rs := &rankState{
			r:    r,
			pos:  pos,
			csr:  csr,
			team: omp.TeamFor(r.cfg, r.pl),
		}
		rs.parent = make([]int64, csr.NumLocal())

		// in_queue: shared per node from ShareInQueue on.
		if opt >= OptShareInQueue {
			rs.inQ = bitmap.FromWords(p.SharedWords("in_queue", words), n)
		} else {
			rs.inQ = bitmap.New(n)
		}
		// out_queue and the summaries: shared from ShareAll on.
		if opt >= OptShareAll {
			rs.outQ = bitmap.FromWords(p.SharedWords("out_queue", words), n)
			rs.inSum = summaryFromWords(p.SharedWords("in_summary", sumWords), n, r.Opts.Granularity)
		} else {
			rs.outQ = bitmap.New(n)
			rs.inSum = bitmap.NewSummary(n, r.Opts.Granularity)
		}
		rs.sumSeg = make([]uint64, r.sumLayout.Counts[pos])
		rs.send = make([][]int64, len(r.members))
		if opt >= OptCompressedAllgather {
			rs.inqCodec = &wire.Codec{
				Team: rs.team, Loc: r.inqLoc(),
				Force:            r.Opts.WireFormat,
				SparseMaxDensity: r.Opts.WireSparseDensity,
			}
			rs.sumCodec = &wire.Codec{
				Team: rs.team, Loc: r.sumLoc(),
				Force:            r.Opts.WireFormat,
				SparseMaxDensity: r.Opts.WireSparseDensity,
			}
		}
		if opt >= OptOverlapAllgather {
			rs.ovChunk = rs.onOverlapChunk
			rs.ovBitLo, rs.ovBitHi = rs.shareBits(pos)
		}
		r.states[pos] = rs
	})
	r.SetupNs = r.W.MaxClock()
	if r.prebuilt != nil {
		r.SetupNs = r.prebuiltNs
	}
	r.W.ResetClocks()
	r.totalEdges = 0
	for _, rs := range r.states {
		r.totalEdges += rs.csr.NumEdges()
	}
}

// summaryFromWords wraps a shared word slice as a Summary.
func summaryFromWords(words []uint64, n, g int64) *bitmap.Summary {
	return bitmap.WrapSummary(bitmap.FromWords(words, (n+g-1)/g), g, n)
}

// State returns rank r's state (post-run inspection and tests).
func (r *Runner) State(rank int) *RankView {
	rs := r.states[rank]
	return &RankView{
		CSR:          rs.csr,
		Parent:       rs.parent,
		Breakdown:    rs.bd,
		VisitedEdges: rs.visitedEdges,
		VisitedCount: rs.visitedCount,
	}
}

// RankView is a read-only view of a rank's results.
type RankView struct {
	CSR          *graph.CSR
	Parent       []int64
	Breakdown    trace.Breakdown
	VisitedEdges int64
	VisitedCount int64
}

// HasEdgeGlobal reports whether vertex v has any incident edge, by asking
// its owner's CSR. Used for Graph500 root selection.
func (r *Runner) HasEdgeGlobal(v int64) bool {
	rs := r.states[r.Part.Owner(v)]
	return rs.csr.HasEdge(v)
}

// ParentArrays returns each rank's parent array (aliases; do not modify).
func (r *Runner) ParentArrays() [][]int64 {
	out := make([][]int64, len(r.states))
	for i, rs := range r.states {
		out[i] = rs.parent
	}
	return out
}

// RootResult summarizes one BFS iteration (one root).
type RootResult struct {
	Root           int64
	TimeNs         float64 // virtual wall time of the iteration
	TraversedEdges int64   // undirected edges in the traversed component
	Visited        int64   // vertices reached
	TEPS           float64
	Levels         int
	Breakdown      trace.Breakdown // mean across ranks
	// LevelStats is the frontier growth curve (rank 0's view; the
	// frontier values are allreduced and identical everywhere).
	LevelStats []trace.LevelStat
	// CommBytes is the exact total network volume (intra- plus
	// inter-node MPI bytes) of the iteration. Under
	// OptCompressedAllgather these are wire bytes — what actually
	// crossed the network after encoding.
	CommBytes int64
	// RawCommBytes is the logical (pre-compression) volume; it equals
	// CommBytes except under OptCompressedAllgather, where the gap is
	// the compression saving.
	RawCommBytes int64
	// Wire aggregates every rank's codec decisions for the iteration
	// (segments per format, raw vs wire bytes); zero below
	// OptCompressedAllgather.
	Wire wire.Stats
	// Xport is the reliable-transport ledger of the iteration: protocol
	// overhead bytes (within CommBytes) and retransmit / corruption /
	// duplicate / reorder / ack counts. All-zero unless the fault plan
	// declares lossy links.
	Xport simnet.Xport
	// Faults lists the rank crashes this iteration survived via
	// checkpoint recovery, in recovery order; empty when no crash fired.
	// When non-empty, CommBytes/RawCommBytes and Wire include the lost
	// attempts' partial traffic (those bytes really crossed the modelled
	// network), so they — unlike TimeNs, TEPS, the parent trees and the
	// Breakdown — are not bit-reproducible across host schedules.
	Faults []*mpi.FaultError
	// MTTRNs is the modelled mean-time-to-repair total of the iteration:
	// for each survived crash, the failure-detection latency (lease
	// expiry for permanent deaths, the plain timeout for transient ones)
	// plus the longest re-own transfer any survivor paid. Zero when no
	// crash fired.
	MTTRNs float64
	// Epoch is the world-view number the iteration finished on: 0 until
	// a shrink or promotion, stepped by each (mpi.World.Epoch).
	Epoch int
}

// RunRoot runs one BFS from root and returns its result. Rank clocks are
// reset, so TimeNs is the iteration's virtual duration.
func (r *Runner) RunRoot(root int64) RootResult {
	if len(r.states) == 0 || r.states[0] == nil {
		panic("bfs: RunRoot before Setup")
	}
	r.W.ResetClocks()
	for _, rs := range r.states {
		rs.recycleCkpt(rs.ckptCur)
		rs.recycleCkpt(rs.ckptPrev)
		rs.ckptCur, rs.ckptPrev = nil, nil
		rs.pendingRecoveryNs = 0
		rs.pendingReownNs = 0
		if rs.inqCodec != nil {
			rs.inqCodec.ResetStats()
			rs.sumCodec.ResetStats()
		}
	}
	var faults []*mpi.FaultError
	var mttrNs float64
	err := r.W.TryRun(func(p *mpi.Proc) {
		r.states[r.posOf[p.Rank()]].runBFS(p, root)
	})
	for attempt := 0; err != nil; attempt++ {
		f, ok := err.(*mpi.FaultError)
		if !ok || f.Kind != fault.KindCrash || !r.ckptOn || attempt >= len(r.faults.Crashes) {
			// A programming bug, more failures than the plan can produce,
			// or a dead link (KindLinkLoss) — not recoverable here: a
			// crashed rank restarts from a checkpoint, but replaying past
			// a permanently exhausted link would just exhaust it again.
			panic(err)
		}
		faults = append(faults, f)
		inj := r.W.Injector()
		inj.Disarm(f.Rank, f.AtNs)
		target := r.recoveryTarget(r.posOf[f.Rank])
		// Detection: permanent deaths are observed when the dead rank's
		// last heartbeat lease expires; transient crashes keep the
		// historical flat timeout so existing plans reproduce exactly.
		var floor float64
		if f.Permanent {
			floor = inj.DetectionTimeNs(f.AtNs)
			r.W.Proc(f.Rank).Obs().FaultEvent("detect", floor)
		} else {
			floor = f.AtNs + inj.DetectTimeoutNs()
		}
		// A permanent death under a non-rerun policy removes the rank
		// from the world before the survivors resume: spare promotion
		// first (falling back to shrink when the node is out of spares),
		// else survivor repartitioning.
		if f.Permanent && r.Opts.Recovery != RecoverRerun {
			if r.Opts.Recovery != RecoverSpare || !r.promoteSpare(f.Rank, floor) {
				r.shrinkAfter(f.Rank, floor, target)
			}
		}
		var maxReown float64
		for _, rs := range r.states {
			if rs.pendingReownNs > maxReown {
				maxReown = rs.pendingReownNs
			}
		}
		mttrNs += (floor - f.AtNs) + maxReown
		r.W.PrepareRecovery()
		err = r.W.TryRun(func(p *mpi.Proc) {
			rs := r.states[r.posOf[p.Rank()]]
			if st := rs.restoreCheckpoint(p, target, floor); st != nil {
				rs.levelLoop(p, st)
			} else {
				// Crash predates the first checkpoint: rerun the
				// iteration from the root (clocks stay past the crash).
				rs.runBFS(p, root)
			}
		})
	}
	res := RootResult{
		Root: root, TimeNs: r.W.MaxClock(), Faults: faults,
		MTTRNs: mttrNs, Epoch: r.W.Epoch(),
	}
	var bd trace.Breakdown
	for _, rs := range r.states {
		res.TraversedEdges += rs.visitedEdges
		res.Visited += rs.visitedCount
		bd.Merge(rs.bd)
		if rs.levels > res.Levels {
			res.Levels = rs.levels
		}
	}
	res.TraversedEdges /= 2 // each undirected edge counted at both endpoints
	bd.Scale(1 / float64(len(r.states)))
	bd.TDLevels = r.states[0].bd.TDLevels
	bd.BULevels = r.states[0].bd.BULevels
	bd.BUCommCount = r.states[0].bd.BUCommCount
	res.Breakdown = bd
	res.LevelStats = append([]trace.LevelStat(nil), r.states[0].levelStats...)
	vol := r.W.Net().Volume()
	res.CommBytes = vol.IntraBytes + vol.InterBytes
	res.RawCommBytes = vol.RawIntraBytes + vol.RawInterBytes
	res.Xport = vol.Xport
	for _, rs := range r.states {
		if rs.inqCodec != nil {
			res.Wire.Add(rs.inqCodec.Stats())
			res.Wire.Add(rs.sumCodec.Stats())
		}
	}
	if res.TimeNs > 0 {
		res.TEPS = float64(res.TraversedEdges) / (res.TimeNs / 1e9)
	}
	return res
}
