package bfs

import (
	"fmt"

	"numabfs/internal/collective"
	"numabfs/internal/graph"
	"numabfs/internal/obs"
)

// This file is the degraded-mode completion layer: what happens after a
// rank dies permanently (fault.Crash with Permanent set) and the job
// must finish without it. Two surgeries, selected by Options.Recovery
// and performed between TryRun attempts when no rank goroutine is live:
//
//   - shrinkAfter (RecoverShrink): the dead rank's partition position is
//     removed. A contiguous survivor re-owns its vertex range — the
//     predecessor absorbs, or the successor when position 0 dies — by
//     merging adjacency (MergeCSR; the re-fetch is priced through the
//     node-scratch / kernel-1 path) and the recovery-target checkpoint
//     generation. Layouts, groups and every state's layout-derived
//     scratch are rebuilt over the survivors and the world shrinks to a
//     new epoch.
//   - promoteSpare (RecoverSpare): a parked same-node hot spare
//     (Options.SpareRanks) takes over the dead rank's exact slot. The
//     partition map and all layouts stay; only the member list and the
//     groups re-bind. Falls back to shrinkAfter when the node's spares
//     are exhausted.
//
// Both rely on the checkpoint-survival story: level-boundary snapshots
// live in node-local scratch that outlives the process (the standard
// diskless-checkpointing arrangement), so a same-node spare adopts them
// at shared-memory bandwidth and a remote absorber pulls them over one
// NIC stream. The modelled transfer cost is parked in pendingReownNs
// and charged to the Reown phase by the restore path.

// ckptAt returns the generation saved at `level`, or nil.
func (rs *rankState) ckptAt(level int) *checkpoint {
	if rs.ckptCur != nil && rs.ckptCur.level == level {
		return rs.ckptCur
	}
	if rs.ckptPrev != nil && rs.ckptPrev.level == level {
		return rs.ckptPrev
	}
	return nil
}

// reownCostNs prices pulling `bytes` of a dead rank's node-scratch state
// to dstNode: shared-memory copy bandwidth on the same node, one NIC
// stream plus the inter-node latency across nodes.
func (r *Runner) reownCostNs(bytes int64, srcNode, dstNode int) float64 {
	if srcNode == dstNode {
		return float64(bytes) / r.cfg.ShmCopyBW
	}
	return r.cfg.InterNodeAlphaNs + float64(bytes)/r.cfg.PerStreamBW
}

// nodeOf returns the physical node of a world rank.
func (r *Runner) nodeOf(rank int) int { return rank / r.W.ProcsPerNode() }

// shrinkAfter removes the permanently dead rank from the job: the
// partition loses its position, a contiguous survivor absorbs its
// vertex range (adjacency and recovery-target checkpoint state), and
// world membership, groups and layouts are rebuilt over the survivors.
// target is the recovery generation (recoveryTarget, computed before
// the surgery); target < 0 means the iteration reruns from the root and
// only the adjacency moves. Call between runs only.
func (r *Runner) shrinkAfter(deadRank int, floor float64, target int) {
	if len(r.members) < 2 {
		panic(fmt.Sprintf("bfs: cannot shrink away rank %d, the last member", deadRank))
	}
	deadPos := r.posOf[deadRank]
	deadNode := r.nodeOf(deadRank)
	ds := r.states[deadPos]

	// The dead node's leader before the surgery, for the shared-bitmap
	// snapshot handoff below.
	oldLeader := -1
	for _, m := range r.members {
		if r.nodeOf(m) == deadNode {
			oldLeader = m
			break
		}
	}

	newPart, absPos := r.Part.RemoveRank(deadPos)
	r.members = append(r.members[:deadPos], r.members[deadPos+1:]...)
	r.states = append(r.states[:deadPos], r.states[deadPos+1:]...)
	r.posOf[deadRank] = -1
	for pos, rank := range r.members {
		r.posOf[rank] = pos
	}
	for pos, rs := range r.states {
		rs.pos = pos
	}
	r.Part = newPart

	as := r.states[absPos]
	absRank := r.members[absPos]

	// Re-own the adjacency: the dead range's CSR is concatenated onto
	// the absorber's (position 0 dying means the successor absorbs and
	// the dead range comes first).
	reownBytes := ds.csr.BytesApprox()
	if deadPos == 0 {
		as.csr = graph.MergeCSR(ds.csr, as.csr)
	} else {
		as.csr = graph.MergeCSR(as.csr, ds.csr)
	}
	as.parent = make([]int64, as.csr.NumLocal())

	if target >= 0 {
		dck := ds.ckptAt(target)
		ack := as.ckptAt(target)
		if dck == nil || ack == nil {
			panic(fmt.Sprintf("bfs: shrink after rank %d lacks generation %d", deadRank, target))
		}
		// Merge the dead range's recovery state in position order. The
		// in_queue/summary snapshots are full (replicated) bitmaps, so the
		// absorber's own snapshot already covers the dead range below the
		// sharing levels; nothing to merge there.
		if deadPos == 0 {
			merged := make([]int64, 0, len(dck.parent)+len(ack.parent))
			ack.parent = append(append(merged, dck.parent...), ack.parent...)
		} else {
			ack.parent = append(ack.parent, dck.parent...)
		}
		ack.queue = append(ack.queue, dck.queue...)
		ack.visitedCount += dck.visitedCount
		ack.visitedEdges += dck.visitedEdges
		reownBytes += dck.bytes()

		// At the sharing levels only node leaders snapshot the shared
		// bitmaps. If the dead rank led its node, the node's new leader
		// inherits the node-scratch snapshot (a node losing its last rank
		// needs no handoff — every node's snapshot holds the same full
		// bitmap).
		if oldLeader == deadRank {
			var nl *rankState
			for _, rank := range r.members {
				if r.nodeOf(rank) == deadNode {
					nl = r.states[r.posOf[rank]]
					break
				}
			}
			if nl != nil {
				nlck := nl.ckptAt(target)
				if nlck != nil {
					var handoff int64
					if len(dck.inq) > 0 && len(nlck.inq) == 0 {
						nlck.inq = append(nlck.inq[:0], dck.inq...)
						handoff += int64(len(dck.inq)) * 8
					}
					if len(dck.sum) > 0 && len(nlck.sum) == 0 {
						nlck.sum = append(nlck.sum[:0], dck.sum...)
						handoff += int64(len(dck.sum)) * 8
					}
					nl.pendingReownNs += r.reownCostNs(handoff, deadNode, deadNode)
				}
			}
		}
	}
	as.pendingReownNs += r.reownCostNs(reownBytes, deadNode, r.nodeOf(absRank))

	r.refreshLayouts()
	r.W.Shrink([]int{deadRank})

	r.W.Proc(absRank).Obs().FaultEvent("shrink", floor)
	r.W.Proc(r.members[0]).Obs().GaugeSet(obs.GaugeLiveRanks, floor, float64(len(r.members)))
}

// promoteSpare swaps a parked same-node hot spare into the dead rank's
// partition slot. The state (CSR, checkpoints, bitmaps) stays bound to
// the slot; the spare adopts it out of node scratch at shared-memory
// bandwidth. Reports false — caller falls back to shrinkAfter — when the
// node has no spare left. Call between runs only.
func (r *Runner) promoteSpare(deadRank int, floor float64) bool {
	node := r.nodeOf(deadRank)
	if len(r.nodeSpares[node]) == 0 {
		return false
	}
	spare := r.nodeSpares[node][0]
	r.nodeSpares[node] = r.nodeSpares[node][1:]
	deadPos := r.posOf[deadRank]
	r.W.Promote(spare, deadRank)
	r.members[deadPos] = spare
	r.posOf[deadRank] = -1
	r.posOf[spare] = deadPos
	r.AllGroup = collective.NewGroup(r.W, r.members)
	r.NC = collective.NewNodeCommRanks(r.W, r.members)

	// The spare re-binds the slot's state wholesale; the partition map
	// and every layout are untouched, so no other state changes.
	rs := r.states[deadPos]
	bytes := rs.csr.BytesApprox()
	if rs.ckptCur != nil {
		bytes += rs.ckptCur.bytes()
	}
	if rs.ckptPrev != nil {
		bytes += rs.ckptPrev.bytes()
	}
	rs.pendingReownNs += r.reownCostNs(bytes, node, node)

	r.W.Proc(spare).Obs().FaultEvent("promote", floor)
	r.W.Proc(r.members[0]).Obs().GaugeSet(obs.GaugeLiveRanks, floor, float64(len(r.members)))
	return true
}

// refreshLayouts rebuilds the groups, the allgather layouts and every
// state's layout-derived scratch after a shrink changed the partition.
func (r *Runner) refreshLayouts() {
	active := len(r.members)
	r.AllGroup = collective.NewGroup(r.W, r.members)
	r.NC = collective.NewNodeCommRanks(r.W, r.members)
	r.wordLayout = collective.SegLayout(r.Part.WordOffsets())
	r.sumLayout = collective.EvenLayout(r.sumBytes/8, active)
	for _, rs := range r.states {
		rs.sumSeg = make([]uint64, r.sumLayout.Counts[rs.pos])
		rs.send = make([][]int64, active)
		if r.Opts.Opt >= OptOverlapAllgather {
			rs.ovBitLo, rs.ovBitHi = rs.shareBits(rs.pos)
		}
	}
}
