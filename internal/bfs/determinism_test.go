package bfs

import (
	"runtime"
	"testing"

	"numabfs/internal/machine"
	"numabfs/internal/obs"
	"numabfs/internal/rmat"
)

// TestDeterministicAcrossHostParallelism: virtual time must not depend
// on how the host schedules the rank goroutines — the core guarantee of
// the execution-driven simulator. Run the same job under different
// GOMAXPROCS settings and require bit-identical results.
func TestDeterministicAcrossHostParallelism(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	run := func() (float64, float64, int64) {
		r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, params, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		r.Setup()
		root := params.Roots(1, r.HasEdgeGlobal)[0]
		res := r.RunRoot(root)
		return res.TimeNs, res.Breakdown.Total(), res.TraversedEdges
	}

	prev := runtime.GOMAXPROCS(1)
	t1, b1, e1 := run()
	runtime.GOMAXPROCS(4)
	t4, b4, e4 := run()
	runtime.GOMAXPROCS(prev)

	if t1 != t4 || b1 != b4 || e1 != e4 {
		t.Fatalf("host parallelism leaked into results: GOMAXPROCS=1 -> (%g, %g, %d); GOMAXPROCS=4 -> (%g, %g, %d)",
			t1, b1, e1, t4, b4, e4)
	}
}

// TestDeterministicWithTracing extends the guarantee to observability:
// recording must neither perturb virtual time nor itself depend on host
// scheduling — the exported trace bytes are part of the deterministic
// output.
func TestDeterministicWithTracing(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	run := func() (float64, float64, []byte) {
		r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, params, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.NewRecorder()
		r.AttachObs(rec.NewSession("determinism"))
		r.Setup()
		root := params.Roots(1, r.HasEdgeGlobal)[0]
		res := r.RunRoot(root)
		data, err := rec.ChromeTraceJSON()
		if err != nil {
			t.Fatal(err)
		}
		return res.TimeNs, res.Breakdown.Total(), data
	}

	prev := runtime.GOMAXPROCS(1)
	t1, b1, d1 := run()
	runtime.GOMAXPROCS(4)
	t4, b4, d4 := run()
	runtime.GOMAXPROCS(prev)

	if t1 != t4 || b1 != b4 {
		t.Fatalf("results differ under tracing: (%g, %g) vs (%g, %g)", t1, b1, t4, b4)
	}
	if string(d1) != string(d4) {
		t.Fatal("trace bytes depend on host parallelism")
	}

	// And tracing must not change the numbers relative to an untraced run.
	r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, params, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	root := params.Roots(1, r.HasEdgeGlobal)[0]
	res := r.RunRoot(root)
	if res.TimeNs != t1 || res.Breakdown.Total() != b1 {
		t.Fatalf("tracing changed results: untraced (%g, %g) vs traced (%g, %g)",
			res.TimeNs, res.Breakdown.Total(), t1, b1)
	}
}
