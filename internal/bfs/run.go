package bfs

import (
	"numabfs/internal/mpi"
	"numabfs/internal/obs"
	"numabfs/internal/trace"
)

// runBFS executes one BFS iteration on this rank. All ranks execute the
// same level sequence in lockstep; every control decision (mode switch,
// termination) is derived from allreduced values, so the collective call
// pattern is identical across ranks by construction.
func (rs *rankState) runBFS(p *mpi.Proc, root int64) {
	rs.levelLoop(p, rs.initRoot(p, root))
}

// initRoot resets per-root state, seeds the root frontier and performs
// the initial allreduce and mode setup, returning the loop state the
// level loop starts from. Under an active crash plan the post-setup
// state is also checkpointed, so a crash in the first level need not
// repeat the initial conversion.
func (rs *rankState) initRoot(p *mpi.Proc, root int64) *loopState {
	r := rs.r
	rs.reset()
	rs.rec = p.Obs()
	if rs.pendingRecoveryNs > 0 {
		// Full-rerun crash recovery: attribute the detection-timeout
		// floor the clocks restarted from (restoreCheckpoint parked it
		// because reset just wiped bd).
		rs.bd.Add(trace.Recovery, rs.pendingRecoveryNs)
		rs.pendingRecoveryNs = 0
	}
	if rs.pendingReownNs > 0 {
		// Survivor repartitioning before the first checkpoint: the re-own
		// cost was parked by the shrink/promotion surgery.
		rs.bd.Add(trace.Reown, rs.pendingReownNs)
		rs.pendingReownNs = 0
	}

	lo := rs.csr.Lo
	nfLocal, mfLocal := int64(0), int64(0)
	if r.Part.Owner(root) == rs.pos {
		rs.parent[root-lo] = root
		rs.next = append(rs.next, root)
		rs.visitedCount = 1
		rs.visitedEdges = rs.csr.Degree(root)
		nfLocal, mfLocal = 1, rs.visitedEdges
	}
	// The initial frontier's size/edges (known to all via allreduce; the
	// reference code knows them implicitly, we pay two scalar messages).
	t0, x0 := p.Clock(), p.XportNs()
	nf := r.AllGroup.AllreduceSumInt64(p, nfLocal)
	mf := r.AllGroup.AllreduceSumInt64(p, mfLocal)
	rs.chargeComm(p, trace.TDComm, t0, x0)

	st := &loopState{
		bottomUp:           r.Opts.Mode == ModeBottomUp,
		nf:                 nf,
		mf:                 mf,
		visitedEdgesGlobal: mf,
		prevNf:             nf,
	}
	if st.bottomUp {
		// Pure bottom-up starts by converting the root frontier.
		rs.switchToBottomUp(p)
	} else {
		rs.promoteNext()
	}
	rs.saveCheckpoint(p, st)
	return st
}

// levelLoop runs the lockstep level loop from st until the frontier
// empties. Crash recovery re-enters here with a restored loop state.
func (rs *rankState) levelLoop(p *mpi.Proc, st *loopState) {
	r := rs.r
	for st.nf > 0 {
		rs.levels++
		levelStart := p.Clock()
		var dnf, dmf int64
		if st.bottomUp {
			dnf, dmf = rs.bottomUpLevel(p)
			rs.bd.BULevels++
		} else {
			dnf, dmf = rs.topDownLevel(p)
			rs.bd.TDLevels++
		}
		st.nf, st.mf = dnf, dmf
		st.visitedEdgesGlobal += dmf
		rs.levelStats = append(rs.levelStats, trace.LevelStat{
			Level: rs.levels, BottomUp: st.bottomUp, NF: st.nf, MF: st.mf,
			Ns: p.Clock() - levelStart,
		})
		rs.rec.LevelSpan(st.bottomUp, rs.levels, levelStart, p.Clock())
		rs.rec.GaugeSet(obs.GaugeFrontier, p.Clock(), float64(st.nf))
		rs.rec.GaugeSet(obs.GaugeFrontierDensity, p.Clock(),
			float64(st.nf)/float64(r.Params.NumVertices()))
		if st.nf == 0 {
			break
		}
		switch {
		case r.Opts.Mode != ModeHybrid:
			// Pure bottom-up: the new frontier is already in in_queue.
			if !st.bottomUp {
				rs.promoteNext()
			}
		case !st.bottomUp:
			// Hybrid switching, Beamer-style. Top-down only hands over
			// to bottom-up while the frontier is still growing — in the
			// final shrinking levels the unexplored-edge count is tiny
			// and the threshold would otherwise flap back and forth.
			unexplored := r.totalEdges - st.visitedEdgesGlobal
			if st.nf > st.prevNf && float64(st.mf) > float64(unexplored)/r.Opts.Alpha {
				rs.switchToBottomUp(p)
				st.bottomUp = true
			} else {
				rs.promoteNext()
			}
		case float64(st.nf) < float64(r.Params.NumVertices())/r.Opts.Beta:
			rs.switchToTopDown(p)
			st.bottomUp = false
		}
		st.prevNf = st.nf
		rs.saveCheckpoint(p, st)
	}
}

// reset clears per-root state. Bitmaps need no clearing: in_queue and the
// summary are fully overwritten by the first allgather, and the owned
// out_queue segment is cleared at the start of every bottom-up level.
func (rs *rankState) reset() {
	for i := range rs.parent {
		rs.parent[i] = -1
	}
	rs.queue = rs.queue[:0]
	rs.next = rs.next[:0]
	rs.visitedEdges = 0
	rs.visitedCount = 0
	rs.bd = trace.Breakdown{}
	rs.levels = 0
	rs.levelStats = rs.levelStats[:0]
}

// promoteNext makes the freshly discovered frontier current (top-down).
func (rs *rankState) promoteNext() {
	rs.queue, rs.next = rs.next, rs.queue[:0]
}

// stallBarrier separates computation from communication the way the
// paper's profiling does: the wait at the barrier is load-imbalance stall
// (Fig. 11), the dissemination rounds themselves are communication.
func (rs *rankState) stallBarrier(p *mpi.Proc, comm trace.Phase) {
	t0 := p.Clock()
	wait := p.Barrier()
	rs.bd.Add(trace.Stall, wait)
	rs.bd.Add(comm, p.Clock()-t0-wait)
	rs.rec.PhaseSpan(trace.Stall, rs.levels, t0, t0+wait)
	rs.rec.PhaseSpan(comm, rs.levels, t0+wait, p.Clock())
}

// charge adds the [start, end) interval to phase ph and, when tracing
// is on, records it as a span at the current level. The breakdown is
// charged end-start exactly as the untraced accumulator was, so results
// are bit-identical either way.
func (rs *rankState) charge(ph trace.Phase, start, end float64) {
	rs.bd.Add(ph, end-start)
	rs.rec.PhaseSpan(ph, rs.levels, start, end)
}

// chargeComm is charge for a communication section: the reliable
// transport's stall accrued inside it (retransmission waits,
// resequencer holds, ack round-trips) is carved into trace.Xport, so
// lossy-link protocol time never masquerades as algorithmic
// communication in the breakdown. x0 is p.XportNs() sampled at the
// section start; with no loss plan the delta is exactly 0.0 and the
// charge is bit-identical to charge().
func (rs *rankState) chargeComm(p *mpi.Proc, ph trace.Phase, t0, x0 float64) {
	end := p.Clock()
	dx := p.XportNs() - x0
	rs.bd.Add(trace.Xport, dx)
	rs.bd.Add(ph, end-t0-dx)
	rs.rec.PhaseSpan(ph, rs.levels, t0, end)
}
