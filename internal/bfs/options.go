// Package bfs implements the paper's hybrid top-down / bottom-up BFS for
// distributed-memory NUMA clusters (after Beamer et al. and the Graph500
// reference code), together with every optimization level of Fig. 9:
//
//   - OptOriginal: the baseline — private in_queue/out_queue bitmaps per
//     rank, communication through the MPI library's default allgather
//     (recursive doubling / ring by size).
//   - OptShareInQueue: one in_queue (and in_queue_summary) mapping per
//     node shared by its ranks; leader-based allgather without the
//     broadcast step (Fig. 5b, step 3 eliminated).
//   - OptShareAll: out_queue and out_queue_summary shared too, so the
//     leader reads children's segments directly — the gather step also
//     disappears (Fig. 5b, step 1 eliminated).
//   - OptParAllgather: the inter-node allgather is split over per-socket
//     subgroups running concurrently so all NIC streams are used
//     (Fig. 7, Eq. 2).
//
// The summary-bitmap granularity (Section III.C, Fig. 16) and the
// process placement policy (Fig. 10) are orthogonal options.
package bfs

import (
	"fmt"

	"numabfs/internal/wire"
)

// Opt is an optimization level, cumulative in the order of Fig. 9.
type Opt int

const (
	// OptOriginal is the unmodified hybrid BFS.
	OptOriginal Opt = iota
	// OptShareInQueue shares in_queue and in_queue_summary per node.
	OptShareInQueue
	// OptShareAll also shares out_queue and out_queue_summary.
	OptShareAll
	// OptParAllgather additionally parallelizes the inter-node allgather.
	OptParAllgather
	// OptCompressedAllgather additionally sends each allgather segment in
	// an adaptively chosen wire format (dense, sparse index list, or
	// run-length) picked per segment from its measured density, with the
	// encode/decode CPU time charged through the machine cost model
	// (frontier compression after Romera and Buluç & Madduri).
	OptCompressedAllgather
	// OptOverlapAllgather additionally pipelines the compressed parallel
	// allgather: each rank's in_queue segment travels in
	// Options.OverlapSegments chunks through nonblocking sends, and the
	// summary-share rebuild of a chunk runs the moment it lands while
	// later chunks are still in flight — communication/computation
	// overlap after Buluç & Madduri.
	OptOverlapAllgather
)

// String implements fmt.Stringer using the paper's labels.
func (o Opt) String() string {
	switch o {
	case OptOriginal:
		return "Original"
	case OptShareInQueue:
		return "Share in_queue"
	case OptShareAll:
		return "Share all"
	case OptParAllgather:
		return "Par allgather"
	case OptCompressedAllgather:
		return "Compressed allgather"
	case OptOverlapAllgather:
		return "Overlap allgather"
	default:
		return fmt.Sprintf("Opt(%d)", int(o))
	}
}

// Mode selects the traversal algorithm; the paper's intro compares the
// hybrid against pure top-down and pure bottom-up on one 64-core node.
type Mode int

const (
	// ModeHybrid switches between top-down and bottom-up by frontier
	// size, Beamer-style.
	ModeHybrid Mode = iota
	// ModeTopDown always explores from the frontier (mpi_simple-like).
	ModeTopDown
	// ModeBottomUp always scans unvisited vertices (mpi_replicated-like).
	ModeBottomUp
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeHybrid:
		return "hybrid"
	case ModeTopDown:
		return "top-down"
	case ModeBottomUp:
		return "bottom-up"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Recovery selects how RunRoot completes an iteration after a rank dies
// permanently (fault.Crash with Permanent set). Transient crashes always
// restart the rank in place and are unaffected by the policy.
type Recovery int

const (
	// RecoverRerun restarts the crashed rank's process in place from the
	// last stable checkpoint — the historical behavior, and the only
	// sound choice when the rank's node is still healthy.
	RecoverRerun Recovery = iota
	// RecoverShrink removes the dead rank from the world: a contiguous
	// survivor re-owns its vertex range (partition merge + adjacency
	// re-fetch through the kernel-1 cache) and the job finishes on the
	// shrunken membership.
	RecoverShrink
	// RecoverSpare promotes a parked hot spare on the dead rank's node
	// into its exact partition slot (Options.SpareRanks reserves them);
	// the partition map and every collective shape stay unchanged. Falls
	// back to RecoverShrink when the node's spares are exhausted.
	RecoverSpare
)

// String implements fmt.Stringer.
func (rc Recovery) String() string {
	switch rc {
	case RecoverRerun:
		return "rerun"
	case RecoverShrink:
		return "shrink"
	case RecoverSpare:
		return "spare"
	default:
		return fmt.Sprintf("Recovery(%d)", int(rc))
	}
}

// Options configures one BFS engine.
type Options struct {
	Opt  Opt
	Mode Mode
	// Granularity is the number of in_queue bits one summary bit covers
	// (Graph500 reference: 64; the paper's best: 256).
	Granularity int64
	// Alpha is the top-down -> bottom-up switch threshold: switch when
	// frontier edges exceed unexplored edges / Alpha. Beamer's published
	// value is 14; the default here is 30, which at laptop scales fires
	// the switch at the same point of the frontier's growth curve as the
	// paper observes at scale 28-32 — one level earlier, entering the
	// bottom-up procedure while in_queue is still sparse, the regime in
	// which in_queue_summary is worth its keep (Section III.C).
	Alpha float64
	// Beta is the bottom-up -> top-down threshold: switch back when the
	// frontier shrinks below vertices / Beta (Beamer's 24).
	Beta float64
	// Dedup removes duplicate adjacencies during construction.
	Dedup bool
	// Chunk is the OpenMP dynamic-schedule chunk size in vertices.
	Chunk int64
	// WireFormat pins the OptCompressedAllgather codec to one wire
	// format; the zero value (wire.FormatAuto) enables the adaptive
	// per-segment selector. Ignored below OptCompressedAllgather.
	WireFormat wire.Format
	// WireSparseDensity, when > 0, replaces the analytic size-based
	// selector with a classic density threshold (Buluç & Madduri):
	// sparse below the threshold, dense at or above it. The ablation
	// knob of experiments.AblationCompression.
	WireSparseDensity float64
	// OverlapSegments is the pipeline chunk count per rank segment at
	// OptOverlapAllgather (0 selects the default of 2; capped at 256 by
	// the collective's tag space). More chunks hide more of each
	// transfer behind scanning but pay more per-message latency — the
	// knob of experiments.AblationOverlap. Ignored below
	// OptOverlapAllgather.
	OverlapSegments int
	// Recovery is the permanent-crash completion policy (rerun, shrink,
	// or hot-spare promotion). Transient crashes ignore it.
	Recovery Recovery
	// SpareRanks parks the last SpareRanks ranks of every node as hot
	// spares: they are excluded from the partition and every collective,
	// idle until a permanent crash promotes one into the dead rank's
	// slot. Each node must keep at least one active rank.
	SpareRanks int
}

// DefaultOptions returns the reference-code defaults.
func DefaultOptions() Options {
	return Options{
		Opt:         OptOriginal,
		Mode:        ModeHybrid,
		Granularity: 64,
		Alpha:       30,
		Beta:        24,
		Dedup:       true,
		Chunk:       1024,
	}
}

// Validate reports an option error, or nil.
func (o Options) Validate() error {
	if o.Granularity <= 0 || o.Granularity%64 != 0 {
		return fmt.Errorf("bfs: granularity %d must be a positive multiple of 64", o.Granularity)
	}
	if o.Alpha <= 0 || o.Beta <= 0 {
		return fmt.Errorf("bfs: alpha/beta must be positive")
	}
	if o.Chunk <= 0 {
		return fmt.Errorf("bfs: chunk %d must be positive", o.Chunk)
	}
	if o.Opt < OptOriginal || o.Opt > OptOverlapAllgather {
		return fmt.Errorf("bfs: unknown optimization level %d", int(o.Opt))
	}
	if o.OverlapSegments < 0 || o.OverlapSegments > 256 {
		return fmt.Errorf("bfs: overlap segments %d outside [0, 256]", o.OverlapSegments)
	}
	if o.WireFormat >= wire.FormatList {
		return fmt.Errorf("bfs: wire format %d is not a bitmap format", int(o.WireFormat))
	}
	if o.WireSparseDensity < 0 || o.WireSparseDensity > 1 {
		return fmt.Errorf("bfs: sparse-density threshold %g outside [0, 1]", o.WireSparseDensity)
	}
	if o.Recovery < RecoverRerun || o.Recovery > RecoverSpare {
		return fmt.Errorf("bfs: unknown recovery policy %d", int(o.Recovery))
	}
	if o.SpareRanks < 0 {
		return fmt.Errorf("bfs: spare ranks %d must be non-negative", o.SpareRanks)
	}
	return nil
}
