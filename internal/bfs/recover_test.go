package bfs

// Acceptance tests for degraded-mode completion: a permanent rank death
// mid-iteration finishes on the survivors — by shrinking the partition
// onto a contiguous absorber or by promoting a parked hot spare — with
// the same traversed component and level structure as the clean run,
// bit-identically across repeats and host core counts, at every
// optimization level. The rerun policy must keep reproducing the
// transient-crash behavior exactly.

import (
	"fmt"
	"runtime"
	"testing"

	"numabfs/internal/fault"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
	"numabfs/internal/trace"
)

// permanentPlan schedules one permanent death of rank at the given
// virtual time.
func permanentPlan(rank int, atNs float64) fault.Plan {
	return fault.Plan{Crashes: []fault.Crash{{Rank: rank, AtNs: atNs, Permanent: true}}}
}

// runRecovery builds a runner with the given recovery options, injects
// the plan, and runs one root.
func runRecovery(t *testing.T, opts Options, plan fault.Plan, scale int) (*Runner, RootResult) {
	t.Helper()
	params := rmat.Graph500(scale)
	r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	if err := r.InjectFaults(plan); err != nil {
		t.Fatal(err)
	}
	root := params.Roots(1, r.HasEdgeGlobal)[0]
	return r, r.RunRoot(root)
}

// TestShrinkCompletesEveryOptLevel: one permanent mid-run death under
// RecoverShrink must complete at every optimization level with the same
// component and level structure as the clean run, a stepped epoch, and
// the re-own cost visible in MTTR and the Reown phase.
func TestShrinkCompletesEveryOptLevel(t *testing.T) {
	const scale = 12
	for opt := OptOriginal; opt <= OptOverlapAllgather; opt++ {
		opt := opt
		t.Run(opt.String(), func(t *testing.T) {
			opts := DefaultOptions()
			opts.Opt = opt
			base, cleanRes := runRecovery(t, opts, fault.Plan{}, scale)

			opts.Recovery = RecoverShrink
			r, res := runRecovery(t, opts, permanentPlan(2, 0.5*cleanRes.TimeNs), scale)

			if len(res.Faults) != 1 || !res.Faults[0].Permanent {
				t.Fatalf("Faults = %+v, want one permanent crash", res.Faults)
			}
			if res.Epoch != 1 {
				t.Fatalf("epoch %d after one shrink, want 1", res.Epoch)
			}
			if got := len(r.ParentArrays()); got != 7 {
				t.Fatalf("%d members after shrinking one of 8", got)
			}
			if res.Visited != cleanRes.Visited || res.TraversedEdges != cleanRes.TraversedEdges {
				t.Fatalf("traversal differs: %d/%d vs clean %d/%d",
					res.Visited, res.TraversedEdges, cleanRes.Visited, cleanRes.TraversedEdges)
			}
			if res.MTTRNs <= 0 {
				t.Errorf("MTTRNs = %g, want > 0", res.MTTRNs)
			}
			if res.Breakdown.Ns[trace.Reown] <= 0 {
				t.Errorf("no Reown time in breakdown")
			}
			// The shrunken run may pick different (valid) parents, but the
			// BFS level of every vertex is parent-independent.
			lv, lvBase := levelsOf(r, res.Root), levelsOf(base, cleanRes.Root)
			for v := range lv {
				if lv[v] != lvBase[v] {
					t.Fatalf("vertex %d at level %d, clean run has %d", v, lv[v], lvBase[v])
				}
			}
		})
	}
}

// TestSpareCompletesEveryOptLevel: with hot spares parked, a permanent
// death promotes a same-node spare into the exact slot — the partition
// is unchanged, so the parent tree must be bit-identical to the clean
// spares run at every optimization level.
func TestSpareCompletesEveryOptLevel(t *testing.T) {
	const scale = 12
	for opt := OptOriginal; opt <= OptOverlapAllgather; opt++ {
		opt := opt
		t.Run(opt.String(), func(t *testing.T) {
			opts := DefaultOptions()
			opts.Opt = opt
			opts.SpareRanks = 1
			base, cleanRes := runRecovery(t, opts, fault.Plan{}, scale)
			if got := len(base.ParentArrays()); got != 6 {
				t.Fatalf("%d active members with 1 spare per node on 2x4 ranks, want 6", got)
			}

			opts.Recovery = RecoverSpare
			r, res := runRecovery(t, opts, permanentPlan(1, 0.5*cleanRes.TimeNs), scale)

			if len(res.Faults) != 1 || !res.Faults[0].Permanent {
				t.Fatalf("Faults = %+v, want one permanent crash", res.Faults)
			}
			if res.Epoch != 1 {
				t.Fatalf("epoch %d after one promotion, want 1", res.Epoch)
			}
			if got := len(r.ParentArrays()); got != 6 {
				t.Fatalf("%d members after promotion, want 6 (slot survives)", got)
			}
			if res.Visited != cleanRes.Visited || res.TraversedEdges != cleanRes.TraversedEdges {
				t.Fatalf("traversal differs: %d/%d vs clean %d/%d",
					res.Visited, res.TraversedEdges, cleanRes.Visited, cleanRes.TraversedEdges)
			}
			if res.MTTRNs <= 0 {
				t.Errorf("MTTRNs = %g, want > 0", res.MTTRNs)
			}
			basePA := base.ParentArrays()
			for pos, pa := range r.ParentArrays() {
				for v, p := range pa {
					if p != basePA[pos][v] {
						t.Fatalf("parent tree differs at position %d vertex %d: %d vs %d",
							pos, v, p, basePA[pos][v])
					}
				}
			}
		})
	}
}

// TestSpareExhaustionFallsBackToShrink: RecoverSpare on a node with no
// spare left must shrink instead of failing.
func TestSpareExhaustionFallsBackToShrink(t *testing.T) {
	const scale = 12
	opts := DefaultOptions()
	opts.Recovery = RecoverSpare // SpareRanks = 0: nothing parked
	_, clean := runRecovery(t, DefaultOptions(), fault.Plan{}, scale)
	r, res := runRecovery(t, opts, permanentPlan(2, 0.5*clean.TimeNs), scale)
	if res.Epoch != 1 || len(r.ParentArrays()) != 7 {
		t.Fatalf("epoch %d, %d members: expected a shrink fallback", res.Epoch, len(r.ParentArrays()))
	}
	if res.Visited != clean.Visited {
		t.Fatalf("visited %d vs clean %d", res.Visited, clean.Visited)
	}
}

// TestDegradedRunsDeterministic: shrink and spare recoveries must be
// bit-identical across repeats and host core counts — the same
// determinism contract the clean simulator gives.
func TestDegradedRunsDeterministic(t *testing.T) {
	const scale = 12
	_, clean := runRecovery(t, DefaultOptions(), fault.Plan{}, scale)
	cases := []struct {
		name string
		opts func() Options
		rank int
	}{
		{"shrink", func() Options {
			o := DefaultOptions()
			o.Opt = OptParAllgather
			o.Recovery = RecoverShrink
			return o
		}, 2},
		{"spare", func() Options {
			o := DefaultOptions()
			o.Opt = OptParAllgather
			o.Recovery = RecoverSpare
			o.SpareRanks = 1
			return o
		}, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func() string {
				r, res := runRecovery(t, tc.opts(), permanentPlan(tc.rank, 0.4*clean.TimeNs), scale)
				if len(res.Faults) != 1 {
					t.Fatal("scheduled permanent crash never fired")
				}
				return signature(r, res) + fmt.Sprintf(" mttr=%x ep=%d", res.MTTRNs, res.Epoch)
			}
			s1 := run()
			s2 := run()
			if s1 != s2 {
				t.Fatalf("repeat differs:\n1st %.160s...\n2nd %.160s...", s1, s2)
			}
			prev := runtime.GOMAXPROCS(1)
			sSerial := run()
			runtime.GOMAXPROCS(prev)
			if s1 != sSerial {
				t.Fatalf("host parallelism leaked into degraded run:\npar    %.160s...\nserial %.160s...", s1, sSerial)
			}
		})
	}
}

// TestTransientCrashIgnoresPolicy: a transient crash restarts the rank
// in place regardless of the recovery policy — bit-identical to the
// historical rerun behavior.
func TestTransientCrashIgnoresPolicy(t *testing.T) {
	const scale = 12
	_, clean := runRecovery(t, DefaultOptions(), fault.Plan{}, scale)
	plan := fault.Plan{Crashes: []fault.Crash{{Rank: 2, AtNs: 0.5 * clean.TimeNs}}}

	rRerun, resRerun := runRecovery(t, DefaultOptions(), plan, scale)
	optsShrink := DefaultOptions()
	optsShrink.Recovery = RecoverShrink
	rShrink, resShrink := runRecovery(t, optsShrink, plan, scale)

	if resRerun.Epoch != 0 || resShrink.Epoch != 0 {
		t.Fatalf("transient crash advanced an epoch: %d/%d", resRerun.Epoch, resShrink.Epoch)
	}
	if sr, ss := signature(rRerun, resRerun), signature(rShrink, resShrink); sr != ss {
		t.Fatalf("transient crash behavior depends on policy:\nrerun  %.160s...\nshrink %.160s...", sr, ss)
	}
}

// TestPermanentCrashBeforeFirstCheckpoint: a permanent death before any
// checkpoint exists shrinks the world and reruns the iteration from the
// root on the survivors.
func TestPermanentCrashBeforeFirstCheckpoint(t *testing.T) {
	const scale = 12
	_, clean := runRecovery(t, DefaultOptions(), fault.Plan{}, scale)
	opts := DefaultOptions()
	opts.Recovery = RecoverShrink
	r, res := runRecovery(t, opts, permanentPlan(2, 0), scale)
	if res.Epoch != 1 || len(r.ParentArrays()) != 7 {
		t.Fatalf("epoch %d, %d members: expected a shrink", res.Epoch, len(r.ParentArrays()))
	}
	if res.Visited != clean.Visited || res.TraversedEdges != clean.TraversedEdges {
		t.Fatalf("traversal differs: %d/%d vs clean %d/%d",
			res.Visited, res.TraversedEdges, clean.Visited, clean.TraversedEdges)
	}
	if res.Breakdown.Ns[trace.Recovery] <= 0 {
		t.Errorf("no Recovery time in breakdown")
	}
}

// TestShrinkSurvivesLaterRoots: after a shrink, subsequent roots run on
// the shrunken world and stay valid — the epoch does not step again.
func TestShrinkSurvivesLaterRoots(t *testing.T) {
	const scale = 12
	params := rmat.Graph500(scale)
	opts := DefaultOptions()
	opts.Recovery = RecoverShrink
	r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	_, probe := runRecovery(t, DefaultOptions(), fault.Plan{}, scale)
	if err := r.InjectFaults(permanentPlan(2, 0.5*probe.TimeNs)); err != nil {
		t.Fatal(err)
	}
	roots := params.Roots(3, r.HasEdgeGlobal)
	res0 := r.RunRoot(roots[0])
	if res0.Epoch != 1 || len(res0.Faults) != 1 {
		t.Fatalf("first root: epoch %d, faults %d", res0.Epoch, len(res0.Faults))
	}
	for _, root := range roots[1:] {
		res := r.RunRoot(root)
		if res.Epoch != 1 || len(res.Faults) != 0 {
			t.Fatalf("later root %d: epoch %d, faults %d — crash must not re-fire", root, res.Epoch, len(res.Faults))
		}
		if res.Visited <= 0 || res.TEPS <= 0 {
			t.Fatalf("later root %d did not complete: visited %d, TEPS %g", root, res.Visited, res.TEPS)
		}
	}
}
