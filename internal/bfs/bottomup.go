package bfs

import (
	"numabfs/internal/machine"
	"numabfs/internal/mpi"
	"numabfs/internal/trace"
)

// bottomUpLevel runs one bottom-up step: every unvisited owned vertex
// scans its neighbours, short-circuiting through in_queue_summary, until
// it finds a parent in the current frontier (in_queue). The new frontier
// is then allgathered — the communication phase the paper optimizes.
// Returns the allreduced size and edge sum of the next frontier.
func (rs *rankState) bottomUpLevel(p *mpi.Proc) (nf, mf int64) {
	r := rs.r
	var nfLocal, mfLocal int64

	// Clear the owned out_queue segment (a streaming memset).
	wlo := r.wordLayout.Displs[rs.pos]
	wcnt := r.wordLayout.Counts[rs.pos]
	own := rs.outQ.Words()[wlo : wlo+wcnt]
	for i := range own {
		own[i] = 0
	}
	clr := rs.team.Parallel(machine.PhaseLoad{SeqBytes: wcnt * 8, SeqLoc: rs.outLoc()})
	tc := p.Clock()
	p.Compute(clr)
	rs.bd.Add(trace.BUComp, clr)
	rs.rec.PhaseSpan(trace.BUComp, rs.levels, tc, p.Clock())

	// Computation: scan unvisited owned vertices.
	inqLoc, sumLoc := r.inqLoc(), r.sumLoc()
	res := rs.team.For(rs.csr.NumLocal(), r.Opts.Chunk, func(lo, hi int64, load *machine.PhaseLoad) {
		var edges, sumChecks, inqChecks, found int64
		for i := lo; i < hi; i++ {
			if rs.parent[i] >= 0 {
				continue
			}
			v := rs.csr.Lo + i
			for _, u := range rs.csr.Neighbors(v) {
				edges++
				sumChecks++
				if rs.inSum.CoveredZero(u) {
					continue // the summary proved in_queue[u] == 0
				}
				inqChecks++
				if rs.inQ.Get(u) {
					rs.parent[i] = u
					rs.outQ.Set(v)
					found++
					nfLocal++
					d := rs.csr.Degree(v)
					mfLocal += d
					rs.visitedCount++
					rs.visitedEdges += d
					break
				}
			}
		}
		load.Random = append(load.Random,
			machine.Access{Count: sumChecks, StructBytes: r.sumBytes, Loc: sumLoc},
			machine.Access{Count: inqChecks, StructBytes: r.inqBytes, Loc: inqLoc},
			machine.Access{Count: found, StructBytes: rs.parentBytes(), Loc: r.pl.PrivateLoc},
		)
		// Parent scan + adjacency stream.
		load.SeqBytes = (hi-lo)*8 + edges*8
		load.SeqLoc = r.pl.GraphLoc
		load.CPUOps = edges*2 + (hi - lo)
	})
	tc = p.Clock()
	p.Compute(res.Ns)
	rs.bd.Add(trace.BUComp, res.Ns)
	rs.rec.PhaseSpan(trace.BUComp, rs.levels, tc, p.Clock())

	rs.stallBarrier(p, trace.BUComm)

	// Communication: the two allgathers of Fig. 1.
	t0, x0 := p.Clock(), p.XportNs()
	rs.allgatherInQueue(p)
	rs.allgatherSummary(p)
	rs.chargeComm(p, trace.BUComm, t0, x0)
	rs.bd.BUCommCount++

	// Frontier accounting.
	t0, x0 = p.Clock(), p.XportNs()
	nf = r.AllGroup.AllreduceSumInt64(p, nfLocal)
	mf = r.AllGroup.AllreduceSumInt64(p, mfLocal)
	rs.chargeComm(p, trace.BUComm, t0, x0)
	return nf, mf
}

// outLoc is where this rank's out_queue segment lives.
func (rs *rankState) outLoc() machine.Locality {
	if rs.r.Opts.Opt >= OptShareAll {
		return rs.r.sharedLoc()
	}
	return rs.r.pl.PrivateLoc
}

// switchToBottomUp converts the queued frontier (rs.next) into the
// bitmap representation and performs the initial allgather so every rank
// starts the bottom-up procedure with a coherent in_queue. Charged to
// the Switch phase (Fig. 11).
func (rs *rankState) switchToBottomUp(p *mpi.Proc) {
	r := rs.r
	t0 := p.Clock()

	wlo := r.wordLayout.Displs[rs.pos]
	wcnt := r.wordLayout.Counts[rs.pos]
	own := rs.outQ.Words()[wlo : wlo+wcnt]
	for i := range own {
		own[i] = 0
	}
	frontier := int64(len(rs.next))
	for _, v := range rs.next {
		rs.outQ.Set(v)
	}
	rs.next = rs.next[:0]
	load := machine.PhaseLoad{
		Random:   []machine.Access{{Count: frontier, StructBytes: wcnt * 8, Loc: rs.outLoc()}},
		SeqBytes: wcnt * 8,
		SeqLoc:   rs.outLoc(),
	}
	p.Compute(rs.team.Parallel(load))

	// Synchronize before touching shared buffers, then allgather.
	p.Barrier()
	rs.allgatherInQueue(p)
	rs.allgatherSummary(p)
	rs.charge(trace.Switch, t0, p.Clock())
}

// switchToTopDown extracts the owned slice of the freshly allgathered
// in_queue into the frontier queue (parents were already set during the
// bottom-up step). Charged to the Switch phase.
func (rs *rankState) switchToTopDown(p *mpi.Proc) {
	r := rs.r
	t0 := p.Clock()
	lo, hi := r.Part.Range(rs.pos)
	rs.queue = rs.inQ.AppendSetBits(rs.queue[:0], lo, hi)
	load := machine.PhaseLoad{
		SeqBytes: (hi - lo) / 8,
		SeqLoc:   r.inqLoc(),
		CPUOps:   int64(len(rs.queue)) * 2,
	}
	p.Compute(rs.team.Parallel(load))
	rs.charge(trace.Switch, t0, p.Clock())
}
