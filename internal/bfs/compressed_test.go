package bfs

import (
	"testing"

	"numabfs/internal/rmat"
	"numabfs/internal/trace"
	"numabfs/internal/wire"

	"numabfs/internal/machine"
)

// runOpt runs one BFS root at the given level and returns the result.
func runOpt(t *testing.T, scale, nodes int, opts Options) RootResult {
	t.Helper()
	params := rmat.Graph500(scale)
	r, err := NewRunner(testConfig(scale, nodes, 4), machine.PPN8Bind, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	root := params.Roots(1, r.HasEdgeGlobal)[0]
	return r.RunRoot(root)
}

// TestCompressedAllgatherSavesBytes is the tentpole's acceptance check
// at unit scope: at 4 nodes the compressed level must traverse the
// same graph while moving fewer wire bytes than the parallelized
// allgather moves raw, with the adaptive selector actually switching
// formats across the frontier's growth curve, and the bottom-up
// communication phase must get cheaper in modelled time. Scale 16 is
// the smallest at which the in_queue segments are large enough for the
// bandwidth saving to outweigh the modelled encode/decode scans (below
// that the α latency term dominates and compression is a wash — the
// ablation experiment charts this).
func TestCompressedAllgatherSavesBytes(t *testing.T) {
	const scale, nodes = 16, 4
	opts := DefaultOptions()
	opts.Opt = OptParAllgather
	par := runOpt(t, scale, nodes, opts)
	opts.Opt = OptCompressedAllgather
	comp := runOpt(t, scale, nodes, opts)

	if comp.Visited != par.Visited || comp.TraversedEdges != par.TraversedEdges {
		t.Fatalf("compressed level changed the traversal: %+v vs %+v", comp, par)
	}
	// The logical traffic is identical — compression only changes the
	// encoding on the wire.
	if comp.RawCommBytes != par.CommBytes {
		t.Errorf("raw volume %d under compression, %d under par-allgather",
			comp.RawCommBytes, par.CommBytes)
	}
	if par.RawCommBytes != par.CommBytes {
		t.Errorf("par-allgather raw %d != wire %d; raw accounting should be a no-op below the compressed level",
			par.RawCommBytes, par.CommBytes)
	}
	if comp.CommBytes >= par.CommBytes {
		t.Errorf("compressed wire bytes %d not below par-allgather's %d", comp.CommBytes, par.CommBytes)
	}
	if comp.Breakdown.Ns[trace.BUComm] >= par.Breakdown.Ns[trace.BUComm] {
		t.Errorf("compressed BU comm %.0f ns not below par-allgather's %.0f ns",
			comp.Breakdown.Ns[trace.BUComm], par.Breakdown.Ns[trace.BUComm])
	}
	var formats int
	for f, n := range comp.Wire.Segments {
		if n > 0 && wire.Format(f) != wire.FormatList {
			formats++
		}
	}
	if formats < 2 {
		t.Errorf("adaptive selector used %d format(s) across the run: %v", formats, comp.Wire.Segments)
	}
	if comp.Wire.WireBytes >= comp.Wire.RawBytes {
		t.Errorf("codec stats: wire %d >= raw %d", comp.Wire.WireBytes, comp.Wire.RawBytes)
	}
	if par.Wire != (wire.Stats{}) {
		t.Errorf("par-allgather accumulated wire stats: %+v", par.Wire)
	}
}

// TestForcedFormatsAgree pins the ablation knobs: forcing any single
// format, or the classic density threshold, must not change the
// traversal — only the wire bytes.
func TestForcedFormatsAgree(t *testing.T) {
	const scale, nodes = 12, 2
	base := DefaultOptions()
	base.Opt = OptCompressedAllgather
	ref := runOpt(t, scale, nodes, base)

	for _, tc := range []struct {
		name string
		mod  func(*Options)
	}{
		{"force-dense", func(o *Options) { o.WireFormat = wire.FormatDense }},
		{"force-sparse", func(o *Options) { o.WireFormat = wire.FormatSparse }},
		{"force-rle", func(o *Options) { o.WireFormat = wire.FormatRLE }},
		{"density-threshold", func(o *Options) { o.WireSparseDensity = 1.0 / 64 }},
	} {
		opts := base
		tc.mod(&opts)
		res := runOpt(t, scale, nodes, opts)
		if res.Visited != ref.Visited || res.TraversedEdges != ref.TraversedEdges {
			t.Errorf("%s: traversal changed (%d/%d vs %d/%d)", tc.name,
				res.Visited, res.TraversedEdges, ref.Visited, ref.TraversedEdges)
		}
		if res.RawCommBytes != ref.RawCommBytes {
			t.Errorf("%s: raw volume %d, want %d", tc.name, res.RawCommBytes, ref.RawCommBytes)
		}
		// The adaptive selector picks the cheapest format per segment, so
		// no forced format can beat it on wire bytes.
		if res.Wire.WireBytes < ref.Wire.WireBytes {
			t.Errorf("%s: forced format beat the adaptive selector (%d < %d wire bytes)",
				tc.name, res.Wire.WireBytes, ref.Wire.WireBytes)
		}
	}
}

// TestOptionsValidateWire covers the new option errors.
func TestOptionsValidateWire(t *testing.T) {
	opts := DefaultOptions()
	opts.WireFormat = wire.FormatList
	if opts.Validate() == nil {
		t.Error("list format accepted as a bitmap wire format")
	}
	opts = DefaultOptions()
	opts.WireSparseDensity = 1.5
	if opts.Validate() == nil {
		t.Error("density threshold above 1 accepted")
	}
	opts = DefaultOptions()
	opts.Opt = OptOverlapAllgather + 1
	if opts.Validate() == nil {
		t.Error("out-of-range level accepted")
	}
}
