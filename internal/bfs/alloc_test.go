package bfs

// Allocation regression for the per-root hot path, alongside
// internal/collective/alloc_test.go: steady-state BFS iterations reuse
// the engine's scratch — frontier queues, the pipelined collective's
// forwarding slots and codec slots, and the checkpoint generations — so
// per-root allocations must not grow root over root, and checkpointing
// every level must recycle its two generations instead of allocating
// fresh snapshots.

import (
	"testing"

	"numabfs/internal/fault"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
)

// rootAllocs measures steady-state allocations of one RunRoot, with
// construction and scratch warm-up (two full iterations) excluded from
// the measured region. AllocsPerRun pins GOMAXPROCS to 1, so the count
// is stable run to run.
func rootAllocs(t *testing.T, opts Options, plan *fault.Plan) float64 {
	t.Helper()
	const scale, nodes = 12, 2
	params := rmat.Graph500(scale)
	r, err := NewRunner(testConfig(scale, nodes, 4), machine.PPN8Bind, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	if plan != nil {
		if err := r.InjectFaults(*plan); err != nil {
			t.Fatal(err)
		}
	}
	root := params.Roots(1, r.HasEdgeGlobal)[0]
	r.RunRoot(root)
	r.RunRoot(root)
	return testing.AllocsPerRun(5, func() { r.RunRoot(root) })
}

// TestRootAllocsFlatAcrossRoots: once scratch is warm, re-measuring the
// same iteration must not find more allocations — nothing per-root may
// grow with the number of roots already run, at any of the allgather
// levels including the pipelined one at several depths.
func TestRootAllocsFlatAcrossRoots(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Opt
		segs int
	}{
		{"compressed", OptCompressedAllgather, 0},
		{"overlap-segs2", OptOverlapAllgather, 2},
		{"overlap-segs8", OptOverlapAllgather, 8},
	} {
		opts := optOptions(tc.opt)
		opts.OverlapSegments = tc.segs
		first := rootAllocs(t, opts, nil)
		again := rootAllocs(t, opts, nil)
		if again > first {
			t.Errorf("%s: per-root allocations grew across roots: %g then %g", tc.name, first, again)
		}
	}
}

// TestCheckpointAllocsPooled: with an armed-but-never-firing crash plan
// the engine checkpoints at every level boundary; the two generations
// must come from the rank's pool, so the steady-state per-root count
// stays within a few allocations of the uncheckpointed run.
func TestCheckpointAllocsPooled(t *testing.T) {
	opts := optOptions(OptCompressedAllgather)
	base := rootAllocs(t, opts, nil)
	plan := fault.Plan{Crashes: []fault.Crash{{Rank: 1, AtNs: 1e18}}}
	ck := rootAllocs(t, opts, &plan)
	// Slack for the injector's per-run bookkeeping; a per-level snapshot
	// allocation would exceed it by orders of magnitude.
	const slack = 16
	if ck > base+slack {
		t.Errorf("checkpointed run allocates %g per root vs %g uncheckpointed — generations not pooled", ck, base)
	}
}
