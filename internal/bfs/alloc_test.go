package bfs

// Allocation regression for the per-root hot path, alongside
// internal/collective/alloc_test.go: steady-state BFS iterations reuse
// the engine's scratch — frontier queues, the pipelined collective's
// forwarding slots and codec slots, and the checkpoint generations — so
// per-root allocations must not grow root over root, and checkpointing
// every level must recycle its two generations instead of allocating
// fresh snapshots.

import (
	"testing"

	"numabfs/internal/fault"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
)

// rootAllocs measures steady-state allocations of one RunRoot, with
// construction and scratch warm-up (two full iterations) excluded from
// the measured region. AllocsPerRun pins GOMAXPROCS to 1, so the count
// is stable run to run.
func rootAllocs(t *testing.T, opts Options, plan *fault.Plan) float64 {
	t.Helper()
	const scale, nodes = 12, 2
	params := rmat.Graph500(scale)
	r, err := NewRunner(testConfig(scale, nodes, 4), machine.PPN8Bind, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	if plan != nil {
		if err := r.InjectFaults(*plan); err != nil {
			t.Fatal(err)
		}
	}
	root := params.Roots(1, r.HasEdgeGlobal)[0]
	r.RunRoot(root)
	r.RunRoot(root)
	return testing.AllocsPerRun(5, func() { r.RunRoot(root) })
}

// TestRootAllocsFlatAcrossRoots: once scratch is warm, re-measuring the
// same iteration must not find more allocations — nothing per-root may
// grow with the number of roots already run, at any of the allgather
// levels including the pipelined one at several depths.
func TestRootAllocsFlatAcrossRoots(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Opt
		segs int
	}{
		{"compressed", OptCompressedAllgather, 0},
		{"overlap-segs2", OptOverlapAllgather, 2},
		{"overlap-segs8", OptOverlapAllgather, 8},
	} {
		opts := optOptions(tc.opt)
		opts.OverlapSegments = tc.segs
		first := rootAllocs(t, opts, nil)
		again := rootAllocs(t, opts, nil)
		if again > first {
			t.Errorf("%s: per-root allocations grew across roots: %g then %g", tc.name, first, again)
		}
	}
}

// TestCheckpointAllocsPooled: with an armed-but-never-firing crash plan
// the engine checkpoints at every level boundary; the two generations
// must come from the rank's pool, so the steady-state per-root count
// stays within a few allocations of the uncheckpointed run.
func TestCheckpointAllocsPooled(t *testing.T) {
	opts := optOptions(OptCompressedAllgather)
	base := rootAllocs(t, opts, nil)
	plan := fault.Plan{Crashes: []fault.Crash{{Rank: 1, AtNs: 1e18}}}
	ck := rootAllocs(t, opts, &plan)
	// Slack for the injector's per-run bookkeeping; a per-level snapshot
	// allocation would exceed it by orders of magnitude.
	const slack = 16
	if ck > base+slack {
		t.Errorf("checkpointed run allocates %g per root vs %g uncheckpointed — generations not pooled", ck, base)
	}
}

// TestCheckpointPoolSurvivesTwoRecoveries: a root that recovers twice
// (two transient crashes on different ranks) must keep recycling its two
// checkpoint generations through both attempts — the pool stays bounded,
// no generation is referenced twice (a recycled-while-live snapshot
// would alias the restore), and later roots do not grow the pool.
func TestCheckpointPoolSurvivesTwoRecoveries(t *testing.T) {
	const scale, nodes = 12, 2
	opts := optOptions(OptCompressedAllgather)
	params := rmat.Graph500(scale)

	probe, err := NewRunner(testConfig(scale, nodes, 4), machine.PPN8Bind, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	probe.Setup()
	root := params.Roots(1, probe.HasEdgeGlobal)[0]
	clean := probe.RunRoot(root)

	r, err := NewRunner(testConfig(scale, nodes, 4), machine.PPN8Bind, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	plan := fault.Plan{Crashes: []fault.Crash{
		{Rank: 1, AtNs: 0.3 * clean.TimeNs},
		{Rank: 3, AtNs: 0.65 * clean.TimeNs},
	}}
	if err := r.InjectFaults(plan); err != nil {
		t.Fatal(err)
	}
	res := r.RunRoot(root)
	if len(res.Faults) != 2 {
		t.Fatalf("recovered %d times, want 2 (plan %+v)", len(res.Faults), plan.Crashes)
	}
	if res.Visited != clean.Visited || res.TraversedEdges != clean.TraversedEdges {
		t.Fatalf("twice-recovered traversal differs: %d/%d vs clean %d/%d",
			res.Visited, res.TraversedEdges, clean.Visited, clean.TraversedEdges)
	}

	countAndCheck := func(when string) []int {
		sizes := make([]int, len(r.states))
		for i, rs := range r.states {
			seen := make(map[*checkpoint]bool)
			total := 0
			for _, ck := range append([]*checkpoint{rs.ckptCur, rs.ckptPrev}, rs.ckptPool...) {
				if ck == nil {
					continue
				}
				if seen[ck] {
					t.Fatalf("%s: rank state %d holds the same generation twice", when, i)
				}
				seen[ck] = true
				total++
			}
			// Two live generations plus at most one parked recycle.
			if total > 3 {
				t.Errorf("%s: rank state %d owns %d checkpoint generations, want <= 3", when, i, total)
			}
			sizes[i] = total
		}
		return sizes
	}
	after := countAndCheck("after two recoveries")

	// Later roots (crashes disarmed, plan still armed enough to keep
	// checkpointing on) reuse the same generations: the pool must not grow.
	r.RunRoot(root)
	r.RunRoot(root)
	later := countAndCheck("after later roots")
	for i := range later {
		if later[i] > after[i] {
			t.Errorf("rank state %d grew its generation count %d -> %d across roots", i, after[i], later[i])
		}
	}
}
