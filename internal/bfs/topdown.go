package bfs

import (
	"numabfs/internal/machine"
	"numabfs/internal/mpi"
	"numabfs/internal/trace"
)

// tdChunk is the work-unit granularity (in edges) of the top-down
// phase's dynamic schedule. Frontier vertices vary in degree by orders
// of magnitude on R-MAT graphs, so the reference code's scheduler splits
// hub adjacency lists rather than assigning whole vertices.
const tdChunk = 256

// topDownLevel explores the current frontier queue: for each frontier
// vertex, every neighbour is either visited locally (owner is this rank)
// or routed to its owner as a (child, parent) pair, the mpi_simple way.
// Returns the allreduced size and edge sum of the next frontier.
func (rs *rankState) topDownLevel(p *mpi.Proc) (nf, mf int64) {
	r := rs.r
	var nfLocal, mfLocal int64

	// Computation: scan the frontier queue's adjacency lists.
	for i := range rs.send {
		rs.send[i] = rs.send[i][:0]
	}
	me := rs.pos
	var edges, localTries, remote int64
	for _, u := range rs.queue {
		for _, v := range rs.csr.Neighbors(u) {
			edges++
			if o := r.Part.Owner(v); o == me {
				localTries++
				if d, dm := rs.tryVisit(v, u); d {
					nfLocal++
					mfLocal += dm
				}
			} else {
				remote++
				rs.send[o] = append(rs.send[o], v, u)
			}
		}
	}
	load := machine.PhaseLoad{
		Random: []machine.Access{
			// Frontier rows start at random CSR positions.
			{Count: int64(len(rs.queue)), StructBytes: rs.csr.BytesApprox(), Loc: r.pl.GraphLoc},
			// Local visits probe the parent array at random offsets.
			{Count: localTries, StructBytes: rs.parentBytes(), Loc: r.pl.PrivateLoc},
		},
		SeqBytes: edges*8 + remote*16,
		SeqLoc:   r.pl.GraphLoc,
		CPUOps:   edges * 3,
	}
	ns := rs.team.ForBalanced(edges, tdChunk, load)
	tc := p.Clock()
	p.Compute(ns)
	rs.bd.Add(trace.TDComp, ns)
	rs.rec.PhaseSpan(trace.TDComp, rs.levels, tc, p.Clock())

	rs.stallBarrier(p, trace.TDComm)

	// Communication: route discovered pairs to their owners.
	t0, x0 := p.Clock(), p.XportNs()
	recv := r.AllGroup.AlltoallvInt64(p, rs.send)
	rs.chargeComm(p, trace.TDComm, t0, x0)

	// Process received pairs (charged as top-down computation: the owner
	// re-checks visitation just as the reference code does).
	var pairs int64
	for src, vec := range recv {
		if src == me {
			continue
		}
		for k := 0; k+1 < len(vec); k += 2 {
			pairs++
			if d, dm := rs.tryVisit(vec[k], vec[k+1]); d {
				nfLocal++
				mfLocal += dm
			}
		}
	}
	proc := machine.PhaseLoad{
		Random: []machine.Access{
			{Count: pairs, StructBytes: rs.parentBytes(), Loc: r.pl.PrivateLoc},
		},
		SeqBytes: pairs * 16,
		SeqLoc:   r.pl.PrivateLoc,
		CPUOps:   pairs * 2,
	}
	ns = rs.team.ForBalanced(pairs, tdChunk, proc)
	tc = p.Clock()
	p.Compute(ns)
	rs.bd.Add(trace.TDComp, ns)
	rs.rec.PhaseSpan(trace.TDComp, rs.levels, tc, p.Clock())

	// Frontier accounting for termination and the hybrid switch.
	t0, x0 = p.Clock(), p.XportNs()
	nf = r.AllGroup.AllreduceSumInt64(p, nfLocal)
	mf = r.AllGroup.AllreduceSumInt64(p, mfLocal)
	rs.chargeComm(p, trace.TDComm, t0, x0)
	return nf, mf
}

// tryVisit visits owned vertex v with parent u if unvisited; reports
// whether it was newly discovered and v's degree (the next frontier's
// edge contribution).
func (rs *rankState) tryVisit(v, u int64) (bool, int64) {
	i := v - rs.csr.Lo
	if rs.parent[i] >= 0 {
		return false, 0
	}
	rs.parent[i] = u
	rs.next = append(rs.next, v)
	rs.visitedCount++
	d := rs.csr.Degree(v)
	rs.visitedEdges += d
	return true, d
}

// parentBytes is the parent array footprint for the cache model.
func (rs *rankState) parentBytes() int64 { return rs.csr.NumLocal() * 8 }
