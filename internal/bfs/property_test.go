package bfs

import (
	"testing"
	"testing/quick"

	"numabfs/internal/machine"
	"numabfs/internal/rmat"
	"numabfs/internal/trace"
)

// TestAllVariantsAgreeOnReachabilityProperty: for random seeds, every
// optimization level visits the same vertex set and traverses the same
// edges — the optimizations change communication structure, never the
// algorithm's result.
func TestAllVariantsAgreeOnReachabilityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		const scale = 11
		params := rmat.Graph500(scale).WithSeed(seed%1000 + 1)
		var visited, edges int64
		for _, opt := range []Opt{OptOriginal, OptShareInQueue, OptShareAll, OptParAllgather, OptCompressedAllgather} {
			opts := DefaultOptions()
			opts.Opt = opt
			r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, params, opts)
			if err != nil {
				t.Fatal(err)
			}
			r.Setup()
			root := params.Roots(1, r.HasEdgeGlobal)[0]
			res := r.RunRoot(root)
			if opt == OptOriginal {
				visited, edges = res.Visited, res.TraversedEdges
				continue
			}
			if res.Visited != visited || res.TraversedEdges != edges {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestLevelStatsConsistent: the recorded per-level frontier sizes must
// sum to the visited count (minus the root) and MF to the visited edge
// degrees; levels alternate modes coherently.
func TestLevelStatsConsistent(t *testing.T) {
	const scale = 14
	params := rmat.Graph500(scale)
	r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, params, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	root := params.Roots(1, r.HasEdgeGlobal)[0]
	res := r.RunRoot(root)

	if len(res.LevelStats) == 0 {
		t.Fatal("no level stats recorded")
	}
	var nfSum int64 = 1 // the root
	for i, ls := range res.LevelStats {
		nfSum += ls.NF
		if ls.Level != i+1 {
			t.Errorf("level %d recorded as %d", i+1, ls.Level)
		}
		if ls.Ns <= 0 {
			t.Errorf("level %d has non-positive time", ls.Level)
		}
	}
	if nfSum != res.Visited {
		t.Errorf("level NF sum %d != visited %d", nfSum, res.Visited)
	}
	// Hybrid order: top-down first, then a bottom-up block, then (maybe)
	// top-down again — never bu->td->bu.
	transitions := 0
	for i := 1; i < len(res.LevelStats); i++ {
		if res.LevelStats[i].BottomUp != res.LevelStats[i-1].BottomUp {
			transitions++
		}
	}
	if transitions > 2 {
		t.Errorf("%d mode transitions; hybrid should have at most 2", transitions)
	}
}

// TestStallAndSwitchAccounted: the breakdown's phases are all
// non-negative and sum to the per-rank totals.
func TestStallAndSwitchAccounted(t *testing.T) {
	const scale = 13
	params := rmat.Graph500(scale)
	r, err := NewRunner(testConfig(scale, 2, 4), machine.PPN8Bind, params, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r.Setup()
	root := params.Roots(1, r.HasEdgeGlobal)[0]
	res := r.RunRoot(root)
	for p := trace.Phase(0); p < trace.NumPhases; p++ {
		if res.Breakdown.Ns[p] < 0 {
			t.Errorf("phase %s negative: %g", p, res.Breakdown.Ns[p])
		}
	}
	// The mean breakdown total cannot exceed the slowest rank's time and
	// must be most of it (phases cover the whole level loop).
	if tot := res.Breakdown.Total(); tot > res.TimeNs*1.001 || tot < res.TimeNs*0.5 {
		t.Errorf("breakdown total %g vs iteration time %g", tot, res.TimeNs)
	}
}

// TestCommBytesScaleWithOptLevel: sharing reduces measured communication
// volume (the gather/broadcast bytes disappear).
func TestCommBytesScaleWithOptLevel(t *testing.T) {
	const scale = 13
	params := rmat.Graph500(scale)
	get := func(opt Opt) int64 {
		opts := DefaultOptions()
		opts.Opt = opt
		r, err := NewRunner(testConfig(scale, 4, 8), machine.PPN8Bind, params, opts)
		if err != nil {
			t.Fatal(err)
		}
		r.Setup()
		root := params.Roots(1, r.HasEdgeGlobal)[0]
		return r.RunRoot(root).CommBytes
	}
	orig := get(OptOriginal)
	shareAll := get(OptShareAll)
	par := get(OptParAllgather)
	if !(shareAll < orig) {
		t.Errorf("share-all volume %d not below original %d", shareAll, orig)
	}
	if !(par < orig) {
		t.Errorf("par volume %d not below original %d", par, orig)
	}
}

// TestPolicyOrderingRegression pins the single-node policy ordering of
// Fig. 10: bind > interleave > noflag, and bind > unbound ppn=8.
func TestPolicyOrderingRegression(t *testing.T) {
	const scale = 13
	params := rmat.Graph500(scale)
	teps := map[machine.Policy]float64{}
	for _, pol := range []machine.Policy{
		machine.PPN1NoFlag, machine.PPN1Interleave, machine.PPN8NoFlag, machine.PPN8Bind,
	} {
		r, err := NewRunner(testConfig(scale, 1, 8), pol, params, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		r.Setup()
		root := params.Roots(1, r.HasEdgeGlobal)[0]
		res := r.RunRoot(root)
		teps[pol] = res.TEPS
	}
	if !(teps[machine.PPN8Bind] > teps[machine.PPN1Interleave]) {
		t.Errorf("bind (%.3e) must beat interleave (%.3e)", teps[machine.PPN8Bind], teps[machine.PPN1Interleave])
	}
	if !(teps[machine.PPN1Interleave] > teps[machine.PPN1NoFlag]) {
		t.Errorf("interleave (%.3e) must beat noflag (%.3e)", teps[machine.PPN1Interleave], teps[machine.PPN1NoFlag])
	}
	if !(teps[machine.PPN8Bind] > teps[machine.PPN8NoFlag]) {
		t.Errorf("bind (%.3e) must beat unbound ppn=8 (%.3e)", teps[machine.PPN8Bind], teps[machine.PPN8NoFlag])
	}
}

// TestWeakNodeSlowsCluster: enabling the testbed's weak node can only
// slow the 16-node run down.
func TestWeakNodeSlowsCluster(t *testing.T) {
	const scale = 13
	params := rmat.Graph500(scale)
	run := func(weak int) float64 {
		cfg := testConfig(scale, 4, 4)
		cfg.WeakNode = weak
		r, err := NewRunner(cfg, machine.PPN8Bind, params, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		r.Setup()
		root := params.Roots(1, r.HasEdgeGlobal)[0]
		return r.RunRoot(root).TimeNs
	}
	healthy := run(-1)
	weak := run(3)
	if weak <= healthy {
		t.Errorf("weak node run (%g) not slower than healthy (%g)", weak, healthy)
	}
}
