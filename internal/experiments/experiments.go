// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section IV), each regenerating the corresponding
// rows or series on the simulated cluster. DESIGN.md carries the full
// experiment index; EXPERIMENTS.md records paper-vs-measured values.
//
// The paper runs graphs of scale 28 (one node) to 32 (sixteen nodes,
// weak scaling). The drivers run the same sweeps at laptop scales on the
// proportionally scaled machine model (machine.Scaled), which preserves
// the working-set : cache ratios the results depend on; a Spec selects
// the scale and the number of BFS roots.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"numabfs/internal/bfs"
	"numabfs/internal/fault"
	"numabfs/internal/graph500"
	"numabfs/internal/machine"
	"numabfs/internal/obs"
	"numabfs/internal/rmat"
	"numabfs/internal/trace"
)

// Spec sizes an experiment run.
type Spec struct {
	// BaseScale is the graph scale on one node; weak-scaling sweeps use
	// BaseScale + log2(nodes), mirroring the paper's 28..32.
	BaseScale int
	// Roots is the number of BFS iterations per configuration (the
	// Graph500 methodology uses 64).
	Roots int
	// Validate turns on per-root BFS tree validation.
	Validate bool
	// WeakNode keeps the testbed's one ill-performing node in 16-node
	// runs (the paper's results include it; Figs. 13-14 exclude 16-node
	// points because of it).
	WeakNode bool
	// Obs, when non-nil, records every benchmark configuration the
	// driver runs into its own labeled session (span timelines, comm
	// counters) for Chrome-trace export and the metrics report.
	Obs *obs.Recorder
	// SampleNs, when positive, enables the virtual-time gauge grid at
	// that bucket pitch on every recorded session (requires Obs) — the
	// bfsbench -sample-ns flag feeding the timeline/HTML/Prometheus
	// exports.
	SampleNs float64
	// Faults, when non-nil, applies a deterministic fault plan
	// (internal/fault) to every configuration the driver runs — the
	// bfsbench -fault flag. ExtFaults builds its own plans and ignores
	// this field.
	Faults *fault.Plan
	// Cache, when non-nil, shares constructed graphs across every cell
	// the driver runs: cells differing only in optimization level, knobs
	// or fault plan rebuild the identical R-MAT graph, so kernel 1 runs
	// once per (scale, ranks) and later cells reuse it bit-identically.
	Cache *graph500.GraphCache
	// Parallel is the host-parallel width of the cell runner: how many
	// benchmark cells (variant × node-count × policy) run concurrently on
	// host cores. 0 or 1 is sequential. Any width produces bit-identical
	// tables, bench records and obs exports — cells are independent
	// simulations and the runner commits their effects in submission
	// order — so Parallel trades host wall-clock only.
	Parallel int
	// Ledger, when non-nil, receives one host wall-clock entry per cell
	// the drivers run (the bfsbench -cell-ledger output and the CI
	// host-budget gate's input).
	Ledger *Ledger
	// Batch is the MS-BFS lane count for the batched-traversal figures
	// (ExtMSBFS, ExtMSBFSLoad): how many roots share one traversal.
	// 0 means the full 64 lanes; values clamp to [1, 64]. The bfsbench
	// -batch flag feeds it.
	Batch int
	// FillTimeoutNs is the query-server admission timeout for
	// ExtMSBFSLoad: how long a query may wait for lane-mates before its
	// batch launches. 0 derives a default from the measured batch
	// duration. The bfsbench -fill-timeout-ns flag feeds it.
	FillTimeoutNs float64
}

// Quick returns a spec small enough for unit tests.
func Quick() Spec { return Spec{BaseScale: 14, Roots: 2} }

// Default returns the benchmark spec used by cmd/bfsbench and the
// top-level benches.
func Default() Spec { return Spec{BaseScale: 16, Roots: 8} }

// PaperBaseScale is the paper's one-node graph scale; its weak-scaling
// sweep runs 28 (1 node) to 32 (16 nodes).
const PaperBaseScale = 28

// scaleFor returns the weak-scaling graph scale for a node count.
func (s Spec) scaleFor(nodes int) int {
	return s.BaseScale + int(math.Round(math.Log2(float64(nodes))))
}

// clusterConfig returns the scaled machine for a node count: the run
// stands in for the paper's experiment at scale 28 + log2(nodes).
func (s Spec) clusterConfig(nodes int) machine.Config {
	cfg := machine.Scaled(s.scaleFor(nodes), PaperBaseScale+s.scaleFor(nodes)-s.BaseScale)
	cfg.Nodes = nodes
	if !s.WeakNode || nodes < 16 {
		cfg.WeakNode = -1
	}
	return cfg
}

// run executes one Graph500 benchmark configuration.
func (s Spec) run(nodes int, policy machine.Policy, opts bfs.Options) (*graph500.Result, error) {
	return graph500.Run(graph500.Config{
		Machine:  s.clusterConfig(nodes),
		Policy:   policy,
		Params:   rmat.Graph500(s.scaleFor(nodes)),
		Opts:     opts,
		NumRoots: s.Roots,
		Validate: s.Validate,
		Obs:      s.Obs,
		SampleNs: s.SampleNs,
		Faults:   s.Faults,
		Cache:    s.Cache,
	})
}

// Table is a rendered experiment result: labelled rows of numeric cells,
// in the shape of the paper's figure it reproduces. The struct marshals
// cleanly to JSON for downstream plotting.
type Table struct {
	Name    string   `json:"name"` // e.g. "Fig. 9"
	Title   string   `json:"title"`
	Columns []string `json:"columns"`
	Rows    []Row    `json:"rows"`
	Notes   []string `json:"notes,omitempty"`
	// Breakdowns carries the per-phase time breakdown of each
	// configuration for drivers that measure one (Fig. 11), keyed by row
	// label.
	Breakdowns map[string]trace.Breakdown `json:"breakdowns,omitempty"`
}

// Row is one labelled series of values.
type Row struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

// AddRow appends a row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.Name, t.Title)
	width := 14
	fmt.Fprintf(&b, "%-34s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-34s", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%*s", width, formatCell(v))
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func formatCell(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
