package experiments

import (
	"fmt"

	"numabfs/internal/bfs"
	"numabfs/internal/bfs2d"
	"numabfs/internal/engine"
	"numabfs/internal/graph500"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
	"numabfs/internal/stats"
)

// ExtCrossover maps the 1-D/2-D crossover: both engines run at the top
// of their optimization ladders (the 1-D hybrid with the compressed
// allgather, the 2-D hybrid with compressed folds) over the weak-scaling
// node sweep, every BFS tree is validated against the Graph500 rule set,
// and the measured winner of each cell is compared with the verdict of
// the analytic selector (internal/engine), which prices both engines
// from the machine model alone. The table shows where the 2-D engine's
// smaller frontier bitmaps beat the 1-D engine's narrower scans — and
// that the selector finds that boundary without running either engine.
func ExtCrossover(s Spec) (*Table, error) {
	nodesSweep := []int{2, 4, 8}
	t := &Table{
		Name:    "Ext. crossover",
		Title:   "1-D/2-D crossover: measured winner vs model-driven selector",
		Columns: []string{"2 nodes", "4 nodes", "8 nodes"},
	}

	type point struct{ teps, timeNs float64 }
	// Slots: series-major — 1-D hybrid, 2-D hybrid.
	points := make([]point, 2*len(nodesSweep))
	var cells []cell
	for ni, nodes := range nodesSweep {
		slot, nodes := ni, nodes
		cells = append(cells, cell{
			label: fmt.Sprintf("1-D/%dn", nodes),
			run: func(cs Spec) error {
				scale := cs.scaleFor(nodes)
				opts := bfs.DefaultOptions()
				opts.Opt = bfs.OptCompressedAllgather
				r, err := bfs.NewRunner(cs.clusterConfig(nodes), machine.PPN8Bind, rmat.Graph500(scale), opts)
				if err != nil {
					return fmt.Errorf("crossover 1-D: %w", err)
				}
				if cs.Obs != nil {
					r.AttachObs(cs.Obs.NewSession(fmt.Sprintf("crossover 1-D nodes=%d", nodes)))
				}
				r.Setup()
				roots := r.Params.Roots(cs.Roots, r.HasEdgeGlobal)
				var teps, times []float64
				for _, root := range roots {
					res := r.RunRoot(root)
					if err := graph500.ValidateRun(r, root); err != nil {
						return fmt.Errorf("crossover 1-D nodes=%d root=%d: %w", nodes, root, err)
					}
					teps = append(teps, res.TEPS)
					times = append(times, res.TimeNs)
				}
				points[slot] = point{stats.HarmonicMean(teps), stats.Mean(times)}
				return nil
			},
		})
	}
	for ni, nodes := range nodesSweep {
		slot, nodes := len(nodesSweep)+ni, nodes
		cells = append(cells, cell{
			label: fmt.Sprintf("2-D/%dn", nodes),
			run: func(cs Spec) error {
				scale := cs.scaleFor(nodes)
				cfg := cs.clusterConfig(nodes)
				grid := bfs2d.DefaultGrid(nodes * cfg.SocketsPerNode)
				r, err := bfs2d.NewRunner(cfg, machine.PPN8Bind, grid, rmat.Graph500(scale))
				if err != nil {
					return fmt.Errorf("crossover 2-D: %w", err)
				}
				r.Mode = bfs2d.ModeHybrid
				r.Compress = true
				if cs.Obs != nil {
					r.AttachObs(cs.Obs.NewSession(fmt.Sprintf("crossover 2-D %dx%d nodes=%d", grid.R, grid.C, nodes)))
				}
				r.Setup()
				roots := r.Params.Roots(cs.Roots, r.HasEdgeGlobal)
				var teps, times []float64
				for _, root := range roots {
					res := r.RunRoot(root)
					if err := graph500.ValidateRun2D(r, root); err != nil {
						return fmt.Errorf("crossover 2-D nodes=%d root=%d: %w", nodes, root, err)
					}
					teps = append(teps, res.TEPS)
					times = append(times, res.TimeNs)
				}
				points[slot] = point{stats.HarmonicMean(teps), stats.Mean(times)}
				return nil
			},
		})
	}
	if err := s.runCells("crossover", cells); err != nil {
		return nil, err
	}

	n := len(nodesSweep)
	teps1, teps2 := make([]float64, n), make([]float64, n)
	measRatio, modelRatio := make([]float64, n), make([]float64, n)
	meas2D, pick2D, agree := make([]float64, n), make([]float64, n), make([]float64, n)
	for i, nodes := range nodesSweep {
		p1, p2 := points[i], points[n+i]
		teps1[i], teps2[i] = p1.teps, p2.teps
		if p1.timeNs > 0 {
			measRatio[i] = p2.timeNs / p1.timeNs
		}
		ch := engine.Select(s.clusterConfig(nodes), s.scaleFor(nodes), nodes)
		modelRatio[i] = ch.Ratio()
		if p2.timeNs < p1.timeNs {
			meas2D[i] = 1
		}
		if ch.Use2D {
			pick2D[i] = 1
		}
		if ch.Use2D == (p2.timeNs < p1.timeNs) {
			agree[i] = 1
		}
	}
	t.AddRow("1-D hybrid TEPS", teps1...)
	t.AddRow("2-D hybrid TEPS", teps2...)
	t.AddRow("measured time ratio (2D/1D)", measRatio...)
	t.AddRow("model cost ratio (2D/1D)", modelRatio...)
	t.AddRow("measured winner is 2-D (=1)", meas2D...)
	t.AddRow("selector picks 2-D (=1)", pick2D...)
	t.AddRow("selector agrees (=1)", agree...)
	t.Notes = append(t.Notes,
		"every root of every cell passed Graph500 tree validation (1-D and 2-D validators)",
		"the selector prices both engines from the machine model alone (internal/engine), no trial runs")
	return t, nil
}
