package experiments

import (
	"testing"

	"numabfs/internal/bfs"
	"numabfs/internal/graph500"
)

func TestBatchSizeResolution(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 64}, {1, 1}, {17, 17}, {64, 64}, {65, 64}, {-3, 1},
	} {
		if got := (Spec{Batch: tc.in}).batchSize(); got != tc.want {
			t.Errorf("batchSize(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestExtMSBFSShape runs the amortization figure at CI scale: one row
// per supported optimization level, and on every row the batch must do
// strictly fewer allgather rounds in strictly less virtual time than
// its sequential counterpart (the driver itself validates every lane
// and checks bit-identity, so a pass here covers correctness too).
func TestExtMSBFSShape(t *testing.T) {
	s := quick()
	s.Cache = graph500.NewGraphCache()
	tab, err := ExtMSBFS(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(msbfsOpts) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(msbfsOpts))
	}
	if len(tab.Columns) != 7 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	for _, r := range tab.Rows {
		teps, batchMs, batchRounds := r.Values[0], r.Values[1], r.Values[2]
		seqMs, seqRounds := r.Values[3], r.Values[4]
		speedup, ratio := r.Values[5], r.Values[6]
		if teps <= 0 || batchMs <= 0 {
			t.Errorf("row %q: degenerate batch (%v)", r.Label, r.Values)
		}
		if batchRounds >= seqRounds {
			t.Errorf("row %q: batch rounds %g not < seq rounds %g", r.Label, batchRounds, seqRounds)
		}
		if batchMs >= seqMs {
			t.Errorf("row %q: batch time %g ms not < seq time %g ms", r.Label, batchMs, seqMs)
		}
		if speedup <= 1 || ratio <= 1 {
			t.Errorf("row %q: speedup %g / rounds ratio %g not > 1", r.Label, speedup, ratio)
		}
	}
	// One graph build serves every cell: the batched runner shares the
	// sequential path's cache key.
	if h, m := s.Cache.Stats(); m != 1 || h != int64(len(msbfsOpts)-1) {
		t.Errorf("graph cache hits=%d misses=%d, want %d/1", h, m, len(msbfsOpts)-1)
	}
}

// TestExtMSBFSLoadShape runs the offered-load sweep at CI scale: per
// load level the filled policy must pack fuller batches and spend fewer
// allgather rounds per query than batch-of-one, and past saturation it
// must hold a lower p95.
func TestExtMSBFSLoadShape(t *testing.T) {
	s := quick()
	s.Batch = 16 // smaller lanes keep the batch-1 cells cheap at CI scale
	s.Cache = graph500.NewGraphCache()
	tab, err := ExtMSBFSLoad(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2*len(msbfsLoadLevels) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), 2*len(msbfsLoadLevels))
	}
	for i := 0; i < len(tab.Rows); i += 2 {
		single, filled := tab.Rows[i], tab.Rows[i+1]
		if single.Values[0] != filled.Values[0] {
			t.Errorf("rows %q/%q: offered load differs", single.Label, filled.Label)
		}
		for _, r := range []Row{single, filled} {
			if r.Values[1] <= 0 || r.Values[2] < 1 || r.Values[3] <= 0 {
				t.Errorf("row %q: degenerate service (%v)", r.Label, r.Values)
			}
		}
		if filled.Values[2] <= single.Values[2] {
			t.Errorf("filled policy %q fill %g not above batch-1's %g",
				filled.Label, filled.Values[2], single.Values[2])
		}
		if filled.Values[6] >= single.Values[6] {
			t.Errorf("filled policy %q rounds/query %g not below batch-1's %g",
				filled.Label, filled.Values[6], single.Values[6])
		}
	}
	// Past saturation (the last load level) the batched policy must also
	// win on tail latency.
	last := len(tab.Rows) - 2
	if tab.Rows[last+1].Values[4] >= tab.Rows[last].Values[4] {
		t.Errorf("at %gx load, filled p95 %g ms not below batch-1's %g ms",
			msbfsLoadLevels[len(msbfsLoadLevels)-1], tab.Rows[last+1].Values[4], tab.Rows[last].Values[4])
	}
}

// TestMSBFSAcceptanceAtDefaultScale is the tentpole acceptance: at the
// default base scale a full 64-root batch must do strictly fewer
// allgather rounds and finish in strictly less total virtual time than
// 64 sequential single-root runs of the same engine at the same
// optimization level, with every lane Graph500-validated and
// bit-identical to its sequential counterpart.
func TestMSBFSAcceptanceAtDefaultScale(t *testing.T) {
	s := Spec{BaseScale: Default().BaseScale}
	gc := s.msbfsConfig(bfs.OptCompressedAllgather)
	r, err := graph500.NewBatchRunner(gc)
	if err != nil {
		t.Fatal(err)
	}
	roots := gc.Params.Roots(64, r.HasEdgeGlobal)
	br := r.RunBatch(roots)
	if err := graph500.ValidateBatch(r, roots); err != nil {
		t.Fatalf("lane validation: %v", err)
	}
	batched := make([][]int64, len(roots))
	for l := range roots {
		batched[l] = r.LaneParents(l)
	}
	var seqNs float64
	var seqRounds int64
	for l, root := range roots {
		sr := r.RunBatch([]int64{root})
		seqNs += sr.TimeNs
		seqRounds += sr.AllgatherRounds
		solo := r.LaneParents(0)
		for v := range solo {
			if solo[v] != batched[l][v] {
				t.Fatalf("lane %d (root %d) vertex %d: batched parent %d, sequential parent %d",
					l, root, v, batched[l][v], solo[v])
			}
		}
	}
	if br.AllgatherRounds >= seqRounds {
		t.Errorf("batch rounds %d not strictly below sequential rounds %d", br.AllgatherRounds, seqRounds)
	}
	if br.TimeNs >= seqNs {
		t.Errorf("batch time %.0f ns not strictly below sequential total %.0f ns", br.TimeNs, seqNs)
	}
}
