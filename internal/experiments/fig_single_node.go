package experiments

import (
	"fmt"

	"numabfs/internal/bfs"
	"numabfs/internal/graph500"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
	"numabfs/internal/trace"
)

// Fig3 reproduces the core-scaling experiment: BFS speedup on 1 core,
// 8 cores (one socket, all-local memory) and 64 cores (eight sockets)
// with the graph interleaved across sockets — plus the bound mapping the
// paper recommends in Section II.D. Paper shape: 1->8 cores ~6.98x near
// linear; 8->64 cores only ~2.77x interleaved but ~6.31x bound.
func Fig3(s Spec) (*Table, error) {
	scale := s.scaleFor(1)
	params := rmat.Graph500(scale)
	type variant struct {
		label   string
		sockets int
		cores   int
		policy  machine.Policy
	}
	variants := []variant{
		{"1 core (1 socket, local)", 1, 1, machine.PPN1NoFlag},
		{"8 cores (1 socket, local)", 1, 8, machine.PPN1NoFlag},
		{"64 cores (8 sockets, interleave)", 8, 8, machine.PPN1Interleave},
		{"64 cores (8 sockets, bind-to-socket)", 8, 8, machine.PPN8Bind},
	}
	t := &Table{
		Name:    "Fig. 3",
		Title:   "BFS speedup by core count and NUMA placement (single node)",
		Columns: []string{"TEPS", "vs 1 core", "vs 8 cores"},
	}
	opts := bfs.DefaultOptions()
	cells := make([]cellRun, len(variants))
	for i, v := range variants {
		cells[i] = cellRun{label: v.label, run: func(cs Spec) (*graph500.Result, error) {
			cfg := cs.clusterConfig(1)
			cfg.Nodes = 1
			cfg.SocketsPerNode = v.sockets
			cfg.CoresPerSocket = v.cores
			res, err := graph500.Run(graph500.Config{
				Machine: cfg, Policy: v.policy, Params: params,
				Opts: opts, NumRoots: cs.Roots, Validate: cs.Validate,
				Obs: cs.Obs,
			})
			if err != nil {
				return nil, fmt.Errorf("fig3 %s: %w", v.label, err)
			}
			return res, nil
		}}
	}
	results, err := s.collect("3", cells)
	if err != nil {
		return nil, err
	}
	teps := make([]float64, len(variants))
	for i := range variants {
		teps[i] = results[i].HarmonicTEPS
	}
	for i, v := range variants {
		t.AddRow(v.label, teps[i], teps[i]/teps[0], teps[i]/teps[1])
	}
	t.Notes = append(t.Notes,
		"paper: 8 cores = 6.98x of 1 core; 64 cores = 2.77x of 8 cores interleaved, 6.31x bound")
	return t, nil
}

// Fig10 reproduces the execution-policy comparison on a single node:
// ppn=1 without flags, ppn=1 interleaved, ppn=8 unbound, ppn=8 bound.
// Paper shape: bind = 1.74x interleave = 2.08x ppn8-noflag; noflag worst.
func Fig10(s Spec) (*Table, error) {
	t := &Table{
		Name:    "Fig. 10",
		Title:   "\"Original\" implementation under various execution policies (1 node)",
		Columns: []string{"TEPS", "norm vs interleave"},
	}
	policies := []machine.Policy{
		machine.PPN1NoFlag, machine.PPN1Interleave, machine.PPN8NoFlag, machine.PPN8Bind,
	}
	cells := make([]cellRun, len(policies))
	for i, pol := range policies {
		cells[i] = cellRun{label: pol.String(), run: func(cs Spec) (*graph500.Result, error) {
			res, err := cs.run(1, pol, bfs.DefaultOptions())
			if err != nil {
				return nil, fmt.Errorf("fig10 %s: %w", pol, err)
			}
			return res, nil
		}}
	}
	results, err := s.collect("10", cells)
	if err != nil {
		return nil, err
	}
	for i, pol := range policies {
		t.AddRow(pol.String(), results[i].HarmonicTEPS, results[i].HarmonicTEPS/results[1].HarmonicTEPS)
	}
	t.Notes = append(t.Notes,
		"paper: bind-to-socket = 1.74x of ppn=1.interleave and 2.08x of ppn=8.noflag")
	return t, nil
}

// Fig11 reproduces the single-node execution-time breakdown and the
// computation-phase speedups of binding: ppn=1.interleave vs
// ppn=8.bind-to-socket. Paper shape: bottom-up computation speeds up
// ~1.58x from the elimination of remote accesses; both computation
// phases dominate the breakdown on one node.
func Fig11(s Spec) (*Table, error) {
	t := &Table{
		Name:  "Fig. 11",
		Title: "Execution time breakdown (ms) and computation speedup (1 node)",
		Columns: []string{
			"td-comp", "td-comm", "bu-comp", "bu-comm", "switch", "stall", "total",
		},
	}
	t.Breakdowns = make(map[string]trace.Breakdown)
	policies := []machine.Policy{machine.PPN1Interleave, machine.PPN8Bind}
	cells := make([]cellRun, len(policies))
	for i, pol := range policies {
		cells[i] = cellRun{label: pol.String(), run: func(cs Spec) (*graph500.Result, error) {
			res, err := cs.run(1, pol, bfs.DefaultOptions())
			if err != nil {
				return nil, fmt.Errorf("fig11 %s: %w", pol, err)
			}
			return res, nil
		}}
	}
	results, err := s.collect("11", cells)
	if err != nil {
		return nil, err
	}
	var bds [2]trace.Breakdown
	for i, pol := range policies {
		bds[i] = results[i].Breakdown
		t.Breakdowns[pol.String()] = results[i].Breakdown
		t.AddRow(pol.String(),
			bds[i].Ns[trace.TDComp]/1e6, bds[i].Ns[trace.TDComm]/1e6,
			bds[i].Ns[trace.BUComp]/1e6, bds[i].Ns[trace.BUComm]/1e6,
			bds[i].Ns[trace.Switch]/1e6, bds[i].Ns[trace.Stall]/1e6,
			bds[i].Total()/1e6)
	}
	tdSpeedup := bds[0].Ns[trace.TDComp] / bds[1].Ns[trace.TDComp]
	buSpeedup := bds[0].Ns[trace.BUComp] / bds[1].Ns[trace.BUComp]
	t.AddRow("computation speedup (td, bu)", tdSpeedup, buSpeedup)
	t.Notes = append(t.Notes, "paper: bottom-up computation speedup ~1.58x from binding")
	return t, nil
}

// AlgorithmComparison reproduces the Section II.A measurement: on one
// 64-core node, the hybrid algorithm against pure top-down and pure
// bottom-up. Paper: hybrid = 27.3x top-down (pure MPI, 64 ranks) and
// 4.7x bottom-up (8 ranks x 8 threads).
func AlgorithmComparison(s Spec) (*Table, error) {
	scale := s.scaleFor(1)
	params := rmat.Graph500(scale)
	t := &Table{
		Name:    "Sec. II.A",
		Title:   "Hybrid vs pure top-down vs pure bottom-up (64-core node)",
		Columns: []string{"TEPS", "hybrid speedup"},
	}

	type variant struct {
		label   string
		mode    bfs.Mode
		pureMPI bool
	}
	variants := []variant{
		{"hybrid (8 ranks x 8 threads)", bfs.ModeHybrid, false},
		{"top-down (pure MPI, 64 ranks)", bfs.ModeTopDown, true},
		{"bottom-up (8 ranks x 8 threads)", bfs.ModeBottomUp, false},
	}
	cells := make([]cellRun, len(variants))
	for i, v := range variants {
		cells[i] = cellRun{label: v.label, run: func(cs Spec) (*graph500.Result, error) {
			cfg := cs.clusterConfig(1)
			cfg.Nodes = 1
			pol := machine.PPN8Bind
			if v.pureMPI {
				// 64 single-thread MPI ranks: model each core as its own
				// bandwidth domain with 1/8 of a socket's resources.
				cfg.SocketsPerNode = 64
				cfg.CoresPerSocket = 1
				cfg.MemBWPerSocket /= 8
				cfg.L3Bytes /= 8
				if cfg.L3Bytes < 64 {
					cfg.L3Bytes = 64
				}
			}
			opts := bfs.DefaultOptions()
			opts.Mode = v.mode
			res, err := graph500.Run(graph500.Config{
				Machine: cfg, Policy: pol, Params: params,
				Opts: opts, NumRoots: cs.Roots, Validate: cs.Validate,
				Obs: cs.Obs,
			})
			if err != nil {
				return nil, fmt.Errorf("algcmp %s: %w", v.label, err)
			}
			return res, nil
		}}
	}
	results, err := s.collect("algcmp", cells)
	if err != nil {
		return nil, err
	}
	hybrid, td, bu := results[0].HarmonicTEPS, results[1].HarmonicTEPS, results[2].HarmonicTEPS
	t.AddRow("hybrid (8 ranks x 8 threads)", hybrid, 1)
	t.AddRow("top-down (pure MPI, 64 ranks)", td, hybrid/td)
	t.AddRow("bottom-up (8 ranks x 8 threads)", bu, hybrid/bu)
	t.Notes = append(t.Notes, "paper: hybrid 27.3x over top-down, 4.7x over bottom-up")
	return t, nil
}
