package experiments

import (
	"fmt"

	"numabfs/internal/bfs"
	"numabfs/internal/graph500"
	"numabfs/internal/machine"
	"numabfs/internal/trace"
)

// variant pairs a label with a policy and optimization level, in the
// cumulative order of Fig. 9.
type variant struct {
	label  string
	policy machine.Policy
	opt    bfs.Opt
}

func ppn8Variants() []variant {
	return []variant{
		{"Original.ppn=8", machine.PPN8Bind, bfs.OptOriginal},
		{"+ Share in_queue", machine.PPN8Bind, bfs.OptShareInQueue},
		{"+ Share all", machine.PPN8Bind, bfs.OptShareAll},
		{"+ Par allgather", machine.PPN8Bind, bfs.OptParAllgather},
	}
}

// Fig9Granularities is the sweep behind the "+ Granularity" bar (the
// paper reports the best of all tested granularities).
var Fig9Granularities = []int64{64, 128, 256, 512}

// Fig9 reproduces the overview of all optimizations on 16 nodes. Paper
// shape: Original.ppn=8 = 1.53x Original.ppn=1; sharing in_queue +34.1%;
// share all +6.5%; parallel allgather +4.6%; best granularity on top;
// 2.44x overall.
func Fig9(s Spec) (*Table, error) {
	const nodes = 16
	t := &Table{
		Name:    "Fig. 9",
		Title:   fmt.Sprintf("Overview of all optimizations (%d nodes, scale %d)", nodes, s.scaleFor(nodes)),
		Columns: []string{"TEPS", "vs ppn=1", "vs previous"},
	}

	variants := ppn8Variants()
	cells := []cellRun{{label: "Original.ppn=1", run: func(cs Spec) (*graph500.Result, error) {
		res, err := cs.run(nodes, machine.PPN1Interleave, bfs.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("fig9 ppn=1: %w", err)
		}
		return res, nil
	}}}
	for _, v := range variants {
		cells = append(cells, cellRun{label: v.label, run: func(cs Spec) (*graph500.Result, error) {
			opts := bfs.DefaultOptions()
			opts.Opt = v.opt
			res, err := cs.run(nodes, v.policy, opts)
			if err != nil {
				return nil, fmt.Errorf("fig9 %s: %w", v.label, err)
			}
			return res, nil
		}})
	}
	// "+ Granularity": best of the sweep on top of Par allgather.
	for _, g := range Fig9Granularities {
		cells = append(cells, cellRun{label: fmt.Sprintf("g=%d", g), run: func(cs Spec) (*graph500.Result, error) {
			opts := bfs.DefaultOptions()
			opts.Opt = bfs.OptParAllgather
			opts.Granularity = g
			res, err := cs.run(nodes, machine.PPN8Bind, opts)
			if err != nil {
				return nil, fmt.Errorf("fig9 granularity %d: %w", g, err)
			}
			return res, nil
		}})
	}
	results, err := s.collect("9", cells)
	if err != nil {
		return nil, err
	}

	var teps []float64
	var labels []string
	teps = append(teps, results[0].HarmonicTEPS)
	labels = append(labels, "Original.ppn=1")
	for i, v := range variants {
		teps = append(teps, results[1+i].HarmonicTEPS)
		labels = append(labels, v.label)
	}
	best := 0.0
	bestG := int64(0)
	for i, g := range Fig9Granularities {
		if r := results[1+len(variants)+i]; r.HarmonicTEPS > best {
			best, bestG = r.HarmonicTEPS, g
		}
	}
	teps = append(teps, best)
	labels = append(labels, fmt.Sprintf("+ Granularity (best g=%d)", bestG))

	for i := range teps {
		prev := 1.0
		if i > 0 {
			prev = teps[i] / teps[i-1]
		}
		t.AddRow(labels[i], teps[i], teps[i]/teps[0], prev)
	}
	t.Notes = append(t.Notes,
		"paper: 1.53x, +34.1%, +6.5%, +4.6%, then best granularity; 2.44x overall")
	return t, nil
}

// Fig12 reproduces the weak-scaling communication-cost measurement of
// the "Original" implementation: absolute time of each bottom-up
// communication phase for ppn=1 vs ppn=8, and the proportion of total
// time ppn=8 spends in bottom-up communication. Paper shape: the cost
// grows ~2x per doubling; ppn=8 costs ~2.34x ppn=1 at 8 nodes; the
// proportion grows from 12% to 54%.
func Fig12(s Spec) (*Table, error) {
	nodesSweep := []int{1, 2, 4, 8}
	t := &Table{
		Name:    "Fig. 12",
		Title:   "Bottom-up communication cost, weak scaling (Original)",
		Columns: []string{"1 node", "2 nodes", "4 nodes", "8 nodes"},
	}
	var cells []cellRun
	for _, nodes := range nodesSweep {
		nodes := nodes
		cells = append(cells,
			cellRun{label: fmt.Sprintf("ppn1/%dn", nodes), run: func(cs Spec) (*graph500.Result, error) {
				res, err := cs.run(nodes, machine.PPN1Interleave, bfs.DefaultOptions())
				if err != nil {
					return nil, fmt.Errorf("fig12 ppn1 %d nodes: %w", nodes, err)
				}
				return res, nil
			}},
			cellRun{label: fmt.Sprintf("ppn8/%dn", nodes), run: func(cs Spec) (*graph500.Result, error) {
				res, err := cs.run(nodes, machine.PPN8Bind, bfs.DefaultOptions())
				if err != nil {
					return nil, fmt.Errorf("fig12 ppn8 %d nodes: %w", nodes, err)
				}
				return res, nil
			}})
	}
	results, err := s.collect("12", cells)
	if err != nil {
		return nil, err
	}
	var ppn1, ppn8, prop []float64
	for i := range nodesSweep {
		r1, r8 := results[2*i], results[2*i+1]
		ppn1 = append(ppn1, r1.Breakdown.AvgBUCommNs()/1e6)
		ppn8 = append(ppn8, r8.Breakdown.AvgBUCommNs()/1e6)
		prop = append(prop, r8.Breakdown.Proportion(trace.BUComm))
	}
	t.AddRow("ppn=1.interleave comm phase (ms)", ppn1...)
	t.AddRow("ppn=8.bind comm phase (ms)", ppn8...)
	t.AddRow("ppn=8 bu-comm proportion", prop...)
	t.Notes = append(t.Notes,
		"paper: ppn=8 comm = 2.34x ppn=1 at 8 nodes; proportion 12% -> 54%")
	return t, nil
}

// sweepCells declares one cell per (variant, node count), in
// variant-major order — the sequential schedule the weak-scaling
// figures always ran. errPrefix names the calling driver in error wraps.
func sweepCells(errPrefix string, variants []variant, nodesSweep []int) []cellRun {
	var cells []cellRun
	for _, v := range variants {
		for _, nodes := range nodesSweep {
			v, nodes := v, nodes
			cells = append(cells, cellRun{
				label: fmt.Sprintf("%s/%dn", v.label, nodes),
				run: func(cs Spec) (*graph500.Result, error) {
					opts := bfs.DefaultOptions()
					opts.Opt = v.opt
					res, err := cs.run(nodes, v.policy, opts)
					if err != nil {
						return nil, fmt.Errorf("%s %s %d nodes: %w", errPrefix, v.label, nodes, err)
					}
					return res, nil
				},
			})
		}
	}
	return cells
}

// Fig13 reproduces the reduction of the average bottom-up communication
// phase by the communication optimizations across 1..16 nodes. Paper
// shape: 4.07x reduction at 8 nodes; the 16-node point is polluted by
// the weak node.
func Fig13(s Spec) (*Table, error) {
	nodesSweep := []int{1, 2, 4, 8, 16}
	t := &Table{
		Name:    "Fig. 13",
		Title:   "Average bottom-up communication phase (ms), weak scaling",
		Columns: []string{"1 node", "2 nodes", "4 nodes", "8 nodes", "16 nodes"},
	}
	variants := ppn8Variants()
	results, err := s.collect("13", sweepCells("fig13", variants, nodesSweep))
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		row := make([]float64, 0, len(nodesSweep))
		for j := range nodesSweep {
			row = append(row, results[i*len(nodesSweep)+j].Breakdown.AvgBUCommNs()/1e6)
		}
		t.AddRow(v.label, row...)
	}
	t.Notes = append(t.Notes, "paper: all optimizations together cut 8-node comm 4.07x")
	return t, nil
}

// Fig14 reproduces the proportion of total time spent in bottom-up
// communication for each optimization level over 1..8 nodes. Paper
// shape: 54% (Original) -> 18% (all optimizations) at 8 nodes.
func Fig14(s Spec) (*Table, error) {
	nodesSweep := []int{1, 2, 4, 8}
	t := &Table{
		Name:    "Fig. 14",
		Title:   "Bottom-up communication proportion of total time",
		Columns: []string{"1 node", "2 nodes", "4 nodes", "8 nodes"},
	}
	variants := ppn8Variants()
	results, err := s.collect("14", sweepCells("fig14", variants, nodesSweep))
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		row := make([]float64, 0, len(nodesSweep))
		for j := range nodesSweep {
			row = append(row, results[i*len(nodesSweep)+j].Breakdown.Proportion(trace.BUComm))
		}
		t.AddRow(v.label, row...)
	}
	t.Notes = append(t.Notes, "paper: 54% -> 18% at 8 nodes")
	return t, nil
}

// Fig15 reproduces weak scalability in TEPS for each implementation from
// 1 to 16 nodes. Paper shape: the communication optimizations scale
// best; 8 -> 16 nodes is depressed by the weak node.
func Fig15(s Spec) (*Table, error) {
	nodesSweep := []int{1, 2, 4, 8, 16}
	t := &Table{
		Name:    "Fig. 15",
		Title:   "Weak scalability (harmonic-mean TEPS)",
		Columns: []string{"1 node", "2 nodes", "4 nodes", "8 nodes", "16 nodes"},
	}
	all := append([]variant{{"Original.ppn=1", machine.PPN1Interleave, bfs.OptOriginal}}, ppn8Variants()...)
	results, err := s.collect("15", sweepCells("fig15", all, nodesSweep))
	if err != nil {
		return nil, err
	}
	for i, v := range all {
		row := make([]float64, 0, len(nodesSweep))
		for j := range nodesSweep {
			row = append(row, results[i*len(nodesSweep)+j].HarmonicTEPS)
		}
		t.AddRow(v.label, row...)
	}
	return t, nil
}

// Fig16Granularities is the granularity sweep of Fig. 16.
var Fig16Granularities = []int64{64, 128, 256, 512, 1024, 2048, 4096}

// Fig16 reproduces the summary-granularity sweep on 16 nodes over the
// "Par allgather" implementation. Paper shape: a peak at 256 (+10.2%
// over 64), decaying beyond as the summary loses zero bits.
func Fig16(s Spec) (*Table, error) {
	const nodes = 16
	t := &Table{
		Name:    "Fig. 16",
		Title:   fmt.Sprintf("Summary bitmap granularity sweep (%d nodes, scale %d)", nodes, s.scaleFor(nodes)),
		Columns: []string{"TEPS", "vs g=64"},
	}
	cells := make([]cellRun, len(Fig16Granularities))
	for i, g := range Fig16Granularities {
		cells[i] = cellRun{label: fmt.Sprintf("g=%d", g), run: func(cs Spec) (*graph500.Result, error) {
			opts := bfs.DefaultOptions()
			opts.Opt = bfs.OptParAllgather
			opts.Granularity = g
			res, err := cs.run(nodes, machine.PPN8Bind, opts)
			if err != nil {
				return nil, fmt.Errorf("fig16 g=%d: %w", g, err)
			}
			return res, nil
		}}
	}
	results, err := s.collect("16", cells)
	if err != nil {
		return nil, err
	}
	var base float64
	for i, g := range Fig16Granularities {
		if g == 64 {
			base = results[i].HarmonicTEPS
		}
		t.AddRow(fmt.Sprintf("g=%d", g), results[i].HarmonicTEPS, results[i].HarmonicTEPS/base)
	}
	t.Notes = append(t.Notes, "paper: peak at g=256, +10.2% over g=64")
	return t, nil
}
