package experiments

import (
	"fmt"

	"numabfs/internal/bfs"
	"numabfs/internal/bfs2d"
	"numabfs/internal/graph500"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
	"numabfs/internal/stats"
)

// Ext2D compares the paper's 1-D hybrid BFS against the two-dimensional
// partitioned BFS of Buluç and Madduri, which the paper's related work
// calls out as an orthogonal way to cut communication ("they could
// reduce the communication overhead by a factor of 3.5"). Both engines
// run the same graphs on the same simulated cluster; the table reports
// TEPS and the measured per-iteration communication volume. The 2-D
// engine is compared against the 1-D engine in pure top-down mode (the
// algorithm Buluç and Madduri optimize) and against the full hybrid.
func Ext2D(s Spec) (*Table, error) {
	nodesSweep := []int{2, 4, 8}
	t := &Table{
		Name:    "Ext. 2-D",
		Title:   "1-D vs 2-D partitioning: TEPS and comm volume (MB/iteration)",
		Columns: []string{"2 nodes", "4 nodes", "8 nodes"},
	}

	type point struct{ teps, comm float64 }
	// Slots: series-major — 1-D top-down, 1-D hybrid, 2-D — matching the
	// sequential schedule.
	points := make([]point, 3*len(nodesSweep))
	var cells []cell
	for si, mode := range []bfs.Mode{bfs.ModeTopDown, bfs.ModeHybrid} {
		for ni, nodes := range nodesSweep {
			slot := si*len(nodesSweep) + ni
			mode, nodes := mode, nodes
			cells = append(cells, cell{
				label: fmt.Sprintf("1-D %s/%dn", mode, nodes),
				run: func(cs Spec) error {
					scale := cs.scaleFor(nodes)
					opts := bfs.DefaultOptions()
					opts.Mode = mode
					r, err := bfs.NewRunner(cs.clusterConfig(nodes), machine.PPN8Bind, rmat.Graph500(scale), opts)
					if err != nil {
						return fmt.Errorf("ext2d 1-D %s: %w", mode, err)
					}
					if cs.Obs != nil {
						r.AttachObs(cs.Obs.NewSession(fmt.Sprintf("ext2d 1-D %s nodes=%d", mode, nodes)))
					}
					r.Setup()
					roots := r.Params.Roots(cs.Roots, r.HasEdgeGlobal)
					var teps, comm []float64
					for _, root := range roots {
						res := r.RunRoot(root)
						teps = append(teps, res.TEPS)
						comm = append(comm, float64(res.CommBytes))
					}
					points[slot] = point{stats.HarmonicMean(teps), stats.Mean(comm) / (1 << 20)}
					return nil
				},
			})
		}
	}
	for ni, nodes := range nodesSweep {
		slot := 2*len(nodesSweep) + ni
		nodes := nodes
		cells = append(cells, cell{
			label: fmt.Sprintf("2-D/%dn", nodes),
			run: func(cs Spec) error {
				scale := cs.scaleFor(nodes)
				cfg := cs.clusterConfig(nodes)
				grid := bfs2d.DefaultGrid(nodes * cfg.SocketsPerNode)
				r, err := bfs2d.NewRunner(cfg, machine.PPN8Bind, grid, rmat.Graph500(scale))
				if err != nil {
					return fmt.Errorf("ext2d 2-D: %w", err)
				}
				if cs.Obs != nil {
					r.AttachObs(cs.Obs.NewSession(fmt.Sprintf("ext2d 2-D %dx%d nodes=%d", grid.R, grid.C, nodes)))
				}
				r.Setup()
				roots := r.Params.Roots(cs.Roots, r.HasEdgeGlobal)
				var teps, comm []float64
				for _, root := range roots {
					res := r.RunRoot(root)
					teps = append(teps, res.TEPS)
					comm = append(comm, float64(res.CommBytes))
				}
				points[slot] = point{stats.HarmonicMean(teps), stats.Mean(comm) / (1 << 20)}
				return nil
			},
		})
	}
	if err := s.runCells("2d", cells); err != nil {
		return nil, err
	}

	row := func(series int, f func(point) float64) []float64 {
		vals := make([]float64, len(nodesSweep))
		for i := range nodesSweep {
			vals[i] = f(points[series*len(nodesSweep)+i])
		}
		return vals
	}
	td, hy, d2 := 0, 1, 2
	t.AddRow("1-D top-down TEPS", row(td, func(p point) float64 { return p.teps })...)
	t.AddRow("2-D top-down TEPS", row(d2, func(p point) float64 { return p.teps })...)
	t.AddRow("1-D hybrid TEPS", row(hy, func(p point) float64 { return p.teps })...)
	t.AddRow("1-D top-down comm MB", row(td, func(p point) float64 { return p.comm })...)
	t.AddRow("2-D top-down comm MB", row(d2, func(p point) float64 { return p.comm })...)
	t.AddRow("1-D hybrid comm MB", row(hy, func(p point) float64 { return p.comm })...)
	ratio := make([]float64, len(nodesSweep))
	for i := range ratio {
		tdComm := points[td*len(nodesSweep)+i].comm
		d2Comm := points[d2*len(nodesSweep)+i].comm
		if d2Comm > 0 {
			ratio[i] = tdComm / d2Comm
		}
	}
	t.AddRow("top-down comm reduction (1D/2D)", ratio...)
	t.Notes = append(t.Notes,
		"related work (Buluc & Madduri): 2-D partitioning cut BFS communication ~3.5x over 1-D top-down",
		"the hybrid row shows why the paper optimizes the hybrid instead: it avoids most top-down traffic outright")
	return t, nil
}

// AblationAllgather compares the three allgather algorithms on the
// in_queue-sized payload over the full 16-node cluster — the
// Thakur-Gropp selection ablated. The BFS uses the library default; this
// shows what each choice would cost.
func AblationAllgather(s Spec) (*Table, error) {
	t, err := allgatherAblation(s)
	if err != nil {
		return nil, fmt.Errorf("ablation allgather: %w", err)
	}
	return t, nil
}

// AblationHybrid sweeps the hybrid switch thresholds (alpha) and
// compares the three algorithm modes — the design-choice ablation for
// the switching heuristic the paper inherits from Beamer et al.
func AblationHybrid(s Spec) (*Table, error) {
	const nodes = 4
	scale := s.scaleFor(nodes)
	t := &Table{
		Name:    "Abl. hybrid",
		Title:   fmt.Sprintf("Hybrid switch ablation (%d nodes, scale %d)", nodes, scale),
		Columns: []string{"TEPS", "td levels", "bu levels"},
	}
	var cells []cellRun
	var labels []string
	for _, mode := range []bfs.Mode{bfs.ModeTopDown, bfs.ModeBottomUp} {
		mode := mode
		labels = append(labels, fmt.Sprintf("pure %s", mode))
		cells = append(cells, cellRun{label: fmt.Sprintf("pure %s", mode), run: func(cs Spec) (*graph500.Result, error) {
			opts := bfs.DefaultOptions()
			opts.Mode = mode
			res, err := cs.run(nodes, machine.PPN8Bind, opts)
			if err != nil {
				return nil, fmt.Errorf("ablation %s: %w", mode, err)
			}
			return res, nil
		}})
	}
	for _, alpha := range []float64{2, 14, 30, 100} {
		alpha := alpha
		labels = append(labels, fmt.Sprintf("hybrid alpha=%g", alpha))
		cells = append(cells, cellRun{label: fmt.Sprintf("alpha=%g", alpha), run: func(cs Spec) (*graph500.Result, error) {
			opts := bfs.DefaultOptions()
			opts.Alpha = alpha
			res, err := cs.run(nodes, machine.PPN8Bind, opts)
			if err != nil {
				return nil, fmt.Errorf("ablation alpha=%g: %w", alpha, err)
			}
			return res, nil
		}})
	}
	results, err := s.collect("abl-hybrid", cells)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		t.AddRow(labels[i], res.HarmonicTEPS,
			float64(res.Breakdown.TDLevels), float64(res.Breakdown.BULevels))
	}
	t.Notes = append(t.Notes, "the hybrid beats both pure modes across the alpha range (Sec. II.A)")
	return t, nil
}
