package experiments

import (
	"fmt"

	"numabfs/internal/bfs"
	"numabfs/internal/bfs2d"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
	"numabfs/internal/stats"
)

// Ext2D compares the paper's 1-D hybrid BFS against the two-dimensional
// partitioned BFS of Buluç and Madduri, which the paper's related work
// calls out as an orthogonal way to cut communication ("they could
// reduce the communication overhead by a factor of 3.5"). Both engines
// run the same graphs on the same simulated cluster; the table reports
// TEPS and the measured per-iteration communication volume. The 2-D
// engine is compared against the 1-D engine in pure top-down mode (the
// algorithm Buluç and Madduri optimize) and against the full hybrid.
func Ext2D(s Spec) (*Table, error) {
	nodesSweep := []int{2, 4, 8}
	t := &Table{
		Name:    "Ext. 2-D",
		Title:   "1-D vs 2-D partitioning: TEPS and comm volume (MB/iteration)",
		Columns: []string{"2 nodes", "4 nodes", "8 nodes"},
	}

	type series struct {
		label string
		teps  []float64
		comm  []float64
	}
	run1D := func(mode bfs.Mode) (series, error) {
		var sr series
		for _, nodes := range nodesSweep {
			scale := s.scaleFor(nodes)
			opts := bfs.DefaultOptions()
			opts.Mode = mode
			r, err := bfs.NewRunner(s.clusterConfig(nodes), machine.PPN8Bind, rmat.Graph500(scale), opts)
			if err != nil {
				return sr, err
			}
			if s.Obs != nil {
				r.AttachObs(s.Obs.NewSession(fmt.Sprintf("ext2d 1-D %s nodes=%d", mode, nodes)))
			}
			r.Setup()
			roots := r.Params.Roots(s.Roots, r.HasEdgeGlobal)
			var teps, comm []float64
			for _, root := range roots {
				res := r.RunRoot(root)
				teps = append(teps, res.TEPS)
				comm = append(comm, float64(res.CommBytes))
			}
			sr.teps = append(sr.teps, stats.HarmonicMean(teps))
			sr.comm = append(sr.comm, stats.Mean(comm)/(1<<20))
		}
		return sr, nil
	}

	td, err := run1D(bfs.ModeTopDown)
	if err != nil {
		return nil, fmt.Errorf("ext2d 1-D top-down: %w", err)
	}
	hy, err := run1D(bfs.ModeHybrid)
	if err != nil {
		return nil, fmt.Errorf("ext2d 1-D hybrid: %w", err)
	}

	var d2 series
	for _, nodes := range nodesSweep {
		scale := s.scaleFor(nodes)
		cfg := s.clusterConfig(nodes)
		grid := bfs2d.DefaultGrid(nodes * cfg.SocketsPerNode)
		r, err := bfs2d.NewRunner(cfg, machine.PPN8Bind, grid, rmat.Graph500(scale))
		if err != nil {
			return nil, fmt.Errorf("ext2d 2-D: %w", err)
		}
		if s.Obs != nil {
			r.AttachObs(s.Obs.NewSession(fmt.Sprintf("ext2d 2-D %dx%d nodes=%d", grid.R, grid.C, nodes)))
		}
		r.Setup()
		roots := r.Params.Roots(s.Roots, r.HasEdgeGlobal)
		var teps, comm []float64
		for _, root := range roots {
			res := r.RunRoot(root)
			teps = append(teps, res.TEPS)
			comm = append(comm, float64(res.CommBytes))
		}
		d2.teps = append(d2.teps, stats.HarmonicMean(teps))
		d2.comm = append(d2.comm, stats.Mean(comm)/(1<<20))
	}

	t.AddRow("1-D top-down TEPS", td.teps...)
	t.AddRow("2-D top-down TEPS", d2.teps...)
	t.AddRow("1-D hybrid TEPS", hy.teps...)
	t.AddRow("1-D top-down comm MB", td.comm...)
	t.AddRow("2-D top-down comm MB", d2.comm...)
	t.AddRow("1-D hybrid comm MB", hy.comm...)
	ratio := make([]float64, len(nodesSweep))
	for i := range ratio {
		if d2.comm[i] > 0 {
			ratio[i] = td.comm[i] / d2.comm[i]
		}
	}
	t.AddRow("top-down comm reduction (1D/2D)", ratio...)
	t.Notes = append(t.Notes,
		"related work (Buluc & Madduri): 2-D partitioning cut BFS communication ~3.5x over 1-D top-down",
		"the hybrid row shows why the paper optimizes the hybrid instead: it avoids most top-down traffic outright")
	return t, nil
}

// AblationAllgather compares the three allgather algorithms on the
// in_queue-sized payload over the full 16-node cluster — the
// Thakur-Gropp selection ablated. The BFS uses the library default; this
// shows what each choice would cost.
func AblationAllgather(s Spec) (*Table, error) {
	t, err := allgatherAblation(s)
	if err != nil {
		return nil, fmt.Errorf("ablation allgather: %w", err)
	}
	return t, nil
}

// AblationHybrid sweeps the hybrid switch thresholds (alpha) and
// compares the three algorithm modes — the design-choice ablation for
// the switching heuristic the paper inherits from Beamer et al.
func AblationHybrid(s Spec) (*Table, error) {
	const nodes = 4
	scale := s.scaleFor(nodes)
	t := &Table{
		Name:    "Abl. hybrid",
		Title:   fmt.Sprintf("Hybrid switch ablation (%d nodes, scale %d)", nodes, scale),
		Columns: []string{"TEPS", "td levels", "bu levels"},
	}
	for _, mode := range []bfs.Mode{bfs.ModeTopDown, bfs.ModeBottomUp} {
		opts := bfs.DefaultOptions()
		opts.Mode = mode
		res, err := s.run(nodes, machine.PPN8Bind, opts)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", mode, err)
		}
		t.AddRow(fmt.Sprintf("pure %s", mode), res.HarmonicTEPS,
			float64(res.Breakdown.TDLevels), float64(res.Breakdown.BULevels))
	}
	for _, alpha := range []float64{2, 14, 30, 100} {
		opts := bfs.DefaultOptions()
		opts.Alpha = alpha
		res, err := s.run(nodes, machine.PPN8Bind, opts)
		if err != nil {
			return nil, fmt.Errorf("ablation alpha=%g: %w", alpha, err)
		}
		t.AddRow(fmt.Sprintf("hybrid alpha=%g", alpha), res.HarmonicTEPS,
			float64(res.Breakdown.TDLevels), float64(res.Breakdown.BULevels))
	}
	t.Notes = append(t.Notes, "the hybrid beats both pure modes across the alpha range (Sec. II.A)")
	return t, nil
}
