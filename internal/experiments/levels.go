package experiments

import (
	"fmt"

	"numabfs/internal/bfs"
	"numabfs/internal/machine"
	"numabfs/internal/rmat"
)

// LevelProfile reproduces the structural claims of Fig. 1 and Section
// II.B: the hybrid BFS runs three phases — top-down, then bottom-up,
// then top-down — on an R-MAT graph, with the overwhelming majority of
// vertices reached (and most time spent) in the bottom-up procedure.
// The table is the per-level frontier growth curve of a representative
// root on 4 nodes.
func LevelProfile(s Spec) (*Table, error) {
	const nodes = 4
	scale := s.scaleFor(nodes)
	params := rmat.Graph500(scale)

	var res bfs.RootResult
	var root int64
	err := s.runCells("levels", []cell{{label: "profile", run: func(cs Spec) error {
		r, err := bfs.NewRunner(cs.clusterConfig(nodes), machine.PPN8Bind, params, bfs.DefaultOptions())
		if err != nil {
			return fmt.Errorf("levels: %w", err)
		}
		if cs.Obs != nil {
			r.AttachObs(cs.Obs.NewSession(fmt.Sprintf("level profile nodes=%d scale=%d", nodes, scale)))
		}
		r.Setup()
		root = params.Roots(1, r.HasEdgeGlobal)[0]
		res = r.RunRoot(root)
		return nil
	}}})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Name:    "Fig. 1 / Sec. II.B",
		Title:   fmt.Sprintf("Hybrid BFS level profile (root %d, scale %d, %d nodes)", root, scale, nodes),
		Columns: []string{"bottom-up", "frontier", "frontier edges", "ms"},
	}
	var buVerts, buNs, totNs float64
	for _, ls := range res.LevelStats {
		mode := 0.0
		if ls.BottomUp {
			mode = 1
			buVerts += float64(ls.NF)
			buNs += ls.Ns
		}
		totNs += ls.Ns
		t.AddRow(fmt.Sprintf("level %d", ls.Level), mode, float64(ls.NF), float64(ls.MF), ls.Ns/1e6)
	}
	t.AddRow("bottom-up share of visited", buVerts/float64(res.Visited-1))
	t.AddRow("bottom-up share of level time", buNs/totNs)
	t.Notes = append(t.Notes,
		"paper (Sec. II.B): most vertices are reached in the bottom-up procedure, which consumes most of the time",
		"the three-phase structure: top-down, bottom-up, top-down (Fig. 1)")
	return t, nil
}
