package experiments

import (
	"fmt"

	"numabfs/internal/collective"
	"numabfs/internal/machine"
	"numabfs/internal/mpi"
)

// Fig4Sizes is the message-size sweep (bytes per rank pair) of the
// OSU-style bandwidth test.
var Fig4Sizes = []int64{4 << 10, 64 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}

// Fig4PPNs is the concurrent-process sweep.
var Fig4PPNs = []int{1, 2, 4, 8}

// Fig4 reproduces the two-node bandwidth measurement: k rank pairs (one
// per socket) stream messages between two nodes concurrently. Paper
// shape: eight concurrent processes reach the two-port peak, one process
// only about half of it.
func Fig4(s Spec) (*Table, error) {
	t := &Table{
		Name:    "Fig. 4",
		Title:   "Node-to-node bandwidth (GB/s) by processes per node",
		Columns: make([]string, len(Fig4Sizes)),
	}
	for i, sz := range Fig4Sizes {
		t.Columns[i] = sizeLabel(sz)
	}
	cfg := machine.TableI()
	cfg.Nodes = 2
	cfg.WeakNode = -1
	pl := machine.PlacementFor(cfg, machine.PPN8Bind)

	bw := make([]float64, len(Fig4PPNs)*len(Fig4Sizes))
	var cells []cell
	for pi, ppn := range Fig4PPNs {
		for si, size := range Fig4Sizes {
			slot := pi*len(Fig4Sizes) + si
			ppn, size := ppn, size
			cells = append(cells, cell{
				label: fmt.Sprintf("ppn=%d/%s", ppn, sizeLabel(size)),
				run: func(cs Spec) error {
					const iters = 8
					w := mpi.NewWorld(cfg, pl)
					words := size / 8
					buf := make([]uint64, words)
					w.Run(func(p *mpi.Proc) {
						// Ranks 0..ppn-1 of node 0 stream to their counterparts
						// on node 1; the rest idle.
						if p.LocalRank() >= ppn {
							return
						}
						peer := p.Rank() + cfg.SocketsPerNode // same local rank, node 1
						for it := 0; it < iters; it++ {
							if p.Node() == 0 {
								p.Send(peer, 9000+it, size, buf, ppn)
							} else {
								p.Recv(p.Rank()-cfg.SocketsPerNode, 9000+it)
							}
						}
					})
					totalBytes := float64(size) * float64(iters) * float64(ppn)
					bw[slot] = totalBytes / w.MaxClock() // bytes/ns == GB/s
					return nil
				},
			})
		}
	}
	if err := s.runCells("4", cells); err != nil {
		return nil, err
	}
	for pi, ppn := range Fig4PPNs {
		t.AddRow(fmt.Sprintf("ppn=%d", ppn), bw[pi*len(Fig4Sizes):(pi+1)*len(Fig4Sizes)]...)
	}
	t.Notes = append(t.Notes,
		"paper: 8 ppn saturates the 2x IB ports; 1 ppn reaches about half the peak")
	return t, nil
}

func sizeLabel(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Fig6Sizes are the allgather payload sizes. The paper uses 64 MB and
// 512 MB (in_queue at scales 29 and 32); the driver uses a proportional
// 1:8 pair sized to laptop memory — only the intra/inter split matters.
var Fig6Sizes = []int64{1 << 20, 8 << 20}

// Fig6 reproduces the leader-based allgather breakdown on 16 nodes x 8
// ranks: the default library allgather against the three-step
// leader-based scheme. Paper shape: the intra-node steps (gather +
// broadcast) cost more than the inter-node exchange, so overlapping
// cannot hide them — the motivation for sharing instead.
func Fig6(s Spec) (*Table, error) {
	t := &Table{
		Name:    "Fig. 6",
		Title:   "Allgather time, default vs leader-based (normalized to default)",
		Columns: []string{"total", "step1 gather", "step2 inter", "step3 bcast"},
	}
	cfg := machine.TableI()
	cfg.WeakNode = -1
	pl := machine.PlacementFor(cfg, machine.PPN8Bind)

	type sizeResult struct {
		defNs float64
		mean  collective.StepTimes
		ovNs  float64
	}
	results := make([]sizeResult, len(Fig6Sizes))
	cells := make([]cell, len(Fig6Sizes))
	for i, size := range Fig6Sizes {
		i, size := i, size
		cells[i] = cell{label: sizeLabel(size), run: func(cs Spec) error {
			words := size / 8
			// Default Open MPI allgather over all 128 ranks.
			wDef := mpi.NewWorld(cfg, pl)
			gDef := collective.WorldGroup(wDef)
			lay := collective.EvenLayout(words, gDef.Size())
			wDef.Run(func(p *mpi.Proc) {
				buf := make([]uint64, words)
				gDef.Allgather(p, buf, lay)
			})
			results[i].defNs = wDef.MaxClock()

			// Leader-based allgather with per-step times.
			wLdr := mpi.NewWorld(cfg, pl)
			nc := collective.NewNodeComm(wLdr)
			steps := make([]collective.StepTimes, wLdr.NumProcs())
			wLdr.Run(func(p *mpi.Proc) {
				buf := make([]uint64, words)
				steps[p.Rank()] = nc.LeaderAllgather(p, buf, lay)
			})
			// Report the mean across ranks (children have zero inter time).
			for _, st := range steps {
				results[i].mean.GatherNs += st.GatherNs / float64(len(steps))
				results[i].mean.InterNs += st.InterNs / float64(len(steps))
				results[i].mean.BcastNs += st.BcastNs / float64(len(steps))
			}

			// HierKNEM-style overlapped variant (Section V: overlap cannot
			// hide intra-node cost when it exceeds inter-node).
			wOv := mpi.NewWorld(cfg, pl)
			ncOv := collective.NewNodeComm(wOv)
			wOv.Run(func(p *mpi.Proc) {
				buf := make([]uint64, words)
				ncOv.LeaderAllgatherPipelined(p, buf, lay)
			})
			results[i].ovNs = wOv.MaxClock()
			return nil
		}}
	}
	if err := s.runCells("6", cells); err != nil {
		return nil, err
	}
	for i, size := range Fig6Sizes {
		r := results[i]
		t.AddRow(fmt.Sprintf("default %s", sizeLabel(size)), 1, 0, 0, 0)
		t.AddRow(fmt.Sprintf("leader-based %s", sizeLabel(size)),
			r.mean.Total()/r.defNs, r.mean.GatherNs/r.defNs, r.mean.InterNs/r.defNs, r.mean.BcastNs/r.defNs)
		t.AddRow(fmt.Sprintf("overlapped %s (HierKNEM-like)", sizeLabel(size)),
			r.ovNs/r.defNs, 0, 0, 0)
	}
	t.Notes = append(t.Notes,
		"paper: intra-node steps dominate the leader-based time; sizes stand in for 64/512 MB at 1:8 ratio",
		"the overlapped row shows overlap helps but cannot beat sharing (Section V)")
	return t, nil
}
