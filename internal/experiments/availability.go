package experiments

import (
	"fmt"

	"numabfs/internal/bfs"
	"numabfs/internal/fault"
	"numabfs/internal/graph500"
)

// availPolicy is one permanent-crash completion policy under study:
// the recovery mode plus the hot-spare reservation it needs.
type availPolicy struct {
	label    string
	recovery bfs.Recovery
	spares   int
}

func availPolicies() []availPolicy {
	return []availPolicy{
		{"rerun", bfs.RecoverRerun, 0},
		{"shrink", bfs.RecoverShrink, 0},
		{"spare", bfs.RecoverSpare, 1},
	}
}

// ExtAvailability studies degraded-mode completion after permanent rank
// deaths on a fixed 2-node cluster: each cumulative optimization level
// is run under every completion policy (rerun in place, shrink onto the
// survivors, hot-spare promotion) with one and then two ranks killed
// permanently mid-iteration. Crash times are fractions of the same
// configuration's crash-free mean iteration, so every cell is as
// deterministic as the clean sweep; the two crashes land on different
// nodes, so the spare policy promotes one reserved rank per node.
//
// Cells report, per crash count: harmonic TEPS retained vs the same
// level and spare reservation without crashes, the mean-iteration time
// ratio (>= 1), and the modelled MTTR in milliseconds — heartbeat-lease
// detection latency plus the longest adjacency re-own transfer any
// survivor paid. The spare policy's baseline runs on the reduced active
// set (spares parked), so its retained fraction isolates the recovery
// cost rather than the reservation cost. Every degraded run passes the
// full Graph500 validation suite.
func ExtAvailability(s Spec) (*Table, error) {
	const nodes = 2
	scale := s.scaleFor(nodes)
	variants := faultVariants()
	policies := availPolicies()
	// Crash schedule: ranks on both nodes (ranks 0-7 are node 0, 8-15
	// node 1 at ppn=8), at fixed fractions of the clean mean iteration.
	// Neither rank is a reserved spare (those are the last rank of each
	// node), so the schedule is valid under every policy.
	crashRanks := []int{2, 10}
	crashFracs := []float64{0.45, 0.7}

	t := &Table{
		Name: "Ext. availability",
		Title: fmt.Sprintf("degraded-mode completion under permanent rank deaths (%d nodes, scale %d, validated)",
			nodes, scale),
		Columns: []string{
			"teps x1", "time x1", "mttr ms x1",
			"teps x2", "time x2", "mttr ms x2",
		},
	}

	// First batch: one crash-free baseline per (level, spare
	// reservation). Rerun and shrink share the spares=0 partition; the
	// spare policy runs on one fewer active rank per node, so both its
	// baseline and its cached graph differ.
	spareSet := []int{0, 1}
	var baseCells []cellRun
	for _, v := range variants {
		for _, sp := range spareSet {
			v, sp := v, sp
			baseCells = append(baseCells, cellRun{
				label: fmt.Sprintf("%s/base spares=%d", v.label, sp),
				run: func(cs Spec) (*graph500.Result, error) {
					opts := bfs.DefaultOptions()
					opts.Opt = v.opt
					opts.SpareRanks = sp
					cs.Faults = nil
					res, err := cs.run(nodes, v.policy, opts)
					if err != nil {
						return nil, fmt.Errorf("ext availability %s baseline (spares=%d): %w", v.label, sp, err)
					}
					return res, nil
				},
			})
		}
	}
	bases, err := s.collect("availability", baseCells)
	if err != nil {
		return nil, err
	}
	baseFor := func(vi int, pol availPolicy) *graph500.Result {
		return bases[vi*len(spareSet)+pol.spares]
	}

	// Second batch: the crash cells. Their plans depend on the baseline
	// mean times, so they cannot join the first batch. Validation is
	// forced on — the point of the figure is that every degraded run
	// still produces a correct BFS tree.
	var cells []cellRun
	for vi, v := range variants {
		for _, pol := range policies {
			base := baseFor(vi, pol)
			for k := 1; k <= len(crashRanks); k++ {
				v, pol, k := v, pol, k
				plan := fault.Plan{}
				for c := 0; c < k; c++ {
					plan.Crashes = append(plan.Crashes, fault.Crash{
						Rank:      crashRanks[c],
						AtNs:      crashFracs[c] * base.MeanTimeNs,
						Permanent: true,
					})
				}
				cells = append(cells, cellRun{
					label: fmt.Sprintf("%s/%s x%d", v.label, pol.label, k),
					run: func(cs Spec) (*graph500.Result, error) {
						opts := bfs.DefaultOptions()
						opts.Opt = v.opt
						opts.Recovery = pol.recovery
						opts.SpareRanks = pol.spares
						cs.Faults = &plan
						cs.Validate = true
						res, err := cs.run(nodes, v.policy, opts)
						if err != nil {
							return nil, fmt.Errorf("ext availability %s/%s x%d: %w", v.label, pol.label, k, err)
						}
						if res.Faults != k {
							return nil, fmt.Errorf("ext availability %s/%s: %d crash(es) scheduled, %d fired",
								v.label, pol.label, k, res.Faults)
						}
						return res, nil
					},
				})
			}
		}
	}
	results, err := s.collect("availability", cells)
	if err != nil {
		return nil, err
	}

	idx := 0
	for vi, v := range variants {
		for _, pol := range policies {
			base := baseFor(vi, pol)
			vals := make([]float64, 0, 2*3)
			for k := 1; k <= len(crashRanks); k++ {
				res := results[idx]
				idx++
				vals = append(vals,
					res.HarmonicTEPS/base.HarmonicTEPS,
					res.MeanTimeNs/base.MeanTimeNs,
					res.MTTRNs/1e6)
			}
			t.AddRow(fmt.Sprintf("%s / %s", v.label, pol.label), vals...)
		}
	}

	t.Notes = append(t.Notes,
		"teps/time columns are relative to the same optimization level and spare reservation without crashes (spare-policy baselines park one rank per node)",
		fmt.Sprintf("crashes are permanent: rank %d at %.0f%% and rank %d at %.0f%% of the clean mean iteration, on different nodes",
			crashRanks[0], 100*crashFracs[0], crashRanks[1], 100*crashFracs[1]),
		"mttr = heartbeat-lease detection latency + the longest survivor re-own transfer; rerun restarts the dead rank in place, shrink finishes on the surviving membership, spare promotes a parked same-node rank",
		"every degraded run passes full Graph500 validation")
	return t, nil
}
