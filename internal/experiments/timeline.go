package experiments

import (
	"fmt"

	"numabfs/internal/bfs"
	"numabfs/internal/machine"
	"numabfs/internal/obs"
)

// DefaultSampleNs is the gauge grid pitch the timeline demo (and the
// bfsbench -sample-ns default) uses: 100µs of virtual time, fine enough
// to resolve individual BFS levels at the test scales while keeping a
// whole sweep's sample volume small.
const DefaultSampleNs = 100_000

// Timeline is the sampling-layer demo sweep (-fig timeline): run the
// compressed allgather (level 5) and the overlapped allgather (level 6)
// on a fixed 4-node cluster with the virtual-time gauge grid enabled,
// then distill each run's gauge streams into headline rows — peak
// frontier and bitmap density, inter-node wire volume and peak link
// utilization per bucket, and the pipeline's exposed wait. The two
// sessions it records are exactly the pair the obsdiff walkthrough in
// EXPERIMENTS.md diffs.
func Timeline(s Spec) (*Table, error) {
	const nodes = 4
	scale := s.scaleFor(nodes)
	sampleNs := s.SampleNs
	if sampleNs <= 0 {
		sampleNs = DefaultSampleNs
	}

	t := &Table{
		Name:  "Ext. timeline",
		Title: fmt.Sprintf("Virtual-time gauge sampling: compressed vs overlapped allgather (%d nodes, scale %d, bucket %.0f ns)", nodes, scale, sampleNs),
		Columns: []string{
			"TEPS", "time ms", "peak frontier", "peak density",
			"inter-node MiB", "peak link util", "exposed wait ms",
		},
	}

	cfgs := []struct {
		label string
		opt   bfs.Opt
	}{
		{"+ Compressed allgather", bfs.OptCompressedAllgather},
		{"+ Overlap allgather", bfs.OptOverlapAllgather},
	}
	rows := make([][]float64, len(cfgs))
	cells := make([]cell, len(cfgs))
	for i, c := range cfgs {
		i, c := i, c
		cells[i] = cell{label: c.label, run: func(cs Spec) error {
			rec := cs.Obs
			if rec == nil {
				// The sweep is about the gauges, so it records even when
				// the CLI attached no recorder.
				rec = obs.NewRecorder()
				cs.Obs = rec
			}
			cs.SampleNs = sampleNs
			// No graph cache: a cache hit would skip kernel-1 construction
			// and shift the session's epoch, so the two rows' gauge streams
			// would bucket-align differently. Building both keeps the
			// timelines — and the obsdiff walkthrough over their exports —
			// apples to apples; the modelled results are identical either
			// way.
			cs.Cache = nil
			opts := bfs.DefaultOptions()
			opts.Opt = c.opt
			res, err := cs.run(nodes, machine.PPN8Bind, opts)
			if err != nil {
				return fmt.Errorf("timeline %s: %w", c.label, err)
			}
			sess := rec.Sessions()[len(rec.Sessions())-1]
			g := gaugeDigest(sess, sampleNs)
			rows[i] = []float64{res.HarmonicTEPS, res.MeanTimeNs / 1e6,
				g.peakFrontier, g.peakDensity, g.interBytes / (1 << 20),
				g.peakUtil, g.exposedNs / 1e6}
			return nil
		}}
	}
	if err := s.runCells("timeline", cells); err != nil {
		return nil, err
	}
	for i, c := range cfgs {
		t.AddRow(c.label, rows[i]...)
	}
	t.Notes = append(t.Notes,
		"gauges are recorded on the virtual-time grid by the bfs/mpi/collective layers; recording reads clocks only, so TEPS matches the unsampled run bit for bit",
		"peak link util is the largest per-bucket inter-node wire volume over the per-stream peak bandwidth the machine model publishes",
		"export the same two sessions with -timeline and compare them with obsdiff to attribute the level-6 delta per phase and rank")
	return t, nil
}

// gaugeDigest folds one session's gauge streams into the sweep's
// headline numbers.
type digest struct {
	peakFrontier float64
	peakDensity  float64
	interBytes   float64
	peakUtil     float64
	exposedNs    float64
}

func gaugeDigest(sess *obs.Session, sampleNs float64) digest {
	var d digest
	linkCap := sess.LinkPeakBytesPerNs() * sampleNs
	// Skip buckets that end inside the setup segment (before the first
	// mark): the rows compare BFS traversal traffic, and kernel-1
	// construction bytes would otherwise swing with graph-cache hits.
	setupEnd := 0.0
	if marks := sess.Marks(); len(marks) > 0 {
		setupEnd = marks[0]
	}
	afterSetup := func(pt obs.GaugePoint) bool {
		return (float64(pt.Bucket)+1)*sampleNs > setupEnd
	}
	for _, rk := range sess.Ranks() {
		for _, pt := range rk.GaugeSeries(obs.GaugeFrontier) {
			if pt.V > d.peakFrontier {
				d.peakFrontier = pt.V
			}
		}
		for _, pt := range rk.GaugeSeries(obs.GaugeFrontierDensity) {
			if pt.V > d.peakDensity {
				d.peakDensity = pt.V
			}
		}
		for _, pt := range rk.GaugeSeries(obs.GaugeInterBytes) {
			if !afterSetup(pt) {
				continue
			}
			d.interBytes += pt.V
			if linkCap > 0 && pt.V/linkCap > d.peakUtil {
				d.peakUtil = pt.V / linkCap
			}
		}
		for _, pt := range rk.GaugeSeries(obs.GaugeExposedWait) {
			d.exposedNs += pt.V
		}
	}
	return d
}
