package experiments

import (
	"fmt"

	"numabfs/internal/bfs"
	"numabfs/internal/graph500"
	"numabfs/internal/machine"
	"numabfs/internal/stats"
	"numabfs/internal/wire"
)

// commStats averages the per-root communication ledgers of one run:
// wire and raw MB per iteration, plus mean segment counts per format.
type commStats struct {
	wireMB, rawMB float64
	segs          [wire.NumFormats]float64
}

func commStatsOf(per []bfs.RootResult) commStats {
	var cs commStats
	var wireB, rawB []float64
	for _, rr := range per {
		wireB = append(wireB, float64(rr.CommBytes))
		rawB = append(rawB, float64(rr.RawCommBytes))
		for f, n := range rr.Wire.Segments {
			cs.segs[f] += float64(n)
		}
	}
	cs.wireMB = stats.Mean(wireB) / (1 << 20)
	cs.rawMB = stats.Mean(rawB) / (1 << 20)
	for f := range cs.segs {
		cs.segs[f] /= float64(len(per))
	}
	return cs
}

// compressedVariants is ppn8Variants plus the fifth cumulative level.
func compressedVariants() []variant {
	return append(ppn8Variants(),
		variant{"+ Compressed allgather", machine.PPN8Bind, bfs.OptCompressedAllgather})
}

// ExtCompression evaluates the adaptive frontier compression of the
// bottom-up allgather (OptCompressedAllgather) as a weak-scaling sweep
// over 1..16 nodes: TEPS for every cumulative level, the average
// bottom-up communication phase of the top two levels, the wire-vs-raw
// volume of the compressed level, and the selector's per-format segment
// counts (which show it switching formats as the frontier's density
// moves through the BFS). Compression pays off where the segments are
// big enough for the β (bandwidth) term to dominate the modelled
// encode/decode scans — small scales show the crossover itself.
func ExtCompression(s Spec) (*Table, error) {
	nodesSweep := []int{1, 2, 4, 8, 16}
	t := &Table{
		Name:    "Ext. compression",
		Title:   "Adaptive frontier compression for the bottom-up allgather, weak scaling",
		Columns: []string{"1 node", "2 nodes", "4 nodes", "8 nodes", "16 nodes"},
	}

	variants := compressedVariants()
	results, err := s.collect("compression", sweepCells("ext compression", variants, nodesSweep))
	if err != nil {
		return nil, err
	}

	var parComm, compComm []float64
	var wireMB, rawMB []float64
	var dense, sparse, rle []float64
	for i, v := range variants {
		teps := make([]float64, 0, len(nodesSweep))
		for j := range nodesSweep {
			res := results[i*len(nodesSweep)+j]
			teps = append(teps, res.HarmonicTEPS)
			switch v.opt {
			case bfs.OptParAllgather:
				parComm = append(parComm, res.Breakdown.AvgBUCommNs()/1e6)
			case bfs.OptCompressedAllgather:
				compComm = append(compComm, res.Breakdown.AvgBUCommNs()/1e6)
				cs := commStatsOf(res.PerRoot)
				wireMB = append(wireMB, cs.wireMB)
				rawMB = append(rawMB, cs.rawMB)
				dense = append(dense, cs.segs[wire.FormatDense])
				sparse = append(sparse, cs.segs[wire.FormatSparse])
				rle = append(rle, cs.segs[wire.FormatRLE])
			}
		}
		t.AddRow(v.label+" TEPS", teps...)
	}
	t.AddRow("Par allgather bu-comm (ms)", parComm...)
	t.AddRow("Compressed bu-comm (ms)", compComm...)
	t.AddRow("Compressed wire MB/root", wireMB...)
	t.AddRow("Compressed raw MB/root", rawMB...)
	t.AddRow("segments dense/root", dense...)
	t.AddRow("segments sparse/root", sparse...)
	t.AddRow("segments rle/root", rle...)
	t.Notes = append(t.Notes,
		"wire < raw MB is the compression saving; raw equals the uncompressed level's volume (Eq. 1/2 unchanged)",
		"the per-format segment counts show the selector tracking the frontier's density across levels")
	return t, nil
}

// AblationCompression ablates the codec's selector on a fixed 4-node
// cluster: the adaptive size-based choice against each format forced,
// and against the classic density-threshold rule (Buluç & Madduri) at
// several thresholds. The adaptive row must have the smallest wire
// volume — every other selector is one of its candidates.
func AblationCompression(s Spec) (*Table, error) {
	const nodes = 4
	scale := s.scaleFor(nodes)
	t := &Table{
		Name:    "Abl. compression",
		Title:   fmt.Sprintf("Wire-format selector ablation (%d nodes, scale %d)", nodes, scale),
		Columns: []string{"TEPS", "wire MB", "raw MB", "bu-comm ms"},
	}

	type cfg struct {
		label string
		mod   func(*bfs.Options)
	}
	cfgs := []cfg{
		{"par-allgather (no codec)", func(o *bfs.Options) { o.Opt = bfs.OptParAllgather }},
		{"adaptive (size-based)", func(o *bfs.Options) {}},
		{"force dense", func(o *bfs.Options) { o.WireFormat = wire.FormatDense }},
		{"force sparse", func(o *bfs.Options) { o.WireFormat = wire.FormatSparse }},
		{"force rle", func(o *bfs.Options) { o.WireFormat = wire.FormatRLE }},
		{"threshold d<0.005", func(o *bfs.Options) { o.WireSparseDensity = 0.005 }},
		{"threshold d<0.02", func(o *bfs.Options) { o.WireSparseDensity = 0.02 }},
		{"threshold d<0.1", func(o *bfs.Options) { o.WireSparseDensity = 0.1 }},
	}
	cells := make([]cellRun, len(cfgs))
	for i, c := range cfgs {
		cells[i] = cellRun{label: c.label, run: func(cs Spec) (*graph500.Result, error) {
			opts := bfs.DefaultOptions()
			opts.Opt = bfs.OptCompressedAllgather
			c.mod(&opts)
			res, err := cs.run(nodes, machine.PPN8Bind, opts)
			if err != nil {
				return nil, fmt.Errorf("ablation compression %s: %w", c.label, err)
			}
			return res, nil
		}}
	}
	results, err := s.collect("abl-compression", cells)
	if err != nil {
		return nil, err
	}
	for i, c := range cfgs {
		res := results[i]
		cs := commStatsOf(res.PerRoot)
		t.AddRow(c.label, res.HarmonicTEPS, cs.wireMB, cs.rawMB, res.Breakdown.AvgBUCommNs()/1e6)
	}
	t.Notes = append(t.Notes,
		"the adaptive selector's wire MB lower-bounds every forced format and threshold rule",
		"raw MB is constant across rows: compression changes the encoding, never the logical traffic")
	return t, nil
}
